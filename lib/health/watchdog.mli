(** Heartbeat watchdog for in-flight queries.

    Every live query holds a watchdog session and beats it at each sign of
    progress (compile allocation, exec start/finish, each slice of a
    backoff nap). A periodic audit scans the sessions: one silent for
    [stale_after_s] is {e softened} — the query should take its
    best-plan-so-far and stop optimising — and one still silent
    [cancel_after_s] after its last beat is marked for {e cancellation}
    with {!Error.Watchdog_cancelled}.

    The simulation is cooperative, so the watchdog cannot interrupt a
    blocked process; it flips per-session flags that the query's own code
    polls at its next allocation or slice boundary (exactly how the
    deadline mechanism works). Gateway waits are bounded by the monitor
    timeouts (120/300/600 s), so the defaults sit above the biggest
    gateway timeout: a politely queued query is never shot. *)

type config = {
  poll_s : float;  (** audit period *)
  stale_after_s : float;  (** silence before softening *)
  cancel_after_s : float;  (** silence before cancellation *)
}

val default_config : config
(** Poll every 30 s; soften at 240 s silent; cancel at 720 s silent. *)

type t
type session

val create : ?trace:Obs.Trace.t -> Sim.Engine.t -> config -> t

val start : t -> unit
(** Install the periodic audit timer. Call once, before the run. *)

val watch : t -> qid:string -> session
(** Register a query; its heartbeat starts now. *)

val beat : session -> unit
(** Record progress; clears a soften that had not yet escalated. *)

val unwatch : t -> session -> unit
(** The query finished (however it finished). Idempotent. *)

val softened : session -> bool
(** The query should stop optimising and take its best plan so far. *)

val cancel_requested : session -> bool
(** The query must abandon work with {!Error.Watchdog_cancelled}. *)

val watched : t -> int
(** Sessions currently registered; 0 once a run has drained. *)

val stale_total : t -> int
val cancel_total : t -> int
