(** Starvation auditor over admission-controlled gates.

    The throttling ladder converts memory pressure into queueing — which
    is the point — but a gate can starve its queue outright if every slot
    is held by long compilations (the paper's Figure 2 pathology taken to
    its limit). The auditor samples each registered gate every [audit_s]:
    a gate with waiters whose cumulative admission counter has not moved
    for [stall_audits] consecutive samples is {e starved}, and the
    auditor widens it by [widen_by] slots (cumulatively, at most
    [max_widen] above its base width). Once the queue drains the base
    width is restored. Each change emits an {!Obs.Event.Gate_widen}
    record, so interventions are visible in the trace.

    Widening uses the gate's own [set_slots] (the monitors' semaphore
    drains waiters when capacity rises), and the audit runs from a timer
    callback — waking a blocked process from a callback is safe because
    resumptions are scheduled as engine events. *)

type config = {
  audit_s : float;  (** sampling period *)
  stall_audits : int;  (** consecutive no-progress samples ⇒ starved *)
  widen_by : int;  (** slots added per intervention *)
  max_widen : int;  (** max slots above the base width *)
}

val default_config : config
(** Audit every 60 s; starved after 3 stalled audits; widen by 1, at most
    2 above base. With the default gateway timeouts (120–600 s) this
    rescues a starved queue before waiters start timing out en masse. *)

type t

val create : ?trace:Obs.Trace.t -> Sim.Engine.t -> config -> t

val add_gate :
  t ->
  name:string ->
  queued:(unit -> int) ->
  admitted:(unit -> int) ->
  slots:(unit -> int) ->
  set_slots:(int -> unit) ->
  unit
(** Register a gate. [admitted] must be cumulative (monotone); the base
    width is captured from [slots ()] at registration. *)

val start : t -> unit
(** Install the periodic audit timer. Call once, before the run. *)

val widen_total : t -> int
(** Widening interventions so far (restores not counted). *)

val widened_now : t -> (string * int) list
(** Gates currently above base width, with their extra slots. *)
