type config = {
  enabled : bool;
  window_s : float;
  surge_factor : float;
  min_misses : int;
  calm_windows : int;
}

let default_config =
  {
    enabled = true;
    window_s = 30.0;
    surge_factor = 4.0;
    min_misses = 12;
    calm_windows = 2;
  }

let disabled = { default_config with enabled = false }

(* The EWMA weight for folding a closed window's miss count into the
   baseline. Slow enough that a multi-window storm does not teach the
   detector that storms are normal before it has even cleared. *)
let ewma_alpha = 0.2

type t = {
  eng : Sim.Engine.t;
  config : config;
  trace : Obs.Trace.t;
  mutable window_start : float;
  mutable cur_count : int;  (* compile arrivals in the open window *)
  mutable baseline : float;  (* EWMA of closed-window miss counts *)
  mutable storming : bool;
  mutable storm_started_at : float;  (* valid while storming *)
  mutable quiet : int;  (* consecutive calm closed windows while storming *)
  mutable storms_total : int;
  hot : (string, int) Hashtbl.t;  (* cumulative misses per template *)
  mutable on_change : bool -> unit;
}

let create ?(trace = Obs.Trace.null) eng config =
  if config.window_s <= 0. then invalid_arg "Storm: window_s must be > 0";
  if config.surge_factor < 1. then
    invalid_arg "Storm: surge_factor must be >= 1";
  if config.min_misses < 1 then invalid_arg "Storm: min_misses must be >= 1";
  if config.calm_windows < 1 then
    invalid_arg "Storm: calm_windows must be >= 1";
  {
    eng;
    config;
    trace;
    window_start = Sim.Engine.now eng;
    cur_count = 0;
    baseline = 0.;
    storming = false;
    storm_started_at = 0.;
    quiet = 0;
    storms_total = 0;
    hot = Hashtbl.create 16;
    on_change = (fun _ -> ());
  }

let set_on_change t f = t.on_change <- f

let emit t event =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid:"storm" event

(* The per-window arrival count that separates a storm from traffic: the
   surge factor over the learned baseline, but never below the absolute
   floor (a quiet system's baseline is ~0 and any flurry would trip it). *)
let threshold t =
  max (float_of_int t.config.min_misses) (t.config.surge_factor *. t.baseline)

let end_storm t =
  t.storming <- false;
  t.quiet <- 0;
  let duration_s = Sim.Engine.now t.eng -. t.storm_started_at in
  emit t (Obs.Event.Storm_end { duration_s });
  t.on_change false

(* Lazily close every window that has fully elapsed: no timer process, an
   idle detector costs nothing. Each closed window feeds the EWMA and,
   while storming, counts toward the calm streak that ends the episode. *)
let roll t =
  let now = Sim.Engine.now t.eng in
  while now -. t.window_start >= t.config.window_s do
    let count = t.cur_count in
    if t.storming then
      if float_of_int count < threshold t then (
        t.quiet <- t.quiet + 1;
        if t.quiet >= t.config.calm_windows then end_storm t)
      else t.quiet <- 0;
    t.baseline <-
      (ewma_alpha *. float_of_int count) +. ((1. -. ewma_alpha) *. t.baseline);
    t.cur_count <- 0;
    t.window_start <- t.window_start +. t.config.window_s
  done

let note_compile t ~template =
  if t.config.enabled then (
    roll t;
    t.cur_count <- t.cur_count + 1;
    Hashtbl.replace t.hot template
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.hot template));
    if (not t.storming) && float_of_int t.cur_count >= threshold t then (
      t.storming <- true;
      t.storm_started_at <- Sim.Engine.now t.eng;
      t.quiet <- 0;
      t.storms_total <- t.storms_total + 1;
      emit t
        (Obs.Event.Storm_begin { misses = t.cur_count; baseline = t.baseline });
      t.on_change true))

let active t =
  if not t.config.enabled then false
  else (
    roll t;
    t.storming)

let storms_total t = t.storms_total
let baseline t = t.baseline

let hottest t ~k =
  Hashtbl.fold (fun template count acc -> (template, count) :: acc) t.hot []
  |> List.sort (fun (ta, ca) (tb, cb) ->
         if ca <> cb then compare cb ca else compare ta tb)
  |> List.filteri (fun i _ -> i < k)
