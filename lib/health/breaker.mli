(** Per-template circuit breakers.

    A query template that keeps failing hard (compile OOM, gateway
    timeouts) burns a scarce gateway slot on every attempt. The breaker
    sheds such a template at the door instead: after
    [failure_threshold] consecutive hard failures the template's breaker
    trips {e open} and admissions are refused with
    {!Error.Breaker_open}. After [cooldown_s] of simulated time the
    breaker goes {e half-open} and admits exactly one probe query; if the
    probe succeeds the breaker closes, if it fails the breaker re-opens
    for another cooldown. Probe admission is deterministic (first arrival
    after the cooldown wins) — no randomness is consumed, so enabling
    breakers cannot perturb a run that never trips one. *)

type config = {
  failure_threshold : int;  (** consecutive hard failures to trip open *)
  cooldown_s : float;  (** open duration before the half-open probe *)
}

val default_config : config
(** 3 consecutive failures; 60 s cooldown. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type t
(** A registry of breakers, lazily keyed by template name. *)

val create : ?trace:Obs.Trace.t -> Sim.Engine.t -> config -> t

val admit : t -> template:string -> (unit, Error.t) result
(** Gate an arrival of [template]. [Ok ()] admits (and in half-open marks
    this query as the probe); [Error] carries {!Error.Breaker_open}. *)

val record_success : t -> template:string -> unit
(** The admitted query completed. Resets the failure streak; closes a
    half-open breaker (emitting [Breaker_close]). *)

val record_failure : t -> template:string -> unit
(** The admitted query failed {e hard}. Callers must not report
    back-pressure results (sheds, breaker rejections) here — only real
    failures count toward tripping. Trips a closed breaker at the
    threshold; re-opens a half-open one whose probe is in flight. A hard
    failure reaching a half-open breaker with {e no} probe out (a query
    admitted before the trip, finishing late) is ignored, like a late
    failure against an open breaker. *)

val release_probe : t -> template:string -> unit
(** The half-open probe admitted by {!admit} was shed by a downstream
    admission gate before it could run. Returns the probe slot without
    counting a failure — the shed is back-pressure, not evidence about
    the template — so the next arrival becomes the probe. No-op in every
    other state. *)

val state : t -> template:string -> state
(** [Closed] for templates never seen. Reflects cooldown expiry: an open
    breaker whose cooldown has elapsed reports [Half_open]. *)

val states : t -> (string * state) list
(** Every template with a non-[Closed] breaker, sorted by name. *)

val opened_total : t -> int
val closed_total : t -> int
