(** Compile-miss storm detector.

    A shard rejoining with a cold plan cache, or a mass invalidation, turns
    every client into a simultaneous compile; retries amplify the load and
    the system can stay collapsed after the trigger clears — a metastable
    failure. This detector watches the {e per-template compile-arrival
    trend} (the leading signal) rather than queue depth (the trailing
    one): compile arrivals are bucketed into fixed windows, each closed
    window feeds an EWMA baseline, and a window whose count reaches
    [surge_factor] times that baseline (never below the [min_misses]
    floor) flags a storm. The episode ends after [calm_windows]
    consecutive quiet windows. Begin/end flips emit [storm:*] trace
    events and fire a callback so the server can gate its recovery mode
    (tightened admission, warm-priming the hottest templates). All
    bookkeeping is lazy — no timer process, an idle detector costs
    nothing — and consumes no randomness, so replays are unchanged. *)

type config = {
  enabled : bool;
  window_s : float;  (** bucketing window for arrival counting *)
  surge_factor : float;  (** storm when count >= factor x baseline *)
  min_misses : int;  (** absolute floor: a quiet baseline is ~0 *)
  calm_windows : int;  (** consecutive quiet windows that end an episode *)
}

val default_config : config
val disabled : config

type t

val create : ?trace:Obs.Trace.t -> Sim.Engine.t -> config -> t
(** Raises [Invalid_argument] on non-positive windows/floors. *)

val set_on_change : t -> (bool -> unit) -> unit
(** [f true] fires when a storm begins, [f false] when it ends. *)

val note_compile : t -> template:string -> unit
(** Record one compile arrival (a plan-cache miss) for [template]. May
    flag a storm mid-window — detection is eager, not end-of-window. *)

val active : t -> bool
(** Is a storm episode in progress (after rolling elapsed windows)? *)

val storms_total : t -> int
(** Episodes flagged since creation. *)

val baseline : t -> float
(** Current EWMA of per-window miss counts (diagnostics/reports). *)

val hottest : t -> k:int -> (string * int) list
(** Top-[k] templates by cumulative miss count, ties broken by name so
    the list is deterministic — the warm-priming order on shard rejoin. *)
