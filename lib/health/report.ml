type t = {
  duration_s : float;
  completed : int;
  errors : (Error.code * int) list;
  watchdog_watched : int;
  watchdog_stale : int;
  watchdog_cancels : int;
  breaker_opens : int;
  breaker_closes : int;
  breakers_open : (string * Breaker.state) list;
  gate_widens : int;
  gates_widened : (string * int) list;
  forced_reclaims : int;
}

let stuck t = t.watchdog_watched
let total_errors t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.errors

let severe_errors t =
  List.fold_left
    (fun acc (code, n) ->
      if Error.severity code = Error.Severe then acc + n else acc)
    0 t.errors

let pp fmt t =
  let line k v = Format.fprintf fmt "  %-28s %s@\n" k v in
  Format.fprintf fmt "health report (%.0f s measured)@\n" t.duration_s;
  line "completed queries" (string_of_int t.completed);
  line "failed queries" (string_of_int (total_errors t));
  line "permanently stuck" (string_of_int (stuck t));
  line "watchdog stale / cancels"
    (Printf.sprintf "%d / %d" t.watchdog_stale t.watchdog_cancels);
  line "breaker opens / closes"
    (Printf.sprintf "%d / %d" t.breaker_opens t.breaker_closes);
  (match t.breakers_open with
  | [] -> ()
  | open_now ->
      line "breakers not closed"
        (String.concat ", "
           (List.map
              (fun (tpl, st) ->
                Printf.sprintf "%s:%s" tpl (Breaker.state_name st))
              open_now)));
  line "gate widenings" (string_of_int t.gate_widens);
  (match t.gates_widened with
  | [] -> ()
  | widened ->
      line "gates still widened"
        (String.concat ", "
           (List.map (fun (g, extra) -> Printf.sprintf "%s:+%d" g extra) widened)));
  line "forced reclaims" (string_of_int t.forced_reclaims);
  Format.fprintf fmt "  error budget@\n";
  Format.fprintf fmt "    %-22s %5s  %-8s %-9s %7s@\n" "code" "sql" "severity"
    "retryable" "count";
  List.iter
    (fun (code, count) ->
      Format.fprintf fmt "    %-22s %5s  %-8s %-9s %7d@\n"
        (Error.code_name code)
        (match Error.sql_code code with
        | Some n -> string_of_int n
        | None -> "-")
        (Error.severity_name (Error.severity code))
        (if Error.retryable code then "yes" else "no")
        count)
    t.errors
