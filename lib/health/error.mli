(** Structured resource-error taxonomy.

    Every way a query can fail for resource reasons in the simulated server
    gets one code here, mirroring the SQL Server errors the paper's
    mechanism surfaces in production: 701 (insufficient memory to run),
    8645 (timeout waiting for a memory resource) and 8651 (could not get
    the requested memory under low-memory conditions). The supervision
    layer adds its own codes for the decisions it takes (shed, breaker
    open, watchdog cancel) so that {e every} failure in a health report is
    accounted for — no anonymous errors. *)

type code =
  | Insufficient_memory
      (** compile-time allocation failed outright — SQL Server 701 *)
  | Memory_wait_timeout
      (** timed out queued for a memory resource (a compilation gateway or
          the workspace-grant queue) — SQL Server 8645 *)
  | Low_memory_condition
      (** the requested workspace grant could not be produced under
          low-memory conditions — SQL Server 8651 *)
  | Admission_shed  (** admission control refused the query at the door *)
  | Breaker_open  (** the template's circuit breaker is open *)
  | Watchdog_cancelled  (** the watchdog cancelled a silent/stuck query *)
  | Deadline_exceeded  (** the query's own deadline expired *)
  | Shard_unavailable
      (** the shard holding this query's placement is down (or its
          connection was lost mid-flight when the shard crashed) — a
          routing-layer condition, retryable against a surviving shard *)
  | Retry_budget_exhausted
      (** the client's retry token bucket is empty: retry load is capped at
          a fixed fraction of goodput, so during an outage further retries
          fail fast here instead of amplifying the storm *)

type severity = Severe | Warning | Informational

type t = { code : code; detail : string }
(** [detail] names the failing resource (gateway name, clerk, template). *)

val make : ?detail:string -> code -> t

val all_codes : code list
(** Every code, in fixed report order. *)

val code_name : code -> string
(** Stable machine-readable name, e.g. ["memory-wait-timeout"]. *)

val sql_code : code -> int option
(** The SQL Server error number the code mirrors, if any. *)

val severity : code -> severity
(** 701/8645/8651 are [Severe]; watchdog cancels and missed deadlines are
    [Warning]s (the supervisor chose them); sheds and breaker rejections
    are [Informational] back-pressure, not failures of the engine. *)

val retryable : code -> bool
(** Whether a client retry has a reasonable chance: resource waits and
    back-pressure are retryable; watchdog cancels and expired deadlines
    are not (the query itself is the problem, or its budget is gone). *)

val severity_name : severity -> string

val to_string : t -> string
(** One-line rendering: ["8645 memory-wait-timeout (big)"]. *)
