type config = { failure_threshold : int; cooldown_s : float }

let default_config = { failure_threshold = 3; cooldown_s = 60.0 }

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

(* Internal per-template cell. [Open] remembers when it tripped so the
   cooldown can be checked lazily at the next admission — no timer is
   needed and an idle open breaker costs nothing. *)
type cell = {
  mutable cstate : state;
  mutable failures : int;  (* consecutive hard failures while closed *)
  mutable opened_at : float;  (* valid when cstate = Open *)
  mutable probe_out : bool;  (* half-open: the single probe is in flight *)
}

type t = {
  eng : Sim.Engine.t;
  config : config;
  trace : Obs.Trace.t;
  cells : (string, cell) Hashtbl.t;
  mutable opened_total : int;
  mutable closed_total : int;
}

let create ?(trace = Obs.Trace.null) eng config =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker: failure_threshold must be >= 1";
  if config.cooldown_s <= 0. then invalid_arg "Breaker: cooldown_s must be > 0";
  {
    eng;
    config;
    trace;
    cells = Hashtbl.create 16;
    opened_total = 0;
    closed_total = 0;
  }

let cell t template =
  match Hashtbl.find_opt t.cells template with
  | Some c -> c
  | None ->
      let c =
        { cstate = Closed; failures = 0; opened_at = 0.; probe_out = false }
      in
      Hashtbl.add t.cells template c;
      c

let emit t template event =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid:template event

(* Lazily move an expired-open cell to half-open. *)
let refresh t (c : cell) =
  if
    c.cstate = Open
    && Sim.Engine.now t.eng -. c.opened_at >= t.config.cooldown_s
  then (
    c.cstate <- Half_open;
    c.probe_out <- false)

let admit t ~template =
  let c = cell t template in
  refresh t c;
  match c.cstate with
  | Closed -> Ok ()
  | Half_open when not c.probe_out ->
      c.probe_out <- true;
      Ok ()
  | Half_open | Open -> Error (Error.make ~detail:template Error.Breaker_open)

let trip t template (c : cell) =
  c.cstate <- Open;
  c.opened_at <- Sim.Engine.now t.eng;
  c.failures <- 0;
  c.probe_out <- false;
  t.opened_total <- t.opened_total + 1;
  emit t template (Obs.Event.Breaker_open { template })

let record_success t ~template =
  let c = cell t template in
  refresh t c;
  match c.cstate with
  | Closed -> c.failures <- 0
  | Half_open ->
      c.cstate <- Closed;
      c.failures <- 0;
      c.probe_out <- false;
      t.closed_total <- t.closed_total + 1;
      emit t template (Obs.Event.Breaker_close { template })
  | Open ->
      (* A query admitted before the trip finished late; its success says
         nothing about the fault that opened the breaker. *)
      ()

let record_failure t ~template =
  let c = cell t template in
  refresh t c;
  match c.cstate with
  | Closed ->
      c.failures <- c.failures + 1;
      if c.failures >= t.config.failure_threshold then trip t template c
  | Half_open ->
      (* Only the probe's own failure re-trips. A stale hard failure from
         a query admitted before the trip says nothing about recovery —
         ignoring it mirrors the [Open] case below. *)
      if c.probe_out then trip t template c
  | Open -> ()

let release_probe t ~template =
  match Hashtbl.find_opt t.cells template with
  | None -> ()
  | Some c ->
      refresh t c;
      (* The probe was admitted but never ran (shed by admission control
         downstream). Returning the slot keeps the breaker testable: the
         next arrival becomes the probe instead of the cell wedging
         half-open with a phantom probe in flight. Counting the shed as a
         failure would re-open a breaker whose template never got to
         prove itself. *)
      if c.cstate = Half_open && c.probe_out then c.probe_out <- false

let state t ~template =
  match Hashtbl.find_opt t.cells template with
  | None -> Closed
  | Some c ->
      refresh t c;
      c.cstate

let states t =
  Hashtbl.fold
    (fun template c acc ->
      refresh t c;
      if c.cstate = Closed then acc else (template, c.cstate) :: acc)
    t.cells []
  |> List.sort compare

let opened_total t = t.opened_total
let closed_total t = t.closed_total
