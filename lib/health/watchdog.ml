type config = { poll_s : float; stale_after_s : float; cancel_after_s : float }

let default_config = { poll_s = 30.0; stale_after_s = 240.0; cancel_after_s = 720.0 }

type session = {
  qid : string;
  id : int;
  seng : Sim.Engine.t;
  mutable last_beat : float;
  mutable soft : bool;
  mutable cancel : bool;
}

type t = {
  eng : Sim.Engine.t;
  config : config;
  trace : Obs.Trace.t;
  sessions : (int, session) Hashtbl.t;
  mutable next_id : int;
  mutable stale_total : int;
  mutable cancel_total : int;
}

let create ?(trace = Obs.Trace.null) eng config =
  if config.poll_s <= 0. then invalid_arg "Watchdog: poll_s must be > 0";
  if config.stale_after_s <= 0. || config.cancel_after_s <= config.stale_after_s
  then invalid_arg "Watchdog: need 0 < stale_after_s < cancel_after_s";
  {
    eng;
    config;
    trace;
    sessions = Hashtbl.create 64;
    next_id = 0;
    stale_total = 0;
    cancel_total = 0;
  }

let emit t qid event =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid event

let audit t =
  let now = Sim.Engine.now t.eng in
  Hashtbl.iter
    (fun _ s ->
      let age = now -. s.last_beat in
      if age >= t.config.cancel_after_s && not s.cancel then (
        s.cancel <- true;
        t.cancel_total <- t.cancel_total + 1;
        emit t s.qid (Obs.Event.Watchdog_cancel { age }))
      else if age >= t.config.stale_after_s && not s.soft then (
        s.soft <- true;
        t.stale_total <- t.stale_total + 1;
        emit t s.qid (Obs.Event.Heartbeat_stale { age })))
    t.sessions

let start t =
  ignore
    (Sim.Engine.every t.eng ~start:t.config.poll_s ~interval:t.config.poll_s
       (fun () -> audit t))

let watch t ~qid =
  let id = t.next_id in
  t.next_id <- id + 1;
  let s =
    {
      qid;
      id;
      seng = t.eng;
      last_beat = Sim.Engine.now t.eng;
      soft = false;
      cancel = false;
    }
  in
  Hashtbl.replace t.sessions id s;
  s

let beat s =
  s.last_beat <- Sim.Engine.now s.seng;
  (* A fresh sign of life un-softens the query — unless the watchdog has
     already escalated; cancellation is sticky. *)
  if not s.cancel then s.soft <- false

let unwatch t s = Hashtbl.remove t.sessions s.id
let softened s = s.soft
let cancel_requested s = s.cancel
let watched t = Hashtbl.length t.sessions
let stale_total t = t.stale_total
let cancel_total t = t.cancel_total
