(** Bundled supervision configuration.

    One record gating the whole supervision layer, mirroring how
    [Server.Resilience] bundles the degradation ladder: [disabled] (the
    default — a supervised-off run is byte-identical to an unsupervised
    one, since no supervision path consumes randomness) or [default]
    (watchdog + starvation auditor + breakers + broker insistence all
    on). *)

type config = {
  enabled : bool;
  watchdog : Watchdog.config;
  starvation : Starvation.config;
  breaker : Breaker.config;
  insist_after : int;
      (** broker shrink-compliance: a component above its shrink target
          for this many consecutive ticks gets a forced reclaim; [0]
          disables insistence *)
}

val disabled : config
val default : config
(** Enabled, with each subsystem's default config and [insist_after = 5]. *)
