type code =
  | Insufficient_memory
  | Memory_wait_timeout
  | Low_memory_condition
  | Admission_shed
  | Breaker_open
  | Watchdog_cancelled
  | Deadline_exceeded
  | Shard_unavailable
  | Retry_budget_exhausted

type severity = Severe | Warning | Informational
type t = { code : code; detail : string }

let make ?(detail = "") code = { code; detail }

let all_codes =
  [
    Insufficient_memory;
    Memory_wait_timeout;
    Low_memory_condition;
    Admission_shed;
    Breaker_open;
    Watchdog_cancelled;
    Deadline_exceeded;
    Shard_unavailable;
    Retry_budget_exhausted;
  ]

let code_name = function
  | Insufficient_memory -> "insufficient-memory"
  | Memory_wait_timeout -> "memory-wait-timeout"
  | Low_memory_condition -> "low-memory-condition"
  | Admission_shed -> "admission-shed"
  | Breaker_open -> "breaker-open"
  | Watchdog_cancelled -> "watchdog-cancelled"
  | Deadline_exceeded -> "deadline-exceeded"
  | Shard_unavailable -> "shard-unavailable"
  | Retry_budget_exhausted -> "retry-budget-exhausted"

let sql_code = function
  | Insufficient_memory -> Some 701
  | Memory_wait_timeout -> Some 8645
  | Low_memory_condition -> Some 8651
  | Admission_shed | Breaker_open | Watchdog_cancelled | Deadline_exceeded
  | Shard_unavailable | Retry_budget_exhausted ->
      None

let severity = function
  | Insufficient_memory | Memory_wait_timeout | Low_memory_condition -> Severe
  | Watchdog_cancelled | Deadline_exceeded -> Warning
  | Admission_shed | Breaker_open | Shard_unavailable
  | Retry_budget_exhausted ->
      Informational

let retryable = function
  | Insufficient_memory | Memory_wait_timeout | Low_memory_condition
  | Admission_shed | Breaker_open | Shard_unavailable ->
      true
  | Watchdog_cancelled | Deadline_exceeded | Retry_budget_exhausted -> false

let severity_name = function
  | Severe -> "severe"
  | Warning -> "warning"
  | Informational -> "info"

let to_string t =
  let sql =
    match sql_code t.code with
    | Some n -> string_of_int n ^ " "
    | None -> ""
  in
  let detail = if t.detail = "" then "" else Printf.sprintf " (%s)" t.detail in
  sql ^ code_name t.code ^ detail
