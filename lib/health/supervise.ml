type config = {
  enabled : bool;
  watchdog : Watchdog.config;
  starvation : Starvation.config;
  breaker : Breaker.config;
  insist_after : int;
}

let disabled =
  {
    enabled = false;
    watchdog = Watchdog.default_config;
    starvation = Starvation.default_config;
    breaker = Breaker.default_config;
    insist_after = 0;
  }

let default =
  {
    enabled = true;
    watchdog = Watchdog.default_config;
    starvation = Starvation.default_config;
    breaker = Breaker.default_config;
    insist_after = 5;
  }
