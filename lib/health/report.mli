(** Health snapshot: what the supervision layer saw and did.

    Built by the server at the end of a run; printed by [dbsim health].
    The error-budget table accounts for {e every} failure by
    {!Error.code} — a non-zero total with an empty table would mean an
    anonymous failure slipped through the taxonomy, which the golden test
    treats as a bug. *)

type t = {
  duration_s : float;  (** measured interval *)
  completed : int;  (** queries that finished successfully *)
  errors : (Error.code * int) list;  (** all codes, fixed order *)
  watchdog_watched : int;  (** sessions still registered at the end *)
  watchdog_stale : int;
  watchdog_cancels : int;
  breaker_opens : int;
  breaker_closes : int;
  breakers_open : (string * Breaker.state) list;
      (** breakers not closed at the end of the run *)
  gate_widens : int;
  gates_widened : (string * int) list;  (** still above base width *)
  forced_reclaims : int;
}

val stuck : t -> int
(** Queries permanently stuck: still watched when the run ended. The
    supervised acceptance criterion is [stuck r = 0]. *)

val total_errors : t -> int

val severe_errors : t -> int
(** Errors whose code is {!Error.Severe}. *)

val pp : Format.formatter -> t -> unit
(** Render the snapshot with the error-budget table (code, SQL number,
    severity, retryability, count). *)
