type config = {
  audit_s : float;
  stall_audits : int;
  widen_by : int;
  max_widen : int;
}

let default_config =
  { audit_s = 60.0; stall_audits = 3; widen_by = 1; max_widen = 2 }

type gate = {
  gname : string;
  queued : unit -> int;
  admitted : unit -> int;
  slots : unit -> int;
  set_slots : int -> unit;
  base : int;
  mutable last_admitted : int;
  mutable stalled : int;  (* consecutive audits with waiters and no grants *)
}

type t = {
  eng : Sim.Engine.t;
  config : config;
  trace : Obs.Trace.t;
  mutable gates : gate list;
  mutable widen_total : int;
}

let create ?(trace = Obs.Trace.null) eng config =
  if config.audit_s <= 0. then invalid_arg "Starvation: audit_s must be > 0";
  if config.stall_audits < 1 then
    invalid_arg "Starvation: stall_audits must be >= 1";
  { eng; config; trace; gates = []; widen_total = 0 }

let add_gate t ~name ~queued ~admitted ~slots ~set_slots =
  let g =
    {
      gname = name;
      queued;
      admitted;
      slots;
      set_slots;
      base = slots ();
      last_admitted = admitted ();
      stalled = 0;
    }
  in
  t.gates <- t.gates @ [ g ]

let emit t event =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid:"" event

let audit_gate t g =
  let admitted = g.admitted () in
  let progressed = admitted <> g.last_admitted in
  g.last_admitted <- admitted;
  if g.queued () = 0 then (
    g.stalled <- 0;
    (* Queue drained: give back any emergency slots. *)
    if g.slots () > g.base then (
      g.set_slots g.base;
      emit t (Obs.Event.Gate_widen { gate = g.gname; slots = g.base })))
  else if progressed then g.stalled <- 0
  else begin
    g.stalled <- g.stalled + 1;
    if g.stalled >= t.config.stall_audits then begin
      g.stalled <- 0;
      let cur = g.slots () in
      let widened = min (cur + t.config.widen_by) (g.base + t.config.max_widen) in
      if widened > cur then (
        g.set_slots widened;
        t.widen_total <- t.widen_total + 1;
        emit t (Obs.Event.Gate_widen { gate = g.gname; slots = widened }))
    end
  end

let start t =
  ignore
    (Sim.Engine.every t.eng ~start:t.config.audit_s ~interval:t.config.audit_s
       (fun () -> List.iter (audit_gate t) t.gates))

let widen_total t = t.widen_total

let widened_now t =
  List.filter_map
    (fun g ->
      let extra = g.slots () - g.base in
      if extra > 0 then Some (g.gname, extra) else None)
    t.gates
