(** TPC-H-like schema and query templates (comparison workload).

    The paper contrasts the SALES queries (15-20 joins, heavy compile
    memory) with TPC-H queries "of similar scale" (0-8 joins), reporting
    that SALES compilations use one to two orders of magnitude more memory.
    This module provides a scale-factor-100-like schema and six templates
    shaped after Q1/Q3/Q5/Q8/Q9/Q10 spanning the 0-8-join band.

    Both generators take an optional scale factor (default [100.], the
    paper-scale comparison). Smaller factors shrink every table
    proportionally — the multi-tenant experiment runs its victim at
    [~sf:1.] so TPC-H executions finish in simulated seconds instead of
    tens of minutes. A catalog and templates must share the same [sf]:
    the templates bake per-table row counts into join selectivities. *)

val catalog : ?sf:float -> unit -> Optimizer.Catalog.t

(** Six templates ordered by join count (0 ... 8 relations - 1). *)
val templates : ?sf:float -> unit -> Template.t list
