open Optimizer

let fact_table = "sales"

(* (name, rows, pad_width, indexed_attr). Pad width models the descriptive
   columns of the real application's dimensions; [indexed_attr] marks
   dimensions large enough that the customer would index the attributes
   their analysts filter on. *)
let dimension_spec =
  [
    ("customer", 5_000_000., 180, true);
    ("product", 1_600_000., 180, true);
    ("date_dim", 3650., 80, false);
    ("supplier", 800_000., 140, true);
    ("store", 400_000., 180, true);
    ("employee", 600_000., 140, true);
    ("promotion", 250_000., 180, true);
    ("warehouse", 2_000., 180, false);
    ("brand", 5_000., 80, false);
    ("subcategory", 2_000., 80, false);
    ("region", 500., 80, false);
    ("country", 250., 80, false);
    ("currency", 200., 80, false);
    ("category", 200., 80, false);
    ("channel", 100., 80, false);
    ("carrier", 100., 80, false);
    ("payment_type", 50., 80, false);
    ("segment", 40., 80, false);
    ("order_status", 20., 80, false);
  ]

let dimensions = List.map (fun (n, _, _, _) -> n) dimension_spec

let fact_rows = 400_000_000.
let date_days = 3650

let measures = [ "quantity"; "revenue"; "cost_amount"; "discount" ]

let catalog () =
  let cat = Catalog.create () in
  List.iter
    (fun (name, rows, pad, indexed_attr) ->
      let columns =
        [
          Catalog.int_column (name ^ "_key") ~distinct:rows;
          {
            (Catalog.int_column "attr" ~distinct:100.) with
            Catalog.min_value = 0;
            max_value = 99;
          };
          {
            Catalog.col_name = "pad";
            col_ty = Relation.Value.Tstring;
            distinct = 20.;
            min_value = 0;
            max_value = 19;
            avg_width = pad;
            histogram = None;
          };
        ]
      in
      let indexes =
        { Catalog.idx_name = name ^ "_pk"; idx_columns = [ name ^ "_key" ]; clustered = true }
        ::
        (if indexed_attr then
           [ { Catalog.idx_name = name ^ "_attr"; idx_columns = [ "attr" ]; clustered = false } ]
         else [])
      in
      Catalog.add_table cat { Catalog.tbl_name = name; rows; columns; indexes })
    dimension_spec;
  let fact_columns =
    Catalog.int_column "sales_key" ~distinct:fact_rows
    :: List.map
         (fun (name, rows, _, _) -> Catalog.int_column (name ^ "_key") ~distinct:rows)
         dimension_spec
    @ List.map (fun m -> Catalog.int_column m ~distinct:100_000.) measures
    @ [
        {
          Catalog.col_name = "pad";
          col_ty = Relation.Value.Tstring;
          distinct = 20.;
          min_value = 0;
          max_value = 19;
          avg_width = 1040;
          histogram = None;
        };
      ]
  in
  Catalog.add_table cat
    {
      Catalog.tbl_name = fact_table;
      rows = fact_rows;
      columns = fact_columns;
      indexes =
        [
          (* Clustered on the date key: ad-hoc analyses slice by time, so
             the date-window filter turns full-fact scans into range
             fetches. *)
          { Catalog.idx_name = "sales_date"; idx_columns = [ "date_dim_key" ]; clustered = true };
          { Catalog.idx_name = "sales_pk"; idx_columns = [ "sales_key" ]; clustered = false };
        ];
    };
  cat

(* ------------------------------------------------------------------ *)
(* Templates *)

type shape = {
  sname : string;
  min_dims : int;
  max_dims : int;
  window_days_lo : int;  (** date-window length band *)
  window_days_hi : int;
  dim_filters : int;
  group_cols : int;
  sums : int;
}

(* Ten shapes spanning the paper's 15-20-join band, with different date
   windows (the dominant factor in how much of the fact is touched). *)
let shapes =
  [
    { sname = "s0_monthly_mix"; min_dims = 15; max_dims = 17; window_days_lo = 4; window_days_hi = 8; dim_filters = 2; group_cols = 2; sums = 3 };
    { sname = "s1_quarter_broad"; min_dims = 17; max_dims = 19; window_days_lo = 10; window_days_hi = 15; dim_filters = 1; group_cols = 1; sums = 2 };
    { sname = "s2_promo_deep"; min_dims = 16; max_dims = 18; window_days_lo = 4; window_days_hi = 11; dim_filters = 3; group_cols = 2; sums = 4 };
    { sname = "s3_supplier_cost"; min_dims = 15; max_dims = 16; window_days_lo = 6; window_days_hi = 11; dim_filters = 2; group_cols = 3; sums = 2 };
    { sname = "s4_halfyear_trend"; min_dims = 18; max_dims = 19; window_days_lo = 19; window_days_hi = 24; dim_filters = 2; group_cols = 2; sums = 3 };
    { sname = "s5_store_detail"; min_dims = 15; max_dims = 17; window_days_lo = 3; window_days_hi = 6; dim_filters = 3; group_cols = 3; sums = 4 };
    { sname = "s6_channel_rollup"; min_dims = 16; max_dims = 18; window_days_lo = 8; window_days_hi = 13; dim_filters = 1; group_cols = 1; sums = 2 };
    { sname = "s7_customer_seg"; min_dims = 17; max_dims = 19; window_days_lo = 5; window_days_hi = 10; dim_filters = 2; group_cols = 2; sums = 3 };
    { sname = "s8_product_margin"; min_dims = 15; max_dims = 18; window_days_lo = 11; window_days_hi = 18; dim_filters = 2; group_cols = 2; sums = 4 };
    { sname = "s9_yearly_exec"; min_dims = 16; max_dims = 19; window_days_lo = 15; window_days_hi = 23; dim_filters = 1; group_cols = 1; sums = 2 };
  ]

let dim_rows name =
  let (_, rows, _, _) = List.find (fun (n, _, _, _) -> n = name) dimension_spec in
  rows

(* Dimensions every analyst query touches. *)
let core_dims = [ "customer"; "product"; "date_dim" ]

let instantiate_shape ?id_override shape rng id =
  let n_dims =
    shape.min_dims + Sim.Rng.int rng (shape.max_dims - shape.min_dims + 1)
  in
  let optional = List.filter (fun d -> not (List.mem d core_dims)) dimensions in
  let extra =
    Array.to_list
      (Sim.Rng.sample rng (Array.of_list optional) (n_dims - List.length core_dims))
  in
  let dims = core_dims @ extra in
  let rels = (fact_table, "f") :: List.map (fun d -> (d, d)) dims in
  let dim_index d =
    let rec find i = function
      | [] -> raise Not_found
      | x :: _ when x = d -> i + 1 (* fact is index 0 *)
      | _ :: rest -> find (i + 1) rest
    in
    find 0 dims
  in
  let preds =
    List.map
      (fun d ->
        {
          Query.jleft = 0;
          jlcol = d ^ "_key";
          jright = dim_index d;
          jrcol = d ^ "_key";
          jsel = 1.0 /. dim_rows d;
        })
      dims
  in
  (* Date window on the fact's clustered date key. The window length sets
     the touched fraction of the fact; the position is the uniquifying
     literal. *)
  let window =
    shape.window_days_lo
    + Sim.Rng.int rng (shape.window_days_hi - shape.window_days_lo + 1)
  in
  let window_end = window + Sim.Rng.int rng (max 1 (date_days - window)) in
  let date_filter =
    {
      Query.frel = 0;
      fcol = "date_dim_key";
      fop = Query.Le;
      fvalue = window_end;
      fsel = float_of_int window /. float_of_int date_days;
    }
  in
  (* Attribute filters on a few of the larger chosen dimensions. *)
  let filterable =
    List.filter
      (fun d -> List.mem d [ "customer"; "product"; "supplier"; "store"; "employee"; "promotion" ])
      dims
  in
  let dim_filters =
    List.filteri (fun i _ -> i < shape.dim_filters) filterable
    |> List.map (fun d ->
           let v = 4 + Sim.Rng.int rng 56 in
           {
             Query.frel = dim_index d;
             fcol = "attr";
             fop = Query.Le;
             fvalue = v;
             fsel = float_of_int (v + 1) /. 100.;
           })
  in
  let groupable = List.filter (fun d -> d <> "date_dim") dims in
  let group_by =
    Array.to_list
      (Sim.Rng.sample rng (Array.of_list groupable) (min shape.group_cols (List.length groupable)))
    |> List.map (fun d -> (dim_index d, "attr"))
  in
  let sum_cols =
    List.filteri (fun i _ -> i < shape.sums) measures
    |> List.map (fun m -> (0, m))
  in
  Query.make
    ~id:
      (match id_override with
      | Some s -> s
      | None -> Printf.sprintf "%s#%06d" shape.sname id)
    ~rels ~preds
    ~filters:(date_filter :: dim_filters)
    ~agg:(Some { Query.group_by; sum_cols })

let templates () =
  List.map
    (fun shape ->
      {
        Template.tname = shape.sname;
        weight = 1.0;
        instantiate = instantiate_shape shape;
      })
    shapes

(* Parameterized application queries: each variant is one fixed draw from
   a shape, replayed verbatim on every submission. The stable fingerprint
   makes the variant cacheable — after the first compile, repeats are plan
   cache hits — which is precisely what makes a cold restart expensive:
   every variant whose plan lived on the dead shard must recompile at
   once, and only the compile gateways keep that storm from eating the
   rejoining shard's memory. *)
let parameterized_templates ?(variants = 40) () =
  List.init variants (fun i ->
      let tname = Printf.sprintf "p%03d" i in
      let shape = List.nth shapes (i mod List.length shapes) in
      let rng = Sim.Rng.create (0x5eed lxor i) in
      let q = instantiate_shape ~id_override:(tname ^ "#0") shape rng 0 in
      { Template.tname; weight = 1.0; instantiate = (fun _rng _id -> q) })

let diagnostic_template () =
  {
    Template.tname = "diag";
    weight = 1.0;
    instantiate =
      (fun _rng _id ->
        (* Stable fingerprint: diagnostics are cacheable and tiny. *)
        Query.make ~id:"diag#0"
          ~rels:[ (fact_table, "f") ]
          ~preds:[]
          ~filters:
            [
              {
                Query.frel = 0;
                fcol = "sales_key";
                fop = Query.Eq;
                fvalue = 123_456;
                fsel = 1.0 /. fact_rows;
              };
            ]
          ~agg:None);
  }
