(** Simulated database clients.

    Each client loops: think, pick a template, instantiate a unique query,
    submit it, and — matching the paper's observation that "aborted queries
    likely need to be resubmitted to the system" — retry on resource errors
    after a short backoff, up to a bound. *)

type config = {
  think_mean : float;  (** exponential think time between queries *)
  retry_delay : float;
      (** initial backoff before resubmitting a failed query; doubles per
          consecutive failure *)
  max_attempts : int;  (** total attempts per query before giving up *)
}

val default_config : config

type stats = {
  mutable submitted : int;  (** distinct queries issued *)
  mutable attempts : int;  (** submissions including retries *)
  mutable succeeded : int;
  mutable abandoned : int;  (** queries dropped after [max_attempts] *)
}

(** What a client needs from the server: submit a query and block until it
    completes or fails. The error is an opaque description. *)
type submit = Optimizer.Query.t -> (unit, string) result

(** [spawn eng rng ~name ~templates ~submit ~config ~stats ~until] starts a
    client process that runs until the engine clock passes [until]. Query
    instance ids are drawn from [ids] (shared across clients so every
    instantiation is globally unique). [start] (default [0.]) delays the
    first think — flash-crowd clients appear mid-run. [think_of], when
    given, maps the current simulation time to the think-time mean,
    overriding [config.think_mean] (diurnal load curves). *)
val spawn :
  ?start:float ->
  ?think_of:(float -> float) ->
  Sim.Engine.t ->
  Sim.Rng.t ->
  name:string ->
  templates:Template.t list ->
  submit:submit ->
  config:config ->
  stats:stats ->
  ids:int ref ->
  until:float ->
  unit

val make_stats : unit -> stats
