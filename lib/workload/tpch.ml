open Optimizer

(* Default is roughly scale factor 100, the paper-scale comparison. *)
let default_sf = 100.

let tables sf =
  [
    (* (name, rows, fks, measures, pad_width) *)
    ("region", 5., [], [], 80);
    ("nation", 25., [ "region" ], [], 80);
    ("supplier", 10_000. *. sf, [ "nation" ], [], 140);
    ("customer", 150_000. *. sf, [ "nation" ], [], 160);
    ("part", 200_000. *. sf, [], [], 120);
    ("partsupp", 800_000. *. sf, [ "part"; "supplier" ], [ "supplycost" ], 140);
    ("orders", 1_500_000. *. sf, [ "customer" ], [ "totalprice" ], 80);
    ( "lineitem",
      6_000_000. *. sf,
      [ "orders"; "part"; "supplier" ],
      [ "extendedprice"; "disc"; "qty" ],
      60 );
  ]

let rows_of sf name =
  let (_, rows, _, _, _) =
    List.find (fun (n, _, _, _, _) -> n = name) (tables sf)
  in
  rows

let catalog ?(sf = default_sf) () =
  let cat = Catalog.create () in
  List.iter
    (fun (name, rows, fks, measures, pad) ->
      let columns =
        Catalog.int_column (name ^ "_key") ~distinct:rows
        :: {
             (Catalog.int_column "attr" ~distinct:100.) with
             Catalog.min_value = 0;
             max_value = 99;
           }
        :: List.map (fun fk -> Catalog.int_column (fk ^ "_key") ~distinct:(rows_of sf fk)) fks
        @ List.map (fun m -> Catalog.int_column m ~distinct:10_000.) measures
        @ [
            {
              Catalog.col_name = "pad";
              col_ty = Relation.Value.Tstring;
              distinct = 20.;
              min_value = 0;
              max_value = 19;
              avg_width = pad;
              histogram = None;
            };
          ]
      in
      Catalog.add_table cat
        {
          Catalog.tbl_name = name;
          rows;
          columns;
          indexes =
            [
              { Catalog.idx_name = name ^ "_pk"; idx_columns = [ name ^ "_key" ]; clustered = true };
              { Catalog.idx_name = name ^ "_attr"; idx_columns = [ "attr" ]; clustered = false };
            ];
        })
    (tables sf);
  cat

(* Join-graph description: relations (table, alias), pk-fk edges given as
   (fk-side alias, pk-side alias, referenced table). *)
type qshape = {
  qname : string;
  qrels : (string * string) list;
  qedges : (string * string * string) list;
  filter_rel : string;  (** alias receiving the selective attr filter *)
  group_rel : string option;
  sum_rel : (string * string) option;  (** (alias, measure column) *)
}

let qshapes =
  [
    {
      qname = "q1_pricing";
      qrels = [ ("lineitem", "l") ];
      qedges = [];
      filter_rel = "l";
      group_rel = Some "l";
      sum_rel = Some ("l", "extendedprice");
    };
    {
      qname = "q10_returns";
      qrels = [ ("customer", "c"); ("orders", "o"); ("lineitem", "l"); ("nation", "n") ];
      qedges = [ ("o", "c", "customer"); ("l", "o", "orders"); ("c", "n", "nation") ];
      filter_rel = "o";
      group_rel = Some "c";
      sum_rel = Some ("l", "extendedprice");
    };
    {
      qname = "q3_shipping";
      qrels = [ ("customer", "c"); ("orders", "o"); ("lineitem", "l") ];
      qedges = [ ("o", "c", "customer"); ("l", "o", "orders") ];
      filter_rel = "c";
      group_rel = Some "o";
      sum_rel = Some ("l", "extendedprice");
    };
    {
      qname = "q9_profit";
      qrels =
        [ ("part", "p"); ("supplier", "s"); ("lineitem", "l"); ("partsupp", "ps");
          ("orders", "o"); ("nation", "n") ];
      qedges =
        [ ("l", "p", "part"); ("l", "s", "supplier"); ("ps", "p", "part");
          ("l", "o", "orders"); ("s", "n", "nation") ];
      filter_rel = "p";
      group_rel = Some "n";
      sum_rel = Some ("l", "extendedprice");
    };
    {
      qname = "q5_local_volume";
      qrels =
        [ ("customer", "c"); ("orders", "o"); ("lineitem", "l"); ("supplier", "s");
          ("nation", "n"); ("region", "r") ];
      qedges =
        [ ("o", "c", "customer"); ("l", "o", "orders"); ("l", "s", "supplier");
          ("s", "n", "nation"); ("n", "r", "region") ];
      filter_rel = "o";
      group_rel = Some "n";
      sum_rel = Some ("l", "extendedprice");
    };
    {
      qname = "q8_market_share";
      qrels =
        [ ("part", "p"); ("supplier", "s"); ("lineitem", "l"); ("orders", "o");
          ("customer", "c"); ("nation", "n1"); ("nation", "n2"); ("region", "r") ];
      qedges =
        [ ("l", "p", "part"); ("l", "s", "supplier"); ("l", "o", "orders");
          ("o", "c", "customer"); ("c", "n1", "nation"); ("s", "n2", "nation");
          ("n1", "r", "region") ];
      filter_rel = "p";
      group_rel = Some "n2";
      sum_rel = Some ("l", "extendedprice");
    };
  ]

let instantiate_qshape sf shape rng id =
  let alias_index a =
    let rec find i = function
      | [] -> raise Not_found
      | (_, alias) :: _ when alias = a -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 shape.qrels
  in
  let preds =
    List.map
      (fun (fk_alias, pk_alias, target) ->
        {
          Query.jleft = alias_index fk_alias;
          jlcol = target ^ "_key";
          jright = alias_index pk_alias;
          jrcol = target ^ "_key";
          jsel = 1.0 /. rows_of sf target;
        })
      shape.qedges
  in
  let v = 2 + Sim.Rng.int rng 30 in
  let filters =
    [
      {
        Query.frel = alias_index shape.filter_rel;
        fcol = "attr";
        fop = Query.Le;
        fvalue = v;
        fsel = float_of_int (v + 1) /. 100.;
      };
    ]
  in
  let agg =
    match (shape.group_rel, shape.sum_rel) with
    | Some g, Some (sa, sc) ->
        Some
          {
            Query.group_by = [ (alias_index g, "attr") ];
            sum_cols = [ (alias_index sa, sc) ];
          }
    | _ -> None
  in
  Query.make
    ~id:(Printf.sprintf "%s#%06d" shape.qname id)
    ~rels:shape.qrels ~preds ~filters ~agg

let templates ?(sf = default_sf) () =
  List.map
    (fun shape ->
      {
        Template.tname = shape.qname;
        weight = 1.0;
        instantiate = instantiate_qshape sf shape;
      })
    qshapes
