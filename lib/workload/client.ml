type config = { think_mean : float; retry_delay : float; max_attempts : int }

let default_config = { think_mean = 100.0; retry_delay = 5.0; max_attempts = 5 }

type stats = {
  mutable submitted : int;
  mutable attempts : int;
  mutable succeeded : int;
  mutable abandoned : int;
}

type submit = Optimizer.Query.t -> (unit, string) result

let make_stats () = { submitted = 0; attempts = 0; succeeded = 0; abandoned = 0 }

let spawn ?(start = 0.) ?think_of eng rng ~name ~templates ~submit ~config
    ~stats ~ids ~until =
  let rng = Sim.Rng.split rng in
  let think_mean =
    match think_of with
    | Some f -> f
    | None -> fun _ -> config.think_mean
  in
  Sim.Engine.spawn eng ~name (fun () ->
      let now = Sim.Engine.now eng in
      if start > now then Sim.Engine.sleep (start -. now);
      while Sim.Engine.now eng < until do
        let mean = think_mean (Sim.Engine.now eng) in
        Sim.Engine.sleep (Sim.Rng.exponential rng ~mean);
        if Sim.Engine.now eng < until then begin
          let template = Template.pick rng templates in
          incr ids;
          let q = Template.instance rng template ~id:!ids in
          stats.submitted <- stats.submitted + 1;
          let rec attempt n =
            stats.attempts <- stats.attempts + 1;
            match submit q with
            | Ok () -> stats.succeeded <- stats.succeeded + 1
            | Error _ when n + 1 < config.max_attempts ->
                (* Exponential backoff: resource errors mean the server is
                   saturated; hammering it amplifies the collapse. *)
                Sim.Engine.sleep (config.retry_delay *. (2. ** float_of_int n));
                attempt (n + 1)
            | Error _ -> stats.abandoned <- stats.abandoned + 1
          in
          attempt 0
        end
      done)
