(** The SALES benchmark (paper §5.1), rebuilt synthetically.

    A product-sales data warehouse: one 400-million-row fact table and 19
    dimension tables, ~524 GB in total, and ten complex ad-hoc query
    templates averaging 15-20 joins with aggregation over large data
    fractions. The customer application is proprietary, so the schema here
    is a synthetic star with the paper's published shape parameters (row
    counts, data volume, join counts, compile/execute time bands). *)

(** The full catalog (fact + 19 dimensions, ≈524 GB). *)
val catalog : unit -> Optimizer.Catalog.t

(** Name of the fact table (["sales"]). *)
val fact_table : string

(** Names of the dimension tables, in fact-FK order. *)
val dimensions : string list

(** The ten complex templates. Every instantiation joins the fact to a
    random 15-20-dimension subset, filters a random date window plus a few
    dimension attributes, groups by 1-3 attributes and computes 2-4 sums. *)
val templates : unit -> Template.t list

(** [parameterized_templates ~variants ()] models the application's
    parameterized query set: [variants] templates (default 40) named
    ["p000"..], each a single fixed draw from one of the ten shapes that
    is replayed verbatim on every submission. Because the fingerprint is
    stable, each variant compiles once and is a plan-cache hit thereafter
    — the workload whose cold-cache recompilation storm a shard restart
    must ride out. Deterministic: independent of the caller's rng. *)
val parameterized_templates : ?variants:int -> unit -> Template.t list

(** A small OLTP-style diagnostic query (fact slice by primary key range,
    no dimensions) — the class the first gateway threshold exempts. *)
val diagnostic_template : unit -> Template.t
