(** Traffic-mix knobs: parameterized-vs-ad-hoc ratio, diurnal load
    curves, and flash-crowd bursts.

    The paper's SALES workload deliberately uniquifies every statement to
    defeat caching; real fleets serve a blend. [mixed_templates] weights
    the stable parameterized variants against the uniquified ad-hoc
    shapes so a [ratio] of the submitted statements replay verbatim — the
    cacheable fraction — while the rest defeat every cache by
    construction. *)

(** [mixed_templates ~ratio ~variants ()] — [ratio] in [[0, 1]] is the
    probability mass on parameterized templates ([variants] of them);
    [1 -. ratio] goes to the ten uniquified ad-hoc shapes. The endpoints
    degenerate to a purely ad-hoc / purely parameterized list. *)
val mixed_templates : ratio:float -> variants:int -> unit -> Template.t list

(** A smooth day: client think time is divided by a load factor that
    swings sinusoidally between [1.] (trough, at [t = 0]) and
    [peak_load] (peak, at [t = period /. 2.]). *)
type diurnal = {
  period : float;  (** seconds per full cycle *)
  peak_load : float;  (** load multiplier at the peak, [>= 1.] *)
}

(** [think_of ?diurnal ~base] is a think-time curve for
    {!Client.spawn}'s [?think_of]: constant [base] without a curve,
    [base /. load t] with one. *)
val think_of : ?diurnal:diurnal -> base:float -> unit -> float -> float

(** A flash crowd: [clients] extra clients appear at [at], hammer with
    think time [think], and leave at [at +. duration]. *)
type flash = {
  at : float;
  duration : float;
  clients : int;
  think : float;
}

(** [spawn_flash eng ~seed ~label ~templates ~submit ~stats ~ids spec]
    spawns the crowd. Each client's randomness is keyed by
    [(seed, client name)], so the crowd's streams are independent of the
    rest of the workload. *)
val spawn_flash :
  Sim.Engine.t ->
  seed:int ->
  label:string ->
  templates:Template.t list ->
  submit:Client.submit ->
  stats:Client.stats ->
  ids:int ref ->
  flash ->
  unit
