let mixed_templates ~ratio ~variants () =
  if ratio < 0. || ratio > 1. then
    invalid_arg "Mix.mixed_templates: ratio outside [0, 1]";
  let adhoc = Sales.templates () in
  let param = Sales.parameterized_templates ~variants () in
  let weighted w ts =
    if w <= 0. then []
    else
      let each = w /. float_of_int (List.length ts) in
      List.map (fun t -> { t with Template.weight = each }) ts
  in
  weighted ratio param @ weighted (1. -. ratio) adhoc

type diurnal = { period : float; peak_load : float }

let think_of ?diurnal ~base () =
  match diurnal with
  | None -> fun _ -> base
  | Some d ->
      if d.period <= 0. || d.peak_load < 1. then
        invalid_arg "Mix.think_of: period <= 0 or peak_load < 1";
      fun now ->
        (* load swings 1 .. peak_load, trough at t = 0 (warmup starts
           quiet, the peak lands mid-cycle). *)
        let s =
          0.5 *. (1. -. cos (2. *. Float.pi *. now /. d.period))
        in
        base /. (1. +. ((d.peak_load -. 1.) *. s))

type flash = { at : float; duration : float; clients : int; think : float }

let spawn_flash eng ~seed ~label ~templates ~submit ~stats ~ids spec =
  if spec.clients < 0 || spec.duration < 0. || spec.at < 0. then
    invalid_arg "Mix.spawn_flash: negative at/duration/clients";
  for i = 1 to spec.clients do
    let cname = Printf.sprintf "%s-%d" label i in
    Client.spawn eng
      (Sim.Rng.create (seed lxor Hashtbl.hash cname))
      ~name:cname ~templates ~submit
      ~config:{ Client.default_config with think_mean = spec.think }
      ~stats ~ids ~start:spec.at
      ~until:(spec.at +. spec.duration)
  done
