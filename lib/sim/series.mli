(** Append-only time series, the raw material for the paper's figures.

    Two usage styles:
    - sampled series: [(t, v)] pairs recorded by a periodic monitor (memory
      usage curves, Figure 2);
    - event series: [add t ~time 1.] per completion, later bucketed into
      completions-per-time-slice (Figures 3-5). *)

type t

(** [create ?name ?capacity ()] makes an empty series. [capacity]
    pre-sizes the backing arrays past the doubling ramp for collectors
    whose final length is predictable (e.g. a monitor sampling at a fixed
    interval over a known horizon). *)
val create : ?name:string -> ?capacity:int -> unit -> t
val name : t -> string

(** [add t ~time v] appends an observation. Times must be nondecreasing. *)
val add : t -> time:float -> float -> unit

val length : t -> int
val is_empty : t -> bool

(** [nth t i] is the i-th observation as [(time, value)]. *)
val nth : t -> int -> float * float

(** [last t] is the most recent observation, if any. *)
val last : t -> (float * float) option

(** [to_arrays t] is [(times, values)] as fresh arrays. *)
val to_arrays : t -> float array * float array

(** [bucket_sum t ~start ~stop ~width] sums values per time slice
    [\[start + i*width, start + (i+1)*width)]. Slices with no observations
    are [0.]. Observations outside [\[start, stop)] are dropped. Returns
    [(slice_start_time, sum)] per slice. *)
val bucket_sum :
  t -> start:float -> stop:float -> width:float -> (float * float) array

(** [bucket_mean] is like {!bucket_sum} but averages; empty slices are
    [nan]. *)
val bucket_mean :
  t -> start:float -> stop:float -> width:float -> (float * float) array

(** [values_between t ~start ~stop] is values with [start <= time < stop]. *)
val values_between : t -> start:float -> stop:float -> float array
