(** Array-backed binary min-heap.

    The ordering is given at creation time; ties are resolved by the
    comparison function itself, so callers that need FIFO behaviour among
    equal keys must include a sequence number in the element. *)

type 'a t

(** [create ?capacity ~cmp ()] is an empty heap ordered by [cmp]
    (smallest first). [capacity] pre-sizes the element array (applied at
    the first insertion), so long runs with a known event population
    skip the doubling-regrowth copies. *)
val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t

(** [add t x] inserts [x]. Amortised O(log n); sifts move a single hole
    down the tree (one write per level) rather than swapping pairs. *)
val add : 'a t -> 'a -> unit

(** [pop t] removes and returns the smallest element, if any. *)
val pop : 'a t -> 'a option

(** [pop_exn t] is [pop] without the option box — the non-allocating form
    for hot loops that already checked {!is_empty}. Raises
    [Invalid_argument] on an empty heap. *)
val pop_exn : 'a t -> 'a

(** [peek t] is the smallest element without removing it. *)
val peek : 'a t -> 'a option

(** Non-allocating {!peek}. Raises [Invalid_argument] on an empty heap. *)
val peek_exn : 'a t -> 'a

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [clear t] removes every element. *)
val clear : 'a t -> unit

(** [to_list t] is every element in unspecified order (for tests). *)
val to_list : 'a t -> 'a list
