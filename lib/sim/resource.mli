(** Blocking synchronisation primitives for simulation processes.

    Both primitives support {e timed} waits — the mechanism behind the
    paper's gateway acquisition timeouts — and record wait-time statistics.
    All operations must be called from inside an {!Engine.spawn}ed process
    (they may suspend the caller). *)

type acquire_result = Acquired | Timed_out

(** Queue service order within a priority class. [Fifo] is oldest-first
    (the default); [Lifo] is newest-first — under sustained overload the
    newest waiter is the one whose deadline is still meetable, so serving
    it first clears a post-storm backlog instead of burning capacity on
    requests that will time out anyway. *)
type discipline = Fifo | Lifo

(** Counting semaphore with strictly ordered admission.

    Waiters are served in [(priority, arrival)] order and there is no
    overtaking: if the head waiter does not fit, later (even smaller)
    requests wait behind it, like SQL Server's resource semaphore. Capacity
    can be adjusted at runtime (dynamic gateway limits). *)
module Sem : sig
  type t

  (** [create eng ~capacity ()] with [capacity >= 0] units. *)
  val create : Engine.t -> ?name:string -> capacity:int -> unit -> t

  (** [acquire t ?priority ?timeout ~n ()] blocks until [n] units are
      granted or [timeout] elapses. Lower [priority] values are served
      first; equal priorities are FIFO. Default priority [0], no timeout. *)
  val acquire :
    t -> ?priority:int -> ?timeout:float -> n:int -> unit -> acquire_result

  (** [try_acquire t ~n] grants immediately or not at all (never blocks).
      Only succeeds when no waiter is queued (no overtaking). *)
  val try_acquire : t -> n:int -> bool

  (** [release t ~n] returns [n] units and wakes eligible waiters. *)
  val release : t -> n:int -> unit

  (** [set_capacity t c] adjusts total capacity. Shrinking below [in_use]
      is allowed; the deficit recovers as units are released. *)
  val set_capacity : t -> int -> unit

  (** [set_discipline t d] switches service order within each priority
      class for waiters enqueued {e from now on}; processes already queued
      keep their position (the adaptive-queue flip never reshuffles the
      backlog, it only changes where new arrivals land). Default [Fifo]. *)
  val set_discipline : t -> discipline -> unit

  val discipline : t -> discipline

  val name : t -> string
  val capacity : t -> int
  val in_use : t -> int
  val available : t -> int

  (** Number of processes currently blocked in {!acquire}. *)
  val queued : t -> int

  (** Wait-time statistics over all completed acquires (including zero-wait
      fast-path grants). *)
  val wait_stats : t -> Stats.Online.t

  val timeouts : t -> int
  val grants : t -> int
end

(** Condition-variable-style wait queue. *)
module Waitq : sig
  type t

  val create : Engine.t -> ?name:string -> unit -> t

  (** [wait t ?timeout ()] blocks until signalled. *)
  val wait : t -> ?timeout:float -> unit -> acquire_result

  (** [signal t] wakes the longest-waiting process, if any. *)
  val signal : t -> unit

  (** [broadcast t] wakes every waiting process. *)
  val broadcast : t -> unit

  val queued : t -> int
  val name : t -> string
end
