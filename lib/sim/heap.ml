type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  hint : int; (* requested initial capacity, applied at the first add *)
}

let create ?(capacity = 0) ~cmp () =
  if capacity < 0 then invalid_arg "Heap.create: negative capacity";
  { cmp; data = [||]; size = 0; hint = capacity }

let size t = t.size
let is_empty t = t.size = 0

(* The element array can only be materialised once we have a value to
   fill it with, so the capacity hint takes effect at the first [add]. *)
let grow t x =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let capacity' = max t.hint (max 16 (2 * capacity)) in
    let data' = Array.make capacity' x in
    Array.blit t.data 0 data' 0 t.size;
    t.data <- data'
  end

(* Hole-based sifts: instead of swapping the moving element at every
   level (two writes per step), keep it in hand, shift the displaced
   entries into the hole, and store it once at its final slot. *)

let sift_up t i =
  let x = t.data.(i) in
  let i = ref i in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.cmp x t.data.(parent) < 0 then begin
      t.data.(!i) <- t.data.(parent);
      i := parent
    end
    else moving := false
  done;
  t.data.(!i) <- x

let sift_down t i =
  let x = t.data.(i) in
  let i = ref i in
  let moving = ref true in
  while !moving do
    let left = (2 * !i) + 1 in
    if left >= t.size then moving := false
    else begin
      let right = left + 1 in
      let child =
        if right < t.size && t.cmp t.data.(right) t.data.(left) < 0 then right
        else left
      in
      if t.cmp t.data.(child) x < 0 then begin
        t.data.(!i) <- t.data.(child);
        i := child
      end
      else moving := false
    end
  done;
  t.data.(!i) <- x

let add t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_exn t =
  if t.size = 0 then invalid_arg "Heap.peek_exn: empty";
  t.data.(0)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_exn: empty";
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  (* Park the popped element just past the live region: a generic heap has
     no dummy element to overwrite the slot with, and the slot is
     reclaimed by the next [add] anyway. *)
  t.data.(t.size) <- top;
  top

let pop t = if t.size = 0 then None else Some (pop_exn t)

let clear t =
  t.data <- [||];
  t.size <- 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.size - 1) []
