type handle = { mutable hcancelled : bool }

(* Internal schedules (sleep/suspend resumptions, spawns, periodic
   rearms) never expose their handle and never cancel, so they all share
   this one immortal handle instead of allocating one per event. Public
   [schedule]/[every] still hand out fresh handles — a caller may hold a
   handle arbitrarily long, so those are never pooled. *)
let anon_hdl = { hcancelled = false }

let noop () = ()

(* A single-field float record is stored flat (the all-float record
   representation), so updating it is a plain unboxed store. A ['a ref]
   would NOT do: the polymorphic ref's field is boxed, and every [:=] of
   a float allocates. The engine clock and the push staging cell below
   are the two floats written on every event. *)
type fcell = { mutable fc : float }

(* The event queue is a binary min-heap over (time, seq) kept as parallel
   arrays — structure-of-arrays instead of a heap of event records. Times
   live in a float array (unboxed), seqs in an int array, so pushing an
   event performs no allocation and no write barrier for the key fields;
   only the handle/closure columns are pointer stores. A first cut pooled
   whole mutable event records through a freelist instead; it halved
   allocation but ran ~25% slower than this layout, because every field
   store into a recycled (old-generation) record paid caml_modify and
   seeded the minor-GC remembered set with young closures and float
   boxes. Flat columns pay neither. [seq] breaks ties FIFO; it is unique
   per push, so (time, seq) is a total order and the pop sequence is
   independent of the heap's internal layout. *)
type t = {
  now : fcell;  (* flat: updating the clock each event allocates
                   nothing, unlike a mutable float field of this mixed
                   record *)
  mutable seq : int;
  mutable q_time : float array;
  mutable q_seq : int array;
  mutable q_hdl : handle array;
  mutable q_fn : (unit -> unit) array;
  mutable q_size : int;
  push_time : fcell;  (* see [q_push] *)
  root_rng : Rng.t;
  mutable events : int;
  mutable failures_rev : (string * exn * float) list;
  mutable current : string;
}

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Self_name : string Effect.t

(* A long experiment keeps thousands of timers in flight (one per client
   plus monitors and faults); pre-size past the doubling ramp. *)
let initial_capacity = 4096

let create ?(seed = 42) () =
  {
    now = { fc = 0. };
    seq = 0;
    q_time = Array.make initial_capacity 0.;
    q_seq = Array.make initial_capacity 0;
    q_hdl = Array.make initial_capacity anon_hdl;
    q_fn = Array.make initial_capacity noop;
    q_size = 0;
    push_time = { fc = 0. };
    root_rng = Rng.create seed;
    events = 0;
    failures_rev = [];
    current = "";
  }

let now t = t.now.fc
let rng t = t.root_rng
let events_executed t = t.events
let failures t = List.rev t.failures_rev

let record_failure t name exn =
  t.failures_rev <- (name, exn, t.now.fc) :: t.failures_rev;
  Logs.err (fun m ->
      m "sim process %S failed at t=%.3f: %s" name t.now.fc (Printexc.to_string exn))

let q_grow t =
  let cap = Array.length t.q_time in
  let cap' = 2 * cap in
  let time' = Array.make cap' 0. in
  let seq' = Array.make cap' 0 in
  let hdl' = Array.make cap' anon_hdl in
  let fn' = Array.make cap' noop in
  Array.blit t.q_time 0 time' 0 t.q_size;
  Array.blit t.q_seq 0 seq' 0 t.q_size;
  Array.blit t.q_hdl 0 hdl' 0 t.q_size;
  Array.blit t.q_fn 0 fn' 0 t.q_size;
  t.q_time <- time';
  t.q_seq <- seq';
  t.q_hdl <- hdl';
  t.q_fn <- fn'

(* Hole-style sift-up: walk parents down into the hole and place the new
   entry once, instead of swap-chains that double the pointer stores.
   The event time arrives through [t.push_time], not the argument list:
   this function cannot inline (the non-flambda inliner refuses loop
   bodies), and the native calling convention boxes float arguments to
   out-of-line calls — the flat cell makes the push allocation-free. *)
let q_push t ~hdl fn =
  let time = t.push_time.fc in
  t.seq <- t.seq + 1;
  let seq = t.seq in
  if t.q_size = Array.length t.q_time then q_grow t;
  let i = ref t.q_size in
  t.q_size <- t.q_size + 1;
  let sifting = ref true in
  while !sifting && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = t.q_time.(p) in
    (* The fresh seq is larger than every queued one, so only a strictly
       earlier time moves the new entry above its parent. *)
    if time < pt then begin
      t.q_time.(!i) <- pt;
      t.q_seq.(!i) <- t.q_seq.(p);
      t.q_hdl.(!i) <- t.q_hdl.(p);
      t.q_fn.(!i) <- t.q_fn.(p);
      i := p
    end
    else sifting := false
  done;
  t.q_time.(!i) <- time;
  t.q_seq.(!i) <- seq;
  t.q_hdl.(!i) <- hdl;
  t.q_fn.(!i) <- fn

(* Remove the root; the caller has already copied its fields out. The
   vacated tail slot is reset to the shared sentinels so a popped event's
   closure and handle are unreachable the moment it runs. *)
let q_pop_root t =
  let n = t.q_size - 1 in
  t.q_size <- n;
  if n = 0 then begin
    t.q_hdl.(0) <- anon_hdl;
    t.q_fn.(0) <- noop
  end
  else begin
    let time = t.q_time.(n) in
    let seq = t.q_seq.(n) in
    let hdl = t.q_hdl.(n) in
    let fn = t.q_fn.(n) in
    t.q_hdl.(n) <- anon_hdl;
    t.q_fn.(n) <- noop;
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= n then sifting := false
      else begin
        let r = l + 1 in
        let c =
          if r < n then begin
            let lt = t.q_time.(l) and rt = t.q_time.(r) in
            if rt < lt || (rt = lt && t.q_seq.(r) < t.q_seq.(l)) then r else l
          end
          else l
        in
        let ct = t.q_time.(c) in
        if ct < time || (ct = time && t.q_seq.(c) < seq) then begin
          t.q_time.(!i) <- ct;
          t.q_seq.(!i) <- t.q_seq.(c);
          t.q_hdl.(!i) <- t.q_hdl.(c);
          t.q_fn.(!i) <- t.q_fn.(c);
          i := c
        end
        else sifting := false
      end
    done;
    t.q_time.(!i) <- time;
    t.q_seq.(!i) <- seq;
    t.q_hdl.(!i) <- hdl;
    t.q_fn.(!i) <- fn
  end

let[@inline] schedule_event t ~hdl ~time fn =
  if time < t.now.fc then invalid_arg "Engine.schedule: delay in the past";
  t.push_time.fc <- time;
  q_push t ~hdl fn

let schedule t ?(delay = 0.) fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  let hdl = { hcancelled = false } in
  schedule_event t ~hdl ~time:(t.now.fc +. delay) fn;
  hdl

(* The allocation-free schedule for callers that never cancel. *)
let schedule_anon t ?(delay = 0.) fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_event t ~hdl:anon_hdl ~time:(t.now.fc +. delay) fn

let cancel hdl = hdl.hcancelled <- true
let cancelled hdl = hdl.hcancelled

(* Run [body] as a process: a deep effect handler interprets the blocking
   operations by scheduling continuation resumptions as engine events. *)
let start_process t name body =
  let open Effect.Deep in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Sleep dt ->
        Some
          (fun k ->
            if dt < 0. then
              discontinue k (Invalid_argument "Engine.sleep: negative delay")
            else
              schedule_anon t ~delay:dt (fun () ->
                  t.current <- name;
                  continue k ()))
    | Suspend f ->
        Some
          (fun k ->
            let resumed = ref false in
            let wake v =
              if not !resumed then begin
                resumed := true;
                schedule_anon t (fun () ->
                    t.current <- name;
                    continue k v)
              end
            in
            f wake)
    | Self_name -> Some (fun k -> continue k name)
    | _ -> None
  in
  t.current <- name;
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = (fun exn -> record_failure t name exn);
      effc;
    }

let spawn t ?(name = "") ?(delay = 0.) body =
  schedule_anon t ~delay (fun () -> start_process t name body)

let sleep dt = Effect.perform (Sleep dt)
let suspend f = Effect.perform (Suspend f)

let self_name () =
  try Effect.perform Self_name with Effect.Unhandled _ -> ""

let run t ~until =
  let rec loop () =
    if t.q_size > 0 && t.q_time.(0) <= until then begin
      let time = t.q_time.(0) in
      let hdl = t.q_hdl.(0) in
      let fn = t.q_fn.(0) in
      q_pop_root t;
      if not hdl.hcancelled then begin
        t.now.fc <- time;
        t.events <- t.events + 1;
        t.current <- "";
        (try fn () with exn -> record_failure t t.current exn)
      end;
      loop ()
    end
  in
  loop ()

let run_all t = run t ~until:infinity

let every t ?start ~interval f =
  if interval <= 0. then invalid_arg "Engine.every: interval must be > 0";
  let hdl = { hcancelled = false } in
  (* One closure per timer for its whole life; each rearm reuses it, so a
     periodic tick costs four column stores and no fresh closures. *)
  let rec tick () =
    f ();
    if not hdl.hcancelled then
      schedule_event t ~hdl ~time:(t.now.fc +. interval) tick
  in
  let first = match start with Some s -> s | None -> t.now.fc +. interval in
  schedule_event t ~hdl ~time:(max first t.now.fc) tick;
  hdl
