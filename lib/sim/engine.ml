type handle = { mutable hcancelled : bool }

type event = { time : float; seq : int; hdl : handle; fn : unit -> unit }

type t = {
  mutable now : float;
  mutable seq : int;
  heap : event Heap.t;
  root_rng : Rng.t;
  mutable events : int;
  mutable failures_rev : (string * exn * float) list;
  mutable current : string;
}

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Self_name : string Effect.t

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 42) () =
  {
    now = 0.;
    seq = 0;
    (* A long experiment keeps thousands of timers in flight (one per
       client plus monitors and faults); pre-size past the doubling
       ramp. *)
    heap = Heap.create ~capacity:4096 ~cmp:compare_event ();
    root_rng = Rng.create seed;
    events = 0;
    failures_rev = [];
    current = "";
  }

let now t = t.now
let rng t = t.root_rng
let events_executed t = t.events
let failures t = List.rev t.failures_rev

let record_failure t name exn =
  t.failures_rev <- (name, exn, t.now) :: t.failures_rev;
  Logs.err (fun m ->
      m "sim process %S failed at t=%.3f: %s" name t.now (Printexc.to_string exn))

let schedule_event t ~hdl ~time fn =
  if time < t.now then invalid_arg "Engine.schedule: delay in the past";
  t.seq <- t.seq + 1;
  Heap.add t.heap { time; seq = t.seq; hdl; fn }

let schedule t ?(delay = 0.) fn =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  let hdl = { hcancelled = false } in
  schedule_event t ~hdl ~time:(t.now +. delay) fn;
  hdl

let cancel hdl = hdl.hcancelled <- true
let cancelled hdl = hdl.hcancelled

(* Run [body] as a process: a deep effect handler interprets the blocking
   operations by scheduling continuation resumptions as engine events. *)
let start_process t name body =
  let open Effect.Deep in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Sleep dt ->
        Some
          (fun k ->
            if dt < 0. then
              discontinue k (Invalid_argument "Engine.sleep: negative delay")
            else
              ignore
                (schedule t ~delay:dt (fun () ->
                     t.current <- name;
                     continue k ())))
    | Suspend f ->
        Some
          (fun k ->
            let resumed = ref false in
            let wake v =
              if not !resumed then begin
                resumed := true;
                ignore
                  (schedule t (fun () ->
                       t.current <- name;
                       continue k v))
              end
            in
            f wake)
    | Self_name -> Some (fun k -> continue k name)
    | _ -> None
  in
  t.current <- name;
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = (fun exn -> record_failure t name exn);
      effc;
    }

let spawn t ?(name = "") ?(delay = 0.) body =
  ignore (schedule t ~delay (fun () -> start_process t name body))

let sleep dt = Effect.perform (Sleep dt)
let suspend f = Effect.perform (Suspend f)

let self_name () =
  try Effect.perform Self_name with Effect.Unhandled _ -> ""

let run t ~until =
  let rec loop () =
    match Heap.peek t.heap with
    | None -> ()
    | Some ev when ev.time > until -> ()
    | Some _ ->
        let ev = Option.get (Heap.pop t.heap) in
        if not ev.hdl.hcancelled then begin
          t.now <- ev.time;
          t.events <- t.events + 1;
          t.current <- "";
          (try ev.fn () with exn -> record_failure t t.current exn)
        end;
        loop ()
  in
  loop ()

let run_all t = run t ~until:infinity

let every t ?start ~interval f =
  if interval <= 0. then invalid_arg "Engine.every: interval must be > 0";
  let hdl = { hcancelled = false } in
  let rec arm time =
    schedule_event t ~hdl ~time (fun () ->
        f ();
        if not hdl.hcancelled then arm (t.now +. interval))
  in
  let first = match start with Some s -> s | None -> t.now +. interval in
  arm (max first t.now);
  hdl
