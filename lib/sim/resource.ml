type acquire_result = Acquired | Timed_out
type discipline = Fifo | Lifo

module Sem = struct
  type waiter = {
    n : int;
    priority : int;
    order : int;  (* seq under Fifo, -seq under Lifo; fixed at enqueue *)
    enqueued_at : float;
    wake : acquire_result -> unit;
    mutable alive : bool; (* false once granted or timed out *)
    mutable timer : Engine.handle option;
  }

  type t = {
    eng : Engine.t;
    sname : string;
    mutable capacity : int;
    mutable in_use : int;
    mutable seq : int;
    mutable disc : discipline;
    waiters : waiter Heap.t;
    mutable queued : int;
    wait_stats : Stats.Online.t;
    mutable timeouts : int;
    mutable grants : int;
  }

  let compare_waiter a b =
    let c = compare a.priority b.priority in
    if c <> 0 then c else compare a.order b.order

  let create eng ?(name = "sem") ~capacity () =
    if capacity < 0 then invalid_arg "Sem.create: negative capacity";
    {
      eng;
      sname = name;
      capacity;
      in_use = 0;
      seq = 0;
      disc = Fifo;
      waiters = Heap.create ~cmp:compare_waiter ();
      queued = 0;
      wait_stats = Stats.Online.create ();
      timeouts = 0;
      grants = 0;
    }

  let name t = t.sname
  let capacity t = t.capacity
  let in_use t = t.in_use
  let discipline t = t.disc

  (* The flip applies to arrivals from here on: queued waiters keep the
     order key they enqueued under, so the heap invariant never breaks
     and nobody already waiting is reshuffled behind newer arrivals
     retroactively. *)
  let set_discipline t d = t.disc <- d
  let available t = max 0 (t.capacity - t.in_use)
  let queued t = t.queued
  let wait_stats t = t.wait_stats
  let timeouts t = t.timeouts
  let grants t = t.grants

  let grant t w =
    w.alive <- false;
    (match w.timer with Some h -> Engine.cancel h | None -> ());
    t.queued <- t.queued - 1;
    t.in_use <- t.in_use + w.n;
    t.grants <- t.grants + 1;
    Stats.Online.add t.wait_stats (Engine.now t.eng -. w.enqueued_at);
    w.wake Acquired

  (* Serve the queue head-of-line: pop dead entries, grant while the head
     fits, stop at the first live waiter that does not. *)
  let rec drain t =
    if not (Heap.is_empty t.waiters) then begin
      let w = Heap.peek_exn t.waiters in
      if not w.alive then begin
        ignore (Heap.pop_exn t.waiters);
        drain t
      end
      else if t.capacity - t.in_use >= w.n then begin
        ignore (Heap.pop_exn t.waiters);
        grant t w;
        drain t
      end
    end

  let no_live_waiter t =
    (* Dead entries may linger at the head; drain pops them eagerly, so a
       non-empty heap here means a live waiter exists. *)
    drain t;
    Heap.is_empty t.waiters

  let acquire t ?(priority = 0) ?timeout ~n () =
    if n < 0 then invalid_arg "Sem.acquire: negative n";
    if no_live_waiter t && t.capacity - t.in_use >= n then begin
      t.in_use <- t.in_use + n;
      t.grants <- t.grants + 1;
      Stats.Online.add t.wait_stats 0.;
      Acquired
    end
    else
      Engine.suspend (fun wake ->
          t.seq <- t.seq + 1;
          let order = match t.disc with Fifo -> t.seq | Lifo -> -t.seq in
          let w =
            {
              n;
              priority;
              order;
              enqueued_at = Engine.now t.eng;
              wake;
              alive = true;
              timer = None;
            }
          in
          Heap.add t.waiters w;
          t.queued <- t.queued + 1;
          match timeout with
          | None -> ()
          | Some dt ->
              let h =
                Engine.schedule t.eng ~delay:dt (fun () ->
                    if w.alive then begin
                      w.alive <- false;
                      t.queued <- t.queued - 1;
                      t.timeouts <- t.timeouts + 1;
                      w.wake Timed_out
                    end)
              in
              w.timer <- Some h)

  let try_acquire t ~n =
    if n < 0 then invalid_arg "Sem.try_acquire: negative n";
    if no_live_waiter t && t.capacity - t.in_use >= n then begin
      t.in_use <- t.in_use + n;
      t.grants <- t.grants + 1;
      Stats.Online.add t.wait_stats 0.;
      true
    end
    else false

  let release t ~n =
    if n < 0 then invalid_arg "Sem.release: negative n";
    if n > t.in_use then invalid_arg "Sem.release: more than in use";
    t.in_use <- t.in_use - n;
    drain t

  let set_capacity t c =
    if c < 0 then invalid_arg "Sem.set_capacity: negative capacity";
    t.capacity <- c;
    drain t
end

module Waitq = struct
  type waiter = {
    seq : int;
    wake : acquire_result -> unit;
    mutable alive : bool;
    mutable timer : Engine.handle option;
  }

  type t = {
    eng : Engine.t;
    qname : string;
    mutable seq : int;
    mutable waiters : waiter list; (* newest first *)
    mutable queued : int;
  }

  let create eng ?(name = "waitq") () =
    { eng; qname = name; seq = 0; waiters = []; queued = 0 }

  let name t = t.qname
  let queued t = t.queued

  let wait t ?timeout () =
    Engine.suspend (fun wake ->
        t.seq <- t.seq + 1;
        let w = { seq = t.seq; wake; alive = true; timer = None } in
        t.waiters <- w :: t.waiters;
        t.queued <- t.queued + 1;
        match timeout with
        | None -> ()
        | Some dt ->
            let h =
              Engine.schedule t.eng ~delay:dt (fun () ->
                  if w.alive then begin
                    w.alive <- false;
                    t.queued <- t.queued - 1;
                    w.wake Timed_out
                  end)
            in
            w.timer <- Some h)

  let wake_one w =
    w.alive <- false;
    (match w.timer with Some h -> Engine.cancel h | None -> ());
    w.wake Acquired

  let signal t =
    (* Wake the oldest live waiter. *)
    let oldest_first = List.rev t.waiters in
    match List.find_opt (fun w -> w.alive) oldest_first with
    | None -> ()
    | Some w ->
        t.waiters <- List.filter (fun x -> x != w) t.waiters;
        t.queued <- t.queued - 1;
        wake_one w

  let broadcast t =
    let ws = List.rev t.waiters in
    t.waiters <- [];
    List.iter
      (fun w ->
        if w.alive then begin
          t.queued <- t.queued - 1;
          wake_one w
        end)
      ws
end
