type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
}

let create ?(name = "") ?(capacity = 0) () =
  let capacity = max 0 capacity in
  {
    name;
    times = Array.make capacity 0.;
    values = Array.make capacity 0.;
    size = 0;
  }

let name t = t.name

let grow t =
  let capacity = Array.length t.times in
  if t.size = capacity then begin
    let capacity' = max 64 (2 * capacity) in
    let times' = Array.make capacity' 0. and values' = Array.make capacity' 0. in
    Array.blit t.times 0 times' 0 t.size;
    Array.blit t.values 0 values' 0 t.size;
    t.times <- times';
    t.values <- values'
  end

let add t ~time v =
  if t.size > 0 && time < t.times.(t.size - 1) then
    invalid_arg "Series.add: time went backwards";
  grow t;
  t.times.(t.size) <- time;
  t.values.(t.size) <- v;
  t.size <- t.size + 1

let length t = t.size
let is_empty t = t.size = 0

let nth t i =
  if i < 0 || i >= t.size then invalid_arg "Series.nth";
  (t.times.(i), t.values.(i))

let last t = if t.size = 0 then None else Some (nth t (t.size - 1))

let to_arrays t = (Array.sub t.times 0 t.size, Array.sub t.values 0 t.size)

let nslices ~start ~stop ~width =
  assert (width > 0. && stop >= start);
  int_of_float (ceil ((stop -. start) /. width))

let bucket_fold t ~start ~stop ~width ~init ~f =
  let n = nslices ~start ~stop ~width in
  let acc = Array.make n init in
  for i = 0 to t.size - 1 do
    let time = t.times.(i) in
    if time >= start && time < stop then begin
      let slice = int_of_float ((time -. start) /. width) in
      let slice = min slice (n - 1) in
      acc.(slice) <- f acc.(slice) t.values.(i)
    end
  done;
  Array.mapi (fun i a -> (start +. (float_of_int i *. width), a)) acc

let bucket_sum t ~start ~stop ~width =
  bucket_fold t ~start ~stop ~width ~init:0. ~f:( +. )

let bucket_mean t ~start ~stop ~width =
  let sums =
    bucket_fold t ~start ~stop ~width ~init:(0., 0) ~f:(fun (s, n) v ->
        (s +. v, n + 1))
  in
  Array.map
    (fun (slice_start, (s, n)) ->
      (slice_start, if n = 0 then nan else s /. float_of_int n))
    sums

let values_between t ~start ~stop =
  (* Count-then-fill: two passes over unboxed float arrays beat a boxing
     cons per matching value. *)
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    let time = t.times.(i) in
    if time >= start && time < stop then incr n
  done;
  let out = Array.make !n 0. in
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let time = t.times.(i) in
    if time >= start && time < stop then begin
      out.(!j) <- t.values.(i);
      incr j
    end
  done;
  out
