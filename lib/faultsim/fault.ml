type spec =
  | Memory_ballast of {
      at : float;
      bytes : int;
      hold : float;
      ramp_steps : int;
      step_s : float;
    }
  | Disk_storm of {
      at : float;
      duration : float;
      throughput_factor : float;
      extra_seek_s : float;
    }
  | Client_burst of {
      at : float;
      duration : float;
      clients : int;
      think_mean : float;
    }
  | Alloc_glitch of {
      at : float;
      duration : float;
      fail_prob : float;
      clerks : string list;
    }
  | Shard_crash of { at : float; shard : int; restart_delay : float }
  | Shard_stall of {
      at : float;
      shard : int;
      duration : float;
      slow_factor : float;
    }

let validate = function
  | Memory_ballast { at; bytes; hold; ramp_steps; step_s } ->
      if at < 0. then invalid_arg "Fault: ballast at < 0";
      if bytes <= 0 then invalid_arg "Fault: ballast bytes <= 0";
      if hold < 0. then invalid_arg "Fault: ballast hold < 0";
      if ramp_steps < 1 then invalid_arg "Fault: ballast ramp_steps < 1";
      if step_s < 0. then invalid_arg "Fault: ballast step_s < 0"
  | Disk_storm { at; duration; throughput_factor; extra_seek_s } ->
      if at < 0. then invalid_arg "Fault: storm at < 0";
      if duration <= 0. then invalid_arg "Fault: storm duration <= 0";
      if throughput_factor <= 0. || throughput_factor > 1. then
        invalid_arg "Fault: storm throughput_factor not in (0,1]";
      if extra_seek_s < 0. then invalid_arg "Fault: storm extra_seek_s < 0"
  | Client_burst { at; duration; clients; think_mean } ->
      if at < 0. then invalid_arg "Fault: burst at < 0";
      if duration <= 0. then invalid_arg "Fault: burst duration <= 0";
      if clients < 1 then invalid_arg "Fault: burst clients < 1";
      if think_mean <= 0. then invalid_arg "Fault: burst think_mean <= 0"
  | Alloc_glitch { at; duration; fail_prob; clerks = _ } ->
      if at < 0. then invalid_arg "Fault: glitch at < 0";
      if duration <= 0. then invalid_arg "Fault: glitch duration <= 0";
      if fail_prob < 0. || fail_prob > 1. then
        invalid_arg "Fault: glitch fail_prob not in [0,1]"
  | Shard_crash { at; shard; restart_delay } ->
      if at < 0. then invalid_arg "Fault: crash at < 0";
      if shard < 0 then invalid_arg "Fault: crash shard < 0";
      if restart_delay <= 0. then invalid_arg "Fault: crash restart_delay <= 0"
  | Shard_stall { at; shard; duration; slow_factor } ->
      if at < 0. then invalid_arg "Fault: stall at < 0";
      if shard < 0 then invalid_arg "Fault: stall shard < 0";
      if duration <= 0. then invalid_arg "Fault: stall duration <= 0";
      if slow_factor <= 0. || slow_factor > 1. then
        invalid_arg "Fault: stall slow_factor not in (0,1]"

let label = function
  | Memory_ballast { at; bytes; _ } ->
      Printf.sprintf "ballast(%s@%.0fs)" (Dbmem.Units.bytes_to_string bytes) at
  | Disk_storm { at; throughput_factor; _ } ->
      Printf.sprintf "disk-storm(x%.2f@%.0fs)" throughput_factor at
  | Client_burst { at; clients; _ } ->
      Printf.sprintf "burst(%d@%.0fs)" clients at
  | Alloc_glitch { at; fail_prob; _ } ->
      Printf.sprintf "alloc-glitch(p=%.2f@%.0fs)" fail_prob at
  | Shard_crash { at; shard; _ } ->
      Printf.sprintf "shard-crash(%d@%.0fs)" shard at
  | Shard_stall { at; shard; _ } ->
      Printf.sprintf "shard-stall(%d@%.0fs)" shard at

let window = function
  | Memory_ballast { at; hold; ramp_steps; step_s; _ } ->
      (at, at +. (float_of_int ramp_steps *. step_s) +. hold)
  | Disk_storm { at; duration; _ }
  | Client_burst { at; duration; _ }
  | Alloc_glitch { at; duration; _ }
  | Shard_stall { at; duration; _ } ->
      (at, at +. duration)
  | Shard_crash { at; restart_delay; _ } -> (at, at +. restart_delay)

(* The slow default ramp matters: a spike that grabs everything at once
   only gets what is instantaneously free, while a ramp keeps absorbing
   memory as in-flight consumers (execution grants, compile sessions)
   release theirs — the ratchet a real runaway external process shows. *)
let pressure_spike ?(ramp_steps = 30) ?(step_s = 10.) ~at ~bytes ~hold () =
  [ Memory_ballast { at; bytes; hold; ramp_steps; step_s } ]

let pp ppf s =
  let start, stop = window s in
  match s with
  | Memory_ballast { bytes; ramp_steps; _ } ->
      Format.fprintf ppf "memory ballast %a over %d steps, active %.0f-%.0fs"
        Dbmem.Units.pp_bytes bytes ramp_steps start stop
  | Disk_storm { throughput_factor; extra_seek_s; _ } ->
      Format.fprintf ppf
        "disk storm x%.2f bandwidth, +%.0fms seek, active %.0f-%.0fs"
        throughput_factor (1000. *. extra_seek_s) start stop
  | Client_burst { clients; think_mean; _ } ->
      Format.fprintf ppf
        "client burst of %d (think %.0fs), active %.0f-%.0fs" clients
        think_mean start stop
  | Alloc_glitch { fail_prob; clerks; _ } ->
      Format.fprintf ppf "alloc glitch p=%.2f on %s, active %.0f-%.0fs"
        fail_prob
        (match clerks with [] -> "all clerks" | l -> String.concat "," l)
        start stop
  | Shard_crash { shard; restart_delay; _ } ->
      Format.fprintf ppf
        "shard %d crash at %.0fs, restarts after %.0fs (cold cache)" shard
        start restart_delay
  | Shard_stall { shard; slow_factor; _ } ->
      Format.fprintf ppf
        "shard %d brownout x%.2f service rate, active %.0f-%.0fs" shard
        slow_factor start stop
