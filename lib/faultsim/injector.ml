type hooks = {
  ballast_grab : int -> bool;
  ballast_release : int -> unit;
  disk_set : throughput_factor:float -> extra_seek_s:float -> unit;
  disk_clear : unit -> unit;
  alloc_fault_set : (string -> int -> bool) -> unit;
  alloc_fault_clear : unit -> unit;
  burst_clients : clients:int -> think_mean:float -> until:float -> unit;
  shard_crash : shard:int -> restart_delay:float -> unit;
  shard_stall : shard:int -> duration:float -> slow_factor:float -> unit;
}

let null_hooks =
  {
    ballast_grab = (fun _ -> false);
    ballast_release = (fun _ -> ());
    disk_set = (fun ~throughput_factor:_ ~extra_seek_s:_ -> ());
    disk_clear = (fun () -> ());
    alloc_fault_set = (fun _ -> ());
    alloc_fault_clear = (fun () -> ());
    burst_clients = (fun ~clients:_ ~think_mean:_ ~until:_ -> ());
    shard_crash = (fun ~shard:_ ~restart_delay:_ -> ());
    shard_stall = (fun ~shard:_ ~duration:_ ~slow_factor:_ -> ());
  }

type t = {
  specs : Fault.spec list;
  hooks : hooks;
  mutable started : int;
  mutable finished : int;
  mutable ballast_refused : int;
  mutable ballast_held : int;
  mutable ballast_peak : int;
  mutable glitch_hits : int;
  mutable storms : (float * float) list;  (* active (factor, extra_seek) *)
  mutable glitches : (string -> int -> bool) list;
}

(* Concurrent storms compose by worst-case: slowest bandwidth, largest
   added seek. *)
let refresh_disk t =
  match t.storms with
  | [] -> t.hooks.disk_clear ()
  | storms ->
      let factor = List.fold_left (fun a (f, _) -> Float.min a f) 1. storms in
      let seek = List.fold_left (fun a (_, s) -> Float.max a s) 0. storms in
      t.hooks.disk_set ~throughput_factor:factor ~extra_seek_s:seek

let refresh_glitches t =
  match t.glitches with
  | [] -> t.hooks.alloc_fault_clear ()
  | preds ->
      t.hooks.alloc_fault_set (fun clerk bytes ->
          (* Evaluate every predicate so rng draws do not depend on list
             order short-circuiting; count a hit once. *)
          let hit =
            List.fold_left (fun acc p -> p clerk bytes || acc) false preds
          in
          if hit then t.glitch_hits <- t.glitch_hits + 1;
          hit)

let run_ballast t ~bytes ~hold ~ramp_steps ~step_s =
  let per_step = max 1 (bytes / ramp_steps) in
  let grabbed = ref 0 in
  for step = 1 to ramp_steps do
    (* Last step takes the rounding remainder so the total is exact. *)
    let want = if step = ramp_steps then bytes - !grabbed else per_step in
    if want > 0 then
      if t.hooks.ballast_grab want then begin
        grabbed := !grabbed + want;
        t.ballast_held <- t.ballast_held + want;
        t.ballast_peak <- max t.ballast_peak t.ballast_held
      end
      else t.ballast_refused <- t.ballast_refused + 1;
    if step < ramp_steps then Sim.Engine.sleep step_s
  done;
  Sim.Engine.sleep hold;
  t.hooks.ballast_release !grabbed;
  t.ballast_held <- t.ballast_held - !grabbed

let run_storm t ~duration ~throughput_factor ~extra_seek_s =
  let entry = (throughput_factor, extra_seek_s) in
  t.storms <- entry :: t.storms;
  refresh_disk t;
  Sim.Engine.sleep duration;
  (* Remove one occurrence of this storm's entry. *)
  let removed = ref false in
  t.storms <-
    List.filter
      (fun e ->
        if (not !removed) && e == entry then (removed := true; false)
        else true)
      t.storms;
  refresh_disk t

let run_glitch t ~rng ~duration ~fail_prob ~clerks =
  let applies clerk =
    match clerks with [] -> true | l -> List.mem clerk l
  in
  let pred clerk _bytes = applies clerk && Sim.Rng.float rng 1.0 < fail_prob in
  t.glitches <- pred :: t.glitches;
  refresh_glitches t;
  Sim.Engine.sleep duration;
  t.glitches <- List.filter (fun p -> p != pred) t.glitches;
  refresh_glitches t

let install eng ~rng ~hooks specs =
  List.iter Fault.validate specs;
  let t =
    {
      specs;
      hooks;
      started = 0;
      finished = 0;
      ballast_refused = 0;
      ballast_held = 0;
      ballast_peak = 0;
      glitch_hits = 0;
      storms = [];
      glitches = [];
    }
  in
  List.iter
    (fun spec ->
      (* One independent stream per spec, split in list order, so adding a
         spec never perturbs the others' draws. *)
      let spec_rng = Sim.Rng.split rng in
      let start, _ = Fault.window spec in
      Sim.Engine.spawn eng ~name:("fault:" ^ Fault.label spec) ~delay:start
        (fun () ->
          t.started <- t.started + 1;
          (match spec with
          | Fault.Memory_ballast { bytes; hold; ramp_steps; step_s; _ } ->
              run_ballast t ~bytes ~hold ~ramp_steps ~step_s
          | Fault.Disk_storm { duration; throughput_factor; extra_seek_s; _ }
            ->
              run_storm t ~duration ~throughput_factor ~extra_seek_s
          | Fault.Client_burst { at; duration; clients; think_mean } ->
              t.hooks.burst_clients ~clients ~think_mean
                ~until:(at +. duration)
          | Fault.Alloc_glitch { duration; fail_prob; clerks; _ } ->
              run_glitch t ~rng:spec_rng ~duration ~fail_prob ~clerks
          | Fault.Shard_crash { shard; restart_delay; _ } ->
              (* The shard layer owns the restart schedule; the injector
                 only pulls the trigger. *)
              t.hooks.shard_crash ~shard ~restart_delay
          | Fault.Shard_stall { shard; duration; slow_factor; _ } ->
              t.hooks.shard_stall ~shard ~duration ~slow_factor);
          t.finished <- t.finished + 1))
    specs;
  t

let started t = t.started
let finished t = t.finished
let ballast_refused t = t.ballast_refused
let ballast_held t = t.ballast_held
let ballast_peak t = t.ballast_peak
let glitch_hits t = t.glitch_hits
let specs t = t.specs

let pp ppf t =
  Format.fprintf ppf
    "@[<v>fault injector: %d specs, %d started, %d finished@,"
    (List.length t.specs) t.started t.finished;
  Format.fprintf ppf
    "  ballast held %a (refused grabs %d); glitch hits %d@,"
    Dbmem.Units.pp_bytes t.ballast_held t.ballast_refused t.glitch_hits;
  List.iter (fun s -> Format.fprintf ppf "  %a@," Fault.pp s) t.specs;
  Format.fprintf ppf "@]"
