(** Fault injector: executes a {!Fault.spec} schedule as sim processes.

    The injector never reaches into server internals directly; the server
    exposes the mutation points it is willing to have attacked through a
    {!hooks} record (grab ballast memory, degrade the disk, install an
    allocation-failure predicate, spawn burst clients). This keeps the
    library dependency-free and lets tests drive the injector against toy
    harnesses.

    Determinism: all randomness (glitch coin flips) comes from per-spec
    streams split off the [rng] passed to {!install}, in spec-list order,
    so one seed plus one spec list replays an identical fault timeline.

    Overlapping faults compose: concurrent disk storms apply the worst
    active degradation, concurrent glitches fail an allocation if any
    active predicate fires, and each ballast releases exactly the bytes it
    managed to grab. *)

type hooks = {
  ballast_grab : int -> bool;
      (** commit [n] more bytes of ballast; [false] = refused (machine
          full) *)
  ballast_release : int -> unit;  (** release [n] bytes of ballast *)
  disk_set : throughput_factor:float -> extra_seek_s:float -> unit;
  disk_clear : unit -> unit;
  alloc_fault_set : (string -> int -> bool) -> unit;
      (** install the failure predicate ([clerk_name -> bytes -> fail?]) *)
  alloc_fault_clear : unit -> unit;
  burst_clients : clients:int -> think_mean:float -> until:float -> unit;
  shard_crash : shard:int -> restart_delay:float -> unit;
      (** kill the indexed shard now; it restarts (cold cache) after the
          delay — the shard layer owns the restart schedule *)
  shard_stall : shard:int -> duration:float -> slow_factor:float -> unit;
      (** brown out the indexed shard for [duration] seconds at
          [slow_factor] of its normal service rate *)
}

(** Hooks that ignore every fault (tests, partial wiring). *)
val null_hooks : hooks

type t

(** [install eng ~rng ~hooks specs] validates every spec and schedules its
    process. Faults start firing once the engine runs. *)
val install : Sim.Engine.t -> rng:Sim.Rng.t -> hooks:hooks -> Fault.spec list -> t

(** Number of fault episodes that have started / fully finished. *)
val started : t -> int

val finished : t -> int

(** Ballast grabs refused by the server (machine already full). *)
val ballast_refused : t -> int

(** Bytes of ballast currently held across all ballast specs. *)
val ballast_held : t -> int

(** Highest ballast ever held at once (how much of the configured spike
    the phantom consumer actually got). *)
val ballast_peak : t -> int

(** Allocations the active glitch predicates have failed so far. *)
val glitch_hits : t -> int

val specs : t -> Fault.spec list
val pp : Format.formatter -> t -> unit
