(** Declarative fault specifications.

    A fault spec describes one hostile episode on the simulated server's
    timeline — the induced pressure transients that adaptive memory systems
    are evaluated under. Specs are pure data: they are validated here and
    executed by {!Injector}, which turns each one into a deterministic sim
    process. Composing several specs in a list builds a full chaos
    schedule; equal specs plus an equal engine seed always replay the same
    run. *)

type spec =
  | Memory_ballast of {
      at : float;  (** start time, seconds *)
      bytes : int;  (** total committed memory to grab *)
      hold : float;  (** seconds held after the ramp completes *)
      ramp_steps : int;  (** number of grab increments *)
      step_s : float;  (** seconds between increments *)
    }
      (** A phantom memory consumer: ramps up committed memory through a
          dedicated clerk, holds it, then releases. Because the ballast
          clerk is registered with the Memory Broker (but ignores its
          verdicts), the broker sees the spike and squeezes everyone else —
          the external-pressure scenario of the paper's §3. *)
  | Disk_storm of {
      at : float;
      duration : float;
      throughput_factor : float;  (** multiplies array bandwidth, in (0,1] *)
      extra_seek_s : float;  (** added per-transfer latency, >= 0 *)
    }
      (** Degraded I/O: every transfer pays extra seek latency and the
          array bandwidth drops (a rebuilding RAID, a failing spindle). *)
  | Client_burst of {
      at : float;
      duration : float;
      clients : int;
      think_mean : float;  (** think time of the burst clients, seconds *)
    }  (** A storm of extra clients hammering the server for a while. *)
  | Alloc_glitch of {
      at : float;
      duration : float;
      fail_prob : float;  (** probability each allocation fails, in [0,1] *)
      clerks : string list;  (** affected clerk names; [[]] = all clerks *)
    }
      (** Transient allocation failures: while active, clerk allocations
          fail spuriously with the given probability (flaky commit path,
          external process stealing pages faster than accounting sees). *)
  | Shard_crash of {
      at : float;
      shard : int;  (** shard index in the router's shard list *)
      restart_delay : float;  (** seconds down before the restart begins *)
    }
      (** Hard failure of one shard in a sharded deployment: in-flight
          connections are lost, placements refuse new work, and after
          [restart_delay] the shard rejoins with an {e empty} plan cache —
          the cold-cache recompilation storm the compile gateways must
          absorb. Only meaningful when a router installs the shard hooks;
          the single-engine server ignores it. *)
  | Shard_stall of {
      at : float;
      shard : int;
      duration : float;
      slow_factor : float;  (** multiplies the shard's service rate, (0,1] *)
    }
      (** Brownout: the shard stays up but serves at [slow_factor] of its
          normal rate (GC storm, noisy neighbour, packet loss). Routers
          treat a browned-out shard as hedgeable rather than dead. *)

(** [validate s] raises [Invalid_argument] on nonsensical parameters
    (negative times, zero ballast, probabilities outside [0,1], ...). *)
val validate : spec -> unit

(** Short human label, e.g. ["ballast(2.0GiB@100s)"]. *)
val label : spec -> string

(** [(start, stop)] of the spec's active window. For a ballast the window
    ends when the memory is released. *)
val window : spec -> float * float

(** [pressure_spike ~at ~bytes ~hold ()] is the canonical single-fault
    chaos schedule: an external consumer ramps to [bytes] starting at
    [at] (default: 30 steps, 10 s apart — slow enough to ratchet up
    memory as in-flight grants release), holds the full load for [hold]
    seconds past the ramp, then releases. *)
val pressure_spike :
  ?ramp_steps:int ->
  ?step_s:float ->
  at:float ->
  bytes:int ->
  hold:float ->
  unit ->
  spec list

val pp : Format.formatter -> spec -> unit
