type config = {
  interval : float;
  horizon : float;
  window : int;
  deadband : int;
}

let default_config =
  { interval = 1.0; horizon = 2.0; window = 16; deadband = 4 * 1024 * 1024 }

type claim = {
  weight : float;
  min_share : float;
  max_share : float;
  predicted : int;
}

(* The split arithmetic, kept pure (and total) so it can be fuzzed.
   Floors first, then demand, then weighted surplus — all rounding is
   downward so the grants can never sum past [total]. *)
let plan ~total claims =
  match claims with
  | [] -> []
  | _ ->
      let floor_of c = int_of_float (c.min_share *. float_of_int total) in
      let cap_of c =
        max (floor_of c) (int_of_float (c.max_share *. float_of_int total))
      in
      let need =
        List.map (fun c -> min (cap_of c) (max (floor_of c) c.predicted)) claims
      in
      let need_sum = List.fold_left ( + ) 0 need in
      if need_sum <= total then (
        (* Plenty: everyone gets their demand; idle reservation is lent
           out weight-proportionally, up to each pool's cap. *)
        let surplus = total - need_sum in
        let wsum = List.fold_left (fun a c -> a +. c.weight) 0. claims in
        List.map2
          (fun c n ->
            let bonus =
              int_of_float (float_of_int surplus *. c.weight /. wsum)
            in
            min (cap_of c) (n + bonus))
          claims need)
      else
        (* Scarcity: guarantee the floors, then split what is left in
           proportion to weighted unmet demand. A deterministic second
           pass hands out the few bytes lost to rounding. *)
        let mins_sum = List.fold_left (fun a c -> a + floor_of c) 0 claims in
        let extra = max 0 (total - mins_sum) in
        let want = List.map2 (fun c n -> n - floor_of c) claims need in
        let xs = List.map2 (fun c w -> c.weight *. float_of_int w) claims want in
        let xsum = List.fold_left ( +. ) 0. xs in
        let give =
          if xsum <= 0. then List.map (fun _ -> 0) want
          else
            List.map2
              (fun w x ->
                min w (int_of_float (float_of_int extra *. x /. xsum)))
              want xs
        in
        let leftover =
          ref (extra - List.fold_left ( + ) 0 give)
        in
        let give =
          List.map2
            (fun w g ->
              let top_up = min !leftover (w - g) in
              leftover := !leftover - top_up;
              g + top_up)
            want give
        in
        List.map2 (fun c g -> floor_of c + g) claims give

type pool = {
  name : string;
  weight : float;
  min_share : float;
  max_share : float;
  used : unit -> int;
  demand : (unit -> int) option;
  set_budget : int -> unit;
  reclaim : int -> int;
  trend : Trend.t;
  floor_b : int;
  mutable budget : int;
  mutable offline : bool;
}

type t = {
  eng : Sim.Engine.t;
  trace : Obs.Trace.t;
  cfg : config;
  a_total : int;
  mutable pools_rev : pool list;
  mutable task : Sim.Engine.handle option;
  mutable ticks : int;
  mutable scarce : bool;
  mutable rebalances : int;
  mutable moved_bytes : int;
  mutable reclaimed_bytes : int;
}

let create ?(trace = Obs.Trace.null) eng ~total cfg =
  if total <= 0 then invalid_arg "Arbiter.create: total must be > 0";
  if cfg.interval <= 0. then invalid_arg "Arbiter.create: interval must be > 0";
  if cfg.window < 2 then invalid_arg "Arbiter.create: window must be >= 2";
  {
    eng;
    trace;
    cfg;
    a_total = total;
    pools_rev = [];
    task = None;
    ticks = 0;
    scarce = false;
    rebalances = 0;
    moved_bytes = 0;
    reclaimed_bytes = 0;
  }

let total t = t.a_total
let ticks t = t.ticks
let scarce t = t.scarce
let rebalances t = t.rebalances
let moved_bytes t = t.moved_bytes
let reclaimed_bytes t = t.reclaimed_bytes
let pools t = List.rev t.pools_rev
let pool_name p = p.name
let budget p = p.budget
let floor_bytes p = p.floor_b
let offline p = p.offline

(* Marking a pool offline (its shard is down) strips its floor and cap at
   the next tick so the whole share is lent to survivors; marking it back
   online restores the registered claim and the normal shrink-before-grow
   apply claws the memory back from the borrowers. *)
let set_offline p v = p.offline <- v

let register t ~name ?(weight = 1.0) ?(min_share = 0.) ?(max_share = 1.0)
    ~budget ~used ?demand ~set_budget ~reclaim () =
  if t.task <> None then invalid_arg "Arbiter.register: arbiter already started";
  if weight <= 0. then invalid_arg "Arbiter.register: weight must be > 0";
  if min_share < 0. || min_share > 1. then
    invalid_arg "Arbiter.register: min_share must be in [0, 1]";
  if max_share < min_share || max_share > 1. then
    invalid_arg "Arbiter.register: need min_share <= max_share <= 1";
  let committed =
    List.fold_left (fun a p -> a +. p.min_share) min_share t.pools_rev
  in
  if committed > 1. +. 1e-9 then
    invalid_arg "Arbiter.register: cumulative min_share exceeds 1";
  if budget <= 0 then invalid_arg "Arbiter.register: budget must be > 0";
  let p =
    {
      name;
      weight;
      min_share;
      max_share;
      used;
      demand;
      set_budget;
      reclaim;
      trend = Trend.create ~window:t.cfg.window ();
      floor_b = int_of_float (min_share *. float_of_int t.a_total);
      budget;
      offline = false;
    }
  in
  t.pools_rev <- p :: t.pools_rev;
  p

let emit t ev =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid:"" ev

let tick t =
  let ps = pools t in
  if ps <> [] then begin
    t.ticks <- t.ticks + 1;
    let now = Sim.Engine.now t.eng in
    (* Sample each pool's demand (its broker's predicted aggregate when
       wired, usage otherwise), trend it, and predict at the horizon. *)
    let predicted =
      List.map
        (fun p ->
          if p.offline then 0
            (* Down pool: no demand, and no trend observation either — a
               run of zeros would otherwise poison the slope and predict
               negative demand for a while after the shard rejoins. *)
          else begin
            let u = p.used () in
            let d = match p.demand with Some f -> max u (f ()) | None -> u in
            Trend.observe p.trend ~time:now (float_of_int d);
            let pr =
              match Trend.predict p.trend ~horizon:t.cfg.horizon with
              | Some v -> int_of_float v
              | None -> d
            in
            max d pr
          end)
        ps
    in
    let claims =
      List.map2
        (fun p predicted ->
          if p.offline then
            (* Floor and cap both collapse to zero: the plan lends the
               pool's entire share out, and only the one-byte keepalive
               below stands between the dead manager and a zero budget. *)
            { weight = p.weight; min_share = 0.; max_share = 0.; predicted = 0 }
          else
            {
              weight = p.weight;
              min_share = p.min_share;
              max_share = p.max_share;
              predicted;
            })
        ps predicted
    in
    let need_sum = List.fold_left ( + ) 0 predicted in
    t.scarce <- need_sum > t.a_total;
    (* A floorless idle pool can plan to 0 bytes; managers need a
       positive budget, so never apply less than one byte. *)
    let budgets = List.map (max 1) (plan ~total:t.a_total claims) in
    let max_delta =
      List.fold_left2
        (fun a p b -> max a (abs (b - p.budget)))
        0 ps budgets
    in
    (* Applying only some moves could leave the grants summing past
       [total], so a rebalance inside the deadband is skipped whole. *)
    if max_delta > t.cfg.deadband then begin
      t.rebalances <- t.rebalances + 1;
      (* Shrink donors before growing borrowers: mid-apply, the sum of
         budgets then never exceeds [total]. *)
      List.iter2
        (fun p b ->
          if b < p.budget then begin
            p.budget <- b;
            p.set_budget b;
            let over = p.used () - b in
            if over > 0 then begin
              let freed = p.reclaim over in
              t.reclaimed_bytes <- t.reclaimed_bytes + freed;
              emit t
                (Obs.Event.Arbiter_reclaim { pool = p.name; wanted = over; freed })
            end
          end)
        ps budgets;
      List.iter2
        (fun p b ->
          if b > p.budget then begin
            t.moved_bytes <- t.moved_bytes + (b - p.budget);
            p.budget <- b;
            p.set_budget b
          end)
        ps budgets
    end;
    if Obs.Trace.enabled t.trace then
      emit t
        (Obs.Event.Arbiter_tick
           {
             scarce = t.scarce;
             total = t.a_total;
             pools =
               List.map2
                 (fun p pr ->
                   {
                     Obs.Event.pool = p.name;
                     pool_used = p.used ();
                     pool_predicted = pr;
                     pool_budget = p.budget;
                   })
                 ps predicted;
           })
  end

let start t =
  match t.task with
  | Some _ -> ()
  | None ->
      t.task <-
        Some (Sim.Engine.every t.eng ~interval:t.cfg.interval (fun () -> tick t))

let stop t =
  match t.task with
  | None -> ()
  | Some h ->
      Sim.Engine.cancel h;
      t.task <- None

let pp ppf t =
  let mib n = float_of_int n /. (1024. *. 1024.) in
  Format.fprintf ppf
    "@[<v>arbiter: total %.0f MiB, %d ticks, %d rebalances, %.1f MiB moved, \
     %.1f MiB reclaimed%s@,"
    (mib t.a_total) t.ticks t.rebalances
    (mib t.moved_bytes)
    (mib t.reclaimed_bytes)
    (if t.scarce then " [scarce]" else "");
  List.iter
    (fun p ->
      Format.fprintf ppf
        "  %-10s budget %7.1f MiB (floor %7.1f MiB) used %7.1f MiB%s@,"
        p.name (mib p.budget) (mib p.floor_b)
        (mib (p.used ()))
        (if p.offline then " [offline]" else ""))
    (pools t);
  Format.fprintf ppf "@]"
