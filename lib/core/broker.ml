type verdict = Can_grow | Hold_rate | Must_shrink

type notification = {
  verdict : verdict;
  target : int;
  predicted : int;
  pressure : bool;
}

type config = {
  interval : float;
  horizon : float;
  window : int;
  reserved_fraction : float;
  shrink_slack : float;
  insist_after : int;
}

let default_config =
  {
    interval = 1.0;
    horizon = 5.0;
    window = 10;
    reserved_fraction = 0.05;
    shrink_slack = 0.02;
    insist_after = 0;
  }

type component = {
  name : string;
  clerk : Dbmem.Manager.clerk;
  weight : float;
  min_bytes : int;
  demand : (unit -> int) option;
  notify : (notification -> unit) option;
  reclaim : (int -> int) option;
  trend : Trend.t;
  mutable ctarget : int;
  mutable last : notification option;
  mutable over_ticks : int;
  mutable last_used : int;
}

type t = {
  eng : Sim.Engine.t;
  manager : Dbmem.Manager.t;
  config : config;
  trace : Obs.Trace.t;
  mutable comps_rev : component list;
  mutable pressure : bool;
  mutable ticks : int;
  mutable timer : Sim.Engine.handle option;
  mutable forced_reclaims : int;
  mutable predicted_sum : int;
}

let create ?(trace = Obs.Trace.null) eng manager config =
  if config.interval <= 0. then invalid_arg "Broker.create: interval";
  if config.reserved_fraction < 0. || config.reserved_fraction >= 1. then
    invalid_arg "Broker.create: reserved_fraction";
  {
    eng;
    manager;
    config;
    trace;
    comps_rev = [];
    pressure = false;
    ticks = 0;
    timer = None;
    forced_reclaims = 0;
    predicted_sum = 0;
  }

let brokered_bytes t =
  int_of_float
    (float_of_int (Dbmem.Manager.total t.manager)
    *. (1. -. t.config.reserved_fraction))

let components t = List.rev t.comps_rev

let register t ~name ~clerk ?(weight = 1.) ?(min_bytes = 0) ?demand ?notify
    ?reclaim () =
  if weight <= 0. then invalid_arg "Broker.register: weight must be > 0";
  let c =
    {
      name;
      clerk;
      weight;
      min_bytes;
      demand;
      notify;
      reclaim;
      trend = Trend.create ~window:t.config.window ();
      ctarget = 0;
      last = None;
      over_ticks = 0;
      last_used = 0;
    }
  in
  t.comps_rev <- c :: t.comps_rev;
  (* Before the first tick, hand out even shares so targets are sane. *)
  let n = List.length t.comps_rev in
  List.iter
    (fun c -> c.ctarget <- brokered_bytes t / n)
    t.comps_rev;
  c

(* Split [budget] over the [(component, used, predicted)] items
   proportionally to weighted predicted demand, honouring [min_bytes]
   floors without overflowing the budget: a component whose proportional
   share falls below its floor is pinned at the floor and the remainder
   is re-split among the rest. Terminates because each round pins at
   least one component. When the floors alone exceed the budget every
   component gets exactly its floor — the overshoot lands in the
   manager's reserved slack rather than being invented per-component.
   Returns targets keyed by component (physical identity). *)
let split_under_pressure budget items =
  let rec go budget items acc =
    match items with
    | [] -> acc
    | _ ->
        let floors =
          List.fold_left (fun a (c, _, _) -> a + c.min_bytes) 0 items
        in
        if floors >= budget then
          List.fold_left (fun acc (c, _, _) -> (c, c.min_bytes) :: acc) acc items
        else
          let demand_sum =
            List.fold_left
              (fun a (c, _, p) -> a +. (c.weight *. float_of_int (max 1 p)))
              0. items
          in
          let share (c, _, p) =
            int_of_float
              (float_of_int budget
              *. (c.weight *. float_of_int (max 1 p))
              /. demand_sum)
          in
          let pinned, rest =
            List.partition (fun ((c, _, _) as it) -> share it < c.min_bytes) items
          in
          if pinned = [] then
            List.fold_left
              (fun acc ((c, _, _) as it) -> (c, share it) :: acc)
              acc items
          else
            let acc =
              List.fold_left (fun acc (c, _, _) -> (c, c.min_bytes) :: acc) acc
                pinned
            in
            let pinned_bytes =
              List.fold_left (fun a (c, _, _) -> a + c.min_bytes) 0 pinned
            in
            go (budget - pinned_bytes) rest acc
  in
  go budget items []

(* One broker cycle: sample, predict, split the budget, notify. *)
let tick t =
  let comps = components t in
  t.ticks <- t.ticks + 1;
  if comps <> [] then begin
    let now = Sim.Engine.now t.eng in
    let budget = brokered_bytes t in
    (* 1. Sample and predict. *)
    let predictions =
      List.map
        (fun c ->
          let used = Dbmem.Manager.clerk_used c.clerk in
          let demand =
            match c.demand with Some f -> max used (f ()) | None -> used
          in
          Trend.observe c.trend ~time:now (float_of_int demand);
          let predicted =
            match Trend.predict c.trend ~horizon:t.config.horizon with
            | None -> demand
            | Some p -> max demand (int_of_float p)
          in
          (c, used, predicted))
        comps
    in
    let total_predicted =
      List.fold_left (fun acc (_, _, p) -> acc + p) 0 predictions
    in
    let pressure = total_predicted > budget in
    t.pressure <- pressure;
    t.predicted_sum <- total_predicted;
    (* 2. Compute targets. *)
    let targets =
      if not pressure then begin
        (* No action needed: targets are "your prediction plus your share of
           the slack" so components know how much headroom exists. *)
        let slack = budget - total_predicted in
        let weight_sum = List.fold_left (fun a (c, _, _) -> a +. c.weight) 0. predictions in
        List.map
          (fun (c, used, predicted) ->
            let share = float_of_int slack *. (c.weight /. weight_sum) in
            (c, used, predicted, max c.min_bytes (predicted + int_of_float share)))
          predictions
      end
      else begin
        (* Pressure: distribute the budget proportionally to weighted
           predicted demand, pinning components at their [min_bytes]
           floor and re-splitting the remainder so targets never sum
           past the budget. *)
        let granted = split_under_pressure budget predictions in
        List.map
          (fun (c, used, predicted) ->
            (c, used, predicted, List.assq c granted))
          predictions
      end
    in
    (* 3. Decide verdicts and notify. *)
    let samples_rev = ref [] in
    List.iter
      (fun (c, used, predicted, target) ->
        c.ctarget <- target;
        let verdict =
          if float_of_int used > float_of_int target *. (1. +. t.config.shrink_slack)
          then Must_shrink
          else if predicted > target then Hold_rate
          else Can_grow
        in
        if Obs.Trace.enabled t.trace then
          samples_rev :=
            {
              Obs.Event.comp = c.name;
              used;
              predicted;
              target;
              verdict =
                (match verdict with
                | Can_grow -> Obs.Event.Grow
                | Hold_rate -> Obs.Event.Stable
                | Must_shrink -> Obs.Event.Shrink);
            }
            :: !samples_rev;
        let n = { verdict; target; predicted; pressure } in
        c.last <- Some n;
        (match c.notify with None -> () | Some f -> f n);
        (* Shrink compliance: a component that stays above target for
           [insist_after] consecutive ticks has ignored its notifications,
           and the broker insists, reclaiming through the component's own
           hook. Only components that registered a hook can be forced —
           a hookless consumer (the ballast, a query mid-flight) is
           outside the broker's writ, exactly like the paper's external
           memory pressure, and squeezing innocent donors on its behalf
           would only burn cache hits. *)
        (match (verdict, c.reclaim) with
        | Must_shrink, Some reclaim ->
            (* A component whose usage is falling is complying, just
               slowly; insistence is for components that ignore the
               verdict. *)
            if used < c.last_used then c.over_ticks <- 0
            else c.over_ticks <- c.over_ticks + 1;
            if
              t.config.insist_after > 0
              && c.over_ticks >= t.config.insist_after
            then begin
              c.over_ticks <- 0;
              let wanted = max 0 (used - target) in
              let freed = reclaim wanted in
              t.forced_reclaims <- t.forced_reclaims + 1;
              if Obs.Trace.enabled t.trace then
                Obs.Trace.emit t.trace ~time:now ~qid:""
                  (Obs.Event.Forced_reclaim { comp = c.name; wanted; freed })
            end
        | _ -> c.over_ticks <- 0);
        c.last_used <- used)
      targets;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.emit t.trace ~time:now ~qid:""
        (Obs.Event.Broker_tick
           { pressure; budget; components = List.rev !samples_rev })
  end

let start t =
  match t.timer with
  | Some _ -> ()
  | None ->
      t.timer <-
        Some (Sim.Engine.every t.eng ~interval:t.config.interval (fun () -> tick t))

let stop t =
  match t.timer with
  | None -> ()
  | Some h ->
      Sim.Engine.cancel h;
      t.timer <- None

let under_pressure t = t.pressure
let ticks t = t.ticks
let predicted_total t = t.predicted_sum
let forced_reclaims t = t.forced_reclaims
let component_name c = c.name
let last_notification c = c.last
let target c = c.ctarget

let pp ppf t =
  Format.fprintf ppf "@[<v>broker ticks=%d pressure=%b budget=%a@," t.ticks
    t.pressure Dbmem.Units.pp_bytes (brokered_bytes t);
  List.iter
    (fun c ->
      let used = Dbmem.Manager.clerk_used c.clerk in
      Format.fprintf ppf "  %-12s used=%a target=%a@," c.name
        Dbmem.Units.pp_bytes used Dbmem.Units.pp_bytes c.ctarget)
    (components t);
  Format.fprintf ppf "@]"
