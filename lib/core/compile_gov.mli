(** Query-compilation throttling governor (paper §4).

    Every compilation runs inside a {!session}. The optimizer reports its
    memory demand through {!alloc}; the governor checks the demand against
    the gateway ladder and makes the compilation {e block} at a monitor when
    it crosses that monitor's threshold while no slot is free. Blocking is
    tied to memory allocated, not to fixed points in the compilation
    process, which is what makes the mechanism robust across schema designs
    and workloads. Monitors are released in reverse order when the
    compilation ends, and all compile memory is freed at once (optimizer
    memory is arena-managed).

    The governor also implements the paper's two extensions:
    - {e dynamic thresholds}: when a {!Broker.notification} for the compile
      component arrives (see {!on_notification}), entry thresholds of the
      larger gateways are recomputed as [target * F / S];
    - {e best-plan-so-far}: under severe pressure {!should_stop_early}
      becomes [true] and a cooperating optimizer finishes with the best
      complete plan already found instead of running out of memory. *)

type t

(** [create eng manager ?trace ~clerk ~cpus ~config ~enabled ()]. With
    [enabled = false] the governor only does clerk accounting — the
    unthrottled baseline of Figures 3-5. [trace], when enabled, records
    compile begin/alloc/end and every gateway wait (it is passed down to
    the ladder's monitors). *)
val create :
  Sim.Engine.t ->
  Dbmem.Manager.t ->
  ?trace:Obs.Trace.t ->
  clerk:Dbmem.Manager.clerk ->
  cpus:int ->
  config:Throttle_config.t ->
  enabled:bool ->
  unit ->
  t

(** {1 Storm defense} *)

(** Metastable-failure defenses at the gateway ladder, all off by default
    so the paper's baseline behaviour is untouched. [adaptive_lifo]: when
    a monitor's queue has been continuously standing for [lifo_after_s],
    flip its service order to newest-first (and back once it drains) —
    post-storm, the newest waiter is the one that can still meet its
    deadline. [deadline_shed]: refuse to enqueue a session whose remaining
    deadline cannot cover the monitor's observed mean wait, and cap a
    queued session's wait at its deadline, so doomed waiters stop holding
    earlier gateways while they die; sheds surface as
    {!Health.Error.Deadline_exceeded} with detail ["gateway-shed:<gate>"]. *)
type defense = {
  adaptive_lifo : bool;
  lifo_after_s : float;
  deadline_shed : bool;
}

val no_defense : defense
val set_defense : t -> defense -> unit
val defense : t -> defense

(** FIFO->LIFO flips so far (re-flips to FIFO are not counted). *)
val lifo_shifts : t -> int

(** Sessions refused or cut short by the deadline shed. *)
val deadline_sheds : t -> int

(** {1 Sessions} *)

type session

(** [begin_compile t] registers a new compilation (initially below the
    first threshold, hence unthrottled). [qid] labels the session's trace
    records. [deadline] is the query's absolute deadline, used only by the
    [deadline_shed] defense (default: none). *)
val begin_compile : ?qid:string -> ?deadline:float -> t -> session

(** [alloc s n] reports [n] more bytes of compile memory demand. May block
    the calling process at one or more monitors. On [Error] the compilation
    must be abandoned: call {!end_compile} to release everything. Errors
    carry the structured taxonomy: a gateway timeout surfaces as
    {!Health.Error.Memory_wait_timeout} (8645) with the monitor's name as
    detail, a failed physical allocation as
    {!Health.Error.Insufficient_memory} (701). *)
val alloc : session -> int -> (unit, Health.Error.t) result

(** [free s n] returns [n] bytes early (does not release monitors; real
    optimizers release their arenas only at the end of compilation). *)
val free : session -> int -> unit

(** [end_compile s] releases held monitors in reverse order and frees all
    remaining session memory. Idempotent. *)
val end_compile : session -> unit

val usage : session -> int
val peak : session -> int

(** Number of monitors currently held (0 = below the first threshold). *)
val level : session -> int

(** {1 Broker integration} *)

(** Feed the compile component's broker notification to the governor (wire
    this as the [notify] callback of {!Broker.register}). *)
val on_notification : t -> Broker.notification -> unit

(** Latest compile-memory target learned from the broker (0 if none). *)
val broker_target : t -> int

(** Compile-memory pressure ladder, derived from the latest broker
    notification. [Calm]: no shrink demanded. [Elevated]: the broker wants
    compile memory released. [Critical]: predicted usage far overshoots
    the target — exhaustion territory. Always [Calm] when the governor is
    disabled. The server's graceful-degradation ladder keys off this. *)
type pressure = Calm | Elevated | Critical

val pressure : t -> pressure
val pressure_name : pressure -> string

(** [true] when compilations should wrap up with their best plan so far
    (equivalent to [pressure t = Critical]). *)
val should_stop_early : t -> bool

(** {1 Introspection} *)

val enabled : t -> bool

(** Current entry threshold of level [i] (dynamic if configured). *)
val threshold : t -> int -> int

(** [population t i] is the number of sessions holding exactly [i]
    monitors. *)
val population : t -> int -> int

val active_sessions : t -> int
val monitors : t -> Monitor.t array
val clerk : t -> Dbmem.Manager.clerk
val pp : Format.formatter -> t -> unit
