type t = {
  mname : string;
  meng : Sim.Engine.t;
  mtrace : Obs.Trace.t;
  sem : Sim.Resource.Sem.t;
  mtimeout : float;
  mutable nreleases : int;
}

let create eng ?(trace = Obs.Trace.null) ~name ~slots ~timeout () =
  if slots < 1 then invalid_arg "Monitor.create: slots must be >= 1";
  if timeout <= 0. then invalid_arg "Monitor.create: timeout must be > 0";
  { mname = name; meng = eng; mtrace = trace;
    sem = Sim.Resource.Sem.create eng ~name ~capacity:slots ();
    mtimeout = timeout; nreleases = 0 }

let emit t ~qid phase ~priority =
  if Obs.Trace.enabled t.mtrace then
    Obs.Trace.emit t.mtrace ~time:(Sim.Engine.now t.meng) ~qid
      (Obs.Event.Gateway { gate = t.mname; phase; priority })

let acquire t ?(priority = 0) ?(qid = "") ?timeout_override () =
  emit t ~qid Obs.Event.Wait ~priority;
  let timeout =
    match timeout_override with
    | Some dt -> Float.min t.mtimeout dt
    | None -> t.mtimeout
  in
  match Sim.Resource.Sem.acquire t.sem ~priority ~timeout ~n:1 () with
  | Sim.Resource.Acquired ->
      emit t ~qid Obs.Event.Acquired ~priority;
      Ok ()
  | Sim.Resource.Timed_out ->
      emit t ~qid Obs.Event.Timeout ~priority;
      Error `Timeout

let release ?(qid = "") t =
  t.nreleases <- t.nreleases + 1;
  emit t ~qid Obs.Event.Release ~priority:0;
  Sim.Resource.Sem.release t.sem ~n:1
let set_slots t n = Sim.Resource.Sem.set_capacity t.sem n
let set_discipline t d = Sim.Resource.Sem.set_discipline t.sem d
let discipline t = Sim.Resource.Sem.discipline t.sem
let mean_wait t = Sim.Stats.Online.mean (Sim.Resource.Sem.wait_stats t.sem)
let name t = t.mname
let slots t = Sim.Resource.Sem.capacity t.sem
let in_use t = Sim.Resource.Sem.in_use t.sem
let queued t = Sim.Resource.Sem.queued t.sem
let timeout t = t.mtimeout
let acquires t = Sim.Resource.Sem.grants t.sem
let releases t = t.nreleases
let timeouts t = Sim.Resource.Sem.timeouts t.sem
let wait_stats t = Sim.Resource.Sem.wait_stats t.sem
