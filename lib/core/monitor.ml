type t = {
  mname : string;
  sem : Sim.Resource.Sem.t;
  mtimeout : float;
  mutable nreleases : int;
}

let create eng ~name ~slots ~timeout =
  if slots < 1 then invalid_arg "Monitor.create: slots must be >= 1";
  if timeout <= 0. then invalid_arg "Monitor.create: timeout must be > 0";
  { mname = name; sem = Sim.Resource.Sem.create eng ~name ~capacity:slots ();
    mtimeout = timeout; nreleases = 0 }

let acquire t ?(priority = 0) () =
  match
    Sim.Resource.Sem.acquire t.sem ~priority ~timeout:t.mtimeout ~n:1 ()
  with
  | Sim.Resource.Acquired -> Ok ()
  | Sim.Resource.Timed_out -> Error `Timeout

let release t =
  t.nreleases <- t.nreleases + 1;
  Sim.Resource.Sem.release t.sem ~n:1
let set_slots t n = Sim.Resource.Sem.set_capacity t.sem n
let name t = t.mname
let slots t = Sim.Resource.Sem.capacity t.sem
let in_use t = Sim.Resource.Sem.in_use t.sem
let queued t = Sim.Resource.Sem.queued t.sem
let timeout t = t.mtimeout
let acquires t = Sim.Resource.Sem.grants t.sem
let releases t = t.nreleases
let timeouts t = Sim.Resource.Sem.timeouts t.sem
let wait_stats t = Sim.Resource.Sem.wait_stats t.sem
