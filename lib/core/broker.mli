(** The Memory Broker (paper §3).

    The broker periodically samples the memory usage of every registered
    subcomponent, fits a trend, predicts near-future usage, and — when the
    predicted aggregate exceeds the brokered budget — computes a per-
    component {e target}. Each component is then notified whether it may
    keep growing, should hold its allocation rate, or must release memory
    down to its target. When the system is not under pressure the broker
    takes no action ("the system behaves as if the Memory Broker was not
    there"). *)

type t
type component

type verdict =
  | Can_grow  (** may continue to consume memory *)
  | Hold_rate  (** may allocate at the current rate, no faster *)
  | Must_shrink  (** must release memory down to [target] *)

type notification = {
  verdict : verdict;
  target : int;  (** bytes this component should converge to *)
  predicted : int;  (** broker's usage prediction at the horizon *)
  pressure : bool;  (** whether the system as a whole is under pressure *)
}

type config = {
  interval : float;  (** seconds between broker ticks *)
  horizon : float;  (** prediction horizon, seconds *)
  window : int;  (** trend window, in samples *)
  reserved_fraction : float;
      (** fraction of physical memory kept out of brokerage (fixed
          structures, thread stacks, ...) *)
  shrink_slack : float;
      (** tolerated overshoot before demanding a shrink, e.g. [0.02] *)
  insist_after : int;
      (** shrink-compliance enforcement: a component whose usage stays
          above target without falling for this many consecutive
          [Must_shrink] ticks gets a forced reclaim through its [reclaim]
          hook. Components without a hook (the ballast, external
          consumers) cannot be forced — they are outside the broker's
          writ. [0] (the default) disables insistence — notifications
          stay advisory, preserving pre-supervision behavior. *)
}

val default_config : config

(** [create ?trace eng manager config] — nothing runs until {!start}.
    When [trace] is an enabled sink, every tick records an
    {!Obs.Event.Broker_tick} with per-component samples and verdicts. *)
val create : ?trace:Obs.Trace.t -> Sim.Engine.t -> Dbmem.Manager.t -> config -> t

(** [register t ~name ~clerk ?weight ?min_bytes ?demand ?notify ()] adds a
    subcomponent. [weight] scales its share under pressure (default [1.]);
    [min_bytes] is a floor on its target; [demand], when given, is sampled
    each tick instead of the clerk's usage as the component's memory demand
    — caches use it to report unmet demand (e.g. resident bytes plus recent
    miss inflow), without which a squeezed cache would trend flat and never
    win its memory back; [notify] is invoked on every tick with the
    component's current notification; [reclaim], when given, is how the
    broker insists — called with the bytes of overage when the component
    has ignored [insist_after] consecutive shrink verdicts without its
    usage falling, returning the bytes actually freed. Components without
    a hook are never forced. *)
val register :
  t ->
  name:string ->
  clerk:Dbmem.Manager.clerk ->
  ?weight:float ->
  ?min_bytes:int ->
  ?demand:(unit -> int) ->
  ?notify:(notification -> unit) ->
  ?reclaim:(int -> int) ->
  unit ->
  component

(** Begin periodic ticking on the engine. *)
val start : t -> unit

val stop : t -> unit

(** Run one broker cycle immediately (also what the periodic task does).
    Exposed for unit tests and for components that want a fresh view. *)
val tick : t -> unit

(** {1 Introspection} *)

(** Budget the broker distributes: [total * (1 - reserved_fraction)]. *)
val brokered_bytes : t -> int

(** [true] when the last tick found predicted demand above the budget. *)
val under_pressure : t -> bool

val ticks : t -> int

(** Sum of the last tick's per-component demand predictions, bytes
    ([0] before the first tick). This is the server's aggregate memory
    appetite — the tenant arbiter samples it as the pool's demand
    signal. *)
val predicted_total : t -> int

(** Forced reclaims performed so far (shrink-compliance interventions). *)
val forced_reclaims : t -> int

val component_name : component -> string

(** Latest notification computed for this component ([None] before the
    first tick). *)
val last_notification : component -> notification option

(** Current target; before any tick this is the component's even share. *)
val target : component -> int

val components : t -> component list
val pp : Format.formatter -> t -> unit
