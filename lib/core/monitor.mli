(** A single memory monitor ("gateway", paper §4.1).

    A monitor admits at most [slots] concurrent compilations. A compilation
    acquires the monitor when its memory usage crosses the monitor's
    threshold (threshold logic lives in {!Compile_gov}; this module is just
    the admission gate) and blocks if no slot is free. Acquisition carries a
    timeout: a compilation that makes no progress for too long fails with a
    timeout error rather than deadlocking the system. *)

type t

(** [create eng ?trace ~name ~slots ~timeout ()]. When [trace] is an
    enabled sink, every acquire-wait/acquired/timeout/release at this
    monitor is recorded as an {!Obs.Event.Gateway} event. *)
val create :
  Sim.Engine.t ->
  ?trace:Obs.Trace.t ->
  name:string ->
  slots:int ->
  timeout:float ->
  unit ->
  t

(** [acquire t ()] blocks until a slot is free or the monitor's timeout
    elapses. Must run inside a simulation process. Lower [priority] is
    served first; default [0] (FIFO). [qid] labels the trace records.
    [timeout_override], when given, {e caps} the monitor's configured
    timeout (never extends it) — the deadline-aware shed path uses it so
    a waiter whose query deadline lands before the gateway timeout gives
    its queue slot back at the deadline instead of standing dead in
    line. *)
val acquire :
  t ->
  ?priority:int ->
  ?qid:string ->
  ?timeout_override:float ->
  unit ->
  (unit, [ `Timeout ]) result

(** Give the slot back. *)
val release : ?qid:string -> t -> unit

(** Adjust concurrency at runtime (dynamic policies). *)
val set_slots : t -> int -> unit

(** Switch the waiting queue's service order (see
    {!Sim.Resource.discipline}); applies to new arrivals only. *)
val set_discipline : t -> Sim.Resource.discipline -> unit

val discipline : t -> Sim.Resource.discipline

val name : t -> string
val slots : t -> int
val in_use : t -> int
val queued : t -> int
val timeout : t -> float

(** {1 Statistics} *)

val acquires : t -> int

(** Slots given back so far; a quiesced system has
    [acquires t = releases t] (no slot leaks). *)
val releases : t -> int

val timeouts : t -> int

(** Distribution of time spent blocked in {!acquire} (successful acquires
    only; zero for fast-path grants). *)
val wait_stats : t -> Sim.Stats.Online.t

(** Mean of {!wait_stats} — the queue-delay estimate the deadline shed
    compares against a waiter's remaining budget. *)
val mean_wait : t -> float
