(** Cross-tenant memory arbitration — the layer above the {!Broker}.

    The paper's Memory Broker arbitrates one server's memory between its
    own components; the arbiter generalises that one level up (the
    Resource-Governor shape): several {e resource pools} — one per tenant
    — share one machine, each pool owning its own [Dbmem.Manager] budget
    and running its own broker against it. The arbiter periodically
    samples each pool's brokered demand, fits a {!Trend} per pool, and
    redistributes {e unused reservation} from idle pools to pressured
    ones, subject to per-pool [min_share]/[max_share] fractions of the
    machine. When a donor pool wakes up, its budget is grown back at the
    next tick and the loan is pulled back from the borrower through its
    reclaim hook — so a noisy neighbour can borrow idle memory but can
    never squeeze a well-behaved tenant below its guaranteed floor.

    The arbiter knows nothing about servers: pools register as callbacks
    (usage/demand samplers, a budget setter, a reclaim hook), so the
    module is directly property-testable. *)

type t
type pool

type config = {
  interval : float;  (** seconds between arbiter ticks *)
  horizon : float;  (** demand-prediction horizon, seconds *)
  window : int;  (** per-pool trend window, in samples *)
  deadband : int;
      (** a planned rebalance whose largest per-pool budget move is at
          most this many bytes is skipped entirely (no churn on noise) *)
}

val default_config : config

(** {1 The pure planner}

    Exposed separately so the split arithmetic can be property-tested
    without engines or callbacks. *)

type claim = {
  weight : float;  (** > 0; scales the pool's share of surplus *)
  min_share : float;  (** guaranteed floor, fraction of [total] *)
  max_share : float;  (** borrowing cap, fraction of [total] *)
  predicted : int;  (** predicted demand, bytes *)
}

(** [plan ~total claims] splits [total] bytes over the claims and returns
    one budget per claim, in order. Invariants (given
    [0 <= min_share <= max_share <= 1] per claim and
    [sum min_share <= 1]):
    - the budgets sum to at most [total];
    - every budget is at least [floor (min_share * total)] and at most
      [max (floor (min_share * total)) (floor (max_share * total))].

    When aggregate clamped demand fits, every pool is granted its demand
    plus a weight-proportional slice of the surplus (idle reservation
    flows to whoever can use it, up to [max_share]); under scarcity the
    above-floor remainder is split proportionally to weighted unmet
    demand, floors always honoured first. *)
val plan : total:int -> claim list -> int list

(** {1 Live arbitration} *)

(** [create ?trace eng ~total config] — nothing runs until {!start}.
    [total] is the physical memory split across the pools. When [trace]
    is an enabled sink every cycle records an
    {!Obs.Event.Arbiter_tick} (and {!Obs.Event.Arbiter_reclaim} for each
    forced pull-back). *)
val create : ?trace:Obs.Trace.t -> Sim.Engine.t -> total:int -> config -> t

(** [register t ~name ~budget ~used ~set_budget ~reclaim ()] adds a pool.
    [budget] is the pool's current budget (the caller created the pool's
    manager at that size); [used] samples bytes in use; [demand], when
    given, is sampled instead of [used] as the pool's memory demand
    (pools report their broker's predicted aggregate here, so a squeezed
    pool trends its unmet demand and wins memory back); [set_budget] is
    called with the new budget on every rebalance that moves this pool;
    [reclaim n], called after a shrink that lands below current usage,
    must make a best effort to free [n] bytes and return the bytes
    actually freed. Registration must happen before {!start}; shares are
    validated cumulatively ([sum min_share <= 1]). *)
val register :
  t ->
  name:string ->
  ?weight:float ->
  ?min_share:float ->
  ?max_share:float ->
  budget:int ->
  used:(unit -> int) ->
  ?demand:(unit -> int) ->
  set_budget:(int -> unit) ->
  reclaim:(int -> int) ->
  unit ->
  pool

(** Begin periodic rebalancing on the engine. *)
val start : t -> unit

val stop : t -> unit

(** Run one arbitration cycle immediately (also what the periodic task
    does). Exposed for unit tests. *)
val tick : t -> unit

(** {1 Introspection} *)

val total : t -> int
val ticks : t -> int

(** [true] when the last tick found predicted aggregate demand above the
    machine (the scarcity branch of the planner ran). *)
val scarce : t -> bool

(** Rebalance cycles that actually moved at least one budget. *)
val rebalances : t -> int

(** Total bytes granted to growing pools across all rebalances. *)
val moved_bytes : t -> int

(** Total bytes pulled back through pool reclaim hooks. *)
val reclaimed_bytes : t -> int

val pools : t -> pool list
val pool_name : pool -> string

(** The pool's current budget, bytes. *)
val budget : pool -> int

(** The pool's guaranteed floor, bytes ([floor (min_share * total)]). *)
val floor_bytes : pool -> int

(** [set_offline p true] marks the pool's owner (a crashed shard) as down:
    from the next tick its floor and cap collapse to zero, so the whole
    share is lent to the surviving pools and only a one-byte keepalive
    budget remains. [set_offline p false] restores the registered claim;
    the normal shrink-before-grow apply then claws the loan back from the
    borrowers before regrowing the rejoined pool. *)
val set_offline : pool -> bool -> unit

val offline : pool -> bool

val pp : Format.formatter -> t -> unit
