type pressure = Calm | Elevated | Critical

let pressure_name = function
  | Calm -> "calm"
  | Elevated -> "elevated"
  | Critical -> "critical"

type defense = {
  adaptive_lifo : bool;  (* flip FIFO->LIFO under sustained standing *)
  lifo_after_s : float;  (* standing time before the flip *)
  deadline_shed : bool;  (* shed waiters whose deadline cannot be met *)
}

let no_defense =
  { adaptive_lifo = false; lifo_after_s = 10.0; deadline_shed = false }

type t = {
  geng : Sim.Engine.t;
  gtrace : Obs.Trace.t;
  gclerk : Dbmem.Manager.clerk;
  config : Throttle_config.t;
  levels : Throttle_config.level array;
  gmonitors : Monitor.t array;
  counts : int array; (* counts.(i): sessions holding exactly i monitors *)
  mutable target : int; (* latest broker target for compile memory, 0 = unknown *)
  mutable press : pressure;
  mutable active : int;
  genabled : bool;
  mutable defense : defense;
  standing_since : float array; (* per monitor; nan = queue not standing *)
  mutable lifo_shifts : int;
  mutable deadline_sheds : int;
}

type session = {
  gov : t;
  sqid : string;
  mutable susage : int;
  mutable speak : int;
  mutable held : int;
  mutable finished : bool;
  mutable sdeadline : float; (* absolute; infinity = none *)
}

let create eng _manager ?(trace = Obs.Trace.null) ~clerk ~cpus ~config
    ~enabled () =
  Throttle_config.validate config ~cpus;
  let levels = Array.of_list config.Throttle_config.levels in
  let gmonitors =
    Array.map
      (fun (l : Throttle_config.level) ->
        Monitor.create eng ~trace ~name:l.lname
          ~slots:(Throttle_config.slot_count l.slots ~cpus)
          ~timeout:l.timeout ())
      levels
  in
  {
    geng = eng;
    gtrace = trace;
    gclerk = clerk;
    config;
    levels;
    gmonitors;
    counts = Array.make (Array.length levels + 1) 0;
    target = 0;
    press = Calm;
    active = 0;
    genabled = enabled;
    defense = no_defense;
    standing_since = Array.make (Array.length levels) Float.nan;
    lifo_shifts = 0;
    deadline_sheds = 0;
  }

let enabled t = t.genabled
let set_defense t d = t.defense <- d
let defense t = t.defense
let lifo_shifts t = t.lifo_shifts
let deadline_sheds t = t.deadline_sheds

(* Entry threshold for monitor [i]. The first monitor's threshold is always
   static (it exists to let small diagnostic queries through unthrottled);
   later ones follow the paper's [target * F / S] rule when dynamic
   thresholds are on and a broker target is known. [S] is the population of
   the category directly below the monitor. Monotonicity down the ladder is
   enforced so extreme populations can never invert it. *)
let threshold t i =
  let value_of j =
    let l = t.levels.(j) in
    if j = 0 || (not t.config.Throttle_config.dynamic) || t.target <= 0 then
      l.Throttle_config.base_threshold
    else
      Throttle_config.dynamic_threshold l ~target:t.target
        ~population:t.counts.(j)
  in
  let thr = ref (value_of 0) in
  for j = 1 to i do
    thr := max (value_of j) (2 * !thr)
  done;
  !thr

let emit t ~qid event =
  if Obs.Trace.enabled t.gtrace then
    Obs.Trace.emit t.gtrace ~time:(Sim.Engine.now t.geng) ~qid event

let begin_compile ?(qid = "") ?(deadline = Float.infinity) t =
  t.active <- t.active + 1;
  t.counts.(0) <- t.counts.(0) + 1;
  emit t ~qid Obs.Event.Compile_begin;
  {
    gov = t;
    sqid = qid;
    susage = 0;
    speak = 0;
    held = 0;
    finished = false;
    sdeadline = deadline;
  }

let promote s =
  let t = s.gov in
  t.counts.(s.held) <- t.counts.(s.held) - 1;
  s.held <- s.held + 1;
  t.counts.(s.held) <- t.counts.(s.held) + 1

(* Adaptive queue discipline: track how long monitor [i]'s queue has been
   continuously standing (checked lazily at every acquire attempt — no
   timer). Past [lifo_after_s] of standing, flip to newest-first: the
   newest waiter is the one whose caller has not yet given up, so serving
   it first turns a post-storm backlog into completed work instead of a
   parade of timeouts. The queue draining flips it straight back. *)
let adapt_queue t i =
  let d = t.defense in
  if d.adaptive_lifo then begin
    let m = t.gmonitors.(i) in
    let now = Sim.Engine.now t.geng in
    if Monitor.queued m > 0 then begin
      if Float.is_nan t.standing_since.(i) then t.standing_since.(i) <- now
      else if
        now -. t.standing_since.(i) >= d.lifo_after_s
        && Monitor.discipline m = Sim.Resource.Fifo
      then begin
        Monitor.set_discipline m Sim.Resource.Lifo;
        t.lifo_shifts <- t.lifo_shifts + 1;
        emit t ~qid:"gov"
          (Obs.Event.Queue_shift { gate = Monitor.name m; lifo = true })
      end
    end
    else begin
      t.standing_since.(i) <- Float.nan;
      if Monitor.discipline m = Sim.Resource.Lifo then begin
        Monitor.set_discipline m Sim.Resource.Fifo;
        emit t ~qid:"gov"
          (Obs.Event.Queue_shift { gate = Monitor.name m; lifo = false })
      end
    end
  end

let shed_error t i =
  Error
    (Health.Error.make
       ~detail:("gateway-shed:" ^ Monitor.name t.gmonitors.(i))
       Health.Error.Deadline_exceeded)

(* Acquire every monitor whose threshold [new_usage] crosses, in order.
   Waiters are served by progress: among compilations blocked at the same
   monitor, the one that has already allocated the most memory goes first
   ("gives preference to compilations that have made the most progress",
   §4.1), with FIFO among equals. With [deadline_shed] on, a session whose
   remaining deadline cannot cover the monitor's observed mean wait is
   refused {e before} enqueueing (it would only stand in line, time out,
   and meanwhile hold every earlier gateway), and one that does queue has
   its wait capped at the deadline rather than the gateway timeout. *)
let rec pass_gates s new_usage =
  let t = s.gov in
  if s.held >= Array.length t.gmonitors then Ok ()
  else if new_usage <= threshold t s.held then Ok ()
  else begin
    let i = s.held in
    adapt_queue t i;
    let m = t.gmonitors.(i) in
    let remaining = s.sdeadline -. Sim.Engine.now t.geng in
    let shed = t.defense.deadline_shed && remaining < Float.infinity in
    if shed && remaining <= 0. then begin
      t.deadline_sheds <- t.deadline_sheds + 1;
      shed_error t i
    end
    else if shed && Monitor.queued m > 0 && Monitor.mean_wait m > remaining
    then begin
      t.deadline_sheds <- t.deadline_sheds + 1;
      shed_error t i
    end
    else begin
      let priority = -(new_usage / (1 lsl 20)) in
      let timeout_override = if shed then Some remaining else None in
      match
        Monitor.acquire m ~priority ~qid:s.sqid ?timeout_override ()
      with
      | Error `Timeout when shed && remaining < Monitor.timeout m ->
          (* The deadline cap fired before the gateway's own timeout
             would have: this is a deadline shed, not an 8645. *)
          t.deadline_sheds <- t.deadline_sheds + 1;
          shed_error t i
      | Error `Timeout ->
          (* Timed out queued for a compilation gateway: SQL Server 8645. *)
          Error
            (Health.Error.make ~detail:(Monitor.name m)
               Health.Error.Memory_wait_timeout)
      | Ok () ->
          promote s;
          pass_gates s new_usage
    end
  end

let alloc s n =
  if s.finished then invalid_arg "Compile_gov.alloc: session finished";
  if n < 0 then invalid_arg "Compile_gov.alloc: negative";
  let t = s.gov in
  let new_usage = s.susage + n in
  let gate_result = if t.genabled then pass_gates s new_usage else Ok () in
  match gate_result with
  | Error _ as e -> e
  | Ok () -> (
      match Dbmem.Manager.alloc t.gclerk n with
      | Error `Out_of_memory ->
          (* Physical allocation failed even after donor shrink: 701. *)
          Error
            (Health.Error.make ~detail:"compile"
               Health.Error.Insufficient_memory)
      | Ok () ->
          s.susage <- new_usage;
          if new_usage > s.speak then s.speak <- new_usage;
          emit t ~qid:s.sqid
            (Obs.Event.Compile_alloc { bytes = n; usage = new_usage });
          Ok ())

let free s n =
  if s.finished then invalid_arg "Compile_gov.free: session finished";
  if n < 0 || n > s.susage then invalid_arg "Compile_gov.free: bad amount";
  s.susage <- s.susage - n;
  Dbmem.Manager.free s.gov.gclerk n

let end_compile s =
  if not s.finished then begin
    let t = s.gov in
    s.finished <- true;
    (* Release in reverse acquisition order. *)
    for i = s.held - 1 downto 0 do
      Monitor.release ~qid:s.sqid t.gmonitors.(i)
    done;
    t.counts.(s.held) <- t.counts.(s.held) - 1;
    s.held <- 0;
    Dbmem.Manager.free t.gclerk s.susage;
    s.susage <- 0;
    t.active <- t.active - 1;
    emit t ~qid:s.sqid (Obs.Event.Compile_end { peak = s.speak })
  end

let usage s = s.susage
let peak s = s.speak
let level s = s.held

let on_notification t (n : Broker.notification) =
  t.target <- n.Broker.target;
  (* Three-rung pressure ladder. [Critical] — best-plan-so-far / greedy
     fallback territory — is reserved for *predicted exhaustion*, not
     routine pressure: the forecast must overshoot the target
     substantially, else every compilation on a busy system would degrade
     to its greedy plan. [Elevated] is any shrink demand. *)
  t.press <- (match n.Broker.verdict with
    | Broker.Must_shrink ->
        if n.Broker.predicted > 2 * max 1 n.Broker.target then Critical
        else Elevated
    | Broker.Hold_rate | Broker.Can_grow -> Calm)

let broker_target t = t.target
let pressure t = if t.genabled then t.press else Calm
let should_stop_early t = t.genabled && t.press = Critical
let population t i = t.counts.(i)
let active_sessions t = t.active
let monitors t = t.gmonitors
let clerk t = t.gclerk

let pp ppf t =
  Format.fprintf ppf "@[<v>compile governor (enabled=%b, target=%a, pressure=%s)@,"
    t.genabled Dbmem.Units.pp_bytes t.target (pressure_name t.press);
  Array.iteri
    (fun i m ->
      Format.fprintf ppf "  %-8s thr=%-12s slots=%d in_use=%d queued=%d timeouts=%d@,"
        (Monitor.name m)
        (Dbmem.Units.bytes_to_string (threshold t i))
        (Monitor.slots m) (Monitor.in_use m) (Monitor.queued m)
        (Monitor.timeouts m))
    t.gmonitors;
  Format.fprintf ppf "  populations:";
  Array.iteri (fun i c -> Format.fprintf ppf " L%d=%d" i c) t.counts;
  Format.fprintf ppf "@,@]"
