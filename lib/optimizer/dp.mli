(** System-R style exhaustive dynamic programming over connected relation
    subsets (bushy plans, no cross products).

    The DP baseline explores exactly the same plan space as a completed
    Cascades search, so both must return plans of equal cost — a strong
    cross-check used by the test suite. Exponential in the number of
    relations; refuses queries above {!max_rels}. *)

val max_rels : int

(** [optimize model card] is the optimal plan (aggregation included).
    Raises [Invalid_argument] when the query exceeds {!max_rels}. *)
val optimize : Cost.model -> Card.t -> Plan.t

(** Number of (connected-subset) DP entries filled by the last call —
    returned alongside the plan by {!optimize_with_stats}. *)
val optimize_with_stats : Cost.model -> Card.t -> Plan.t * int

(** {1 Test oracle}

    The original list-based DP, which materialises every [Plan.t]
    alternative instead of searching over flat cost tables. Kept only so
    the test suite can assert the flat search returns identical plans,
    costs and entry counts; do not use in production paths (two orders
    of magnitude more allocation). *)

val optimize_reference : Cost.model -> Card.t -> Plan.t
val optimize_reference_with_stats : Cost.model -> Card.t -> Plan.t * int
