type scan = {
  srel : int;
  stable : string;
  srows : float;
  spages : float;
  stotal_pages : float;
  random_io : bool;
}

type node =
  | Seq_scan of scan
  | Index_scan of scan
  | Hash_join of t * t
  | Nl_join of t * t
  | Merge_join of t * t
  | Sort of t
  | Hash_agg of t * int * int
  | Stream_agg of t * int * int

and t = {
  node : node;
  rset : Relset.t;
  rows : float;
  width : int;
  cost_io : float;
  cost_cpu : float;
  mem_bytes : float;
}

let seq_scan model card i =
  let tbl = Card.table_of card i in
  let pages = Catalog.pages tbl ~page_size:model.Cost.page_size in
  let out_rows = Card.base_rows card i in
  {
    node =
      Seq_scan
        {
          srel = i;
          stable = tbl.Catalog.tbl_name;
          srows = out_rows;
          spages = pages;
          stotal_pages = pages;
          random_io = false;
        };
    rset = Relset.singleton i;
    rows = out_rows;
    width = Catalog.row_width tbl;
    cost_io = pages *. model.Cost.seq_page_cost;
    (* Every stored row is examined to apply filters. *)
    cost_cpu = tbl.Catalog.rows *. model.Cost.cpu_tuple_cost;
    mem_bytes = 0.;
  }

let index_scan model card i =
  let tbl = Card.table_of card i in
  let q = Card.query card in
  let filters = Query.filters_of q i in
  let indexed =
    List.exists (fun f -> Catalog.has_index_on tbl f.Query.fcol) filters
  in
  if not indexed then None
  else begin
    let out_rows = Card.base_rows card i in
    let full_pages = Catalog.pages tbl ~page_size:model.Cost.page_size in
    (* Fetch only the qualifying fraction of pages, but with random I/O,
       plus a few pages of index traversal. *)
    let sel = out_rows /. Float.max 1.0 tbl.Catalog.rows in
    let pages = Float.max 1.0 ((full_pages *. sel) +. 3.) in
    Some
      {
        node =
          Index_scan
            {
              srel = i;
              stable = tbl.Catalog.tbl_name;
              srows = out_rows;
              spages = pages;
              stotal_pages = full_pages;
              random_io = true;
            };
        rset = Relset.singleton i;
        rows = out_rows;
        width = Catalog.row_width tbl;
        cost_io = pages *. model.Cost.rand_page_cost;
        cost_cpu = out_rows *. model.Cost.cpu_tuple_cost;
        mem_bytes = 0.;
      }
  end

(* Hash builds project the build side down to the join key plus the columns
   the probe pipeline needs, not the full stored row. *)
let hash_build_width = 32

let hash_mem model ~rows ~width =
  rows *. (float_of_int (min width hash_build_width) +. model.Cost.hash_mem_overhead)

let hash_join model ~rows ~build ~probe =
  let mem = hash_mem model ~rows:build.rows ~width:build.width in
  let spill = Cost.spill_factor model ~bytes:mem in
  let cpu =
    build.cost_cpu +. probe.cost_cpu
    +. (build.rows *. model.Cost.hash_build_cost)
    +. (probe.rows *. model.Cost.hash_probe_cost)
    +. (rows *. model.Cost.cpu_tuple_cost)
  in
  let io = (build.cost_io +. probe.cost_io) *. 1.0 +. ((spill -. 1.0) *. mem /. float_of_int model.Cost.page_size) in
  {
    node = Hash_join (build, probe);
    rset = Relset.union build.rset probe.rset;
    rows;
    width = build.width + probe.width;
    cost_io = io;
    cost_cpu = cpu;
    mem_bytes = mem;
  }

let nl_join model ~rows ~outer ~inner =
  (* The inner subtree is re-evaluated per outer row; charge its own cost
     once per outer row (a pessimistic, rescan-free model that keeps NLJ
     attractive only for tiny inners). *)
  let rescans = Float.max 0.0 (outer.rows -. 1.0) in
  let cpu =
    outer.cost_cpu +. inner.cost_cpu
    +. (rescans *. inner.cost_cpu *. 0.1)
    +. (outer.rows *. inner.rows *. model.Cost.cpu_tuple_cost *. 0.25)
    +. (rows *. model.Cost.cpu_tuple_cost)
  in
  let io = outer.cost_io +. inner.cost_io in
  {
    node = Nl_join (outer, inner);
    rset = Relset.union outer.rset inner.rset;
    rows;
    width = outer.width + inner.width;
    cost_io = io;
    cost_cpu = cpu;
    mem_bytes = 0.;
  }

(* Sort workspaces hold only the sort keys plus a row pointer, capped well
   below full row width. *)
let sort_width_cap = 64

let sort model child =
  let n = Float.max 2.0 child.rows in
  let mem = child.rows *. float_of_int (min child.width sort_width_cap) in
  let spill = Cost.spill_factor model ~bytes:mem in
  {
    node = Sort child;
    rset = child.rset;
    rows = child.rows;
    width = child.width;
    cost_io =
      child.cost_io
      +. ((spill -. 1.0) *. mem /. float_of_int model.Cost.page_size);
    cost_cpu = child.cost_cpu +. (model.Cost.sort_cost *. n *. (log n /. log 2.));
    mem_bytes = mem;
  }

let merge_join model ~rows ~left ~right =
  let sl = sort model left and sr = sort model right in
  let cpu =
    sl.cost_cpu +. sr.cost_cpu
    +. ((sl.rows +. sr.rows) *. model.Cost.cpu_tuple_cost)
    +. (rows *. model.Cost.cpu_tuple_cost)
  in
  {
    node = Merge_join (sl, sr);
    rset = Relset.union left.rset right.rset;
    rows;
    width = left.width + right.width;
    cost_io = sl.cost_io +. sr.cost_io;
    cost_cpu = cpu;
    mem_bytes = 0.;
  }

let agg_width = 16

let hash_agg model ~rows ~groups ~aggs child =
  let out_width = (groups * 8) + (aggs * agg_width) in
  let mem = rows *. (float_of_int out_width +. model.Cost.hash_mem_overhead) in
  {
    node = Hash_agg (child, groups, aggs);
    rset = child.rset;
    rows;
    width = out_width;
    cost_io = child.cost_io;
    cost_cpu =
      child.cost_cpu
      +. (child.rows *. float_of_int (max 1 aggs) *. model.Cost.agg_cost);
    mem_bytes = mem;
  }

let stream_agg model ~rows ~groups ~aggs child =
  let sorted = sort model child in
  let out_width = (groups * 8) + (aggs * agg_width) in
  {
    node = Stream_agg (sorted, groups, aggs);
    rset = child.rset;
    rows;
    width = out_width;
    cost_io = sorted.cost_io;
    cost_cpu =
      sorted.cost_cpu
      +. (sorted.rows *. float_of_int (max 1 aggs) *. model.Cost.agg_cost);
    mem_bytes = 0.;
  }

let total_cost t = t.cost_io +. t.cost_cpu
let cpu_cost t = t.cost_cpu
let io_cost t = t.cost_io

let rec fold f acc t =
  let acc = f acc t in
  match t.node with
  | Seq_scan _ | Index_scan _ -> acc
  | Sort c | Hash_agg (c, _, _) | Stream_agg (c, _, _) -> fold f acc c
  | Hash_join (a, b) | Nl_join (a, b) | Merge_join (a, b) ->
      fold f (fold f acc a) b

let io_pages t =
  fold
    (fun acc n ->
      match n.node with
      | Seq_scan s | Index_scan s -> acc +. s.spages
      | _ -> acc)
    0. t

let grant_bytes t = int_of_float (fold (fun acc n -> acc +. n.mem_bytes) 0. t)
let n_operators t = fold (fun acc _ -> acc + 1) 0 t

(* A compiled plan in a real engine carries expression trees, metadata and
   runtime structures; 6 KiB per operator is in line with SQL Server's
   reported plan-cache entry sizes for mid-size plans. *)
let bytes_per_operator = 6 * 1024

let size_bytes t = n_operators t * bytes_per_operator

let scans t =
  List.rev
    (fold
       (fun acc n ->
         match n.node with Seq_scan s | Index_scan s -> s :: acc | _ -> acc)
       [] t)

let well_formed t ~n_rels =
  let ss = scans t in
  let seen = List.sort_uniq compare (List.map (fun s -> s.srel) ss) in
  List.length ss = n_rels
  && List.length seen = n_rels
  && List.for_all (fun r -> r >= 0 && r < n_rels) seen
  && Relset.equal t.rset (Relset.full n_rels)

let rec pp ppf t =
  let open Format in
  let info = Printf.sprintf "(rows=%.3g cost=%.3g)" t.rows (total_cost t) in
  match t.node with
  | Seq_scan s -> fprintf ppf "SeqScan %s %s" s.stable info
  | Index_scan s -> fprintf ppf "IndexScan %s %s" s.stable info
  | Hash_join (b, p) ->
      fprintf ppf "@[<v 2>HashJoin %s@,build: %a@,probe: %a@]" info pp b pp p
  | Nl_join (o, i) ->
      fprintf ppf "@[<v 2>NLJoin %s@,outer: %a@,inner: %a@]" info pp o pp i
  | Merge_join (l, r) ->
      fprintf ppf "@[<v 2>MergeJoin %s@,%a@,%a@]" info pp l pp r
  | Sort c -> fprintf ppf "@[<v 2>Sort %s@,%a@]" info pp c
  | Hash_agg (c, g, a) ->
      fprintf ppf "@[<v 2>HashAgg g=%d a=%d %s@,%a@]" g a info pp c
  | Stream_agg (c, g, a) ->
      fprintf ppf "@[<v 2>StreamAgg g=%d a=%d %s@,%a@]" g a info pp c
