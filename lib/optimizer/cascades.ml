type params = {
  group_bytes : int;
  lexpr_bytes : int;
  phys_bytes : int;
  task_cpu : float;
  cpu_batch : int;
  max_tasks : int;
  min_tasks : int;
  tasks_per_cost : float;
  expand_chunk : int;
  honor_stop_early : bool;
}

let default_params =
  {
    group_bytes = 72 * 1024;
    lexpr_bytes = 18 * 1024;
    phys_bytes = 18 * 1024;
    task_cpu = 2.0e-3;
    cpu_batch = 64;
    max_tasks = 45_000;
    min_tasks = 500;
    tasks_per_cost = 1.2e-2;
    expand_chunk = 16;
    honor_stop_early = true;
  }

type outcome = Complete | Budget_exhausted | Stopped_early

type stats = {
  tasks : int;
  groups : int;
  lexprs : int;
  phys : int;
  allocated_bytes : int;
  budget : int;
}

type result = { plan : Plan.t; cost : float; outcome : outcome; stats : stats }

(* ------------------------------------------------------------------ *)
(* Memo *)

type group_state = Fresh | Expanding | Done

type group = {
  mutable gset : Relset.t;
      (* mutable only so arena reuse can recycle the record *)
  mutable state : group_state;
  mutable best : Plan.t option;
  mutable splits : split array;
      (* valid (left, right) partitions, filled when expansion starts *)
  mutable outstanding : int;
      (* unfinished tasks owned by this group: 1 for the expansion itself
         plus one per recorded split *)
  mutable pending : task list;
      (* split tasks of *parent* groups waiting for this group to finish *)
}

(* Child groups are interned into the split record the first time the
   split task runs, so re-runs (after a pending child finishes) and the
   final costing never touch the memo hashtable again. *)
and split = {
  sl : Relset.t;
  sr : Relset.t;
  mutable child_l : group option;
  mutable child_r : group option;
}

(* Tasks carry the group pointer whenever the group is known to exist at
   push time (Expand and Opt_split are only pushed by their own group),
   which keeps the per-task hot path free of hashtable lookups.
   Opt_group keeps the set: creating the group *is* that task's job. *)
and task =
  | Opt_group of Relset.t
  | Expand of group * int (* cursor into the group's split list *)
  | Opt_split of group * split

(* ------------------------------------------------------------------ *)
(* Memo arena: the memo's structural storage (the group hashtable and a
   pool of recyclable group records), reusable across optimize calls.
   [reset_arena] clears logical state but keeps both at their high-water
   capacity — [Hashtbl.clear] preserves the bucket array — so a server
   compiling the same template population over and over stops re-growing
   (and re-collecting) the same structures on every query.

   An arena is single-compile at a time: the search suspends inside
   [env.alloc] (gateway waits), so concurrent simulated compiles must
   each hold their own arena ({!Dbms} keeps a free pool). Reuse is
   observationally transparent: group records carry no state across
   resets, the search never iterates the hashtable, and [Hashtbl]
   find/replace results do not depend on capacity — so plans, costs,
   stats and trace interactions are identical to a fresh memo (the
   QCheck identity property in test_optimizer.ml is the guard). *)

type arena = {
  tbl : (Relset.t, group) Hashtbl.t;
  mutable pool : group array;  (* recyclable records in [0, filled) *)
  mutable filled : int;
  mutable used : int;  (* handed out since the last reset *)
}

let dummy_group =
  {
    gset = Relset.empty;
    state = Done;
    best = None;
    splits = [||];
    outstanding = 0;
    pending = [];
  }

let create_arena () =
  { tbl = Hashtbl.create 1024; pool = Array.make 256 dummy_group; filled = 0; used = 0 }

let reset_arena a =
  Hashtbl.clear a.tbl;
  (* Drop plan/split references so a parked arena does not pin the last
     query's plan trees; slots beyond [used] are already clean. *)
  for i = 0 to a.used - 1 do
    let g = a.pool.(i) in
    g.best <- None;
    g.splits <- [||];
    g.pending <- []
  done;
  a.used <- 0

let acquire_group a set =
  if a.used < a.filled then begin
    let g = a.pool.(a.used) in
    a.used <- a.used + 1;
    g.gset <- set;
    g.state <- Fresh;
    g.outstanding <- 0;
    g
  end
  else begin
    let g =
      {
        gset = set;
        state = Fresh;
        best = None;
        splits = [||];
        outstanding = 0;
        pending = [];
      }
    in
    if a.filled >= Array.length a.pool then begin
      let bigger = Array.make (2 * Array.length a.pool) dummy_group in
      Array.blit a.pool 0 bigger 0 a.filled;
      a.pool <- bigger
    end;
    a.pool.(a.filled) <- g;
    a.filled <- a.filled + 1;
    a.used <- a.used + 1;
    g
  end

type search = {
  params : params;
  env : Env.t;
  model : Cost.model;
  card : Card.t;
  q : Query.t;
  arena : arena;
  groups : (Relset.t, group) Hashtbl.t;  (* == arena.tbl *)
  mutable stack : task list;
  mutable tasks : int;
  mutable n_groups : int;
  mutable n_lexprs : int;
  mutable n_phys : int;
  mutable allocated : int;
  mutable cpu_pending : int;
}

let alloc s bytes =
  s.allocated <- s.allocated + bytes;
  s.env.Env.alloc bytes

let push s task = s.stack <- task :: s.stack

let find_or_create s set =
  match Hashtbl.find_opt s.groups set with
  | Some g -> g
  | None ->
      let g = acquire_group s.arena set in
      Hashtbl.replace s.groups set g;
      s.n_groups <- s.n_groups + 1;
      alloc s s.params.group_bytes;
      (* Cardinality estimation for a new group is part of its footprint. *)
      ignore (Card.card s.card set);
      g

let update_best g plan =
  match g.best with
  | Some b when Plan.total_cost b <= Plan.total_cost plan -> ()
  | _ -> g.best <- Some plan

let finish_group s g =
  g.state <- Done;
  let pending = g.pending in
  g.pending <- [];
  List.iter (fun t -> push s t) pending

let group_task_done s g =
  g.outstanding <- g.outstanding - 1;
  if g.outstanding = 0 && g.state = Expanding then finish_group s g

(* ------------------------------------------------------------------ *)
(* Task processing *)

let process_opt_group s set =
  let g = find_or_create s set in
  match g.state with
  | Expanding | Done -> ()
  | Fresh ->
      if Relset.cardinal set = 1 then begin
        let i = Relset.min_elt set in
        let alternatives = Rules.leaf_alternatives s.model s.card i in
        alloc s (s.params.phys_bytes * List.length alternatives);
        s.n_phys <- s.n_phys + List.length alternatives;
        List.iter (update_best g) alternatives;
        g.state <- Done;
        finish_group s g
      end
      else begin
        g.state <- Expanding;
        g.outstanding <- 1;
        (* Enumerate the valid logical splits up front: each unordered
           partition once (the side holding the lowest relation is the
           left), both sides connected. EnumerateCsg makes this linear in
           the number of *valid* alternatives rather than in 2^n. *)
        let m = Relset.min_elt set in
        let rest = Relset.diff set (Relset.singleton m) in
        let splits =
          Query.connected_subsets s.q rest
          |> List.filter_map (fun r ->
                 let l = Relset.diff set r in
                 if Query.connected s.q l then
                   Some { sl = l; sr = r; child_l = None; child_r = None }
                 else None)
        in
        g.splits <- Array.of_list splits;
        s.n_lexprs <- s.n_lexprs + Array.length g.splits;
        alloc s (s.params.lexpr_bytes * Array.length g.splits);
        push s (Expand (g, 0))
      end

let process_expand s g cursor =
  let stop = min (Array.length g.splits) (cursor + s.params.expand_chunk) in
  for i = cursor to stop - 1 do
    let sp = g.splits.(i) in
    g.outstanding <- g.outstanding + 1;
    (* LIFO: children optimize before the split is costed. *)
    push s (Opt_split (g, sp));
    push s (Opt_group sp.sr);
    push s (Opt_group sp.sl)
  done;
  if stop < Array.length g.splits then push s (Expand (g, stop))
  else
    (* Expansion finished: drop its outstanding unit. *)
    group_task_done s g

(* By the time a split task runs, both child groups exist: the Expand
   that pushed the split pushed their Opt_group tasks on top of it, so
   [find_or_create] here is a pure lookup (it never allocates), and the
   pointer is cached in the split for any later re-run. *)
let split_child s sp side =
  match (side, sp.child_l, sp.child_r) with
  | `L, Some g, _ | `R, _, Some g -> g
  | `L, None, _ ->
      let g = find_or_create s sp.sl in
      sp.child_l <- Some g;
      g
  | `R, _, None ->
      let g = find_or_create s sp.sr in
      sp.child_r <- Some g;
      g

let process_opt_split s g sp =
  let gl = split_child s sp `L and gr = split_child s sp `R in
  if gl.state <> Done then gl.pending <- Opt_split (g, sp) :: gl.pending
  else if gr.state <> Done then gr.pending <- Opt_split (g, sp) :: gr.pending
  else begin
    match (gl.best, gr.best) with
    | Some pl, Some pr ->
        let alternatives = Rules.join_alternatives s.model s.card pl pr in
        alloc s (s.params.phys_bytes * List.length alternatives);
        s.n_phys <- s.n_phys + List.length alternatives;
        List.iter (update_best g) alternatives;
        group_task_done s g
    | _ ->
        (* A Done child always has a best plan (connected subsets always
           have at least the left-deep plan through their members). *)
        assert false
  end

(* ------------------------------------------------------------------ *)

let flush_cpu s =
  if s.cpu_pending > 0 then begin
    s.env.Env.cpu (float_of_int s.cpu_pending *. s.params.task_cpu);
    s.cpu_pending <- 0
  end

let optimize ?(params = default_params) ?arena ~env model cat q =
  let card = Card.create cat q in
  let full = Relset.full (Query.n_rels q) in
  (* Reset on entry rather than trusting the caller: an aborted previous
     search leaves an arena mid-state, and the reset makes reuse safe
     regardless of how the last call ended. *)
  let arena =
    match arena with
    | Some a ->
        reset_arena a;
        a
    | None -> create_arena ()
  in
  let s =
    {
      params;
      env;
      model;
      card;
      q;
      arena;
      groups = arena.tbl;
      stack = [];
      tasks = 0;
      n_groups = 0;
      n_lexprs = 0;
      n_phys = 0;
      allocated = 0;
      cpu_pending = 0;
    }
  in
  try
    (* Seed: greedy left-deep plan guarantees a complete plan exists from
       the start (pre-aggregation form lives in the memo root). *)
    let root = find_or_create s full in
    let seed = Greedy.plan model card in
    let seed_join_cost =
      (* Budget scales with estimated query cost (dynamic optimization). *)
      Plan.total_cost seed
    in
    let budget =
      min params.max_tasks
        (max params.min_tasks
           (int_of_float (seed_join_cost *. params.tasks_per_cost)))
    in
    (* Keep the un-aggregated seed in the memo for joining purposes. *)
    let seed_join =
      match seed.Plan.node with
      | Plan.Hash_agg (c, _, _) -> c
      | Plan.Stream_agg (c, _, _) ->
          (* Strip the sort the stream aggregate inserted. *)
          (match c.Plan.node with Plan.Sort inner -> inner | _ -> c)
      | _ -> seed
    in
    update_best root seed_join;
    alloc s (params.phys_bytes * Plan.n_operators seed_join);
    push s (Opt_group full);
    let stopped = ref None in
    let rec loop () =
      match s.stack with
      | [] -> ()
      | task :: rest ->
          if s.tasks >= budget then stopped := Some Budget_exhausted
          else if params.honor_stop_early && s.env.Env.should_stop () then
            stopped := Some Stopped_early
          else begin
            s.stack <- rest;
            s.tasks <- s.tasks + 1;
            s.cpu_pending <- s.cpu_pending + 1;
            if s.cpu_pending >= params.cpu_batch then flush_cpu s;
            (match task with
            | Opt_group set -> process_opt_group s set
            | Expand (g, cursor) -> process_expand s g cursor
            | Opt_split (g, sp) -> process_opt_split s g sp);
            loop ()
          end
    in
    (try loop () with
    | Env.Aborted Env.Out_of_memory when params.honor_stop_early ->
        (* The paper's second extension: when memory runs out mid-search,
           return the best plan from the set of already explored plans
           instead of an out-of-memory error. (The memo always holds a
           complete plan thanks to the greedy seed.) *)
        stopped := Some Stopped_early
    | Env.Aborted _ as e -> raise e);
    flush_cpu s;
    let outcome =
      match !stopped with
      | Some o -> o
      | None -> Complete
    in
    let plan =
      match root.best with
      | Some p -> Rules.finalize model card p
      | None -> seed
    in
    Ok
      {
        plan;
        cost = Plan.total_cost plan;
        outcome;
        stats =
          {
            tasks = s.tasks;
            groups = s.n_groups;
            lexprs = s.n_lexprs;
            phys = s.n_phys;
            allocated_bytes = s.allocated;
            budget;
          };
      }
  with Env.Aborted reason ->
    (* Hard failure (gateway timeout, or OOM with the best-plan extension
       disabled): surfaces as an error and the client retries. *)
    Error reason
