(** Sets of query relations as int bitsets (queries are limited to 62
    relations — far above the paper's 15-20-join queries). *)

type t = int

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val cardinal : t -> int
val equal : t -> t -> bool

(** [full n] is [{0, ..., n-1}]. *)
val full : int -> t

val members : t -> int list
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [ctz t] is the index of the lowest set bit of a nonzero [t]
    (count-trailing-zeros), in constant time. [min_elt] and [fold] are
    built on it. The result is unspecified for [t = 0]. *)
val ctz : t -> int

(** [min_elt t] of a nonempty set. *)
val min_elt : t -> int

(** [iter_of_cardinality ~n ~k f] calls [f] on every subset of
    [{0, ..., n-1}] with exactly [k] members, in increasing numeric order
    (Gosper's hack; O(1) and allocation-free per subset). No calls when
    [k < 1] or [k > n]. *)
val iter_of_cardinality : n:int -> k:int -> (t -> unit) -> unit

(** [iter_strict_subsets t f] calls [f sub] for every nonempty proper
    subset of [t], in decreasing submask order. O(1) and allocation-free
    per subset. *)
val iter_strict_subsets : t -> (t -> unit) -> unit

(** [next_subset t sub] is the next nonempty proper subset after [sub] in
    the standard descending submask enumeration, or [None] when the
    enumeration is finished. [sub] must itself be a subset of [t]. Use with
    [first_subset] to enumerate incrementally (resumable across task
    steps). *)
val next_subset : t -> t -> t option

val first_subset : t -> t option
val pp : Format.formatter -> t -> unit
