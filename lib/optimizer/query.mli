(** Logical queries: select-project-join blocks with optional aggregation,
    represented as a join graph over catalog tables.

    This is the input to the optimizer. Queries carry both the statistical
    information the optimizer needs (selectivities) and enough concrete
    predicate detail to be executed for real by the row-level engine when a
    tiny instance of the data is materialised. *)

type filter_op = Le | Ge | Eq

type filter = {
  frel : int;  (** relation index *)
  fcol : string;
  fop : filter_op;
  fvalue : int;
  fsel : float;  (** estimated selectivity in (0, 1] *)
}

type join_pred = {
  jleft : int;  (** relation index *)
  jlcol : string;
  jright : int;
  jrcol : string;
  jsel : float;  (** join selectivity *)
}

type rel = { ridx : int; rtable : string; ralias : string }

type aggregate = {
  group_by : (int * string) list;  (** (relation, column) *)
  sum_cols : (int * string) list;
      (** numeric columns aggregated (SUM); a row count is always computed
          as well, so the number of aggregate functions is
          [1 + List.length sum_cols] *)
}

type t = {
  qid : string;  (** fingerprint; unique per ad-hoc instance *)
  rels : rel array;
  preds : join_pred list;
  filters : filter list;
  agg : aggregate option;
}

(** [make ~id ~rels ~preds ~filters ~agg] validates relation indexes, alias
    uniqueness and graph connectivity. *)
val make :
  id:string ->
  rels:(string * string) list ->
  preds:join_pred list ->
  filters:filter list ->
  agg:aggregate option ->
  t

val n_rels : t -> int
val joins : t -> int

(** Number of aggregate functions of the (optional) aggregation. *)
val agg_count : t -> int

(** Filters attached to relation [i]. *)
val filters_of : t -> int -> filter list

(** Combined filter selectivity of relation [i]. *)
val filter_sel : t -> int -> float

(** Join predicates with one side in [a] and the other in [b]. *)
val preds_between : t -> Relset.t -> Relset.t -> join_pred list

(** [has_pred_between t a b] is [preds_between t a b <> []] without
    building the list. *)
val has_pred_between : t -> Relset.t -> Relset.t -> bool

(** [connected t s] — the subgraph induced by [s] is connected. *)
val connected : t -> Relset.t -> bool

(** Relations adjacent (via join predicates) to members of [s], within
    [within], excluding [s] itself. *)
val neighborhood : t -> Relset.t -> within:Relset.t -> Relset.t

(** [connected_subsets t s] enumerates every nonempty connected subset of
    the subgraph induced by [s] (Moerkotte & Neumann's EnumerateCsg). The
    count is exponential only for dense join graphs; star and chain
    queries yield O(n) and O(n^2) subsets respectively. *)
val connected_subsets : t -> Relset.t -> Relset.t list

(** [filter_selectivity op value col] is the textbook uniform-distribution
    estimate for [col op value] (used by query generators). *)
val filter_selectivity :
  filter_op -> int -> Catalog.column -> float

(** Textbook equi-join selectivity [1 / max(d_left, d_right)]. *)
val join_selectivity : Catalog.column -> Catalog.column -> float

val pp : Format.formatter -> t -> unit

(** Render the query as SQL text — the form in which the paper's load
    generator would submit it. Useful for demonstrating ad-hoc
    uniquification (two instances of one template differ only in literals
    and dimension subsets). *)
val to_sql : t -> string
