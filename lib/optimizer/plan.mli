(** Physical execution plans with cost, cardinality and memory annotations.

    Plans are produced by the optimizer ({!Cascades}, {!Dp}, {!Greedy}) and
    consumed by three clients: the plan cache (sized by {!size_bytes}), the
    simulated executor (driven by {!io_pages}, {!cpu_cost} and
    {!grant_bytes}) and the row-level validator ({!Bridge}). *)

type scan = {
  srel : int;  (** query relation index *)
  stable : string;
  srows : float;  (** output rows, filters applied *)
  spages : float;  (** pages fetched *)
  stotal_pages : float;  (** pages of the whole table *)
  random_io : bool;  (** index lookups are random, scans sequential *)
}

type node =
  | Seq_scan of scan
  | Index_scan of scan
  | Hash_join of t * t  (** build, probe *)
  | Nl_join of t * t  (** outer, inner *)
  | Merge_join of t * t  (** inputs are sorted by the embedded Sorts *)
  | Sort of t
  | Hash_agg of t * int * int  (** child, group columns, agg functions *)
  | Stream_agg of t * int * int

and t = {
  node : node;
  rset : Relset.t;  (** relations covered *)
  rows : float;  (** estimated output cardinality *)
  width : int;  (** output row width, bytes *)
  cost_io : float;  (** cumulative I/O cost units *)
  cost_cpu : float;  (** cumulative CPU cost units *)
  mem_bytes : float;  (** workspace demand of this node alone *)
}

(** {1 Costed constructors} *)

val seq_scan : Cost.model -> Card.t -> int -> t

(** [None] when no index helps (no filter or no index on a filtered
    column). *)
val index_scan : Cost.model -> Card.t -> int -> t option

(** [hash_join model ~rows ~build ~probe] — [rows] is the join output
    cardinality (from {!Card.card} of the union set). *)
val hash_join : Cost.model -> rows:float -> build:t -> probe:t -> t

val nl_join : Cost.model -> rows:float -> outer:t -> inner:t -> t

(** Adds the two Sort children implicitly (their cost is included). *)
val merge_join : Cost.model -> rows:float -> left:t -> right:t -> t

val hash_agg : Cost.model -> rows:float -> groups:int -> aggs:int -> t -> t
val stream_agg : Cost.model -> rows:float -> groups:int -> aggs:int -> t -> t

(** {1 Cost-model constants}

    Exposed so {!Rules}'s cost-only evaluators (used by the flat DP) can
    mirror the constructors' memory formulas bit for bit. *)

(** Build-side projection width cap in {!hash_join}'s memory model. *)
val hash_build_width : int

(** Sort workspace width cap in the implicit Sort operators. *)
val sort_width_cap : int

(** {1 Derived metrics} *)

(** Total cost (I/O + CPU units). *)
val total_cost : t -> float

val cpu_cost : t -> float
val io_cost : t -> float

(** Pages fetched by all scans in the plan (buffer-pool demand). *)
val io_pages : t -> float

(** Sum of workspace demands of all memory-consuming operators — the ideal
    execution memory grant. *)
val grant_bytes : t -> int

(** Serialised plan size (for the plan cache), proportional to operator
    count. *)
val size_bytes : t -> int

val n_operators : t -> int

(** Leaf scans, left to right. *)
val scans : t -> scan list

(** Every relation appears exactly once across the scans. *)
val well_formed : t -> n_rels:int -> bool

val pp : Format.formatter -> t -> unit
