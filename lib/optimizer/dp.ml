let max_rels = 14

(* The DP is split into a cost search over flat arrays and a single plan
   reconstruction pass. The search never allocates [Plan.t] values — for a
   14-relation query the old list-based search built five boxed plan trees
   per (subset, split) and an option box per enumerated submask, ~127 MB
   per optimize call, all but one tree thrown away. Here each subset's
   best alternative is four scalars (cost_io, cost_cpu, winning split,
   winning operator tag) in unboxed arrays indexed by the [Relset.t]
   bitset itself, and only the winning tree is ever materialised.

   The original implementation is kept verbatim below as
   [optimize_reference] — the oracle for the QCheck identity property
   (same plan, same costs, same entry count). *)

let optimize_with_stats model card =
  let q = Card.query card in
  let n = Query.n_rels q in
  if n > max_rels then
    invalid_arg
      (Printf.sprintf "Dp.optimize: %d relations exceed the DP limit of %d" n
         max_rels);
  let full = Relset.full n in
  let tb = Rules.make_tables (full + 1) in
  (* op.(s) is the winning alternative tag for subset [s], or -1 when no
     plan exists (doubles as the presence test the list-based version did
     with [option]). split.(s) is the left part of the winning split. *)
  let op = Array.make (full + 1) (-1) in
  let split = Array.make (full + 1) 0 in
  (* Scratch for the cost evaluators and the per-subset running best —
     float arrays rather than refs so the floats stay unboxed. *)
  let best = Array.make 3 0.0 in
  let cand = Array.make 3 0.0 in
  let entries = ref 0 in
  (* Leaves. *)
  for i = 0 to n - 1 do
    let s = Relset.singleton i in
    op.(s) <- Rules.cheapest_leaf_into model card i ~best;
    tb.Rules.t_rows.(s) <- Card.base_rows card i;
    tb.Rules.t_width.(s) <- Card.width card s;
    tb.Rules.t_io.(s) <- best.(0);
    tb.Rules.t_cpu.(s) <- best.(1);
    incr entries
  done;
  (* Subsets in increasing cardinality order; an int-ascending sweep is not
     enough (a smaller-cardinality set can have a larger encoding).
     Gosper's hack enumerates each cardinality band directly in increasing
     numeric order — the same subset order the list-based version used, so
     plans and entry counts are unchanged. *)
  for k = 2 to n do
    Relset.iter_of_cardinality ~n ~k (fun s ->
        if Query.connected q s then begin
          let lowest = Relset.min_elt s in
          Relset.iter_strict_subsets s (fun l ->
              (* Each unordered split once: the left part keeps the lowest
                 relation of [s] (the join evaluator tries both roles). *)
              if Relset.mem lowest l then begin
                let r = Relset.diff s l in
                if op.(l) >= 0 && op.(r) >= 0 && Query.has_pred_between q l r
                then begin
                  if op.(s) < 0 then begin
                    (* First feasible split: fill the subset's rows/width,
                       needed by every alternative. Done lazily so the
                       cardinality memo sees exactly the same subsets the
                       list-based search asked it about. *)
                    tb.Rules.t_rows.(s) <- Card.card card s;
                    tb.Rules.t_width.(s) <- Card.width card s
                  end;
                  let tag = Rules.cheapest_join_into model tb ~s ~l ~r ~best in
                  (* Strictly cheaper replaces — on ties the earlier split
                     wins, as the list-based version's [<=] guard did. *)
                  if op.(s) < 0 || best.(2) < cand.(2) then begin
                    cand.(0) <- best.(0);
                    cand.(1) <- best.(1);
                    cand.(2) <- best.(2);
                    op.(s) <- tag;
                    split.(s) <- l
                  end
                end
              end);
          if op.(s) >= 0 then begin
            tb.Rules.t_io.(s) <- cand.(0);
            tb.Rules.t_cpu.(s) <- cand.(1);
            incr entries
          end
        end)
  done;
  if op.(full) < 0 then
    invalid_arg "Dp.optimize: no plan (disconnected query?)";
  (* Reconstruction: build [Plan.t] nodes only along the winning tree. The
     constructors recompute costs from the same inputs the cost search
     used, so the plan's annotations are bit-identical to the table
     entries. *)
  let rec build s =
    if Relset.cardinal s = 1 then begin
      let i = Relset.min_elt s in
      if op.(s) = 1 then
        match Plan.index_scan model card i with
        | Some p -> p
        | None -> assert false (* tag 1 implies an index exists *)
      else Plan.seq_scan model card i
    end
    else begin
      let l = split.(s) in
      let r = Relset.diff s l in
      let pl = build l in
      let pr = build r in
      let rows = tb.Rules.t_rows.(s) in
      match op.(s) with
      | 0 -> Plan.hash_join model ~rows ~build:pl ~probe:pr
      | 1 -> Plan.hash_join model ~rows ~build:pr ~probe:pl
      | 2 -> Plan.nl_join model ~rows ~outer:pl ~inner:pr
      | 3 -> Plan.nl_join model ~rows ~outer:pr ~inner:pl
      | _ -> Plan.merge_join model ~rows ~left:pl ~right:pr
    end
  in
  (Rules.finalize model card (build full), !entries)

let optimize model card = fst (optimize_with_stats model card)

(* ------------------------------------------------------------------- *)
(* The original list-based DP, kept as the test oracle: materialises
   every alternative via [Rules.join_alternatives] and keeps whole
   [Plan.t] trees in the table. Exponentially slower in allocation (not
   in asymptotics) than the flat version above, which must agree with it
   plan-for-plan, bit-for-bit. Test-only — no production caller. *)

let optimize_reference_with_stats model card =
  let q = Card.query card in
  let n = Query.n_rels q in
  if n > max_rels then
    invalid_arg
      (Printf.sprintf "Dp.optimize: %d relations exceed the DP limit of %d" n
         max_rels);
  let full = Relset.full n in
  let best : Plan.t option array = Array.make (full + 1) None in
  let entries = ref 0 in
  (* Leaves. *)
  for i = 0 to n - 1 do
    best.(Relset.singleton i) <-
      Some (Rules.cheapest (Rules.leaf_alternatives model card i));
    incr entries
  done;
  for k = 2 to n do
    Relset.iter_of_cardinality ~n ~k (fun s ->
        if Query.connected q s then begin
          let lowest = Relset.min_elt s in
          let candidate = ref None in
          Relset.iter_strict_subsets s (fun l ->
              if Relset.mem lowest l then begin
                let r = Relset.diff s l in
                match (best.(l), best.(r)) with
                | Some pl, Some pr
                  when Query.preds_between q l r <> [] ->
                    let alt =
                      Rules.cheapest (Rules.join_alternatives model card pl pr)
                    in
                    (match !candidate with
                    | Some c when Plan.total_cost c <= Plan.total_cost alt -> ()
                    | _ -> candidate := Some alt)
                | _ -> ()
              end);
          match !candidate with
          | Some plan ->
              best.(s) <- Some plan;
              incr entries
          | None -> ()
        end)
  done;
  match best.(full) with
  | Some plan -> (Rules.finalize model card plan, !entries)
  | None -> invalid_arg "Dp.optimize: no plan (disconnected query?)"

let optimize_reference model card = fst (optimize_reference_with_stats model card)
