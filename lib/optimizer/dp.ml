let max_rels = 14

let optimize_with_stats model card =
  let q = Card.query card in
  let n = Query.n_rels q in
  if n > max_rels then
    invalid_arg
      (Printf.sprintf "Dp.optimize: %d relations exceed the DP limit of %d" n
         max_rels);
  let full = Relset.full n in
  let best : Plan.t option array = Array.make (full + 1) None in
  let entries = ref 0 in
  (* Leaves. *)
  for i = 0 to n - 1 do
    best.(Relset.singleton i) <-
      Some (Rules.cheapest (Rules.leaf_alternatives model card i));
    incr entries
  done;
  (* Subsets in increasing cardinality order; an int-ascending sweep is not
     enough (a smaller-cardinality set can have a larger encoding).
     Gosper's hack enumerates each cardinality band directly, replacing
     the old build-a-2^n-list-and-sort-it step: no allocation, no O(2^n
     log 2^n) sort, and the per-band order (numerically increasing) is
     the same order the stable sort produced, so plans and entry counts
     are unchanged. *)
  for k = 2 to n do
    Relset.iter_of_cardinality ~n ~k (fun s ->
        if Query.connected q s then begin
          let lowest = Relset.min_elt s in
          let candidate = ref None in
          Relset.iter_strict_subsets s (fun l ->
              (* Each unordered split once: the left part keeps the lowest
                 relation of [s] (join_alternatives tries both roles). *)
              if Relset.mem lowest l then begin
                let r = Relset.diff s l in
                match (best.(l), best.(r)) with
                | Some pl, Some pr
                  when Query.preds_between q l r <> [] ->
                    let alt =
                      Rules.cheapest (Rules.join_alternatives model card pl pr)
                    in
                    (match !candidate with
                    | Some c when Plan.total_cost c <= Plan.total_cost alt -> ()
                    | _ -> candidate := Some alt)
                | _ -> ()
              end);
          match !candidate with
          | Some plan ->
              best.(s) <- Some plan;
              incr entries
          | None -> ()
        end)
  done;
  match best.(full) with
  | Some plan -> (Rules.finalize model card plan, !entries)
  | None -> invalid_arg "Dp.optimize: no plan (disconnected query?)"

let optimize model card = fst (optimize_with_stats model card)
