(** Implementation rules shared by every plan-search strategy (Cascades, DP,
    greedy): the physical alternatives for a leaf access and for a join of
    two subplans, and the final aggregation placement. Keeping them in one
    place guarantees that all strategies search the same plan space, so an
    exhaustive Cascades run and the DP baseline must agree on optimal
    cost. *)

(** Access paths for relation [i]: sequential scan, plus an index scan when
    a filtered column has an index. *)
val leaf_alternatives : Cost.model -> Card.t -> int -> Plan.t list

(** Physical joins of two subplans (both hash orientations, both
    nested-loop orientations, merge join). [rows] of the output is computed
    from the union set. *)
val join_alternatives : Cost.model -> Card.t -> Plan.t -> Plan.t -> Plan.t list

(** Cheapest element of a nonempty list of alternatives. *)
val cheapest : Plan.t list -> Plan.t

(** {1 Cost-only evaluation for the flat DP}

    {!Dp}'s cost-search pass never builds [Plan.t] values; it works on
    flat arrays indexed by {!Relset.t} and identifies the winning
    physical alternative by an integer tag. The evaluators below mirror
    the [Plan] constructors' cost arithmetic bit for bit (same terms,
    same floating-point evaluation order), so reconstructing only the
    winning tree afterwards yields exactly the plan the list-based
    search would have chosen. They allocate nothing per call. *)

type tables = {
  t_rows : float array;
      (** plan output rows per subset (leaf: filtered base rows) *)
  t_io : float array;  (** cost_io of the best plan for the subset *)
  t_cpu : float array;  (** cost_cpu of the best plan for the subset *)
  t_width : int array;  (** output row width, bytes *)
}

(** [make_tables n] — all-zero tables for subset indices [0 .. n-1]
    (pass [Relset.full n_rels + 1]). *)
val make_tables : int -> tables

(** [cheapest_leaf_into model card i ~best] evaluates the access paths of
    relation [i] and writes the winner's cost_io / cost_cpu / total to
    [best.(0..2)] (a caller-provided scratch array, length >= 3).
    Returns the winning tag: 0 = seq scan, 1 = index scan. Ties go to
    the earlier alternative, exactly as {!cheapest} over
    {!leaf_alternatives}. *)
val cheapest_leaf_into :
  Cost.model -> Card.t -> int -> best:float array -> int

(** [cheapest_join_into model tb ~s ~l ~r ~best] evaluates the five join
    alternatives for subset [s] split into [l] (which must hold the
    lowest relation of [s]) and [r], reading both children's entries and
    [t_rows.(s)] from [tb]. Writes the winner's cost_io / cost_cpu /
    total to [best.(0..2)] and returns its tag: 0 = hash build-[l],
    1 = hash build-[r], 2 = NL outer-[l], 3 = NL outer-[r], 4 = merge —
    tie-breaking as {!cheapest} over {!join_alternatives}. *)
val cheapest_join_into :
  Cost.model ->
  tables ->
  s:Relset.t ->
  l:Relset.t ->
  r:Relset.t ->
  best:float array ->
  int

(** Wrap the final aggregation (cheaper of hash vs stream aggregate) if the
    query has one. *)
val finalize : Cost.model -> Card.t -> Plan.t -> Plan.t
