(** Cascades-style top-down plan search over a memo of relation-set groups.

    The search runs as an explicit task stack (optimize-group /
    expand-group / optimize-split tasks), which gives the three properties
    the paper's throttling mechanism relies on:

    - {b metered memory}: every group, logical split and physical
      alternative charges bytes through {!Env.t}, so compile memory grows
      with the number of alternatives considered and is freed only when
      compilation ends;
    - {b interruptibility}: the environment's [alloc] may block the calling
      simulation process at a gateway for arbitrarily long, or abort the
      compilation by raising {!Env.Aborted};
    - {b best-plan-so-far}: the memo is seeded with a greedy left-deep plan
      before search starts, so at any moment a complete (if suboptimal)
      plan exists; when the broker predicts memory exhaustion
      ([should_stop]) the search returns it instead of failing.

    Search effort follows the paper's "dynamic optimization": the task
    budget scales with the estimated cost of the seed plan, so expensive
    queries get (and allocate) more. A completed search explores every
    connected split of every connected subset — the same space as {!Dp} —
    hence equal optimal cost. *)

type params = {
  group_bytes : int;  (** metered bytes per memo group *)
  lexpr_bytes : int;  (** per logical split recorded *)
  phys_bytes : int;  (** per physical alternative costed *)
  task_cpu : float;  (** simulated CPU seconds per task *)
  cpu_batch : int;  (** report CPU to the env every N tasks *)
  max_tasks : int;  (** hard ceiling on search effort *)
  min_tasks : int;  (** floor, so trivial queries still finish *)
  tasks_per_cost : float;
      (** dynamic optimization: budget = seed plan cost * this *)
  expand_chunk : int;  (** splits examined per expand task *)
  honor_stop_early : bool;
      (** obey [should_stop] (the paper's best-plan extension); when
          [false] the search ignores pressure and risks hard OOM *)
}

val default_params : params

type outcome =
  | Complete  (** full plan space explored: plan is optimal *)
  | Budget_exhausted  (** dynamic-optimization budget hit: best so far *)
  | Stopped_early  (** broker predicted OOM: best so far (paper §4.1) *)

type stats = {
  tasks : int;
  groups : int;
  lexprs : int;
  phys : int;
  allocated_bytes : int;  (** total compile memory metered *)
  budget : int;  (** task budget chosen by dynamic optimization *)
}

type result = { plan : Plan.t; cost : float; outcome : outcome; stats : stats }

(** {1 Memo arena}

    Reusable structural storage for the memo: the group hashtable and a
    pool of recyclable group records. Passing the same arena to
    successive {!optimize} calls keeps both at high-water capacity
    instead of re-growing them per query — steady-state compiles of a
    stable template population stop churning the allocator. Reuse is
    observationally transparent: results, stats and environment
    interactions are identical to a fresh memo.

    An arena serves one compilation at a time. Searches can suspend
    inside [env.alloc] (gateway waits), so concurrent compiles need
    distinct arenas — {!Dbms} keeps a free pool sized by compile
    concurrency. *)

type arena

val create_arena : unit -> arena

(** Clear logical state, keep capacity. {!optimize} resets its arena on
    entry, so calling this is only needed to drop the references a
    parked arena still holds into the last query's plans. *)
val reset_arena : arena -> unit

(** [optimize ?params ?arena ~env model catalog query]. Errors are the
    governor's abort reasons surfaced by [env.alloc]/[env.cpu]. Without
    [?arena] a fresh single-use memo is built, as before. *)
val optimize :
  ?params:params ->
  ?arena:arena ->
  env:Env.t ->
  Cost.model ->
  Catalog.t ->
  Query.t ->
  (result, Env.abort_reason) Stdlib.result
