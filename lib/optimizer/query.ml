type filter_op = Le | Ge | Eq

type filter = {
  frel : int;
  fcol : string;
  fop : filter_op;
  fvalue : int;
  fsel : float;
}

type join_pred = {
  jleft : int;
  jlcol : string;
  jright : int;
  jrcol : string;
  jsel : float;
}

type rel = { ridx : int; rtable : string; ralias : string }

type aggregate = { group_by : (int * string) list; sum_cols : (int * string) list }

type t = {
  qid : string;
  rels : rel array;
  preds : join_pred list;
  filters : filter list;
  agg : aggregate option;
}

let n_rels t = Array.length t.rels
let joins t = List.length t.preds

let agg_count t =
  match t.agg with None -> 0 | Some a -> 1 + List.length a.sum_cols

let filters_of t i = List.filter (fun f -> f.frel = i) t.filters

let filter_sel t i =
  List.fold_left (fun acc f -> acc *. f.fsel) 1.0 (filters_of t i)

let preds_between t a b =
  List.filter
    (fun p ->
      (Relset.mem p.jleft a && Relset.mem p.jright b)
      || (Relset.mem p.jleft b && Relset.mem p.jright a))
    t.preds

(* Allocation-free [preds_between t a b <> []], for the DP hot loop. A
   top-level recursive loop rather than [List.exists]: the predicate
   closure would otherwise be allocated once per call, and this runs once
   per candidate split of every connected subset. *)
let rec pred_between_loop preds a b =
  match preds with
  | [] -> false
  | p :: rest ->
      (Relset.mem p.jleft a && Relset.mem p.jright b)
      || (Relset.mem p.jleft b && Relset.mem p.jright a)
      || pred_between_loop rest a b

let has_pred_between t a b = pred_between_loop t.preds a b

let connected t s =
  if Relset.is_empty s then false
  else begin
    let seed = Relset.singleton (Relset.min_elt s) in
    let rec grow reached =
      let next =
        List.fold_left
          (fun acc p ->
            if Relset.mem p.jleft s && Relset.mem p.jright s then
              if Relset.mem p.jleft acc then Relset.add p.jright acc
              else if Relset.mem p.jright acc then Relset.add p.jleft acc
              else acc
            else acc)
          reached t.preds
      in
      if Relset.equal next reached then reached else grow next
    in
    Relset.equal (grow seed) s
  end

let neighborhood t s ~within =
  List.fold_left
    (fun acc p ->
      let acc =
        if Relset.mem p.jleft s && Relset.mem p.jright within then
          Relset.add p.jright acc
        else acc
      in
      if Relset.mem p.jright s && Relset.mem p.jleft within then
        Relset.add p.jleft acc
      else acc)
    Relset.empty t.preds
  |> fun n -> Relset.diff n s

(* EnumerateCsg: emit every connected subset of the subgraph induced by
   [s], each exactly once. Subsets are seeded at each node v and grown
   only through neighbours, never into nodes smaller than v or already
   prohibited, which is what guarantees uniqueness. *)
let connected_subsets t s =
  let result = ref [] in
  let rec grow c prohibited =
    result := c :: !result;
    let frontier = Relset.diff (neighborhood t c ~within:s) prohibited in
    if not (Relset.is_empty frontier) then begin
      let prohibited' = Relset.union prohibited frontier in
      (* Every nonempty subset of the frontier, including the full one. *)
      let rec each = function
        | None -> ()
        | Some sub ->
            grow (Relset.union c sub) prohibited';
            each (Relset.next_subset frontier sub)
      in
      grow (Relset.union c frontier) prohibited';
      each (Relset.first_subset frontier)
    end
  in
  Relset.iter
    (fun v ->
      let smaller =
        Relset.fold
          (fun u acc -> if u < v then Relset.add u acc else acc)
          s Relset.empty
      in
      grow (Relset.singleton v) (Relset.add v smaller))
    s;
  !result

let make ~id ~rels ~preds ~filters ~agg =
  let rels =
    Array.of_list
      (List.mapi (fun ridx (rtable, ralias) -> { ridx; rtable; ralias }) rels)
  in
  let n = Array.length rels in
  if n = 0 then invalid_arg "Query.make: no relations";
  if n > 62 then invalid_arg "Query.make: too many relations";
  let aliases = Array.to_list (Array.map (fun r -> r.ralias) rels) in
  if List.length (List.sort_uniq String.compare aliases) <> n then
    invalid_arg "Query.make: duplicate aliases";
  let check_idx what i =
    if i < 0 || i >= n then
      invalid_arg (Printf.sprintf "Query.make: %s index %d out of range" what i)
  in
  List.iter
    (fun p ->
      check_idx "join" p.jleft;
      check_idx "join" p.jright;
      if p.jleft = p.jright then invalid_arg "Query.make: self-join predicate";
      if not (p.jsel > 0. && p.jsel <= 1.) then
        invalid_arg "Query.make: join selectivity out of (0,1]")
    preds;
  List.iter
    (fun f ->
      check_idx "filter" f.frel;
      if not (f.fsel > 0. && f.fsel <= 1.) then
        invalid_arg "Query.make: filter selectivity out of (0,1]")
    filters;
  (match agg with
  | None -> ()
  | Some a ->
      List.iter (fun (i, _) -> check_idx "group-by" i) a.group_by;
      List.iter (fun (i, _) -> check_idx "sum" i) a.sum_cols);
  let q = { qid = id; rels; preds; filters; agg } in
  if n > 1 && not (connected q (Relset.full n)) then
    invalid_arg "Query.make: join graph is not connected";
  q

let filter_selectivity op value (col : Catalog.column) =
  let clamp s = Float.min 1.0 (Float.max 1e-6 s) in
  match col.Catalog.histogram with
  | Some h ->
      clamp
        (match op with
        | Eq -> Histogram.selectivity_eq h value
        | Le -> Histogram.selectivity_le h value
        | Ge -> Histogram.selectivity_ge h value)
  | None -> (
      (* Uniform-distribution fallback. *)
      let range =
        float_of_int (col.Catalog.max_value - col.Catalog.min_value + 1)
      in
      match op with
      | Eq -> clamp (1.0 /. Float.max 1.0 col.Catalog.distinct)
      | Le ->
          clamp
            (float_of_int (value - col.Catalog.min_value + 1) /. Float.max 1.0 range)
      | Ge ->
          clamp
            (float_of_int (col.Catalog.max_value - value + 1) /. Float.max 1.0 range))

let join_selectivity (a : Catalog.column) (b : Catalog.column) =
  1.0 /. Float.max 1.0 (Float.max a.Catalog.distinct b.Catalog.distinct)

let pp ppf t =
  Format.fprintf ppf "@[<v>query %s: %d rels, %d joins, %d filters%s@,"
    t.qid (n_rels t) (joins t) (List.length t.filters)
    (match t.agg with
    | Some a ->
        Printf.sprintf ", group-by %d aggs %d" (List.length a.group_by)
          (1 + List.length a.sum_cols)
    | None -> "");
  Array.iter
    (fun r -> Format.fprintf ppf "  %s AS %s@," r.rtable r.ralias)
    t.rels;
  List.iter
    (fun p ->
      Format.fprintf ppf "  %d.%s = %d.%s (sel %.2e)@," p.jleft p.jlcol
        p.jright p.jrcol p.jsel)
    t.preds;
  Format.fprintf ppf "@]"

let to_sql t =
  let buf = Buffer.create 512 in
  let alias i = t.rels.(i).ralias in
  Buffer.add_string buf "SELECT ";
  (match t.agg with
  | None ->
      Buffer.add_string buf
        (String.concat ", "
           (Array.to_list (Array.map (fun r -> r.ralias ^ ".*") t.rels)))
  | Some a ->
      let groups =
        List.map (fun (i, c) -> Printf.sprintf "%s.%s" (alias i) c) a.group_by
      in
      let sums =
        List.map (fun (i, c) -> Printf.sprintf "SUM(%s.%s)" (alias i) c) a.sum_cols
      in
      Buffer.add_string buf
        (String.concat ", " (groups @ ("COUNT(*)" :: sums))));
  Buffer.add_string buf "\nFROM ";
  Buffer.add_string buf
    (String.concat ", "
       (Array.to_list
          (Array.map (fun r -> Printf.sprintf "%s AS %s" r.rtable r.ralias) t.rels)));
  let join_conds =
    List.map
      (fun p ->
        Printf.sprintf "%s.%s = %s.%s" (alias p.jleft) p.jlcol (alias p.jright)
          p.jrcol)
      t.preds
  in
  let filter_conds =
    List.map
      (fun f ->
        let op = match f.fop with Le -> "<=" | Ge -> ">=" | Eq -> "=" in
        Printf.sprintf "%s.%s %s %d" (alias f.frel) f.fcol op f.fvalue)
      t.filters
  in
  (match join_conds @ filter_conds with
  | [] -> ()
  | conds ->
      Buffer.add_string buf "\nWHERE ";
      Buffer.add_string buf (String.concat "\n  AND " conds));
  (match t.agg with
  | Some a when a.group_by <> [] ->
      Buffer.add_string buf "\nGROUP BY ";
      Buffer.add_string buf
        (String.concat ", "
           (List.map (fun (i, c) -> Printf.sprintf "%s.%s" (alias i) c) a.group_by))
  | _ -> ());
  Buffer.add_string buf (Printf.sprintf "\n-- fingerprint %s" t.qid);
  Buffer.contents buf
