let leaf_alternatives model card i =
  let seq = Plan.seq_scan model card i in
  match Plan.index_scan model card i with
  | Some idx -> [ seq; idx ]
  | None -> [ seq ]

let join_alternatives model card a b =
  let rows = Card.card card (Relset.union a.Plan.rset b.Plan.rset) in
  [
    Plan.hash_join model ~rows ~build:a ~probe:b;
    Plan.hash_join model ~rows ~build:b ~probe:a;
    Plan.nl_join model ~rows ~outer:a ~inner:b;
    Plan.nl_join model ~rows ~outer:b ~inner:a;
    Plan.merge_join model ~rows ~left:a ~right:b;
  ]

(* ------------------------------------------------------------------- *)
(* Cost-only alternative evaluation for the flat DP ({!Dp}).

   The functions below mirror the cost formulas of the [Plan] constructors
   term for term, in the same floating-point evaluation order, so the
   costs they produce are bit-identical to [Plan.total_cost] of the plan
   the constructor would have built. They read and write flat arrays
   indexed by [Relset.t] and allocate nothing: no [Plan.t] records, no
   lists, no closures, no boxed floats (all intermediates are local
   unboxed floats; [Cost.spill_factor] and [Float.max] are inlined by
   hand because a non-inlined call would box its float argument).

   Anything changed in a [Plan] constructor's cost arithmetic must be
   changed here identically — the QCheck identity property in
   [test_optimizer.ml] (flat DP == reference DP) is the guard. *)

type tables = {
  t_rows : float array;  (* plan output rows (leaf: filtered base rows) *)
  t_io : float array;  (* cost_io of the best plan for the subset *)
  t_cpu : float array;  (* cost_cpu of the best plan for the subset *)
  t_width : int array;  (* output row width, bytes *)
}

let make_tables n =
  {
    t_rows = Array.make n 0.0;
    t_io = Array.make n 0.0;
    t_cpu = Array.make n 0.0;
    t_width = Array.make n 0;
  }

(* Winning-alternative tags, the flat pass's stand-in for a [Plan.node].
   Leaves: 0 = seq scan, 1 = index scan. Joins (l holds the lowest
   relation of the subset, r the rest): 0 = hash build-l, 1 = hash
   build-r, 2 = NL outer-l, 3 = NL outer-r, 4 = merge. The numeric order
   matches the list order of [leaf_alternatives] / [join_alternatives],
   and selection below uses strict [<] in that order, so ties resolve to
   the same alternative as [cheapest]. *)

let cheapest_leaf_into model card i ~best =
  let tbl = Card.table_of card i in
  let pages = Catalog.pages tbl ~page_size:model.Cost.page_size in
  let out_rows = Card.base_rows card i in
  let seq_io = pages *. model.Cost.seq_page_cost in
  let seq_cpu = tbl.Catalog.rows *. model.Cost.cpu_tuple_cost in
  best.(0) <- seq_io;
  best.(1) <- seq_cpu;
  best.(2) <- seq_io +. seq_cpu;
  let q = Card.query card in
  let indexed =
    List.exists
      (fun f -> Catalog.has_index_on tbl f.Query.fcol)
      (Query.filters_of q i)
  in
  if not indexed then 0
  else begin
    let sel = out_rows /. Float.max 1.0 tbl.Catalog.rows in
    let ipages = Float.max 1.0 ((pages *. sel) +. 3.) in
    let idx_io = ipages *. model.Cost.rand_page_cost in
    let idx_cpu = out_rows *. model.Cost.cpu_tuple_cost in
    if idx_io +. idx_cpu < best.(2) then begin
      best.(0) <- idx_io;
      best.(1) <- idx_cpu;
      best.(2) <- idx_io +. idx_cpu;
      1
    end
    else 0
  end

let cheapest_join_into model tb ~s ~l ~r ~best =
  let rows = tb.t_rows.(s) in
  let rows_l = tb.t_rows.(l) and rows_r = tb.t_rows.(r) in
  let io_l = tb.t_io.(l) and cpu_l = tb.t_cpu.(l) in
  let io_r = tb.t_io.(r) and cpu_r = tb.t_cpu.(r) in
  let width_l = tb.t_width.(l) and width_r = tb.t_width.(r) in
  let page = float_of_int model.Cost.page_size in
  (* [Cost.spill_factor] is expanded by hand below (likewise [Float.max]
     further down): even a local helper closure would allocate once per
     call on this path. *)
  let wm = float_of_int model.Cost.work_mem in
  let out_cpu = rows *. model.Cost.cpu_tuple_cost in
  (* 0: hash join, build = l. *)
  let mem0 =
    rows_l
    *. (float_of_int (min width_l Plan.hash_build_width)
       +. model.Cost.hash_mem_overhead)
  in
  let sp0 =
    if mem0 <= wm then 1.0 else 1.0 +. log (mem0 /. wm) /. log 2.0
  in
  let cpu0 =
    cpu_l +. cpu_r
    +. (rows_l *. model.Cost.hash_build_cost)
    +. (rows_r *. model.Cost.hash_probe_cost)
    +. out_cpu
  in
  let io0 = ((io_l +. io_r) *. 1.0) +. ((sp0 -. 1.0) *. mem0 /. page) in
  best.(0) <- io0;
  best.(1) <- cpu0;
  best.(2) <- io0 +. cpu0;
  let tag = 0 in
  (* 1: hash join, build = r. *)
  let mem1 =
    rows_r
    *. (float_of_int (min width_r Plan.hash_build_width)
       +. model.Cost.hash_mem_overhead)
  in
  let sp1 =
    if mem1 <= wm then 1.0 else 1.0 +. log (mem1 /. wm) /. log 2.0
  in
  let cpu1 =
    cpu_r +. cpu_l
    +. (rows_r *. model.Cost.hash_build_cost)
    +. (rows_l *. model.Cost.hash_probe_cost)
    +. out_cpu
  in
  let io1 = ((io_r +. io_l) *. 1.0) +. ((sp1 -. 1.0) *. mem1 /. page) in
  let tag =
    if io1 +. cpu1 < best.(2) then begin
      best.(0) <- io1;
      best.(1) <- cpu1;
      best.(2) <- io1 +. cpu1;
      1
    end
    else tag
  in
  (* 2: nested loop, outer = l (Float.max 0., inlined). *)
  let rsc2 = if rows_l -. 1.0 > 0.0 then rows_l -. 1.0 else 0.0 in
  let cpu2 =
    cpu_l +. cpu_r
    +. (rsc2 *. cpu_r *. 0.1)
    +. (rows_l *. rows_r *. model.Cost.cpu_tuple_cost *. 0.25)
    +. out_cpu
  in
  let io2 = io_l +. io_r in
  let tag =
    if io2 +. cpu2 < best.(2) then begin
      best.(0) <- io2;
      best.(1) <- cpu2;
      best.(2) <- io2 +. cpu2;
      2
    end
    else tag
  in
  (* 3: nested loop, outer = r. *)
  let rsc3 = if rows_r -. 1.0 > 0.0 then rows_r -. 1.0 else 0.0 in
  let cpu3 =
    cpu_r +. cpu_l
    +. (rsc3 *. cpu_l *. 0.1)
    +. (rows_r *. rows_l *. model.Cost.cpu_tuple_cost *. 0.25)
    +. out_cpu
  in
  let io3 = io_r +. io_l in
  let tag =
    if io3 +. cpu3 < best.(2) then begin
      best.(0) <- io3;
      best.(1) <- cpu3;
      best.(2) <- io3 +. cpu3;
      3
    end
    else tag
  in
  (* 4: merge join — each side behind an implicit Sort (Plan.sort,
     inlined; Float.max 2. likewise). *)
  let n_l = if rows_l > 2.0 then rows_l else 2.0 in
  let smem_l = rows_l *. float_of_int (min width_l Plan.sort_width_cap) in
  let ssp_l =
    if smem_l <= wm then 1.0 else 1.0 +. log (smem_l /. wm) /. log 2.0
  in
  let sio_l = io_l +. ((ssp_l -. 1.0) *. smem_l /. page) in
  let scpu_l = cpu_l +. (model.Cost.sort_cost *. n_l *. (log n_l /. log 2.)) in
  let n_r = if rows_r > 2.0 then rows_r else 2.0 in
  let smem_r = rows_r *. float_of_int (min width_r Plan.sort_width_cap) in
  let ssp_r =
    if smem_r <= wm then 1.0 else 1.0 +. log (smem_r /. wm) /. log 2.0
  in
  let sio_r = io_r +. ((ssp_r -. 1.0) *. smem_r /. page) in
  let scpu_r = cpu_r +. (model.Cost.sort_cost *. n_r *. (log n_r /. log 2.)) in
  let cpu4 =
    scpu_l +. scpu_r
    +. ((rows_l +. rows_r) *. model.Cost.cpu_tuple_cost)
    +. out_cpu
  in
  let io4 = sio_l +. sio_r in
  let tag =
    if io4 +. cpu4 < best.(2) then begin
      best.(0) <- io4;
      best.(1) <- cpu4;
      best.(2) <- io4 +. cpu4;
      4
    end
    else tag
  in
  tag

let cheapest = function
  | [] -> invalid_arg "Rules.cheapest: no alternatives"
  | first :: rest ->
      List.fold_left
        (fun best p ->
          if Plan.total_cost p < Plan.total_cost best then p else best)
        first rest

let finalize model card plan =
  let q = Card.query card in
  match q.Query.agg with
  | None -> plan
  | Some a ->
      let groups = List.length a.Query.group_by in
      let aggs = 1 + List.length a.Query.sum_cols in
      let rows = Card.group_card card a.Query.group_by ~input:plan.Plan.rows in
      cheapest
        [
          Plan.hash_agg model ~rows ~groups ~aggs plan;
          Plan.stream_agg model ~rows ~groups ~aggs plan;
        ]
