type t = int

let empty = 0
let is_empty t = t = 0

let singleton i =
  if i < 0 || i > 61 then invalid_arg "Relset: index out of range";
  1 lsl i

let mem i t = t land (1 lsl i) <> 0
let add i t = t lor singleton i
let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let subset a b = a land b = a
let equal = Int.equal

let cardinal t =
  let rec loop t acc = if t = 0 then acc else loop (t land (t - 1)) (acc + 1) in
  loop t 0

let full n =
  if n < 0 || n > 62 then invalid_arg "Relset.full";
  if n = 0 then 0 else (1 lsl n) - 1

(* Count trailing zeros of a nonzero int in constant time: isolate the
   lowest set bit, then locate it with six mask-and-shift steps (a
   branch-free-depth binary search — the de Bruijn multiply trick needs a
   full 64-bit multiply, which OCaml's 63-bit native ints don't give).
   Replaces the old shift-while loop, which was O(bit index) and made
   [fold]/[min_elt] quadratic-ish on sets with high members. *)
let ctz t =
  let x = ref (t land -t) and n = ref 0 in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let fold f t init =
  let rec loop t acc =
    if t = 0 then acc
    else begin
      let low = t land -t in
      loop (t lxor low) (f (ctz low) acc)
    end
  in
  loop t init

let members t = List.rev (fold (fun i acc -> i :: acc) t [])
let iter f t = fold (fun i () -> f i) t ()

let min_elt t =
  if t = 0 then invalid_arg "Relset.min_elt: empty";
  ctz t

(* Standard descending submask enumeration: sub' = (sub - 1) land t. *)
let first_subset t =
  if t = 0 then None
  else begin
    let s = (t - 1) land t in
    if s = 0 then None else Some s
  end

let next_subset t sub =
  if sub land t <> sub then invalid_arg "Relset.next_subset: not a subset";
  let s = (sub - 1) land t in
  if s = 0 then None else Some s

(* Same enumeration as [first_subset]/[next_subset] but driven by a raw
   int loop: no option box per submask. This runs in the innermost loop
   of the DP cost search (3^n submask visits over all subsets), where the
   two words of a [Some] per step used to dominate the allocation
   profile. *)
let iter_strict_subsets t f =
  let s = ref ((t - 1) land t) in
  while !s <> 0 do
    f !s;
    s := (!s - 1) land t
  done

(* Gosper's hack: the next larger int with the same population count.
   Together with the smallest k-bit mask this enumerates all subsets of
   {0..n-1} of cardinality k in increasing numeric order, with O(1) work
   and zero allocation per subset. *)
let iter_of_cardinality ~n ~k f =
  if n < 0 || n > 62 then invalid_arg "Relset.iter_of_cardinality";
  if k >= 1 && k <= n then begin
    let limit = full n in
    let s = ref ((1 lsl k) - 1) in
    while !s <= limit do
      let m = !s in
      f m;
      let c = m land -m in
      let r = m + c in
      s := ((m lxor r) lsr 2) / c lor r
    done
  end

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (members t)))
