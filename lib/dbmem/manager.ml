type clerk = {
  cname : string;
  mutable used : int;
  mutable peak : int;
  owner : t;
}

and donor = { dclerk : clerk; priority : int; shrink : int -> int }

and t = {
  mutable total : int;
  mutable used_total : int;
  mutable clerks_rev : clerk list;
  mutable donors : donor list; (* kept sorted by priority *)
  mutable oom_count : int;
  mutable alloc_count : int;
  mutable alloc_fault : (string -> int -> bool) option;
  mutable faulted_allocs : int;
  (* Tracing: dbmem knows no clock, so the trace comes with a [now]
     callback supplied by whoever owns the simulation engine. *)
  mutable trace : Obs.Trace.t;
  mutable trace_now : unit -> float;
}

exception Out_of_memory of { clerk : string; requested : int; free : int }

let create ~total () =
  if total <= 0 then invalid_arg "Manager.create: total must be > 0";
  {
    total;
    used_total = 0;
    clerks_rev = [];
    donors = [];
    oom_count = 0;
    alloc_count = 0;
    alloc_fault = None;
    faulted_allocs = 0;
    trace = Obs.Trace.null;
    trace_now = (fun () -> 0.);
  }

let set_trace t ~now trace =
  t.trace <- trace;
  t.trace_now <- now

let emit t event =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(t.trace_now ()) ~qid:"" event

let total t = t.total
let used t = t.used_total
let available t = t.total - t.used_total

(* Budget resize (the tenant arbiter's lever). Lowering the budget below
   current usage leaves the manager over-committed — [available] goes
   negative and further allocations fail — until components free memory
   or a [demand] pass reclaims the overage through the donors. *)
let set_total t n =
  if n <= 0 then invalid_arg "Manager.set_total: total must be > 0";
  t.total <- n

let create_clerk t name =
  let c = { cname = name; used = 0; peak = 0; owner = t } in
  t.clerks_rev <- c :: t.clerks_rev;
  c

let clerk_name c = c.cname
let clerk_used c = c.used
let clerk_peak c = c.peak
let reset_peak c = c.peak <- c.used

let free_bytes c n =
  if n < 0 then invalid_arg "Manager.free: negative";
  if n > c.used then invalid_arg ("Manager.free: clerk " ^ c.cname ^ " underflow");
  c.used <- c.used - n;
  c.owner.used_total <- c.owner.used_total - n

(* Ask donors, cheapest-to-shrink first, until the manager has [target_free]
   bytes free. Donors shrink through [free_bytes] on their own clerk.
   [except] omits one clerk's donor from the walk: an allocation must not
   be satisfied by shrinking the requester itself (a cache evicting its
   own entries to admit a new one gains nothing). *)
let reclaim ?except t ~target_free =
  let rec ask donors freed =
    if available t >= target_free then freed
    else
      match donors with
      | [] -> freed
      | d :: rest ->
          let skip = match except with Some c -> c == d.dclerk | None -> false in
          let want = target_free - available t in
          let got =
            if skip || d.dclerk.used = 0 then 0 else d.shrink want
          in
          ask rest (freed + got)
  in
  let wanted = target_free - available t in
  let freed = ask t.donors 0 in
  if freed > 0 then emit t (Obs.Event.Reclaim { wanted; freed });
  freed

let demand t n = reclaim t ~target_free:n

let alloc c n =
  if n < 0 then invalid_arg "Manager.alloc: negative";
  let t = c.owner in
  t.alloc_count <- t.alloc_count + 1;
  (* Injected transient failure: the commit path refuses spuriously, before
     any donor shrink or accounting change (the allocation simply never
     happened, as with a flaky mmap/commit). *)
  match t.alloc_fault with
  | Some f when f c.cname n ->
      t.faulted_allocs <- t.faulted_allocs + 1;
      Error `Out_of_memory
  | _ ->
  (* Two-pass reclaim: first spare the requester's own donor (so a cache
     insert draws from the other donors, typically the buffer pool), then
     fall back to the full walk — a donor growing at a full machine still
     recycles its own memory exactly as before. *)
  if available t < n then ignore (reclaim ~except:c t ~target_free:n);
  if available t < n then ignore (reclaim t ~target_free:n);
  if available t < n then begin
    t.oom_count <- t.oom_count + 1;
    emit t
      (Obs.Event.Oom { clerk = c.cname; requested = n; free = available t });
    Error `Out_of_memory
  end
  else begin
    c.used <- c.used + n;
    if c.used > c.peak then c.peak <- c.used;
    t.used_total <- t.used_total + n;
    Ok ()
  end

let alloc_exn c n =
  match alloc c n with
  | Ok () -> ()
  | Error `Out_of_memory ->
      raise (Out_of_memory { clerk = c.cname; requested = n; free = available c.owner })

let free = free_bytes
let free_all c = free_bytes c c.used

let register_donor t ~clerk ~priority ~shrink =
  let d = { dclerk = clerk; priority; shrink } in
  t.donors <-
    List.sort (fun a b -> compare a.priority b.priority) (d :: t.donors)

let clerks t = List.rev t.clerks_rev
let find_clerk t name = List.find_opt (fun c -> c.cname = name) (clerks t)
let snapshot t = List.map (fun c -> (c.cname, c.used)) (clerks t)
let oom_count t = t.oom_count
let alloc_count t = t.alloc_count
let set_alloc_fault t f = t.alloc_fault <- f
let faulted_allocs t = t.faulted_allocs

let pp ppf t =
  Format.fprintf ppf "@[<v>memory %a/%a free %a@," Units.pp_bytes t.used_total
    Units.pp_bytes t.total Units.pp_bytes (available t);
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-16s %a (peak %a)@," c.cname Units.pp_bytes c.used
        Units.pp_bytes c.peak)
    (clerks t);
  Format.fprintf ppf "@]"
