(** Physical memory manager with per-subcomponent accounting.

    Every DBMS subcomponent allocates through a {e clerk} (the SQL Server
    term): the manager tracks per-clerk usage and enforces the global
    physical budget. Caches (buffer pool, plan cache) additionally register
    as {e donors}: when a non-cache allocation does not fit, the manager
    synchronously asks donors — in priority order — to shrink, modelling how
    a DBMS steals cache pages to satisfy demand. If donors cannot free
    enough, the allocation fails with out-of-memory, exactly the failure
    mode the paper's throttling is designed to avoid. *)

type t
type clerk

exception Out_of_memory of { clerk : string; requested : int; free : int }

(** [create ~total ()] manages a budget of [total] bytes. *)
val create : total:int -> unit -> t

val total : t -> int
val used : t -> int

(** Unreserved bytes remaining in the budget. Negative while the manager
    is over-committed after a {!set_total} shrink. *)
val available : t -> int

(** [set_total t n] resizes the physical budget (the tenant arbiter's
    lever). Growing takes effect immediately; shrinking below current
    usage leaves the manager over-committed — allocations fail — until
    components free memory or {!demand}[ t 0] reclaims the overage
    through the registered donors. *)
val set_total : t -> int -> unit

(** {1 Clerks} *)

(** [create_clerk t name] registers a new accounting clerk. Names need not
    be unique but should be, for readable snapshots. *)
val create_clerk : t -> string -> clerk

val clerk_name : clerk -> string
val clerk_used : clerk -> int

(** High-water mark since creation or the last {!reset_peak}. *)
val clerk_peak : clerk -> int

val reset_peak : clerk -> unit

(** [alloc clerk n] reserves [n] bytes, shrinking donors if needed.
    [Error `Out_of_memory] leaves all accounting unchanged (donor shrinkage
    excepted — pages already evicted stay evicted, as in a real engine). *)
val alloc : clerk -> int -> (unit, [ `Out_of_memory ]) result

(** Like {!alloc} but raises {!Out_of_memory}. *)
val alloc_exn : clerk -> int -> unit

(** [free clerk n] releases [n] bytes ([n] may not exceed the clerk's
    usage). *)
val free : clerk -> int -> unit

(** Release everything the clerk holds. *)
val free_all : clerk -> unit

(** {1 Donors} *)

(** [register_donor t ~clerk ~priority ~shrink] marks [clerk]'s component as
    shrinkable. [shrink n] must make a best effort to release [n] bytes
    (through {!free}) and return the number actually released. Donors with
    smaller [priority] are asked first. *)
val register_donor :
  t -> clerk:clerk -> priority:int -> shrink:(int -> int) -> unit

(** [demand t n] asks donors to free until [free t >= n]; returns the bytes
    actually reclaimed. Used by components that want room without
    allocating yet. *)
val demand : t -> int -> int

(** {1 Tracing} *)

(** [set_trace t ~now trace] records OOM and donor-reclaim events into
    [trace], timestamped by the [now] callback ([dbmem] has no clock of
    its own — pass [fun () -> Sim.Engine.now eng]). *)
val set_trace : t -> now:(unit -> float) -> Obs.Trace.t -> unit

(** {1 Fault injection} *)

(** [set_alloc_fault t (Some f)] makes {!alloc} fail (before any donor
    shrink or accounting change) whenever [f clerk_name bytes] is [true] —
    a transient commit-path failure. [None] clears the fault. *)
val set_alloc_fault : t -> (string -> int -> bool) option -> unit

(** Allocations refused by the injected fault so far. *)
val faulted_allocs : t -> int

(** {1 Introspection} *)

(** [(clerk_name, used_bytes)] for every clerk, in creation order. *)
val snapshot : t -> (string * int) list

val clerks : t -> clerk list
val find_clerk : t -> string -> clerk option
val oom_count : t -> int
val alloc_count : t -> int
val pp : Format.formatter -> t -> unit
