(** Fixed-size domain pool with a FIFO work queue.

    The pool fans independent units of work — typically whole simulation
    cells, each with its own engine, RNG and metrics — out across CPU
    cores, and hands results back in submission order, so a caller that
    prints results as they come out observes exactly the sequential
    output. Hand-rolled on [Domain]/[Mutex]/[Condition] from the OCaml 5
    standard library; no external dependencies.

    A pool of size 1 spawns no domains at all: work runs inline on the
    calling domain, making [map] with [~jobs:1] bit-for-bit identical to
    [List.map] (the determinism baseline the tests compare against).

    Work items must be independent: they must not share mutable state
    with each other or with the caller. Read-only structures (a catalog,
    a template list) may be shared freely. *)

type t

(** [create ~jobs ()] — a pool of [jobs] worker domains ([jobs >= 1];
    [jobs = 1] spawns none and runs inline). Raises [Invalid_argument]
    on [jobs < 1]. *)
val create : jobs:int -> unit -> t

val jobs : t -> int

(** [default_jobs ()] — the [DBSIM_JOBS] environment variable when set to
    a positive integer, otherwise [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map pool f items] applies [f] to every item, fanning the calls over
    the pool's domains, and returns the results in submission order. If
    any call raises, the exception of the earliest-submitted failing item
    is re-raised in the caller after all items have settled. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** [shutdown pool] joins the worker domains. Idempotent; the pool must
    not be used afterwards. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] — create, apply [f], always shut down. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [run ~jobs f items] — one-shot [map] on a temporary pool. *)
val run : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
