type t = {
  n_jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "DBSIM_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let worker pool =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.work_ready pool.lock
    done;
    if Queue.is_empty pool.queue then begin
      (* stopping, and nothing left to drain *)
      Mutex.unlock pool.lock
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      task ();
      loop ()
    end
  in
  loop ()

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      n_jobs = jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  if jobs > 1 then
    pool.domains <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let jobs t = t.n_jobs

let shutdown t =
  if not t.stopping then begin
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let map_array t f items =
  let n = Array.length items in
  if t.n_jobs = 1 || n <= 1 then Array.map f items
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.add
        (fun () ->
          let r = try Ok (f items.(i)) with exn -> Error exn in
          Mutex.lock t.lock;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock t.lock)
        t.queue
    done;
    Condition.broadcast t.work_ready;
    while !remaining > 0 do
      Condition.wait all_done t.lock
    done;
    Mutex.unlock t.lock;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error exn) -> raise exn
        | None -> assert false)
      results
  end

let map t f items = Array.to_list (map_array t f (Array.of_list items))

let with_pool ~jobs f =
  let pool = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ~jobs f items = with_pool ~jobs (fun pool -> map pool f items)
