(** Ring-buffer trace recorder.

    A trace is either the {!null} sink — emission is a single pattern match
    and branch, so instrumented code pays nothing when tracing is off — or a
    fixed-capacity ring that keeps the most recent records and counts what
    it had to drop. The ring stores mutable slots, materialised on the
    first lap: once a position has been written, re-emission into it
    rewrites fields in place, so steady-state recording allocates nothing
    per event beyond the boxed timestamp. Recording never consumes
    randomness and never touches the simulation clock, so enabling a
    trace cannot perturb a deterministic run.

    Records carry the simulation time as a plain [float]: [obs] sits below
    every other library and must not depend on [sim]. *)

type record = { time : float; qid : string; event : Event.t }

type t

(** The disabled sink: {!enabled} is [false], {!emit} is a no-op. *)
val null : t

(** [create ?capacity ()] makes an enabled ring holding the most recent
    [capacity] records (default [262144]). *)
val create : ?capacity:int -> unit -> t

(** Emission sites guard with [if Trace.enabled t then Trace.emit t ...] so
    that argument construction is skipped entirely when tracing is off. *)
val enabled : t -> bool

val emit : t -> time:float -> qid:string -> Event.t -> unit

(** Number of records currently held (≤ capacity). *)
val length : t -> int

(** Number of records evicted because the ring was full. *)
val dropped : t -> int

(** Records oldest-first. Allocates a fresh array. *)
val records : t -> record array

val clear : t -> unit
