type wait = {
  qid : string;
  gate : string;
  start : float;
  finish : float;
  outcome : [ `Acquired | `Timeout | `Open ];
}

let last_time records =
  let n = Array.length records in
  if n = 0 then 0. else (records.(n - 1) : Trace.record).time

let gateway_waits records =
  (* (gate, qid) → start time of the pending wait. A qid waits on at most
     one gate at a time (the ladder is acquired in order), so the pair is
     a unique key. *)
  let pending : (string * string, float) Hashtbl.t = Hashtbl.create 64 in
  let out = Vec.create ~capacity:256 () in
  Array.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Event.Gateway { gate; phase; _ } -> (
          let key = (gate, r.qid) in
          match phase with
          | Event.Wait -> Hashtbl.replace pending key r.time
          | Event.Acquired | Event.Timeout -> (
              match Hashtbl.find_opt pending key with
              | None -> () (* Wait record lost to ring eviction *)
              | Some start ->
                  Hashtbl.remove pending key;
                  let outcome =
                    if phase = Event.Acquired then `Acquired else `Timeout
                  in
                  Vec.push out
                    { qid = r.qid; gate; start; finish = r.time; outcome })
          | Event.Release -> ())
      | _ -> ())
    records;
  let fin = last_time records in
  Hashtbl.iter
    (fun (gate, qid) start ->
      Vec.push out { qid; gate; start; finish = fin; outcome = `Open })
    pending;
  List.sort (fun a b -> compare (a.start, a.gate, a.qid) (b.start, b.gate, b.qid))
    (Vec.to_list out)

let fold_holders records f =
  let holders : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Event.Gateway { gate; phase; _ } -> (
          let cur = Option.value ~default:0 (Hashtbl.find_opt holders gate) in
          match phase with
          | Event.Acquired ->
              let cur = cur + 1 in
              Hashtbl.replace holders gate cur;
              f gate r.time cur
          | Event.Release ->
              (* Clamp at zero: a Release whose Acquired was evicted from
                 the ring must not mask a later over-admission. *)
              Hashtbl.replace holders gate (Stdlib.max 0 (cur - 1))
          | Event.Wait | Event.Timeout -> ())
      | _ -> ())
    records

let max_holders records =
  let peaks : (string, int) Hashtbl.t = Hashtbl.create 8 in
  fold_holders records (fun gate _time cur ->
      let best = Option.value ~default:0 (Hashtbl.find_opt peaks gate) in
      if cur > best then Hashtbl.replace peaks gate cur);
  Hashtbl.fold (fun g n acc -> (g, n) :: acc) peaks []
  |> List.sort compare

let holder_violations records ~slots =
  let out = Vec.create () in
  fold_holders records (fun gate time cur ->
      if cur > slots gate then Vec.push out (gate, time, cur));
  Vec.to_list out

let admission_violations records =
  (* Per gate: the set of currently-waiting (qid → priority, arrival seq).
     Arrival order is the trace order of Wait records, which matches the
     semaphore's FIFO seq because emission happens in the waiter's own
     process step right before it blocks. *)
  let waiting : (string, (string, int * int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let gate_tbl gate =
    match Hashtbl.find_opt waiting gate with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 16 in
        Hashtbl.add waiting gate tbl;
        tbl
  in
  let seq = ref 0 in
  let out = Vec.create () in
  Array.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Event.Gateway { gate; phase; priority } -> (
          let tbl = gate_tbl gate in
          match phase with
          | Event.Wait ->
              incr seq;
              Hashtbl.replace tbl r.qid (priority, !seq)
          | Event.Acquired -> (
              match Hashtbl.find_opt tbl r.qid with
              | None -> () (* fast path: never queued, or Wait evicted *)
              | Some (aprio, aseq) ->
                  Hashtbl.remove tbl r.qid;
                  Hashtbl.iter
                    (fun oqid (oprio, oseq) ->
                      (* Strictly-better priority waiting, or equal
                         priority that arrived first: FIFO violated.
                         Waiters that enqueued after the admitted one
                         (oseq > aseq) are ignored — they may have raced
                         in between the grant and this record. *)
                      if
                        oseq < aseq
                        && (oprio < aprio
                           || (oprio = aprio && oseq < aseq))
                      then Vec.push out (gate, r.qid, oqid, r.time))
                    tbl)
          | Event.Timeout -> Hashtbl.remove tbl r.qid
          | Event.Release -> ())
      | _ -> ())
    records;
  Vec.to_list out

let usage_points records =
  let series : (string, (float * int) Vec.t) Hashtbl.t = Hashtbl.create 16 in
  let push qid pt =
    match Hashtbl.find_opt series qid with
    | Some v -> Vec.push v pt
    | None ->
        let v = Vec.create ~capacity:32 () in
        Vec.push v pt;
        Hashtbl.add series qid v
  in
  Array.iter
    (fun (r : Trace.record) ->
      match r.event with
      | Event.Compile_begin -> push r.qid (r.time, 0)
      | Event.Compile_alloc { usage; _ } -> push r.qid (r.time, usage)
      | Event.Compile_end _ -> push r.qid (r.time, 0)
      | _ -> ())
    records;
  Hashtbl.fold (fun qid v acc -> (qid, Vec.to_list v) :: acc) series []
  |> List.sort compare

let wait_histograms records =
  let hists : (string, Hist.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun w ->
      match w.outcome with
      | `Open -> ()
      | `Acquired | `Timeout ->
          let h =
            match Hashtbl.find_opt hists w.gate with
            | Some h -> h
            | None ->
                let h = Hist.create () in
                Hashtbl.add hists w.gate h;
                h
          in
          Hist.add h (int_of_float ((w.finish -. w.start) *. 1e6)))
    (gateway_waits records);
  Hashtbl.fold (fun g h acc -> (g, h) :: acc) hists [] |> List.sort compare
