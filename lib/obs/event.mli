(** Typed query-lifecycle trace events.

    Every decision point of the simulated DBMS that the paper's evaluation
    depends on being able to {e see} — compile start/finish, each gateway
    acquire-wait/acquired/timeout/release, broker ticks with per-component
    targets and verdicts, grant-queue entry/grant/spill, and the
    retry/shed/degrade decisions of the resilience ladder — has a typed
    event here. Events are pure data: this module depends on nothing, so
    every layer of the system (including [dbmem], which knows nothing about
    the simulation clock) can emit them. *)

(** Argument values for {!Custom} events and the exporters. *)
type value = I of int | F of float | S of string | B of bool

(** Lifecycle of a wait on an admission-controlled resource (a gateway
    monitor or the grant semaphore): a waiter appears ([Wait]), is admitted
    ([Acquired]) or gives up ([Timeout]), and eventually gives its slot back
    ([Release]). *)
type wait_phase = Wait | Acquired | Timeout | Release

val wait_phase_name : wait_phase -> string

(** The broker's per-component verdict, in trace vocabulary: [Grow] = may
    keep allocating, [Stable] = hold the current rate, [Shrink] = release
    down to the target. *)
type broker_verdict = Grow | Stable | Shrink

val verdict_name : broker_verdict -> string

type component_sample = {
  comp : string;
  used : int;
  predicted : int;
  target : int;
  verdict : broker_verdict;
}

(** One tenant pool's view in an {!Arbiter_tick}: bytes in use, the
    arbiter's demand prediction at its horizon, and the physical budget
    the pool's own manager was (re)sized to. *)
type pool_sample = {
  pool : string;
  pool_used : int;
  pool_predicted : int;
  pool_budget : int;
}

type t =
  | Compile_begin  (** a compilation session opened (span begin) *)
  | Compile_alloc of { bytes : int; usage : int }
      (** the session's demand grew by [bytes] to [usage] (post-gateway) *)
  | Compile_end of { peak : int }  (** session closed; peak bytes reached *)
  | Gateway of { gate : string; phase : wait_phase; priority : int }
      (** admission at the named monitor; [priority] is the progress-based
          queue priority (lower is served first), meaningful on [Wait] *)
  | Broker_tick of {
      pressure : bool;
      budget : int;
      components : component_sample list;
    }
  | Grant of { phase : wait_phase; bytes : int }
      (** workspace-grant queue entry/grant/timeout/release of [bytes] *)
  | Exec_begin
  | Exec_end of { granted : int; ideal : int; spilled : bool; pages : int }
  | Spill of { bytes : int }  (** workspace shortfall written to disk *)
  | Retry of { attempt : int; pause_s : float; kind : string }
      (** resilience ladder: attempt [attempt] failed with [kind], backing
          off [pause_s] seconds before the next attempt *)
  | Shed  (** admission control refused the query outright *)
  | Degrade of { rung : string }
      (** the query fell down the degradation ladder (e.g. greedy plan) *)
  | Cache_hit  (** plan served from the plan cache; no compile memory *)
  | Query_error of { kind : string }  (** final failure recorded *)
  | Mem of { clerk : string; used : int }  (** periodic memory sample *)
  | Oom of { clerk : string; requested : int; free : int }
  | Reclaim of { wanted : int; freed : int }
      (** donor shrink: the manager asked caches to give memory back *)
  | Heartbeat_stale of { age : float }
      (** watchdog: a query's last heartbeat is [age] seconds old; the
          session has been softened (best-plan-so-far forced) *)
  | Watchdog_cancel of { age : float }
      (** watchdog escalation: the query stayed silent for [age] seconds
          after softening and has been marked for cancellation *)
  | Breaker_open of { template : string }
      (** circuit breaker for a query template tripped open *)
  | Breaker_close of { template : string }
      (** circuit breaker recovered (half-open probe succeeded) *)
  | Forced_reclaim of { comp : string; wanted : int; freed : int }
      (** the broker insisted: component [comp] ignored its shrink target
          for too many ticks and [freed] bytes were reclaimed by force *)
  | Gate_widen of { gate : string; slots : int }
      (** starvation auditor changed the named gateway to [slots] slots
          (widened while starved, or restored when the queue drained) *)
  | Arbiter_tick of {
      scarce : bool;  (** predicted aggregate demand exceeds the machine *)
      total : int;  (** physical bytes the arbiter splits across pools *)
      pools : pool_sample list;
    }  (** one cross-pool rebalance cycle of the tenant memory arbiter *)
  | Arbiter_reclaim of { pool : string; wanted : int; freed : int }
      (** the arbiter shrank a donor pool below its usage and pulled the
          overage back through the pool's reclaim hook *)
  | Shard_state of { shard : string; from_state : string; to_state : string }
      (** a shard's failure-domain lifecycle moved, e.g. up -> down on a
          crash, down -> recovering on restart, recovering -> up once the
          cold-cache probation window drains *)
  | Route of { shard : string; template : string; spill : bool; hedged : bool }
      (** the router placed a query on [shard]; [spill] marks an overflow
          placement past an unhealthy primary, [hedged] a duplicate
          dispatch racing a browned-out primary *)
  | Shard_sample of {
      shard : string;
      s_state : int;  (** lifecycle as a counter: 0 up, 1 browned-out,
                          2 down, 3 recovering *)
      s_inflight : int;
      s_budget : int;
    }  (** periodic per-shard counters for the Chrome trace *)
  | Midcache_lookup of { hit : bool; bytes : int }
      (** mid-tier statement cache probe; [bytes] is the payload served on
          a hit, [0] on a miss *)
  | Midcache_store of { bytes : int; resident : int }
      (** a computed result entered the mid-tier cache; [resident] is the
          cache's footprint after the insert *)
  | Midcache_invalidate of { relation : string; entries : int; bytes : int }
      (** a write touched [relation]: every cached result joining it was
          dropped ([entries] entries, [bytes] bytes) *)
  | Midcache_shrink of { wanted : int; freed : int }
      (** the broker squeezed the mid-tier cache: asked for [wanted]
          bytes, evicting LRU entries released [freed] *)
  | Midcache_sample of {
      resident : int;
      mc_budget : int;
      mc_entries : int;
      hit_rate_pct : int;
    }  (** periodic mid-tier cache counters for the Chrome trace *)
  | Storm_begin of { misses : int; baseline : float }
      (** the storm detector saw a compile-miss surge: [misses] arrivals in
          the current window against an EWMA [baseline] per window *)
  | Storm_end of { duration_s : float }
      (** the miss surge subsided after the required calm windows *)
  | Singleflight_coalesce of { template : string; waiters : int }
      (** a duplicate compile of [template] coalesced onto the in-flight
          leader; [waiters] sessions are now sharing that optimization *)
  | Queue_shift of { gate : string; lifo : bool }
      (** a gateway's queue discipline flipped ([lifo] true: newest-first
          under sustained standing; false: back to FIFO) *)
  | Custom of { cat : string; name : string; args : (string * value) list }

(** Coarse grouping used by exporters and summaries: one of ["compile"],
    ["gateway"], ["broker"], ["grant"], ["exec"], ["resilience"], ["mem"],
    ["health"], ["arbiter"], ["shard"], ["midcache"], ["storm"] or the
    category of the custom event. *)
val category : t -> string

(** Short display name, e.g. ["gateway:acquired"]. *)
val name : t -> string
