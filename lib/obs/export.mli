(** Trace exporters.

    {!chrome} lowers the typed event stream into Chrome trace-event JSON
    (the [{"traceEvents": [...]}] object format) loadable in
    [about:tracing] and Perfetto: compile, gateway-wait/hold, grant and
    exec phases become B/E duration spans on one thread per query id,
    per-query memory usage and broker targets become [C] counter tracks,
    and one-shot decisions (spill, retry, shed, degrade, OOM) become
    instant events. {!jsonl} is the lossless line-per-record form meant
    for offline analysis. *)

(** Minimal JSON string escaping per RFC 8259: backslash, quote, and
    control characters (C0) are escaped; everything else passes through. *)
val json_escape : string -> string

(** [chrome fmt records] writes a complete Chrome trace JSON document. *)
val chrome : Format.formatter -> Trace.record array -> unit

val chrome_to_file : string -> Trace.record array -> unit

(** [jsonl fmt records] writes one JSON object per line:
    [{"t":..,"qid":..,"cat":..,"name":..,...event fields}]. *)
val jsonl : Format.formatter -> Trace.record array -> unit

val jsonl_to_file : string -> Trace.record array -> unit
