(** Growable vector for arrival-order accumulation.

    Replaces the [acc := x :: !acc … List.rev !acc] idiom in the trace
    analyzers: [push] appends, [to_list] returns elements in push order.
    The backing array is lazily allocated at the first push (pre-sized to
    [capacity] when given), then doubles, so an accumulator that collects
    nothing — the common case for violation scans — allocates no array at
    all. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** [get t i] is the i-th pushed element; raises [Invalid_argument] out of
    bounds. *)
val get : 'a t -> int -> 'a

val iter : ('a -> unit) -> 'a t -> unit

(** Elements in push order. *)
val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array
