(** HDR-style log-linear histogram over non-negative integers.

    Buckets are exact up to [2^(sub_bits)] and thereafter keep
    [2^(sub_bits-1)] linear sub-buckets per power of two, bounding the
    relative quantile error at roughly [2^-(sub_bits-1)] across the whole
    [int] range — the classic high-dynamic-range layout, sized here for
    values from microseconds to hundreds of megabytes in one histogram. *)

type t

(** [create ?sub_bits ()] — [sub_bits] (default [7]) sets the precision:
    larger is finer but uses more buckets. Clamped to [[2, 14]]. *)
val create : ?sub_bits:int -> unit -> t

(** Negative values are clamped to [0]. *)
val add : t -> int -> unit

val count : t -> int

(** [min]/[max]/[mean] are exact (tracked outside the buckets); they return
    [0] on an empty histogram. *)
val min : t -> int

val max : t -> int
val mean : t -> float

(** [percentile t q] for [q] in [[0, 100]]: the smallest recorded bucket
    boundary at or above the [q]-th percentile, clamped to the exact
    observed maximum. Empty histogram yields [0]; [q <= 0] yields the
    minimum; [q >= 100] the maximum. *)
val percentile : t -> float -> int

(** One-line summary: [count], [mean], p50/p90/p99 and [max]. *)
val pp_summary : Format.formatter -> t -> unit
