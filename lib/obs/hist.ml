type t = {
  sub_bits : int;
  sub : int; (* 2^sub_bits: values below this index directly *)
  half : int; (* sub/2: linear sub-buckets per power of two *)
  counts : int array;
  mutable total : int;
  mutable vmin : int;
  mutable vmax : int;
  mutable sum : float;
}

let create ?(sub_bits = 7) () =
  let sub_bits = Stdlib.min 14 (Stdlib.max 2 sub_bits) in
  let sub = 1 lsl sub_bits in
  let half = sub / 2 in
  (* Values occupy at most 62 bits; each power of two above [sub] adds
     [half] buckets. *)
  let nbuckets = sub + (((62 - sub_bits) + 1) * half) in
  {
    sub_bits;
    sub;
    half;
    counts = Array.make nbuckets 0;
    total = 0;
    vmin = Stdlib.max_int;
    vmax = 0;
    sum = 0.;
  }

(* Index of the most significant set bit of [v > 0]. *)
let msb v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index t v =
  if v < t.sub then v
  else
    let shift = msb v - t.sub_bits + 1 in
    t.sub + ((shift - 1) * t.half) + ((v lsr shift) - t.half)

(* Highest value mapping to bucket [i] — the reported quantile boundary. *)
let bucket_high t i =
  if i < t.sub then i
  else
    let shift = ((i - t.sub) / t.half) + 1 in
    let off = ((i - t.sub) mod t.half) + t.half in
    (((off + 1) lsl shift) - 1 : int)

let add t v =
  let v = Stdlib.max 0 v in
  t.counts.(index t v) <- t.counts.(index t v) + 1;
  t.total <- t.total + 1;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  t.sum <- t.sum +. float_of_int v

let count t = t.total
let min t = if t.total = 0 then 0 else t.vmin
let max t = t.vmax
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

let percentile t q =
  if t.total = 0 then 0
  else if q <= 0. then min t
  else if q >= 100. then t.vmax
  else
    let rank = q /. 100. *. float_of_int t.total in
    let rec scan i seen =
      if i >= Array.length t.counts then t.vmax
      else
        let seen = seen + t.counts.(i) in
        if float_of_int seen >= rank then Stdlib.min (bucket_high t i) t.vmax
        else scan (i + 1) seen
    in
    scan 0 0

let pp_summary fmt t =
  if t.total = 0 then Format.fprintf fmt "empty"
  else
    Format.fprintf fmt "n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d" t.total
      (mean t) (percentile t 50.) (percentile t 90.) (percentile t 99.)
      t.vmax
