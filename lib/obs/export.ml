let needs_escape c = c = '"' || c = '\\' || Char.code c < 0x20

let json_escape s =
  (* Nearly every exported string (qids, gate names, event names) is
     already clean; scan first and only build a buffer when something
     actually needs escaping. *)
  let n = String.length s in
  let rec clean i = i >= n || ((not (needs_escape s.[i])) && clean (i + 1)) in
  if clean 0 then s
  else begin
    let buf = Buffer.create (n + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let value_json = function
  | Event.I i -> string_of_int i
  | Event.F f -> Printf.sprintf "%.6g" f
  | Event.S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Event.B b -> if b then "true" else "false"

let args_json args =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_json v))
       args)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event format                                          *)
(* ------------------------------------------------------------------ *)

(* Events for the whole simulated server (broker ticks, memory samples)
   go on tid 0; each query id gets its own tid so its compile / wait /
   hold / exec spans stack on one named track. *)
let tid_of intern qid =
  match Hashtbl.find_opt intern qid with
  | Some tid -> tid
  | None ->
      let tid = Hashtbl.length intern + 1 in
      Hashtbl.add intern qid tid;
      tid

type emitted = {
  ph : char;
  name : string;
  cat : string;
  ts : float;
  tid : int;
  args : (string * Event.value) list;
}

(* Lower one record into zero or more Chrome events. Wait → span begin;
   Acquired → wait-span end plus hold-span begin; Timeout → wait-span
   end; Release → hold-span end. Chrome matches B/E pairs per tid by
   nesting, which the emission order in the instrumented code guarantees
   (waits and holds are properly bracketed inside the compile span). *)
let lower intern (r : Trace.record) : emitted list =
  let tid = if r.qid = "" then 0 else tid_of intern r.qid in
  let ts = r.time *. 1e6 in
  let ev ?(args = []) ?(cat = Event.category r.event) ph name =
    { ph; name; cat; ts; tid; args }
  in
  match r.event with
  | Event.Compile_begin -> [ ev 'B' "compile" ]
  | Event.Compile_alloc { usage; _ } ->
      [
        ev 'C' ("compile:" ^ r.qid) ~args:[ ("usage", Event.I usage) ];
      ]
  | Event.Compile_end { peak } ->
      [
        ev 'C' ("compile:" ^ r.qid) ~args:[ ("usage", Event.I 0) ];
        ev 'E' "compile" ~args:[ ("peak", Event.I peak) ];
      ]
  | Event.Gateway { gate; phase; priority } -> (
      match phase with
      | Event.Wait ->
          [ ev 'B' ("wait:" ^ gate) ~args:[ ("priority", Event.I priority) ] ]
      | Event.Acquired -> [ ev 'E' ("wait:" ^ gate); ev 'B' ("hold:" ^ gate) ]
      | Event.Timeout ->
          [ ev 'E' ("wait:" ^ gate) ~args:[ ("outcome", Event.S "timeout") ] ]
      | Event.Release -> [ ev 'E' ("hold:" ^ gate) ])
  | Event.Broker_tick { pressure; budget; components } ->
      let targets =
        List.map (fun c -> (c.Event.comp, Event.I c.Event.target)) components
      in
      let predicted =
        List.map (fun c -> (c.Event.comp, Event.I c.Event.predicted)) components
      in
      let verdicts =
        List.map
          (fun c -> (c.Event.comp, Event.S (Event.verdict_name c.Event.verdict)))
          components
      in
      [
        ev 'C' "broker:targets" ~args:targets;
        ev 'C' "broker:predicted" ~args:predicted;
        ev 'i' "broker:tick"
          ~args:
            (( "pressure", Event.B pressure )
            :: ("budget", Event.I budget)
            :: verdicts);
      ]
  | Event.Grant { phase; bytes } -> (
      match phase with
      | Event.Wait ->
          [ ev 'B' "grant:wait" ~args:[ ("bytes", Event.I bytes) ] ]
      | Event.Acquired ->
          [
            ev 'E' "grant:wait";
            ev 'B' "grant:hold" ~args:[ ("bytes", Event.I bytes) ];
          ]
      | Event.Timeout ->
          [ ev 'E' "grant:wait" ~args:[ ("outcome", Event.S "timeout") ] ]
      | Event.Release -> [ ev 'E' "grant:hold" ])
  | Event.Exec_begin -> [ ev 'B' "exec" ]
  | Event.Exec_end { granted; ideal; spilled; pages } ->
      [
        ev 'E' "exec"
          ~args:
            [
              ("granted", Event.I granted);
              ("ideal", Event.I ideal);
              ("spilled", Event.B spilled);
              ("pages", Event.I pages);
            ];
      ]
  | Event.Spill { bytes } ->
      [ ev 'i' "spill" ~args:[ ("bytes", Event.I bytes) ] ]
  | Event.Retry { attempt; pause_s; kind } ->
      [
        ev 'i' "retry"
          ~args:
            [
              ("attempt", Event.I attempt);
              ("pause_s", Event.F pause_s);
              ("kind", Event.S kind);
            ];
      ]
  | Event.Shed -> [ ev 'i' "shed" ]
  | Event.Degrade { rung } ->
      [ ev 'i' "degrade" ~args:[ ("rung", Event.S rung) ] ]
  | Event.Cache_hit -> [ ev 'i' "cache_hit" ]
  | Event.Query_error { kind } ->
      [ ev 'i' "query_error" ~args:[ ("kind", Event.S kind) ] ]
  | Event.Mem { clerk; used } ->
      [ ev 'C' ("mem:" ^ clerk) ~args:[ ("used", Event.I used) ] ]
  | Event.Oom { clerk; requested; free } ->
      [
        ev 'i' "oom"
          ~args:
            [
              ("clerk", Event.S clerk);
              ("requested", Event.I requested);
              ("free", Event.I free);
            ];
      ]
  | Event.Reclaim { wanted; freed } ->
      [
        ev 'i' "reclaim"
          ~args:[ ("wanted", Event.I wanted); ("freed", Event.I freed) ];
      ]
  | Event.Heartbeat_stale { age } ->
      [ ev 'i' "heartbeat_stale" ~args:[ ("age_s", Event.F age) ] ]
  | Event.Watchdog_cancel { age } ->
      [ ev 'i' "watchdog_cancel" ~args:[ ("age_s", Event.F age) ] ]
  | Event.Breaker_open { template } ->
      [ ev 'i' "breaker_open" ~args:[ ("template", Event.S template) ] ]
  | Event.Breaker_close { template } ->
      [ ev 'i' "breaker_close" ~args:[ ("template", Event.S template) ] ]
  | Event.Forced_reclaim { comp; wanted; freed } ->
      [
        ev 'i' "forced_reclaim"
          ~args:
            [
              ("comp", Event.S comp);
              ("wanted", Event.I wanted);
              ("freed", Event.I freed);
            ];
      ]
  | Event.Gate_widen { gate; slots } ->
      [
        ev 'i' "gate_widen"
          ~args:[ ("gate", Event.S gate); ("slots", Event.I slots) ];
      ]
  | Event.Arbiter_tick { scarce; total; pools } ->
      let budgets =
        List.map (fun p -> (p.Event.pool, Event.I p.Event.pool_budget)) pools
      in
      let predicted =
        List.map (fun p -> (p.Event.pool, Event.I p.Event.pool_predicted)) pools
      in
      [
        ev 'C' "arbiter:budgets" ~args:budgets;
        ev 'C' "arbiter:predicted" ~args:predicted;
        ev 'i' "arbiter:tick"
          ~args:[ ("scarce", Event.B scarce); ("total", Event.I total) ];
      ]
  | Event.Arbiter_reclaim { pool; wanted; freed } ->
      [
        ev 'i' "arbiter_reclaim"
          ~args:
            [
              ("pool", Event.S pool);
              ("wanted", Event.I wanted);
              ("freed", Event.I freed);
            ];
      ]
  | Event.Shard_state { shard; from_state; to_state } ->
      [
        ev 'i' "shard_state"
          ~args:
            [
              ("shard", Event.S shard);
              ("from", Event.S from_state);
              ("to", Event.S to_state);
            ];
      ]
  | Event.Route { shard; template; spill; hedged } ->
      [
        ev 'i' "route"
          ~args:
            [
              ("shard", Event.S shard);
              ("template", Event.S template);
              ("spill", Event.B spill);
              ("hedged", Event.B hedged);
            ];
      ]
  | Event.Shard_sample { shard; s_state; s_inflight; s_budget } ->
      [
        ev 'C' ("shard:" ^ shard)
          ~args:
            [
              ("state", Event.I s_state);
              ("inflight", Event.I s_inflight);
              ("budget_mib", Event.I (s_budget / (1024 * 1024)));
            ];
      ]
  | Event.Midcache_lookup { hit; bytes } ->
      [
        ev 'i'
          (if hit then "midcache_hit" else "midcache_miss")
          ~args:[ ("bytes", Event.I bytes) ];
      ]
  | Event.Midcache_store { bytes; resident } ->
      [
        ev 'i' "midcache_store"
          ~args:[ ("bytes", Event.I bytes); ("resident", Event.I resident) ];
      ]
  | Event.Midcache_invalidate { relation; entries; bytes } ->
      [
        ev 'i' "midcache_invalidate"
          ~args:
            [
              ("relation", Event.S relation);
              ("entries", Event.I entries);
              ("bytes", Event.I bytes);
            ];
      ]
  | Event.Midcache_shrink { wanted; freed } ->
      [
        ev 'i' "midcache_shrink"
          ~args:[ ("wanted", Event.I wanted); ("freed", Event.I freed) ];
      ]
  | Event.Midcache_sample { resident; mc_budget; mc_entries; hit_rate_pct } ->
      [
        ev 'C' "midcache:bytes"
          ~args:
            [ ("resident", Event.I resident); ("budget", Event.I mc_budget) ];
        ev 'C' "midcache:entries" ~args:[ ("entries", Event.I mc_entries) ];
        ev 'C' "midcache:hit_rate"
          ~args:[ ("pct", Event.I hit_rate_pct) ];
      ]
  | Event.Storm_begin { misses; baseline } ->
      [
        ev 'i' "storm_begin"
          ~args:[ ("misses", Event.I misses); ("baseline", Event.F baseline) ];
      ]
  | Event.Storm_end { duration_s } ->
      [ ev 'i' "storm_end" ~args:[ ("duration_s", Event.F duration_s) ] ]
  | Event.Singleflight_coalesce { template; waiters } ->
      [
        ev 'i' "singleflight_coalesce"
          ~args:[ ("template", Event.S template); ("waiters", Event.I waiters) ];
      ]
  | Event.Queue_shift { gate; lifo } ->
      [
        ev 'i' "queue_shift"
          ~args:[ ("gate", Event.S gate); ("lifo", Event.B lifo) ];
      ]
  | Event.Custom { cat; name; args } -> [ ev 'i' name ~cat ~args ]

let chrome_event fmt ~first e =
  if not first then Format.fprintf fmt ",@\n";
  let scope = if e.ph = 'i' then ",\"s\":\"t\"" else "" in
  let args =
    if e.args = [] then "" else Printf.sprintf ",\"args\":{%s}" (args_json e.args)
  in
  Format.fprintf fmt
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.1f,\"pid\":1,\"tid\":%d%s%s}"
    (json_escape e.name) (json_escape e.cat) e.ph e.ts e.tid scope args

let chrome fmt records =
  let intern = Hashtbl.create 64 in
  Format.fprintf fmt "{\"traceEvents\":[@\n";
  let first = ref true in
  (* Name tid 0 up front; query tids are named after the event pass, once
     the interning table is complete. *)
  chrome_event fmt ~first:true
    {
      ph = 'M';
      name = "thread_name";
      cat = "__metadata";
      ts = 0.;
      tid = 0;
      args = [ ("name", Event.S "server") ];
    };
  first := false;
  Array.iter
    (fun r ->
      List.iter
        (fun e ->
          chrome_event fmt ~first:!first e;
          first := false)
        (lower intern r))
    records;
  Hashtbl.iter
    (fun qid tid ->
      chrome_event fmt ~first:false
        {
          ph = 'M';
          name = "thread_name";
          cat = "__metadata";
          ts = 0.;
          tid;
          args = [ ("name", Event.S qid) ];
        })
    intern;
  Format.fprintf fmt "@\n],\"displayTimeUnit\":\"ms\"}@."

let with_file path f =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush fmt ();
      close_out oc)
    (fun () -> f fmt)

let chrome_to_file path records = with_file path (fun fmt -> chrome fmt records)

(* ------------------------------------------------------------------ *)
(* JSONL                                                              *)
(* ------------------------------------------------------------------ *)

let fields_of_event = function
  | Event.Compile_begin -> []
  | Event.Compile_alloc { bytes; usage } ->
      [ ("bytes", Event.I bytes); ("usage", Event.I usage) ]
  | Event.Compile_end { peak } -> [ ("peak", Event.I peak) ]
  | Event.Gateway { gate; priority; _ } ->
      [ ("gate", Event.S gate); ("priority", Event.I priority) ]
  | Event.Broker_tick { pressure; budget; components } ->
      [
        ("pressure", Event.B pressure);
        ("budget", Event.I budget);
        ("ncomponents", Event.I (List.length components));
      ]
  | Event.Grant { bytes; _ } -> [ ("bytes", Event.I bytes) ]
  | Event.Exec_begin -> []
  | Event.Exec_end { granted; ideal; spilled; pages } ->
      [
        ("granted", Event.I granted);
        ("ideal", Event.I ideal);
        ("spilled", Event.B spilled);
        ("pages", Event.I pages);
      ]
  | Event.Spill { bytes } -> [ ("bytes", Event.I bytes) ]
  | Event.Retry { attempt; pause_s; kind } ->
      [
        ("attempt", Event.I attempt);
        ("pause_s", Event.F pause_s);
        ("kind", Event.S kind);
      ]
  | Event.Shed -> []
  | Event.Degrade { rung } -> [ ("rung", Event.S rung) ]
  | Event.Cache_hit -> []
  | Event.Query_error { kind } -> [ ("kind", Event.S kind) ]
  | Event.Mem { clerk; used } ->
      [ ("clerk", Event.S clerk); ("used", Event.I used) ]
  | Event.Oom { clerk; requested; free } ->
      [
        ("clerk", Event.S clerk);
        ("requested", Event.I requested);
        ("free", Event.I free);
      ]
  | Event.Reclaim { wanted; freed } ->
      [ ("wanted", Event.I wanted); ("freed", Event.I freed) ]
  | Event.Heartbeat_stale { age } -> [ ("age_s", Event.F age) ]
  | Event.Watchdog_cancel { age } -> [ ("age_s", Event.F age) ]
  | Event.Breaker_open { template } -> [ ("template", Event.S template) ]
  | Event.Breaker_close { template } -> [ ("template", Event.S template) ]
  | Event.Forced_reclaim { comp; wanted; freed } ->
      [
        ("comp", Event.S comp);
        ("wanted", Event.I wanted);
        ("freed", Event.I freed);
      ]
  | Event.Gate_widen { gate; slots } ->
      [ ("gate", Event.S gate); ("slots", Event.I slots) ]
  | Event.Arbiter_tick { scarce; total; pools } ->
      [
        ("scarce", Event.B scarce);
        ("total", Event.I total);
        ("npools", Event.I (List.length pools));
      ]
  | Event.Arbiter_reclaim { pool; wanted; freed } ->
      [
        ("pool", Event.S pool);
        ("wanted", Event.I wanted);
        ("freed", Event.I freed);
      ]
  | Event.Shard_state { shard; from_state; to_state } ->
      [
        ("shard", Event.S shard);
        ("from", Event.S from_state);
        ("to", Event.S to_state);
      ]
  | Event.Route { shard; template; spill; hedged } ->
      [
        ("shard", Event.S shard);
        ("template", Event.S template);
        ("spill", Event.B spill);
        ("hedged", Event.B hedged);
      ]
  | Event.Shard_sample { shard; s_state; s_inflight; s_budget } ->
      [
        ("shard", Event.S shard);
        ("state", Event.I s_state);
        ("inflight", Event.I s_inflight);
        ("budget", Event.I s_budget);
      ]
  | Event.Midcache_lookup { hit; bytes } ->
      [ ("hit", Event.B hit); ("bytes", Event.I bytes) ]
  | Event.Midcache_store { bytes; resident } ->
      [ ("bytes", Event.I bytes); ("resident", Event.I resident) ]
  | Event.Midcache_invalidate { relation; entries; bytes } ->
      [
        ("relation", Event.S relation);
        ("entries", Event.I entries);
        ("bytes", Event.I bytes);
      ]
  | Event.Midcache_shrink { wanted; freed } ->
      [ ("wanted", Event.I wanted); ("freed", Event.I freed) ]
  | Event.Midcache_sample { resident; mc_budget; mc_entries; hit_rate_pct } ->
      [
        ("resident", Event.I resident);
        ("budget", Event.I mc_budget);
        ("entries", Event.I mc_entries);
        ("hit_rate_pct", Event.I hit_rate_pct);
      ]
  | Event.Storm_begin { misses; baseline } ->
      [ ("misses", Event.I misses); ("baseline", Event.F baseline) ]
  | Event.Storm_end { duration_s } -> [ ("duration_s", Event.F duration_s) ]
  | Event.Singleflight_coalesce { template; waiters } ->
      [ ("template", Event.S template); ("waiters", Event.I waiters) ]
  | Event.Queue_shift { gate; lifo } ->
      [ ("gate", Event.S gate); ("lifo", Event.B lifo) ]
  | Event.Custom { args; _ } -> args

let jsonl fmt records =
  Array.iter
    (fun (r : Trace.record) ->
      let base =
        [
          ("t", Event.F r.time);
          ("qid", Event.S r.qid);
          ("cat", Event.S (Event.category r.event));
          ("name", Event.S (Event.name r.event));
        ]
      in
      Format.fprintf fmt "{%s}@\n" (args_json (base @ fields_of_event r.event)))
    records;
  Format.pp_print_flush fmt ()

let jsonl_to_file path records = with_file path (fun fmt -> jsonl fmt records)
