(* Growable vector used by the trace analyzers in place of list-cons
   accumulation. Pushes append in arrival order, so [to_list] yields the
   same sequence the old [List.rev !acc] idiom produced, with one doubling
   array instead of a cons cell per element. The backing array is
   allocated on the first push so an empty vector (the common case for
   violation collectors) costs two words. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  hint : int;  (* requested initial capacity, applied at first push *)
}

let create ?(capacity = 0) () = { data = [||]; len = 0; hint = capacity }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let cap' = if t.len = 0 then Stdlib.max 16 t.hint else 2 * t.len in
    let data' = Array.make cap' x in
    Array.blit t.data 0 data' 0 t.len;
    t.data <- data'
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len
