type record = { time : float; qid : string; event : Event.t }

type ring = {
  buf : record option array;
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

type t = Null | Ring of ring

let null = Null
let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  Ring { buf = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let enabled = function Null -> false | Ring _ -> true

let emit t ~time ~qid event =
  match t with
  | Null -> ()
  | Ring r ->
      let cap = Array.length r.buf in
      r.buf.(r.head) <- Some { time; qid; event };
      r.head <- (r.head + 1) mod cap;
      if r.len < cap then r.len <- r.len + 1 else r.dropped <- r.dropped + 1

let length = function Null -> 0 | Ring r -> r.len
let dropped = function Null -> 0 | Ring r -> r.dropped

let records t =
  match t with
  | Null -> [||]
  | Ring r ->
      let cap = Array.length r.buf in
      let start = (r.head - r.len + cap) mod cap in
      Array.init r.len (fun i ->
          match r.buf.((start + i) mod cap) with
          | Some rec_ -> rec_
          | None -> assert false)

let clear = function
  | Null -> ()
  | Ring r ->
      Array.fill r.buf 0 (Array.length r.buf) None;
      r.head <- 0;
      r.len <- 0;
      r.dropped <- 0
