type record = { time : float; qid : string; event : Event.t }

(* The ring stores mutable slots so steady-state emission (every lap
   after the first) rewrites fields in place instead of allocating a
   record plus an option box per event. Slots are materialised lazily on
   the first lap — a shared dummy marks never-written positions — so a
   mostly-empty ring costs nothing beyond its pointer array. *)
type slot = {
  mutable s_time : float;
  mutable s_qid : string;
  mutable s_event : Event.t;
}

let dummy_slot = { s_time = 0.; s_qid = ""; s_event = Event.Compile_begin }

type ring = {
  buf : slot array;
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

type t = Null | Ring of ring

let null = Null
let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  Ring { buf = Array.make capacity dummy_slot; head = 0; len = 0; dropped = 0 }

let enabled = function Null -> false | Ring _ -> true

let emit t ~time ~qid event =
  match t with
  | Null -> ()
  | Ring r ->
      let cap = Array.length r.buf in
      let s = r.buf.(r.head) in
      if s == dummy_slot then
        r.buf.(r.head) <- { s_time = time; s_qid = qid; s_event = event }
      else begin
        s.s_time <- time;
        s.s_qid <- qid;
        s.s_event <- event
      end;
      r.head <- (r.head + 1) mod cap;
      if r.len < cap then r.len <- r.len + 1 else r.dropped <- r.dropped + 1

let length = function Null -> 0 | Ring r -> r.len
let dropped = function Null -> 0 | Ring r -> r.dropped

let records t =
  match t with
  | Null -> [||]
  | Ring r ->
      let cap = Array.length r.buf in
      let start = (r.head - r.len + cap) mod cap in
      Array.init r.len (fun i ->
          let s = r.buf.((start + i) mod cap) in
          { time = s.s_time; qid = s.s_qid; event = s.s_event })

let clear = function
  | Null -> ()
  | Ring r ->
      (* Keep the materialised slots for reuse but sever their payload
         references so a cleared trace pins no strings or events. *)
      Array.iter
        (fun s ->
          if s != dummy_slot then begin
            s.s_qid <- "";
            s.s_event <- Event.Compile_begin
          end)
        r.buf;
      r.head <- 0;
      r.len <- 0;
      r.dropped <- 0
