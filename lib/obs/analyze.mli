(** Trace analysis: turn the raw record stream back into the quantities
    the paper's evaluation (and the invariant tests) talk about —
    per-gateway wait intervals, concurrent-holder counts, admission-order
    checks, and per-query memory-usage timelines (Figure 2). *)

type wait = {
  qid : string;
  gate : string;
  start : float;
  finish : float;  (** = [start] of the run's end for [`Open] waits *)
  outcome : [ `Acquired | `Timeout | `Open ];
}

(** All gateway wait intervals, in trace order of their [Wait] records.
    A wait still pending when the trace ends is reported as [`Open] with
    [finish] equal to the last record's time. *)
val gateway_waits : Trace.record array -> wait list

(** Peak concurrent holders per gate, from Acquired/Release deltas. *)
val max_holders : Trace.record array -> (string * int) list

(** [holder_violations records ~slots] returns every [(gate, time, holders)]
    where the concurrent-holder count of [gate] exceeded [slots gate].
    Robust to ring drops: unmatched releases never drive the count below
    zero, and an Acquired without a recorded Wait still counts as a hold
    (drops can only lose old records, so holders are never overcounted). *)
val holder_violations :
  Trace.record array -> slots:(string -> int) -> (string * float * int) list

(** Admission-order check. The gateways serve waiters in priority order
    (smaller first) and FIFO among equal priorities; a violation is an
    [Acquired] for a waiter while another waiter of the same gate that
    (a) started waiting earlier and (b) has priority ≤ the admitted
    waiter's is still queued. Condition (b) makes the check immune to the
    benign race where a waiter enqueues between the semaphore granting a
    slot and the resumed process writing its [Acquired] record. Returns
    [(gate, admitted_qid, passed_over_qid, time)]. *)
val admission_violations :
  Trace.record array -> (string * string * string * float) list

(** Per-query compile memory-usage timeline: [(time, usage_bytes)] points
    from [Compile_begin] (0), each [Compile_alloc], and [Compile_end] (0),
    keyed by qid — the data behind the paper's Figure 2. *)
val usage_points : Trace.record array -> (string * (float * int) list) list

(** Per-gate histogram of completed wait durations, in integer
    microseconds. *)
val wait_histograms : Trace.record array -> (string * Hist.t) list
