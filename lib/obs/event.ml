type value = I of int | F of float | S of string | B of bool
type wait_phase = Wait | Acquired | Timeout | Release

let wait_phase_name = function
  | Wait -> "wait"
  | Acquired -> "acquired"
  | Timeout -> "timeout"
  | Release -> "release"

type broker_verdict = Grow | Stable | Shrink

let verdict_name = function
  | Grow -> "grow"
  | Stable -> "stable"
  | Shrink -> "shrink"

type component_sample = {
  comp : string;
  used : int;
  predicted : int;
  target : int;
  verdict : broker_verdict;
}

type pool_sample = {
  pool : string;
  pool_used : int;
  pool_predicted : int;
  pool_budget : int;
}

type t =
  | Compile_begin
  | Compile_alloc of { bytes : int; usage : int }
  | Compile_end of { peak : int }
  | Gateway of { gate : string; phase : wait_phase; priority : int }
  | Broker_tick of {
      pressure : bool;
      budget : int;
      components : component_sample list;
    }
  | Grant of { phase : wait_phase; bytes : int }
  | Exec_begin
  | Exec_end of { granted : int; ideal : int; spilled : bool; pages : int }
  | Spill of { bytes : int }
  | Retry of { attempt : int; pause_s : float; kind : string }
  | Shed
  | Degrade of { rung : string }
  | Cache_hit
  | Query_error of { kind : string }
  | Mem of { clerk : string; used : int }
  | Oom of { clerk : string; requested : int; free : int }
  | Reclaim of { wanted : int; freed : int }
  | Heartbeat_stale of { age : float }
  | Watchdog_cancel of { age : float }
  | Breaker_open of { template : string }
  | Breaker_close of { template : string }
  | Forced_reclaim of { comp : string; wanted : int; freed : int }
  | Gate_widen of { gate : string; slots : int }
  | Arbiter_tick of {
      scarce : bool;
      total : int;
      pools : pool_sample list;
    }
  | Arbiter_reclaim of { pool : string; wanted : int; freed : int }
  | Shard_state of { shard : string; from_state : string; to_state : string }
  | Route of { shard : string; template : string; spill : bool; hedged : bool }
  | Shard_sample of {
      shard : string;
      s_state : int;
      s_inflight : int;
      s_budget : int;
    }
  | Midcache_lookup of { hit : bool; bytes : int }
  | Midcache_store of { bytes : int; resident : int }
  | Midcache_invalidate of { relation : string; entries : int; bytes : int }
  | Midcache_shrink of { wanted : int; freed : int }
  | Midcache_sample of {
      resident : int;
      mc_budget : int;
      mc_entries : int;
      hit_rate_pct : int;
    }
  | Storm_begin of { misses : int; baseline : float }
  | Storm_end of { duration_s : float }
  | Singleflight_coalesce of { template : string; waiters : int }
  | Queue_shift of { gate : string; lifo : bool }
  | Custom of { cat : string; name : string; args : (string * value) list }

let category = function
  | Compile_begin | Compile_alloc _ | Compile_end _ -> "compile"
  | Gateway _ -> "gateway"
  | Broker_tick _ -> "broker"
  | Grant _ -> "grant"
  | Exec_begin | Exec_end _ | Spill _ -> "exec"
  | Retry _ | Shed | Degrade _ | Cache_hit | Query_error _ -> "resilience"
  | Mem _ | Oom _ | Reclaim _ -> "mem"
  | Heartbeat_stale _ | Watchdog_cancel _ | Breaker_open _ | Breaker_close _
  | Gate_widen _ ->
      "health"
  | Forced_reclaim _ -> "broker"
  | Arbiter_tick _ | Arbiter_reclaim _ -> "arbiter"
  | Shard_state _ | Route _ | Shard_sample _ -> "shard"
  | Midcache_lookup _ | Midcache_store _ | Midcache_invalidate _
  | Midcache_shrink _ | Midcache_sample _ ->
      "midcache"
  | Storm_begin _ | Storm_end _ | Singleflight_coalesce _ | Queue_shift _ ->
      "storm"
  | Custom { cat; _ } -> cat

let name = function
  | Compile_begin -> "compile:begin"
  | Compile_alloc _ -> "compile:alloc"
  | Compile_end _ -> "compile:end"
  | Gateway { phase; _ } -> "gateway:" ^ wait_phase_name phase
  | Broker_tick _ -> "broker:tick"
  | Grant { phase; _ } -> "grant:" ^ wait_phase_name phase
  | Exec_begin -> "exec:begin"
  | Exec_end _ -> "exec:end"
  | Spill _ -> "exec:spill"
  | Retry _ -> "resilience:retry"
  | Shed -> "resilience:shed"
  | Degrade _ -> "resilience:degrade"
  | Cache_hit -> "resilience:cache_hit"
  | Query_error _ -> "resilience:error"
  | Mem _ -> "mem:sample"
  | Oom _ -> "mem:oom"
  | Reclaim _ -> "mem:reclaim"
  | Heartbeat_stale _ -> "health:heartbeat_stale"
  | Watchdog_cancel _ -> "health:watchdog_cancel"
  | Breaker_open _ -> "health:breaker_open"
  | Breaker_close _ -> "health:breaker_close"
  | Forced_reclaim _ -> "broker:forced_reclaim"
  | Gate_widen _ -> "health:gate_widen"
  | Arbiter_tick _ -> "arbiter:tick"
  | Arbiter_reclaim _ -> "arbiter:reclaim"
  | Shard_state _ -> "shard:state"
  | Route _ -> "shard:route"
  | Shard_sample _ -> "shard:sample"
  | Midcache_lookup { hit; _ } ->
      if hit then "midcache:hit" else "midcache:miss"
  | Midcache_store _ -> "midcache:store"
  | Midcache_invalidate _ -> "midcache:invalidate"
  | Midcache_shrink _ -> "midcache:shrink"
  | Midcache_sample _ -> "midcache:sample"
  | Storm_begin _ -> "storm:begin"
  | Storm_end _ -> "storm:end"
  | Singleflight_coalesce _ -> "storm:coalesce"
  | Queue_shift _ -> "storm:queue_shift"
  | Custom { cat; name; _ } -> cat ^ ":" ^ name
