(** Compile singleflight: coalesce concurrent compilations of one
    canonical statement.

    A cold plan cache turns every client into a simultaneous compile of
    the same handful of templates — N clients, one template, N identical
    optimizations fighting over the gateways. Singleflight keys each
    in-flight compilation by its canonical statement key (the caller
    supplies it; the server reuses {!Midcache.Frontend} keying): the
    first arrival becomes the {e leader} and compiles, later arrivals
    {e coalesce} — they block on the leader's completion, then re-probe
    the plan cache and find the shared plan. A cold cache then costs one
    compile per template, not one per client.

    [Observe] mode never blocks anyone: it only counts the duplicate
    compiles that coalescing would have saved, so a defenses-off run can
    report its duplicate-compile factor without changing behaviour (and
    without consuming randomness — replays are unchanged).

    The leader must call {!exit} on every path, including failure. A
    waiter woken by a failed leader re-probes, misses, and re-enters as a
    fresh leader — the flight is removed before the broadcast, so the
    retry can never re-join a completed flight. *)

type mode = Observe | Coalesce

type t

(** Leader's receipt, passed back to {!exit}. *)
type token

val create : ?mode:mode -> Sim.Engine.t -> t
(** Default mode is [Coalesce]. *)

val set_on_coalesce : t -> (key:string -> waiters:int -> unit) -> unit
(** Fires when an arrival coalesces, {e before} it blocks; [waiters] is
    the flight's waiter count including it (trace hookup). *)

val enter :
  t ->
  key:string ->
  ?max_wait:float ->
  unit ->
  [ `Leader of token | `Duplicate | `Coalesced | `Timed_out ]
(** [`Leader tok]: no flight was open for [key]; compile, then {!exit}.
    [`Duplicate]: observe mode counted the duplicate; compile anyway.
    [`Coalesced]: blocked until the leader finished; re-probe the cache.
    [`Timed_out]: waited [max_wait] without a wake; compile solo. *)

val exit : t -> token -> unit
(** Close the flight and wake every waiter. Call on success {e and}
    failure. *)

(** {1 Statistics} *)

val in_flight : t -> int
val led : t -> int

(** Arrivals that blocked on a leader. *)
val coalesced : t -> int

(** Arrivals that found a flight already open — compiles saved
    ([Coalesce]) or wasted ([Observe]). *)
val duplicates : t -> int

val timeouts : t -> int

(** Max concurrent waiters observed on one flight. *)
val peak_waiters : t -> int
