type entry = {
  plan : Optimizer.Plan.t;
  size : int;
  compile_cost : float;
  mutable uses : int;
  mutable stamp : int; (* recency tiebreak *)
}

type t = {
  clerk : Dbmem.Manager.clerk;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable evicted_window : int; (* bytes evicted since the last demand_hint *)
}

let create _manager ~clerk =
  {
    clerk;
    table = Hashtbl.create 1024;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    evicted_window = 0;
  }

let lookup t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      t.clock <- t.clock + 1;
      e.uses <- e.uses + 1;
      e.stamp <- t.clock;
      Some e.plan
  | None ->
      t.misses <- t.misses + 1;
      None

(* Value of keeping an entry: cost saved per byte, scaled by observed
   reuse. Lowest value (oldest on ties) is evicted first. *)
let value e =
  e.compile_cost *. float_of_int e.uses /. float_of_int (max 1 e.size)

let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when (value best, best.stamp) <= (value e, e.stamp) ->
            acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> 0
  | Some (key, e) ->
      Hashtbl.remove t.table key;
      Dbmem.Manager.free t.clerk e.size;
      t.evictions <- t.evictions + 1;
      t.evicted_window <- t.evicted_window + e.size;
      e.size

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.table key;
      Dbmem.Manager.free t.clerk e.size

let insert t ~key ~plan ~compile_cost =
  remove t key;
  let size = Optimizer.Plan.size_bytes plan in
  let rec ensure attempts =
    match Dbmem.Manager.alloc t.clerk size with
    | Ok () -> true
    | Error `Out_of_memory ->
        if attempts > 0 && evict_one t > 0 then ensure (attempts - 1) else false
  in
  if ensure 32 then begin
    t.clock <- t.clock + 1;
    Hashtbl.replace t.table key
      { plan; size; compile_cost; uses = 1; stamp = t.clock }
  end

let shrink t n =
  let freed = ref 0 in
  let continue = ref true in
  while !freed < n && !continue do
    let got = evict_one t in
    if got = 0 then continue := false else freed := !freed + got
  done;
  !freed

let entries t = Hashtbl.length t.table
let bytes t = Dbmem.Manager.clerk_used t.clerk

(* Demand for the broker: resident bytes plus what was evicted since the
   last ask — evicted-then-wanted-again is exactly unmet demand, the same
   shape as the buffer pool's miss-window hint. *)
let demand_hint t =
  let unmet = t.evicted_window in
  t.evicted_window <- 0;
  bytes t + unmet
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let hit_rate t =
  let total = t.hits + t.misses in
  (* 0., not nan: a fresh cache has a defined (empty) history, and nan
     would poison every ratio derived from this one downstream. *)
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf "plan cache: %d entries (%a), hit rate %.1f%%, %d evictions"
    (entries t) Dbmem.Units.pp_bytes (bytes t)
    (100. *. hit_rate t) t.evictions
