type mode = Observe | Coalesce

type flight = {
  fkey : string;
  fq : Sim.Resource.Waitq.t;
  mutable fwaiters : int;
}

type token = flight

type t = {
  eng : Sim.Engine.t;
  mode : mode;
  flights : (string, flight) Hashtbl.t;
  mutable led : int;
  mutable coalesced : int;
  mutable duplicates : int;
  mutable timeouts : int;
  mutable peak_waiters : int;
  mutable on_coalesce : key:string -> waiters:int -> unit;
}

let create ?(mode = Coalesce) eng =
  {
    eng;
    mode;
    flights = Hashtbl.create 32;
    led = 0;
    coalesced = 0;
    duplicates = 0;
    timeouts = 0;
    peak_waiters = 0;
    on_coalesce = (fun ~key:_ ~waiters:_ -> ());
  }

let set_on_coalesce t f = t.on_coalesce <- f

let lead t key =
  let f =
    { fkey = key; fq = Sim.Resource.Waitq.create t.eng ~name:key (); fwaiters = 0 }
  in
  Hashtbl.add t.flights key f;
  t.led <- t.led + 1;
  `Leader f

let enter t ~key ?max_wait () =
  match Hashtbl.find_opt t.flights key with
  | None -> lead t key
  | Some f -> (
      t.duplicates <- t.duplicates + 1;
      match t.mode with
      | Observe -> `Duplicate
      | Coalesce -> (
          f.fwaiters <- f.fwaiters + 1;
          if f.fwaiters > t.peak_waiters then t.peak_waiters <- f.fwaiters;
          t.coalesced <- t.coalesced + 1;
          t.on_coalesce ~key ~waiters:f.fwaiters;
          let r = Sim.Resource.Waitq.wait f.fq ?timeout:max_wait () in
          f.fwaiters <- f.fwaiters - 1;
          match r with
          | Sim.Resource.Acquired -> `Coalesced
          | Sim.Resource.Timed_out ->
              t.timeouts <- t.timeouts + 1;
              `Timed_out))

let exit t (tok : token) =
  (* Remove before broadcasting: a waiter that wakes, misses the cache
     (the leader failed) and re-enters must become a fresh leader, not
     re-join the flight it was just released from. *)
  if Hashtbl.mem t.flights tok.fkey then Hashtbl.remove t.flights tok.fkey;
  Sim.Resource.Waitq.broadcast tok.fq

let in_flight t = Hashtbl.length t.flights
let led t = t.led
let coalesced t = t.coalesced
let duplicates t = t.duplicates
let timeouts t = t.timeouts
let peak_waiters t = t.peak_waiters
