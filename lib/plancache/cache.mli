(** Compiled-plan cache.

    Plans are cached under the query fingerprint. Ad-hoc workloads whose
    uniquifier defeats fingerprint matching (the paper's SALES load
    generator) fill the cache with single-use plans; under memory pressure
    the broker's shrink verdict — and the manager's donor mechanism —
    evict them, which in the un-throttled configuration of the paper shows
    up as "excessive eviction of compiled plans ... forcing additional
    compilation CPU load in the future". Eviction is cost-aware: the entry
    with the smallest [recompile_cost * uses / size] goes first (the same
    shape as SQL Server's plan-cache cost policy). *)

type t

val create : Dbmem.Manager.t -> clerk:Dbmem.Manager.clerk -> t

(** [lookup t key] returns the cached plan and bumps its use count. *)
val lookup : t -> string -> Optimizer.Plan.t option

(** [insert t ~key ~plan ~compile_cost] stores a plan; its memory footprint
    is {!Optimizer.Plan.size_bytes}. If the manager cannot supply memory
    even after donor reclaim, the cache evicts its own low-value entries;
    if still impossible the plan is simply not cached. Replaces any
    existing entry under the same key. *)
val insert : t -> key:string -> plan:Optimizer.Plan.t -> compile_cost:float -> unit

(** [shrink t n] evicts lowest-value entries until [n] bytes are freed (or
    the cache is empty); returns bytes freed. Donor hook. *)
val shrink : t -> int -> int

val entries : t -> int
val bytes : t -> int

(** Broker demand signal: resident bytes plus bytes evicted since the
    previous call (eviction churn is unmet demand). Resets the churn
    window — one caller per cache. *)
val demand_hint : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** Hit fraction over all lookups so far ([0.] before any lookup). *)
val hit_rate : t -> float
val pp : Format.formatter -> t -> unit
