(** Mid-tier statement/result cache — the "intermediate caching layer …
    more like a KVS between the engine and the client".

    Entries are keyed by canonical statement text (template + literal
    parameters), carry a simulated result payload size, and obey explicit
    staleness semantics: TTL expiry (an entry exactly at its expiry time is
    a {e miss}) plus write-driven invalidation by touched-relation set.
    Eviction is strict LRU under a byte budget.

    The module is deliberately pure machinery: every operation takes the
    current time explicitly and nothing here touches the simulation clock,
    randomness, or the memory manager directly. Accounting against a
    physical memory manager is wired through the [charge]/[release] hooks,
    so the cache can be a first-class broker component without this
    library depending on the broker. *)

type config = {
  ttl : float;
      (** entry lifetime in seconds; an entry inserted at [t] is served
          only strictly before [t +. ttl]. [<= 0.] disables expiry. *)
  max_entry_bytes : int;
      (** payloads larger than this are refused (never cached) *)
}

val default_config : config

type t

(** [create ?charge ?release ~budget config]. [charge n] is called before
    an insert charges [n] bytes to external accounting (e.g. a memory
    clerk) — returning [false] refuses the bytes, and the cache evicts LRU
    entries and retries a bounded number of times before giving up on the
    insert. [release n] is called whenever [n] resident bytes leave the
    cache for any reason. Defaults accept everything / do nothing. *)
val create : ?charge:(int -> bool) -> ?release:(int -> unit) -> budget:int -> config -> t

(** [get t ~now key] probes the cache. A present, unexpired entry returns
    its payload size and becomes most-recently-used; an entry at or past
    its expiry is dropped and counted as both an expiry and a miss. *)
val get : t -> now:float -> string -> int option

(** [put t ~now ~key ~bytes ~rels] inserts (or replaces) an entry whose
    result joins the relations [rels]. LRU entries are evicted until the
    payload fits the budget; payloads over [max_entry_bytes] or the whole
    budget are refused. Returns whether the entry is now resident. *)
val put : t -> now:float -> key:string -> bytes:int -> rels:string list -> bool

(** Count a request that never consulted the cache (cache-off mode, or an
    uncacheable statement). Keeps the conservation law
    [requests = hits + misses + bypasses] checkable at this layer. *)
val note_bypass : t -> unit

(** [invalidate t rel] drops every entry whose result joins [rel].
    Returns [(entries, bytes)] dropped. *)
val invalidate : t -> string -> int * int

(** [shrink t n] evicts LRU entries until at least [n] bytes are freed or
    the cache is empty; returns the bytes actually freed. Within one call
    the resident size is strictly decreasing — a reclaim never re-grows. *)
val shrink : t -> int -> int

(** [set_budget t n] re-targets the byte budget (the broker's lever),
    evicting LRU entries if the cache is over the new budget. *)
val set_budget : t -> int -> unit

(** {1 Introspection} *)

val budget : t -> int
val resident : t -> int
val entries : t -> int

(** [mem t key] — residency without touching stats or recency (tests). *)
val mem : t -> string -> bool

(** Resident bytes plus bytes evicted (for space, not staleness) since the
    last call — evicted-then-wanted-again is unmet demand, the same hint
    shape the plan cache and buffer pool report to the broker. *)
val demand_hint : t -> int

val hits : t -> int
val misses : t -> int
val bypasses : t -> int

(** [requests t = hits t + misses t + bypasses t]. *)
val requests : t -> int

val stores : t -> int
val refused : t -> int  (** inserts that could not be accommodated *)

(** Entries evicted for space (LRU / shrink). *)
val evictions : t -> int

val expired : t -> int
val invalidated : t -> int

(** Shrink calls that freed at least one byte. *)
val shrinks : t -> int

val shrunk_bytes : t -> int

(** [0.] on an empty history, never [nan]. *)
val hit_rate : t -> float

val pp : Format.formatter -> t -> unit
