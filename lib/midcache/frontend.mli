(** Client-facing cache middleware.

    Sits between the workload's clients and a server's submit function: a
    probe on the canonical statement text serves hits from the cache at a
    fixed small latency — never touching the compile gateways — while
    misses fall through to the engine and the computed result is inserted
    with a simulated payload size and the query's touched-relation set.
    Writes invalidate by relation.

    In cache-off mode ([cache = None]) every request is a bypass straight
    to the engine, so the three modes of the cached experiment share one
    code path. *)

type t

(** [create ?trace ?hit_latency eng ~cache ~submit ()]. [hit_latency] is
    the simulated service time of a cache hit in seconds (default
    [0.02]): result transfer from a mid-tier KVS, orders of magnitude
    under a compile-plus-scan. *)
val create :
  ?trace:Obs.Trace.t ->
  ?hit_latency:float ->
  Sim.Engine.t ->
  cache:Cache.t option ->
  submit:(Optimizer.Query.t -> (unit, string) result) ->
  unit ->
  t

(** Process-blocking: serve from the cache or fall through to the engine.
    Must run inside a simulation process. *)
val submit : t -> Optimizer.Query.t -> (unit, string) result

(** A write touching [rels]: drop every cached result joining any of
    them. *)
val write : t -> rels:string list -> unit

(** {1 Key and payload derivation} *)

(** Canonical template (qid with the [#serial] stripped) plus the
    statement text with literal parameters — the fingerprint comment that
    would uniquify replayed parameterized statements is stripped. *)
val key_of_query : Optimizer.Query.t -> string

(** Deterministic simulated result size: estimated group-count times row
    width. Pure function of the query structure. *)
val payload_bytes : Optimizer.Query.t -> int

(** Distinct base tables the query joins. *)
val rels_of_query : Optimizer.Query.t -> string list

(** {1 Introspection} *)

val cache : t -> Cache.t option
val requests : t -> int
val hits : t -> int
val misses : t -> int
val bypasses : t -> int
val writes : t -> int
val invalidated_entries : t -> int
