type config = { ttl : float; max_entry_bytes : int }

let default_config = { ttl = 300.; max_entry_bytes = 16 * 1024 * 1024 }

(* Intrusive doubly-linked LRU list: [head] is most-recently-used, [tail]
   is the eviction end. O(1) touch/unlink, no stamp scans. *)
type entry = {
  key : string;
  bytes : int;
  rels : string list;
  expires : float;
  mutable prev : entry option;  (* toward head (MRU) *)
  mutable next : entry option;  (* toward tail (LRU) *)
}

type t = {
  cfg : config;
  charge : int -> bool;
  release : int -> unit;
  table : (string, entry) Hashtbl.t;
  by_rel : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable budget : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
  mutable stores : int;
  mutable refused : int;
  mutable evictions : int;
  mutable expired : int;
  mutable invalidated : int;
  mutable shrink_calls : int;
  mutable shrunk : int;
  mutable evicted_window : int;  (* space-eviction bytes since last hint *)
}

let create ?(charge = fun _ -> true) ?(release = fun _ -> ()) ~budget cfg =
  {
    cfg;
    charge;
    release;
    table = Hashtbl.create 1024;
    by_rel = Hashtbl.create 64;
    head = None;
    tail = None;
    budget = max 0 budget;
    resident = 0;
    hits = 0;
    misses = 0;
    bypasses = 0;
    stores = 0;
    refused = 0;
    evictions = 0;
    expired = 0;
    invalidated = 0;
    shrink_calls = 0;
    shrunk = 0;
    evicted_window = 0;
  }

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let drop t e reason =
  unlink t e;
  Hashtbl.remove t.table e.key;
  List.iter
    (fun r ->
      match Hashtbl.find_opt t.by_rel r with
      | None -> ()
      | Some bucket ->
          Hashtbl.remove bucket e.key;
          if Hashtbl.length bucket = 0 then Hashtbl.remove t.by_rel r)
    e.rels;
  t.resident <- t.resident - e.bytes;
  t.release e.bytes;
  match reason with
  | `Space ->
      t.evictions <- t.evictions + 1;
      t.evicted_window <- t.evicted_window + e.bytes
  | `Expired -> t.expired <- t.expired + 1
  | `Invalidated -> t.invalidated <- t.invalidated + 1
  | `Replaced -> ()

let evict_lru t =
  match t.tail with
  | None -> 0
  | Some e ->
      drop t e `Space;
      e.bytes

let get t ~now key =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some e when now >= e.expires ->
      (* Exactly at expiry is already stale: the entry promised freshness
         strictly inside [insert, insert + ttl). *)
      drop t e `Expired;
      t.misses <- t.misses + 1;
      None
  | Some e ->
      unlink t e;
      push_front t e;
      t.hits <- t.hits + 1;
      Some e.bytes

let note_bypass t = t.bypasses <- t.bypasses + 1

let put t ~now ~key ~bytes ~rels =
  (match Hashtbl.find_opt t.table key with
  | Some old -> drop t old `Replaced
  | None -> ());
  if bytes <= 0 || bytes > t.cfg.max_entry_bytes || bytes > t.budget then begin
    t.refused <- t.refused + 1;
    false
  end
  else begin
    while t.resident + bytes > t.budget do
      ignore (evict_lru t)
    done;
    (* External accounting can refuse even under our own budget (the
       machine as a whole is tighter than the cache's cap): make room and
       retry, bounded, exactly like a cache insert stealing its own
       pages. *)
    let rec ensure attempts =
      if t.charge bytes then true
      else if attempts > 0 && evict_lru t > 0 then ensure (attempts - 1)
      else false
    in
    if ensure 32 then begin
      let expires = if t.cfg.ttl <= 0. then infinity else now +. t.cfg.ttl in
      let e = { key; bytes; rels; expires; prev = None; next = None } in
      push_front t e;
      Hashtbl.replace t.table key e;
      List.iter
        (fun r ->
          let bucket =
            match Hashtbl.find_opt t.by_rel r with
            | Some b -> b
            | None ->
                let b = Hashtbl.create 16 in
                Hashtbl.add t.by_rel r b;
                b
          in
          Hashtbl.replace bucket key ())
        rels;
      t.resident <- t.resident + bytes;
      t.stores <- t.stores + 1;
      true
    end
    else begin
      t.refused <- t.refused + 1;
      false
    end
  end

let invalidate t rel =
  match Hashtbl.find_opt t.by_rel rel with
  | None -> (0, 0)
  | Some bucket ->
      (* Sorted for a stable drop order: hook call sequences are part of
         the deterministic surface. *)
      let keys =
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) bucket [])
      in
      List.fold_left
        (fun (n, b) key ->
          match Hashtbl.find_opt t.table key with
          | None -> (n, b)
          | Some e ->
              drop t e `Invalidated;
              (n + 1, b + e.bytes))
        (0, 0) keys

let shrink t n =
  let freed = ref 0 in
  let continue = ref true in
  while !freed < n && !continue do
    let got = evict_lru t in
    if got = 0 then continue := false else freed := !freed + got
  done;
  if !freed > 0 then begin
    t.shrink_calls <- t.shrink_calls + 1;
    t.shrunk <- t.shrunk + !freed
  end;
  !freed

let set_budget t n =
  t.budget <- max 0 n;
  while t.resident > t.budget do
    ignore (evict_lru t)
  done

let budget t = t.budget
let resident t = t.resident
let entries t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key

let demand_hint t =
  let unmet = t.evicted_window in
  t.evicted_window <- 0;
  t.resident + unmet

let hits t = t.hits
let misses t = t.misses
let bypasses t = t.bypasses
let requests t = t.hits + t.misses + t.bypasses
let stores t = t.stores
let refused t = t.refused
let evictions t = t.evictions
let expired t = t.expired
let invalidated t = t.invalidated
let shrinks t = t.shrink_calls
let shrunk_bytes t = t.shrunk

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "midcache: %d entries (%.1f MiB of %.1f MiB), hit rate %.1f%%, %d \
     evictions, %d invalidated, %d expired"
    (entries t)
    (float_of_int t.resident /. 1048576.)
    (float_of_int t.budget /. 1048576.)
    (100. *. hit_rate t) t.evictions t.invalidated t.expired
