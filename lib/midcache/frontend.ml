type t = {
  eng : Sim.Engine.t;
  trace : Obs.Trace.t;
  hit_latency : float;
  cache : Cache.t option;
  fallthrough : Optimizer.Query.t -> (unit, string) result;
  mutable requests : int;
  mutable hits : int;
  mutable misses : int;
  mutable bypasses : int;
  mutable writes : int;
  mutable invalidated_entries : int;
}

let create ?(trace = Obs.Trace.null) ?(hit_latency = 0.02) eng ~cache ~submit
    () =
  {
    eng;
    trace;
    hit_latency;
    cache;
    fallthrough = submit;
    requests = 0;
    hits = 0;
    misses = 0;
    bypasses = 0;
    writes = 0;
    invalidated_entries = 0;
  }

let template_of_qid qid =
  match String.index_opt qid '#' with
  | Some i -> String.sub qid 0 i
  | None -> qid

(* The SQL text ends with a "-- fingerprint <qid>" comment whose serial
   would make every replayed parameterized statement look distinct; the
   cache key is the template plus the statement text proper, so identical
   statements (same shape, same literals) alias as they should. *)
let key_of_query q =
  let sql = Optimizer.Query.to_sql q in
  let marker = "\n-- fingerprint" in
  let mlen = String.length marker in
  let body =
    match String.rindex_opt sql '\n' with
    | Some i
      when String.length sql - i >= mlen && String.sub sql i mlen = marker ->
        String.sub sql 0 i
    | _ -> sql
  in
  template_of_qid q.Optimizer.Query.qid ^ "|" ^ body

(* Simulated result size: each GROUP BY column has ~100 distinct values
   (the SALES catalog's [attr]), so the group count is 100^cols, capped at
   a plausible result-set bound; width is 32 bytes of grouping key plus 16
   per aggregate column (value + null bitmap + per-column overhead).
   Non-aggregate statements are modelled as wide scans with a small LIMIT.
   The sizes are deliberately result-set-scale, not row-count-scale: a
   mid-tier result cache earns its keep (and its broker scrutiny) by
   holding tens to hundreds of MiB. *)
let payload_bytes q =
  match q.Optimizer.Query.agg with
  | None -> 64 * 1024
  | Some a ->
      let cols = List.length a.Optimizer.Query.group_by in
      let rows =
        let rec pow acc n = if n = 0 then acc else pow (acc * 100) (n - 1) in
        min 100_000 (pow 1 (max 0 cols))
      in
      let width = 32 + (16 * (1 + List.length a.Optimizer.Query.sum_cols)) in
      max 1 (rows * width)

let rels_of_query q =
  Array.fold_left
    (fun acc (r : Optimizer.Query.rel) ->
      if List.mem r.rtable acc then acc else r.rtable :: acc)
    [] q.Optimizer.Query.rels
  |> List.rev

let emit t qid ev =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid ev

let submit t q =
  t.requests <- t.requests + 1;
  match t.cache with
  | None ->
      t.bypasses <- t.bypasses + 1;
      t.fallthrough q
  | Some c -> (
      let key = key_of_query q in
      let qid = q.Optimizer.Query.qid in
      match Cache.get c ~now:(Sim.Engine.now t.eng) key with
      | Some bytes ->
          t.hits <- t.hits + 1;
          emit t qid (Obs.Event.Midcache_lookup { hit = true; bytes });
          Sim.Engine.sleep t.hit_latency;
          Ok ()
      | None ->
          t.misses <- t.misses + 1;
          emit t qid (Obs.Event.Midcache_lookup { hit = false; bytes = 0 });
          let r = t.fallthrough q in
          (match r with
          | Ok () ->
              let bytes = payload_bytes q in
              if
                Cache.put c ~now:(Sim.Engine.now t.eng) ~key ~bytes
                  ~rels:(rels_of_query q)
              then
                emit t qid
                  (Obs.Event.Midcache_store
                     { bytes; resident = Cache.resident c })
          | Error _ -> ());
          r)

let write t ~rels =
  t.writes <- t.writes + 1;
  match t.cache with
  | None -> ()
  | Some c ->
      List.iter
        (fun rel ->
          let entries, bytes = Cache.invalidate c rel in
          t.invalidated_entries <- t.invalidated_entries + entries;
          if entries > 0 then
            emit t ""
              (Obs.Event.Midcache_invalidate { relation = rel; entries; bytes }))
        rels

let cache t = t.cache
let requests t = t.requests
let hits t = t.hits
let misses t = t.misses
let bypasses t = t.bypasses
let writes t = t.writes
let invalidated_entries t = t.invalidated_entries
