(** Page replacement policies.

    Pages are identified by [(table, page_no)] pairs of ints. Three classic
    policies are provided; the buffer pool takes the choice as a parameter
    (ablated in the benchmarks: the paper's effect is robust to the
    replacement policy, it is the pool's {e size} that matters). *)

type page = int * int

type kind = Lru | Clock | Lru2

type t

val create : kind -> t

(** [insert t p] makes [p] resident (must not already be). *)
val insert : t -> page -> unit

(** [touch t p] records a hit on a resident page (no-op if absent). *)
val touch : t -> page -> unit

(** [mem t p] — residency test. *)
val mem : t -> page -> bool

(** [evict t] removes and returns the policy's victim, if any page is
    resident. *)
val evict : t -> page option

val size : t -> int

(** Internal bookkeeping entries currently held (queue/ring/heap length,
    including lazily-cleaned stale ones). Kept within a constant factor
    of {!size} by periodic compaction — exposed so tests can pin that
    bound. *)
val backlog : t -> int

val kind : t -> kind
