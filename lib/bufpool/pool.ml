type t = {
  disk : Disk.t;
  clerk : Dbmem.Manager.clerk;
  pbytes : int;
  policy : Policy.t;
  tables : (string, int) Hashtbl.t;
  mutable next_table : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable misses_window : int; (* misses since the last demand_hint call *)
  io_batch_pages : int;
}

let create _eng _manager ~clerk ~disk ~page_bytes ~policy =
  if page_bytes <= 0 then invalid_arg "Pool.create: page_bytes";
  {
    disk;
    clerk;
    pbytes = page_bytes;
    policy = Policy.create policy;
    tables = Hashtbl.create 32;
    next_table = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    misses_window = 0;
    io_batch_pages = 64;
  }

let table_id t name =
  match Hashtbl.find_opt t.tables name with
  | Some id -> id
  | None ->
      let id = t.next_table in
      t.next_table <- id + 1;
      Hashtbl.replace t.tables name id;
      id

(* Make a granule resident. If the manager cannot give us a new granule
   (even after donor reclaim), recycle one of our own via the replacement
   policy; if we own nothing, the page simply is not cached. *)
let admit t page =
  match Dbmem.Manager.alloc t.clerk t.pbytes with
  | Ok () -> Policy.insert t.policy page
  | Error `Out_of_memory -> (
      match Policy.evict t.policy with
      | Some _victim ->
          t.evictions <- t.evictions + 1;
          Policy.insert t.policy page
      | None -> ())

(* Returns true on hit. On miss the page is admitted but NOT yet read --
   the caller batches the physical transfer. *)
let access t page =
  if Policy.mem t.policy page then begin
    Policy.touch t.policy page;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.misses_window <- t.misses_window + 1;
    admit t page;
    false
  end

let read t ~table ~page =
  if not (access t (table, page)) then Disk.read t.disk ~bytes:t.pbytes

let flush_misses t n = if n > 0 then Disk.read t.disk ~bytes:(n * t.pbytes)

let read_range t ~table ~first ~count =
  let pending = ref 0 in
  for page = first to first + count - 1 do
    if not (access t (table, page)) then begin
      incr pending;
      if !pending >= t.io_batch_pages then begin
        flush_misses t !pending;
        pending := 0
      end
    end
  done;
  flush_misses t !pending

let read_random t ~table ~pages ~of_pages ~rng =
  let pending = ref 0 in
  for _ = 1 to pages do
    let page = Sim.Rng.int rng (max 1 of_pages) in
    if not (access t (table, page)) then begin
      incr pending;
      (* Random pages do not coalesce: smaller batches. *)
      if !pending >= 8 then begin
        flush_misses t !pending;
        pending := 0
      end
    end
  done;
  flush_misses t !pending

let shrink t n =
  let freed = ref 0 in
  let continue = ref true in
  while !freed < n && !continue do
    match Policy.evict t.policy with
    | Some _ ->
        t.evictions <- t.evictions + 1;
        Dbmem.Manager.free t.clerk t.pbytes;
        freed := !freed + t.pbytes
    | None -> continue := false
  done;
  !freed

let resident_bytes t = Dbmem.Manager.clerk_used t.clerk

let shrink_to t target =
  let excess = resident_bytes t - target in
  if excess > 0 then shrink t excess else 0

let resident_pages t = Policy.size t.policy
let page_bytes t = t.pbytes
let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  (* 0., not nan: see Plancache.Cache.hit_rate — nan here propagates
     into reports. *)
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let evictions t = t.evictions
let policy_kind t = Policy.kind t.policy

let demand_hint t =
  let unmet = t.misses_window * t.pbytes in
  t.misses_window <- 0;
  resident_bytes t + unmet

let pp ppf t =
  Format.fprintf ppf
    "buffer pool: %d pages (%a), hit rate %.1f%%, %d evictions"
    (resident_pages t) Dbmem.Units.pp_bytes (resident_bytes t)
    (100. *. hit_rate t) t.evictions
