type t = {
  eng : Sim.Engine.t;
  spindles : Sim.Resource.Sem.t;
  seek_s : float;
  throughput : float;
  mutable reads : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  (* Fault injection: a degraded array pays extra latency per transfer and
     delivers a fraction of its nominal bandwidth. *)
  mutable extra_seek_s : float;
  mutable throughput_factor : float;
}

let create eng ~spindles ~seek_s ~throughput_bytes_per_s =
  if spindles < 1 then invalid_arg "Disk.create: spindles";
  if throughput_bytes_per_s <= 0. then invalid_arg "Disk.create: throughput";
  (* RAID-0 stripes every transfer across all spindles: model the array as
     one server with the aggregate bandwidth, so a lone stream gets full
     array speed and concurrent streams share it by queueing. *)
  {
    eng;
    spindles = Sim.Resource.Sem.create eng ~name:"disk" ~capacity:1 ();
    seek_s;
    throughput = float_of_int spindles *. throughput_bytes_per_s;
    reads = 0;
    bytes_read = 0;
    bytes_written = 0;
    extra_seek_s = 0.;
    throughput_factor = 1.;
  }

let set_degradation t ~throughput_factor ~extra_seek_s =
  if throughput_factor <= 0. || throughput_factor > 1. then
    invalid_arg "Disk.set_degradation: throughput_factor not in (0,1]";
  if extra_seek_s < 0. then invalid_arg "Disk.set_degradation: extra_seek_s";
  t.throughput_factor <- throughput_factor;
  t.extra_seek_s <- extra_seek_s

let clear_degradation t =
  t.throughput_factor <- 1.;
  t.extra_seek_s <- 0.

let degraded t = t.throughput_factor < 1. || t.extra_seek_s > 0.

let service_time t ~bytes =
  t.seek_s +. t.extra_seek_s
  +. (float_of_int bytes /. (t.throughput *. t.throughput_factor))

let transfer t ~bytes =
  if bytes < 0 then invalid_arg "Disk: negative transfer";
  if bytes > 0 then begin
    (match Sim.Resource.Sem.acquire t.spindles ~n:1 () with
    | Sim.Resource.Acquired -> ()
    | Sim.Resource.Timed_out -> assert false (* no timeout requested *));
    Sim.Engine.sleep (service_time t ~bytes);
    Sim.Resource.Sem.release t.spindles ~n:1
  end

let read t ~bytes =
  transfer t ~bytes;
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + bytes

let write t ~bytes =
  transfer t ~bytes;
  t.bytes_written <- t.bytes_written + bytes

let reads t = t.reads
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let queue_wait t = Sim.Resource.Sem.wait_stats t.spindles
