type page = int * int
type kind = Lru | Clock | Lru2

(* --- LRU: hashtable of current stamps + lazily-cleaned FIFO of (page,
   stamp) entries; an entry is live iff its stamp is still current. --- *)
module Lru_impl = struct
  type t = {
    stamps : (page, int) Hashtbl.t;
    queue : (page * int) Queue.t;
    mutable clock : int;
  }

  let create () = { stamps = Hashtbl.create 256; queue = Queue.create (); clock = 0 }

  (* Every touch pushes a fresh (page, stamp) pair and only [evict] drops
     stale ones, so a touch-heavy, eviction-free workload grows the queue
     without bound. Once stale entries outnumber live pages, rebuild the
     queue from the live entries (FIFO order preserved); the [max _ 32]
     keeps tiny pools from compacting on every touch. *)
  let compact t =
    let fresh = Queue.create () in
    Queue.iter
      (fun ((p, stamp) as e) ->
        match Hashtbl.find_opt t.stamps p with
        | Some current when current = stamp -> Queue.push e fresh
        | _ -> ())
      t.queue;
    Queue.clear t.queue;
    Queue.transfer fresh t.queue

  let maybe_compact t =
    let live = Hashtbl.length t.stamps in
    if Queue.length t.queue - live > max live 32 then compact t

  let insert t p =
    t.clock <- t.clock + 1;
    Hashtbl.replace t.stamps p t.clock;
    Queue.push (p, t.clock) t.queue;
    maybe_compact t

  let touch t p =
    if Hashtbl.mem t.stamps p then begin
      t.clock <- t.clock + 1;
      Hashtbl.replace t.stamps p t.clock;
      Queue.push (p, t.clock) t.queue;
      maybe_compact t
    end

  let mem t p = Hashtbl.mem t.stamps p

  let rec evict t =
    match Queue.take_opt t.queue with
    | None -> None
    | Some (p, stamp) -> (
        match Hashtbl.find_opt t.stamps p with
        | Some current when current = stamp ->
            Hashtbl.remove t.stamps p;
            Some p
        | _ -> evict t)

  let size t = Hashtbl.length t.stamps
  let backlog t = Queue.length t.queue
end

(* --- CLOCK (second chance): FIFO of nodes with reference bits. --- *)
module Clock_impl = struct
  type node = { page : page; mutable refbit : bool; mutable dead : bool }

  type t = { nodes : (page, node) Hashtbl.t; ring : node Queue.t }

  let create () = { nodes = Hashtbl.create 256; ring = Queue.create () }

  let insert t p =
    let n = { page = p; refbit = false; dead = false } in
    Hashtbl.replace t.nodes p n;
    Queue.push n t.ring

  let touch t p =
    match Hashtbl.find_opt t.nodes p with
    | Some n -> n.refbit <- true
    | None -> ()

  let mem t p = Hashtbl.mem t.nodes p

  let rec evict t =
    match Queue.take_opt t.ring with
    | None -> None
    | Some n when n.dead -> evict t
    | Some n when n.refbit ->
        n.refbit <- false;
        Queue.push n t.ring;
        evict t
    | Some n ->
        n.dead <- true;
        Hashtbl.remove t.nodes n.page;
        Some n.page

  let size t = Hashtbl.length t.nodes
  let backlog t = Queue.length t.ring
end

(* --- LRU-2: evict the page with the oldest penultimate access (pages
   touched only once, t2 = -1, go first in t1 order). Lazily-synced heap
   keyed by (t2, t1). --- *)
module Lru2_impl = struct
  type times = { mutable t1 : int; mutable t2 : int }

  type t = {
    times : (page, times) Hashtbl.t;
    heap : (int * int * page) Sim.Heap.t;
    mutable clock : int;
  }

  let create () =
    {
      times = Hashtbl.create 256;
      heap = Sim.Heap.create ~cmp:compare ();
      clock = 0;
    }

  (* Same lazy-sync bloat as the LRU queue: each touch adds a heap entry
     and only [evict] discards stale ones. Rebuild the heap from the live
     entries once stale ones dominate — the comparator is a total order
     on (t2, t1, page), so re-adding live entries cannot change eviction
     order. *)
  let compact t =
    let entries = Sim.Heap.to_list t.heap in
    Sim.Heap.clear t.heap;
    List.iter
      (fun ((t2, t1, p) as e) ->
        match Hashtbl.find_opt t.times p with
        | Some ts when ts.t1 = t1 && ts.t2 = t2 -> Sim.Heap.add t.heap e
        | _ -> ())
      entries

  let maybe_compact t =
    let live = Hashtbl.length t.times in
    if Sim.Heap.size t.heap - live > max live 32 then compact t

  let push t p (ts : times) = Sim.Heap.add t.heap (ts.t2, ts.t1, p)

  let insert t p =
    t.clock <- t.clock + 1;
    let ts = { t1 = t.clock; t2 = -1 } in
    Hashtbl.replace t.times p ts;
    push t p ts;
    maybe_compact t

  let touch t p =
    match Hashtbl.find_opt t.times p with
    | None -> ()
    | Some ts ->
        t.clock <- t.clock + 1;
        ts.t2 <- ts.t1;
        ts.t1 <- t.clock;
        push t p ts;
        maybe_compact t

  let mem t p = Hashtbl.mem t.times p

  let rec evict t =
    if Sim.Heap.is_empty t.heap then None
    else begin
      let t2, t1, p = Sim.Heap.pop_exn t.heap in
      match Hashtbl.find_opt t.times p with
      | Some ts when ts.t1 = t1 && ts.t2 = t2 ->
          Hashtbl.remove t.times p;
          Some p
      | _ -> evict t
    end

  let size t = Hashtbl.length t.times
  let backlog t = Sim.Heap.size t.heap
end

type t =
  | T_lru of Lru_impl.t
  | T_clock of Clock_impl.t
  | T_lru2 of Lru2_impl.t

let create = function
  | Lru -> T_lru (Lru_impl.create ())
  | Clock -> T_clock (Clock_impl.create ())
  | Lru2 -> T_lru2 (Lru2_impl.create ())

let insert t p =
  match t with
  | T_lru x -> Lru_impl.insert x p
  | T_clock x -> Clock_impl.insert x p
  | T_lru2 x -> Lru2_impl.insert x p

let touch t p =
  match t with
  | T_lru x -> Lru_impl.touch x p
  | T_clock x -> Clock_impl.touch x p
  | T_lru2 x -> Lru2_impl.touch x p

let mem t p =
  match t with
  | T_lru x -> Lru_impl.mem x p
  | T_clock x -> Clock_impl.mem x p
  | T_lru2 x -> Lru2_impl.mem x p

let evict t =
  match t with
  | T_lru x -> Lru_impl.evict x
  | T_clock x -> Clock_impl.evict x
  | T_lru2 x -> Lru2_impl.evict x

let size t =
  match t with
  | T_lru x -> Lru_impl.size x
  | T_clock x -> Clock_impl.size x
  | T_lru2 x -> Lru2_impl.size x

let backlog t =
  match t with
  | T_lru x -> Lru_impl.backlog x
  | T_clock x -> Clock_impl.backlog x
  | T_lru2 x -> Lru2_impl.backlog x

let kind = function T_lru _ -> Lru | T_clock _ -> Clock | T_lru2 _ -> Lru2
