(** Disk latency model: a RAID-0 array of identical spindles.

    RAID-0 stripes every transfer across the whole array, so the model is
    one server with the aggregate bandwidth ([spindles *
    throughput_bytes_per_s]): a lone stream gets full array speed;
    concurrent streams queue and share it — the physical I/O pressure that
    appears in the paper when compilations steal buffer-pool pages. *)

type t

val create :
  Sim.Engine.t ->
  spindles:int ->
  seek_s:float ->
  throughput_bytes_per_s:float ->
  t

(** [read t ~bytes] blocks the calling process for the transfer. *)
val read : t -> bytes:int -> unit

(** [write t ~bytes] — same model as reads (used for spills). *)
val write : t -> bytes:int -> unit

val reads : t -> int
val bytes_read : t -> int
val bytes_written : t -> int

(** Seconds spent queueing for a spindle, across all requests. *)
val queue_wait : t -> Sim.Stats.Online.t

(** {1 Fault injection}

    A degraded array (rebuild in progress, failing spindle) delivers
    [throughput_factor] of nominal bandwidth and pays [extra_seek_s] extra
    latency per transfer. Used by the chaos harness; a freshly created
    disk is never degraded. *)

val set_degradation :
  t -> throughput_factor:float -> extra_seek_s:float -> unit

val clear_degradation : t -> unit
val degraded : t -> bool

(** Estimated service time of one read, without queueing. *)
val service_time : t -> bytes:int -> float
