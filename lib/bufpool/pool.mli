(** The database page buffer pool.

    The pool caches fixed-size page granules keyed by [(table, page_no)].
    It grows opportunistically — every miss tries to allocate a granule
    from the memory manager — and gives memory back in two ways: its own
    replacement policy recycles granules when allocation fails, and the
    {!shrink} entry point (wired to the broker's [Must_shrink] verdict and
    to the manager's donor mechanism) evicts pages to release bytes. This
    is the component the paper's un-throttled compilations starve: as
    compile memory grows, the pool shrinks, the hit rate falls and query
    executions turn into physical I/O. *)

type t

val create :
  Sim.Engine.t ->
  Dbmem.Manager.t ->
  clerk:Dbmem.Manager.clerk ->
  disk:Disk.t ->
  page_bytes:int ->
  policy:Policy.kind ->
  t

(** Intern a table name, returning the id to use in reads. *)
val table_id : t -> string -> int

(** [read t ~table ~page] — one page through the cache. Blocks on a miss
    for the disk transfer. Must run inside a simulation process. *)
val read : t -> table:int -> page:int -> unit

(** [read_range t ~table ~first ~count] reads [count] consecutive pages,
    batching the misses' disk transfers ([io_batch_pages] per transfer). *)
val read_range : t -> table:int -> first:int -> count:int -> unit

(** [read_random t ~table ~pages ~of_pages ~rng] reads [pages] pages drawn
    uniformly from [\[0, of_pages)] (index lookups). *)
val read_random :
  t -> table:int -> pages:int -> of_pages:int -> rng:Sim.Rng.t -> unit

(** [shrink t n] evicts pages until [n] bytes have been released (or the
    pool is empty); returns the bytes actually freed. *)
val shrink : t -> int -> int

(** [shrink_to t target] shrinks until resident bytes <= target. *)
val shrink_to : t -> int -> int

val resident_bytes : t -> int
val resident_pages : t -> int
val page_bytes : t -> int
val hits : t -> int
val misses : t -> int

(** Hit fraction over all reads so far ([0.] before any read). *)
val hit_rate : t -> float

val evictions : t -> int
val policy_kind : t -> Policy.kind

(** [demand_hint t] is the pool's current memory demand: resident bytes
    plus the bytes missed since the previous call (unmet demand). Sampled
    periodically by the broker; each call resets the miss window. *)
val demand_hint : t -> int
val pp : Format.formatter -> t -> unit
