type t = {
  eng : Sim.Engine.t;
  gtrace : Obs.Trace.t;
  sem : Sim.Resource.Sem.t;
  clerk : Dbmem.Manager.clerk;
  max_query_frac : float;
  min_grant : int;
  timeout : float;
}

let create eng _manager ?(trace = Obs.Trace.null) ~clerk ~total
    ?(max_query_frac = 0.25) ?(min_grant = 1024 * 1024) ?(timeout = 300.) () =
  if total <= 0 then invalid_arg "Grant.create: total";
  if not (max_query_frac > 0. && max_query_frac <= 1.) then
    invalid_arg "Grant.create: max_query_frac";
  {
    eng;
    gtrace = trace;
    sem = Sim.Resource.Sem.create eng ~name:"grants" ~capacity:total ();
    clerk;
    max_query_frac;
    min_grant;
    timeout;
  }

let trace t = t.gtrace

let emit t ~qid phase ~bytes =
  if Obs.Trace.enabled t.gtrace then
    Obs.Trace.emit t.gtrace ~time:(Sim.Engine.now t.eng) ~qid
      (Obs.Event.Grant { phase; bytes })

let target_grant t ~ideal =
  let cap =
    int_of_float (t.max_query_frac *. float_of_int (Sim.Resource.Sem.capacity t.sem))
  in
  max (min ideal t.min_grant) (min ideal cap)

let acquire t ?(qid = "") ~ideal () =
  if ideal < 0 then invalid_arg "Grant.acquire: negative";
  let n = target_grant t ~ideal in
  emit t ~qid Obs.Event.Wait ~bytes:n;
  match Sim.Resource.Sem.acquire t.sem ~timeout:t.timeout ~n () with
  | Sim.Resource.Timed_out ->
      emit t ~qid Obs.Event.Timeout ~bytes:n;
      (* Timed out queued for workspace memory: SQL Server 8645. *)
      Error (Health.Error.make ~detail:"grant" Health.Error.Memory_wait_timeout)
  | Sim.Resource.Acquired -> (
      (* Reserve physically so the broker sees execution memory; donors
         (caches) are shrunk if needed. *)
      match Dbmem.Manager.alloc t.clerk n with
      | Ok () ->
          emit t ~qid Obs.Event.Acquired ~bytes:n;
          Ok n
      | Error `Out_of_memory ->
          Sim.Resource.Sem.release t.sem ~n;
          emit t ~qid Obs.Event.Timeout ~bytes:n;
          (* The semaphore said yes but physical memory could not be
             produced — the grant is unavailable under low-memory
             conditions: SQL Server 8651. *)
          Error
            (Health.Error.make ~detail:"exec"
               Health.Error.Low_memory_condition))

let release t ?(qid = "") n =
  if n > 0 then begin
    Dbmem.Manager.free t.clerk n;
    Sim.Resource.Sem.release t.sem ~n;
    emit t ~qid Obs.Event.Release ~bytes:n
  end

let min_grant t = t.min_grant
let set_total t n = Sim.Resource.Sem.set_capacity t.sem n
let total t = Sim.Resource.Sem.capacity t.sem
let in_use t = Sim.Resource.Sem.in_use t.sem
let queued t = Sim.Resource.Sem.queued t.sem
let timeouts t = Sim.Resource.Sem.timeouts t.sem
let grants t = Sim.Resource.Sem.grants t.sem
let wait_stats t = Sim.Resource.Sem.wait_stats t.sem
