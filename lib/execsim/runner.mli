(** Simulated execution of a physical plan.

    The runner turns a costed {!Optimizer.Plan.t} into resource demand:
    page reads through the buffer pool (so execution speed depends on how
    much of the pool compilations have stolen), CPU slices through the
    shared processor pool, a workspace grant held for the duration, and
    spill I/O when the grant falls short of the plan's ideal. Wall-clock
    duration emerges from contention rather than being drawn from a
    distribution. *)

type resources = {
  eng : Sim.Engine.t;
  cpu : Cpu.t;
  pool : Bufpool.Pool.t;
  disk : Bufpool.Disk.t;
  grants : Grant.t;
  rng : Sim.Rng.t;
}

type config = {
  cpu_seconds_per_cost : float;
      (** converts {!Optimizer.Plan.cpu_cost} units into CPU seconds *)
  spill_io_factor : float;
      (** bytes of extra disk traffic per byte of grant shortfall (write
          out + read back = 2.0) *)
  io_interleave : int;  (** pages read between CPU slices *)
  cost_page_bytes : int;
      (** page size the cost model counted pages in (converted to pool
          granules here) *)
}

val default_config : config

type outcome = {
  duration : float;  (** wall-clock seconds the execution took *)
  granted : int;
  ideal : int;
  pages_read : int;
  spilled : bool;
}

(** [run ?grant_cap res config plan] — must be called from a simulation
    process. The grant is always released, also on error. [grant_cap]
    bounds the bytes requested from the semaphore (degraded, spill-heavy
    execution under memory pressure); spill volume is still measured
    against the plan's ideal. [qid] labels trace records; the trace sink
    is the one the grant queue was created with ({!Grant.trace}). Errors
    are the grant queue's: {!Health.Error.Memory_wait_timeout} or
    {!Health.Error.Low_memory_condition}. *)
val run :
  ?grant_cap:int ->
  ?qid:string ->
  resources ->
  config ->
  Optimizer.Plan.t ->
  (outcome, Health.Error.t) result
