(** Execution memory grants (the "resource semaphore").

    Before a query executes, it reserves workspace memory for its hashes
    and sorts. Requests queue in FIFO order against a byte-denominated
    semaphore; a query is granted at most [max_query_frac] of the total
    workspace (large requests are trimmed rather than starved, and spill
    during execution instead). A request that waits longer than [timeout]
    fails with a grant timeout — one of the resource errors the paper's
    experiments count. Granted bytes are also accounted against the
    execution clerk so the broker sees execution memory. *)

type t

val create :
  Sim.Engine.t ->
  Dbmem.Manager.t ->
  ?trace:Obs.Trace.t ->
  clerk:Dbmem.Manager.clerk ->
  total:int ->
  ?max_query_frac:float ->
  ?min_grant:int ->
  ?timeout:float ->
  unit ->
  t

(** The sink this grant queue records into ({!Obs.Trace.null} unless one
    was passed to {!create}). The runner picks its trace up from here. *)
val trace : t -> Obs.Trace.t

(** [acquire t ~ideal ()] blocks until granted. Returns the granted bytes
    ([<= ideal], trimmed to the per-query cap, floored at [min_grant] or
    [ideal] if smaller). [qid] labels the trace records. A wait that
    exceeds the timeout fails with {!Health.Error.Memory_wait_timeout}
    (8645); a grant the manager cannot physically produce fails with
    {!Health.Error.Low_memory_condition} (8651). *)
val acquire :
  t -> ?qid:string -> ideal:int -> unit -> (int, Health.Error.t) result

(** [release t n] returns granted bytes ([n] must be what {!acquire}
    returned). *)
val release : t -> ?qid:string -> int -> unit

(** Adjust the workspace size (broker pressure). In-flight grants are
    unaffected; the change applies to queued and future requests. *)
val set_total : t -> int -> unit

(** The floor below which grants are never trimmed. *)
val min_grant : t -> int

val total : t -> int
val in_use : t -> int
val queued : t -> int
val timeouts : t -> int
val grants : t -> int
val wait_stats : t -> Sim.Stats.Online.t
