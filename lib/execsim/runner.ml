type resources = {
  eng : Sim.Engine.t;
  cpu : Cpu.t;
  pool : Bufpool.Pool.t;
  disk : Bufpool.Disk.t;
  grants : Grant.t;
  rng : Sim.Rng.t;
}

type config = {
  cpu_seconds_per_cost : float;
  spill_io_factor : float;
  io_interleave : int;
  cost_page_bytes : int;
}

let default_config =
  {
    cpu_seconds_per_cost = 4.0e-5;
    spill_io_factor = 2.0;
    io_interleave = 256;
    cost_page_bytes = 8192;
  }

type outcome = {
  duration : float;
  granted : int;
  ideal : int;
  pages_read : int;
  spilled : bool;
}

let run_scan res config ~cpu_share (s : Optimizer.Plan.scan) =
  let table = Bufpool.Pool.table_id res.pool s.Optimizer.Plan.stable in
  (* Plan page counts are in cost-model pages; the pool caches coarser
     granules. *)
  let granules cost_pages =
    let bytes = cost_pages *. float_of_int config.cost_page_bytes in
    max 1
      (int_of_float
         (ceil (bytes /. float_of_int (Bufpool.Pool.page_bytes res.pool))))
  in
  let pages = granules s.Optimizer.Plan.spages in
  let total = max pages (granules s.Optimizer.Plan.stotal_pages) in
  if s.Optimizer.Plan.random_io then
    Bufpool.Pool.read_random res.pool ~table ~pages ~of_pages:total ~rng:res.rng
  else begin
    (* Ad-hoc scans hit different parts of the table: pick a random
       starting offset so working sets of concurrent queries overlap only
       partially. *)
    let first =
      if total > pages then Sim.Rng.int res.rng (total - pages + 1) else 0
    in
    Bufpool.Pool.read_range res.pool ~table ~first ~count:pages
  end;
  Cpu.busy res.cpu cpu_share;
  ignore config;
  pages

let spill_io res ~bytes =
  (* Spilled partitions are written out and read back, in bounded chunks so
     one spill does not monopolise a spindle. *)
  let chunk = 32 * 1024 * 1024 in
  let rec go remaining write =
    if remaining > 0 then begin
      let n = min chunk remaining in
      if write then Bufpool.Disk.write res.disk ~bytes:n
      else Bufpool.Disk.read res.disk ~bytes:n;
      go (remaining - n) write
    end
  in
  go (bytes / 2) true;
  go (bytes / 2) false

let run ?grant_cap ?(qid = "") res config plan =
  let start = Sim.Engine.now res.eng in
  let trace = Grant.trace res.grants in
  let emit ev =
    if Obs.Trace.enabled trace then
      Obs.Trace.emit trace ~time:(Sim.Engine.now res.eng) ~qid ev
  in
  let ideal = Optimizer.Plan.grant_bytes plan in
  (* A capped run asks the semaphore for less than the plan's ideal; the
     shortfall below [ideal] spills, exactly as a trimmed grant would. *)
  let ask = match grant_cap with Some c -> min ideal (max 1 c) | None -> ideal in
  match Grant.acquire res.grants ~qid ~ideal:ask () with
  | Error e -> Error e
  | Ok granted ->
      let finally () = Grant.release res.grants ~qid granted in
      emit Obs.Event.Exec_begin;
      Fun.protect ~finally (fun () ->
          let scans = Optimizer.Plan.scans plan in
          let total_pages =
            List.fold_left
              (fun acc (s : Optimizer.Plan.scan) ->
                acc +. Float.max 1. s.Optimizer.Plan.spages)
              0. scans
          in
          let total_cpu =
            Optimizer.Plan.cpu_cost plan *. config.cpu_seconds_per_cost
          in
          let pages_read =
            List.fold_left
              (fun acc (s : Optimizer.Plan.scan) ->
                let share =
                  total_cpu *. Float.max 1. s.Optimizer.Plan.spages /. total_pages
                in
                acc + run_scan res config ~cpu_share:share s)
              0 scans
          in
          let shortfall = ideal - granted in
          let spilled = shortfall > 0 in
          if spilled then begin
            emit (Obs.Event.Spill { bytes = shortfall });
            spill_io res
              ~bytes:(int_of_float (float_of_int shortfall *. config.spill_io_factor))
          end;
          (* Exec_end here, inside the protected body, so the exec span
             closes before [finally] releases the grant — Chrome B/E pairs
             must nest. *)
          emit (Obs.Event.Exec_end { granted; ideal; spilled; pages = pages_read });
          Ok
            {
              duration = Sim.Engine.now res.eng -. start;
              granted;
              ideal;
              pages_read;
              spilled;
            })
