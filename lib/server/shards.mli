(** The sharded scale-out experiment: shards, router, faults, clients.

    One simulation engine hosts [c_shards] full servers ({!Shard}), a
    machine-level {!Qcore.Arbiter} arbitrating physical memory across
    their managers (a down shard's share is lent to survivors and clawed
    back on rejoin), and a {!Router} placing the parameterized SALES
    workload by consistent hashing with health-aware overflow.

    The headline comparison is [Crash_failover] with and without compile
    gateways: the restarted shard rejoins with an empty plan cache, every
    parameterized template must recompile at once, and the run retains
    most of its no-fault throughput only when gateway throttling
    serialises that storm. *)

type schedule =
  | No_fault
  | Crash_failover
      (** shard 1 crashes a quarter into the measure window and stays
          down for another quarter *)
  | Rolling_restart
      (** every shard crashes in turn, staggered so at most one is down *)
  | Brownout
      (** shard 1 serves at a quarter rate for half the window (the
          hedging scenario) *)

val schedule_name : schedule -> string

type config = {
  c_shards : int;
  c_clients : int;
  c_variants : int;  (** parameterized templates in the workload *)
  c_think : float;
  c_warmup : float;
  c_measure : float;
  c_slice : float;
  c_total : int;  (** machine bytes, split [total/shards] initially *)
  c_gateways : bool;  (** per-shard compile-gateway throttling *)
  c_hedge : bool;  (** hedge submissions to browned-out shards *)
  c_seed : int;
  c_schedule : schedule;
}

val default_config : config
(** 4 shards, 32 clients, 40 variants, 8 GiB machine, gateways on,
    no faults, seed 42. *)

(** The concrete fault specs a config's schedule expands to. *)
val faults_of : config -> Faultsim.Fault.spec list

type shard_result = {
  sh_name : string;
  sh_final_state : string;
  sh_crashes : int;
  sh_stalls : int;
  sh_accepted : int;
  sh_finished : int;
  sh_lost : int;
  sh_refused : int;
  sh_recompiles : int;  (** plan-cache misses since rejoin *)
  sh_cache_hit_rate : float;
  sh_budget_end : int;
}

type outcome = {
  o_config : config;
  slices : (float * float) array;  (** completions per slice, window only *)
  mean_per_slice : float;
  completed : int;  (** successful completions inside the window *)
  submitted : int;
  ok : int;
  failed : int;
  rejected : int;
  spills : int;
  hedges : int;
  hedge_wins : int;
  retries : int;
  in_flight_at_stop : int;
  p50_ms : float;
  p99_ms : float;
  cl_submitted : int;  (** distinct client queries *)
  cl_attempts : int;
      (** router submissions clients made, client-level retries included —
          conserves against {!outcome.submitted} *)
  cl_succeeded : int;
  cl_abandoned : int;
  arb_ticks : int;
  arb_rebalances : int;
  arb_moved : int;
  arb_reclaimed : int;
  max_budget_sum : int;
      (** largest observed sum of shard budgets — stays within the
          machine plus one keepalive byte per pool *)
  shard_results : shard_result list;
}

(** Run one cell. Plain-data in, plain-data out (no closures in either),
    so cells fan out over {!Parallel.Pool} and the outcome survives
    marshalling. Deterministic: a pure function of the config. *)
val run : ?trace:Obs.Trace.t -> config -> outcome

(** Throughput retained under a fault schedule against the same seed's
    no-fault baseline ([fault.mean_per_slice / no_fault.mean_per_slice]). *)
val retention : fault:outcome -> no_fault:outcome -> float
