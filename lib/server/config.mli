(** Server configuration. {!default} models the paper's testbed: 8 CPUs,
    4 GB of memory, 8 SCSI disks in RAID-0 (§5.2). *)

(** Metastable-failure (storm) defense knobs — see DESIGN.md §11. All off
    in {!no_defense}, the default, so pre-existing configurations replay
    their seed byte-for-byte. *)
type defense = {
  d_singleflight : bool;
      (** coalesce concurrent compiles of one canonical statement onto a
          single in-flight optimization ({!Plancache.Singleflight}) *)
  d_sf_wait_s : float;
      (** how long a coalesced follower waits for the leader before
          giving up and compiling solo *)
  d_budget : Resilience.Budget.config option;
      (** per-client retry token bucket; [None] = unconditional retries *)
  d_adaptive_queues : bool;
      (** gateway FIFO->LIFO flip under sustained queue standing *)
  d_lifo_after_s : float;  (** standing time before the flip *)
  d_deadline_shed : bool;
      (** shed gateway waiters whose remaining deadline cannot be met *)
  d_storm : Health.Storm.config;  (** compile-miss storm detector *)
  d_warm_prime : int;
      (** number of hottest templates warm-primed into a rejoining
          shard's plan cache; [0] disables priming *)
}

val no_defense : defense

(** Every defense on at default strength (the storm experiment's
    defenses-on arm). *)
val defended : defense

type t = {
  cpus : int;
  memory_bytes : int;
  page_bytes : int;  (** buffer-pool granule *)
  disk_spindles : int;
  disk_seek_s : float;
  disk_throughput : float;  (** bytes/second per spindle *)
  pool_policy : Bufpool.Policy.kind;
  throttle : Qcore.Throttle_config.t;
  throttle_enabled : bool;
  broker : Qcore.Broker.config;
  optimizer_params : Optimizer.Cascades.params;
  cost_model : Optimizer.Cost.model;
  exec_config : Execsim.Runner.config;
  workspace_frac : float;  (** fraction of memory for execution grants *)
  grant_max_query_frac : float;
  grant_timeout : float;
  min_pool_bytes : int;  (** broker floor for the buffer pool *)
  min_workspace_bytes : int;  (** broker floor / clamp for grants *)
  plan_cache_floor_bytes : int;
      (** bytes of plan cache shielded from donor reclaim and broker
          shrink verdicts; 0 (the default) leaves the cache fully
          donatable, the pre-sharding behaviour *)
  metrics_interval : float;  (** memory sampling period *)
  seed : int;
  resilience : Resilience.t;  (** retry/degrade/shed/deadline policy *)
  supervision : Health.Supervise.config;
      (** watchdog / starvation auditor / circuit breakers / broker
          insistence; {!Health.Supervise.disabled} by default *)
  defense : defense;  (** storm defenses; {!no_defense} by default *)
  faults : Faultsim.Fault.spec list;
      (** chaos schedule injected by {!Experiment.run} / [dbsim chaos];
          empty for benign runs *)
}

val default : unit -> t

(** [default] with the full resilience policy switched on. *)
val resilient : unit -> t

(** [resilient] plus the supervision layer
    ({!Health.Supervise.default}). *)
val supervised : unit -> t

(** [default] with throttling disabled (the paper's baseline lines). *)
val unthrottled : unit -> t

val pp : Format.formatter -> t -> unit
