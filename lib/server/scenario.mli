(** The canonical chaos scenario, shared by [dbsim health], the golden
    health-report test and the supervision property tests, so the CLI and
    the test suite always exercise the same schedule.

    Everything is deterministic in the seed: the same parameters and seed
    replay the same run, byte for byte. *)

(** The default schedule: a 12 GiB external ballast ramping over 600 s
    starting at [at] (the paper's §3 external-pressure transient), plus a
    transient allocation-failure window on the compile clerk for the same
    600 s so the circuit breakers and the error taxonomy see real 701s.
    [ballast_gib = 0.] / [glitch = 0.] drop the respective fault. *)
val chaos_faults :
  ?ballast_gib:float ->
  ?at:float ->
  ?ramp_steps:int ->
  ?step_s:float ->
  ?glitch:float ->
  unit ->
  Faultsim.Fault.spec list

type outcome = {
  dbms : Dbms.t;  (** the server, kept alive for component inspection *)
  report : Health.Report.t;  (** snapshot since the end of warm-up *)
  completed : int;  (** completions since the end of warm-up *)
  faults : Faultsim.Fault.spec list;  (** the schedule that ran *)
  client_stats : Workload.Client.stats;
}

(** [run_chaos ()] builds a server from [config]
    ({!Config.supervised} by default), installs [faults]
    ({!chaos_faults} by default), loads it with [clients] SALES clients
    until [warmup + measure], then keeps the engine running for [drain]
    further seconds with no new submissions so in-flight queries can
    finish — a session still watched after the drain is genuinely stuck.
    Raises [Failure] if any simulation process died. *)
val run_chaos :
  ?config:Config.t ->
  ?faults:Faultsim.Fault.spec list ->
  ?seed:int ->
  ?clients:int ->
  ?warmup:float ->
  ?measure:float ->
  ?drain:float ->
  ?think_mean:float ->
  ?trace:Obs.Trace.t ->
  unit ->
  outcome
