(** Health-aware query routing across shards.

    Placement is consistent hashing: each shard owns [vnodes] points on a
    ring keyed by FNV-1a of the shard name; a query's template hashes
    onto the ring and walks forward to its {e home} shard. The walk skips
    shards that are [Down] and shards whose per-shard circuit breaker
    ({!Health.Breaker}, one cell per shard name) refuses the arrival —
    such placements are {e spills}: the template runs on the next shard
    along until its primary heals, then snaps home (the ring itself never
    changes, so there is no rebalancing step and the cache investment on
    the home shard is waiting when it returns).

    Failures are handled with the same deterministic ladder clients get
    inside one server: retryable errors re-route (the crashed shard now
    refuses instantly, so the retry lands elsewhere) with
    {!Resilience.backoff} jitter from a dedicated split stream, up to
    [max_retries]. Optionally, a submission whose home shard is
    [Browned_out] is {e hedged}: dispatched to the slow primary and, if
    still unresolved after [hedge_after] seconds, also to a healthy
    alternate — first completion wins, the loser's work is wasted. *)

type config = {
  vnodes : int;  (** ring points per shard (placement granularity) *)
  max_retries : int;  (** re-routes after a retryable failure *)
  backoff : Resilience.t;  (** only the backoff parameters are read *)
  hedge_enabled : bool;
  hedge_after : float;  (** seconds before hedging a browned-out shard *)
  breaker : Health.Breaker.config;  (** per-shard breaker policy *)
}

val default_config : config

type t

val create : ?trace:Obs.Trace.t -> ?cfg:config -> Sim.Engine.t -> Shard.t array -> t

(** Route and run one query; must be called from a simulation process.
    [Error Shard_unavailable] with detail ["no shard available"] when
    every shard is down or breaker-refused after all retries.

    [budget], when given, is the calling client's retry token bucket:
    each re-route spends a token {e before} backing off, and a client
    whose bucket is empty fails fast with {!Health.Error.Retry_budget_exhausted}
    instead of amplifying the storm; a successful submission earns back a
    fraction of a token. Without a budget, behaviour is byte-identical to
    before the defense existed. *)
val submit :
  ?budget:Resilience.Budget.t ->
  t ->
  Optimizer.Query.t ->
  (unit, Health.Error.t) result

(** {!submit} with the error rendered for the client callback. *)
val submit_catch :
  ?budget:Resilience.Budget.t -> t -> Optimizer.Query.t -> (unit, string) result

(** Shard indices in ring-walk order for a template (head = home shard).
    Pure; exposed for tests. *)
val preference : t -> template:string -> int list

(** Latencies (µs) of submissions that {e started} at or after this time
    are recorded in {!latency}; default [0.]. *)
val set_measure_from : t -> float -> unit

(** {1 Introspection} *)

val shards : t -> Shard.t array
val breakers : t -> Health.Breaker.t
val latency : t -> Obs.Hist.t

(** Conservation: [submitted = ok + failed + in_flight] at all times;
    [rejected] (no shard available) is a subset of [failed]. *)
val submitted : t -> int

val ok : t -> int
val failed : t -> int
val rejected : t -> int
val spills : t -> int
val hedges : t -> int
val hedge_wins : t -> int

(** Losing hedge completions scrubbed from shard books and breakers —
    with correct accounting, [Array.sum discarded = hedge_losses]. *)
val hedge_losses : t -> int

val retries : t -> int

(** Retries refused because the client's {!Resilience.Budget} was empty. *)
val budget_denials : t -> int

val in_flight : t -> int
val pp : Format.formatter -> t -> unit
