let chaos_faults ?(ballast_gib = 12.) ?(at = 100.) ?(ramp_steps = 240)
    ?(step_s = 2.5) ?(glitch = 0.15) () =
  let window = float_of_int ramp_steps *. step_s in
  (if ballast_gib > 0. then
     Faultsim.Fault.pressure_spike ~ramp_steps ~step_s ~at
       ~bytes:(int_of_float (ballast_gib *. float_of_int (Dbmem.Units.gib 1)))
       ~hold:0. ()
   else [])
  @
  if glitch > 0. then
    [
      Faultsim.Fault.Alloc_glitch
        { at; duration = window; fail_prob = glitch; clerks = [ "compile" ] };
    ]
  else []

type outcome = {
  dbms : Dbms.t;
  report : Health.Report.t;
  completed : int;
  faults : Faultsim.Fault.spec list;
  client_stats : Workload.Client.stats;
}

let run_chaos ?(config = Config.supervised ()) ?faults ?seed ?(clients = 35)
    ?(warmup = 60.) ?(measure = 1000.) ?(drain = 900.) ?(think_mean = 100.)
    ?trace () =
  let faults = match faults with Some f -> f | None -> chaos_faults () in
  let cfg = { config with Config.faults } in
  let cfg =
    match seed with Some s -> { cfg with Config.seed = s } | None -> cfg
  in
  let eng = Sim.Engine.create ~seed:cfg.Config.seed () in
  let dbms = Dbms.create ?trace eng cfg (Workload.Sales.catalog ()) in
  Dbms.start dbms;
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  let stop = warmup +. measure in
  let templates = Workload.Sales.templates () in
  let client_config =
    { Workload.Client.default_config with Workload.Client.think_mean }
  in
  let spawn_burst ~clients ~think_mean ~until =
    let burst_rng = Sim.Rng.split (Sim.Engine.rng eng) in
    for i = 1 to clients do
      Workload.Client.spawn eng burst_rng
        ~name:(Printf.sprintf "burst-%d" i)
        ~templates
        ~submit:(fun q -> Dbms.submit_catch dbms q)
        ~config:{ client_config with Workload.Client.think_mean }
        ~stats ~ids
        ~until:(Float.min until stop)
    done
  in
  ignore (Dbms.install_faults ~spawn_burst dbms);
  let client_rng = Sim.Rng.split (Sim.Engine.rng eng) in
  for i = 1 to clients do
    Workload.Client.spawn eng client_rng
      ~name:(Printf.sprintf "client-%d" i)
      ~templates
      ~submit:(fun q -> Dbms.submit_catch dbms q)
      ~config:client_config ~stats ~ids ~until:stop
  done;
  (* Clients stop submitting at [stop]; the drain window lets in-flight
     queries finish so a session still watched at the end really is stuck,
     not merely truncated by the clock. *)
  Sim.Engine.run eng ~until:(stop +. drain);
  (match Sim.Engine.failures eng with
  | [] -> ()
  | (name, exn, time) :: _ as fs ->
      failwith
        (Printf.sprintf
           "simulation process failures (%d), first: %s at %.1f: %s"
           (List.length fs) name time (Printexc.to_string exn)));
  let report = Dbms.health_report dbms ~since:warmup () in
  {
    dbms;
    report;
    completed = Metrics.total_completions (Dbms.metrics dbms) ~since:warmup ();
    faults;
    client_stats = stats;
  }
