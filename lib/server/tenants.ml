type workload = Sales | Tpch | Snowflake | Light

let workload_name = function
  | Sales -> "sales"
  | Tpch -> "tpch"
  | Snowflake -> "snowflake"
  | Light -> "light"

type spec = {
  tname : string;
  tweight : float;
  tmin_share : float;
  tmax_share : float;
  tclients : int;
  tthink_mean : float;
  tworkload : workload;
}

(* The noisy tenant runs the ad-hoc SALES mix with many impatient
   clients (compile-memory hungry, nothing cacheable); the victim runs
   steady TPC-H; the light tenant hammers one templated diagnostic that
   is all plan-cache hits after warmup. Floors sum to 0.6, leaving 40%
   of the machine as lendable surplus. *)
let default_specs () =
  [
    {
      tname = "noisy";
      tweight = 1.0;
      tmin_share = 0.2;
      tmax_share = 0.65;
      tclients = 24;
      tthink_mean = 40.;
      tworkload = Sales;
    };
    {
      tname = "victim";
      tweight = 1.0;
      tmin_share = 0.3;
      tmax_share = 0.65;
      tclients = 12;
      (* Short think time keeps the victim execution-bound: its
         throughput tracks query latency, so losing buffer-pool memory
         to a neighbour shows up in completions rather than vanishing
         into client idle time. *)
      tthink_mean = 10.;
      tworkload = Tpch;
    };
    {
      tname = "light";
      tweight = 0.5;
      tmin_share = 0.1;
      tmax_share = 0.3;
      tclients = 8;
      tthink_mean = 30.;
      tworkload = Light;
    };
  ]

type mode = Isolated | Free_for_all | Static

let mode_name = function
  | Isolated -> "isolated"
  | Free_for_all -> "free-for-all"
  | Static -> "static"

(* Free_for_all drops the guarantees but keeps the same demand-driven
   arbitration — the delta against Isolated is purely the floors/caps.
   The token 2% floor keeps an idle pool alive (one quantum, as a real
   resource governor would) without protecting it from a noisy
   neighbour in any meaningful way. *)
let shares_of ~mode s =
  match mode with
  | Free_for_all -> (0.02, 1.)
  | Isolated | Static -> (s.tmin_share, s.tmax_share)

let claims_of ~mode specs =
  List.map
    (fun s ->
      let min_share, max_share = shares_of ~mode s in
      { Qcore.Arbiter.weight = s.tweight; min_share; max_share; predicted = 0 })
    specs

let initial_budgets ~mode ~total specs =
  Qcore.Arbiter.plan ~total (claims_of ~mode specs)

(* The victim runs TPC-H at scale factor 1, not the paper-scale 100: a
   36 GB lineitem can never fit a GiB-scale pool, so sf-100 executions
   take tens of simulated minutes and no window would measure a
   throughput baseline. At sf 1 the hot set (~1 GB) fits the victim's
   isolated budget and stops fitting when a noisy neighbour strips it —
   exactly the effect the experiment isolates. *)
let tpch_sf = 1.

let catalog_of = function
  | Sales | Light -> Workload.Sales.catalog ()
  | Tpch -> Workload.Tpch.catalog ~sf:tpch_sf ()
  | Snowflake -> Workload.Snowflake.catalog ()

let templates_of = function
  | Sales -> Workload.Sales.templates ()
  | Tpch -> Workload.Tpch.templates ~sf:tpch_sf ()
  | Snowflake -> Workload.Snowflake.templates ()
  | Light -> [ Workload.Sales.diagnostic_template () ]

type tenant_result = {
  rname : string;
  rworkload : workload;
  rclients : int;
  slices : (float * float) array;
  mean_per_slice : float;
  completed : int;
  submitted : int;
  succeeded : int;
  abandoned : int;
  errors : int;
  budget_start : int;
  budget_end : int;
  floor : int;
  pool_hit_rate : float;
  cache_hit_rate : float;
}

type outcome = {
  omode : mode;
  oseed : int;
  ototal : int;
  owarmup : float;
  omeasure : float;
  oslice : float;
  tenants : tenant_result list;
  arb_ticks : int;
  arb_rebalances : int;
  arb_moved : int;
  arb_reclaimed : int;
  arb_scarce : bool;
}

(* One live pool: the tenant's server plus its measurement plumbing. *)
type live = {
  l_spec : spec;
  l_dbms : Dbms.t;
  l_templates : Workload.Template.t list;
  l_series : Sim.Series.t;
  l_stats : Workload.Client.stats;
  l_errors : int ref;
  l_budget0 : int;
  l_floor : int;
  l_pool : Qcore.Arbiter.pool option;
}

let arbiter_config =
  {
    Qcore.Arbiter.interval = 2.0;
    horizon = 5.0;
    window = 10;
    deadband = 8 * 1024 * 1024;
  }

let run ?(specs = []) ?budgets ?trace ~mode ~total_bytes ~seed ~warmup ~measure
    ~slice () =
  let specs = if specs = [] then default_specs () else specs in
  let budgets =
    match budgets with
    | Some bs ->
        if List.length bs <> List.length specs then
          invalid_arg "Tenants.run: budgets/specs length mismatch";
        bs
    | None -> initial_budgets ~mode ~total:total_bytes specs
  in
  let eng = Sim.Engine.create ~seed () in
  let arbiter =
    match mode with
    | Static -> None
    | Isolated | Free_for_all ->
        Some (Qcore.Arbiter.create ?trace eng ~total:total_bytes arbiter_config)
  in
  let stop = warmup +. measure in
  let lives =
    List.map2
      (fun s budget ->
        let base = Config.default () in
        (* The pool's broker floors must fit inside a pool that may be a
           small slice of the machine. *)
        let cfg =
          {
            base with
            Config.memory_bytes = budget;
            seed;
            min_pool_bytes = min base.Config.min_pool_bytes (budget / 8);
            min_workspace_bytes =
              min base.Config.min_workspace_bytes (budget / 8);
          }
        in
        let dbms = Dbms.create ?trace eng cfg (catalog_of s.tworkload) in
        Dbms.start dbms;
        let l_pool =
          match arbiter with
          | None -> None
          | Some arb ->
              let manager = Dbms.manager dbms in
              let reserved =
                (Dbms.config dbms).Config.broker.Qcore.Broker.reserved_fraction
              in
              (* The pool's demand signal is its broker's aggregate
                 prediction, scaled back up by the reserved fraction the
                 broker holds out — so the arbiter sizes the whole pool,
                 not just its brokered part. *)
              let demand () =
                int_of_float
                  (float_of_int (Qcore.Broker.predicted_total (Dbms.broker dbms))
                  /. (1. -. reserved))
              in
              let min_share, max_share = shares_of ~mode s in
              Some
                (Qcore.Arbiter.register arb ~name:s.tname ~weight:s.tweight
                   ~min_share ~max_share ~budget
                   ~used:(fun () -> Dbmem.Manager.used manager)
                   ~demand
                   ~set_budget:(fun b -> Dbmem.Manager.set_total manager b)
                   ~reclaim:(fun n -> Dbms.reclaim dbms n)
                   ())
        in
        let min_share, _ = shares_of ~mode s in
        {
          l_spec = s;
          l_dbms = dbms;
          l_templates = templates_of s.tworkload;
          l_series = Sim.Series.create ~name:s.tname ();
          l_stats = Workload.Client.make_stats ();
          l_errors = ref 0;
          l_budget0 = budget;
          l_floor = int_of_float (min_share *. float_of_int total_bytes);
          l_pool;
        })
      specs budgets
  in
  (match arbiter with None -> () | Some arb -> Qcore.Arbiter.start arb);
  (* One id counter across every tenant: qids stay globally unique, so a
     run with fewer tenants leaves the survivors' qids unchanged. *)
  let ids = ref 0 in
  List.iter
    (fun l ->
      let s = l.l_spec in
      (* Client randomness is keyed by (seed, tenant name), not by split
         order, so a tenant's query stream is identical whether it runs
         solo or with neighbours. *)
      let rng = Sim.Rng.create (seed lxor Hashtbl.hash s.tname) in
      let submit q =
        let r = Dbms.submit_catch l.l_dbms q in
        (match r with
        | Ok () -> Sim.Series.add l.l_series ~time:(Sim.Engine.now eng) 1.
        | Error _ -> incr l.l_errors);
        r
      in
      for i = 1 to s.tclients do
        Workload.Client.spawn eng rng
          ~name:(Printf.sprintf "%s-%d" s.tname i)
          ~templates:l.l_templates ~submit
          ~config:
            {
              Workload.Client.default_config with
              Workload.Client.think_mean = s.tthink_mean;
            }
          ~stats:l.l_stats ~ids ~until:stop
      done)
    lives;
  Sim.Engine.run eng ~until:stop;
  (match Sim.Engine.failures eng with
  | [] -> ()
  | (name, exn, time) :: _ as fs ->
      failwith
        (Printf.sprintf
           "tenant simulation process failures (%d), first: %s at %.1f: %s"
           (List.length fs) name time (Printexc.to_string exn)));
  let tenants =
    List.map
      (fun l ->
        let slices =
          Sim.Series.bucket_sum l.l_series ~start:warmup ~stop ~width:slice
        in
        let mean_per_slice =
          if Array.length slices = 0 then 0.
          else
            Array.fold_left (fun a (_, v) -> a +. v) 0. slices
            /. float_of_int (Array.length slices)
        in
        let completed =
          Array.length (Sim.Series.values_between l.l_series ~start:warmup ~stop)
        in
        {
          rname = l.l_spec.tname;
          rworkload = l.l_spec.tworkload;
          rclients = l.l_spec.tclients;
          slices;
          mean_per_slice;
          completed;
          submitted = l.l_stats.Workload.Client.submitted;
          succeeded = l.l_stats.Workload.Client.succeeded;
          abandoned = l.l_stats.Workload.Client.abandoned;
          errors = !(l.l_errors);
          budget_start = l.l_budget0;
          budget_end =
            (match l.l_pool with
            | Some p -> Qcore.Arbiter.budget p
            | None -> l.l_budget0);
          floor = l.l_floor;
          pool_hit_rate = Bufpool.Pool.hit_rate (Dbms.pool l.l_dbms);
          cache_hit_rate = Plancache.Cache.hit_rate (Dbms.plan_cache l.l_dbms);
        })
      lives
  in
  {
    omode = mode;
    oseed = seed;
    ototal = total_bytes;
    owarmup = warmup;
    omeasure = measure;
    oslice = slice;
    tenants;
    arb_ticks = (match arbiter with Some a -> Qcore.Arbiter.ticks a | None -> 0);
    arb_rebalances =
      (match arbiter with Some a -> Qcore.Arbiter.rebalances a | None -> 0);
    arb_moved =
      (match arbiter with Some a -> Qcore.Arbiter.moved_bytes a | None -> 0);
    arb_reclaimed =
      (match arbiter with Some a -> Qcore.Arbiter.reclaimed_bytes a | None -> 0);
    arb_scarce =
      (match arbiter with Some a -> Qcore.Arbiter.scarce a | None -> false);
  }

let solo ?(specs = []) ?trace ~victim ~total_bytes ~seed ~warmup ~measure ~slice
    () =
  let specs = if specs = [] then default_specs () else specs in
  let v =
    try List.find (fun s -> s.tname = victim) specs
    with Not_found -> invalid_arg ("Tenants.solo: no tenant named " ^ victim)
  in
  (* The solo budget is what the tenant would start with among the full
     cast — same pool size, no neighbours. *)
  let budget =
    List.fold_left2
      (fun acc s b -> if s.tname = victim then b else acc)
      0 specs
      (initial_budgets ~mode:Isolated ~total:total_bytes specs)
  in
  run ~specs:[ v ] ~budgets:[ budget ] ?trace ~mode:Static ~total_bytes ~seed
    ~warmup ~measure ~slice ()

let find_tenant o name = List.find (fun r -> r.rname = name) o.tenants

let retention ~shared ~solo =
  if solo.mean_per_slice <= 0. then 0.
  else shared.mean_per_slice /. solo.mean_per_slice
