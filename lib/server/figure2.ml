let mib = Dbmem.Units.mib

type result = {
  series : Sim.Series.t array;
  trace : Obs.Trace.t;
  failures : int;
}

(* A deliberately tight ladder on a small machine so the blocking is
   visible, mirroring the paper's simplified example. *)
let ladder =
  {
    Qcore.Throttle_config.dynamic = false;
    levels =
      [
        { Qcore.Throttle_config.lname = "first"; base_threshold = mib 4;
          slots = Qcore.Throttle_config.Total 2; timeout = 10_000.;
          fraction = 1.0; min_threshold = mib 4; max_threshold = mib 4 };
        { Qcore.Throttle_config.lname = "second"; base_threshold = mib 32;
          slots = Qcore.Throttle_config.Total 1; timeout = 10_000.;
          fraction = 0.35; min_threshold = mib 32; max_threshold = mib 32 };
        { Qcore.Throttle_config.lname = "third"; base_threshold = mib 128;
          slots = Qcore.Throttle_config.Total 1; timeout = 10_000.;
          fraction = 0.45; min_threshold = mib 128; max_threshold = mib 128 };
      ];
  }

let ladder_slots =
  List.map
    (fun (l : Qcore.Throttle_config.level) ->
      (l.Qcore.Throttle_config.lname,
       Qcore.Throttle_config.slot_count l.Qcore.Throttle_config.slots ~cpus:1))
    ladder.Qcore.Throttle_config.levels

let run ?(seed = 7) ?(qseed = 11) ?(trace = Obs.Trace.null) ?(until = 600.) () =
  let eng = Sim.Engine.create ~seed () in
  let manager = Dbmem.Manager.create ~total:(Dbmem.Units.gib 1) () in
  if Obs.Trace.enabled trace then
    Dbmem.Manager.set_trace manager ~now:(fun () -> Sim.Engine.now eng) trace;
  let clerk = Dbmem.Manager.create_clerk manager "compile" in
  let gov =
    Qcore.Compile_gov.create eng manager ~trace ~clerk ~cpus:1 ~config:ladder
      ~enabled:true ()
  in
  let cpu = Execsim.Cpu.create eng ~cores:1 () in
  let cat = Workload.Sales.catalog () in
  let rng = Sim.Rng.create qseed in
  let templates = Array.of_list (Workload.Sales.templates ()) in
  let sessions = Array.make 3 None in
  let series =
    Array.init 3 (fun i -> Sim.Series.create ~name:(Printf.sprintf "Q%d" (i + 1)) ())
  in
  let params =
    { Optimizer.Cascades.default_params with
      Optimizer.Cascades.max_tasks = 14_000; min_tasks = 14_000;
      honor_stop_early = false }
  in
  (* The background task (the "other queries, not shown" of the paper's
     example) holds the first two monitors for the first 60 seconds, so Q1
     itself experiences blocking. *)
  Sim.Engine.spawn eng ~name:"background" (fun () ->
      let s = Qcore.Compile_gov.begin_compile ~qid:"background" gov in
      (match Qcore.Compile_gov.alloc s (mib 40) with Ok () -> () | Error _ -> ());
      Sim.Engine.sleep 60.;
      Qcore.Compile_gov.end_compile s);
  let spawn_query i ~delay ~template =
    let qid = Printf.sprintf "Q%d" (i + 1) in
    Sim.Engine.spawn eng ~name:qid ~delay (fun () ->
        let q = Workload.Template.instance rng templates.(template) ~id:i in
        let session = Qcore.Compile_gov.begin_compile ~qid gov in
        sessions.(i) <- Some session;
        let env =
          {
            Optimizer.Env.alloc =
              (fun n ->
                match Qcore.Compile_gov.alloc session n with
                | Ok () -> ()
                | Error _ ->
                    raise (Optimizer.Env.Aborted Optimizer.Env.Out_of_memory));
            cpu = (fun s -> Execsim.Cpu.busy cpu s);
            should_stop = (fun () -> false);
          }
        in
        (match
           Optimizer.Cascades.optimize ~params ~env Optimizer.Cost.default cat q
         with
        | Ok _ -> ()
        | Error _ -> ());
        Qcore.Compile_gov.end_compile session;
        sessions.(i) <- None)
  in
  (* Q1 and Q2 start almost together (Q1 gets more CPU early), Q3 later. *)
  spawn_query 0 ~delay:2.0 ~template:4;
  spawn_query 1 ~delay:6.0 ~template:0;
  spawn_query 2 ~delay:30.0 ~template:5;
  let sampler =
    Sim.Engine.every eng ~interval:2.0 (fun () ->
        Array.iteri
          (fun i _ ->
            let usage =
              match sessions.(i) with
              | Some session -> Qcore.Compile_gov.usage session
              | None -> 0
            in
            Sim.Series.add series.(i) ~time:(Sim.Engine.now eng)
              (float_of_int usage))
          series)
  in
  Sim.Engine.run eng ~until;
  Sim.Engine.cancel sampler;
  { series; trace; failures = List.length (Sim.Engine.failures eng) }
