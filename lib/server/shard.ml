(* One failure domain of a sharded deployment: a full server (manager,
   broker, gateways, plan cache) plus the lifecycle state a router needs
   to steer around it. The sim cannot kill an effect-suspended process,
   so a crash is modelled with epochs: queries in flight when the shard
   dies keep running, but their completions are counted as lost
   connections (the client saw the TCP reset, not the result) — which is
   exactly what a crashed server does to its clients. *)

type lifecycle = Up | Browned_out | Down | Recovering

let lifecycle_name = function
  | Up -> "up"
  | Browned_out -> "browned-out"
  | Down -> "down"
  | Recovering -> "recovering"

let lifecycle_code = function
  | Up -> 0
  | Browned_out -> 1
  | Down -> 2
  | Recovering -> 3

type t = {
  eng : Sim.Engine.t;
  trace : Obs.Trace.t;
  s_name : string;
  index : int;
  dbms : Dbms.t;
  probation : float;
  mutable state : lifecycle;
  mutable epoch : int;
  mutable inflight : int;
  mutable accepted : int;
  mutable finished : int;
  mutable lost : int;
  mutable refused : int;
  mutable discarded : int;
      (* completions scrubbed from the books because the client already
         took another shard's answer (losing hedges) *)
  mutable crashes : int;
  mutable stalls : int;
  mutable misses_at_rejoin : int;
  mutable rejoined : bool;
  mutable arb_pool : Qcore.Arbiter.pool option;
}

let create ?(trace = Obs.Trace.null) ?(probation = 30.) eng ~index ~name cfg
    cat =
  let dbms = Dbms.create ~trace eng cfg cat in
  Dbms.start dbms;
  {
    eng;
    trace;
    s_name = name;
    index;
    dbms;
    probation;
    state = Up;
    epoch = 0;
    inflight = 0;
    accepted = 0;
    finished = 0;
    lost = 0;
    refused = 0;
    discarded = 0;
    crashes = 0;
    stalls = 0;
    misses_at_rejoin = 0;
    rejoined = false;
    arb_pool = None;
  }

let name t = t.s_name
let index t = t.index
let dbms t = t.dbms
let state t = t.state
let inflight t = t.inflight
let accepted t = t.accepted
let finished t = t.finished
let lost t = t.lost
let refused t = t.refused
let discarded t = t.discarded
let crashes t = t.crashes
let stalls t = t.stalls
let set_pool t p = t.arb_pool <- Some p
let pool t = t.arb_pool

let budget t =
  match t.arb_pool with
  | Some p -> Qcore.Arbiter.budget p
  | None -> (Dbms.config t.dbms).Config.memory_bytes

(* Cold-cache cost actually paid: plan-cache misses accumulated since the
   last rejoin, i.e. the recompilation storm the restarted shard rode
   out. Zero until a crash-restart cycle completes. *)
let recompiles_after_rejoin t =
  if not t.rejoined then 0
  else Plancache.Cache.misses (Dbms.plan_cache t.dbms) - t.misses_at_rejoin

let transition t to_state =
  if t.state <> to_state then begin
    let from_state = lifecycle_name t.state in
    t.state <- to_state;
    if Obs.Trace.enabled t.trace then
      Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid:""
        (Obs.Event.Shard_state
           { shard = t.s_name; from_state; to_state = lifecycle_name to_state })
  end

let set_offline t v =
  match t.arb_pool with
  | None -> ()
  | Some p -> Qcore.Arbiter.set_offline p v

let restart t =
  (* Rejoin honestly: whatever the crash flush and the arbiter's lending
     left in the caches stays gone; every parameterized template must
     recompile under the gateways. *)
  t.misses_at_rejoin <- Plancache.Cache.misses (Dbms.plan_cache t.dbms);
  t.rejoined <- true;
  transition t Recovering;
  set_offline t false;
  (* Warm-prime the rejoining cache (config-gated; warm_prime is a no-op
     at d_warm_prime = 0): one spawned process recompiles the hottest
     templates, and with singleflight on the storming clients coalesce
     onto those priming compiles instead of stampeding the gateways. *)
  if (Dbms.config t.dbms).Config.defense.Config.d_warm_prime > 0 then
    Sim.Engine.spawn t.eng ~name:(t.s_name ^ ":warm-prime") (fun () ->
        Dbms.warm_prime t.dbms);
  let epoch0 = t.epoch in
  ignore
    (Sim.Engine.schedule t.eng ~delay:t.probation (fun () ->
         if t.state = Recovering && t.epoch = epoch0 then transition t Up))

let crash t ~restart_delay =
  if t.state <> Down then begin
    t.crashes <- t.crashes + 1;
    (* Every in-flight connection is lost: bump the epoch so completions
       started before this instant are discounted on return. *)
    t.epoch <- t.epoch + 1;
    transition t Down;
    (* The dead process's memory is gone. The plan cache is flushed
       directly — a protective floor shields it from the donor walk, but
       not from the process dying — then the donor chain drops the buffer
       pool, and the share is handed to the survivors. *)
    let cache = Dbms.plan_cache t.dbms in
    ignore (Plancache.Cache.shrink cache (Plancache.Cache.bytes cache));
    ignore (Dbms.reclaim t.dbms (Dbmem.Manager.used (Dbms.manager t.dbms)));
    set_offline t true;
    let epoch0 = t.epoch in
    ignore
      (Sim.Engine.schedule t.eng ~delay:restart_delay (fun () ->
           if t.state = Down && t.epoch = epoch0 then restart t))
  end

let stall t ~duration ~slow_factor =
  if t.state = Up || t.state = Recovering || t.state = Browned_out then begin
    t.stalls <- t.stalls + 1;
    transition t Browned_out;
    Bufpool.Disk.set_degradation (Dbms.disk t.dbms)
      ~throughput_factor:slow_factor ~extra_seek_s:0.;
    let epoch0 = t.epoch in
    ignore
      (Sim.Engine.schedule t.eng ~delay:duration (fun () ->
           if t.epoch = epoch0 && t.state = Browned_out then begin
             Bufpool.Disk.clear_degradation (Dbms.disk t.dbms);
             transition t Up
           end))
  end

(* A completion's booking tag, so a hedged dispatch whose answer the
   client never took can be scrubbed from the books with {!uncount}. *)
type booking = [ `Refused | `Lost | `Finished ]

let submit_tracked t q =
  match t.state with
  | Down ->
      t.refused <- t.refused + 1;
      ( Error
          (Health.Error.make ~detail:t.s_name Health.Error.Shard_unavailable),
        `Refused )
  | Up | Browned_out | Recovering ->
      let epoch0 = t.epoch in
      t.accepted <- t.accepted + 1;
      t.inflight <- t.inflight + 1;
      let r = Dbms.submit t.dbms q in
      t.inflight <- t.inflight - 1;
      if t.epoch <> epoch0 then begin
        (* The shard died while this query ran; whatever the engine
           computed, the client's connection is gone. *)
        t.lost <- t.lost + 1;
        ( Error
            (Health.Error.make
               ~detail:(t.s_name ^ " connection-lost")
               Health.Error.Shard_unavailable),
          `Lost )
      end
      else begin
        t.finished <- t.finished + 1;
        (r, `Finished)
      end

let submit t q = fst (submit_tracked t q)

(* Scrub a hedge loser's completion: the client took the other shard's
   answer, so this dispatch must not count as served work (or as a
   refusal) in the shard's books — [accepted = finished + lost] keeps
   holding because an accepted loser leaves both sides. *)
let uncount t (b : booking) =
  t.discarded <- t.discarded + 1;
  match b with
  | `Refused -> t.refused <- t.refused - 1
  | `Lost ->
      t.accepted <- t.accepted - 1;
      t.lost <- t.lost - 1
  | `Finished ->
      t.accepted <- t.accepted - 1;
      t.finished <- t.finished - 1

let sample t =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid:""
      (Obs.Event.Shard_sample
         {
           shard = t.s_name;
           s_state = lifecycle_code t.state;
           s_inflight = t.inflight;
           s_budget = budget t;
         })

let pp ppf t =
  Format.fprintf ppf
    "%s: %s, %d in flight, %d accepted, %d finished, %d lost, %d refused, \
     %d crashes, %d stalls"
    t.s_name (lifecycle_name t.state) t.inflight t.accepted t.finished t.lost
    t.refused t.crashes t.stalls
