(** The assembled DBMS: memory manager and broker, compile governor and
    optimizer, plan cache, buffer pool, execution grants and CPU pool,
    wired exactly as §3-4 describe.

    {!submit} is the whole life of a query — plan-cache probe, governed
    compilation, grant acquisition, simulated execution — and must be
    called from a simulation process (it blocks at gateways, grants, CPUs
    and the disk). *)

type t

(** [create ?trace eng cfg cat]. [trace], when an enabled sink, is threaded
    through every subsystem: the broker, the gateway monitors, the compile
    governor, the grant queue, the runner, the memory manager and the
    metrics sampler all record into it. Tracing never consumes randomness
    or simulated time, so a traced run is event-for-event identical to an
    untraced one. *)
val create : ?trace:Obs.Trace.t -> Sim.Engine.t -> Config.t -> Optimizer.Catalog.t -> t

(** Queries are named ["<template>#<serial>"]; this strips the serial
    (identity on ids without a ['#']). Breakers and routers key on it. *)
val template_of_qid : string -> string

(** Start the broker ticks and memory sampling. *)
val start : t -> unit

(** Process-blocking end-to-end query execution: plan-cache probe,
    breaker and admission control, governed compilation (with the
    degradation ladder), grant acquisition, simulated execution — plus
    the configured retry policy around the transient failure modes. With
    [config.resilience = Resilience.disabled] (the default) the behaviour
    is the seed pipeline exactly; with [config.supervision] enabled the
    query additionally holds a watchdog heartbeat, is gated by its
    template's circuit breaker, and every failure carries a structured
    {!Health.Error.t}. *)
val submit : t -> Optimizer.Query.t -> (unit, Health.Error.t) result

(** {!submit} with the error rendered as a string (client callback form). *)
val submit_catch : t -> Optimizer.Query.t -> (unit, string) result

(** {1 Storm defense}

    Driven by {!Config.defense}. Singleflight always runs — in [Observe]
    mode (defenses off) it only counts the duplicate compiles coalescing
    would have saved; with [d_singleflight] on, concurrent compiles of
    one canonical statement coalesce onto the leader's optimization. *)

(** Compile [q] into the plan cache {e without} executing it — the
    warm-prime path for a shard rejoining cold. Takes the gateways like
    any query; must run in a simulation process. *)
val prime : t -> Optimizer.Query.t -> (unit, Health.Error.t) result

(** Prime the [d_warm_prime] hottest templates (by observed submission
    count, deterministic order). No-op when priming is off. Blocks at the
    gateways; spawn it. *)
val warm_prime : t -> unit

val singleflight : t -> Plancache.Singleflight.t
val storm_detector : t -> Health.Storm.t

(** Templates actually compiled (not found cached) by {!prime}. *)
val primed_total : t -> int

(** Schedule the configured [config.faults] against this server; [None]
    when the schedule is empty. [spawn_burst], when given, realises
    {!Faultsim.Fault.Client_burst} specs (the caller owns the workload);
    without it burst specs are inert. Call once, before running the
    engine. *)
val install_faults :
  ?spawn_burst:(clients:int -> think_mean:float -> until:float -> unit) ->
  t ->
  Faultsim.Injector.t option

(** [reclaim t n] frees roughly [n] bytes through the manager's donor
    chain (plan cache first, then buffer pool) and returns the bytes
    actually freed. This is the server's answer to external memory
    pressure — the tenant arbiter calls it after shrinking the server's
    budget below its usage. *)
val reclaim : t -> int -> int

(** Snapshot the supervision layer's books: per-code error budget,
    watchdog / breaker / starvation counters, forced reclaims. [since]
    bounds the completion count and duration (default [0.]). Meaningful
    for unsupervised servers too (supervision counters read zero). *)
val health_report : t -> ?since:float -> unit -> Health.Report.t

(** {1 Component access (metrics, tests, benches)} *)

val engine : t -> Sim.Engine.t

(** The sink passed to {!create} ({!Obs.Trace.null} by default). *)
val trace : t -> Obs.Trace.t

val config : t -> Config.t
val metrics : t -> Metrics.t
val manager : t -> Dbmem.Manager.t
val broker : t -> Qcore.Broker.t
val governor : t -> Qcore.Compile_gov.t
val pool : t -> Bufpool.Pool.t
val disk : t -> Bufpool.Disk.t
val plan_cache : t -> Plancache.Cache.t
val grants : t -> Execsim.Grant.t
val cpu : t -> Execsim.Cpu.t
val catalog : t -> Optimizer.Catalog.t

(** Memory clerks by component name
    (["bufpool"; "plancache"; "compile"; "execution"], plus ["ballast"]
    when a fault schedule is configured). *)
val clerks : t -> (string * Dbmem.Manager.clerk) list

(** The phantom external consumer's clerk ([None] without faults). *)
val ballast_clerk : t -> Dbmem.Manager.clerk option
