(* Metastable-failure experiment: a sharded deployment is hit by a
   cold-cache trigger — a crash-restart or a mass plan invalidation —
   and we measure whether the system climbs back out of the storm or
   stays collapsed after the trigger has cleared. The A/B axis is the
   defense stack ({!Config.defended} vs {!Config.no_defense}): compile
   singleflight, per-client retry budgets, adaptive gateway queues and
   the storm detector's recovery mode. Everything else — workload,
   seeds, fault schedule, gateway throttling — is identical between the
   two arms, so the difference in recovery time is the defenses'. *)

type schedule = Cold_crash | Mass_invalidation

let schedule_name = function
  | Cold_crash -> "cold-crash"
  | Mass_invalidation -> "mass-invalidation"

type config = {
  s_shards : int;
  s_clients : int;
  s_variants : int;  (** parameterized templates in the workload *)
  s_think : float;
  s_warmup : float;
  s_measure : float;
  s_slice : float;
  s_total : int;  (** machine bytes, split total/shards *)
  s_defenses : bool;  (** the A/B axis: {!Config.defended} when true *)
  (* Tuning overrides on top of {!Config.defended}; [None] keeps the
     default. Only meaningful with [s_defenses = true] — the CLI rejects
     them with defenses off, and [run] ignores them there. *)
  s_sf_wait : float option;
  s_budget_tokens : float option;
  s_lifo_after : float option;
  s_warm_prime : int option;
  s_seed : int;
  s_schedule : schedule;
}

let default_config =
  {
    s_shards = 3;
    s_clients = 160;
    s_variants = 96;
    s_think = 10.;
    s_warmup = 600.;
    s_measure = 900.;
    s_slice = 30.;
    s_total = 24 * 1024 * 1024 * 1024;
    s_defenses = true;
    s_sf_wait = None;
    s_budget_tokens = None;
    s_lifo_after = None;
    s_warm_prime = None;
    s_seed = 42;
    s_schedule = Mass_invalidation;
  }

(* The defense stack this config's arm actually runs. *)
let defense_of cfg =
  if not cfg.s_defenses then Config.no_defense
  else
    let d = Config.defended in
    let d =
      match cfg.s_sf_wait with
      | None -> d
      | Some w -> { d with Config.d_sf_wait_s = w }
    in
    let d =
      match cfg.s_budget_tokens with
      | None -> d
      | Some tokens ->
          let b =
            Option.value d.Config.d_budget
              ~default:Resilience.Budget.default_config
          in
          {
            d with
            Config.d_budget =
              Some
                {
                  b with
                  Resilience.Budget.initial = tokens;
                  max_tokens = Float.max tokens b.Resilience.Budget.max_tokens;
                };
          }
    in
    let d =
      match cfg.s_lifo_after with
      | None -> d
      | Some s -> { d with Config.d_lifo_after_s = s }
    in
    match cfg.s_warm_prime with
    | None -> d
    | Some k -> { d with Config.d_warm_prime = k }

(* The trigger lands a quarter into the measure window, so the pre-fault
   slices establish the healthy rate the recovery is judged against. *)
let fault_at cfg = cfg.s_warmup +. (0.25 *. cfg.s_measure)
let crash_restart_delay cfg = 0.15 *. cfg.s_measure

type shard_report = {
  sr_name : string;
  sr_state : string;
  sr_crashes : int;
  sr_recompiles : int;  (** plan-cache misses since rejoin *)
  sr_cache_hit : float;
  sr_storms : int;  (** storm episodes the detector flagged *)
  sr_primed : int;  (** templates warm-primed on rejoin *)
  sr_sf_led : int;  (** singleflight leaders (real compiles) *)
  sr_sf_coalesced : int;  (** followers who waited instead of compiling *)
  sr_sf_dup : int;
      (** compiles performed while a flight for the same canonical
          statement was already open — the storm's wasted work (every
          duplicate in observe mode, only singleflight timeouts in
          coalesce mode) *)
}

type outcome = {
  o_config : config;
  slices : (float * float) array;  (** completions per slice, window only *)
  pre_rate : float;  (** mean completions/slice before the trigger *)
  post_rate : float;  (** mean completions/slice after the trigger *)
  recovery_s : float;
      (** time from the trigger until the earliest slice from which the
          rest of the window sustains 90% of [pre_rate]; [infinity] if
          the run never got there *)
  recovered : bool;  (** [recovery_s] is finite *)
  retry_amp : float;
      (** router attempts per distinct client query — 1.0 means nothing
          was ever resubmitted, the storm's amplification factor *)
  dup_compiles : int;  (** sum of [sr_sf_dup] *)
  coalesced : int;
  storms_detected : int;
  primed : int;
  lifo_shifts : int;  (** gateway FIFO->LIFO queue flips *)
  deadline_sheds : int;  (** gateway waiters shed as doomed *)
  budget_denials : int;  (** retries refused by empty token buckets *)
  submitted : int;
  ok : int;
  failed : int;
  rejected : int;
  retries : int;
  in_flight_at_stop : int;
  p50_ms : float;
  p99_ms : float;
  cl_submitted : int;
  cl_succeeded : int;
  cl_abandoned : int;
  shard_reports : shard_report list;
}

let validate cfg =
  if cfg.s_shards < 2 then invalid_arg "Storms.run: need at least 2 shards";
  if cfg.s_clients < 1 then invalid_arg "Storms.run: clients < 1";
  if cfg.s_variants < 1 then invalid_arg "Storms.run: variants < 1";
  if cfg.s_total / cfg.s_shards < 64 * 1024 * 1024 then
    invalid_arg "Storms.run: less than 64 MiB per shard";
  if cfg.s_warmup < 0. || cfg.s_measure <= 0. || cfg.s_slice <= 0. then
    invalid_arg "Storms.run: bad warmup/measure/slice";
  if cfg.s_think <= 0. then invalid_arg "Storms.run: think <= 0";
  let bad_opt name = function
    | Some v when v <= 0. -> invalid_arg ("Storms.run: " ^ name ^ " <= 0")
    | _ -> ()
  in
  bad_opt "sf-wait" cfg.s_sf_wait;
  bad_opt "budget-tokens" cfg.s_budget_tokens;
  bad_opt "lifo-after" cfg.s_lifo_after;
  match cfg.s_warm_prime with
  | Some k when k < 0 -> invalid_arg "Storms.run: warm-prime < 0"
  | _ -> ()

let mean_of slices =
  if Array.length slices = 0 then 0.
  else
    Array.fold_left (fun a (_, v) -> a +. v) 0. slices
    /. float_of_int (Array.length slices)

let run ?trace cfg =
  validate cfg;
  let eng = Sim.Engine.create ~seed:cfg.s_seed () in
  let stop = cfg.s_warmup +. cfg.s_measure in
  let n = cfg.s_shards in
  let budget = cfg.s_total / n in
  let base = Config.default () in
  let defense = defense_of cfg in
  let shard_cfg =
    {
      base with
      Config.memory_bytes = budget;
      seed = cfg.s_seed;
      throttle_enabled = true;
      (* Plentiful execution hardware. The paper's premise is that
         compilation, not execution, is the scarce resource; on the
         default era-sized disk array this testbed saturates exec-side,
         and those queues have infinite patience — overload is absorbed
         as latency and no retry loop can ignite. A modern array makes
         execution cheap, so the compile gateways are the binding
         constraint and a cold cache turns into a real queue there. *)
      disk_spindles = 64;
      disk_throughput = 320. *. 1024. *. 1024.;
      (* Complex-schema tier: each optimization task costs 3x the default
         CPU — deep join orders, wide indexes. A cold cache is then a
         real debt (a compile is minutes of CPU, not seconds), which is
         the regime where the storm either feeds on itself or is broken
         by the defenses. Both arms, identically. *)
      optimizer_params =
        {
          base.Config.optimizer_params with
          Optimizer.Cascades.task_cpu =
            3.0 *. base.Config.optimizer_params.Optimizer.Cascades.task_cpu;
        };
      (* Impatient gateways — both arms, identically. The default
         timeouts (120/300/600 s) are sized for a warm cache, where a
         compile queue of that depth never forms; this testbed models a
         latency-bound mid-tier whose patience is a couple of compile
         times, so a cold-cache queue turns waiters into retryable
         failures instead of parking every client for ten simulated
         minutes. This is the amplification loop the defenses are up
         against: timeout -> client retry -> another compile of the same
         statement -> deeper queue -> more timeouts. *)
      throttle =
        {
          base.Config.throttle with
          Qcore.Throttle_config.levels =
            List.mapi
              (fun i l ->
                let patience =
                  match i with 0 -> 30. | 1 -> 45. | _ -> 90.
                in
                { l with Qcore.Throttle_config.timeout = patience })
              base.Config.throttle.Qcore.Throttle_config.levels;
        };
      defense;
      min_pool_bytes = min base.Config.min_pool_bytes (budget / 8);
      min_workspace_bytes = min base.Config.min_workspace_bytes (budget / 8);
      (* The storm is the point, but it must be a *trigger*, not ambient
         noise: shield the warm plan set from buffer-pool pressure so
         cold caches happen when the schedule says, not whenever the
         pool squeezes. *)
      plan_cache_floor_bytes = min (Dbmem.Units.mib 512) (budget / 8);
    }
  in
  let shards =
    Array.init n (fun i ->
        Shard.create ?trace eng ~index:i
          ~name:(Printf.sprintf "shard%d" i)
          shard_cfg (Workload.Sales.catalog ()))
  in
  let router = Router.create ?trace eng shards in
  Router.set_measure_from router cfg.s_warmup;
  (* The trigger. A crash routes through the fault injector (same
     validation and labelling as every other chaos schedule); a mass
     invalidation has no capacity loss — every cache is flushed in
     place, the purest form of the cold-cache stampede. *)
  (match cfg.s_schedule with
  | Cold_crash ->
      let hooks =
        {
          Faultsim.Injector.null_hooks with
          shard_crash =
            (fun ~shard ~restart_delay ->
              Shard.crash shards.(shard mod n) ~restart_delay);
        }
      in
      ignore
        (Faultsim.Injector.install eng
           ~rng:(Sim.Rng.split (Sim.Engine.rng eng))
           ~hooks
           [
             Faultsim.Fault.Shard_crash
               {
                 at = fault_at cfg;
                 shard = 1;
                 restart_delay = crash_restart_delay cfg;
               };
           ])
  | Mass_invalidation ->
      ignore
        (Sim.Engine.schedule eng ~delay:(fault_at cfg) (fun () ->
             Array.iter
               (fun sh ->
                 let cache = Dbms.plan_cache (Shard.dbms sh) in
                 ignore (Plancache.Cache.shrink cache (Plancache.Cache.bytes cache)))
               shards)));
  ignore
    (Sim.Engine.every eng ~interval:5.0 (fun () ->
         Array.iter Shard.sample shards));
  let templates =
    Workload.Sales.parameterized_templates ~variants:cfg.s_variants ()
  in
  let series = Sim.Series.create ~name:"storms" () in
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  (* Per-client retry budgets (the defended arm only): each client owns
     its token bucket, created outside the engine so it costs no
     randomness; the router spends from it on every re-route. *)
  let mk_budget () =
    match defense.Config.d_budget with
    | Some bcfg when cfg.s_defenses -> Some (Resilience.Budget.create bcfg)
    | _ -> None
  in
  for i = 1 to cfg.s_clients do
    let cname = Printf.sprintf "client-%d" i in
    let budget = mk_budget () in
    let submit q =
      let r = Router.submit_catch ?budget router q in
      (match r with
      | Ok () -> Sim.Series.add series ~time:(Sim.Engine.now eng) 1.
      | Error _ -> ());
      r
    in
    (* Stagger arrivals across the first half of warmup. A simultaneous
       t=0 start is itself a cold-cache stampede, and the arm that
       handles it worse enters the measure window with a depressed
       healthy rate — which *lowers* its recovery bar and poisons the
       A/B. A ramp warms both arms identically, so the trigger is the
       only storm in the run. *)
    let start =
      float_of_int (i - 1) *. (0.5 *. cfg.s_warmup /. float_of_int cfg.s_clients)
    in
    Workload.Client.spawn eng ~start
      (Sim.Rng.create (cfg.s_seed lxor Hashtbl.hash cname))
      ~name:cname ~templates ~submit
      ~config:
        {
          Workload.Client.default_config with
          Workload.Client.think_mean = cfg.s_think;
        }
      ~stats ~ids ~until:stop
  done;
  Sim.Engine.run eng ~until:stop;
  Sim.Engine.run eng ~until:(stop +. 600.);
  (match Sim.Engine.failures eng with
  | [] -> ()
  | (pname, exn, time) :: _ as fs ->
      failwith
        (Printf.sprintf
           "storm simulation process failures (%d), first: %s at %.1f: %s"
           (List.length fs) pname time (Printexc.to_string exn)));
  let slices =
    Sim.Series.bucket_sum series ~start:cfg.s_warmup ~stop ~width:cfg.s_slice
  in
  let t_fault = fault_at cfg in
  let pre =
    Array.of_seq
      (Seq.filter
         (fun (t, _) -> t +. cfg.s_slice <= t_fault)
         (Array.to_seq slices))
  in
  let post =
    Array.of_seq
      (Seq.filter (fun (t, _) -> t >= t_fault) (Array.to_seq slices))
  in
  let pre_rate = mean_of pre in
  let recovery_s =
    (* Earliest post-trigger slice from which the rest of the window
       sustains 90% of the healthy rate (a suffix mean). A single lucky
       slice in the middle of the collapse doesn't count as recovery,
       and an arm still collapsed at the end never recovers. Judged at
       the slice's end (its count isn't known before then). *)
    let target = 0.9 *. pre_rate in
    let n = Array.length post in
    let suffix = Array.make (n + 1) 0. in
    for i = n - 1 downto 0 do
      suffix.(i) <- suffix.(i + 1) +. snd post.(i)
    done;
    let rec find i =
      if i >= n then Float.infinity
      else if suffix.(i) /. float_of_int (n - i) >= target then
        fst post.(i) +. cfg.s_slice -. t_fault
      else find (i + 1)
    in
    find 0
  in
  let lat = Router.latency router in
  let shard_reports =
    Array.to_list
      (Array.map
         (fun sh ->
           let dbms = Shard.dbms sh in
           let sf = Dbms.singleflight dbms in
           {
             sr_name = Shard.name sh;
             sr_state = Shard.lifecycle_name (Shard.state sh);
             sr_crashes = Shard.crashes sh;
             sr_recompiles = Shard.recompiles_after_rejoin sh;
             sr_cache_hit = Plancache.Cache.hit_rate (Dbms.plan_cache dbms);
             sr_storms = Health.Storm.storms_total (Dbms.storm_detector dbms);
             sr_primed = Dbms.primed_total dbms;
             sr_sf_led = Plancache.Singleflight.led sf;
             sr_sf_coalesced = Plancache.Singleflight.coalesced sf;
             sr_sf_dup =
               Plancache.Singleflight.duplicates sf
               - Plancache.Singleflight.coalesced sf;
           })
         shards)
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 shard_reports in
  let gov_sum f =
    Array.fold_left (fun a sh -> a + f (Dbms.governor (Shard.dbms sh))) 0 shards
  in
  let cl_submitted = stats.Workload.Client.submitted in
  {
    o_config = cfg;
    slices;
    pre_rate;
    post_rate = mean_of post;
    recovery_s;
    recovered = Float.is_finite recovery_s;
    retry_amp =
      (if cl_submitted = 0 then 1.
       else
         float_of_int (Router.submitted router + Router.retries router)
         /. float_of_int cl_submitted);
    dup_compiles = sum (fun r -> r.sr_sf_dup);
    coalesced = sum (fun r -> r.sr_sf_coalesced);
    storms_detected = sum (fun r -> r.sr_storms);
    primed = sum (fun r -> r.sr_primed);
    lifo_shifts = gov_sum Qcore.Compile_gov.lifo_shifts;
    deadline_sheds = gov_sum Qcore.Compile_gov.deadline_sheds;
    budget_denials = Router.budget_denials router;
    submitted = Router.submitted router;
    ok = Router.ok router;
    failed = Router.failed router;
    rejected = Router.rejected router;
    retries = Router.retries router;
    in_flight_at_stop = Router.in_flight router;
    p50_ms = float_of_int (Obs.Hist.percentile lat 50.) /. 1000.;
    p99_ms = float_of_int (Obs.Hist.percentile lat 99.) /. 1000.;
    cl_submitted;
    cl_succeeded = stats.Workload.Client.succeeded;
    cl_abandoned = stats.Workload.Client.abandoned;
    shard_reports;
  }

(* The defended arm wins when it gets back to the healthy rate faster;
   an arm that never recovered compares as infinitely slow. *)
let faster_recovery ~defended ~undefended =
  defended.recovery_s < undefended.recovery_s
  || (defended.recovered && not undefended.recovered)
