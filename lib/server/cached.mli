(** The mixed-traffic mid-tier cache experiment.

    One server under a blend of parameterized (replayed-verbatim,
    cacheable) and ad-hoc (uniquified, cache-defeating) SALES traffic,
    with a {!Midcache} statement/result cache in front of {!Dbms.submit}
    in one of three modes:

    - {!Cache_off}: every request goes to the engine — the paper's
      regime, the baseline;
    - {!Cache_fixed}: the cache holds a fixed byte budget. Its footprint
      is charged to a real memory clerk, so it squeezes the engine's
      caches and workspaces, but it never answers to the broker;
    - {!Cache_brokered}: same cache registered as a first-class broker
      component (demand hint, shrink-to-target on [Must_shrink],
      forced-reclaim hook), so under memory pressure the cache gives its
      bytes back and traffic falls through to the compile gateways.

    An optional memory ballast reproduces the paper's contention regime
    on demand: the interesting read is brokered-mode throughput degrading
    gracefully (cache shrinks, hit rate sags, gateways absorb the
    fall-through) where fixed mode collapses. *)

type mode = Cache_off | Cache_fixed | Cache_brokered

val mode_name : mode -> string

type config = {
  k_mode : mode;
  k_clients : int;
  k_think : float;
  k_ratio : float;  (** parameterized fraction of the traffic, [0..1] *)
  k_variants : int;  (** distinct parameterized statements *)
  k_writers : int;  (** writer sessions driving invalidation *)
  k_write_think : float;
  k_warmup : float;
  k_measure : float;
  k_slice : float;
  k_memory : int;  (** machine bytes *)
  k_cache_bytes : int;  (** fixed budget / brokered cap *)
  k_ttl : float;  (** entry lifetime; [<= 0.] disables expiry *)
  k_hit_latency : float;
  k_ballast_gib : float;  (** [0.] = no injected pressure *)
  k_diurnal : Workload.Mix.diurnal option;
  k_flash : Workload.Mix.flash list;
  k_seed : int;
}

val default_config : config

(** Raises [Invalid_argument] on nonsensical parameters. *)
val validate : config -> unit

(** Plain data in, plain data out: an outcome is a pure function of the
    config, safe to fan out across domains and compare byte-for-byte. *)
type outcome = {
  o_config : config;
  slices : (float * float) array;  (** completions per slice *)
  mean_per_slice : float;
  completed : int;  (** successes inside the measure window *)
  requests : int;
  hits : int;
  misses : int;
  bypasses : int;
  stores : int;
  refused : int;
  evictions : int;
  expired : int;
  invalidated : int;
  cache_hit_rate : float;
  shrink_events : int;  (** broker-driven shrinks (Obs Midcache_shrink) *)
  shrink_freed : int;
  resident_end : int;
  resident_peak : int;
  budget_end : int;
  gw_acquires : int;  (** compile-gateway admissions, all monitors *)
  gw_timeouts : int;
  gw_wait_mean_s : float;
  compiles : int;  (** engine-side completions (misses + bypasses) *)
  plan_hits : int;  (** in-engine plan-cache hits *)
  compile_peak_max : float;
  compile_peak_mean : float;
  ooms : int;
  p50_ms : float;
  p99_ms : float;
  cl_submitted : int;
  cl_succeeded : int;
  cl_abandoned : int;
  writes : int;
  inv_entries : int;
}

val run : ?trace:Obs.Trace.t -> config -> outcome

(** [uplift ~over base] — [mean_per_slice] ratio, [0.] on an empty
    baseline. *)
val uplift : outcome -> over:outcome -> float
