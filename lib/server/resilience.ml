type t = {
  enabled : bool;
  max_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  jitter_frac : float;
  degrade_enabled : bool;
  shed_enabled : bool;
  shed_factor : float;
  deadline_s : float;
}

let disabled =
  {
    enabled = false;
    max_retries = 0;
    backoff_base_s = 0.;
    backoff_max_s = 0.;
    jitter_frac = 0.;
    degrade_enabled = false;
    shed_enabled = false;
    shed_factor = 0.;
    deadline_s = 0.;
  }

(* Backoff sized for minutes-long pressure transients: five attempts
   spread over up to ~8 simulated minutes, so a query submitted mid-storm
   usually survives to the release. *)
let default =
  {
    enabled = true;
    max_retries = 5;
    backoff_base_s = 15.;
    backoff_max_s = 240.;
    jitter_frac = 0.5;
    degrade_enabled = true;
    shed_enabled = true;
    shed_factor = 3.0;
    deadline_s = 1800.;
  }

let backoff t ~attempt ~rng =
  (* Clamp rather than trust the caller: an attempt counter that underflowed
     to 0 or negative gets the base pause, and a policy hand-built with a
     negative jitter fraction or cap must never produce a negative sleep
     (the engine would reject it mid-run, after hours of simulation). *)
  let attempt = max 1 attempt in
  let base =
    Float.max 0.
      (Float.min t.backoff_max_s
         (t.backoff_base_s *. (2. ** float_of_int (attempt - 1))))
  in
  let jitter_span = t.jitter_frac *. base in
  if jitter_span > 0. then base +. Sim.Rng.float rng jitter_span else base

module Budget = struct
  type config = {
    initial : float;  (* tokens in the bucket at creation *)
    earn_per_success : float;  (* tokens added per successful query *)
    max_tokens : float;  (* bucket cap *)
    spend_per_retry : float;  (* tokens one retry costs *)
  }

  (* 10% default earn rate: sustained retry traffic is capped at one
     retry per ten successes, the fraction at which retries stop being
     able to keep a storm alive on their own. The initial grant covers a
     client's cold start before it has any goodput to earn from. *)
  let default_config =
    {
      initial = 10.;
      earn_per_success = 0.1;
      max_tokens = 10.;
      spend_per_retry = 1.;
    }

  type t = {
    cfg : config;
    mutable balance : float;
    mutable earned : float;  (* cumulative, before the cap *)
    mutable capped : float;  (* earnings discarded at the cap *)
    mutable spent : float;
    mutable denied : int;
  }

  let create cfg =
    if cfg.initial < 0. then invalid_arg "Budget: negative initial";
    if cfg.earn_per_success < 0. then invalid_arg "Budget: negative earn";
    if cfg.max_tokens < 0. then invalid_arg "Budget: negative cap";
    if cfg.spend_per_retry <= 0. then
      invalid_arg "Budget: spend_per_retry must be > 0";
    {
      cfg;
      balance = Float.min cfg.initial cfg.max_tokens;
      earned = 0.;
      capped = 0.;
      spent = 0.;
      denied = 0;
    }

  let try_spend t =
    if t.balance >= t.cfg.spend_per_retry then begin
      t.balance <- t.balance -. t.cfg.spend_per_retry;
      t.spent <- t.spent +. t.cfg.spend_per_retry;
      true
    end
    else begin
      t.denied <- t.denied + 1;
      false
    end

  let earn t =
    t.earned <- t.earned +. t.cfg.earn_per_success;
    let next = t.balance +. t.cfg.earn_per_success in
    if next > t.cfg.max_tokens then begin
      t.capped <- t.capped +. (next -. t.cfg.max_tokens);
      t.balance <- t.cfg.max_tokens
    end
    else t.balance <- next

  let balance t = t.balance
  let earned t = t.earned
  let capped t = t.capped
  let spent t = t.spent
  let denied t = t.denied
  let config t = t.cfg
end

let pp ppf t =
  if not t.enabled then Format.fprintf ppf "resilience OFF"
  else
    Format.fprintf ppf
      "resilience ON: retries<=%d backoff %.0f-%.0fs (jitter %.0f%%), \
       degrade=%b shed=%b (factor %.1f), deadline %.0fs"
      t.max_retries t.backoff_base_s t.backoff_max_s (100. *. t.jitter_frac)
      t.degrade_enabled t.shed_enabled t.shed_factor t.deadline_s
