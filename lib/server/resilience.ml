type t = {
  enabled : bool;
  max_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  jitter_frac : float;
  degrade_enabled : bool;
  shed_enabled : bool;
  shed_factor : float;
  deadline_s : float;
}

let disabled =
  {
    enabled = false;
    max_retries = 0;
    backoff_base_s = 0.;
    backoff_max_s = 0.;
    jitter_frac = 0.;
    degrade_enabled = false;
    shed_enabled = false;
    shed_factor = 0.;
    deadline_s = 0.;
  }

(* Backoff sized for minutes-long pressure transients: five attempts
   spread over up to ~8 simulated minutes, so a query submitted mid-storm
   usually survives to the release. *)
let default =
  {
    enabled = true;
    max_retries = 5;
    backoff_base_s = 15.;
    backoff_max_s = 240.;
    jitter_frac = 0.5;
    degrade_enabled = true;
    shed_enabled = true;
    shed_factor = 3.0;
    deadline_s = 1800.;
  }

let backoff t ~attempt ~rng =
  (* Clamp rather than trust the caller: an attempt counter that underflowed
     to 0 or negative gets the base pause, and a policy hand-built with a
     negative jitter fraction or cap must never produce a negative sleep
     (the engine would reject it mid-run, after hours of simulation). *)
  let attempt = max 1 attempt in
  let base =
    Float.max 0.
      (Float.min t.backoff_max_s
         (t.backoff_base_s *. (2. ** float_of_int (attempt - 1))))
  in
  let jitter_span = t.jitter_frac *. base in
  if jitter_span > 0. then base +. Sim.Rng.float rng jitter_span else base

let pp ppf t =
  if not t.enabled then Format.fprintf ppf "resilience OFF"
  else
    Format.fprintf ppf
      "resilience ON: retries<=%d backoff %.0f-%.0fs (jitter %.0f%%), \
       degrade=%b shed=%b (factor %.1f), deadline %.0fs"
      t.max_retries t.backoff_base_s t.backoff_max_s (100. *. t.jitter_frac)
      t.degrade_enabled t.shed_enabled t.shed_factor t.deadline_s
