type result = {
  clients : int;
  throttled : bool;
  resilient : bool;
  warmup : float;
  measure : float;
  slice : float;
  slices : (float * float) array;
  mean_per_slice : float;
  total_completed : int;
  total_errors : int;
  hard_errors : int;
  retries : int;
  sheds : int;
  degraded : int;
  errors : (string * int) list;
  faults_started : int;
  faults_finished : int;
  ballast_peak : int;
  ballast_refused : int;
  client_stats : Workload.Client.stats;
  compile_mean_s : float;
  compile_max_s : float;
  exec_mean_s : float;
  exec_max_s : float;
  compile_peak_mean : float;
  compile_peak_max : float;
  pool_hit_rate : float;
  cache_hit_rate : float;
  cpu_utilization : float;
  memory_series : (string * Sim.Series.t) list;
}

let run ?config ?client_config ?catalog ?templates ?seed ?trace ~clients
    ~warmup ~measure ~slice () =
  let cfg = match config with Some c -> c | None -> Config.default () in
  let cfg = match seed with Some s -> { cfg with Config.seed = s } | None -> cfg in
  let client_config =
    match client_config with
    | Some c -> c
    | None -> Workload.Client.default_config
  in
  let cat = match catalog with Some c -> c | None -> Workload.Sales.catalog () in
  let templates =
    match templates with Some t -> t | None -> Workload.Sales.templates ()
  in
  let eng = Sim.Engine.create ~seed:cfg.Config.seed () in
  let dbms = Dbms.create ?trace eng cfg cat in
  Dbms.start dbms;
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  let stop = warmup +. measure in
  (* Burst clients share the workload's stats/ids so conservation
     invariants (attempts >= submitted, ...) keep holding under chaos. *)
  let spawn_burst ~clients ~think_mean ~until =
    let burst_rng = Sim.Rng.split (Sim.Engine.rng eng) in
    for i = 1 to clients do
      Workload.Client.spawn eng burst_rng
        ~name:(Printf.sprintf "burst-%d" i)
        ~templates
        ~submit:(fun q -> Dbms.submit_catch dbms q)
        ~config:{ client_config with Workload.Client.think_mean }
        ~stats ~ids ~until:(Float.min until stop)
    done
  in
  let injector = Dbms.install_faults ~spawn_burst dbms in
  let client_rng = Sim.Rng.split (Sim.Engine.rng eng) in
  for i = 1 to clients do
    Workload.Client.spawn eng client_rng
      ~name:(Printf.sprintf "client-%d" i)
      ~templates
      ~submit:(fun q -> Dbms.submit_catch dbms q)
      ~config:client_config ~stats ~ids ~until:stop
  done;
  Sim.Engine.run eng ~until:stop;
  (match Sim.Engine.failures eng with
  | [] -> ()
  | (name, exn, time) :: _ as fs ->
      failwith
        (Printf.sprintf "simulation process failures (%d), first: %s at %.1f: %s"
           (List.length fs) name time (Printexc.to_string exn)));
  let metrics = Dbms.metrics dbms in
  let slices = Metrics.throughput metrics ~start:warmup ~stop ~width:slice in
  let total_completed = Metrics.total_completions metrics ~since:warmup () in
  let mean_per_slice =
    if Array.length slices = 0 then 0.
    else
      Array.fold_left (fun acc (_, v) -> acc +. v) 0. slices
      /. float_of_int (Array.length slices)
  in
  let ct = Metrics.compile_time metrics and et = Metrics.exec_time metrics in
  let peak = Metrics.compile_peak metrics in
  let safe f s = if Sim.Stats.Online.count s = 0 then 0. else f s in
  {
    clients;
    throttled = cfg.Config.throttle_enabled;
    resilient = cfg.Config.resilience.Resilience.enabled;
    warmup;
    measure;
    slice;
    slices;
    mean_per_slice;
    total_completed;
    total_errors = Metrics.total_errors metrics;
    hard_errors = Metrics.hard_errors metrics;
    retries = Metrics.retries metrics;
    sheds = Metrics.sheds metrics;
    degraded = Metrics.degraded metrics;
    errors =
      List.map (fun (k, n) -> (Health.Error.code_name k, n)) (Metrics.errors metrics);
    faults_started =
      (match injector with Some i -> Faultsim.Injector.started i | None -> 0);
    faults_finished =
      (match injector with
      | Some i -> Faultsim.Injector.finished i
      | None -> 0);
    ballast_peak =
      (match injector with
      | Some i -> Faultsim.Injector.ballast_peak i
      | None -> 0);
    ballast_refused =
      (match injector with
      | Some i -> Faultsim.Injector.ballast_refused i
      | None -> 0);
    client_stats = stats;
    compile_mean_s = safe Sim.Stats.Online.mean ct;
    compile_max_s = safe Sim.Stats.Online.max ct;
    exec_mean_s = safe Sim.Stats.Online.mean et;
    exec_max_s = safe Sim.Stats.Online.max et;
    compile_peak_mean = safe Sim.Stats.Online.mean peak;
    compile_peak_max = safe Sim.Stats.Online.max peak;
    pool_hit_rate = Bufpool.Pool.hit_rate (Dbms.pool dbms);
    cache_hit_rate = Plancache.Cache.hit_rate (Dbms.plan_cache dbms);
    cpu_utilization = Execsim.Cpu.utilization (Dbms.cpu dbms);
    memory_series = Metrics.memory_series metrics;
  }

(* ------------------------------------------------------------------ *)
(* Grids: independent (config, clients, seed) cells fanned over a domain
   pool. Each cell is self-contained — [run] builds a fresh engine (own
   RNG), server, metrics, client stats and trace sink per call, and
   nothing in the library holds top-level mutable state — so cells can
   execute on any domain in any order. Results come back in submission
   order, which keeps grid output byte-identical to a sequential run. *)

type cell = {
  cell_config : Config.t option;
  cell_client_config : Workload.Client.config option;
  cell_catalog : Optimizer.Catalog.t option;
  cell_templates : Workload.Template.t list option;
  cell_seed : int option;
  cell_clients : int;
  cell_warmup : float;
  cell_measure : float;
  cell_slice : float;
}

let cell ?config ?client_config ?catalog ?templates ?seed ~clients ~warmup
    ~measure ~slice () =
  {
    cell_config = config;
    cell_client_config = client_config;
    cell_catalog = catalog;
    cell_templates = templates;
    cell_seed = seed;
    cell_clients = clients;
    cell_warmup = warmup;
    cell_measure = measure;
    cell_slice = slice;
  }

let run_cell c =
  run ?config:c.cell_config ?client_config:c.cell_client_config
    ?catalog:c.cell_catalog ?templates:c.cell_templates ?seed:c.cell_seed
    ~clients:c.cell_clients ~warmup:c.cell_warmup ~measure:c.cell_measure
    ~slice:c.cell_slice ()

let run_grid ?pool ?(jobs = 1) cells =
  match pool with
  | Some p -> Parallel.Pool.map p run_cell cells
  | None ->
      if jobs <= 1 then List.map run_cell cells
      else Parallel.Pool.run ~jobs run_cell cells

let uplift a b =
  (* 0., not nan, against a zero baseline — callers print this straight
     into reports and "nan%" there reads as a bug. *)
  if b.mean_per_slice <= 0. then 0.
  else (a.mean_per_slice -. b.mean_per_slice) /. b.mean_per_slice

let pp_summary ppf r =
  Format.fprintf ppf
    "@[<v>%d clients, throttling %s, resilience %s: %.1f completions/slice (%d total, %d errors)@,\
     compile %.1fs mean / %.1fs max; exec %.1fs mean / %.1fs max@,\
     compile peak %s mean / %s max; pool hit %.1f%%; cache hit %.1f%%; cpu %.2f@]"
    r.clients
    (if r.throttled then "ON" else "OFF")
    (if r.resilient then "ON" else "OFF")
    r.mean_per_slice r.total_completed r.total_errors r.compile_mean_s
    r.compile_max_s r.exec_mean_s r.exec_max_s
    (Dbmem.Units.bytes_to_string (int_of_float r.compile_peak_mean))
    (Dbmem.Units.bytes_to_string (int_of_float r.compile_peak_max))
    (100. *. r.pool_hit_rate)
    (100. *. r.cache_hit_rate)
    r.cpu_utilization;
  if r.resilient || r.faults_started > 0 then
    Format.fprintf ppf
      "@,resilience: %d hard errors, %d retries, %d sheds, %d degraded \
       completions; faults %d/%d run; ballast peak %s (%d refused grabs)"
      r.hard_errors r.retries r.sheds r.degraded r.faults_finished
      r.faults_started
      (Dbmem.Units.bytes_to_string r.ballast_peak)
      r.ballast_refused
