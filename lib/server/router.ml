(* Health-aware placement across shards.

   Placement is a consistent-hash ring over template names: each shard
   owns ~[vnodes] points, a template walks the ring from its own hash and
   takes the first healthy shard. The walk skips [Down] shards and shards
   whose circuit breaker refuses the arrival (an overflow "spill" — the
   template runs off its home shard until the primary heals, then snaps
   back with no rebalancing step, because the ring never changed).

   All routing randomness (retry jitter) comes from one dedicated split
   stream, so adding a router to a simulation perturbs nothing else. *)

type config = {
  vnodes : int;
  max_retries : int;
  backoff : Resilience.t;  (** only the backoff parameters are read *)
  hedge_enabled : bool;
  hedge_after : float;
  breaker : Health.Breaker.config;
}

let default_config =
  {
    vnodes = 40;
    max_retries = 2;
    backoff = { Resilience.default with backoff_base_s = 1.0; jitter_frac = 0.2 };
    hedge_enabled = false;
    hedge_after = 20.;
    breaker = Health.Breaker.default_config;
  }

type t = {
  eng : Sim.Engine.t;
  trace : Obs.Trace.t;
  cfg : config;
  shards : Shard.t array;
  breakers : Health.Breaker.t;  (* keyed by shard name *)
  rng : Sim.Rng.t;
  ring : (int * int) array;  (* (point, shard index), sorted by point *)
  latency : Obs.Hist.t;  (* microseconds, submissions after measure_from *)
  mutable measure_from : float;
  mutable submitted : int;
  mutable ok : int;
  mutable failed : int;
  mutable rejected : int;
  mutable spills : int;
  mutable hedges : int;
  mutable hedge_wins : int;
  mutable hedge_losses : int;
      (* losing completions scrubbed from shard books and breakers *)
  mutable retries : int;
  mutable budget_denials : int;
  mutable in_flight : int;
}

(* FNV-1a with a splitmix64 finalizer, folded to an OCaml int. The raw
   FNV accumulator barely avalanches short strings that share a prefix
   ("shardN#v", "pNNN"), which clusters every vnode of a shard into one
   arc of the ring; the finalizer spreads them uniformly. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  let m = Int64.logxor !h (Int64.shift_right_logical !h 30) in
  let m = Int64.mul m 0xbf58476d1ce4e5b9L in
  let m = Int64.logxor m (Int64.shift_right_logical m 27) in
  let m = Int64.mul m 0x94d049bb133111ebL in
  let m = Int64.logxor m (Int64.shift_right_logical m 31) in
  Int64.to_int (Int64.shift_right_logical m 1)

let build_ring shards vnodes =
  let points =
    Array.init (Array.length shards * vnodes) (fun i ->
        let s = i / vnodes and v = i mod vnodes in
        (fnv1a (Printf.sprintf "%s#%d" (Shard.name shards.(s)) v), s))
  in
  Array.sort compare points;
  points

let create ?(trace = Obs.Trace.null) ?(cfg = default_config) eng shards =
  if Array.length shards = 0 then invalid_arg "Router.create: no shards";
  if cfg.vnodes < 1 then invalid_arg "Router.create: vnodes < 1";
  {
    eng;
    trace;
    cfg;
    shards;
    breakers = Health.Breaker.create ~trace eng cfg.breaker;
    rng = Sim.Rng.split (Sim.Engine.rng eng);
    ring = build_ring shards cfg.vnodes;
    latency = Obs.Hist.create ();
    measure_from = 0.;
    submitted = 0;
    ok = 0;
    failed = 0;
    rejected = 0;
    spills = 0;
    hedges = 0;
    hedge_wins = 0;
    hedge_losses = 0;
    retries = 0;
    budget_denials = 0;
    in_flight = 0;
  }

let set_measure_from t v = t.measure_from <- v

(* Shard indices in ring-walk order from the template's hash: the first
   entry is the home shard, the rest the overflow order. *)
let preference t ~template =
  let h = fnv1a template in
  let n = Array.length t.ring in
  let lo =
    (* First ring point at or past [h], wrapping to 0. *)
    let rec bsearch lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if fst t.ring.(mid) < h then bsearch (mid + 1) hi else bsearch lo mid
    in
    let i = bsearch 0 n in
    if i = n then 0 else i
  in
  let nshards = Array.length t.shards in
  let seen = Array.make nshards false in
  let order = ref [] in
  let found = ref 0 in
  let i = ref lo in
  while !found < nshards do
    let s = snd t.ring.(!i mod n) in
    if not seen.(s) then begin
      seen.(s) <- true;
      order := s :: !order;
      incr found
    end;
    incr i
  done;
  List.rev !order

(* First routable shard in preference order: not [Down], breaker admits.
   Admission is stateful (a half-open breaker marks the arrival as its
   probe), so it is only asked once we are about to use the shard. *)
let pick t ~template =
  let rec go ~spill = function
    | [] -> None
    | idx :: rest ->
        let sh = t.shards.(idx) in
        if Shard.state sh = Shard.Down then go ~spill:true rest
        else if
          Result.is_ok (Health.Breaker.admit t.breakers ~template:(Shard.name sh))
        then Some (sh, spill)
        else go ~spill:true rest
  in
  go ~spill:false (preference t ~template)

let emit_route t ~shard ~template ~spill ~hedged =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid:""
      (Obs.Event.Route { shard; template; spill; hedged })

(* A shard that is up but browned out gets a hedge: the query runs on the
   slow primary and, [hedge_after] seconds later (if still unresolved),
   also on the healthiest alternate; first completion wins and the loser's
   result is dropped (its work is genuinely wasted, as with real hedged
   requests). Returns the winning shard's name with the result so breaker
   accounting lands on the shard that produced the outcome. *)
let alternate t ~except =
  let best = ref None in
  Array.iter
    (fun sh ->
      if Shard.index sh <> except && Shard.state sh = Shard.Up then
        match !best with None -> best := Some sh | Some _ -> ())
    t.shards;
  !best

let hedged_submit t sh ~template q =
  let settled = ref false in
  Sim.Engine.suspend (fun wake ->
      let finish who sh' (r, booking) =
        if not !settled then begin
          settled := true;
          if who = `Hedge then t.hedge_wins <- t.hedge_wins + 1;
          wake (Shard.name sh', r)
        end
        else begin
          (* The losing side of the hedge: the client already took the
             other completion, so this one must be cancelled out of the
             books. The shard's throughput counters are uncounted (a
             duplicate completion is not served work), and — only for the
             primary, the one shard [pick] actually admitted — the
             breaker's half-open probe slot is handed back, else a hedge
             that outruns its probe would wedge the breaker half-open
             with a phantom probe in flight forever. The alternate was
             never admitted, so touching its breaker would release
             someone else's probe. *)
          t.hedge_losses <- t.hedge_losses + 1;
          Shard.uncount sh' booking;
          if who = `Primary then
            Health.Breaker.release_probe t.breakers
              ~template:(Shard.name sh')
        end
      in
      Sim.Engine.spawn t.eng
        ~name:("route:" ^ Shard.name sh)
        (fun () -> finish `Primary sh (Shard.submit_tracked sh q));
      ignore
        (Sim.Engine.schedule t.eng ~delay:t.cfg.hedge_after (fun () ->
             if not !settled then
               match alternate t ~except:(Shard.index sh) with
               | None -> ()
               | Some alt ->
                   t.hedges <- t.hedges + 1;
                   emit_route t ~shard:(Shard.name alt) ~template
                     ~spill:false ~hedged:true;
                   Sim.Engine.spawn t.eng
                     ~name:("hedge:" ^ Shard.name alt)
                     (fun () -> finish `Hedge alt (Shard.submit_tracked alt q)))))

let record_outcome t ~shard_name r =
  match r with
  | Ok () -> Health.Breaker.record_success t.breakers ~template:shard_name
  | Error (e : Health.Error.t) ->
      (* A lost connection or refused placement is the shard's fault and
         counts toward its breaker even though the taxonomy files it as
         informational back-pressure for the client. *)
      if
        Metrics.is_hard_error e.code
        || e.code = Health.Error.Shard_unavailable
      then Health.Breaker.record_failure t.breakers ~template:shard_name
      else Health.Breaker.release_probe t.breakers ~template:shard_name

let rec attempt t q ~template ~budget ~attempt_no =
  match pick t ~template with
  | None ->
      t.rejected <- t.rejected + 1;
      Error
        (Health.Error.make ~detail:"no shard available"
           Health.Error.Shard_unavailable)
  | Some (sh, spill) ->
      if spill then t.spills <- t.spills + 1;
      emit_route t ~shard:(Shard.name sh) ~template ~spill ~hedged:false;
      let shard_name, r =
        if t.cfg.hedge_enabled && Shard.state sh = Shard.Browned_out then
          hedged_submit t sh ~template q
        else (Shard.name sh, Shard.submit sh q)
      in
      record_outcome t ~shard_name r;
      (match r with
      | Ok () -> Ok ()
      | Error e
        when Health.Error.retryable e.Health.Error.code
             && attempt_no <= t.cfg.max_retries ->
          (* The retry budget is spent *before* the backoff: a client out
             of tokens fails fast instead of joining the retry storm, and
             the queue behind it drains by one instead of growing by one.
             The original error's code survives in the detail so the
             client can still see what it was retrying. *)
          let may_retry =
            match budget with
            | None -> true
            | Some b ->
                let ok = Resilience.Budget.try_spend b in
                if not ok then t.budget_denials <- t.budget_denials + 1;
                ok
          in
          if not may_retry then
            Error
              (Health.Error.make
                 ~detail:
                   ("gave up retrying "
                   ^ Health.Error.code_name e.Health.Error.code)
                 Health.Error.Retry_budget_exhausted)
          else begin
            t.retries <- t.retries + 1;
            Sim.Engine.sleep
              (Resilience.backoff t.cfg.backoff ~attempt:attempt_no
                 ~rng:t.rng);
            attempt t q ~template ~budget ~attempt_no:(attempt_no + 1)
          end
      | Error _ -> r)

let submit ?budget t q =
  let template = Dbms.template_of_qid q.Optimizer.Query.qid in
  let start = Sim.Engine.now t.eng in
  t.submitted <- t.submitted + 1;
  t.in_flight <- t.in_flight + 1;
  let r = attempt t q ~template ~budget ~attempt_no:1 in
  t.in_flight <- t.in_flight - 1;
  (match r with
  | Ok () ->
      t.ok <- t.ok + 1;
      Option.iter Resilience.Budget.earn budget
  | Error _ -> t.failed <- t.failed + 1);
  if start >= t.measure_from then
    Obs.Hist.add t.latency
      (int_of_float ((Sim.Engine.now t.eng -. start) *. 1e6));
  r

let submit_catch ?budget t q =
  match submit ?budget t q with
  | Ok () -> Ok ()
  | Error e -> Error (Health.Error.to_string e)

let shards t = t.shards
let breakers t = t.breakers
let latency t = t.latency
let submitted t = t.submitted
let ok t = t.ok
let failed t = t.failed
let rejected t = t.rejected
let spills t = t.spills
let hedges t = t.hedges
let hedge_wins t = t.hedge_wins
let hedge_losses t = t.hedge_losses
let retries t = t.retries
let budget_denials t = t.budget_denials
let in_flight t = t.in_flight

let pp ppf t =
  Format.fprintf ppf
    "router: %d submitted, %d ok, %d failed (%d rejected), %d spills, %d \
     hedges (%d won), %d retries, %d in flight"
    t.submitted t.ok t.failed t.rejected t.spills t.hedges t.hedge_wins
    t.retries t.in_flight
