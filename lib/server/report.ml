let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let print_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let pad = widths.(i) - String.length cell in
          cell ^ String.make (max 0 pad) ' ')
        row
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter print_row rows

let spark_chars = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  if Array.length values = 0 then ""
  else begin
    let hi = Array.fold_left Float.max 0. values in
    let hi = if hi <= 0. then 1. else hi in
    let buf = Buffer.create (Array.length values * 3) in
    Array.iter
      (fun v ->
        let level =
          int_of_float (Float.min 8. (Float.max 0. (v /. hi *. 8.)))
        in
        Buffer.add_string buf spark_chars.(level))
      values;
    Buffer.contents buf
  end

let figure_series ~title ~throttled ~unthrottled =
  Printf.printf "\n%s\n" title;
  let n = min (Array.length throttled) (Array.length unthrottled) in
  let rows =
    List.init n (fun i ->
        let t, v_on = throttled.(i) in
        let _, v_off = unthrottled.(i) in
        [
          Printf.sprintf "%.0f" t;
          Printf.sprintf "%.0f" v_on;
          Printf.sprintf "%.0f" v_off;
        ])
  in
  table ~header:[ "slice start (s)"; "throttled"; "unthrottled" ] rows;
  let values a = Array.map snd a in
  Printf.printf "  throttled   %s\n" (sparkline (values throttled));
  Printf.printf "  unthrottled %s\n" (sparkline (values unthrottled));
  let mean a =
    if Array.length a = 0 then 0.
    else Array.fold_left (fun acc (_, v) -> acc +. v) 0. a /. float_of_int (Array.length a)
  in
  let m_on = mean throttled and m_off = mean unthrottled in
  Printf.printf
    "  mean completions/slice: throttled %.1f, unthrottled %.1f (uplift %+.0f%%)\n"
    m_on m_off
    (* 0., not nan, when the baseline produced nothing: "nan%" in a
       report reads as a bug and breaks golden-file diffs. *)
    (if m_off > 0. then 100. *. (m_on -. m_off) /. m_off else 0.)

let result_header =
  [ "clients"; "throttle"; "compl/slice"; "total"; "errors"; "compile s";
    "exec s"; "peak mem"; "pool hit"; "cpu" ]

let result_row (r : Experiment.result) =
  [
    string_of_int r.Experiment.clients;
    (if r.Experiment.throttled then "on" else "off");
    Printf.sprintf "%.1f" r.Experiment.mean_per_slice;
    string_of_int r.Experiment.total_completed;
    string_of_int r.Experiment.total_errors;
    Printf.sprintf "%.0f" r.Experiment.compile_mean_s;
    Printf.sprintf "%.0f" r.Experiment.exec_mean_s;
    Dbmem.Units.bytes_to_string (int_of_float r.Experiment.compile_peak_mean);
    Printf.sprintf "%.0f%%" (100. *. r.Experiment.pool_hit_rate);
    Printf.sprintf "%.2f" r.Experiment.cpu_utilization;
  ]

let resilience_header =
  [ "resilience"; "completed"; "hard errors"; "retries"; "sheds"; "degraded";
    "client abandoned" ]

let resilience_row (r : Experiment.result) =
  [
    (if r.Experiment.resilient then "on" else "off");
    string_of_int r.Experiment.total_completed;
    string_of_int r.Experiment.hard_errors;
    string_of_int r.Experiment.retries;
    string_of_int r.Experiment.sheds;
    string_of_int r.Experiment.degraded;
    string_of_int r.Experiment.client_stats.Workload.Client.abandoned;
  ]

(* --- Multi-tenant reports --------------------------------------- *)

let tenant_header =
  [ "pool"; "workload"; "clients"; "compl/slice"; "total"; "budget";
    "floor"; "pool hit"; "cache hit"; "errors"; "abandoned" ]

let tenant_row (r : Tenants.tenant_result) =
  [
    r.Tenants.rname;
    Tenants.workload_name r.Tenants.rworkload;
    string_of_int r.Tenants.rclients;
    Printf.sprintf "%.1f" r.Tenants.mean_per_slice;
    string_of_int r.Tenants.completed;
    Printf.sprintf "%s->%s"
      (Dbmem.Units.bytes_to_string r.Tenants.budget_start)
      (Dbmem.Units.bytes_to_string r.Tenants.budget_end);
    Dbmem.Units.bytes_to_string r.Tenants.floor;
    Printf.sprintf "%.0f%%" (100. *. r.Tenants.pool_hit_rate);
    Printf.sprintf "%.0f%%" (100. *. r.Tenants.cache_hit_rate);
    string_of_int r.Tenants.errors;
    string_of_int r.Tenants.abandoned;
  ]

let tenants_section (o : Tenants.outcome) =
  Printf.printf "\n[%s] seed %d, machine %s, %.0fs warmup + %.0fs measure\n"
    (Tenants.mode_name o.Tenants.omode)
    o.Tenants.oseed
    (Dbmem.Units.bytes_to_string o.Tenants.ototal)
    o.Tenants.owarmup o.Tenants.omeasure;
  table ~header:tenant_header (List.map tenant_row o.Tenants.tenants);
  List.iter
    (fun (r : Tenants.tenant_result) ->
      Printf.printf "  %-8s %s\n" r.Tenants.rname
        (sparkline (Array.map snd r.Tenants.slices)))
    o.Tenants.tenants;
  if o.Tenants.omode <> Tenants.Static then
    Printf.printf
      "  arbiter: %d ticks, %d rebalances, %s granted, %s reclaimed%s\n"
      o.Tenants.arb_ticks o.Tenants.arb_rebalances
      (Dbmem.Units.bytes_to_string o.Tenants.arb_moved)
      (Dbmem.Units.bytes_to_string o.Tenants.arb_reclaimed)
      (if o.Tenants.arb_scarce then " [scarce]" else "")

(* --- Sharded reports --------------------------------------------- *)

let shard_header =
  [ "shard"; "state"; "crashes"; "accepted"; "finished"; "lost"; "refused";
    "recompiles"; "cache hit"; "budget end" ]

let shard_row (r : Shards.shard_result) =
  [
    r.Shards.sh_name;
    r.Shards.sh_final_state;
    string_of_int r.Shards.sh_crashes;
    string_of_int r.Shards.sh_accepted;
    string_of_int r.Shards.sh_finished;
    string_of_int r.Shards.sh_lost;
    string_of_int r.Shards.sh_refused;
    string_of_int r.Shards.sh_recompiles;
    Printf.sprintf "%.0f%%" (100. *. r.Shards.sh_cache_hit_rate);
    Dbmem.Units.bytes_to_string r.Shards.sh_budget_end;
  ]

let shards_section ?baseline (o : Shards.outcome) =
  let cfg = o.Shards.o_config in
  Printf.printf
    "\n[%s] gateways %s%s, seed %d: %d shards, %d clients, machine %s\n"
    (Shards.schedule_name cfg.Shards.c_schedule)
    (if cfg.Shards.c_gateways then "on" else "off")
    (if cfg.Shards.c_hedge then ", hedged" else "")
    cfg.Shards.c_seed cfg.Shards.c_shards cfg.Shards.c_clients
    (Dbmem.Units.bytes_to_string cfg.Shards.c_total);
  table ~header:shard_header (List.map shard_row o.Shards.shard_results);
  Printf.printf "  completions %s\n" (sparkline (Array.map snd o.Shards.slices));
  Printf.printf
    "  %.1f compl/slice, %d completed; router: %d submitted, %d ok, %d \
     failed (%d rejected), %d spills, %d retries"
    o.Shards.mean_per_slice o.Shards.completed o.Shards.submitted o.Shards.ok
    o.Shards.failed o.Shards.rejected o.Shards.spills o.Shards.retries;
  if o.Shards.hedges > 0 then
    Printf.printf ", %d hedges (%d won)" o.Shards.hedges o.Shards.hedge_wins;
  Printf.printf "\n  latency p50 %.0f ms, p99 %.0f ms; clients: %d submitted, \
                 %d succeeded, %d abandoned\n"
    o.Shards.p50_ms o.Shards.p99_ms o.Shards.cl_submitted
    o.Shards.cl_succeeded o.Shards.cl_abandoned;
  Printf.printf
    "  arbiter: %d ticks, %d rebalances, %s granted, %s reclaimed; peak \
     budget sum %s of %s\n"
    o.Shards.arb_ticks o.Shards.arb_rebalances
    (Dbmem.Units.bytes_to_string o.Shards.arb_moved)
    (Dbmem.Units.bytes_to_string o.Shards.arb_reclaimed)
    (Dbmem.Units.bytes_to_string o.Shards.max_budget_sum)
    (Dbmem.Units.bytes_to_string cfg.Shards.c_total);
  match baseline with
  | None -> ()
  | Some b ->
      Printf.printf "  throughput retained vs no-fault: %.0f%%\n"
        (100. *. Shards.retention ~fault:o ~no_fault:b)

(* --- Storm (metastable failure) reports --------------------------- *)

let storm_shard_header =
  [ "shard"; "state"; "crashes"; "recompiles"; "cache hit"; "storms";
    "primed"; "sf led"; "coalesced"; "dup compiles" ]

let storm_shard_row (r : Storms.shard_report) =
  [
    r.Storms.sr_name;
    r.Storms.sr_state;
    string_of_int r.Storms.sr_crashes;
    string_of_int r.Storms.sr_recompiles;
    Printf.sprintf "%.0f%%" (100. *. r.Storms.sr_cache_hit);
    string_of_int r.Storms.sr_storms;
    string_of_int r.Storms.sr_primed;
    string_of_int r.Storms.sr_sf_led;
    string_of_int r.Storms.sr_sf_coalesced;
    string_of_int r.Storms.sr_sf_dup;
  ]

let storms_section (o : Storms.outcome) =
  let cfg = o.Storms.o_config in
  Printf.printf
    "\n[%s] defenses %s, seed %d: %d shards, %d clients, %d variants, \
     machine %s\n"
    (Storms.schedule_name cfg.Storms.s_schedule)
    (if cfg.Storms.s_defenses then "ON" else "off")
    cfg.Storms.s_seed cfg.Storms.s_shards cfg.Storms.s_clients
    cfg.Storms.s_variants
    (Dbmem.Units.bytes_to_string cfg.Storms.s_total);
  table ~header:storm_shard_header
    (List.map storm_shard_row o.Storms.shard_reports);
  Printf.printf "  completions %s  (trigger at %.0fs)\n"
    (sparkline (Array.map snd o.Storms.slices))
    (Storms.fault_at cfg);
  Printf.printf
    "  rate: %.1f/slice before, %.1f after; recovery to 90%%: %s\n"
    o.Storms.pre_rate o.Storms.post_rate
    (if o.Storms.recovered then Printf.sprintf "%.0f s" o.Storms.recovery_s
     else "never (still collapsed at window end)");
  Printf.printf
    "  storm: retry amplification %.2fx, %d duplicate compiles (%d \
     coalesced away), %d episodes detected, %d templates warm-primed\n"
    o.Storms.retry_amp o.Storms.dup_compiles o.Storms.coalesced
    o.Storms.storms_detected o.Storms.primed;
  Printf.printf
    "  defenses: %d LIFO shifts, %d deadline sheds, %d budget denials\n"
    o.Storms.lifo_shifts o.Storms.deadline_sheds o.Storms.budget_denials;
  Printf.printf
    "  router: %d submitted, %d ok, %d failed (%d rejected), %d retries; \
     latency p50 %.0f ms, p99 %.0f ms\n"
    o.Storms.submitted o.Storms.ok o.Storms.failed o.Storms.rejected
    o.Storms.retries o.Storms.p50_ms o.Storms.p99_ms;
  Printf.printf "  clients: %d submitted, %d succeeded, %d abandoned\n"
    o.Storms.cl_submitted o.Storms.cl_succeeded o.Storms.cl_abandoned

(* Head-to-head verdict, the run's last word: the defended arm must come
   back faster (or come back at all when the other arm never does). *)
let storms_verdict ~defended ~undefended =
  let show o =
    if o.Storms.recovered then Printf.sprintf "%.0f s" o.Storms.recovery_s
    else "never"
  in
  Printf.printf
    "\n  recovery: defenses on %s, off %s -> %s; retry amplification \
     %.2fx vs %.2fx; duplicate compiles %d vs %d\n"
    (show defended) (show undefended)
    (if Storms.faster_recovery ~defended ~undefended then
       "defenses recover faster"
     else "NO DEFENSE WIN")
    defended.Storms.retry_amp undefended.Storms.retry_amp
    defended.Storms.dup_compiles undefended.Storms.dup_compiles

let cached_section ?baseline (o : Cached.outcome) =
  let cfg = o.Cached.o_config in
  Printf.printf
    "\n[%s] seed %d: %d clients (%.0f%% parameterized, %d variants), %d \
     writers, machine %s%s\n"
    (Cached.mode_name cfg.Cached.k_mode)
    cfg.Cached.k_seed cfg.Cached.k_clients
    (100. *. cfg.Cached.k_ratio)
    cfg.Cached.k_variants cfg.Cached.k_writers
    (Dbmem.Units.bytes_to_string cfg.Cached.k_memory)
    (if cfg.Cached.k_ballast_gib > 0. then
       Printf.sprintf ", %.1f GiB ballast" cfg.Cached.k_ballast_gib
     else "");
  Printf.printf "  completions %s\n"
    (sparkline (Array.map snd o.Cached.slices));
  Printf.printf
    "  %.1f compl/slice, %d completed; %d requests = %d hits + %d misses + \
     %d bypasses (hit rate %.0f%%)\n"
    o.Cached.mean_per_slice o.Cached.completed o.Cached.requests
    o.Cached.hits o.Cached.misses o.Cached.bypasses
    (100. *. o.Cached.cache_hit_rate);
  if cfg.Cached.k_mode <> Cached.Cache_off then begin
    Printf.printf
      "  cache: %s resident (peak %s) of %s; %d stores, %d refused, %d \
       evicted, %d expired, %d invalidated (%d writes)\n"
      (Dbmem.Units.bytes_to_string o.Cached.resident_end)
      (Dbmem.Units.bytes_to_string o.Cached.resident_peak)
      (Dbmem.Units.bytes_to_string o.Cached.budget_end)
      o.Cached.stores o.Cached.refused o.Cached.evictions o.Cached.expired
      o.Cached.invalidated o.Cached.writes;
    if o.Cached.shrink_events > 0 then
      Printf.printf "  broker squeezed the cache %d times, reclaiming %s\n"
        o.Cached.shrink_events
        (Dbmem.Units.bytes_to_string o.Cached.shrink_freed)
  end;
  Printf.printf
    "  engine: %d compiles (%d plan-cache hits), gateways %d acquires / %d \
     timeouts (mean wait %.2f s), compile peak %s, %d OOMs\n"
    o.Cached.compiles o.Cached.plan_hits o.Cached.gw_acquires
    o.Cached.gw_timeouts o.Cached.gw_wait_mean_s
    (Dbmem.Units.bytes_to_string (int_of_float o.Cached.compile_peak_max))
    o.Cached.ooms;
  Printf.printf
    "  latency p50 %.0f ms, p99 %.0f ms; clients: %d submitted, %d \
     succeeded, %d abandoned\n"
    o.Cached.p50_ms o.Cached.p99_ms o.Cached.cl_submitted
    o.Cached.cl_succeeded o.Cached.cl_abandoned;
  match baseline with
  | None -> ()
  | Some b ->
      Printf.printf "  throughput vs cache-off: %.2fx, gateway admissions \
                     %d -> %d\n"
        (Cached.uplift o ~over:b) b.Cached.gw_acquires o.Cached.gw_acquires

let cached_comparison (outcomes : Cached.outcome list) =
  print_newline ();
  table
    ~header:
      [
        "mode";
        "compl/slice";
        "hit%";
        "gw acq";
        "gw wait s";
        "compile peak";
        "shrinks";
        "p99 ms";
      ]
    (List.map
       (fun (o : Cached.outcome) ->
         [
           Cached.mode_name o.Cached.o_config.Cached.k_mode;
           Printf.sprintf "%.1f" o.Cached.mean_per_slice;
           Printf.sprintf "%.0f" (100. *. o.Cached.cache_hit_rate);
           string_of_int o.Cached.gw_acquires;
           Printf.sprintf "%.2f" o.Cached.gw_wait_mean_s;
           Dbmem.Units.bytes_to_string
             (int_of_float o.Cached.compile_peak_max);
           string_of_int o.Cached.shrink_events;
           Printf.sprintf "%.0f" o.Cached.p99_ms;
         ])
       outcomes);
  let find m =
    List.find_opt
      (fun (o : Cached.outcome) -> o.Cached.o_config.Cached.k_mode = m)
      outcomes
  in
  match (find Cached.Cache_off, find Cached.Cache_brokered) with
  | Some off, Some brokered ->
      Printf.printf
        "  brokered vs off: %.2fx throughput, gateway admissions %d -> %d\n"
        (Cached.uplift brokered ~over:off)
        off.Cached.gw_acquires brokered.Cached.gw_acquires
  | _ -> ()

(* The resilience section of a report: per-error-kind tallies plus the
   retry/shed/degrade counters, one block per result. *)
let resilience_section results =
  print_newline ();
  table ~header:resilience_header (List.map resilience_row results);
  List.iter
    (fun (r : Experiment.result) ->
      let nonzero = List.filter (fun (_, n) -> n > 0) r.Experiment.errors in
      if nonzero <> [] then begin
        Printf.printf "  errors (resilience %s): %s\n"
          (if r.Experiment.resilient then "on" else "off")
          (String.concat ", "
             (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) nonzero))
      end)
    results
