(** Plain-text rendering of experiment output: aligned tables, the
    throttled-vs-unthrottled series of Figures 3-5, and unicode sparklines
    for a quick visual read of each curve. *)

(** [table ~header rows] prints an aligned table to stdout. *)
val table : header:string list -> string list list -> unit

(** [sparkline values] renders values as a unicode bar string. *)
val sparkline : float array -> string

(** Print the two completions-per-slice series of a figure, slice by
    slice, followed by sparklines and the mean uplift. *)
val figure_series :
  title:string ->
  throttled:(float * float) array ->
  unthrottled:(float * float) array ->
  unit

(** One-line summary row for a result (used by the sweep tables). *)
val result_row : Experiment.result -> string list

val result_header : string list

(** Resilience counters for a result: hard errors, retries, sheds,
    degraded completions, client abandonment. *)
val resilience_row : Experiment.result -> string list

val resilience_header : string list

(** Print the resilience table for a set of results, followed by the
    per-error-kind tallies of any result that recorded errors. *)
val resilience_section : Experiment.result list -> unit

(** {1 Multi-tenant reports} *)

val tenant_header : string list

(** One row per pool: workload, clients, throughput, budget movement
    (start [->] end against the guaranteed floor), hit rates, errors. *)
val tenant_row : Tenants.tenant_result -> string list

(** Print one outcome: mode banner, per-pool table, per-pool throughput
    sparklines, and the arbiter's tick/rebalance/moved/reclaimed
    counters when the mode ran one. *)
val tenants_section : Tenants.outcome -> unit

(** {1 Sharded reports} *)

val shard_header : string list

(** One row per shard: final state, crash count, submission accounting
    (accepted/finished/lost/refused), the cold-cache recompilation count
    and the closing memory budget. *)
val shard_row : Shards.shard_result -> string list

(** Print one outcome: schedule banner, per-shard retention table,
    completions sparkline, router and arbiter counters. With [baseline]
    (the same seed's no-fault outcome) a throughput-retention line is
    appended. *)
val shards_section : ?baseline:Shards.outcome -> Shards.outcome -> unit

(** {1 Storm (metastable failure) reports} *)

val storm_shard_header : string list

(** One row per shard: final state, cold-cache recompiles, storm
    episodes, warm-primed templates and the singleflight ledger. *)
val storm_shard_row : Storms.shard_report -> string list

(** Print one arm: trigger banner, per-shard table, completions
    sparkline, the pre/post rates with the recovery verdict, and the
    storm counters (amplification, duplicate compiles, defenses). *)
val storms_section : Storms.outcome -> unit

(** The head-to-head line: recovery times, amplification and duplicate
    compiles, defenses on vs off, and which arm won. *)
val storms_verdict : defended:Storms.outcome -> undefended:Storms.outcome -> unit

(** {1 Mid-tier cache reports} *)

(** Print one outcome: mode banner, request accounting (hits / misses /
    bypasses), cache residency and staleness counters, compile-gateway
    pressure, and the completions sparkline. With [baseline] (the same
    seed's cache-off outcome) a throughput-uplift line is appended. *)
val cached_section : ?baseline:Cached.outcome -> Cached.outcome -> unit

(** Side-by-side summary table of the three modes plus the headline
    comparison lines (uplift over cache-off, gateway-admission drop,
    broker shrink activity). *)
val cached_comparison : Cached.outcome list -> unit
