(* The supervision trio, created only when [Config.supervision] is
   enabled. None of its mechanisms consume randomness, so a supervised
   run that never intervenes is event-for-event identical to the
   unsupervised one. *)
type supervisor = {
  wdog : Health.Watchdog.t;
  starv : Health.Starvation.t;
  breakers : Health.Breaker.t;
}

type t = {
  eng : Sim.Engine.t;
  trace : Obs.Trace.t;
  cfg : Config.t;
  cat : Optimizer.Catalog.t;
  manager : Dbmem.Manager.t;
  broker : Qcore.Broker.t;
  gov : Qcore.Compile_gov.t;
  pool : Bufpool.Pool.t;
  disk : Bufpool.Disk.t;
  cache : Plancache.Cache.t;
  grants : Execsim.Grant.t;
  cpu : Execsim.Cpu.t;
  metrics : Metrics.t;
  exec_resources : Execsim.Runner.resources;
  clerk_list : (string * Dbmem.Manager.clerk) list;
  ballast : Dbmem.Manager.clerk option;
      (* phantom external consumer, present only when faults are scheduled *)
  retry_rng : Sim.Rng.t option;
      (* jitter stream, split only when resilience is on so the disabled
         configuration replays the seed byte for byte *)
  super : supervisor option;
  sflight : Plancache.Singleflight.t;
      (* always present: Observe mode costs nothing and blocks nobody, it
         only counts the duplicate compiles coalescing would have saved,
         so a defenses-off run can report its duplication factor *)
  storm : Health.Storm.t;
  prime_reps : (string, Optimizer.Query.t) Hashtbl.t;
      (* one representative query per template, for warm-priming *)
  template_counts : (string, int) Hashtbl.t;
      (* submissions per template: the popularity order priming follows *)
  mutable primed : int;
  mutable arenas : Optimizer.Cascades.arena list;
      (* free pool of memo arenas, one per concurrent compile: compiles
         suspend at governor gateways, so in-flight searches cannot share
         storage. Steady state settles at the compile-concurrency
         high-water mark and every compile reuses grown memo structures *)
}

let acquire_arena t =
  match t.arenas with
  | a :: rest ->
      t.arenas <- rest;
      a
  | [] -> Optimizer.Cascades.create_arena ()

let release_arena t a =
  (* Eager reset so a parked arena does not pin the plans of the query it
     just compiled. *)
  Optimizer.Cascades.reset_arena a;
  t.arenas <- a :: t.arenas

(* Queries are named "<template>#<serial>"; the breaker keys on the
   template so a poison shape trips without condemning its siblings. *)
let template_of_qid qid =
  match String.index_opt qid '#' with
  | Some i -> String.sub qid 0 i
  | None -> qid

let create ?(trace = Obs.Trace.null) eng cfg cat =
  let manager = Dbmem.Manager.create ~total:cfg.Config.memory_bytes () in
  if Obs.Trace.enabled trace then
    Dbmem.Manager.set_trace manager ~now:(fun () -> Sim.Engine.now eng) trace;
  let pool_clerk = Dbmem.Manager.create_clerk manager "bufpool" in
  let cache_clerk = Dbmem.Manager.create_clerk manager "plancache" in
  let compile_clerk = Dbmem.Manager.create_clerk manager "compile" in
  let exec_clerk = Dbmem.Manager.create_clerk manager "execution" in
  let disk =
    Bufpool.Disk.create eng ~spindles:cfg.Config.disk_spindles
      ~seek_s:cfg.Config.disk_seek_s
      ~throughput_bytes_per_s:cfg.Config.disk_throughput
  in
  let pool =
    Bufpool.Pool.create eng manager ~clerk:pool_clerk ~disk
      ~page_bytes:cfg.Config.page_bytes ~policy:cfg.Config.pool_policy
  in
  let cache = Plancache.Cache.create manager ~clerk:cache_clerk in
  let workspace =
    int_of_float (cfg.Config.workspace_frac *. float_of_int cfg.Config.memory_bytes)
  in
  let grants =
    Execsim.Grant.create eng manager ~trace ~clerk:exec_clerk ~total:workspace
      ~max_query_frac:cfg.Config.grant_max_query_frac
      ~timeout:cfg.Config.grant_timeout ()
  in
  let cpu = Execsim.Cpu.create eng ~cores:cfg.Config.cpus () in
  let gov =
    Qcore.Compile_gov.create eng manager ~trace ~clerk:compile_clerk
      ~cpus:cfg.Config.cpus ~config:cfg.Config.throttle
      ~enabled:cfg.Config.throttle_enabled ()
  in
  (* Caches donate under manager pressure: plan cache first, pool second.
     The configured floor shields a small warm set from the donor walk —
     with the default floor of 0 the cache donates everything, exactly the
     original behaviour. *)
  let cache_floor = cfg.Config.plan_cache_floor_bytes in
  Dbmem.Manager.register_donor manager ~clerk:cache_clerk ~priority:0
    ~shrink:(fun n ->
      let spare = max 0 (Plancache.Cache.bytes cache - cache_floor) in
      if spare = 0 then 0 else Plancache.Cache.shrink cache (min n spare));
  Dbmem.Manager.register_donor manager ~clerk:pool_clerk ~priority:1
    ~shrink:(fun n -> Bufpool.Pool.shrink pool n);
  (* Broker components and their reactions to verdicts. With supervision
     on, the broker also gets the insistence knob (unless the caller set
     one explicitly) and per-component reclaim hooks, so a component that
     ignores [insist_after] consecutive shrink verdicts is shrunk by
     force — the paper's "broker insists". *)
  let sup = cfg.Config.supervision in
  let broker_cfg =
    if sup.Health.Supervise.enabled && cfg.Config.broker.Qcore.Broker.insist_after = 0
    then
      { cfg.Config.broker with
        Qcore.Broker.insist_after = sup.Health.Supervise.insist_after }
    else cfg.Config.broker
  in
  let broker = Qcore.Broker.create ~trace eng manager broker_cfg in
  let _pool_comp =
    Qcore.Broker.register broker ~name:"bufpool" ~clerk:pool_clerk ~weight:1.5
      ~min_bytes:cfg.Config.min_pool_bytes
      ~demand:(fun () -> Bufpool.Pool.demand_hint pool)
      ~notify:(fun n ->
        match n.Qcore.Broker.verdict with
        | Qcore.Broker.Must_shrink ->
            ignore (Bufpool.Pool.shrink_to pool n.Qcore.Broker.target)
        | Qcore.Broker.Hold_rate | Qcore.Broker.Can_grow -> ())
      ~reclaim:(fun n -> Bufpool.Pool.shrink pool n)
      ()
  in
  let _cache_comp =
    (* With a protected floor the cache also reports real demand (resident
       plus eviction churn) so the broker's split sees the warm set; at
       floor 0 the registration is identical to the seed's. *)
    Qcore.Broker.register broker ~name:"plancache" ~clerk:cache_clerk ~weight:0.3
      ~min_bytes:cache_floor
      ?demand:
        (if cache_floor > 0 then
           Some (fun () -> Plancache.Cache.demand_hint cache)
         else None)
      ~notify:(fun n ->
        match n.Qcore.Broker.verdict with
        | Qcore.Broker.Must_shrink ->
            let keep = max n.Qcore.Broker.target cache_floor in
            let excess = Plancache.Cache.bytes cache - keep in
            if excess > 0 then ignore (Plancache.Cache.shrink cache excess)
        | Qcore.Broker.Hold_rate | Qcore.Broker.Can_grow -> ())
      ~reclaim:(fun n -> Plancache.Cache.shrink cache n)
      ()
  in
  let _compile_comp =
    Qcore.Broker.register broker ~name:"compile" ~clerk:compile_clerk ~weight:0.6
      ~min_bytes:(Dbmem.Units.mib 512)
      ~notify:(fun n -> Qcore.Compile_gov.on_notification gov n)
      ()
  in
  (* Execution memory is registered for accounting and target computation,
     but the resource semaphore keeps its static size: shrinking it under a
     queued large request would strand the queue head (grants are trimmed
     per query and spill instead). *)
  let _exec_comp =
    Qcore.Broker.register broker ~name:"execution" ~clerk:exec_clerk ~weight:1.2
      ~min_bytes:cfg.Config.min_workspace_bytes ()
  in
  let metrics = Metrics.create eng in
  let exec_resources =
    {
      Execsim.Runner.eng;
      cpu;
      pool;
      disk;
      grants;
      rng = Sim.Rng.split (Sim.Engine.rng eng);
    }
  in
  (* The ballast clerk models an external memory consumer (faultsim's
     phantom process). It is registered with the broker so the spike shows
     up in predictions and squeezes everyone else's target — but it
     ignores its verdicts, exactly like a process outside the DBMS. Only
     created when a fault schedule exists, so benign configurations keep
     the seed's broker arithmetic untouched. *)
  let ballast =
    match cfg.Config.faults with
    | [] -> None
    | _ :: _ ->
        let clerk = Dbmem.Manager.create_clerk manager "ballast" in
        ignore
          (Qcore.Broker.register broker ~name:"ballast" ~clerk ~weight:1.0 ());
        Some clerk
  in
  (* Split whenever resilience OR faults are configured — not just
     resilience — so a chaos A/B pair (same faults, resilience on vs off)
     consumes the engine's rng stream identically and sees the very same
     client workload. The plain seed config (no faults, no resilience)
     splits nothing, preserving seed behaviour exactly. *)
  let retry_rng =
    if cfg.Config.resilience.Resilience.enabled || cfg.Config.faults <> []
    then Some (Sim.Rng.split (Sim.Engine.rng eng))
    else None
  in
  let super =
    if not sup.Health.Supervise.enabled then None
    else begin
      let wdog = Health.Watchdog.create ~trace eng sup.Health.Supervise.watchdog in
      let starv =
        Health.Starvation.create ~trace eng sup.Health.Supervise.starvation
      in
      (* The audited gates are the compile gateways; the grant queue is
         byte-denominated and already trims per query, so widening it is
         the broker's job, not the auditor's. *)
      Array.iter
        (fun m ->
          Health.Starvation.add_gate starv ~name:(Qcore.Monitor.name m)
            ~queued:(fun () -> Qcore.Monitor.queued m)
            ~admitted:(fun () -> Qcore.Monitor.acquires m)
            ~slots:(fun () -> Qcore.Monitor.slots m)
            ~set_slots:(fun n -> Qcore.Monitor.set_slots m n))
        (Qcore.Compile_gov.monitors gov);
      let breakers =
        Health.Breaker.create ~trace eng sup.Health.Supervise.breaker
      in
      Some { wdog; starv; breakers }
    end
  in
  let defense = cfg.Config.defense in
  let sflight =
    Plancache.Singleflight.create
      ~mode:
        (if defense.Config.d_singleflight then Plancache.Singleflight.Coalesce
         else Plancache.Singleflight.Observe)
      eng
  in
  (if Obs.Trace.enabled trace then
     Plancache.Singleflight.set_on_coalesce sflight (fun ~key ~waiters ->
         let template =
           match String.index_opt key '|' with
           | Some i -> String.sub key 0 i
           | None -> key
         in
         Obs.Trace.emit trace ~time:(Sim.Engine.now eng) ~qid:template
           (Obs.Event.Singleflight_coalesce { template; waiters })));
  let storm = Health.Storm.create ~trace eng defense.Config.d_storm in
  if defense.Config.d_adaptive_queues || defense.Config.d_deadline_shed then
    Qcore.Compile_gov.set_defense gov
      {
        Qcore.Compile_gov.adaptive_lifo = defense.Config.d_adaptive_queues;
        lifo_after_s = defense.Config.d_lifo_after_s;
        deadline_shed = defense.Config.d_deadline_shed;
      };
  {
    eng;
    trace;
    cfg;
    cat;
    manager;
    broker;
    gov;
    pool;
    disk;
    cache;
    grants;
    cpu;
    metrics;
    exec_resources;
    clerk_list =
      ([
         ("bufpool", pool_clerk);
         ("plancache", cache_clerk);
         ("compile", compile_clerk);
         ("execution", exec_clerk);
       ]
      @ match ballast with Some c -> [ ("ballast", c) ] | None -> []);
    ballast;
    retry_rng;
    super;
    sflight;
    storm;
    prime_reps = Hashtbl.create 16;
    template_counts = Hashtbl.create 16;
    primed = 0;
    arenas = [];
  }

let start t =
  Qcore.Broker.start t.broker;
  Metrics.watch_memory ~trace:t.trace t.metrics
    ~interval:t.cfg.Config.metrics_interval t.clerk_list;
  match t.super with
  | None -> ()
  | Some s ->
      Health.Watchdog.start s.wdog;
      Health.Starvation.start s.starv

let emit t ~qid ev =
  if Obs.Trace.enabled t.trace then
    Obs.Trace.emit t.trace ~time:(Sim.Engine.now t.eng) ~qid ev

(* Governed compilation: the Cascades environment reports allocations to
   the governor (which may block at gateways or fail), burns CPU on the
   shared pool, and asks the governor whether the broker predicts compile-
   memory exhaustion. [deadline], when set, is the per-query deadline: a
   compilation past it is cancelled at its next allocation rather than
   holding gateways for work that can no longer matter. [watch], when
   set, is the query's watchdog session: every allocation beats it, a
   softened session forces best-plan-so-far, and a cancel request aborts
   at the next allocation ([by_watchdog] distinguishes that abort from a
   deadline when mapping to the error taxonomy — the optimizer's abort
   vocabulary stays supervision-free). *)
let compile t ?deadline ?watch ~by_watchdog ~gov_shed q =
  let session =
    (* The session's deadline feeds the governor's deadline-aware shed:
       with that defense on, a gateway wait is capped at the deadline and
       a hopeless waiter is refused before it enqueues. *)
    Qcore.Compile_gov.begin_compile ~qid:q.Optimizer.Query.qid ?deadline t.gov
  in
  let check_deadline () =
    match deadline with
    | Some d when Sim.Engine.now t.eng > d ->
        raise (Optimizer.Env.Aborted Optimizer.Env.Cancelled)
    | _ -> ()
  in
  let check_watchdog () =
    match watch with
    | Some wd ->
        Health.Watchdog.beat wd;
        if Health.Watchdog.cancel_requested wd then begin
          by_watchdog := true;
          raise (Optimizer.Env.Aborted Optimizer.Env.Cancelled)
        end
    | None -> ()
  in
  let env =
    {
      Optimizer.Env.alloc =
        (fun n ->
          check_watchdog ();
          check_deadline ();
          match Qcore.Compile_gov.alloc session n with
          | Ok () -> ()
          | Error { Health.Error.code = Health.Error.Memory_wait_timeout; detail }
            ->
              raise
                (Optimizer.Env.Aborted (Optimizer.Env.Gateway_timeout detail))
          | Error ({ Health.Error.code = Health.Error.Deadline_exceeded; _ } as e)
            ->
              (* The governor's deadline shed refused or cut short a
                 gateway wait. Keep the structured error (its detail names
                 the shedding gate) and abort through the optimizer's
                 cancel vocabulary. *)
              gov_shed := Some e;
              raise (Optimizer.Env.Aborted Optimizer.Env.Cancelled)
          | Error _ ->
              raise (Optimizer.Env.Aborted Optimizer.Env.Out_of_memory));
      cpu = (fun s -> Execsim.Cpu.busy t.cpu s);
      should_stop =
        (fun () ->
          Qcore.Compile_gov.should_stop_early t.gov
          || match watch with
             | Some wd -> Health.Watchdog.softened wd
             | None -> false);
    }
  in
  let started = Sim.Engine.now t.eng in
  let arena = acquire_arena t in
  let result =
    Fun.protect
      ~finally:(fun () ->
        release_arena t arena;
        Metrics.record_compile_peak t.metrics (Qcore.Compile_gov.peak session);
        Qcore.Compile_gov.end_compile session)
      (fun () ->
        Optimizer.Cascades.optimize ~params:t.cfg.Config.optimizer_params
          ~arena ~env t.cfg.Config.cost_model t.cat q)
  in
  match result with
  | Ok r ->
      let elapsed = Sim.Engine.now t.eng -. started in
      Ok (r, elapsed)
  | Error reason -> Error reason

(* Bottom rung of the degradation ladder: skip the memo search entirely and
   emit the greedy left-deep plan. Still governed — the (tiny) footprint is
   metered so accounting stays honest — but it passes under the first
   gateway threshold and cannot meaningfully contribute to compile-memory
   pressure. *)
let compile_degraded t q =
  emit t ~qid:q.Optimizer.Query.qid (Obs.Event.Degrade { rung = "greedy" });
  let session =
    Qcore.Compile_gov.begin_compile ~qid:q.Optimizer.Query.qid t.gov
  in
  let started = Sim.Engine.now t.eng in
  Fun.protect
    ~finally:(fun () ->
      Metrics.record_compile_peak t.metrics (Qcore.Compile_gov.peak session);
      Qcore.Compile_gov.end_compile session)
    (fun () ->
      let params = t.cfg.Config.optimizer_params in
      let n = Optimizer.Query.n_rels q in
      match
        Qcore.Compile_gov.alloc session
          (params.Optimizer.Cascades.phys_bytes * n)
      with
      | Error e -> Error e
      | Ok () ->
          (* Greedy is ~n^2 candidate evaluations. *)
          Execsim.Cpu.busy t.cpu
            (params.Optimizer.Cascades.task_cpu *. float_of_int (n * n));
          let card = Optimizer.Card.create t.cat q in
          let plan = Optimizer.Greedy.plan t.cfg.Config.cost_model card in
          Ok (plan, Sim.Engine.now t.eng -. started))

(* Admission control: with [in_flight] compilations already holding or
   chasing compile memory and each expected to peak near the observed
   mean, admitting another would push predicted demand past
   [shed_factor * broker target]. Only engages under broker pressure — or
   during an active miss storm, when the detector's recovery mode
   tightens admission without waiting for memory pressure to confirm what
   the arrival trend already shows — so a benign system never sheds. *)
let should_shed t =
  let r = t.cfg.Config.resilience in
  r.Resilience.enabled && r.Resilience.shed_enabled
  && (Qcore.Compile_gov.pressure t.gov <> Qcore.Compile_gov.Calm
     || Health.Storm.active t.storm)
  &&
  let target = Qcore.Compile_gov.broker_target t.gov in
  target > 0
  &&
  let peaks = Metrics.compile_peak t.metrics in
  let predicted_per_query =
    if Sim.Stats.Online.count peaks > 0 then Sim.Stats.Online.mean peaks
    else float_of_int (Dbmem.Units.mib 32)
  in
  let in_flight = Qcore.Compile_gov.active_sessions t.gov + 1 in
  float_of_int in_flight *. predicted_per_query
  > r.Resilience.shed_factor *. float_of_int target

let abort_to_error ~by_watchdog = function
  | Optimizer.Env.Out_of_memory ->
      Health.Error.make ~detail:"compile" Health.Error.Insufficient_memory
  | Optimizer.Env.Gateway_timeout m ->
      Health.Error.make ~detail:m Health.Error.Memory_wait_timeout
  | Optimizer.Env.Cancelled ->
      if by_watchdog then
        Health.Error.make ~detail:"compile" Health.Error.Watchdog_cancelled
      else Health.Error.make ~detail:"compile" Health.Error.Deadline_exceeded

(* The full Cascades search, inserted into the plan cache on success. *)
let compile_full t ~deadline ~watch q =
  let by_watchdog = ref false in
  let gov_shed = ref None in
  match compile t ?deadline ?watch ~by_watchdog ~gov_shed q with
  | Ok (r, elapsed) ->
      let compile_cost =
        float_of_int r.Optimizer.Cascades.stats.Optimizer.Cascades.tasks
        *. t.cfg.Config.optimizer_params.Optimizer.Cascades.task_cpu
      in
      Plancache.Cache.insert t.cache ~key:q.Optimizer.Query.qid
        ~plan:r.Optimizer.Cascades.plan ~compile_cost;
      Ok (r.Optimizer.Cascades.plan, elapsed, false)
  | Error reason -> (
      match !gov_shed with
      | Some e -> Error e
      | None -> Error (abort_to_error ~by_watchdog:!by_watchdog reason))

(* One compile attempt, choosing the ladder rung. Cached plans bypass
   everything: they cost no compile memory. Degraded plans are *not*
   cached — a repeat of the same query in calmer weather deserves the real
   optimizer. Full compiles go through singleflight, keyed on the
   canonical statement (Midcache.Frontend keying, so parameterized
   replays of one template share a key): the first miss leads and
   compiles, concurrent misses of the same statement coalesce onto it and
   re-probe the cache when it lands — a cold cache costs one compile per
   template, not one per client. [sf_depth] bounds the re-probe
   recursion: a follower woken by a failed (or evicted) leader re-enters
   at most twice, then compiles solo rather than chasing races. *)
let rec plan_for t ~degraded ~deadline ~watch ?(sf_depth = 0) q =
  match Plancache.Cache.lookup t.cache q.Optimizer.Query.qid with
  | Some plan ->
      Metrics.record_cache_hit t.metrics;
      emit t ~qid:q.Optimizer.Query.qid Obs.Event.Cache_hit;
      Ok (plan, 0., false)
  | None when degraded -> (
      Health.Storm.note_compile t.storm
        ~template:(template_of_qid q.Optimizer.Query.qid);
      match compile_degraded t q with
      | Ok (plan, elapsed) -> Ok (plan, elapsed, true)
      | Error e -> Error e)
  | None -> (
      Health.Storm.note_compile t.storm
        ~template:(template_of_qid q.Optimizer.Query.qid);
      let key = Midcache.Frontend.key_of_query q in
      match
        Plancache.Singleflight.enter t.sflight ~key
          ~max_wait:t.cfg.Config.defense.Config.d_sf_wait_s ()
      with
      | `Leader tok ->
          Fun.protect
            ~finally:(fun () -> Plancache.Singleflight.exit t.sflight tok)
            (fun () -> compile_full t ~deadline ~watch q)
      | `Duplicate ->
          (* Observe mode: the duplicate is counted, nobody blocks. *)
          compile_full t ~deadline ~watch q
      | `Coalesced when sf_depth < 2 ->
          (* The leader finished (or failed); the shared plan, if any, is
             in the cache under this query's own qid-aliased key. *)
          plan_for t ~degraded ~deadline ~watch ~sf_depth:(sf_depth + 1) q
      | `Coalesced | `Timed_out -> compile_full t ~deadline ~watch q)

let submit t q =
  let r = t.cfg.Config.resilience in
  let deadline =
    if r.Resilience.enabled && r.Resilience.deadline_s > 0. then
      Some (Sim.Engine.now t.eng +. r.Resilience.deadline_s)
    else None
  in
  let past_deadline () =
    match deadline with
    | Some d -> Sim.Engine.now t.eng > d
    | None -> false
  in
  let qid = q.Optimizer.Query.qid in
  let template = template_of_qid qid in
  (* Popularity book for warm-priming: which templates this server is
     asked for, and one representative query per template to prime from.
     Only kept when priming is configured, so other runs stay lean. *)
  if t.cfg.Config.defense.Config.d_warm_prime > 0 then begin
    Hashtbl.replace t.template_counts template
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.template_counts template));
    if not (Hashtbl.mem t.prime_reps template) then
      Hashtbl.add t.prime_reps template q
  end;
  let fail (e : Health.Error.t) =
    Metrics.record_error t.metrics e.Health.Error.code;
    emit t ~qid
      (Obs.Event.Query_error { kind = Health.Error.code_name e.Health.Error.code });
    (* Hard failures feed the template's breaker; back-pressure results
       (sheds, breaker refusals) must not, or an open breaker would keep
       itself open with its own rejections. *)
    (match t.super with
    | Some s when Metrics.is_hard_error e.Health.Error.code ->
        Health.Breaker.record_failure s.breakers ~template
    | _ -> ());
    Error e
  in
  (* Breaker admission first — the cheapest gate: a poison template is
     refused before it can burn a gateway slot or a grant wait. *)
  match
    match t.super with
    | Some s -> Health.Breaker.admit s.breakers ~template
    | None -> Ok ()
  with
  | Error e -> fail e
  | Ok () when should_shed t ->
      emit t ~qid Obs.Event.Shed;
      (* If this arrival was a half-open breaker's probe, hand the probe
         slot back: the shed is our own back-pressure, not evidence about
         the template, and a phantom in-flight probe would wedge the
         breaker half-open. *)
      (match t.super with
      | Some s -> Health.Breaker.release_probe s.breakers ~template
      | None -> ());
      fail (Health.Error.make ~detail:"admission" Health.Error.Admission_shed)
  | Ok () ->
      let watch =
        match t.super with
        | Some s -> Some (Health.Watchdog.watch s.wdog ~qid)
        | None -> None
      in
      let beat () =
        match watch with Some wd -> Health.Watchdog.beat wd | None -> ()
      in
      let cancelled () =
        match watch with
        | Some wd -> Health.Watchdog.cancel_requested wd
        | None -> false
      in
      let finally () =
        match (t.super, watch) with
        | Some s, Some wd -> Health.Watchdog.unwatch s.wdog wd
        | _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      (* Retry ladder: [attempt] is 1-based; [degraded] sticks once
         entered. Transient codes (memory-wait timeouts at gateways or the
         grant queue, low-memory grant failures — all symptoms of a
         passing memory or load transient) back off and retry; compile
         insufficient-memory falls one rung down the ladder and retries
         immediately with the greedy plan; everything else is final. *)
      let rec attempt n ~degraded =
        (* Under any broker pressure the full search would queue at
           shrunken gateways (and likely OOM); go straight to the cheap
           rung instead of burning a long gateway wait first. *)
        let degraded =
          degraded
          || r.Resilience.enabled && r.Resilience.degrade_enabled
             && Qcore.Compile_gov.pressure t.gov <> Qcore.Compile_gov.Calm
        in
        match plan_for t ~degraded ~deadline ~watch q with
        | Error { Health.Error.code = Health.Error.Insufficient_memory; _ }
          when r.Resilience.enabled && r.Resilience.degrade_enabled
               && not degraded ->
            (* The full search could not get memory; the greedy plan needs
               almost none. Fall down the ladder without burning a retry. *)
            attempt n ~degraded:true
        | Error ({ Health.Error.code = Health.Error.Memory_wait_timeout; _ } as e)
          ->
            retry n ~degraded e
        | Error e -> fail e
        | Ok (plan, compile_s, was_degraded) ->
            if cancelled () then
              fail
                (Health.Error.make ~detail:"exec"
                   Health.Error.Watchdog_cancelled)
            else if past_deadline () then
              fail
                (Health.Error.make ~detail:"exec"
                   Health.Error.Deadline_exceeded)
            else (
              beat ();
              let finish ~reduced outcome =
                beat ();
                Metrics.record_completion t.metrics ~compile_s
                  ~exec_s:outcome.Execsim.Runner.duration;
                if was_degraded || reduced then
                  Metrics.record_degraded t.metrics;
                Ok ()
              in
              match
                Execsim.Runner.run ~qid t.exec_resources
                  t.cfg.Config.exec_config plan
              with
              | Ok outcome -> finish ~reduced:false outcome
              | Error { Health.Error.code = Health.Error.Low_memory_condition; _ }
                when r.Resilience.enabled && r.Resilience.degrade_enabled -> (
                  (* The exec rung of the ladder: the plan's ideal
                     workspace is not physically available, so immediately
                     rerun asking for the grant floor and spill the
                     shortfall to disk — slower, but it completes while
                     the full-size run cannot. *)
                  match
                    Execsim.Runner.run
                      ~grant_cap:(Execsim.Grant.min_grant t.grants)
                      ~qid t.exec_resources t.cfg.Config.exec_config plan
                  with
                  | Ok outcome -> finish ~reduced:true outcome
                  | Error e -> retry n ~degraded e)
              | Error e -> retry n ~degraded e)
      and retry n ~degraded (e : Health.Error.t) =
        match t.retry_rng with
        | Some rng when r.Resilience.enabled && n <= r.Resilience.max_retries
          ->
            let pause = Resilience.backoff r ~attempt:n ~rng in
            if
              match deadline with
              | Some d -> Sim.Engine.now t.eng +. pause > d
              | None -> false
            then fail e
            else begin
              Metrics.record_retry t.metrics;
              emit t ~qid
                (Obs.Event.Retry
                   { attempt = n; pause_s = pause;
                     kind = Health.Error.code_name e.Health.Error.code });
              (* Under broker pressure the failure is storm-induced: park,
                 and cut the backoff short (after a minimum base pause) as
                 soon as the broker calms, so queries stranded behind a
                 pressure spike retry at the release instead of a full
                 exponential later. In calm weather keep the plain
                 exponential pause — sliced when supervised so the
                 heartbeat stays fresh (a parked query is waiting, not
                 stuck). *)
              let parked =
                Qcore.Compile_gov.pressure t.gov <> Qcore.Compile_gov.Calm
              in
              (if not parked then
                 match watch with
                 | None -> Sim.Engine.sleep pause
                 | Some wd ->
                     let slice = 15.0 in
                     let rec nap slept =
                       if slept < pause then begin
                         let step = Float.min slice (pause -. slept) in
                         Sim.Engine.sleep step;
                         Health.Watchdog.beat wd;
                         nap (slept +. step)
                       end
                     in
                     nap 0.
               else begin
                 let slice = 5.0 in
                 let minimum = Float.min pause r.Resilience.backoff_base_s in
                 let rec nap slept =
                   if slept < pause then begin
                     let step = Float.min slice (pause -. slept) in
                     Sim.Engine.sleep step;
                     beat ();
                     let slept = slept +. step in
                     if
                       slept < minimum
                       || Qcore.Compile_gov.pressure t.gov
                          <> Qcore.Compile_gov.Calm
                     then nap slept
                   end
                 in
                 nap 0.
               end);
              if cancelled () then
                fail
                  (Health.Error.make ~detail:"retry"
                     Health.Error.Watchdog_cancelled)
              else attempt (n + 1) ~degraded
            end
        | _ -> fail e
      in
      let result = attempt 1 ~degraded:false in
      (match (result, t.super) with
      | Ok (), Some s -> Health.Breaker.record_success s.breakers ~template
      | _ -> ());
      result

let submit_catch t q =
  match submit t q with
  | Ok () -> Ok ()
  | Error e -> Error (Health.Error.to_string e)

(* Compile [q] into the plan cache without executing it — the warm-prime
   path. Goes through [plan_for], so a priming compile takes the gateways
   like any other and, with singleflight on, becomes the leader that
   storming clients coalesce onto: the prime pays the compile once and
   the whole queue shares it. *)
let prime t q =
  match plan_for t ~degraded:false ~deadline:None ~watch:None q with
  | Ok (_plan, elapsed, _) ->
      if elapsed > 0. then t.primed <- t.primed + 1;
      Ok ()
  | Error e -> Error e

(* Prime the hottest templates by observed submission count (ties broken
   by name, so the order is deterministic). Runs in the caller's process
   and blocks at the gateways; spawn it. *)
let warm_prime t =
  let k = t.cfg.Config.defense.Config.d_warm_prime in
  if k > 0 then
    Hashtbl.fold (fun tpl count acc -> (tpl, count) :: acc) t.template_counts []
    |> List.sort (fun (ta, ca) (tb, cb) ->
           if ca <> cb then compare cb ca else compare ta tb)
    |> List.filteri (fun i _ -> i < k)
    |> List.iter (fun (tpl, _) ->
           match Hashtbl.find_opt t.prime_reps tpl with
           | Some q -> ignore (prime t q)
           | None -> ())

(* Wire the configured fault schedule into this server's attack surface.
   [spawn_burst] is supplied by whoever owns the workload (Experiment, the
   chaos driver); without it, Client_burst specs are inert. *)
let install_faults ?spawn_burst t =
  match t.cfg.Config.faults with
  | [] -> None
  | specs ->
      let ballast_clerk =
        match t.ballast with
        | Some c -> c
        | None -> assert false (* created whenever faults <> [] *)
      in
      let hooks =
        {
          Faultsim.Injector.ballast_grab =
            (fun n ->
              match Dbmem.Manager.alloc ballast_clerk n with
              | Ok () -> true
              | Error `Out_of_memory -> false);
          ballast_release =
            (fun n ->
              Dbmem.Manager.free ballast_clerk
                (min n (Dbmem.Manager.clerk_used ballast_clerk)));
          disk_set =
            (fun ~throughput_factor ~extra_seek_s ->
              Bufpool.Disk.set_degradation t.disk ~throughput_factor
                ~extra_seek_s);
          disk_clear = (fun () -> Bufpool.Disk.clear_degradation t.disk);
          alloc_fault_set =
            (fun f -> Dbmem.Manager.set_alloc_fault t.manager (Some f));
          alloc_fault_clear =
            (fun () -> Dbmem.Manager.set_alloc_fault t.manager None);
          burst_clients =
            (match spawn_burst with
            | Some f -> f
            | None -> fun ~clients:_ ~think_mean:_ ~until:_ -> ());
          (* Shard faults only mean something one level up, where a router
             owns several engines; a single server has no shard to kill. *)
          shard_crash = (fun ~shard:_ ~restart_delay:_ -> ());
          shard_stall = (fun ~shard:_ ~duration:_ ~slow_factor:_ -> ());
        }
      in
      Some
        (Faultsim.Injector.install t.eng
           ~rng:(Sim.Rng.split (Sim.Engine.rng t.eng))
           ~hooks specs)

(* [demand] frees until [available >= goal]; aiming at current available
   plus [n] frees ~[n] bytes even while the manager is over-committed
   (available negative) after an arbiter budget cut. *)
let reclaim t n =
  if n <= 0 then 0
  else
    Dbmem.Manager.demand t.manager (Dbmem.Manager.available t.manager + n)

(* Snapshot of what the supervision layer saw and did. Meaningful for an
   unsupervised server too: the error budget and completion counts come
   from the metrics, with all supervision counters at zero. *)
let health_report t ?(since = 0.) () =
  {
    Health.Report.duration_s = Sim.Engine.now t.eng -. since;
    completed = Metrics.total_completions t.metrics ~since ();
    errors = Metrics.errors t.metrics;
    watchdog_watched =
      (match t.super with Some s -> Health.Watchdog.watched s.wdog | None -> 0);
    watchdog_stale =
      (match t.super with
      | Some s -> Health.Watchdog.stale_total s.wdog
      | None -> 0);
    watchdog_cancels =
      (match t.super with
      | Some s -> Health.Watchdog.cancel_total s.wdog
      | None -> 0);
    breaker_opens =
      (match t.super with
      | Some s -> Health.Breaker.opened_total s.breakers
      | None -> 0);
    breaker_closes =
      (match t.super with
      | Some s -> Health.Breaker.closed_total s.breakers
      | None -> 0);
    breakers_open =
      (match t.super with
      | Some s -> Health.Breaker.states s.breakers
      | None -> []);
    gate_widens =
      (match t.super with
      | Some s -> Health.Starvation.widen_total s.starv
      | None -> 0);
    gates_widened =
      (match t.super with
      | Some s -> Health.Starvation.widened_now s.starv
      | None -> []);
    forced_reclaims = Qcore.Broker.forced_reclaims t.broker;
  }

let engine t = t.eng
let trace t = t.trace
let config t = t.cfg
let metrics t = t.metrics
let manager t = t.manager
let broker t = t.broker
let governor t = t.gov
let pool t = t.pool
let disk t = t.disk
let plan_cache t = t.cache
let grants t = t.grants
let cpu t = t.cpu
let catalog t = t.cat
let clerks t = t.clerk_list
let ballast_clerk t = t.ballast
let singleflight t = t.sflight
let storm_detector t = t.storm
let primed_total t = t.primed
