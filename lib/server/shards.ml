(* Sharded scale-out experiment: N shards behind a health-aware router,
   driven by the parameterized (cacheable) SALES workload, with shard
   faults injected from a declarative schedule. The interesting
   comparison is crash-failover with versus without compile gateways: a
   restarted shard rejoins with an empty plan cache, every parameterized
   template recompiles at once, and only gateway throttling keeps that
   storm from collapsing the rejoining shard's throughput. *)

type schedule = No_fault | Crash_failover | Rolling_restart | Brownout

let schedule_name = function
  | No_fault -> "no-fault"
  | Crash_failover -> "crash-failover"
  | Rolling_restart -> "rolling-restart"
  | Brownout -> "brownout"

type config = {
  c_shards : int;
  c_clients : int;
  c_variants : int;  (** parameterized templates in the workload *)
  c_think : float;
  c_warmup : float;
  c_measure : float;
  c_slice : float;
  c_total : int;  (** machine bytes, split total/shards initially *)
  c_gateways : bool;  (** per-shard compile-gateway throttling *)
  c_hedge : bool;  (** hedge submissions to browned-out shards *)
  c_seed : int;
  c_schedule : schedule;
}

let default_config =
  {
    c_shards = 4;
    c_clients = 32;
    c_variants = 40;
    c_think = 20.;
    c_warmup = 400.;
    c_measure = 1200.;
    c_slice = 60.;
    c_total = 8 * 1024 * 1024 * 1024;
    c_gateways = true;
    c_hedge = false;
    c_seed = 42;
    c_schedule = No_fault;
  }

(* Fault schedules are measure-relative so shrinking a smoke run shrinks
   the outage with it. The crash lands a quarter into the window and the
   shard stays down for another quarter: the last half of the window
   shows the rejoined shard riding out its recompilation storm. *)
let faults_of cfg =
  let at = cfg.c_warmup +. (0.25 *. cfg.c_measure) in
  match cfg.c_schedule with
  | No_fault -> []
  | Crash_failover ->
      [
        Faultsim.Fault.Shard_crash
          { at; shard = 1; restart_delay = 0.25 *. cfg.c_measure };
      ]
  | Rolling_restart ->
      (* Staggered: each shard is down for half a stagger interval, so at
         most one shard is missing at any time. *)
      let interval = cfg.c_measure /. float_of_int (cfg.c_shards + 1) in
      List.init cfg.c_shards (fun i ->
          Faultsim.Fault.Shard_crash
            {
              at = cfg.c_warmup +. (float_of_int (i + 1) *. interval);
              shard = i;
              restart_delay = 0.5 *. interval;
            })
  | Brownout ->
      [
        Faultsim.Fault.Shard_stall
          { at; shard = 1; duration = 0.5 *. cfg.c_measure; slow_factor = 0.25 };
      ]

type shard_result = {
  sh_name : string;
  sh_final_state : string;
  sh_crashes : int;
  sh_stalls : int;
  sh_accepted : int;
  sh_finished : int;
  sh_lost : int;
  sh_refused : int;
  sh_recompiles : int;  (** plan-cache misses since rejoin *)
  sh_cache_hit_rate : float;
  sh_budget_end : int;
}

type outcome = {
  o_config : config;
  slices : (float * float) array;
  mean_per_slice : float;
  completed : int;  (** successful completions inside the window *)
  submitted : int;
  ok : int;
  failed : int;
  rejected : int;
  spills : int;
  hedges : int;
  hedge_wins : int;
  retries : int;
  in_flight_at_stop : int;
  p50_ms : float;
  p99_ms : float;
  cl_submitted : int;
  cl_attempts : int;  (* every router submission a client made, retries included *)
  cl_succeeded : int;
  cl_abandoned : int;
  arb_ticks : int;
  arb_rebalances : int;
  arb_moved : int;
  arb_reclaimed : int;
  max_budget_sum : int;
      (** largest observed sum of shard budgets — must stay within the
          machine plus one keepalive byte per pool *)
  shard_results : shard_result list;
}

let arbiter_config =
  {
    Qcore.Arbiter.interval = 2.0;
    horizon = 5.0;
    window = 10;
    deadband = 8 * 1024 * 1024;
  }

let validate cfg =
  if cfg.c_shards < 2 then invalid_arg "Shards.run: need at least 2 shards";
  if cfg.c_clients < 1 then invalid_arg "Shards.run: clients < 1";
  if cfg.c_variants < 1 then invalid_arg "Shards.run: variants < 1";
  if cfg.c_total / cfg.c_shards < 64 * 1024 * 1024 then
    invalid_arg "Shards.run: less than 64 MiB per shard";
  if cfg.c_warmup < 0. || cfg.c_measure <= 0. || cfg.c_slice <= 0. then
    invalid_arg "Shards.run: bad warmup/measure/slice"

let run ?trace cfg =
  validate cfg;
  let eng = Sim.Engine.create ~seed:cfg.c_seed () in
  let stop = cfg.c_warmup +. cfg.c_measure in
  let n = cfg.c_shards in
  let budget = cfg.c_total / n in
  let base = Config.default () in
  let shard_cfg =
    {
      base with
      Config.memory_bytes = budget;
      seed = cfg.c_seed;
      throttle_enabled = cfg.c_gateways;
      min_pool_bytes = min base.Config.min_pool_bytes (budget / 8);
      min_workspace_bytes = min base.Config.min_workspace_bytes (budget / 8);
      (* The whole experiment hinges on warm plan caches: shield a small
         floor (64 MiB comfortably holds every parameterized plan) so
         buffer-pool pressure cannot silently evict the warm set and turn
         the crash comparison into a no-op. *)
      plan_cache_floor_bytes = min (Dbmem.Units.mib 64) (budget / 16);
    }
  in
  let shards =
    Array.init n (fun i ->
        Shard.create ?trace eng ~index:i
          ~name:(Printf.sprintf "shard%d" i)
          shard_cfg (Workload.Sales.catalog ()))
  in
  (* One machine-level arbiter over the shard pools: symmetric claims, a
     floor of half the fair share each and a cap of twice it, so a down
     shard's memory is lendable but no survivor can swallow the machine. *)
  let arbiter = Qcore.Arbiter.create ?trace eng ~total:cfg.c_total arbiter_config in
  Array.iter
    (fun sh ->
      let dbms = Shard.dbms sh in
      let manager = Dbms.manager dbms in
      let reserved =
        (Dbms.config dbms).Config.broker.Qcore.Broker.reserved_fraction
      in
      let demand () =
        int_of_float
          (float_of_int (Qcore.Broker.predicted_total (Dbms.broker dbms))
          /. (1. -. reserved))
      in
      let pool =
        Qcore.Arbiter.register arbiter ~name:(Shard.name sh) ~weight:1.0
          ~min_share:(0.5 /. float_of_int n)
          ~max_share:(Float.min 1.0 (2.0 /. float_of_int n))
          ~budget
          ~used:(fun () -> Dbmem.Manager.used manager)
          ~demand
          ~set_budget:(fun b -> Dbmem.Manager.set_total manager b)
          ~reclaim:(fun k -> Dbms.reclaim dbms k)
          ()
      in
      Shard.set_pool sh pool)
    shards;
  Qcore.Arbiter.start arbiter;
  let router =
    Router.create ?trace
      ~cfg:{ Router.default_config with hedge_enabled = cfg.c_hedge }
      eng shards
  in
  Router.set_measure_from router cfg.c_warmup;
  (* Shard faults route through the injector so schedules validate, label
     and replay exactly like single-server chaos schedules. *)
  let hooks =
    {
      Faultsim.Injector.null_hooks with
      shard_crash =
        (fun ~shard ~restart_delay ->
          Shard.crash shards.(shard mod n) ~restart_delay);
      shard_stall =
        (fun ~shard ~duration ~slow_factor ->
          Shard.stall shards.(shard mod n) ~duration ~slow_factor);
    }
  in
  (match faults_of cfg with
  | [] -> ()
  | fs ->
      ignore
        (Faultsim.Injector.install eng
           ~rng:(Sim.Rng.split (Sim.Engine.rng eng))
           ~hooks fs));
  (* Per-shard Chrome counters plus the budget-conservation watermark. *)
  let max_budget_sum = ref 0 in
  ignore
    (Sim.Engine.every eng ~interval:5.0 (fun () ->
         Array.iter Shard.sample shards;
         let s = Array.fold_left (fun a sh -> a + Shard.budget sh) 0 shards in
         if s > !max_budget_sum then max_budget_sum := s));
  let templates = Workload.Sales.parameterized_templates ~variants:cfg.c_variants () in
  let series = Sim.Series.create ~name:"shards" () in
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  let submit q =
    let r = Router.submit_catch router q in
    (match r with
    | Ok () -> Sim.Series.add series ~time:(Sim.Engine.now eng) 1.
    | Error _ -> ());
    r
  in
  (* Client randomness is keyed by (seed, client name): a client's stream
     does not depend on how many neighbours it has. *)
  for i = 1 to cfg.c_clients do
    let cname = Printf.sprintf "client-%d" i in
    Workload.Client.spawn eng
      (Sim.Rng.create (cfg.c_seed lxor Hashtbl.hash cname))
      ~name:cname ~templates ~submit
      ~config:
        {
          Workload.Client.default_config with
          Workload.Client.think_mean = cfg.c_think;
        }
      ~stats ~ids ~until:stop
  done;
  Sim.Engine.run eng ~until:stop;
  (* Drain: clients have stopped; give in-flight queries (including any
     abandoned hedge losers) a grace window to come home. *)
  Sim.Engine.run eng ~until:(stop +. 600.);
  (match Sim.Engine.failures eng with
  | [] -> ()
  | (pname, exn, time) :: _ as fs ->
      failwith
        (Printf.sprintf
           "shard simulation process failures (%d), first: %s at %.1f: %s"
           (List.length fs) pname time (Printexc.to_string exn)));
  let slices =
    Sim.Series.bucket_sum series ~start:cfg.c_warmup ~stop ~width:cfg.c_slice
  in
  let mean_per_slice =
    if Array.length slices = 0 then 0.
    else
      Array.fold_left (fun a (_, v) -> a +. v) 0. slices
      /. float_of_int (Array.length slices)
  in
  let lat = Router.latency router in
  let shard_results =
    Array.to_list
      (Array.map
         (fun sh ->
           {
             sh_name = Shard.name sh;
             sh_final_state = Shard.lifecycle_name (Shard.state sh);
             sh_crashes = Shard.crashes sh;
             sh_stalls = Shard.stalls sh;
             sh_accepted = Shard.accepted sh;
             sh_finished = Shard.finished sh;
             sh_lost = Shard.lost sh;
             sh_refused = Shard.refused sh;
             sh_recompiles = Shard.recompiles_after_rejoin sh;
             sh_cache_hit_rate =
               Plancache.Cache.hit_rate (Dbms.plan_cache (Shard.dbms sh));
             sh_budget_end = Shard.budget sh;
           })
         shards)
  in
  {
    o_config = cfg;
    slices;
    mean_per_slice;
    completed =
      Array.length (Sim.Series.values_between series ~start:cfg.c_warmup ~stop);
    submitted = Router.submitted router;
    ok = Router.ok router;
    failed = Router.failed router;
    rejected = Router.rejected router;
    spills = Router.spills router;
    hedges = Router.hedges router;
    hedge_wins = Router.hedge_wins router;
    retries = Router.retries router;
    in_flight_at_stop = Router.in_flight router;
    p50_ms = float_of_int (Obs.Hist.percentile lat 50.) /. 1000.;
    p99_ms = float_of_int (Obs.Hist.percentile lat 99.) /. 1000.;
    cl_submitted = stats.Workload.Client.submitted;
    cl_attempts = stats.Workload.Client.attempts;
    cl_succeeded = stats.Workload.Client.succeeded;
    cl_abandoned = stats.Workload.Client.abandoned;
    arb_ticks = Qcore.Arbiter.ticks arbiter;
    arb_rebalances = Qcore.Arbiter.rebalances arbiter;
    arb_moved = Qcore.Arbiter.moved_bytes arbiter;
    arb_reclaimed = Qcore.Arbiter.reclaimed_bytes arbiter;
    max_budget_sum = !max_budget_sum;
    shard_results;
  }

(* Throughput retained under a fault schedule, against the same seed's
   no-fault run: completed work per slice, fault over baseline. *)
let retention ~fault ~no_fault =
  if no_fault.mean_per_slice <= 0. then 0.
  else fault.mean_per_slice /. no_fault.mean_per_slice
