(** The metastable-failure experiment: cold-cache storms with the
    defense stack on versus off.

    One engine hosts [s_shards] full servers behind a {!Router}; a
    trigger — a crash-restart that rejoins cold ([Cold_crash]) or an
    in-place flush of every plan cache ([Mass_invalidation]) — turns the
    whole parameterized working set into simultaneous compiles. Without
    defenses the recompilation storm feeds on itself: every client
    compiles the same templates, retries amplify the arrival rate, and
    throughput can stay collapsed long after the caches could have been
    warm again. The defended arm runs {!Config.defended}: compile
    singleflight, per-client retry budgets, adaptive gateway queues
    (FIFO->LIFO + deadline shedding) and storm-gated admission with
    warm-priming on rejoin.

    The headline numbers are {!outcome.recovery_s} (time back to 90% of
    the pre-trigger rate), {!outcome.retry_amp} (router attempts per
    distinct client query) and {!outcome.dup_compiles} (compiles of a
    statement already being compiled) — measured identically in both
    arms, because singleflight observes duplicates even when coalescing
    is off. *)

type schedule =
  | Cold_crash
      (** shard 1 crashes a quarter into the window and rejoins cold
          after 15% of it *)
  | Mass_invalidation
      (** every shard's plan cache is flushed in place — a stampede with
          no capacity loss *)

val schedule_name : schedule -> string

type config = {
  s_shards : int;
  s_clients : int;
  s_variants : int;  (** parameterized templates in the workload *)
  s_think : float;
  s_warmup : float;
  s_measure : float;
  s_slice : float;
  s_total : int;  (** machine bytes, split [total/shards] *)
  s_defenses : bool;  (** the A/B axis: {!Config.defended} when true *)
  s_sf_wait : float option;
      (** override {!Config.defense.d_sf_wait_s} (defended arm only) *)
  s_budget_tokens : float option;
      (** override the retry bucket's initial tokens (defended arm only) *)
  s_lifo_after : float option;
      (** override {!Config.defense.d_lifo_after_s} (defended arm only) *)
  s_warm_prime : int option;
      (** override {!Config.defense.d_warm_prime} (defended arm only) *)
  s_seed : int;
  s_schedule : schedule;
}

val default_config : config
(** 3 shards, 160 clients, 96 variants, 24 GiB machine, defenses on,
    mass-invalidation, seed 42. The machine is sized so execution memory
    grants clear quickly and the compile path is the binding constraint
    — the regime the paper's premise (compilation is the scarce
    resource) puts the storm in. *)

(** When the trigger fires ([warmup + 0.25 * measure]). *)
val fault_at : config -> float

val crash_restart_delay : config -> float

(** The {!Config.defense} this config's arm runs: {!Config.no_defense}
    with [s_defenses = false], else {!Config.defended} with the tuning
    overrides applied. *)
val defense_of : config -> Config.defense

type shard_report = {
  sr_name : string;
  sr_state : string;
  sr_crashes : int;
  sr_recompiles : int;  (** plan-cache misses since rejoin *)
  sr_cache_hit : float;
  sr_storms : int;  (** storm episodes the detector flagged *)
  sr_primed : int;  (** templates warm-primed on rejoin *)
  sr_sf_led : int;  (** singleflight leaders (real compiles) *)
  sr_sf_coalesced : int;  (** followers who waited instead of compiling *)
  sr_sf_dup : int;
      (** compiles performed while a flight for the same canonical
          statement was already open — the storm's wasted work *)
}

type outcome = {
  o_config : config;
  slices : (float * float) array;  (** completions per slice, window only *)
  pre_rate : float;  (** mean completions/slice before the trigger *)
  post_rate : float;  (** mean completions/slice after the trigger *)
  recovery_s : float;
      (** time from the trigger until the earliest slice from which the
          rest of the window sustains 90% of [pre_rate]; [infinity] if
          the run never got there *)
  recovered : bool;  (** [recovery_s] is finite *)
  retry_amp : float;
      (** router attempts per distinct client query — 1.0 means nothing
          was ever resubmitted *)
  dup_compiles : int;  (** sum of [sr_sf_dup] across shards *)
  coalesced : int;
  storms_detected : int;
  primed : int;
  lifo_shifts : int;  (** gateway FIFO->LIFO queue flips *)
  deadline_sheds : int;  (** gateway waiters shed as doomed *)
  budget_denials : int;  (** retries refused by empty token buckets *)
  submitted : int;
  ok : int;
  failed : int;
  rejected : int;
  retries : int;
  in_flight_at_stop : int;
  p50_ms : float;
  p99_ms : float;
  cl_submitted : int;
  cl_succeeded : int;
  cl_abandoned : int;
  shard_reports : shard_report list;
}

(** Raises [Invalid_argument] on nonsensical configs (fewer than 2
    shards, under 64 MiB per shard, empty windows...). *)
val validate : config -> unit

(** Run one cell. Plain data in and out (no closures), so cells fan out
    over {!Parallel.Pool} and outcomes survive marshalling.
    Deterministic: a pure function of the config. *)
val run : ?trace:Obs.Trace.t -> config -> outcome

(** Did the defended arm get back to the healthy rate strictly faster?
    An arm that never recovered compares as infinitely slow. *)
val faster_recovery : defended:outcome -> undefended:outcome -> bool
