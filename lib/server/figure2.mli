(** The paper's Figure 2 scenario, as a reusable library: three SALES
    compilations on a deliberately tight three-monitor ladder, plus a
    background compilation that holds the first two monitors for the
    first 60 seconds so Q1 experiences blocking. The per-query memory
    curves show the signature flat segments while blocked at a gateway.

    The scenario is deterministic for a fixed [(seed, qseed)] pair, and
    tracing does not perturb it (the trace sink consumes no randomness),
    which is what the golden-trace expect test relies on. *)

type result = {
  series : Sim.Series.t array;
      (** sampled compile-memory usage of Q1..Q3, every 2 s *)
  trace : Obs.Trace.t;  (** the sink passed in (or {!Obs.Trace.null}) *)
  failures : int;  (** simulation process failures (0 in a healthy run) *)
}

(** [run ?seed ?qseed ?trace ?until ()] — defaults replicate the bench
    scenario exactly: engine seed [7], query-parameter seed [11], run
    until [600.] simulated seconds. Query ids in the trace are
    ["Q1".."Q3"] and ["background"]. *)
val run :
  ?seed:int -> ?qseed:int -> ?trace:Obs.Trace.t -> ?until:float -> unit -> result

(** The gateway slot counts of the scenario's ladder, by monitor name
    (["first"], ["second"], ["third"]) — for invariant checks over the
    trace. *)
val ladder_slots : (string * int) list
