(** End-to-end experiment runner: build a server, load it with concurrent
    clients for a warm-up plus a measured window, and collect the series
    and summary numbers the paper's figures report. The warm-up period is
    excluded from all results, as in §5.2. *)

type result = {
  clients : int;
  throttled : bool;
  resilient : bool;
  warmup : float;
  measure : float;
  slice : float;
  slices : (float * float) array;  (** completions per time slice *)
  mean_per_slice : float;
  total_completed : int;  (** within the measured window *)
  total_errors : int;
  hard_errors : int;  (** errors excluding admission sheds *)
  retries : int;  (** server-side retries of transient errors *)
  sheds : int;  (** queries refused by admission control *)
  degraded : int;  (** completions via the greedy fallback ladder *)
  errors : (string * int) list;
  faults_started : int;  (** fault episodes that began before [stop] *)
  faults_finished : int;
  ballast_peak : int;  (** most ballast held at once, bytes *)
  ballast_refused : int;  (** ballast grab attempts the manager refused *)
  client_stats : Workload.Client.stats;
  compile_mean_s : float;
  compile_max_s : float;
  exec_mean_s : float;
  exec_max_s : float;
  compile_peak_mean : float;  (** bytes *)
  compile_peak_max : float;
  pool_hit_rate : float;
  cache_hit_rate : float;
  cpu_utilization : float;
  memory_series : (string * Sim.Series.t) list;
}

(** [run ?config ?client_config ?catalog ?templates ?seed ~clients ~warmup
    ~measure ~slice ()] — defaults: the SALES benchmark on the paper's
    server. Any fault schedule in [config.faults] is installed before the
    clients start (burst clients share the workload templates and stats).
    Raises [Failure] if any simulation process died (model bug). *)
val run :
  ?config:Config.t ->
  ?client_config:Workload.Client.config ->
  ?catalog:Optimizer.Catalog.t ->
  ?templates:Workload.Template.t list ->
  ?seed:int ->
  ?trace:Obs.Trace.t ->
  clients:int ->
  warmup:float ->
  measure:float ->
  slice:float ->
  unit ->
  result

(** One independent grid cell: the arguments of a single {!run} call.
    Cells carry no live state, so a grid of them can be fanned over a
    {!Parallel.Pool} — each cell builds its own engine, RNG, server,
    metrics and client stats when it runs. A catalog or template list
    passed explicitly may be shared between cells but must then be
    treated as read-only. *)
type cell

val cell :
  ?config:Config.t ->
  ?client_config:Workload.Client.config ->
  ?catalog:Optimizer.Catalog.t ->
  ?templates:Workload.Template.t list ->
  ?seed:int ->
  clients:int ->
  warmup:float ->
  measure:float ->
  slice:float ->
  unit ->
  cell

(** [run_cell c] is {!run} with the cell's arguments. *)
val run_cell : cell -> result

(** [run_grid ?pool ?jobs cells] runs every cell and returns the results
    in submission order. With [~jobs:1] (the default) cells run
    sequentially on the calling domain; with [~jobs:n] they fan out over
    a temporary n-domain pool; with [?pool] they reuse the given pool.
    Because each cell is deterministic given its own seed, the results —
    and hence any output rendered from them — are identical whichever
    way the grid is executed. *)
val run_grid : ?pool:Parallel.Pool.t -> ?jobs:int -> cell list -> result list

(** Relative throughput uplift of [a] over [b] (e.g. throttled over
    unthrottled), from mean completions per slice. [0.] when the
    baseline completed nothing. *)
val uplift : result -> result -> float

val pp_summary : Format.formatter -> result -> unit
