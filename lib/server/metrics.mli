(** Server-wide measurement: everything the paper's evaluation reports.

    Successful completions are an event series later bucketed into
    completions-per-time-slice (Figures 3-5); errors are counted by
    structured {!Health.Error.code} (the taxonomy the health report and
    error-budget table print), so no failure is ever anonymous;
    compile/execute durations and compile memory peaks feed the in-text
    claims; per-clerk memory is sampled periodically for the
    Figure-2-style memory traces. *)

(** Back-pressure refusals ({!Health.Error.Admission_shed},
    {!Health.Error.Breaker_open} — the [Informational] severity) are
    deliberate; all other codes are hard resource failures. *)
val is_hard_error : Health.Error.code -> bool

type t

val create : Sim.Engine.t -> t

(** Record one successful query completion (now). *)
val record_completion : t -> compile_s:float -> exec_s:float -> unit

val record_error : t -> Health.Error.code -> unit
val record_compile_peak : t -> int -> unit
val record_cache_hit : t -> unit

(** One server-side retry of a query after a transient resource error. *)
val record_retry : t -> unit

(** One completion that went through the degradation ladder (greedy
    fallback plan instead of full search). *)
val record_degraded : t -> unit

(** Start sampling the given clerks every [interval] seconds. Each sample
    is also recorded into [trace] (as an {!Obs.Event.Mem}) when given. *)
val watch_memory :
  ?trace:Obs.Trace.t ->
  t ->
  interval:float ->
  (string * Dbmem.Manager.clerk) list ->
  unit

(** {1 Reading} *)

val completions : t -> Sim.Series.t

(** Completions with [start <= t < stop], bucketed by [width] seconds. *)
val throughput :
  t -> start:float -> stop:float -> width:float -> (float * float) array

val total_completions : t -> ?since:float -> unit -> int

(** Per-code counters, every code of the taxonomy in fixed order. *)
val errors : t -> (Health.Error.code * int) list

val error_count : t -> Health.Error.code -> int
val total_errors : t -> int

(** Errors excluding back-pressure (the reliability number of §5). *)
val hard_errors : t -> int

val sheds : t -> int
val cache_hits : t -> int
val retries : t -> int
val degraded : t -> int
val compile_time : t -> Sim.Stats.Online.t
val exec_time : t -> Sim.Stats.Online.t
val compile_peak : t -> Sim.Stats.Online.t

(** Sampled memory series per watched clerk name. *)
val memory_series : t -> (string * Sim.Series.t) list

val pp : Format.formatter -> t -> unit
