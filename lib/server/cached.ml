(* Mixed-traffic experiment: a Midcache statement/result cache between
   the clients and Dbms.submit, across cache-off / cache-fixed /
   cache-brokered modes. Hits bypass the compile gateways entirely;
   the cache's footprint competes for the same physical memory as the
   engine's own caches, and in brokered mode it answers to the broker
   like any other component. *)

type mode = Cache_off | Cache_fixed | Cache_brokered

let mode_name = function
  | Cache_off -> "cache-off"
  | Cache_fixed -> "cache-fixed"
  | Cache_brokered -> "cache-brokered"

type config = {
  k_mode : mode;
  k_clients : int;
  k_think : float;
  k_ratio : float;
  k_variants : int;
  k_writers : int;
  k_write_think : float;
  k_warmup : float;
  k_measure : float;
  k_slice : float;
  k_memory : int;
  k_cache_bytes : int;
  k_ttl : float;
  k_hit_latency : float;
  k_ballast_gib : float;
  k_diurnal : Workload.Mix.diurnal option;
  k_flash : Workload.Mix.flash list;
  k_seed : int;
}

let default_config =
  {
    k_mode = Cache_brokered;
    (* 16 clients on 4 GiB load the machine without saturating it: the
       calm baseline leaves the brokered cache unsqueezed, so injected
       ballast (not ambient pressure) is what forces the shrinks. *)
    k_clients = 16;
    k_think = 30.;
    k_ratio = 0.6;
    k_variants = 32;
    k_writers = 2;
    k_write_think = 120.;
    k_warmup = 200.;
    k_measure = 800.;
    k_slice = 60.;
    k_memory = Dbmem.Units.gib 4;
    k_cache_bytes = Dbmem.Units.mib 256;
    k_ttl = 600.;
    k_hit_latency = 0.02;
    k_ballast_gib = 0.;
    k_diurnal = None;
    k_flash = [];
    k_seed = 42;
  }

(* The broker can squeeze the cache, but never below a working floor:
   a cache evicted to zero under every transient spike would thrash. *)
let cache_floor = Dbmem.Units.mib 16

let validate cfg =
  if cfg.k_clients < 1 then invalid_arg "Cached.run: clients < 1";
  if cfg.k_ratio < 0. || cfg.k_ratio > 1. then
    invalid_arg "Cached.run: ratio outside [0, 1]";
  if cfg.k_variants < 1 then invalid_arg "Cached.run: variants < 1";
  if cfg.k_writers < 0 then invalid_arg "Cached.run: writers < 0";
  if cfg.k_warmup < 0. || cfg.k_measure <= 0. || cfg.k_slice <= 0. then
    invalid_arg "Cached.run: bad warmup/measure/slice";
  if cfg.k_memory < Dbmem.Units.mib 512 then
    invalid_arg "Cached.run: less than 512 MiB of machine memory";
  (if cfg.k_mode <> Cache_off then
     if cfg.k_cache_bytes < cache_floor then
       invalid_arg "Cached.run: cache budget under the 16 MiB floor");
  if cfg.k_hit_latency < 0. then invalid_arg "Cached.run: hit latency < 0";
  if cfg.k_ballast_gib < 0. then invalid_arg "Cached.run: ballast < 0"

type outcome = {
  o_config : config;
  slices : (float * float) array;
  mean_per_slice : float;
  completed : int;
  requests : int;
  hits : int;
  misses : int;
  bypasses : int;
  stores : int;
  refused : int;
  evictions : int;
  expired : int;
  invalidated : int;
  cache_hit_rate : float;
  shrink_events : int;
  shrink_freed : int;
  resident_end : int;
  resident_peak : int;
  budget_end : int;
  gw_acquires : int;
  gw_timeouts : int;
  gw_wait_mean_s : float;
  compiles : int;
  plan_hits : int;
  compile_peak_max : float;
  compile_peak_mean : float;
  ooms : int;
  p50_ms : float;
  p99_ms : float;
  cl_submitted : int;
  cl_succeeded : int;
  cl_abandoned : int;
  writes : int;
  inv_entries : int;
}

(* The ballast lands a third into the measure window, ramps over a fifth
   of it, and holds for a quarter: the tail of the window shows the
   post-pressure recovery. Measure-relative so smoke runs shrink the
   outage with them. *)
let faults_of cfg =
  if cfg.k_ballast_gib <= 0. then []
  else
    let ramp_steps = 60 in
    Faultsim.Fault.pressure_spike ~ramp_steps
      ~step_s:(0.2 *. cfg.k_measure /. float_of_int ramp_steps)
      ~at:(cfg.k_warmup +. (0.3 *. cfg.k_measure))
      ~bytes:
        (int_of_float
           (cfg.k_ballast_gib *. float_of_int (Dbmem.Units.gib 1)))
      ~hold:(0.25 *. cfg.k_measure) ()

(* Writers update dimension tables. Most writes touch one of the optional
   dimensions — invalidating the subset of cached results that join it —
   while one in twenty reloads the fact table, wiping every entry (bulk
   load). The three core dimensions every query joins are left alone:
   writing them would make every write a full wipe and bury the
   partial-invalidation behaviour the relation index exists for. *)
let writer_targets =
  List.filter
    (fun d -> not (List.mem d [ "customer"; "product"; "date_dim" ]))
    Workload.Sales.dimensions

let run ?(trace = Obs.Trace.null) cfg =
  validate cfg;
  let eng = Sim.Engine.create ~seed:cfg.k_seed () in
  let stop = cfg.k_warmup +. cfg.k_measure in
  let base = Config.default () in
  let server_cfg =
    {
      base with
      Config.memory_bytes = cfg.k_memory;
      seed = cfg.k_seed;
      min_pool_bytes = min base.Config.min_pool_bytes (cfg.k_memory / 8);
      min_workspace_bytes =
        min base.Config.min_workspace_bytes (cfg.k_memory / 8);
      plan_cache_floor_bytes =
        min (Dbmem.Units.mib 64) (cfg.k_memory / 16);
      faults = faults_of cfg;
    }
  in
  let dbms = Dbms.create ~trace eng server_cfg (Workload.Sales.catalog ()) in
  let shrink_events = ref 0 in
  let shrink_freed = ref 0 in
  let emit ev =
    if Obs.Trace.enabled trace then
      Obs.Trace.emit trace ~time:(Sim.Engine.now eng) ~qid:"" ev
  in
  let cache =
    match cfg.k_mode with
    | Cache_off -> None
    | Cache_fixed | Cache_brokered ->
        let clerk =
          Dbmem.Manager.create_clerk (Dbms.manager dbms) "midcache"
        in
        let cache =
          Midcache.Cache.create
            ~charge:(fun n ->
              match Dbmem.Manager.alloc clerk n with
              | Ok () -> true
              | Error `Out_of_memory -> false)
            ~release:(fun n -> Dbmem.Manager.free clerk n)
            ~budget:cfg.k_cache_bytes
            { Midcache.Cache.default_config with ttl = cfg.k_ttl }
        in
        (if cfg.k_mode = Cache_brokered then
           let shrink_to target =
             let target = max cache_floor target in
             let r = Midcache.Cache.resident cache in
             if r > target then begin
               let wanted = r - target in
               let freed = Midcache.Cache.shrink cache wanted in
               if freed > 0 then begin
                 incr shrink_events;
                 shrink_freed := !shrink_freed + freed;
                 emit (Obs.Event.Midcache_shrink { wanted; freed })
               end
             end;
             Midcache.Cache.set_budget cache target
           in
           ignore
             (Qcore.Broker.register (Dbms.broker dbms) ~name:"midcache"
                ~clerk ~weight:2.0 ~min_bytes:cache_floor
                ~demand:(fun () -> Midcache.Cache.demand_hint cache)
                ~notify:(fun (n : Qcore.Broker.notification) ->
                  match n.verdict with
                  | Qcore.Broker.Must_shrink -> shrink_to n.target
                  | Qcore.Broker.Can_grow ->
                      Midcache.Cache.set_budget cache cfg.k_cache_bytes
                  | Qcore.Broker.Hold_rate -> ())
                ~reclaim:(fun wanted ->
                  let freed = Midcache.Cache.shrink cache wanted in
                  if freed > 0 then begin
                    incr shrink_events;
                    shrink_freed := !shrink_freed + freed;
                    emit (Obs.Event.Midcache_shrink { wanted; freed })
                  end;
                  freed)
                ()));
        Some cache
  in
  Dbms.start dbms;
  ignore (Dbms.install_faults dbms);
  let frontend =
    Midcache.Frontend.create ~trace ~hit_latency:cfg.k_hit_latency eng ~cache
      ~submit:(fun q -> Dbms.submit_catch dbms q)
      ()
  in
  let series = Sim.Series.create ~name:"cached" () in
  let lat = Obs.Hist.create () in
  let submit q =
    let t0 = Sim.Engine.now eng in
    let r = Midcache.Frontend.submit frontend q in
    (match r with
    | Ok () ->
        let now = Sim.Engine.now eng in
        Sim.Series.add series ~time:now 1.;
        if now >= cfg.k_warmup then
          Obs.Hist.add lat
            (int_of_float (Float.round ((now -. t0) *. 1e6)))
    | Error _ -> ());
    r
  in
  (* Periodic cache counters for the Chrome trace plus the resident
     watermark the outcome reports. *)
  let resident_peak = ref 0 in
  (match cache with
  | None -> ()
  | Some c ->
      ignore
        (Sim.Engine.every eng ~interval:5.0 (fun () ->
             let resident = Midcache.Cache.resident c in
             if resident > !resident_peak then resident_peak := resident;
             emit
               (Obs.Event.Midcache_sample
                  {
                    resident;
                    mc_budget = Midcache.Cache.budget c;
                    mc_entries = Midcache.Cache.entries c;
                    hit_rate_pct =
                      int_of_float
                        (Float.round (100. *. Midcache.Cache.hit_rate c));
                  }))));
  let templates =
    Workload.Mix.mixed_templates ~ratio:cfg.k_ratio ~variants:cfg.k_variants
      ()
  in
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  let think_of =
    Workload.Mix.think_of ?diurnal:cfg.k_diurnal ~base:cfg.k_think ()
  in
  (* Client randomness is keyed by (seed, client name): a client's stream
     does not depend on how many neighbours it has. *)
  for i = 1 to cfg.k_clients do
    let cname = Printf.sprintf "client-%d" i in
    Workload.Client.spawn eng
      (Sim.Rng.create (cfg.k_seed lxor Hashtbl.hash cname))
      ~name:cname ~templates ~submit
      ~config:
        {
          Workload.Client.default_config with
          Workload.Client.think_mean = cfg.k_think;
        }
      ~stats ~ids ~until:stop ~think_of
  done;
  List.iter
    (fun f ->
      Workload.Mix.spawn_flash eng ~seed:cfg.k_seed ~label:"flash" ~templates
        ~submit ~stats ~ids f)
    cfg.k_flash;
  let writes = ref 0 in
  for i = 1 to cfg.k_writers do
    let wname = Printf.sprintf "writer-%d" i in
    let rng = Sim.Rng.create (cfg.k_seed lxor Hashtbl.hash wname) in
    Sim.Engine.spawn eng ~name:wname (fun () ->
        while Sim.Engine.now eng < stop do
          Sim.Engine.sleep (Sim.Rng.exponential rng ~mean:cfg.k_write_think);
          if Sim.Engine.now eng < stop then begin
            let rel =
              if Sim.Rng.float rng 1.0 < 0.05 then Workload.Sales.fact_table
              else
                List.nth writer_targets
                  (Sim.Rng.int rng (List.length writer_targets))
            in
            incr writes;
            Midcache.Frontend.write frontend ~rels:[ rel ]
          end
        done)
  done;
  Sim.Engine.run eng ~until:stop;
  (* Drain: clients have stopped; give in-flight queries a grace window
     to come home before the books are read. *)
  Sim.Engine.run eng ~until:(stop +. 300.);
  (match Sim.Engine.failures eng with
  | [] -> ()
  | (pname, exn, time) :: _ as fs ->
      failwith
        (Printf.sprintf
           "cached simulation process failures (%d), first: %s at %.1f: %s"
           (List.length fs) pname time (Printexc.to_string exn)));
  let slices =
    Sim.Series.bucket_sum series ~start:cfg.k_warmup ~stop ~width:cfg.k_slice
  in
  let mean_per_slice =
    if Array.length slices = 0 then 0.
    else
      Array.fold_left (fun a (_, v) -> a +. v) 0. slices
      /. float_of_int (Array.length slices)
  in
  let monitors = Qcore.Compile_gov.monitors (Dbms.governor dbms) in
  let gw_acquires =
    Array.fold_left (fun a m -> a + Qcore.Monitor.acquires m) 0 monitors
  in
  let gw_timeouts =
    Array.fold_left (fun a m -> a + Qcore.Monitor.timeouts m) 0 monitors
  in
  let gw_wait_mean_s =
    let n = ref 0 and sum = ref 0. in
    Array.iter
      (fun m ->
        let s = Qcore.Monitor.wait_stats m in
        n := !n + Sim.Stats.Online.count s;
        sum := !sum +. Sim.Stats.Online.total s)
      monitors;
    if !n = 0 then 0. else !sum /. float_of_int !n
  in
  let metrics = Dbms.metrics dbms in
  let peak = Metrics.compile_peak metrics in
  {
    o_config = cfg;
    slices;
    mean_per_slice;
    completed =
      Array.length (Sim.Series.values_between series ~start:cfg.k_warmup ~stop);
    requests = Midcache.Frontend.requests frontend;
    hits = Midcache.Frontend.hits frontend;
    misses = Midcache.Frontend.misses frontend;
    bypasses = Midcache.Frontend.bypasses frontend;
    stores =
      (match cache with None -> 0 | Some c -> Midcache.Cache.stores c);
    refused =
      (match cache with None -> 0 | Some c -> Midcache.Cache.refused c);
    evictions =
      (match cache with None -> 0 | Some c -> Midcache.Cache.evictions c);
    expired =
      (match cache with None -> 0 | Some c -> Midcache.Cache.expired c);
    invalidated =
      (match cache with None -> 0 | Some c -> Midcache.Cache.invalidated c);
    cache_hit_rate =
      (match cache with None -> 0. | Some c -> Midcache.Cache.hit_rate c);
    shrink_events = !shrink_events;
    shrink_freed = !shrink_freed;
    resident_end =
      (match cache with None -> 0 | Some c -> Midcache.Cache.resident c);
    resident_peak = !resident_peak;
    budget_end =
      (match cache with None -> 0 | Some c -> Midcache.Cache.budget c);
    gw_acquires;
    gw_timeouts;
    gw_wait_mean_s;
    compiles = Metrics.total_completions metrics ();
    plan_hits = Metrics.cache_hits metrics;
    compile_peak_max =
      (if Sim.Stats.Online.count peak = 0 then 0.
       else Sim.Stats.Online.max peak);
    compile_peak_mean =
      (if Sim.Stats.Online.count peak = 0 then 0.
       else Sim.Stats.Online.mean peak);
    ooms = Dbmem.Manager.oom_count (Dbms.manager dbms);
    p50_ms = float_of_int (Obs.Hist.percentile lat 50.) /. 1000.;
    p99_ms = float_of_int (Obs.Hist.percentile lat 99.) /. 1000.;
    cl_submitted = stats.Workload.Client.submitted;
    cl_succeeded = stats.Workload.Client.succeeded;
    cl_abandoned = stats.Workload.Client.abandoned;
    writes = !writes;
    inv_entries = Midcache.Frontend.invalidated_entries frontend;
  }

let uplift o ~over =
  if over.mean_per_slice <= 0. then 0.
  else o.mean_per_slice /. over.mean_per_slice
