(* Errors are counted by structured taxonomy code (Health.Error), so the
   server's books and the health report speak the same vocabulary. *)

(* Back-pressure refusals (sheds, open breakers) are deliberate, polite
   refusals under overload; everything else is a hard resource failure
   (the reliability numbers of §5). *)
let is_hard_error code = Health.Error.severity code <> Health.Error.Informational

type t = {
  eng : Sim.Engine.t;
  completions : Sim.Series.t;
  mutable error_counts : (Health.Error.code * int ref) list;
  compile_time : Sim.Stats.Online.t;
  exec_time : Sim.Stats.Online.t;
  compile_peak : Sim.Stats.Online.t;
  mutable cache_hits : int;
  mutable retries : int;
  mutable degraded : int;
  mutable memory : (string * Sim.Series.t) list;
}

let create eng =
  {
    eng;
    (* Experiments complete thousands of queries; start past the doubling
       ramp. *)
    completions = Sim.Series.create ~name:"completions" ~capacity:1024 ();
    error_counts = List.map (fun k -> (k, ref 0)) Health.Error.all_codes;
    compile_time = Sim.Stats.Online.create ();
    exec_time = Sim.Stats.Online.create ();
    compile_peak = Sim.Stats.Online.create ();
    cache_hits = 0;
    retries = 0;
    degraded = 0;
    memory = [];
  }

let record_completion t ~compile_s ~exec_s =
  Sim.Series.add t.completions ~time:(Sim.Engine.now t.eng) 1.;
  Sim.Stats.Online.add t.compile_time compile_s;
  Sim.Stats.Online.add t.exec_time exec_s

let record_error t code = incr (List.assoc code t.error_counts)
let record_compile_peak t bytes = Sim.Stats.Online.add t.compile_peak (float_of_int bytes)
let record_cache_hit t = t.cache_hits <- t.cache_hits + 1
let record_retry t = t.retries <- t.retries + 1
let record_degraded t = t.degraded <- t.degraded + 1

let watch_memory ?(trace = Obs.Trace.null) t ~interval clerks =
  let series =
    List.map
      (fun (name, _) -> (name, Sim.Series.create ~name ~capacity:512 ()))
      clerks
  in
  t.memory <- t.memory @ series;
  ignore
    (Sim.Engine.every t.eng ~interval (fun () ->
         let now = Sim.Engine.now t.eng in
         List.iter
           (fun (name, clerk) ->
             let s = List.assoc name series in
             let used = Dbmem.Manager.clerk_used clerk in
             if Obs.Trace.enabled trace then
               Obs.Trace.emit trace ~time:now ~qid:""
                 (Obs.Event.Mem { clerk = name; used });
             Sim.Series.add s ~time:now (float_of_int used))
           clerks))

let completions t = t.completions

let throughput t ~start ~stop ~width =
  Sim.Series.bucket_sum t.completions ~start ~stop ~width

let total_completions t ?(since = 0.) () =
  Array.length (Sim.Series.values_between t.completions ~start:since ~stop:infinity)

let errors t = List.map (fun (k, r) -> (k, !r)) t.error_counts
let error_count t code = !(List.assoc code t.error_counts)
let total_errors t = List.fold_left (fun acc (_, r) -> acc + !r) 0 t.error_counts

let hard_errors t =
  List.fold_left
    (fun acc (k, r) -> if is_hard_error k then acc + !r else acc)
    0 t.error_counts

let sheds t = error_count t Health.Error.Admission_shed
let cache_hits t = t.cache_hits
let retries t = t.retries
let degraded t = t.degraded
let compile_time t = t.compile_time
let exec_time t = t.exec_time
let compile_peak t = t.compile_peak
let memory_series t = t.memory

let pp ppf t =
  Format.fprintf ppf "@[<v>completions: %d@," (Sim.Series.length t.completions);
  List.iter
    (fun (k, n) ->
      if n > 0 then Format.fprintf ppf "%s: %d@," (Health.Error.code_name k) n)
    (errors t);
  if t.retries > 0 || t.degraded > 0 then
    Format.fprintf ppf "retries: %d, degraded completions: %d@," t.retries
      t.degraded;
  Format.fprintf ppf "compile time: %a@," Sim.Stats.Online.pp t.compile_time;
  Format.fprintf ppf "exec time: %a@," Sim.Stats.Online.pp t.exec_time;
  Format.fprintf ppf "compile peak mem: %a@]" Sim.Stats.Online.pp t.compile_peak
