(* Storm-defense layer (metastable-failure defenses). Everything off in
   [no_defense] so every pre-existing configuration replays its seed
   byte-for-byte; [defended] is the full stack the storm experiment
   switches on. *)
type defense = {
  d_singleflight : bool;  (* coalesce concurrent same-statement compiles *)
  d_sf_wait_s : float;  (* follower wait bound before compiling solo *)
  d_budget : Resilience.Budget.config option;  (* retry token bucket *)
  d_adaptive_queues : bool;  (* FIFO->LIFO under sustained standing *)
  d_lifo_after_s : float;
  d_deadline_shed : bool;  (* shed gateway waiters past their deadline *)
  d_storm : Health.Storm.config;  (* miss-storm detector *)
  d_warm_prime : int;  (* hottest templates primed on shard rejoin; 0 = off *)
}

let no_defense =
  {
    d_singleflight = false;
    d_sf_wait_s = 120.;
    d_budget = None;
    d_adaptive_queues = false;
    d_lifo_after_s = 20.;
    d_deadline_shed = false;
    d_storm = Health.Storm.disabled;
    d_warm_prime = 0;
  }

let defended =
  {
    d_singleflight = true;
    d_sf_wait_s = 120.;
    d_budget = Some Resilience.Budget.default_config;
    d_adaptive_queues = true;
    d_lifo_after_s = 20.;
    d_deadline_shed = true;
    d_storm = Health.Storm.default_config;
    d_warm_prime = 4;
  }

type t = {
  cpus : int;
  memory_bytes : int;
  page_bytes : int;
  disk_spindles : int;
  disk_seek_s : float;
  disk_throughput : float;
  pool_policy : Bufpool.Policy.kind;
  throttle : Qcore.Throttle_config.t;
  throttle_enabled : bool;
  broker : Qcore.Broker.config;
  optimizer_params : Optimizer.Cascades.params;
  cost_model : Optimizer.Cost.model;
  exec_config : Execsim.Runner.config;
  workspace_frac : float;
  grant_max_query_frac : float;
  grant_timeout : float;
  min_pool_bytes : int;
  min_workspace_bytes : int;
  plan_cache_floor_bytes : int;
  metrics_interval : float;
  seed : int;
  resilience : Resilience.t;
  supervision : Health.Supervise.config;
  defense : defense;
  faults : Faultsim.Fault.spec list;
}

let default () =
  {
    cpus = 8;
    memory_bytes = Dbmem.Units.gib 4;
    page_bytes = Dbmem.Units.mib 4;
    disk_spindles = 8;
    disk_seek_s = 0.008;
    (* 8 spindles x 40 MB/s ~ a 2-channel Ultra3 SCSI RAID-0 of the era. *)
    disk_throughput = 40. *. 1024. *. 1024.;
    pool_policy = Bufpool.Policy.Lru2;
    throttle = Qcore.Throttle_config.default ();
    throttle_enabled = true;
    broker = Qcore.Broker.default_config;
    optimizer_params = Optimizer.Cascades.default_params;
    cost_model = Optimizer.Cost.default;
    exec_config = Execsim.Runner.default_config;
    workspace_frac = 0.45;
    grant_max_query_frac = 0.08;
    grant_timeout = 600.;
    min_pool_bytes = Dbmem.Units.mib 256;
    min_workspace_bytes = Dbmem.Units.mib 256;
    (* 0 = unprotected: the plan cache donates everything under manager
       pressure, the seed behaviour. Cache-heavy workloads (the sharded
       parameterized experiment) raise this so the warm set survives
       buffer-pool pressure — per the paper, a cached plan is the most
       valuable byte in the server (compile cost saved per byte). *)
    plan_cache_floor_bytes = 0;
    metrics_interval = 5.0;
    seed = 42;
    resilience = Resilience.disabled;
    supervision = Health.Supervise.disabled;
    defense = no_defense;
    faults = [];
  }

let resilient () = { (default ()) with resilience = Resilience.default }

let supervised () =
  { (resilient ()) with supervision = Health.Supervise.default }

let unthrottled () =
  let base = default () in
  {
    base with
    throttle_enabled = false;
    optimizer_params =
      {
        base.optimizer_params with
        Optimizer.Cascades.honor_stop_early = false;
      };
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>server: %d cpus, %a memory, %d spindles @ %.0f MB/s, pool granule %a@,throttle %s (%s)@,%a@,%a@]"
    t.cpus Dbmem.Units.pp_bytes t.memory_bytes t.disk_spindles
    (t.disk_throughput /. (1024. *. 1024.))
    Dbmem.Units.pp_bytes t.page_bytes
    (if t.throttle_enabled then "ON" else "OFF")
    (if t.throttle.Qcore.Throttle_config.dynamic then "dynamic thresholds"
     else "static thresholds")
    Qcore.Throttle_config.pp t.throttle Resilience.pp t.resilience;
  if t.supervision.Health.Supervise.enabled then
    Format.fprintf ppf "@,supervision ON: watchdog + starvation auditor + breakers";
  if
    t.defense.d_singleflight || t.defense.d_budget <> None
    || t.defense.d_adaptive_queues || t.defense.d_deadline_shed
    || t.defense.d_storm.Health.Storm.enabled
  then
    Format.fprintf ppf
      "@,storm defense ON: singleflight=%b budget=%b adaptive-queues=%b \
       deadline-shed=%b detector=%b warm-prime=%d"
      t.defense.d_singleflight
      (t.defense.d_budget <> None)
      t.defense.d_adaptive_queues t.defense.d_deadline_shed
      t.defense.d_storm.Health.Storm.enabled t.defense.d_warm_prime;
  match t.faults with
  | [] -> ()
  | faults ->
      Format.fprintf ppf "@,fault schedule:";
      List.iter (fun f -> Format.fprintf ppf "@,  %a" Faultsim.Fault.pp f)
        faults
