(** One failure domain of a sharded deployment.

    A shard wraps a complete server ({!Dbms}: its own memory manager,
    broker, compile gateways and plan cache) behind a small lifecycle
    state machine, and exposes the fault entry points the
    {!Faultsim.Injector} shard hooks need: {!crash} (hard failure,
    restart after a delay with an {e empty} plan cache) and {!stall}
    (brownout at a fraction of the normal service rate).

    Crash semantics are honest about what a simulator can and cannot do:
    an effect-suspended query process cannot be killed, so in-flight
    queries keep consuming simulated resources, but their completions are
    {e epoch-guarded} — a query that started before the crash returns a
    lost-connection error ({!Health.Error.Shard_unavailable}) to its
    client regardless of how the abandoned execution went. A restarted
    shard rejoins cold: the crash flushes the plan cache and buffer pool
    through the donor chain, so the parameterized workload must recompile
    everything at once, under whatever compile-gateway throttling the
    shard's config enables. *)

type lifecycle = Up | Browned_out | Down | Recovering

val lifecycle_name : lifecycle -> string

(** Stable numeric code for Chrome trace counters
    (0 up, 1 browned-out, 2 down, 3 recovering). *)
val lifecycle_code : lifecycle -> int

type t

(** [create ?trace ?probation eng ~index ~name cfg cat] builds and starts
    the shard's server. [probation] (default 30 s) is how long a
    restarted shard reports [Recovering] before going back to [Up]. *)
val create :
  ?trace:Obs.Trace.t ->
  ?probation:float ->
  Sim.Engine.t ->
  index:int ->
  name:string ->
  Config.t ->
  Optimizer.Catalog.t ->
  t

(** [submit t q] runs the query on this shard's server. While [Down] the
    submission is refused immediately with [Shard_unavailable]; a query
    in flight across a crash returns [Shard_unavailable] (connection
    lost) whatever the abandoned execution did. Must be called from a
    simulation process. *)
val submit : t -> Optimizer.Query.t -> (unit, Health.Error.t) result

(** How a completed {!submit_tracked} was booked in the shard's counters. *)
type booking = [ `Refused | `Lost | `Finished ]

(** {!submit} plus the booking tag, for callers that may later need to
    {!uncount} the completion (hedged dispatch). *)
val submit_tracked :
  t -> Optimizer.Query.t -> (unit, Health.Error.t) result * booking

(** Scrub a completion from the books — the router calls this for the
    losing side of a hedge, whose answer the client never took, so
    duplicate dispatches do not double-book shard throughput. Keeps
    [accepted = finished + lost] intact and counts the scrub in
    {!discarded}. *)
val uncount : t -> booking -> unit

(** Kill the shard now; it restarts (cold caches, [Recovering]) after
    [restart_delay] seconds. No-op when already [Down]. Reclaims the
    server's memory and, when an arbiter pool is attached, marks it
    offline so the share is lent to the surviving shards. *)
val crash : t -> restart_delay:float -> unit

(** Brown the shard out for [duration] seconds: it stays up but serves
    I/O at [slow_factor] of the normal rate. No-op while [Down]. *)
val stall : t -> duration:float -> slow_factor:float -> unit

(** Attach the arbiter pool that owns this shard's memory budget; crash
    and restart toggle its offline flag. *)
val set_pool : t -> Qcore.Arbiter.pool -> unit

val pool : t -> Qcore.Arbiter.pool option

(** Current budget: the attached pool's, or the configured memory. *)
val budget : t -> int

(** Emit an {!Obs.Event.Shard_sample} counter record (periodic). *)
val sample : t -> unit

(** {1 Introspection} *)

val name : t -> string
val index : t -> int
val dbms : t -> Dbms.t
val state : t -> lifecycle
val inflight : t -> int

(** Accepted submissions ([= finished + lost + inflight] at all times). *)
val accepted : t -> int

(** Submissions that returned to their client under the epoch they
    started in (success or error alike). *)
val finished : t -> int

(** Completions discounted because the shard crashed mid-flight. *)
val lost : t -> int

(** Submissions refused at the door while [Down]. *)
val refused : t -> int

(** Completions scrubbed by {!uncount} (losing hedges). *)
val discarded : t -> int

val crashes : t -> int
val stalls : t -> int

(** Plan-cache misses accumulated since the last rejoin — the size of the
    cold-cache recompilation storm actually paid. [0] until a
    crash-restart cycle has completed. *)
val recompiles_after_rejoin : t -> int

val pp : Format.formatter -> t -> unit
