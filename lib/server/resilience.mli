(** Per-query resilience policy: how {!Dbms.submit} behaves when the
    machine is hostile.

    Four mechanisms, all off in the seed configuration so the paper's
    baseline numbers are untouched ({!disabled} is the default):

    - {b retry}: transient resource errors (gateway timeout, grant
      timeout) are retried inside the server with capped exponential
      backoff and deterministic jitter drawn from the simulation RNG;
    - {b degradation ladder}: under [Critical] broker pressure — or after
      a compile out-of-memory — the optimizer falls back from full
      Cascades search to the greedy left-deep plan, which needs almost no
      compile memory, instead of erroring (the paper's §4.3
      best-plan-so-far idea taken one rung further);
    - {b admission control}: when in-flight compilations times the
      observed compile-memory appetite overshoot the broker's compile
      target, new compilations are shed immediately rather than queued
      into a pile-up;
    - {b deadline watchdog}: a query that cannot finish within
      [deadline_s] is cancelled at its next allocation instead of holding
      gateways forever. *)

type t = {
  enabled : bool;  (** master switch; [false] = seed behaviour exactly *)
  max_retries : int;  (** retry budget per query, on top of attempt 1 *)
  backoff_base_s : float;  (** first backoff; doubles per retry *)
  backoff_max_s : float;  (** backoff cap *)
  jitter_frac : float;  (** uniform jitter as a fraction of the backoff *)
  degrade_enabled : bool;  (** greedy-plan fallback ladder *)
  shed_enabled : bool;  (** admission-control load shedding *)
  shed_factor : float;
      (** shed when [in_flight * predicted_bytes > shed_factor * target] *)
  deadline_s : float;  (** per-query wall-clock budget; [0.] = none *)
}

(** Everything off — the seed server, bit for bit. *)
val disabled : t

(** Sensible defaults with every mechanism on (chaos runs). *)
val default : t

(** [backoff t ~attempt ~rng] is the sleep before retry [attempt]
    (1-based): [min backoff_max_s (backoff_base_s * 2^(attempt-1))] plus
    uniform jitter in [0, jitter_frac * that). Deterministic given the RNG
    state. Defensive at the edges: [attempt <= 0] is clamped to 1, and a
    negative [jitter_frac] or cap can never yield a negative sleep. *)
val backoff : t -> attempt:int -> rng:Sim.Rng.t -> float

(** Per-client retry token bucket.

    Unconditional retry counts are what turn a transient into a
    metastable failure: every failed query retries [max_retries] times,
    so offered load {e multiplies} exactly when capacity collapses. A
    budget ties the right to retry to goodput instead — each success
    earns [earn_per_success] tokens (capped at [max_tokens]), each retry
    spends [spend_per_retry] — so sustained retry traffic is bounded at
    [earn_per_success / spend_per_retry] of the success rate. During an
    outage the bucket drains, further retries fail fast with
    {!Health.Error.Retry_budget_exhausted}, and the storm is starved of
    its amplifier. Conservation invariant (tested by QCheck):
    [min initial max_tokens + earned - capped - spent = balance]. *)
module Budget : sig
  type config = {
    initial : float;
    earn_per_success : float;
    max_tokens : float;
    spend_per_retry : float;
  }

  (** 10 initial tokens, earn 0.1/success, cap 10, spend 1/retry. *)
  val default_config : config

  type t

  (** Raises [Invalid_argument] on negative rates or a non-positive
      spend. *)
  val create : config -> t

  (** Spend one retry's worth of tokens; [false] (and a denial counted)
      when the balance cannot cover it. *)
  val try_spend : t -> bool

  (** Credit one success's earnings, capped at [max_tokens]. *)
  val earn : t -> unit

  val balance : t -> float
  val earned : t -> float

  (** Earnings discarded at the [max_tokens] cap. *)
  val capped : t -> float

  val spent : t -> float

  (** Retries refused for lack of tokens. *)
  val denied : t -> int

  val config : t -> config
end

val pp : Format.formatter -> t -> unit
