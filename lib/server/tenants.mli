(** Multi-tenant resource pools under one memory arbiter.

    Several tenants share one simulated machine. Each tenant owns a full
    {e resource pool} — its own {!Dbms} (memory manager, broker, gateway
    chain, plan cache, buffer pool, grants) sized to the pool's budget —
    and all pools run on one {!Sim.Engine}. A {!Qcore.Arbiter} on the
    same engine periodically redistributes physical memory between the
    pools: idle reservation flows to pressured tenants and is pulled
    back (through {!Dbms.reclaim}) when the owner wakes up, subject to
    each pool's [min_share]/[max_share] guarantees.

    The module exists to run the noisy-neighbour experiment: an ad-hoc
    SALES tenant with unbounded memory appetite next to a well-behaved
    TPC-H victim and a light templated tenant. With guarantees
    ({!Isolated}) the victim's throughput stays at its solo level; with
    demand-chasing arbitration and no guarantees ({!Free_for_all}) the
    noisy tenant strips the victim's pool. *)

(** Tenant workload mixes. [Light] is the small templated diagnostic
    query (one cacheable template — all plan-cache hits after warmup). *)
type workload = Sales | Tpch | Snowflake | Light

val workload_name : workload -> string

type spec = {
  tname : string;
  tweight : float;  (** share of surplus when lending, > 0 *)
  tmin_share : float;  (** guaranteed floor, fraction of the machine *)
  tmax_share : float;  (** borrowing cap, fraction of the machine *)
  tclients : int;
  tthink_mean : float;  (** mean client think time, seconds *)
  tworkload : workload;
}

(** The noisy-neighbour cast: [noisy] (ad-hoc SALES, many eager
    clients), [victim] (TPC-H, steady), [light] (templated
    diagnostics). *)
val default_specs : unit -> spec list

(** How the machine's memory is governed. *)
type mode =
  | Isolated
      (** arbiter honouring every pool's [min_share]/[max_share] *)
  | Free_for_all
      (** arbiter chasing demand with no meaningful guarantees (token 2%
          floors, caps [1.]) — the no-isolation baseline a noisy tenant
          exploits *)
  | Static  (** budgets fixed at their initial split; no arbiter *)

val mode_name : mode -> string

(** [initial_budgets ~mode ~total specs] is the byte budget each pool
    starts with: its floor plus a weight-proportional share of the
    initially-idle surplus (the {!Qcore.Arbiter.plan} split with zero
    demand). *)
val initial_budgets : mode:mode -> total:int -> spec list -> int list

type tenant_result = {
  rname : string;
  rworkload : workload;
  rclients : int;
  slices : (float * float) array;
      (** completions per [slice]-second time slice over the measure
          window *)
  mean_per_slice : float;
  completed : int;  (** completions inside the measure window *)
  submitted : int;
  succeeded : int;
  abandoned : int;
  errors : int;  (** failed submissions (after client retries) *)
  budget_start : int;
  budget_end : int;
  floor : int;  (** guaranteed bytes under the run's mode *)
  pool_hit_rate : float;
  cache_hit_rate : float;
}

type outcome = {
  omode : mode;
  oseed : int;
  ototal : int;  (** machine bytes split across the pools *)
  owarmup : float;
  omeasure : float;
  oslice : float;
  tenants : tenant_result list;  (** in [specs] order *)
  arb_ticks : int;
  arb_rebalances : int;
  arb_moved : int;  (** bytes granted to growing pools *)
  arb_reclaimed : int;  (** bytes pulled back through reclaim hooks *)
  arb_scarce : bool;  (** last tick saw aggregate demand > machine *)
}

(** [run ~mode ~total_bytes ~seed ~warmup ~measure ~slice ()] builds one
    engine, one pool per spec (budgets from {!initial_budgets} unless
    [budgets] overrides them), spawns each tenant's clients and runs to
    [warmup + measure]. Per-tenant client RNG streams are derived from
    [seed] and the tenant's name — not from split order — so a tenant
    issues the same query stream whether it runs alone or with
    neighbours. The run is a pure function of its arguments: fanning
    several runs over domains cannot change any of their outcomes. *)
val run :
  ?specs:spec list ->
  ?budgets:int list ->
  ?trace:Obs.Trace.t ->
  mode:mode ->
  total_bytes:int ->
  seed:int ->
  warmup:float ->
  measure:float ->
  slice:float ->
  unit ->
  outcome

(** [solo ~victim ...] runs the named tenant alone ({!Static}), at the
    budget it would start with in [Isolated] mode among the full cast —
    the baseline its shared-mode throughput is compared against. *)
val solo :
  ?specs:spec list ->
  ?trace:Obs.Trace.t ->
  victim:string ->
  total_bytes:int ->
  seed:int ->
  warmup:float ->
  measure:float ->
  slice:float ->
  unit ->
  outcome

(** [find_tenant outcome name] — the tenant's result ([Not_found] if
    absent). *)
val find_tenant : outcome -> string -> tenant_result

(** [retention ~shared ~solo] is the victim's shared-mode throughput as
    a fraction of its solo throughput ([1.] = unharmed; [0.] when the
    solo run completed nothing). *)
val retention : shared:tenant_result -> solo:tenant_result -> float
