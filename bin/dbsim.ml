(* Command-line driver for the simulated DBMS: run single experiments,
   throttled-vs-unthrottled comparisons, and client sweeps. The full
   paper-reproduction harness lives in bench/main.exe. *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let clients_arg =
  Arg.(value & opt int 30 & info [ "clients"; "c" ] ~doc:"Number of concurrent clients.")

let throttle_arg =
  Arg.(value & opt bool true & info [ "throttle" ] ~doc:"Enable compilation throttling.")

let warmup_arg =
  Arg.(value & opt float 600. & info [ "warmup" ] ~doc:"Warm-up seconds (excluded from results).")

let measure_arg =
  Arg.(value & opt float 1800. & info [ "measure" ] ~doc:"Measured window, seconds.")

let slice_arg =
  Arg.(value & opt float 60. & info [ "slice" ] ~doc:"Time-slice width for throughput, seconds.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ]
        ~env:(Cmd.Env.info "DBSIM_JOBS")
        ~doc:
          "Domains to fan independent runs across (1 = sequential). Each \
           run is deterministic given its seed, so the output is the same \
           at any job count.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PREFIX"
        ~doc:"Also write results as CSV files named PREFIX-*.csv.")

let write_csv path header rows =
  let oc = open_out path in
  output_string oc (String.concat "," header);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  Printf.printf "wrote %s\n" path

let csv_of_slices path slices =
  write_csv path [ "slice_start_s"; "completions" ]
    (Array.to_list
       (Array.map
          (fun (t, v) -> [ Printf.sprintf "%.0f" t; Printf.sprintf "%.0f" v ])
          slices))

let csv_of_memory path series =
  (* One row per sample time, one column per clerk. *)
  match series with
  | [] -> ()
  | (_, first) :: _ ->
      let names = List.map fst series in
      let n = Sim.Series.length first in
      let rows =
        List.init n (fun k ->
            let t, _ = Sim.Series.nth first k in
            Printf.sprintf "%.0f" t
            :: List.map
                 (fun (_, s) ->
                   if Sim.Series.length s > k then
                     Printf.sprintf "%.0f" (snd (Sim.Series.nth s k))
                   else "")
                 series)
      in
      write_csv path ("time_s" :: List.map (fun n -> n ^ "_bytes") names) rows

let config ~throttle ~seed =
  let base = if throttle then Server.Config.default () else Server.Config.unthrottled () in
  { base with Server.Config.seed }

let run_one ~clients ~throttle ~warmup ~measure ~slice ~seed =
  Server.Experiment.run
    ~config:(config ~throttle ~seed)
    ~clients ~warmup ~measure ~slice ()

(* Detailed single run that keeps the server around for resource stats. *)
let run_verbose ~clients ~throttle ~warmup ~measure ~slice ~seed =
  let cfg = config ~throttle ~seed in
  let eng = Sim.Engine.create ~seed () in
  let dbms = Server.Dbms.create eng cfg (Workload.Sales.catalog ()) in
  Server.Dbms.start dbms;
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  let stop = warmup +. measure in
  let crng = Sim.Rng.split (Sim.Engine.rng eng) in
  for i = 1 to clients do
    Workload.Client.spawn eng crng ~name:(Printf.sprintf "c%d" i)
      ~templates:(Workload.Sales.templates ())
      ~submit:(fun q -> Server.Dbms.submit_catch dbms q)
      ~config:Workload.Client.default_config ~stats ~ids ~until:stop
  done;
  Sim.Engine.run eng ~until:stop;
  let m = Server.Dbms.metrics dbms in
  let grants = Server.Dbms.grants dbms in
  let disk = Server.Dbms.disk dbms in
  Printf.printf "completions=%d errors=%d\n"
    (Server.Metrics.total_completions m ~since:warmup ())
    (Server.Metrics.total_errors m);
  Format.printf "grant waits: %a timeouts=%d in_use=%s of %s@."
    Sim.Stats.Online.pp (Execsim.Grant.wait_stats grants)
    (Execsim.Grant.timeouts grants)
    (Dbmem.Units.bytes_to_string (Execsim.Grant.in_use grants))
    (Dbmem.Units.bytes_to_string (Execsim.Grant.total grants));
  Printf.printf "disk: read %.1f GB, written %.1f GB, util %.2f\n"
    (float_of_int (Bufpool.Disk.bytes_read disk) /. 1e9)
    (float_of_int (Bufpool.Disk.bytes_written disk) /. 1e9)
    ((float_of_int (Bufpool.Disk.bytes_read disk + Bufpool.Disk.bytes_written disk)
      /. (320. *. 1024. *. 1024.)) /. stop);
  Format.printf "disk queue: %a@." Sim.Stats.Online.pp (Bufpool.Disk.queue_wait disk);
  Format.printf "pool: %a@." Bufpool.Pool.pp (Server.Dbms.pool dbms);
  Format.printf "cache: %a@." Plancache.Cache.pp (Server.Dbms.plan_cache dbms);
  Printf.printf "cpu util=%.2f queued=%d\n"
    (Execsim.Cpu.utilization (Server.Dbms.cpu dbms))
    (Execsim.Cpu.queued (Server.Dbms.cpu dbms));
  Format.printf "%a@." Dbmem.Manager.pp (Server.Dbms.manager dbms);
  Format.printf "%a@." Qcore.Broker.pp (Server.Dbms.broker dbms);
  Format.printf "%a@." Qcore.Compile_gov.pp (Server.Dbms.governor dbms);
  Format.printf "compile: %a@.exec: %a@."
    Sim.Stats.Online.pp (Server.Metrics.compile_time m)
    Sim.Stats.Online.pp (Server.Metrics.exec_time m);
  ignore slice

let verbose_cmd =
  let action clients throttle warmup measure slice seed =
    run_verbose ~clients ~throttle ~warmup ~measure ~slice ~seed
  in
  Cmd.v (Cmd.info "verbose" ~doc:"Single run with resource diagnostics.")
    Term.(const action $ clients_arg $ throttle_arg $ warmup_arg $ measure_arg $ slice_arg $ seed_arg)

let run_cmd =
  let action clients throttle warmup measure slice seed csv =
    let r = run_one ~clients ~throttle ~warmup ~measure ~slice ~seed in
    Format.printf "%a@." Server.Experiment.pp_summary r;
    List.iter
      (fun (k, n) -> if n > 0 then Printf.printf "  error %s: %d\n" k n)
      r.Server.Experiment.errors;
    Printf.printf "  client: submitted %d attempts %d succeeded %d abandoned %d\n"
      r.Server.Experiment.client_stats.Workload.Client.submitted
      r.Server.Experiment.client_stats.Workload.Client.attempts
      r.Server.Experiment.client_stats.Workload.Client.succeeded
      r.Server.Experiment.client_stats.Workload.Client.abandoned;
    Server.Report.table ~header:[ "slice start (s)"; "completions" ]
      (Array.to_list
         (Array.map
            (fun (t, v) -> [ Printf.sprintf "%.0f" t; Printf.sprintf "%.0f" v ])
            r.Server.Experiment.slices));
    print_endline ("  " ^ Server.Report.sparkline (Array.map snd r.Server.Experiment.slices));
    match csv with
    | None -> ()
    | Some prefix ->
        csv_of_slices (prefix ^ "-slices.csv") r.Server.Experiment.slices;
        csv_of_memory (prefix ^ "-memory.csv") r.Server.Experiment.memory_series
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the SALES benchmark once.")
    Term.(const action $ clients_arg $ throttle_arg $ warmup_arg $ measure_arg $ slice_arg $ seed_arg $ csv_arg)

let compare_cmd =
  let action clients warmup measure slice seed csv jobs =
    let cell throttle =
      Server.Experiment.cell ~config:(config ~throttle ~seed) ~clients ~warmup
        ~measure ~slice ()
    in
    let on, off =
      match Server.Experiment.run_grid ~jobs [ cell true; cell false ] with
      | [ on; off ] -> (on, off)
      | _ -> assert false
    in
    Server.Report.figure_series
      ~title:(Printf.sprintf "Throughput, %d clients (completions per %.0fs slice)" clients slice)
      ~throttled:on.Server.Experiment.slices
      ~unthrottled:off.Server.Experiment.slices;
    Server.Report.table ~header:Server.Report.result_header
      [ Server.Report.result_row on; Server.Report.result_row off ];
    match csv with
    | None -> ()
    | Some prefix ->
        csv_of_slices (prefix ^ "-throttled.csv") on.Server.Experiment.slices;
        csv_of_slices (prefix ^ "-unthrottled.csv") off.Server.Experiment.slices;
        csv_of_memory (prefix ^ "-memory-throttled.csv") on.Server.Experiment.memory_series;
        csv_of_memory (prefix ^ "-memory-unthrottled.csv") off.Server.Experiment.memory_series
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Throttled vs unthrottled at one client count (Figures 3-5).")
    Term.(
      const action $ clients_arg $ warmup_arg $ measure_arg $ slice_arg
      $ seed_arg $ csv_arg $ jobs_arg)

let sweep_cmd =
  let list_arg =
    Arg.(
      value
      & opt (list int) [ 10; 20; 30; 35; 40 ]
      & info [ "list" ] ~doc:"Client counts to sweep.")
  in
  let action counts throttle warmup measure slice seed jobs =
    let cells =
      List.map
        (fun clients ->
          Server.Experiment.cell ~config:(config ~throttle ~seed) ~clients
            ~warmup ~measure ~slice ())
        counts
    in
    let rows =
      List.map Server.Report.result_row
        (Server.Experiment.run_grid ~jobs cells)
    in
    Server.Report.table ~header:Server.Report.result_header rows
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Sweep client counts (peak-throughput claim).")
    Term.(
      const action $ list_arg $ throttle_arg $ warmup_arg $ measure_arg
      $ slice_arg $ seed_arg $ jobs_arg)

let sql_cmd =
  let count_arg =
    Arg.(value & opt int 2 & info [ "count"; "n" ] ~doc:"Number of instances to print.")
  in
  let workload_arg =
    Arg.(
      value
      & opt (enum [ ("sales", `Sales); ("snowflake", `Snowflake); ("tpch", `Tpch) ]) `Sales
      & info [ "workload" ] ~doc:"Workload: sales, snowflake or tpch.")
  in
  let action count workload seed =
    let templates =
      match workload with
      | `Sales -> Workload.Sales.templates ()
      | `Snowflake -> Workload.Snowflake.templates ()
      | `Tpch -> Workload.Tpch.templates ()
    in
    let rng = Sim.Rng.create seed in
    for i = 1 to count do
      let t = Workload.Template.pick rng templates in
      print_endline (Optimizer.Query.to_sql (Workload.Template.instance rng t ~id:i));
      print_newline ()
    done
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Print uniquified query instances as SQL text.")
    Term.(const action $ count_arg $ workload_arg $ seed_arg)

let chaos_cmd =
  let clients_arg =
    Arg.(value & opt int 35 & info [ "clients"; "c" ] ~doc:"Number of concurrent clients.")
  in
  let warmup_arg =
    Arg.(value & opt float 60. & info [ "warmup" ] ~doc:"Warm-up seconds (excluded from results).")
  in
  let measure_arg =
    Arg.(value & opt float 1000. & info [ "measure" ] ~doc:"Measured window, seconds.")
  in
  let ballast_gib =
    Arg.(
      value
      & opt float 12.
      & info [ "ballast-gib" ]
          ~doc:"Ballast appetite, GiB (0 disables). May exceed physical \
                memory: the ramp then absorbs whatever other components \
                release, like a runaway external process.")
  in
  let ballast_at =
    Arg.(value & opt float 100. & info [ "ballast-at" ] ~doc:"Ballast spike start, seconds of sim time.")
  in
  let ballast_hold =
    Arg.(value & opt float 0. & info [ "ballast-hold" ] ~doc:"Seconds the ballast holds after its ramp.")
  in
  let ballast_steps =
    Arg.(value & opt int 240 & info [ "ballast-steps" ] ~doc:"Ballast ramp increments.")
  in
  let ballast_step_s =
    Arg.(value & opt float 2.5 & info [ "ballast-step-s" ] ~doc:"Seconds between ballast increments.")
  in
  let storm_arg =
    Arg.(value & flag & info [ "disk-storm" ] ~doc:"Also degrade the disk during the spike window.")
  in
  let burst_arg =
    Arg.(value & opt int 0 & info [ "burst" ] ~doc:"Extra burst clients during the spike window (0 = none).")
  in
  let glitch_arg =
    Arg.(
      value
      & opt float 0.
      & info [ "glitch" ]
          ~doc:"Transient allocation-failure probability during the spike window (0 = none).")
  in
  let think_arg =
    Arg.(value & opt float 100. & info [ "think" ] ~doc:"Client mean think time, seconds.")
  in
  let workload_arg =
    Arg.(
      value
      & opt (enum [ ("sales", `Sales); ("snowflake", `Snowflake); ("tpch", `Tpch) ]) `Sales
      & info [ "workload" ] ~doc:"Workload: sales, snowflake or tpch.")
  in
  let action clients warmup measure slice seed ballast_gib ballast_at
      ballast_hold ballast_steps ballast_step_s storm burst glitch think
      workload jobs =
    let catalog, templates =
      match workload with
      | `Sales -> (Workload.Sales.catalog (), Workload.Sales.templates ())
      | `Snowflake -> (Workload.Snowflake.catalog (), Workload.Snowflake.templates ())
      | `Tpch -> (Workload.Tpch.catalog (), Workload.Tpch.templates ())
    in
    let at = ballast_at and hold = ballast_hold in
    let ramp = float_of_int ballast_steps *. ballast_step_s in
    let window = ramp +. hold in
    let faults =
      (if ballast_gib > 0. then
         Faultsim.Fault.pressure_spike ~ramp_steps:ballast_steps
           ~step_s:ballast_step_s ~at
           ~bytes:(int_of_float (ballast_gib *. float_of_int (Dbmem.Units.gib 1)))
           ~hold ()
       else [])
      @ (if storm then
           [ Faultsim.Fault.Disk_storm
               { at; duration = window; throughput_factor = 0.5; extra_seek_s = 0.004 } ]
         else [])
      @ (if burst > 0 then
           [ Faultsim.Fault.Client_burst
               { at; duration = window; clients = burst; think_mean = 10. } ]
         else [])
      @
      if glitch > 0. then
        [ Faultsim.Fault.Alloc_glitch
            { at; duration = window; fail_prob = glitch; clerks = [ "compile" ] } ]
      else []
    in
    let cell resilient =
      let base =
        if resilient then Server.Config.resilient () else Server.Config.default ()
      in
      let cfg = { base with Server.Config.seed; faults } in
      (* The shared catalog/templates are read-only during runs, so the
         two cells may execute on different domains. *)
      Server.Experiment.cell ~config:cfg ~catalog ~templates
        ~client_config:
          { Workload.Client.default_config with Workload.Client.think_mean = think }
        ~clients ~warmup ~measure ~slice ()
    in
    let on, off =
      match Server.Experiment.run_grid ~jobs [ cell true; cell false ] with
      | [ on; off ] -> (on, off)
      | _ -> assert false
    in
    Printf.printf "Chaos schedule (%d clients, seed %d):\n" clients seed;
    List.iter (fun f -> Printf.printf "  %s\n" (Faultsim.Fault.label f)) faults;
    print_newline ();
    Format.printf "%a@.@." Server.Experiment.pp_summary on;
    Format.printf "%a@.@." Server.Experiment.pp_summary off;
    Server.Report.table ~header:Server.Report.result_header
      [ Server.Report.result_row on; Server.Report.result_row off ];
    Server.Report.resilience_section [ on; off ];
    print_newline ();
    Printf.printf "  resilient   %s\n" (Server.Report.sparkline (Array.map snd on.Server.Experiment.slices));
    Printf.printf "  unprotected %s\n" (Server.Report.sparkline (Array.map snd off.Server.Experiment.slices));
    let up = 100. *. Server.Experiment.uplift on off in
    Printf.printf
      "\n  completions uplift with resilience: %+.0f%% (%d vs %d); hard errors %d vs %d\n"
      up on.Server.Experiment.total_completed off.Server.Experiment.total_completed
      on.Server.Experiment.hard_errors off.Server.Experiment.hard_errors
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run a fault schedule with resilience on vs off (graceful-degradation demo).")
    Term.(
      const action $ clients_arg $ warmup_arg $ measure_arg $ slice_arg
      $ seed_arg $ ballast_gib $ ballast_at $ ballast_hold $ ballast_steps
      $ ballast_step_s $ storm_arg $ burst_arg $ glitch_arg $ think_arg
      $ workload_arg $ jobs_arg)

let trace_cmd =
  let scenario_arg =
    Arg.(
      value
      & opt (enum [ ("server", `Server); ("figure2", `Figure2) ]) `Server
      & info [ "scenario" ]
          ~doc:
            "What to trace: $(b,server) (a short SALES run on the full \
             server) or $(b,figure2) (the paper's three-query throttling \
             example).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "trace"
      & info [ "out"; "o" ] ~docv:"PREFIX"
          ~doc:"Write PREFIX.json (Chrome trace-event) and PREFIX.jsonl.")
  in
  let trace_clients_arg =
    Arg.(
      value & opt int 12
      & info [ "clients"; "c" ]
          ~doc:"Concurrent clients (server scenario only).")
  in
  let trace_measure_arg =
    Arg.(
      value & opt float 240.
      & info [ "measure" ] ~doc:"Simulated seconds (server scenario only).")
  in
  let action scenario out clients measure seed =
    let trace = Obs.Trace.create () in
    (match scenario with
    | `Figure2 ->
        let r = Server.Figure2.run ~trace () in
        if r.Server.Figure2.failures > 0 then
          Printf.printf "!! %d process failures\n" r.Server.Figure2.failures
    | `Server ->
        let cfg = { (Server.Config.default ()) with Server.Config.seed } in
        ignore
          (Server.Experiment.run ~config:cfg ~trace ~clients ~warmup:0.
             ~measure ~slice:60. ()));
    let records = Obs.Trace.records trace in
    Printf.printf "captured %d trace events (%d dropped)\n"
      (Array.length records) (Obs.Trace.dropped trace);
    (* Per-category counts. *)
    let cats = Hashtbl.create 8 in
    Array.iter
      (fun (r : Obs.Trace.record) ->
        let c = Obs.Event.category r.Obs.Trace.event in
        Hashtbl.replace cats c
          (1 + Option.value ~default:0 (Hashtbl.find_opt cats c)))
      records;
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) cats []
    |> List.sort compare
    |> List.iter (fun (c, n) -> Printf.printf "  %-12s %d\n" c n);
    (* Gateway wait percentiles, from the trace. *)
    List.iter
      (fun (gate, h) ->
        Format.printf "gateway %-10s waits: %a@." gate Obs.Hist.pp_summary h)
      (Obs.Analyze.wait_histograms records);
    List.iter
      (fun (gate, peak) ->
        Printf.printf "gateway %-10s peak concurrent holders: %d\n" gate peak)
      (Obs.Analyze.max_holders records);
    let violations = Obs.Analyze.admission_violations records in
    Printf.printf "admission-order violations: %d\n" (List.length violations);
    let chrome = out ^ ".json" and jsonl = out ^ ".jsonl" in
    Obs.Export.chrome_to_file chrome records;
    Obs.Export.jsonl_to_file jsonl records;
    Printf.printf "wrote %s (load in chrome://tracing or https://ui.perfetto.dev) and %s\n"
      chrome jsonl
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a query-lifecycle trace and export it as Chrome \
          trace-event JSON + JSONL.")
    Term.(
      const action $ scenario_arg $ out_arg $ trace_clients_arg
      $ trace_measure_arg $ seed_arg)

(* A repeated seed in --seeds would make two runs race to the same
   per-seed report file, one silently overwriting the other; reject the
   list up front, before any simulation, with the structured one-line
   error. *)
let check_duplicate_seeds seeds =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s then begin
        prerr_endline
          (Printf.sprintf
             "dbsim: error: duplicate seed %d in --seeds (try 'dbsim --help')"
             s);
        exit Cmd.Exit.cli_error
      end;
      Hashtbl.add seen s ())
    seeds

(* FILE as given for a single-seed run, FILE-seedN.ext otherwise. *)
let seed_out_path ~multi out seed =
  match out with
  | None -> None
  | Some path when not multi -> Some path
  | Some path -> (
      match Filename.extension path with
      | "" -> Some (Printf.sprintf "%s-seed%d" path seed)
      | ext ->
          Some
            (Printf.sprintf "%s-seed%d%s"
               (Filename.remove_extension path) seed ext))

let health_cmd =
  let clients_arg =
    Arg.(value & opt int 35 & info [ "clients"; "c" ] ~doc:"Number of concurrent clients.")
  in
  let warmup_arg =
    Arg.(value & opt float 60. & info [ "warmup" ] ~doc:"Warm-up seconds (excluded from the report).")
  in
  let measure_arg =
    Arg.(value & opt float 1000. & info [ "measure" ] ~doc:"Measured window, seconds.")
  in
  let drain_arg =
    Arg.(
      value & opt float 900.
      & info [ "drain" ]
          ~doc:"Extra seconds after clients stop, so in-flight queries can \
                finish; anything still watched after the drain is stuck.")
  in
  let resilience_arg =
    Arg.(
      value & opt bool true
      & info [ "resilience" ]
          ~doc:"Keep the retry/degrade/shed ladder on underneath the \
                supervision layer (false = supervision alone).")
  in
  let glitch_arg =
    Arg.(
      value & opt float 0.15
      & info [ "glitch" ]
          ~doc:"Allocation-failure probability on the compile clerk during \
                the spike window (0 = ballast only).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Also write the health report to FILE (CI artifact). With \
             several $(b,--seeds), -seedN is inserted before the extension.")
  in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "seeds" ]
          ~doc:
            "Run the schedule at each of these seeds (overrides --seed); \
             the independent runs fan out across --jobs domains.")
  in
  let action clients warmup measure drain resilience glitch seed out seeds jobs =
    let config =
      if resilience then Server.Config.supervised ()
      else
        {
          (Server.Config.default ()) with
          Server.Config.supervision = Health.Supervise.default;
        }
    in
    let faults = Server.Scenario.chaos_faults ~glitch () in
    check_duplicate_seeds seeds;
    let seeds = match seeds with [] -> [ seed ] | l -> l in
    let run_seed seed =
      Server.Scenario.run_chaos ~config ~faults ~seed ~clients ~warmup
        ~measure ~drain ()
    in
    let outcomes =
      if jobs <= 1 then List.map run_seed seeds
      else Parallel.Pool.run ~jobs run_seed seeds
    in
    let multi = List.length seeds > 1 in
    let out_for = seed_out_path ~multi out in
    let any_stuck = ref false in
    List.iter2
      (fun seed o ->
        Printf.printf "Chaos schedule (%d clients, seed %d, %s):\n" clients seed
          (if resilience then "supervision + resilience"
           else "supervision only");
        List.iter
          (fun f -> Printf.printf "  %s\n" (Faultsim.Fault.label f))
          o.Server.Scenario.faults;
        print_newline ();
        Format.printf "%a@." Health.Report.pp o.Server.Scenario.report;
        let r = o.Server.Scenario.report in
        Printf.printf "\n  stuck queries: %d%s\n" (Health.Report.stuck r)
          (if Health.Report.stuck r = 0 then ""
           else "  <-- SUPERVISION FAILURE");
        (match out_for seed with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            let ppf = Format.formatter_of_out_channel oc in
            Format.fprintf ppf "%a@." Health.Report.pp r;
            close_out oc;
            Printf.printf "wrote %s\n" path);
        if Health.Report.stuck r > 0 then any_stuck := true)
      seeds outcomes;
    if multi then begin
      let stuck_total =
        List.fold_left
          (fun acc o -> acc + Health.Report.stuck o.Server.Scenario.report)
          0 outcomes
      in
      Printf.printf "\n%d seeds run, %d stuck queries total\n"
        (List.length seeds) stuck_total
    end;
    if !any_stuck then exit 3
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run the canonical chaos schedule under the supervision layer and \
          print the health report with the error-budget table.")
    Term.(
      const action $ clients_arg $ warmup_arg $ measure_arg $ drain_arg
      $ resilience_arg $ glitch_arg $ seed_arg $ out_arg $ seeds_arg
      $ jobs_arg)

let tenants_cmd =
  let warmup_arg =
    Arg.(value & opt float 400. & info [ "warmup" ] ~doc:"Warm-up seconds (excluded from results).")
  in
  let measure_arg =
    Arg.(value & opt float 1200. & info [ "measure" ] ~doc:"Measured window, seconds.")
  in
  let total_gib_arg =
    Arg.(
      value & opt float 4.
      & info [ "total-gib" ]
          ~doc:"Machine memory split across the tenant pools, GiB.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Also write a per-seed tenant report to FILE (CI artifact). \
             With several $(b,--seeds), -seedN is inserted before the \
             extension.")
  in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "seeds" ]
          ~doc:
            "Run the experiment at each of these seeds (overrides --seed); \
             the independent runs fan out across --jobs domains.")
  in
  let action warmup measure slice seed seeds total_gib out jobs =
    check_duplicate_seeds seeds;
    let seeds = match seeds with [] -> [ seed ] | l -> l in
    let total_bytes =
      int_of_float (total_gib *. float_of_int (Dbmem.Units.gib 1))
    in
    (* Three configurations per seed — the victim alone at its pool size,
       the cast under the guaranteed arbiter, and the cast under
       demand-chasing arbitration with no guarantees — each an
       independent deterministic run, fanned over the domains. *)
    let kinds = [ `Solo; `Isolated; `Free ] in
    let cells =
      List.concat_map (fun seed -> List.map (fun k -> (seed, k)) kinds) seeds
    in
    let run_cell (seed, kind) =
      match kind with
      | `Solo ->
          Server.Tenants.solo ~victim:"victim" ~total_bytes ~seed ~warmup
            ~measure ~slice ()
      | `Isolated ->
          Server.Tenants.run ~mode:Server.Tenants.Isolated ~total_bytes ~seed
            ~warmup ~measure ~slice ()
      | `Free ->
          Server.Tenants.run ~mode:Server.Tenants.Free_for_all ~total_bytes
            ~seed ~warmup ~measure ~slice ()
    in
    let outcomes =
      if jobs <= 1 then List.map run_cell cells
      else Parallel.Pool.run ~jobs run_cell cells
    in
    let rec group = function
      | [] -> []
      | a :: b :: c :: rest -> (a, b, c) :: group rest
      | _ -> assert false
    in
    let multi = List.length seeds > 1 in
    List.iter2
      (fun seed (o_solo, o_iso, o_free) ->
        let open Server.Tenants in
        Printf.printf "\nNoisy neighbour, seed %d (machine %s):\n" seed
          (Dbmem.Units.bytes_to_string total_bytes);
        Server.Report.tenants_section o_solo;
        Server.Report.tenants_section o_iso;
        Server.Report.tenants_section o_free;
        let v = find_tenant o_solo "victim" in
        let vi = find_tenant o_iso "victim" in
        let vf = find_tenant o_free "victim" in
        let r_iso = retention ~shared:vi ~solo:v in
        let r_free = retention ~shared:vf ~solo:v in
        Printf.printf
          "\n  victim retention vs solo: isolated %.0f%%, free-for-all %.0f%%\n"
          (100. *. r_iso) (100. *. r_free);
        match seed_out_path ~multi out seed with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            let pr fmt = Printf.fprintf oc fmt in
            pr "noisy-neighbour report, seed %d, machine %s\n" seed
              (Dbmem.Units.bytes_to_string total_bytes);
            let dump (o : outcome) =
              pr "[%s]\n" (mode_name o.omode);
              pr
                "pool,workload,clients,compl_per_slice,total,budget_start,\
                 budget_end,floor,pool_hit,cache_hit,errors,abandoned\n";
              List.iter
                (fun (r : tenant_result) ->
                  pr "%s,%s,%d,%.2f,%d,%d,%d,%d,%.3f,%.3f,%d,%d\n" r.rname
                    (workload_name r.rworkload)
                    r.rclients r.mean_per_slice r.completed r.budget_start
                    r.budget_end r.floor r.pool_hit_rate r.cache_hit_rate
                    r.errors r.abandoned)
                o.tenants;
              if o.omode <> Static then
                pr "arbiter ticks=%d rebalances=%d moved=%d reclaimed=%d scarce=%b\n"
                  o.arb_ticks o.arb_rebalances o.arb_moved o.arb_reclaimed
                  o.arb_scarce
            in
            dump o_solo;
            dump o_iso;
            dump o_free;
            pr "victim_retention isolated=%.3f free_for_all=%.3f\n" r_iso r_free;
            close_out oc;
            Printf.printf "wrote %s\n" path)
      seeds (group outcomes)
  in
  Cmd.v
    (Cmd.info "tenants"
       ~doc:
         "Multi-tenant noisy-neighbour experiment: victim solo vs shared \
          with arbiter isolation vs shared free-for-all.")
    Term.(
      const action $ warmup_arg $ measure_arg $ slice_arg $ seed_arg
      $ seeds_arg $ total_gib_arg $ out_arg $ jobs_arg)

let shards_cmd =
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Number of shards (failure domains).")
  in
  let clients_arg =
    Arg.(value & opt int 32 & info [ "clients"; "c" ] ~doc:"Concurrent clients across the router.")
  in
  let variants_arg =
    Arg.(
      value & opt int 40
      & info [ "variants" ]
          ~doc:"Parameterized (cacheable) query templates in the workload.")
  in
  let think_arg =
    Arg.(value & opt float 20. & info [ "think" ] ~doc:"Client think time, seconds (mean).")
  in
  let warmup_arg =
    Arg.(value & opt float 400. & info [ "warmup" ] ~doc:"Warm-up seconds (excluded from results).")
  in
  let measure_arg =
    Arg.(value & opt float 1200. & info [ "measure" ] ~doc:"Measured window, seconds.")
  in
  let total_gib_arg =
    Arg.(
      value & opt float 8.
      & info [ "total-gib" ] ~doc:"Machine memory split across the shards, GiB.")
  in
  let hedge_arg =
    Arg.(
      value & flag
      & info [ "hedge" ]
          ~doc:"Hedge submissions whose home shard is browned out.")
  in
  let rolling_arg =
    Arg.(
      value & flag
      & info [ "rolling" ]
          ~doc:"Also run the staggered rolling-restart schedule.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Also write a per-seed shard report to FILE (CI artifact). With \
             several $(b,--seeds), -seedN is inserted before the extension.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:
            "Additionally re-run the crash-failover gateways-on cell with \
             tracing and write PREFIX-seedN.json Chrome traces (per-shard \
             lifecycle + budget counters, gateway waits).")
  in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "seeds" ]
          ~doc:
            "Run every cell at each of these seeds (overrides --seed); the \
             independent runs fan out across --jobs domains.")
  in
  let action shards clients variants think warmup measure slice total_gib hedge
      rolling seed seeds out trace_prefix jobs =
    check_duplicate_seeds seeds;
    let seeds = match seeds with [] -> [ seed ] | l -> l in
    let total_bytes =
      int_of_float (total_gib *. float_of_int (Dbmem.Units.gib 1))
    in
    let cfg_of ~seed ~schedule ~gateways =
      {
        Server.Shards.c_shards = shards;
        c_clients = clients;
        c_variants = variants;
        c_think = think;
        c_warmup = warmup;
        c_measure = measure;
        c_slice = slice;
        c_total = total_bytes;
        c_gateways = gateways;
        c_hedge = hedge;
        c_seed = seed;
        c_schedule = schedule;
      }
    in
    (* Per seed: the healthy baseline, then crash-failover with gateways
       on and off — the off cell shows what the recompilation storm costs
       without compile throttling. *)
    let kinds =
      [
        (Server.Shards.No_fault, true);
        (Server.Shards.Crash_failover, true);
        (Server.Shards.Crash_failover, false);
      ]
      @ (if rolling then [ (Server.Shards.Rolling_restart, true) ] else [])
      @ if hedge then [ (Server.Shards.Brownout, true) ] else []
    in
    let cells =
      List.concat_map
        (fun seed ->
          List.map
            (fun (schedule, gateways) -> cfg_of ~seed ~schedule ~gateways)
            kinds)
        seeds
    in
    let run_cell cfg = Server.Shards.run cfg in
    let outcomes =
      if jobs <= 1 then List.map run_cell cells
      else Parallel.Pool.run ~jobs run_cell cells
    in
    let per_seed = List.length kinds in
    let rec group = function
      | [] -> []
      | rest ->
          let rec take n acc = function
            | l when n = 0 -> (List.rev acc, l)
            | x :: l -> take (n - 1) (x :: acc) l
            | [] -> assert false
          in
          let seed_outcomes, rest = take per_seed [] rest in
          seed_outcomes :: group rest
    in
    let multi = List.length seeds > 1 in
    List.iter2
      (fun seed seed_outcomes ->
        let open Server.Shards in
        let baseline = List.hd seed_outcomes in
        Printf.printf "\nSharded failover, seed %d (machine %s, %d shards):\n"
          seed
          (Dbmem.Units.bytes_to_string total_bytes)
          shards;
        List.iter
          (fun o ->
            if o.o_config.c_schedule = No_fault then
              Server.Report.shards_section o
            else Server.Report.shards_section ~baseline o)
          seed_outcomes;
        let find schedule gateways =
          List.find_opt
            (fun o ->
              o.o_config.c_schedule = schedule
              && o.o_config.c_gateways = gateways)
            seed_outcomes
        in
        let ret o = 100. *. retention ~fault:o ~no_fault:baseline in
        (match (find Crash_failover true, find Crash_failover false) with
        | Some on, Some off ->
            Printf.printf
              "\n  crash-failover retention vs no-fault: gateways on %.0f%%, \
               off %.0f%%\n"
              (ret on) (ret off)
        | _ -> ());
        (match seed_out_path ~multi out seed with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            let pr fmt = Printf.fprintf oc fmt in
            pr "sharded-failover report, seed %d, machine %s, %d shards\n"
              seed
              (Dbmem.Units.bytes_to_string total_bytes)
              shards;
            List.iter
              (fun o ->
                pr "[%s gateways=%b hedge=%b]\n"
                  (schedule_name o.o_config.c_schedule)
                  o.o_config.c_gateways o.o_config.c_hedge;
                pr
                  "shard,state,crashes,accepted,finished,lost,refused,\
                   recompiles,cache_hit,budget_end\n";
                List.iter
                  (fun (r : shard_result) ->
                    pr "%s,%s,%d,%d,%d,%d,%d,%d,%.3f,%d\n" r.sh_name
                      r.sh_final_state r.sh_crashes r.sh_accepted r.sh_finished
                      r.sh_lost r.sh_refused r.sh_recompiles r.sh_cache_hit_rate
                      r.sh_budget_end)
                  o.shard_results;
                pr
                  "router submitted=%d ok=%d failed=%d rejected=%d spills=%d \
                   hedges=%d hedge_wins=%d retries=%d p50_ms=%.1f p99_ms=%.1f\n"
                  o.submitted o.ok o.failed o.rejected o.spills o.hedges
                  o.hedge_wins o.retries o.p50_ms o.p99_ms;
                pr
                  "arbiter ticks=%d rebalances=%d moved=%d reclaimed=%d \
                   max_budget_sum=%d\n"
                  o.arb_ticks o.arb_rebalances o.arb_moved o.arb_reclaimed
                  o.max_budget_sum;
                if o.o_config.c_schedule <> No_fault then
                  pr "retention=%.3f\n" (retention ~fault:o ~no_fault:baseline))
              seed_outcomes;
            close_out oc;
            Printf.printf "wrote %s\n" path);
        match trace_prefix with
        | None -> ()
        | Some prefix ->
            let trace = Obs.Trace.create () in
            ignore
              (Server.Shards.run ~trace
                 (cfg_of ~seed ~schedule:Crash_failover ~gateways:true));
            let path = Printf.sprintf "%s-seed%d.json" prefix seed in
            Obs.Export.chrome_to_file path (Obs.Trace.records trace);
            Printf.printf "wrote %s\n" path)
      seeds (group outcomes)
  in
  Cmd.v
    (Cmd.info "shards"
       ~doc:
         "Sharded scale-out experiment: health-aware routing over N failure \
          domains, crash-failover with cold-cache recompilation storms, \
          with and without compile gateways.")
    Term.(
      const action $ shards_arg $ clients_arg $ variants_arg $ think_arg
      $ warmup_arg $ measure_arg $ slice_arg $ total_gib_arg $ hedge_arg
      $ rolling_arg $ seed_arg $ seeds_arg $ out_arg $ trace_arg $ jobs_arg)

let storm_cmd =
  let shards_arg =
    Arg.(value & opt int 3 & info [ "shards" ] ~doc:"Number of shards (failure domains).")
  in
  let clients_arg =
    Arg.(value & opt int 160 & info [ "clients"; "c" ] ~doc:"Concurrent clients across the router.")
  in
  let variants_arg =
    Arg.(
      value & opt int 96
      & info [ "variants" ]
          ~doc:"Parameterized (cacheable) query templates in the workload.")
  in
  let think_arg =
    Arg.(value & opt float 10. & info [ "think" ] ~doc:"Client think time, seconds (mean).")
  in
  let warmup_arg =
    Arg.(value & opt float 600. & info [ "warmup" ] ~doc:"Warm-up seconds (excluded from results).")
  in
  let measure_arg =
    Arg.(value & opt float 900. & info [ "measure" ] ~doc:"Measured window, seconds.")
  in
  let slice_arg =
    Arg.(value & opt float 30. & info [ "slice" ] ~doc:"Time-slice width for throughput, seconds.")
  in
  let total_gib_arg =
    Arg.(
      value & opt float 24.
      & info [ "total-gib" ] ~doc:"Machine memory split across the shards, GiB.")
  in
  let defenses_arg =
    Arg.(
      value
      & opt (enum [ ("on", `On); ("off", `Off); ("both", `Both) ]) `Both
      & info [ "defenses" ]
          ~doc:
            "Defense stack: $(b,on), $(b,off), or $(b,both) (the A/B \
             comparison). Tuning flags require the defended arm.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("crash", `Crash); ("invalidation", `Invalidation); ("both", `Both) ])
          `Invalidation
      & info [ "schedule" ]
          ~doc:
            "Storm trigger: $(b,crash) (shard 1 rejoins cold), \
             $(b,invalidation) (every plan cache flushed in place), or \
             $(b,both).")
  in
  let sf_wait_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "sf-wait" ]
          ~doc:
            "Singleflight follower wait, seconds, before compiling solo. \
             Conflicts with $(b,--defenses off).")
  in
  let budget_tokens_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-tokens" ]
          ~doc:
            "Initial retry-budget tokens per client. Conflicts with \
             $(b,--defenses off).")
  in
  let lifo_after_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "lifo-after" ]
          ~doc:
            "Seconds of sustained gateway standing before the FIFO->LIFO \
             flip. Conflicts with $(b,--defenses off).")
  in
  let warm_prime_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "warm-prime" ]
          ~doc:
            "Hottest templates warm-primed on shard rejoin. Conflicts \
             with $(b,--defenses off).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Also write a per-seed storm report to FILE (CI artifact). With \
             several $(b,--seeds), -seedN is inserted before the extension.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:
            "Additionally re-run the defended first-schedule cell with tracing and \
             write PREFIX-seedN.json Chrome traces (storm begin/end \
             instants, singleflight coalesces, queue-discipline shifts, \
             gateway waits).")
  in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "seeds" ]
          ~doc:
            "Run every cell at each of these seeds (overrides --seed); the \
             independent runs fan out across --jobs domains.")
  in
  let action shards clients variants think warmup measure slice total_gib
      defenses schedule sf_wait budget_tokens lifo_after warm_prime seed seeds
      out trace_prefix jobs =
    check_duplicate_seeds seeds;
    let fail msg =
      prerr_endline (Printf.sprintf "dbsim: error: %s (try 'dbsim --help')" msg);
      exit Cmd.Exit.cli_error
    in
    (* Structured conflicts, caught before any simulation runs: every
       tuning flag parameterizes a defense, so with the defended arm
       excluded there is nothing for it to tune. *)
    (if defenses = `Off then
       let conflict name = function
         | Some _ ->
             fail
               (Printf.sprintf
                  "--%s conflicts with --defenses off (it tunes a defense \
                   that arm never runs)"
                  name)
         | None -> ()
       in
       conflict "sf-wait" sf_wait;
       conflict "budget-tokens" budget_tokens;
       conflict "lifo-after" lifo_after;
       conflict "warm-prime" (Option.map float_of_int warm_prime));
    let nonpos name = function
      | Some v when v <= 0. -> fail (Printf.sprintf "--%s must be positive" name)
      | _ -> ()
    in
    nonpos "sf-wait" sf_wait;
    nonpos "budget-tokens" budget_tokens;
    nonpos "lifo-after" lifo_after;
    (match warm_prime with
    | Some k when k < 0 -> fail "--warm-prime must be >= 0"
    | _ -> ());
    let seeds = match seeds with [] -> [ seed ] | l -> l in
    let total_bytes =
      int_of_float (total_gib *. float_of_int (Dbmem.Units.gib 1))
    in
    let cfg_of ~seed ~schedule ~defenses =
      {
        Server.Storms.s_shards = shards;
        s_clients = clients;
        s_variants = variants;
        s_think = think;
        s_warmup = warmup;
        s_measure = measure;
        s_slice = slice;
        s_total = total_bytes;
        s_defenses = defenses;
        s_sf_wait = (if defenses then sf_wait else None);
        s_budget_tokens = (if defenses then budget_tokens else None);
        s_lifo_after = (if defenses then lifo_after else None);
        s_warm_prime = (if defenses then warm_prime else None);
        s_seed = seed;
        s_schedule = schedule;
      }
    in
    let schedules =
      match schedule with
      | `Crash -> [ Server.Storms.Cold_crash ]
      | `Invalidation -> [ Server.Storms.Mass_invalidation ]
      | `Both -> [ Server.Storms.Cold_crash; Server.Storms.Mass_invalidation ]
    in
    let arms =
      match defenses with
      | `On -> [ true ]
      | `Off -> [ false ]
      | `Both -> [ true; false ]
    in
    let kinds =
      List.concat_map (fun sch -> List.map (fun d -> (sch, d)) arms) schedules
    in
    let cells =
      List.concat_map
        (fun seed ->
          List.map
            (fun (schedule, defenses) -> cfg_of ~seed ~schedule ~defenses)
            kinds)
        seeds
    in
    List.iter Server.Storms.validate cells;
    let run_cell cfg = Server.Storms.run cfg in
    let outcomes =
      if jobs <= 1 then List.map run_cell cells
      else Parallel.Pool.run ~jobs run_cell cells
    in
    let per_seed = List.length kinds in
    let rec group = function
      | [] -> []
      | rest ->
          let rec take n acc = function
            | l when n = 0 -> (List.rev acc, l)
            | x :: l -> take (n - 1) (x :: acc) l
            | [] -> assert false
          in
          let seed_outcomes, rest = take per_seed [] rest in
          seed_outcomes :: group rest
    in
    let multi = List.length seeds > 1 in
    List.iter2
      (fun seed seed_outcomes ->
        let open Server.Storms in
        Printf.printf
          "\nCold-cache storm, seed %d (machine %s, %d shards, %d clients):\n"
          seed
          (Dbmem.Units.bytes_to_string total_bytes)
          shards clients;
        List.iter Server.Report.storms_section seed_outcomes;
        List.iter
          (fun sch ->
            let find d =
              List.find_opt
                (fun o ->
                  o.o_config.s_schedule = sch && o.o_config.s_defenses = d)
                seed_outcomes
            in
            match (find true, find false) with
            | Some defended, Some undefended ->
                Printf.printf "\n  [%s]" (schedule_name sch);
                Server.Report.storms_verdict ~defended ~undefended
            | _ -> ())
          schedules;
        (match seed_out_path ~multi out seed with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            let pr fmt = Printf.fprintf oc fmt in
            pr "storm report, seed %d, machine %s, %d shards, %d clients\n"
              seed
              (Dbmem.Units.bytes_to_string total_bytes)
              shards clients;
            pr
              "schedule,defenses,pre_rate,post_rate,recovery_s,recovered,\
               retry_amp,dup_compiles,coalesced,storms,primed,lifo_shifts,\
               deadline_sheds,budget_denials,submitted,ok,failed,rejected,\
               retries,p50_ms,p99_ms,abandoned\n";
            List.iter
              (fun o ->
                pr
                  "%s,%b,%.2f,%.2f,%s,%b,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,\
                   %d,%d,%.1f,%.1f,%d\n"
                  (schedule_name o.o_config.s_schedule)
                  o.o_config.s_defenses o.pre_rate o.post_rate
                  (if o.recovered then Printf.sprintf "%.1f" o.recovery_s
                   else "inf")
                  o.recovered o.retry_amp o.dup_compiles o.coalesced
                  o.storms_detected o.primed o.lifo_shifts o.deadline_sheds
                  o.budget_denials o.submitted o.ok o.failed o.rejected
                  o.retries o.p50_ms o.p99_ms o.cl_abandoned)
              seed_outcomes;
            List.iter
              (fun sch ->
                let find d =
                  List.find_opt
                    (fun o ->
                      o.o_config.s_schedule = sch && o.o_config.s_defenses = d)
                    seed_outcomes
                in
                match (find true, find false) with
                | Some defended, Some undefended ->
                    pr "%s defense_win=%b\n" (schedule_name sch)
                      (faster_recovery ~defended ~undefended)
                | _ -> ())
              schedules;
            close_out oc;
            Printf.printf "wrote %s\n" path);
        match trace_prefix with
        | None -> ()
        | Some prefix ->
            let trace = Obs.Trace.create () in
            ignore
              (Server.Storms.run ~trace
                 (cfg_of ~seed ~schedule:(List.hd schedules) ~defenses:true));
            let path = Printf.sprintf "%s-seed%d.json" prefix seed in
            Obs.Export.chrome_to_file path (Obs.Trace.records trace);
            Printf.printf "wrote %s\n" path)
      seeds (group outcomes)
  in
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Metastable-failure experiment: cold-cache storms (crash-failover \
          or mass invalidation) with the defense stack — singleflight, \
          retry budgets, adaptive queues, warm-priming — on vs off.")
    Term.(
      const action $ shards_arg $ clients_arg $ variants_arg $ think_arg
      $ warmup_arg $ measure_arg $ slice_arg $ total_gib_arg $ defenses_arg
      $ schedule_arg $ sf_wait_arg $ budget_tokens_arg $ lifo_after_arg
      $ warm_prime_arg $ seed_arg $ seeds_arg $ out_arg $ trace_arg $ jobs_arg)

let cache_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("all", `All); ("off", `Off); ("fixed", `Fixed); ("brokered", `Brokered) ]) `All
      & info [ "mode" ]
          ~doc:
            "Cache mode to run: $(b,off), $(b,fixed), $(b,brokered), or \
             $(b,all) (the three-way comparison).")
  in
  let clients_arg =
    Arg.(value & opt int 16 & info [ "clients"; "c" ] ~doc:"Number of concurrent clients.")
  in
  let think_arg =
    Arg.(value & opt float 30. & info [ "think" ] ~doc:"Client think time, seconds (mean).")
  in
  let ratio_arg =
    Arg.(
      value & opt float 0.6
      & info [ "param-ratio" ]
          ~doc:
            "Fraction of traffic replaying parameterized (cacheable) \
             statements; the rest is uniquified ad-hoc.")
  in
  let variants_arg =
    Arg.(
      value & opt int 32
      & info [ "variants" ] ~doc:"Distinct parameterized statements.")
  in
  let writers_arg =
    Arg.(
      value & opt int 2
      & info [ "writers" ]
          ~doc:"Writer sessions invalidating cached results by relation.")
  in
  let warmup_arg =
    Arg.(value & opt float 200. & info [ "warmup" ] ~doc:"Warm-up seconds (excluded from results).")
  in
  let measure_arg =
    Arg.(value & opt float 800. & info [ "measure" ] ~doc:"Measured window, seconds.")
  in
  let memory_gib_arg =
    Arg.(value & opt float 4. & info [ "memory-gib" ] ~doc:"Machine memory, GiB.")
  in
  let cache_mib_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-mib" ]
          ~doc:
            "Cache byte budget, MiB (fixed mode) / broker cap (brokered \
             mode). Default 256. Conflicts with $(b,--mode off).")
  in
  let ttl_arg =
    Arg.(
      value & opt float 600.
      & info [ "ttl" ] ~doc:"Cached-entry lifetime, seconds (0 = no expiry).")
  in
  let ballast_gib_arg =
    Arg.(
      value & opt float 0.
      & info [ "ballast-gib" ]
          ~doc:
            "Inject a memory ballast mid-window (GiB): the pressure under \
             which a brokered cache shrinks and a fixed one squeezes the \
             engine.")
  in
  let flash_arg =
    Arg.(
      value & opt int 0
      & info [ "flash" ]
          ~doc:
            "Flash crowd: this many extra clients appear halfway through \
             the measure window for a fifth of it (0 = none).")
  in
  let peak_load_arg =
    Arg.(
      value & opt float 1.
      & info [ "peak-load" ]
          ~doc:
            "Diurnal curve: load swings sinusoidally up to this multiple \
             of the baseline over one measure-length cycle (1 = flat).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Also write a per-seed cache report to FILE (CI artifact). With \
             several $(b,--seeds), -seedN is inserted before the extension.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PREFIX"
          ~doc:
            "Additionally re-run the brokered cell with tracing and write \
             PREFIX-seedN.json Chrome traces (cache residency/hit-rate \
             counters, lookup/store/invalidate/shrink instants, gateway \
             waits).")
  in
  let seeds_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "seeds" ]
          ~doc:
            "Run every cell at each of these seeds (overrides --seed); the \
             independent runs fan out across --jobs domains.")
  in
  let action mode clients think ratio variants writers warmup measure slice
      memory_gib cache_mib ttl ballast_gib flash peak_load seed seeds out
      trace_prefix jobs =
    check_duplicate_seeds seeds;
    let fail msg =
      prerr_endline (Printf.sprintf "dbsim: error: %s (try 'dbsim --help')" msg);
      exit Cmd.Exit.cli_error
    in
    (* Structured conflicts, caught before any simulation runs. *)
    (match (mode, cache_mib) with
    | `Off, Some _ ->
        fail "--cache-mib conflicts with --mode off (cache-off runs no cache)"
    | _ -> ());
    if ratio < 0. || ratio > 1. then fail "--param-ratio outside [0, 1]";
    if peak_load < 1. then fail "--peak-load below 1";
    if flash < 0 then fail "--flash below 0";
    let seeds = match seeds with [] -> [ seed ] | l -> l in
    let modes =
      match mode with
      | `All ->
          [
            Server.Cached.Cache_off;
            Server.Cached.Cache_fixed;
            Server.Cached.Cache_brokered;
          ]
      | `Off -> [ Server.Cached.Cache_off ]
      | `Fixed -> [ Server.Cached.Cache_fixed ]
      | `Brokered -> [ Server.Cached.Cache_brokered ]
    in
    let cfg_of ~seed ~mode =
      {
        Server.Cached.default_config with
        Server.Cached.k_mode = mode;
        k_clients = clients;
        k_think = think;
        k_ratio = ratio;
        k_variants = variants;
        k_writers = writers;
        k_warmup = warmup;
        k_measure = measure;
        k_slice = slice;
        k_memory = int_of_float (memory_gib *. float_of_int (Dbmem.Units.gib 1));
        k_cache_bytes = Dbmem.Units.mib (Option.value cache_mib ~default:256);
        k_ttl = ttl;
        k_ballast_gib = ballast_gib;
        k_diurnal =
          (if peak_load > 1. then
             Some { Workload.Mix.period = measure; peak_load }
           else None);
        k_flash =
          (if flash > 0 then
             [
               {
                 Workload.Mix.at = warmup +. (0.5 *. measure);
                 duration = 0.2 *. measure;
                 clients = flash;
                 think = think /. 4.;
               };
             ]
           else []);
        k_seed = seed;
      }
    in
    let cells =
      List.concat_map
        (fun seed -> List.map (fun mode -> cfg_of ~seed ~mode) modes)
        seeds
    in
    List.iter Server.Cached.validate cells;
    let run_cell cfg = Server.Cached.run cfg in
    let outcomes =
      if jobs <= 1 then List.map run_cell cells
      else Parallel.Pool.run ~jobs run_cell cells
    in
    let per_seed = List.length modes in
    let rec group = function
      | [] -> []
      | rest ->
          let rec take n acc = function
            | l when n = 0 -> (List.rev acc, l)
            | x :: l -> take (n - 1) (x :: acc) l
            | [] -> assert false
          in
          let seed_outcomes, rest = take per_seed [] rest in
          seed_outcomes :: group rest
    in
    let multi = List.length seeds > 1 in
    List.iter2
      (fun seed seed_outcomes ->
        let open Server.Cached in
        let baseline =
          List.find_opt
            (fun o -> o.o_config.k_mode = Cache_off)
            seed_outcomes
        in
        Printf.printf
          "\nMid-tier cache, seed %d (machine %.0f GiB, %.0f%% parameterized):\n"
          seed memory_gib (100. *. ratio);
        List.iter
          (fun o ->
            match baseline with
            | Some b when o.o_config.k_mode <> Cache_off ->
                Server.Report.cached_section ~baseline:b o
            | _ -> Server.Report.cached_section o)
          seed_outcomes;
        if List.length seed_outcomes > 1 then
          Server.Report.cached_comparison seed_outcomes;
        (match seed_out_path ~multi out seed with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            let pr fmt = Printf.fprintf oc fmt in
            pr "mid-tier cache report, seed %d, machine %.0f GiB\n" seed
              memory_gib;
            pr
              "mode,compl_per_slice,completed,requests,hits,misses,bypasses,\
               hit_rate,stores,refused,evictions,expired,invalidated,\
               shrink_events,shrink_freed,resident_end,resident_peak,\
               budget_end,gw_acquires,gw_timeouts,gw_wait_mean_s,compiles,\
               plan_hits,compile_peak_max,ooms,p50_ms,p99_ms,abandoned\n";
            List.iter
              (fun o ->
                pr
                  "%s,%.2f,%d,%d,%d,%d,%d,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,\
                   %d,%d,%d,%.3f,%d,%d,%.0f,%d,%.1f,%.1f,%d\n"
                  (mode_name o.o_config.k_mode)
                  o.mean_per_slice o.completed o.requests o.hits o.misses
                  o.bypasses o.cache_hit_rate o.stores o.refused o.evictions
                  o.expired o.invalidated o.shrink_events o.shrink_freed
                  o.resident_end o.resident_peak o.budget_end o.gw_acquires
                  o.gw_timeouts o.gw_wait_mean_s o.compiles o.plan_hits
                  o.compile_peak_max o.ooms o.p50_ms o.p99_ms o.cl_abandoned)
              seed_outcomes;
            (match
               ( baseline,
                 List.find_opt
                   (fun o -> o.o_config.k_mode = Cache_brokered)
                   seed_outcomes )
             with
            | Some off, Some brokered ->
                pr "brokered_uplift=%.3f gw_drop=%d\n"
                  (uplift brokered ~over:off)
                  (off.gw_acquires - brokered.gw_acquires)
            | _ -> ());
            close_out oc;
            Printf.printf "wrote %s\n" path);
        match trace_prefix with
        | None -> ()
        | Some prefix ->
            let trace = Obs.Trace.create () in
            ignore
              (Server.Cached.run ~trace
                 (cfg_of ~seed ~mode:Server.Cached.Cache_brokered));
            let path = Printf.sprintf "%s-seed%d.json" prefix seed in
            Obs.Export.chrome_to_file path (Obs.Trace.records trace);
            Printf.printf "wrote %s\n" path)
      seeds (group outcomes)
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Mid-tier statement/result cache under mixed parameterized/ad-hoc \
          traffic: cache-off vs fixed vs broker-governed, with optional \
          memory ballast, diurnal curve and flash crowds.")
    Term.(
      const action $ mode_arg $ clients_arg $ think_arg $ ratio_arg
      $ variants_arg $ writers_arg $ warmup_arg $ measure_arg $ slice_arg
      $ memory_gib_arg $ cache_mib_arg $ ttl_arg $ ballast_gib_arg $ flash_arg
      $ peak_load_arg $ seed_arg $ seeds_arg $ out_arg $ trace_arg $ jobs_arg)

let info_cmd =
  let action () =
    let cfg = Server.Config.default () in
    Format.printf "%a@.@." Server.Config.pp cfg;
    Format.printf "%a@." Optimizer.Catalog.pp (Workload.Sales.catalog ())
  in
  Cmd.v (Cmd.info "info" ~doc:"Print the server configuration and SALES catalog.")
    Term.(const action $ const ())

(* Condense cmdliner's multi-line complaint (message + usage dump + help
   hint) into one structured stderr line, so scripts and CI logs get a
   single greppable "dbsim: error: ..." instead of a wrapped paragraph. *)
let one_line_error raw =
  let lines = String.split_on_char '\n' raw in
  let is_noise l =
    let l = String.trim l in
    String.length l = 0
    || (String.length l >= 6 && String.sub l 0 6 = "Usage:")
    || (String.length l >= 4 && String.sub l 0 4 = "Try ")
  in
  let msg =
    List.filter (fun l -> not (is_noise l)) lines
    |> List.map String.trim |> String.concat " "
  in
  let msg =
    let p = "dbsim: " in
    if
      String.length msg >= String.length p
      && String.sub msg 0 (String.length p) = p
    then String.sub msg (String.length p) (String.length msg - String.length p)
    else msg
  in
  Printf.sprintf "dbsim: error: %s (try 'dbsim --help')" msg

let () =
  setup_logs (Some Logs.Warning);
  let doc = "Simulated DBMS reproducing CIDR'07 query-compilation throttling" in
  let group =
    Cmd.group (Cmd.info "dbsim" ~doc)
      [ run_cmd; compare_cmd; sweep_cmd; chaos_cmd; health_cmd; tenants_cmd;
        shards_cmd; cache_cmd; storm_cmd; trace_cmd; info_cmd; verbose_cmd;
        sql_cmd ]
  in
  let errbuf = Buffer.create 256 in
  let err = Format.formatter_of_buffer errbuf in
  let code = Cmd.eval ~err group in
  Format.pp_print_flush err ();
  if Buffer.length errbuf > 0 then
    if code = Cmd.Exit.cli_error then
      prerr_endline (one_line_error (Buffer.contents errbuf))
    else prerr_string (Buffer.contents errbuf);
  exit code
