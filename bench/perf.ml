(* Wall-clock + allocation microbenchmark suite: the repo's perf
   trajectory. Writes BENCH_perf.json (first tracked point; CI uploads it
   as an artifact per commit) and exits non-zero if the parallel and
   sequential runs of the experiment grid disagree — the determinism gate
   for the domain pool. Two committed baselines: BENCH_perf.json (full
   suite) and BENCH_perf_quick.json (--quick, the one CI's ratchet diffs
   against — quick mode shrinks the per-op workloads, so the two are not
   cross-comparable and bench/ratchet.ml refuses to try).

     dune exec bench/perf.exe                       # full suite
     dune exec bench/perf.exe -- --quick            # CI smoke variant
     dune exec bench/perf.exe -- --jobs 4 --out BENCH_perf.json

   Suites: optimizer compile (DP + Cascades on SALES shapes), the
   sim-engine event loop, a full experiment cell, and the parallel grid
   speedup with a byte-identity check. *)

let quick = ref false
let jobs = ref 0 (* 0 = auto; clamped to the core count after parsing *)
let jobs_requested = ref 0
let out_path = ref "BENCH_perf.json"

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type bench = {
  name : string;
  iters : int;
  wall_s : float;
  per_op_ns : float;
  alloc_bytes_per_op : float;
}

let time_bench ~name ~iters f =
  (* One warm-up call keeps first-use effects (catalog build, heap
     growth) out of the measurement. *)
  ignore (f ());
  let a0 = Gc.allocated_bytes () in
  let (), wall_s = wall (fun () -> for _ = 1 to iters do ignore (f ()) done) in
  let alloc = Gc.allocated_bytes () -. a0 in
  {
    name;
    iters;
    wall_s;
    per_op_ns = wall_s *. 1e9 /. float_of_int iters;
    alloc_bytes_per_op = alloc /. float_of_int iters;
  }

(* ------------------------------------------------------------------ *)
(* Optimizer compile *)

(* SALES instances carry 16-20 relations; the DP baseline is capped at
   [Dp.max_rels], so benchmark it on the instance truncated to that cap
   (the join graph is a star, so any prefix stays connected). *)
let truncate_query q ~max_rels =
  let open Optimizer in
  if Query.n_rels q <= max_rels then q
  else begin
    let keep = max_rels in
    Query.make
      ~id:(q.Query.qid ^ "-trunc")
      ~rels:
        (Array.to_list (Array.sub q.Query.rels 0 keep)
        |> List.map (fun r -> (r.Query.rtable, r.Query.ralias)))
      ~preds:
        (List.filter
           (fun (p : Query.join_pred) ->
             p.Query.jleft < keep && p.Query.jright < keep)
           q.Query.preds)
      ~filters:
        (List.filter (fun (f : Query.filter) -> f.Query.frel < keep) q.Query.filters)
      ~agg:
        (Option.map
           (fun (a : Query.aggregate) ->
             {
               Query.group_by = List.filter (fun (i, _) -> i < keep) a.Query.group_by;
               sum_cols = List.filter (fun (i, _) -> i < keep) a.Query.sum_cols;
             })
           q.Query.agg)
  end

let optimizer_benches () =
  let cat = Workload.Sales.catalog () in
  let templates = Workload.Sales.templates () in
  let rng = Sim.Rng.create 7 in
  let q_full = Workload.Template.instance rng (List.hd templates) ~id:1 in
  let q_dp = truncate_query q_full ~max_rels:Optimizer.Dp.max_rels in
  let dp_iters = if !quick then 3 else 10 in
  let casc_iters = if !quick then 25 else 200 in
  [
    time_bench ~name:"dp_optimize_14rel" ~iters:dp_iters (fun () ->
        let card = Optimizer.Card.create cat q_dp in
        ignore (Optimizer.Dp.optimize Optimizer.Cost.default card));
    time_bench ~name:"cascades_optimize_sales" ~iters:casc_iters (fun () ->
        match
          Optimizer.Cascades.optimize ~env:Optimizer.Env.null
            Optimizer.Cost.default cat q_full
        with
        | Ok r -> ignore r.Optimizer.Cascades.plan
        | Error _ -> failwith "cascades aborted in benchmark");
  ]

(* Steady-state compile stream, the shape the server actually runs: a
   long mixed-template workload through one Cascades memo arena reused
   across queries, against the same stream paying a fresh memo per query.
   The pair prices exactly what the arena buys — table/pool reuse at
   high-water capacity — on realistic SALES instances. *)
let steady_state_benches () =
  let cat = Workload.Sales.catalog () in
  let templates = Array.of_list (Workload.Sales.templates ()) in
  let n_queries = if !quick then 50 else 200 in
  let rng = Sim.Rng.create 11 in
  let queries =
    Array.init n_queries (fun i ->
        Workload.Template.instance rng
          templates.(i mod Array.length templates)
          ~id:(1000 + i))
  in
  let iters = if !quick then 2 else 5 in
  let run ?arena () =
    Array.iter
      (fun q ->
        match
          Optimizer.Cascades.optimize ?arena ~env:Optimizer.Env.null
            Optimizer.Cost.default cat q
        with
        | Ok r -> ignore r.Optimizer.Cascades.plan
        | Error _ -> failwith "cascades aborted in steady-state bench")
      queries
  in
  let arena = Optimizer.Cascades.create_arena () in
  let reused =
    time_bench ~name:"optimizer_steady_state" ~iters (fun () -> run ~arena ())
  in
  let fresh =
    time_bench ~name:"optimizer_steady_state_fresh" ~iters (fun () -> run ())
  in
  (* Normalise run-of-N to per-query numbers. *)
  List.map
    (fun b ->
      {
        b with
        iters = b.iters * n_queries;
        per_op_ns = b.per_op_ns /. float_of_int n_queries;
        alloc_bytes_per_op = b.alloc_bytes_per_op /. float_of_int n_queries;
      })
    [ reused; fresh ]

(* ------------------------------------------------------------------ *)
(* Sim-engine event loop *)

let engine_bench () =
  let n_timers = 64 and horizon = if !quick then 2_000. else 20_000. in
  let iters = if !quick then 3 else 5 in
  time_bench ~name:"sim_engine_event_loop" ~iters (fun () ->
      let eng = Sim.Engine.create ~seed:1 () in
      for i = 1 to n_timers do
        (* Staggered periodic timers keep the heap near its working size,
           like the client/monitor population of a real run. *)
        ignore
          (Sim.Engine.every eng
             ~start:(0.1 *. float_of_int i)
             ~interval:(1.0 +. (0.01 *. float_of_int i))
             (fun () -> ()))
      done;
      Sim.Engine.run eng ~until:horizon;
      Sim.Engine.events_executed eng)

(* ------------------------------------------------------------------ *)
(* Mid-tier cache ops *)

(* Steady-state churn on a full cache: every put evicts from the LRU
   tail, every fourth op is a lookup over a hot key, every 64th an
   invalidation by relation. This is the per-request price the mid-tier
   pays on the hot path, intrusive-list bookkeeping included. *)
let midcache_bench () =
  let ops = if !quick then 20_000 else 200_000 in
  let iters = if !quick then 3 else 5 in
  let budget = 64 * 1024 * 1024 in
  let cache =
    Midcache.Cache.create ~budget
      { Midcache.Cache.default_config with ttl = 1e9 }
  in
  let rels = [| "customer"; "product"; "store"; "promo" |] in
  let b =
    time_bench ~name:"midcache_ops" ~iters (fun () ->
        for i = 0 to ops - 1 do
          let key = Printf.sprintf "q%d" (i land 4095) in
          if i land 3 = 0 then
            ignore (Midcache.Cache.get cache ~now:0. key)
          else if i land 63 = 1 then
            ignore (Midcache.Cache.invalidate cache rels.(i land 3))
          else
            ignore
              (Midcache.Cache.put cache ~now:0. ~key ~bytes:(32 * 1024)
                 ~rels:[ rels.(i land 3) ])
        done)
  in
  (* Normalise run-of-N to per-op numbers. *)
  {
    b with
    iters = iters * ops;
    per_op_ns = b.per_op_ns /. float_of_int ops;
    alloc_bytes_per_op = b.alloc_bytes_per_op /. float_of_int ops;
  }

(* ------------------------------------------------------------------ *)
(* Storm-defense hot paths *)

(* Uncontended singleflight enter/exit — the bookkeeping every compile
   now pays even when no storm is in progress (hash probe, flight
   record, waitq allocation). Rotating keys keeps the table realistic. *)
let singleflight_bench () =
  let ops = if !quick then 20_000 else 200_000 in
  let iters = if !quick then 3 else 5 in
  let eng = Sim.Engine.create ~seed:1 () in
  let sf = Plancache.Singleflight.create eng in
  let b =
    time_bench ~name:"singleflight_ops" ~iters (fun () ->
        for i = 0 to ops - 1 do
          let key = Printf.sprintf "p%03d" (i land 127) in
          match Plancache.Singleflight.enter sf ~key () with
          | `Leader tok -> Plancache.Singleflight.exit sf tok
          | _ -> assert false
        done)
  in
  {
    b with
    iters = iters * ops;
    per_op_ns = b.per_op_ns /. float_of_int ops;
    alloc_bytes_per_op = b.alloc_bytes_per_op /. float_of_int ops;
  }

(* Retry-budget token bucket: the per-retry spend / per-success earn the
   router pays on every outcome. *)
let retry_budget_bench () =
  let ops = if !quick then 50_000 else 500_000 in
  let iters = if !quick then 3 else 5 in
  let budget =
    Server.Resilience.Budget.create Server.Resilience.Budget.default_config
  in
  let b =
    time_bench ~name:"retry_budget_ops" ~iters (fun () ->
        for i = 0 to ops - 1 do
          if i land 1 = 0 then Server.Resilience.Budget.earn budget
          else ignore (Server.Resilience.Budget.try_spend budget)
        done)
  in
  {
    b with
    iters = iters * ops;
    per_op_ns = b.per_op_ns /. float_of_int ops;
    alloc_bytes_per_op = b.alloc_bytes_per_op /. float_of_int ops;
  }

(* ------------------------------------------------------------------ *)
(* Experiment cells and the parallel grid *)

let cell_measure () = if !quick then 180. else 600.

let experiment_bench () =
  let iters = if !quick then 1 else 2 in
  time_bench ~name:"experiment_cell" ~iters (fun () ->
      Server.Experiment.run
        ~config:{ (Server.Config.default ()) with Server.Config.seed = 42 }
        ~clients:10 ~warmup:30. ~measure:(cell_measure ()) ~slice:60. ())

(* A full brokered mid-tier cache cell: clients, writers, cache,
   broker registration and gateway accounting end to end. *)
let cached_cell_bench () =
  let iters = if !quick then 1 else 2 in
  time_bench ~name:"cached_cell_brokered" ~iters (fun () ->
      Server.Cached.run
        {
          Server.Cached.default_config with
          Server.Cached.k_clients = 10;
          k_variants = 24;
          k_warmup = 30.;
          k_measure = cell_measure ();
          k_seed = 42;
        })

(* Per-task round-trip cost of the domain pool itself — submit, queue
   handoff, result collection — measured on trivial closures through a
   warm pool. This is the overhead a grid cell pays on top of its own
   work, and on a 1-core machine it is the whole story of any
   "slowdown" the parallel grid shows. *)
let pool_overhead_bench () =
  let tasks = 1_000 in
  let iters = if !quick then 3 else 10 in
  Parallel.Pool.with_pool ~jobs:(max 2 !jobs) (fun pool ->
      let items = List.init tasks Fun.id in
      let b =
        time_bench ~name:"pool_submit_roundtrip" ~iters (fun () ->
            Parallel.Pool.map pool (fun x -> x + 1) items)
      in
      (* Normalise map-of-N to per-task numbers. *)
      {
        b with
        iters = iters * tasks;
        per_op_ns = b.per_op_ns /. float_of_int tasks;
        alloc_bytes_per_op = b.alloc_bytes_per_op /. float_of_int tasks;
      })

type grid_outcome = {
  cells : int;
  grid_jobs : int;  (* effective: requested clamped to the core count *)
  grid_jobs_requested : int;
  cores : int;
  seq_s : float;
  par_s : float;
  speedup : float;
  expected_speedup : float;
  fingerprint_s : float;  (* cost of the Marshal identity gate itself *)
  gate_ran : bool;
  identical : bool;
}

let grid_bench () =
  (* The paper's grid shape in miniature: throttling on/off at three
     client counts, one seed — six independent cells. *)
  let mk config clients =
    Server.Experiment.cell ~config ~clients ~warmup:30.
      ~measure:(cell_measure ()) ~slice:60. ()
  in
  let cells =
    List.concat_map
      (fun clients ->
        [
          mk { (Server.Config.default ()) with Server.Config.seed = 42 } clients;
          mk { (Server.Config.unthrottled ()) with Server.Config.seed = 42 } clients;
        ])
      [ 10; 12; 14 ]
  in
  let n_cells = List.length cells in
  let cores = Domain.recommended_domain_count () in
  (* Ideal scaling is bounded by whichever is scarcest: cells to run,
     worker domains, or physical cores. Jobs are clamped to the core
     count before this point, so on a 1-core box the grid runs inline
     (jobs=1) instead of reporting a meaningless sub-1x "speedup" from a
     pool that can only add overhead. *)
  let expected_speedup = float_of_int (min n_cells (min !jobs cores)) in
  let seq_results, seq_s =
    wall (fun () -> Server.Experiment.run_grid ~jobs:1 cells)
  in
  if !jobs = 1 then
    (* jobs=1 runs inline on the calling domain: a second grid run would
       re-measure the sequential path, and the identity gate would compare
       a value with itself. Skip both. *)
    {
      cells = n_cells;
      grid_jobs = 1;
      grid_jobs_requested = !jobs_requested;
      cores;
      seq_s;
      par_s = seq_s;
      speedup = 1.0;
      expected_speedup;
      fingerprint_s = 0.;
      gate_ran = false;
      identical = true;
    }
  else begin
    let par_results, par_s =
      wall (fun () -> Server.Experiment.run_grid ~jobs:!jobs cells)
    in
    let fingerprint results =
      (* Full structural equality: every series sample, stat and counter. *)
      Marshal.to_string results [ Marshal.No_sharing ]
    in
    let identical, fingerprint_s =
      wall (fun () ->
          String.equal (fingerprint seq_results) (fingerprint par_results))
    in
    {
      cells = n_cells;
      grid_jobs = !jobs;
      grid_jobs_requested = !jobs_requested;
      cores;
      seq_s;
      par_s;
      speedup = (if par_s > 0. then seq_s /. par_s else nan);
      expected_speedup;
      fingerprint_s;
      gate_ran = true;
      identical;
    }
  end

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled: no JSON dependency in the image) *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ~benches ~grid path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"dbsim-perf/1\",\n";
  p "  \"quick\": %b,\n" !quick;
  p "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"benchmarks\": [\n";
  List.iteri
    (fun i b ->
      p
        "    {\"name\": \"%s\", \"iters\": %d, \"wall_s\": %.6f, \
         \"per_op_ns\": %.1f, \"alloc_bytes_per_op\": %.1f}%s\n"
        (json_escape b.name) b.iters b.wall_s b.per_op_ns b.alloc_bytes_per_op
        (if i = List.length benches - 1 then "" else ","))
    benches;
  p "  ],\n";
  p "  \"grid\": {\n";
  p "    \"cells\": %d,\n" grid.cells;
  p "    \"jobs\": %d,\n" grid.grid_jobs;
  p "    \"jobs_requested\": %d,\n" grid.grid_jobs_requested;
  p "    \"cores\": %d,\n" grid.cores;
  p "    \"sequential_s\": %.3f,\n" grid.seq_s;
  p "    \"parallel_s\": %.3f,\n" grid.par_s;
  p "    \"speedup\": %.3f,\n" grid.speedup;
  p "    \"expected_speedup\": %.1f,\n" grid.expected_speedup;
  p "    \"fingerprint_s\": %.4f,\n" grid.fingerprint_s;
  p "    \"identity_gate\": \"%s\",\n"
    (if grid.gate_ran then "run" else "skipped");
  p "    \"identical_output\": %b\n" grid.identical;
  p "  }\n";
  p "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)

let () =
  Logs.set_level (Some Logs.Error);
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            parse rest
        | _ ->
            prerr_endline "perf: --jobs expects a positive integer";
            exit 2)
    | ("--out" | "-o") :: path :: rest ->
        out_path := path;
        parse rest
    | a :: _ ->
        Printf.eprintf "perf: unknown argument %S\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !jobs = 0 then jobs := max 2 (Parallel.Pool.default_jobs ());
  (* Clamp to the machine: worker domains past the core count cannot
     speed the grid up, only thrash it, and on a 1-core box they turn
     the speedup report into a fake regression. The requested value is
     still recorded so a clamped run is visible in the JSON. *)
  jobs_requested := !jobs;
  let cores = Domain.recommended_domain_count () in
  jobs := max 1 (min !jobs cores);
  Printf.printf "dbsim perf suite (%s, grid jobs %d%s)\n"
    (if !quick then "quick" else "full")
    !jobs
    (if !jobs <> !jobs_requested then
       Printf.sprintf ", clamped from %d to %d cores" !jobs_requested cores
     else "");
  let benches =
    optimizer_benches ()
    @ steady_state_benches ()
    @ [
        engine_bench ();
        midcache_bench ();
        singleflight_bench ();
        retry_budget_bench ();
        experiment_bench ();
        cached_cell_bench ();
        pool_overhead_bench ();
      ]
  in
  List.iter
    (fun b ->
      Printf.printf "  %-26s %8.1f ms/op  %10.0f bytes/op  (%d iters)\n" b.name
        (b.per_op_ns /. 1e6) b.alloc_bytes_per_op b.iters)
    benches;
  let grid = grid_bench () in
  Printf.printf
    "  grid: %d cells  sequential %.2fs  parallel(%d) %.2fs  speedup %.2fx \
     (expected <=%.0fx on %d cores)  gate %s (%.3fs)  output %s\n"
    grid.cells grid.seq_s grid.grid_jobs grid.par_s grid.speedup
    grid.expected_speedup grid.cores
    (if grid.gate_ran then "run" else "skipped")
    grid.fingerprint_s
    (if grid.identical then "identical" else "DIVERGED");
  if grid.grid_jobs <> grid.grid_jobs_requested then
    Printf.printf
      "  note: requested %d jobs clamped to %d (%d cores) — extra workers \
       cannot speed the grid up, so they are not started\n"
      grid.grid_jobs_requested grid.grid_jobs grid.cores;
  write_json ~benches ~grid !out_path;
  Printf.printf "wrote %s\n" !out_path;
  if grid.gate_ran && not grid.identical then begin
    prerr_endline
      "perf: parallel grid output differs from sequential run (determinism \
       violation)";
    exit 1
  end
