(* Reproduction harness: one entry per figure/table of the paper plus the
   in-text claims and the ablations listed in DESIGN.md.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- figure3 overhead ...
     dune exec bench/main.exe -- --jobs 4 client-sweep   # fan cells over 4 domains

   Paper: Baryshnikov et al., "Managing Query Compilation Memory
   Consumption to Improve DBMS Throughput", CIDR 2007. *)

let mib = Dbmem.Units.mib

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Standard experiment windows. Figures use a long measured window (18
   slices of 200 s); secondary experiments use a shorter one. *)
let warmup = 600.
let fig_measure = 3600.
let fig_slice = 200.
let quick_measure = 1800.

let throttled_config seed =
  { (Server.Config.default ()) with Server.Config.seed }

let unthrottled_config seed =
  { (Server.Config.unthrottled ()) with Server.Config.seed }

(* Worker-domain count for experiment grids: --jobs N, or DBSIM_JOBS, or
   sequential. Every run is an independent cell with its own engine and
   RNG, and run_grid returns results in submission order, so the printed
   output is identical at any job count. *)
let jobs = ref 1

let run_grid cells = Server.Experiment.run_grid ~jobs:!jobs cells

let pair_cells ~clients ~measure ~seed =
  [
    Server.Experiment.cell ~config:(throttled_config seed) ~clients ~warmup
      ~measure ~slice:fig_slice ();
    Server.Experiment.cell ~config:(unthrottled_config seed) ~clients ~warmup
      ~measure ~slice:fig_slice ();
  ]

let run_pair ~clients ~measure ~seed =
  match run_grid (pair_cells ~clients ~measure ~seed) with
  | [ on; off ] -> (on, off)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Figure 1: the monitor ladder *)

let figure1 () =
  section "Figure 1 - memory monitors (gateway ladder)";
  let cfg = Qcore.Throttle_config.default () in
  Qcore.Throttle_config.validate cfg ~cpus:8;
  Format.printf "%a@." Qcore.Throttle_config.pp cfg;
  print_endline
    "  (thresholds increase and concurrency decreases down the ladder;\n\
    \   compilations below the first threshold run unthrottled, and the\n\
    \   medium/big thresholds are recomputed from the broker target as\n\
    \   target * F / S while the system is under pressure)"

(* ------------------------------------------------------------------ *)
(* Figure 2: compilation throttling trace *)

(* Set by the --trace flag: figure2 additionally records a full trace,
   renders the figure from the trace stream, and writes Chrome + JSONL
   exports next to the working directory. *)
let trace_requested = ref false

let figure2 () =
  section "Figure 2 - compilation throttling example (memory vs time)";
  let trace =
    if !trace_requested then Obs.Trace.create () else Obs.Trace.null
  in
  let r = Server.Figure2.run ~trace () in
  if r.Server.Figure2.failures > 0 then
    Printf.printf "  !! %d process failures\n" r.Server.Figure2.failures;
  let series = r.Server.Figure2.series in
  let n = Sim.Series.length series.(0) in
  (* Trim trailing all-zero samples (everything finished). *)
  let value arr k =
    if Sim.Series.length arr > k then snd (Sim.Series.nth arr k) else 0.
  in
  let last_active = ref 0 in
  for k = 0 to n - 1 do
    if value series.(0) k +. value series.(1) k +. value series.(2) k > 0. then
      last_active := k
  done;
  let n = min n (!last_active + 2) in
  let rows = ref [] in
  for k = n - 1 downto 0 do
    let t, v1 = Sim.Series.nth series.(0) k in
    let v2 = value series.(1) k in
    let v3 = value series.(2) k in
    if k mod 2 = 0 then
      rows :=
        [ Printf.sprintf "%.0f" t;
          Printf.sprintf "%.1f" (v1 /. 1048576.);
          Printf.sprintf "%.1f" (v2 /. 1048576.);
          Printf.sprintf "%.1f" (v3 /. 1048576.) ]
        :: !rows
  done;
  Server.Report.table ~header:[ "t (s)"; "Q1 (MiB)"; "Q2 (MiB)"; "Q3 (MiB)" ] !rows;
  let spark s =
    let _, values = Sim.Series.to_arrays s in
    Server.Report.sparkline (Array.sub values 0 (min n (Array.length values)))
  in
  Printf.printf "  Q1 %s\n  Q2 %s\n  Q3 %s\n" (spark series.(0)) (spark series.(1)) (spark series.(2));
  print_endline
    "  (flat segments are compilations blocked at a monitor; memory drops\n\
    \   to zero when a compilation completes and frees its memory)";
  if !trace_requested then begin
    let records = Obs.Trace.records trace in
    (* Render the figure directly from the trace stream: the per-query
       usage staircase and the exact gateway-wait intervals that explain
       its flat segments. *)
    Printf.printf "\n  from the trace (%d events):\n" (Array.length records);
    List.iter
      (fun (qid, pts) ->
        let peak = List.fold_left (fun a (_, u) -> max a u) 0 pts in
        Printf.printf "    %-10s %d usage points, peak %s\n" qid
          (List.length pts)
          (Dbmem.Units.bytes_to_string peak))
      (Obs.Analyze.usage_points records);
    List.iter
      (fun (w : Obs.Analyze.wait) ->
        if w.Obs.Analyze.finish -. w.Obs.Analyze.start > 0.5 then
          Printf.printf "    %-10s blocked at %-8s %7.1fs .. %7.1fs (%s)\n"
            w.Obs.Analyze.qid w.Obs.Analyze.gate w.Obs.Analyze.start
            w.Obs.Analyze.finish
            (match w.Obs.Analyze.outcome with
            | `Acquired -> "acquired"
            | `Timeout -> "timeout"
            | `Open -> "open"))
      (Obs.Analyze.gateway_waits records);
    Obs.Export.chrome_to_file "figure2-trace.json" records;
    Obs.Export.jsonl_to_file "figure2-trace.jsonl" records;
    Printf.printf
      "  wrote figure2-trace.json (chrome://tracing, Perfetto) and \
       figure2-trace.jsonl\n"
  end

(* ------------------------------------------------------------------ *)
(* Figures 3-5: throughput at 30/35/40 clients *)

let throughput_figure ~figure ~clients =
  section
    (Printf.sprintf "Figure %d - throughput, %d clients (completions per %.0fs slice)"
       figure clients fig_slice);
  let on, off = run_pair ~clients ~measure:fig_measure ~seed:42 in
  Server.Report.figure_series
    ~title:(Printf.sprintf "%d clients, warm-up %.0fs excluded" clients warmup)
    ~throttled:on.Server.Experiment.slices
    ~unthrottled:off.Server.Experiment.slices;
  Server.Report.table ~header:Server.Report.result_header
    [ Server.Report.result_row on; Server.Report.result_row off ];
  (on, off)

let figure3 () = ignore (throughput_figure ~figure:3 ~clients:30)
let figure4 () = ignore (throughput_figure ~figure:4 ~clients:35)
let figure5 () = ignore (throughput_figure ~figure:5 ~clients:40)

(* ------------------------------------------------------------------ *)
(* T1: compile memory, SALES vs TPC-H *)

let compile_memory () =
  section "T1 - compile memory: SALES vs TPC-H (paper: 1-2 orders of magnitude)";
  let measure cat templates =
    let rng = Sim.Rng.create 5 in
    List.map
      (fun t ->
        let q = Workload.Template.instance rng t ~id:1 in
        match
          Optimizer.Cascades.optimize ~env:Optimizer.Env.null
            Optimizer.Cost.default cat q
        with
        | Ok r ->
            ( t.Workload.Template.tname,
              Optimizer.Query.n_rels q - 1,
              r.Optimizer.Cascades.stats.Optimizer.Cascades.allocated_bytes,
              r.Optimizer.Cascades.stats.Optimizer.Cascades.tasks )
        | Error _ -> (t.Workload.Template.tname, 0, 0, 0))
      templates
  in
  let sales = measure (Workload.Sales.catalog ()) (Workload.Sales.templates ()) in
  let tpch = measure (Workload.Tpch.catalog ()) (Workload.Tpch.templates ()) in
  let rows group entries =
    List.map
      (fun (name, joins, bytes, tasks) ->
        [ group; name; string_of_int joins; Dbmem.Units.bytes_to_string bytes;
          string_of_int tasks ])
      entries
  in
  Server.Report.table
    ~header:[ "workload"; "template"; "joins"; "compile memory"; "search tasks" ]
    (rows "SALES" sales @ rows "TPC-H" tpch);
  let mean entries =
    List.fold_left (fun acc (_, _, b, _) -> acc +. float_of_int b) 0. entries
    /. float_of_int (List.length entries)
  in
  let ratio = mean sales /. mean tpch in
  Printf.printf
    "  mean compile memory: SALES %s, TPC-H %s -> ratio %.0fx (paper: 10-100x)\n"
    (Dbmem.Units.bytes_to_string (int_of_float (mean sales)))
    (Dbmem.Units.bytes_to_string (int_of_float (mean tpch)))
    ratio

(* ------------------------------------------------------------------ *)
(* T2: client sweep *)

let client_sweep () =
  section "T2 - client sweep (paper: max throughput at 30 clients)";
  let cells =
    List.concat_map
      (fun clients -> pair_cells ~clients ~measure:quick_measure ~seed:42)
      [ 10; 20; 25; 30; 35; 40; 45 ]
  in
  let rows = List.map Server.Report.result_row (run_grid cells) in
  Server.Report.table ~header:Server.Report.result_header rows

(* ------------------------------------------------------------------ *)
(* T3: reliability *)

let reliability () =
  section "T3 - reliability (resource errors and first-attempt success)";
  let cells =
    List.concat_map
      (fun clients -> pair_cells ~clients ~measure:quick_measure ~seed:42)
      [ 30; 35; 40 ]
  in
  let row (r : Server.Experiment.result) =
    let c = r.Server.Experiment.client_stats in
    let first_attempt =
      if c.Workload.Client.submitted = 0 then 0.
      else
        float_of_int c.Workload.Client.succeeded
        /. float_of_int c.Workload.Client.attempts
    in
    [
      string_of_int r.Server.Experiment.clients;
      (if r.Server.Experiment.throttled then "on" else "off");
      string_of_int r.Server.Experiment.total_errors;
      String.concat " "
        (List.filter_map
           (fun (k, n) -> if n > 0 then Some (Printf.sprintf "%s=%d" k n) else None)
           r.Server.Experiment.errors);
      Printf.sprintf "%.0f%%" (100. *. first_attempt);
      string_of_int c.Workload.Client.abandoned;
    ]
  in
  let rows = List.map row (run_grid cells) in
  Server.Report.table
    ~header:[ "clients"; "throttle"; "errors"; "by kind"; "attempt success"; "abandoned" ]
    rows

(* ------------------------------------------------------------------ *)
(* T4: mechanism overhead (bechamel) *)

let overhead () =
  section "T4 - mechanism overhead (paper: \"extremely small\")";
  (* Broker tick over four components. *)
  let broker_tick =
    let eng = Sim.Engine.create () in
    let m = Dbmem.Manager.create ~total:(Dbmem.Units.gib 4) () in
    let broker = Qcore.Broker.create eng m Qcore.Broker.default_config in
    List.iter
      (fun name ->
        let clerk = Dbmem.Manager.create_clerk m name in
        Dbmem.Manager.alloc_exn clerk (mib 100);
        ignore (Qcore.Broker.register broker ~name ~clerk ()))
      [ "bufpool"; "plancache"; "compile"; "execution" ];
    fun () -> Qcore.Broker.tick broker
  in
  (* Clerk allocation round trip. *)
  let clerk_alloc =
    let m = Dbmem.Manager.create ~total:(Dbmem.Units.gib 4) () in
    let clerk = Dbmem.Manager.create_clerk m "bench" in
    fun () ->
      Dbmem.Manager.alloc_exn clerk 4096;
      Dbmem.Manager.free clerk 4096
  in
  (* Gateway acquire/release (uncontended fast path). *)
  let monitor_pair =
    let eng = Sim.Engine.create () in
    let monitor = Qcore.Monitor.create eng ~name:"bench" ~slots:8 ~timeout:100. () in
    fun () ->
      (match Qcore.Monitor.acquire monitor () with
      | Ok () -> ()
      | Error `Timeout -> assert false);
      Qcore.Monitor.release monitor
  in
  (* Governed allocation below the first threshold (the common case). *)
  let governed_alloc =
    let eng = Sim.Engine.create () in
    let m = Dbmem.Manager.create ~total:(Dbmem.Units.gib 4) () in
    let clerk = Dbmem.Manager.create_clerk m "compile" in
    let gov =
      Qcore.Compile_gov.create eng m ~clerk ~cpus:8
        ~config:(Qcore.Throttle_config.default ()) ~enabled:true ()
    in
    let session = Qcore.Compile_gov.begin_compile gov in
    fun () ->
      (match Qcore.Compile_gov.alloc session 512 with
      | Ok () -> ()
      | Error _ -> assert false);
      Qcore.Compile_gov.free session 512
  in
  (* A full governed compilation crossing the whole ladder. *)
  let full_ladder =
    let eng = Sim.Engine.create () in
    let m = Dbmem.Manager.create ~total:(Dbmem.Units.gib 16) () in
    let clerk = Dbmem.Manager.create_clerk m "compile" in
    let gov =
      Qcore.Compile_gov.create eng m ~clerk ~cpus:8
        ~config:(Qcore.Throttle_config.default ()) ~enabled:true ()
    in
    fun () ->
      let s = Qcore.Compile_gov.begin_compile gov in
      (match Qcore.Compile_gov.alloc s (mib 600) with
      | Ok () -> ()
      | Error _ -> assert false);
      Qcore.Compile_gov.end_compile s
  in
  let trend_step =
    let t = Qcore.Trend.create ~window:10 () in
    let clock = ref 0. in
    fun () ->
      clock := !clock +. 1.;
      Qcore.Trend.observe t ~time:!clock 42.;
      ignore (Qcore.Trend.predict t ~horizon:5.)
  in
  let tests =
    Bechamel.Test.make_grouped ~name:"qcore"
      [
        Bechamel.Test.make ~name:"broker tick (4 components)"
          (Bechamel.Staged.stage broker_tick);
        Bechamel.Test.make ~name:"clerk alloc+free" (Bechamel.Staged.stage clerk_alloc);
        Bechamel.Test.make ~name:"gateway acquire+release"
          (Bechamel.Staged.stage monitor_pair);
        Bechamel.Test.make ~name:"governed alloc (below ladder)"
          (Bechamel.Staged.stage governed_alloc);
        Bechamel.Test.make ~name:"full ladder compile begin/end"
          (Bechamel.Staged.stage full_ladder);
        Bechamel.Test.make ~name:"trend observe+predict"
          (Bechamel.Staged.stage trend_step);
      ]
  in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.5) ()
  in
  let raw =
    Bechamel.Benchmark.all cfg
      [ Bechamel.Toolkit.Instance.monotonic_clock ]
      tests
  in
  let ols =
    Bechamel.Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let ns =
        match Bechamel.Analyze.OLS.estimates result with
        | Some [ e ] -> e
        | _ -> nan
      in
      rows := [ name; Printf.sprintf "%.0f ns" ns ] :: !rows)
    results;
  Server.Report.table ~header:[ "operation"; "time per call" ]
    (List.sort compare !rows);
  print_endline
    "  (all mechanism operations are sub-microsecond to a few microseconds;\n\
    \   a compilation allocating tens of MB performs a few thousand of them)"

(* ------------------------------------------------------------------ *)
(* Ablations *)

(* Ablation variants are independent runs too: fan each section's
   variants through the same grid. *)
let ablation_grid ~clients configs =
  run_grid
    (List.map
       (fun config ->
         Server.Experiment.cell ~config ~clients ~warmup
           ~measure:quick_measure ~slice:fig_slice ())
       configs)

let ablation_dynamic () =
  section "A1 - dynamic vs static gateway thresholds (35 clients)";
  let base = throttled_config 42 in
  let static_cfg =
    { base with Server.Config.throttle = Qcore.Throttle_config.static_only () }
  in
  let dyn, sta, off =
    match ablation_grid ~clients:35 [ base; static_cfg; unthrottled_config 42 ] with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  Server.Report.table
    ~header:("variant" :: Server.Report.result_header)
    [
      "dynamic" :: Server.Report.result_row dyn;
      "static" :: Server.Report.result_row sta;
      "none" :: Server.Report.result_row off;
    ]

let ablation_bestplan () =
  section "A2 - best-plan-so-far vs abort on memory exhaustion (40 clients)";
  let base = throttled_config 42 in
  let no_rescue =
    {
      base with
      Server.Config.optimizer_params =
        {
          base.Server.Config.optimizer_params with
          Optimizer.Cascades.honor_stop_early = false;
        };
    }
  in
  let with_rescue, without =
    match ablation_grid ~clients:40 [ base; no_rescue ] with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  Server.Report.table
    ~header:("variant" :: Server.Report.result_header)
    [
      "best-plan-so-far" :: Server.Report.result_row with_rescue;
      "abort-on-oom" :: Server.Report.result_row without;
    ]

let ablation_ladder () =
  section "A3 - gateway ladder depth (30 clients)";
  let base = throttled_config 42 in
  let single =
    { base with Server.Config.throttle = Qcore.Throttle_config.single_gate () }
  in
  let three, one, zero =
    match ablation_grid ~clients:30 [ base; single; unthrottled_config 42 ] with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  Server.Report.table
    ~header:("ladder" :: Server.Report.result_header)
    [
      "3 monitors" :: Server.Report.result_row three;
      "1 monitor" :: Server.Report.result_row one;
      "0 monitors" :: Server.Report.result_row zero;
    ]

let ablation_policy () =
  section "A4 - buffer pool replacement policy (30 clients, throttled)";
  let policies =
    [ ("lru-2", Bufpool.Policy.Lru2); ("lru", Bufpool.Policy.Lru);
      ("clock", Bufpool.Policy.Clock) ]
  in
  let results =
    ablation_grid ~clients:30
      (List.map
         (fun (_, policy) ->
           { (throttled_config 42) with Server.Config.pool_policy = policy })
         policies)
  in
  let rows =
    List.map2
      (fun (name, _) r -> name :: Server.Report.result_row r)
      policies results
  in
  Server.Report.table ~header:("policy" :: Server.Report.result_header) rows

(* The paper's premise is a system run "at and beyond the capabilities of
   the hardware": sweep the memory size to locate where throttling matters.
   With ample memory the broker never sees pressure and the two modes
   converge ("the system behaves as if the Memory Broker was not there");
   as memory shrinks the unthrottled server degrades first. *)
let memory_sweep () =
  section "Memory-size sweep, 30 clients (where does throttling matter?)";
  let sizes = [ 2; 3; 4; 6; 8 ] in
  let cells =
    List.concat_map
      (fun gib ->
        List.map
          (fun base ->
            let config =
              { base with Server.Config.memory_bytes = Dbmem.Units.gib gib }
            in
            Server.Experiment.cell ~config ~clients:30 ~warmup
              ~measure:quick_measure ~slice:fig_slice ())
          [ throttled_config 42; unthrottled_config 42 ])
      sizes
  in
  let results = run_grid cells in
  let rec pairs = function
    | on :: off :: rest -> (on, off) :: pairs rest
    | _ -> []
  in
  let rows =
    List.concat_map
      (fun (gib, (on, off)) ->
        let uplift = 100. *. Server.Experiment.uplift on off in
        [
          (Printf.sprintf "%d GiB" gib :: Server.Report.result_row on)
          @ [ Printf.sprintf "%+.0f%%" uplift ];
          (Printf.sprintf "%d GiB" gib :: Server.Report.result_row off) @ [ "" ];
        ])
      (List.combine sizes (pairs results))
  in
  Server.Report.table
    ~header:(("memory" :: Server.Report.result_header) @ [ "uplift" ])
    rows

(* Robustness across schema designs (§4.1 "a wide variety of schema
   designs"): the same comparison on the snowflaked warehouse, whose mixed
   star/chain join graphs give the optimizer a different memo shape. *)
let snowflake () =
  section "Snowflake schema - throttled vs unthrottled, 30 clients";
  (* One catalog/template list shared by both cells: read-only once built. *)
  let catalog = Workload.Snowflake.catalog () in
  let templates = Workload.Snowflake.templates () in
  let cells =
    List.map
      (fun config ->
        Server.Experiment.cell ~config ~catalog ~templates ~clients:30 ~warmup
          ~measure:quick_measure ~slice:fig_slice ())
      [ throttled_config 42; unthrottled_config 42 ]
  in
  let on, off =
    match run_grid cells with [ a; b ] -> (a, b) | _ -> assert false
  in
  Server.Report.table
    ~header:("schema" :: Server.Report.result_header)
    [
      "snowflake" :: Server.Report.result_row on;
      "snowflake" :: Server.Report.result_row off;
    ];
  Printf.printf "  uplift %+.0f%% (star schema: see figure3)
"
    (100. *. Server.Experiment.uplift on off)

(* Supplementary: server-wide memory timelines, the direct visualisation of
   "un-throttled compilations ... consume most available memory on the
   machine and starve query execution memory and the buffer pool" (§5.2.1). *)
let memory_trace () =
  section "Memory timelines - per-component usage, 30 clients";
  let results =
    run_grid
      (List.map
         (fun config ->
           Server.Experiment.cell ~config ~clients:30 ~warmup:0. ~measure:1800.
             ~slice:fig_slice ())
         [ throttled_config 42; unthrottled_config 42 ])
  in
  let show label (r : Server.Experiment.result) =
    Printf.printf "
%s:
" label;
    List.iter
      (fun (name, series) ->
        let _, values = Sim.Series.to_arrays series in
        (* Thin the series to fit a terminal line. *)
        let step = max 1 (Array.length values / 72) in
        let thinned =
          Array.init (Array.length values / step) (fun i -> values.(i * step))
        in
        let stats = Sim.Stats.Online.create () in
        Array.iter (Sim.Stats.Online.add stats) values;
        Printf.printf "  %-10s %s  mean %-10s max %s
" name
          (Server.Report.sparkline thinned)
          (Dbmem.Units.bytes_to_string (int_of_float (Sim.Stats.Online.mean stats)))
          (Dbmem.Units.bytes_to_string (int_of_float (Sim.Stats.Online.max stats))))
      r.Server.Experiment.memory_series
  in
  List.iter2 show [ "throttled"; "unthrottled" ] results;
  print_endline
    "
  (unthrottled: the compile clerk swings to multiple GiB and the
    \   buffer pool is repeatedly emptied; throttled: compile memory is
    \   bounded and the pool keeps the dimension working set resident)"

(* ------------------------------------------------------------------ *)
(* Multi-tenant noisy neighbour: an ad-hoc SALES tenant, a TPC-H victim
   and a light templated tenant share one machine under the memory
   arbiter. The claim: with min/max-share isolation the victim keeps its
   solo throughput; demand-chasing arbitration with no guarantees lets
   the noisy tenant strip the victim's pool. *)

let noisy_neighbor () =
  section "Noisy neighbour - tenant isolation under the memory arbiter";
  let total_bytes = Dbmem.Units.gib 4 in
  let t_warmup = 400. and t_measure = 1200. and t_slice = 60. in
  let seed = 42 in
  let run_kind kind =
    match kind with
    | `Solo ->
        Server.Tenants.solo ~victim:"victim" ~total_bytes ~seed
          ~warmup:t_warmup ~measure:t_measure ~slice:t_slice ()
    | `Isolated ->
        Server.Tenants.run ~mode:Server.Tenants.Isolated ~total_bytes ~seed
          ~warmup:t_warmup ~measure:t_measure ~slice:t_slice ()
    | `Free ->
        Server.Tenants.run ~mode:Server.Tenants.Free_for_all ~total_bytes
          ~seed ~warmup:t_warmup ~measure:t_measure ~slice:t_slice ()
  in
  let kinds = [ `Solo; `Isolated; `Free ] in
  let outcomes =
    if !jobs <= 1 then List.map run_kind kinds
    else Parallel.Pool.run ~jobs:!jobs run_kind kinds
  in
  match outcomes with
  | [ o_solo; o_iso; o_free ] ->
      Server.Report.tenants_section o_solo;
      Server.Report.tenants_section o_iso;
      Server.Report.tenants_section o_free;
      let v = Server.Tenants.find_tenant o_solo "victim" in
      let vi = Server.Tenants.find_tenant o_iso "victim" in
      let vf = Server.Tenants.find_tenant o_free "victim" in
      Printf.printf
        "\n  victim retention vs solo: isolated %.0f%%, free-for-all %.0f%%\n"
        (100. *. Server.Tenants.retention ~shared:vi ~solo:v)
        (100. *. Server.Tenants.retention ~shared:vf ~solo:v)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Sharded failover: the scale-out version of the paper's thesis. A
   restarted shard rejoins with an empty plan cache, so every
   parameterized template recompiles at once; the run keeps most of its
   no-fault throughput only when the per-shard compile gateways
   serialise that storm. The gateways-off pair quantifies the cost. *)

let shard_failover () =
  section "Sharded failover - crash, cold-cache storm, gateways on vs off";
  let base = Server.Shards.default_config in
  let crash schedule gateways =
    { base with Server.Shards.c_schedule = schedule; c_gateways = gateways }
  in
  let cells =
    [
      crash Server.Shards.No_fault true;
      crash Server.Shards.Crash_failover true;
      crash Server.Shards.No_fault false;
      crash Server.Shards.Crash_failover false;
    ]
  in
  let outcomes =
    if !jobs <= 1 then List.map Server.Shards.run cells
    else Parallel.Pool.run ~jobs:!jobs Server.Shards.run cells
  in
  match outcomes with
  | [ on_base; on_crash; off_base; off_crash ] ->
      Server.Report.shards_section on_base;
      Server.Report.shards_section ~baseline:on_base on_crash;
      Server.Report.shards_section off_base;
      Server.Report.shards_section ~baseline:off_base off_crash;
      Printf.printf
        "\n  crash-failover retention vs same-mode no-fault baseline:\n\
        \    gateways on  %.0f%%\n\
        \    gateways off %.0f%%\n"
        (100. *. Server.Shards.retention ~fault:on_crash ~no_fault:on_base)
        (100. *. Server.Shards.retention ~fault:off_crash ~no_fault:off_base)
  | _ -> assert false

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("figure1", figure1);
    ("figure2", figure2);
    ("figure3", figure3);
    ("figure4", figure4);
    ("figure5", figure5);
    ("compile-memory", compile_memory);
    ("client-sweep", client_sweep);
    ("reliability", reliability);
    ("memory-trace", memory_trace);
    ("snowflake", snowflake);
    ("memory-sweep", memory_sweep);
    ("overhead", overhead);
    ("ablation-dynamic", ablation_dynamic);
    ("ablation-bestplan", ablation_bestplan);
    ("ablation-ladder", ablation_ladder);
    ("ablation-policy", ablation_policy);
    ("noisy-neighbor", noisy_neighbor);
    ("shard-failover", shard_failover);
  ]

let () =
  Logs.set_level (Some Logs.Error);
  (* DBSIM_JOBS sets the default; an explicit --jobs N wins. *)
  (match Sys.getenv_opt "DBSIM_JOBS" with
  | Some _ -> jobs := Parallel.Pool.default_jobs ()
  | None -> ());
  let rec parse acc = function
    | [] -> List.rev acc
    | "--trace" :: rest ->
        trace_requested := true;
        parse acc rest
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            parse acc rest
        | _ ->
            prerr_endline "main: --jobs expects a positive integer";
            exit 2)
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match args with _ :: _ -> args | [] -> List.map fst experiments
  in
  print_endline "CIDR'07 query-compilation throttling: reproduction benchmarks";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.printf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments)))
    requested
