(* Perf ratchet: diff a fresh perf run against the committed baseline and
   fail CI when a tracked benchmark regresses past the tolerance.

     dune exec bench/ratchet.exe -- BENCH_perf.json fresh.json
     dune exec bench/ratchet.exe -- --tolerance 0.20 base.json fresh.json

   Allocation per op is compared unconditionally — it is a property of
   the code, not the machine. Wall time per op is only compared when the
   two files were produced on machines with the same core count: CI
   runners are heterogeneous, and a wall "regression" measured on a
   slower box is noise, not a ratchet violation. Stdlib only: the JSON
   is parsed with a small recursive-descent reader, no dependencies. *)

(* --- Minimal JSON ------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter (fun c -> expect c) word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'u' ->
              (* Our writer only emits \u00xx control escapes. *)
              advance ();
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (elements [])
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let num_field j key =
  match member key j with Some (Num f) -> Some f | _ -> None

let bool_field j key =
  match member key j with Some (Bool b) -> Some b | _ -> None

let str_field j key =
  match member key j with Some (Str s) -> Some s | _ -> None

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* --- Comparison --------------------------------------------------- *)

type point = { wall_ns : float; alloc : float }

(* Benchmarks whose per-op allocation was deliberately driven down (flat
   DP tables, memo arenas, the pooled event loop) are held to a tight 5%
   alloc ratchet instead of the global tolerance: their baselines are
   small and stable, so even a modest absolute creep is a real erosion
   of the win, not measurement noise. Wall time keeps the global
   tolerance — it is machine-dependent in a way allocation is not. *)
let tight_alloc_tolerance = 0.05

let tight_alloc_benches =
  [
    "dp_optimize_14rel";
    "cascades_optimize_sales";
    "optimizer_steady_state";
    "sim_engine_event_loop";
  ]

let benchmarks_of j =
  match member "benchmarks" j with
  | Some (List bs) ->
      List.filter_map
        (fun b ->
          match (str_field b "name", num_field b "per_op_ns",
                 num_field b "alloc_bytes_per_op")
          with
          | Some name, Some wall_ns, Some alloc ->
              Some (name, { wall_ns; alloc })
          | _ -> None)
        bs
  | _ -> []

let cores_of j = match num_field j "cores" with Some c -> int_of_float c | None -> 0

let () =
  let tolerance = ref 0.15 in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t > 0. ->
            tolerance := t;
            parse rest
        | _ ->
            prerr_endline "ratchet: --tolerance expects a positive float";
            exit 2)
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, fresh_path =
    match List.rev !paths with
    | [ b; f ] -> (b, f)
    | _ ->
        prerr_endline
          "usage: ratchet [--tolerance 0.15] <baseline.json> <fresh.json>";
        exit 2
  in
  let load path =
    try parse_json (read_file path)
    with
    | Sys_error e ->
        Printf.eprintf "ratchet: %s\n" e;
        exit 2
    | Parse e ->
        Printf.eprintf "ratchet: %s: %s\n" path e;
        exit 2
  in
  let baseline = load baseline_path and fresh = load fresh_path in
  (* Quick and full suites size their per-op workloads differently, so a
     cross-mode diff is meaningless for wall AND alloc — refuse it rather
     than report nonsense deltas. *)
  let mode j = Option.value ~default:false (bool_field j "quick") in
  if mode baseline <> mode fresh then begin
    let name q = if q then "quick" else "full" in
    Printf.eprintf
      "ratchet: baseline %s is a %s-suite run but %s is %s — per-op \
       workloads differ between modes; regenerate the baseline in the \
       same mode\n"
      baseline_path
      (name (mode baseline))
      fresh_path
      (name (mode fresh));
    exit 2
  end;
  let base_cores = cores_of baseline and fresh_cores = cores_of fresh in
  let compare_wall = base_cores = fresh_cores && base_cores > 0 in
  if not compare_wall then
    Printf.printf
      "ratchet: baseline has %d cores, fresh has %d — comparing allocations \
       only\n"
      base_cores fresh_cores;
  let base_benches = benchmarks_of baseline in
  let failures = ref 0 in
  let check name kind ~tol base cur =
    let ratio = if base > 0. then cur /. base else 1. in
    let bad = ratio > 1. +. tol in
    if bad then incr failures;
    Printf.printf "  %-28s %-8s %12.1f -> %12.1f  %+6.1f%%%s\n" name kind base
      cur
      (100. *. (ratio -. 1.))
      (if bad then Printf.sprintf "  REGRESSION (>%.0f%%)" (100. *. tol)
       else "")
  in
  Printf.printf
    "perf ratchet: tolerance %.0f%% (alloc %.0f%% on tight-list benchmarks), \
     baseline %s\n"
    (100. *. !tolerance)
    (100. *. tight_alloc_tolerance)
    baseline_path;
  List.iter
    (fun (name, fresh_pt) ->
      match List.assoc_opt name base_benches with
      | None -> Printf.printf "  %-28s new benchmark, no baseline\n" name
      | Some base_pt ->
          if compare_wall then
            check name "wall/op" ~tol:!tolerance base_pt.wall_ns
              fresh_pt.wall_ns;
          let alloc_tol =
            if List.mem name tight_alloc_benches then
              Stdlib.min !tolerance tight_alloc_tolerance
            else !tolerance
          in
          check name "alloc/op" ~tol:alloc_tol base_pt.alloc fresh_pt.alloc)
    (benchmarks_of fresh);
  (* Benchmarks deleted from the suite are reported, not failed: the
     ratchet guards regressions, renames are a review concern. *)
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name (benchmarks_of fresh)) then
        Printf.printf "  %-26s dropped from fresh run\n" name)
    base_benches;
  if !failures > 0 then begin
    Printf.printf "ratchet: %d regression(s) past %.0f%%\n" !failures
      (100. *. !tolerance);
    exit 1
  end
  else print_endline "ratchet: no regressions"
