(* The gateway ladder in action, event by event: five compilations with
   different appetites race through a tight ladder; every monitor
   acquisition, block and release is logged with its timestamp.

     dune exec examples/throttle_trace.exe *)

let mib = Dbmem.Units.mib

let () =
  let eng = Sim.Engine.create ~seed:1 () in
  let manager = Dbmem.Manager.create ~total:(Dbmem.Units.gib 2) () in
  let clerk = Dbmem.Manager.create_clerk manager "compile" in
  let ladder =
    {
      Qcore.Throttle_config.dynamic = false;
      levels =
        [
          { Qcore.Throttle_config.lname = "small"; base_threshold = mib 8;
            slots = Qcore.Throttle_config.Total 3; timeout = 40.;
            fraction = 1.0; min_threshold = mib 8; max_threshold = mib 8 };
          { Qcore.Throttle_config.lname = "medium"; base_threshold = mib 64;
            slots = Qcore.Throttle_config.Total 2; timeout = 80.;
            fraction = 0.35; min_threshold = mib 64; max_threshold = mib 64 };
          { Qcore.Throttle_config.lname = "big"; base_threshold = mib 256;
            slots = Qcore.Throttle_config.Total 1; timeout = 160.;
            fraction = 0.45; min_threshold = mib 256; max_threshold = mib 256 };
        ];
    }
  in
  let gov =
    Qcore.Compile_gov.create eng manager ~clerk ~cpus:1 ~config:ladder ~enabled:true ()
  in
  let log fmt =
    Printf.ksprintf
      (fun s -> Printf.printf "[t=%6.1fs] %s\n" (Sim.Engine.now eng) s)
      fmt
  in
  (* Each "compilation" allocates in 8 MiB steps with a fixed pace, up to
     its peak, holds briefly, then releases everything. *)
  let compilation name ~delay ~peak_mib ~pace =
    Sim.Engine.spawn eng ~name ~delay (fun () ->
        log "%s starts (wants %d MiB)" name peak_mib;
        let session = Qcore.Compile_gov.begin_compile gov in
        let aborted = ref false in
        let steps = peak_mib / 8 in
        (try
           for step = 1 to steps do
             let before = Qcore.Compile_gov.level session in
             let t0 = Sim.Engine.now eng in
             (match Qcore.Compile_gov.alloc session (mib 8) with
             | Ok () -> ()
             | Error e ->
                 log "%s ABORTED: %s" name
                   (Health.Error.to_string e);
                 aborted := true;
                 raise Exit);
             let after = Qcore.Compile_gov.level session in
             let waited = Sim.Engine.now eng -. t0 in
             if after > before then
               log "%s acquired the %s monitor%s (at %d MiB)" name
                 (match after with 1 -> "small" | 2 -> "medium" | _ -> "big")
                 (if waited > 0.01 then Printf.sprintf " after blocking %.1fs" waited
                  else "")
                 (step * 8);
             Sim.Engine.sleep pace
           done;
           Sim.Engine.sleep 4.0
         with Exit -> ());
        Qcore.Compile_gov.end_compile session;
        if not !aborted then
          log "%s finished; released monitors and %d MiB" name peak_mib)
  in
  compilation "Q1" ~delay:0.0 ~peak_mib:320 ~pace:0.5;
  compilation "Q2" ~delay:1.0 ~peak_mib:320 ~pace:0.7;
  compilation "Q3" ~delay:2.0 ~peak_mib:128 ~pace:0.6;
  compilation "Q4" ~delay:3.0 ~peak_mib:48 ~pace:0.5;
  compilation "Q5" ~delay:4.0 ~peak_mib:16 ~pace:0.4;
  Sim.Engine.run eng ~until:500.;
  Format.printf "@.final state:@.%a@." Qcore.Compile_gov.pp gov
