(* The graceful-degradation ladder under an external memory attack.

   A phantom process starts grabbing committed memory at t=100s and keeps
   absorbing whatever the server's own components release — execution
   grants, compile sessions — until essentially nothing is left, then
   lets go. 35 clients run the SALES workload through the whole episode.

   The same storm is replayed twice from the same seed: once on the plain
   throttled server, once with the resilience layer (admission shedding,
   greedy-plan compile fallback, reduced-grant spill execution, retry
   with pressure-aware backoff). The resilient server turns a flood of
   hard errors into degraded-but-successful completions.

     dune exec examples/chaos_pressure.exe *)

let gib = Dbmem.Units.gib

(* The canonical chaos scenario of test/test_chaos.ml: ballast spike at
   t=100s, 35 clients. The ballast's appetite (12 GiB) exceeds physical
   memory (4 GiB) on purpose — the slow 600s ramp keeps eating freed
   grants, ratcheting the server down to scraps. *)
let clients = 35
let seed = 42
let warmup = 60.
let measure = 1000.
let slice = 60.

let faults =
  [
    Faultsim.Fault.Memory_ballast
      { at = 100.; bytes = gib 12; hold = 0.; ramp_steps = 240; step_s = 2.5 };
  ]

let run ~resilient =
  let base =
    if resilient then Server.Config.resilient () else Server.Config.default ()
  in
  let config = { base with Server.Config.seed; faults } in
  Server.Experiment.run ~config ~clients ~warmup ~measure ~slice ()

let () =
  print_endline "Fault schedule:";
  List.iter
    (fun f -> print_endline ("  " ^ Faultsim.Fault.label f))
    faults;
  print_newline ();
  let on = run ~resilient:true in
  let off = run ~resilient:false in
  Format.printf "%a@.@." Server.Experiment.pp_summary on;
  Format.printf "%a@.@." Server.Experiment.pp_summary off;
  Server.Report.resilience_section [ on; off ];
  print_newline ();
  Printf.printf "  resilient   %s\n"
    (Server.Report.sparkline (Array.map snd on.Server.Experiment.slices));
  Printf.printf "  unprotected %s\n"
    (Server.Report.sparkline (Array.map snd off.Server.Experiment.slices));
  let uplift = 100. *. Server.Experiment.uplift on off in
  Printf.printf
    "\n\
     With the ladder the server completes %d queries (+%.0f%%) against %d\n\
     unprotected, and hard errors drop from %d to %d: queries that would\n\
     have failed run instead with greedy plans and spilling grants, and\n\
     retries ride out the spike until the broker calms down.\n"
    on.Server.Experiment.total_completed uplift
    off.Server.Experiment.total_completed off.Server.Experiment.hard_errors
    on.Server.Experiment.hard_errors
