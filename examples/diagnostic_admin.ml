(* Why the first gateway threshold exists: "This enables an administrator
   to run diagnostic queries even if the system is overloaded with queries
   consuming every available 'slot' in the memory monitors" (paper §4.1).

   We saturate every gateway slot with large ad-hoc compilations, then have
   an administrator fire small diagnostic queries throughout. Diagnostics
   stay below the first threshold, never touch a monitor, and keep
   returning promptly while the big queries queue.

     dune exec examples/diagnostic_admin.exe *)

let () =
  let cfg = { (Server.Config.default ()) with Server.Config.cpus = 2 } in
  let eng = Sim.Engine.create ~seed:21 () in
  let dbms = Server.Dbms.create eng cfg (Workload.Sales.catalog ()) in
  Server.Dbms.start dbms;
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  (* Overload: 24 analysts hammering the 2-CPU server with big ad-hoc
     queries and no think time. *)
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  for i = 1 to 24 do
    Workload.Client.spawn eng rng
      ~name:(Printf.sprintf "analyst-%d" i)
      ~templates:(Workload.Sales.templates ())
      ~submit:(fun q -> Server.Dbms.submit_catch dbms q)
      ~config:{ Workload.Client.default_config with Workload.Client.think_mean = 1. }
      ~stats ~ids ~until:1200.
  done;
  (* The administrator: one diagnostic query every 30 seconds. *)
  let diag = Workload.Sales.diagnostic_template () in
  let latencies = ref [] in
  Sim.Engine.spawn eng ~name:"admin" (fun () ->
      for i = 1 to 30 do
        Sim.Engine.sleep 30.;
        let q = Workload.Template.instance rng diag ~id:i in
        let t0 = Sim.Engine.now eng in
        match Server.Dbms.submit dbms q with
        | Ok () -> latencies := (Sim.Engine.now eng -. t0) :: !latencies
        | Error e ->
            Printf.printf "diagnostic FAILED: %s\n" (Health.Error.to_string e)
      done);
  Sim.Engine.run eng ~until:1200.;
  let gov = Server.Dbms.governor dbms in
  Format.printf "server state after 20 overloaded minutes:@.%a@."
    Qcore.Compile_gov.pp gov;
  let ls = Array.of_list !latencies in
  Printf.printf "analyst queries: %d finished, %d attempts in flight/retried\n"
    stats.Workload.Client.succeeded
    (stats.Workload.Client.attempts - stats.Workload.Client.succeeded);
  if Array.length ls > 0 then begin
    Printf.printf
      "diagnostics: %d of 30 returned; latency median %.1fs, p95 %.1fs, max %.1fs\n"
      (Array.length ls)
      (Sim.Stats.percentile ls 0.5)
      (Sim.Stats.percentile ls 0.95)
      (Sim.Stats.percentile ls 1.0)
  end;
  let monitors = Qcore.Compile_gov.monitors gov in
  Printf.printf
    "the diagnostics acquired no monitors (first threshold exempts them):\n";
  Array.iter
    (fun m ->
      Printf.printf "  %-7s gateway: %d acquisitions, all by analyst queries\n"
        (Qcore.Monitor.name m) (Qcore.Monitor.acquires m))
    monitors;
  (* Show the ad-hoc uniquification while we are here. *)
  let t = List.hd (Workload.Sales.templates ()) in
  print_endline "\ntwo instantiations of the same template (note the literals):";
  print_endline (Optimizer.Query.to_sql (Workload.Template.instance rng t ~id:9001));
  print_endline "";
  print_endline (Optimizer.Query.to_sql (Workload.Template.instance rng t ~id:9002))
