(* Robustness sweep: short end-to-end runs across a grid of configurations
   and seeds. Every run must finish without simulation-process failures
   (Experiment.run raises otherwise) and satisfy basic conservation
   invariants. These runs are much smaller than the benchmark windows, so
   the whole sweep stays fast. *)

let run_one ~seed ~clients ~throttled ~policy ~cpus ~memory_gib =
  let base =
    if throttled then Server.Config.default () else Server.Config.unthrottled ()
  in
  let config =
    {
      base with
      Server.Config.seed;
      cpus;
      memory_bytes = Dbmem.Units.gib memory_gib;
      pool_policy = policy;
    }
  in
  Server.Experiment.run ~config ~clients ~warmup:0. ~measure:400. ~slice:100. ()

let check_invariants name (r : Server.Experiment.result) =
  let c = r.Server.Experiment.client_stats in
  Alcotest.(check bool)
    (name ^ ": attempts >= submitted")
    true
    (c.Workload.Client.attempts >= c.Workload.Client.submitted);
  Alcotest.(check bool)
    (name ^ ": succeeded + abandoned <= submitted")
    true
    (c.Workload.Client.succeeded + c.Workload.Client.abandoned
    <= c.Workload.Client.submitted);
  Alcotest.(check int)
    (name ^ ": completions = successes")
    c.Workload.Client.succeeded r.Server.Experiment.total_completed;
  Alcotest.(check bool)
    (name ^ ": pool hit rate sane")
    true
    (Float.is_nan r.Server.Experiment.pool_hit_rate
    || (r.Server.Experiment.pool_hit_rate >= 0. && r.Server.Experiment.pool_hit_rate <= 1.))

let test_config_grid () =
  List.iter
    (fun (clients, throttled, policy, cpus, memory_gib) ->
      let name =
        Printf.sprintf "c%d-%b-%dcpu-%dgib" clients throttled cpus memory_gib
      in
      let r = run_one ~seed:1 ~clients ~throttled ~policy ~cpus ~memory_gib in
      check_invariants name r)
    [
      (4, true, Bufpool.Policy.Lru, 2, 1);
      (4, false, Bufpool.Policy.Lru, 2, 1);
      (12, true, Bufpool.Policy.Clock, 4, 2);
      (12, false, Bufpool.Policy.Lru2, 4, 2);
      (24, true, Bufpool.Policy.Lru2, 8, 4);
      (24, false, Bufpool.Policy.Lru2, 8, 4);
    ]

let test_seed_sweep () =
  for seed = 100 to 107 do
    let r =
      run_one ~seed ~clients:10 ~throttled:(seed mod 2 = 0)
        ~policy:Bufpool.Policy.Lru2 ~cpus:4 ~memory_gib:2
    in
    check_invariants (Printf.sprintf "seed%d" seed) r
  done

let test_tiny_memory_survives () =
  (* A pathologically small machine: lots of errors are fine, crashes are
     not. *)
  let r =
    run_one ~seed:5 ~clients:8 ~throttled:true ~policy:Bufpool.Policy.Lru ~cpus:1
      ~memory_gib:1
  in
  check_invariants "tiny" r

let test_static_ladder_variant () =
  let config =
    {
      (Server.Config.default ()) with
      Server.Config.throttle = Qcore.Throttle_config.static_only ();
      seed = 9;
    }
  in
  let r =
    Server.Experiment.run ~config ~clients:16 ~warmup:0. ~measure:400. ~slice:100. ()
  in
  check_invariants "static ladder" r

let test_single_gate_variant () =
  let config =
    {
      (Server.Config.default ()) with
      Server.Config.throttle = Qcore.Throttle_config.single_gate ();
      seed = 10;
    }
  in
  let r =
    Server.Experiment.run ~config ~clients:16 ~warmup:0. ~measure:400. ~slice:100. ()
  in
  check_invariants "single gate" r

let test_tpch_workload_end_to_end () =
  (* The comparison workload also runs through the full server. *)
  let config = { (Server.Config.default ()) with Server.Config.seed = 11 } in
  (* TPC-H executions scan tens of GB (no star-style date slicing), so
     they take ~20 minutes each on this hardware: use a long window. *)
  let r =
    Server.Experiment.run ~config
      ~catalog:(Workload.Tpch.catalog ())
      ~templates:(Workload.Tpch.templates ())
      ~clients:4 ~warmup:0. ~measure:3000. ~slice:500. ()
  in
  check_invariants "tpch" r;
  Alcotest.(check bool) "tpch completes queries" true
    (r.Server.Experiment.total_completed > 0)

let suite =
  [
    ("config grid", `Slow, test_config_grid);
    ("seed sweep", `Slow, test_seed_sweep);
    ("tiny memory survives", `Slow, test_tiny_memory_survives);
    ("static ladder variant", `Slow, test_static_ladder_variant);
    ("single gate variant", `Slow, test_single_gate_variant);
    ("tpch workload end to end", `Slow, test_tpch_workload_end_to_end);
  ]
