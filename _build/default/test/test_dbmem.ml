(* Tests for memory clerks, the manager, and donor-based reclamation. *)

open Dbmem

let mib = Units.mib

let test_units () =
  Alcotest.(check int) "kib" 2048 (Units.kib 2);
  Alcotest.(check int) "mib" (1024 * 1024) (Units.mib 1);
  Alcotest.(check int) "gib" (1024 * 1024 * 1024) (Units.gib 1);
  Alcotest.(check (float 1e-9)) "to_mib" 1.5 (Units.to_mib (Units.kib 1536));
  Alcotest.(check string) "pp gib" "1.00 GiB" (Units.bytes_to_string (Units.gib 1));
  Alcotest.(check string) "pp bytes" "123 B" (Units.bytes_to_string 123)

let test_alloc_free_accounting () =
  let m = Manager.create ~total:(mib 100) () in
  let a = Manager.create_clerk m "a" and b = Manager.create_clerk m "b" in
  Manager.alloc_exn a (mib 10);
  Manager.alloc_exn b (mib 20);
  Alcotest.(check int) "used" (mib 30) (Manager.used m);
  Alcotest.(check int) "available" (mib 70) (Manager.available m);
  Alcotest.(check int) "clerk a" (mib 10) (Manager.clerk_used a);
  Manager.free a (mib 5);
  Alcotest.(check int) "clerk a after free" (mib 5) (Manager.clerk_used a);
  Alcotest.(check int) "used after free" (mib 25) (Manager.used m);
  Manager.free_all b;
  Alcotest.(check int) "b empty" 0 (Manager.clerk_used b);
  Alcotest.(check int) "only a remains" (mib 5) (Manager.used m)

let test_peak_tracking () =
  let m = Manager.create ~total:(mib 100) () in
  let c = Manager.create_clerk m "c" in
  Manager.alloc_exn c (mib 30);
  Manager.free c (mib 20);
  Manager.alloc_exn c (mib 5);
  Alcotest.(check int) "peak" (mib 30) (Manager.clerk_peak c);
  Manager.reset_peak c;
  Alcotest.(check int) "peak reset to current" (mib 15) (Manager.clerk_peak c)

let test_oom_without_donors () =
  let m = Manager.create ~total:(mib 10) () in
  let c = Manager.create_clerk m "c" in
  Manager.alloc_exn c (mib 8);
  (match Manager.alloc c (mib 5) with
  | Error `Out_of_memory -> ()
  | Ok () -> Alcotest.fail "expected OOM");
  Alcotest.(check int) "accounting unchanged" (mib 8) (Manager.used m);
  Alcotest.(check int) "oom counted" 1 (Manager.oom_count m)

let test_donor_reclaim () =
  let m = Manager.create ~total:(mib 100) () in
  let cache = Manager.create_clerk m "cache" in
  let user = Manager.create_clerk m "user" in
  Manager.alloc_exn cache (mib 90);
  (* The cache donates by actually freeing its own clerk bytes. *)
  Manager.register_donor m ~clerk:cache ~priority:0 ~shrink:(fun want ->
      let give = min want (Manager.clerk_used cache) in
      Manager.free cache give;
      give);
  Manager.alloc_exn user (mib 50);
  Alcotest.(check int) "user got memory" (mib 50) (Manager.clerk_used user);
  Alcotest.(check bool) "cache shrank" true (Manager.clerk_used cache <= mib 50)

let test_donor_priority_order () =
  let m = Manager.create ~total:(mib 100) () in
  let first = Manager.create_clerk m "first" in
  let second = Manager.create_clerk m "second" in
  let user = Manager.create_clerk m "user" in
  Manager.alloc_exn first (mib 50);
  Manager.alloc_exn second (mib 50);
  let donor clerk = fun want ->
    let give = min want (Manager.clerk_used clerk) in
    Manager.free clerk give;
    give
  in
  Manager.register_donor m ~clerk:second ~priority:2 ~shrink:(donor second);
  Manager.register_donor m ~clerk:first ~priority:1 ~shrink:(donor first);
  Manager.alloc_exn user (mib 30);
  Alcotest.(check int) "lower priority donated" (mib 20) (Manager.clerk_used first);
  Alcotest.(check int) "higher priority untouched" (mib 50) (Manager.clerk_used second)

let test_donor_cascade () =
  let m = Manager.create ~total:(mib 100) () in
  let a = Manager.create_clerk m "a" and b = Manager.create_clerk m "b" in
  let user = Manager.create_clerk m "user" in
  Manager.alloc_exn a (mib 40);
  Manager.alloc_exn b (mib 60);
  let donor clerk cap = fun want ->
    (* This donor refuses to go below [cap]. *)
    let give = min want (max 0 (Manager.clerk_used clerk - cap)) in
    Manager.free clerk give;
    give
  in
  Manager.register_donor m ~clerk:a ~priority:0 ~shrink:(donor a (mib 30));
  Manager.register_donor m ~clerk:b ~priority:1 ~shrink:(donor b (mib 20));
  (* Needs 50: a can give 10, b gives the remaining 40. *)
  Manager.alloc_exn user (mib 50);
  Alcotest.(check int) "a at floor" (mib 30) (Manager.clerk_used a);
  Alcotest.(check int) "b gave the rest" (mib 20) (Manager.clerk_used b)

let test_oom_after_donors_exhausted () =
  let m = Manager.create ~total:(mib 100) () in
  let cache = Manager.create_clerk m "cache" in
  let pinned = Manager.create_clerk m "pinned" in
  let user = Manager.create_clerk m "user" in
  Manager.alloc_exn cache (mib 20);
  Manager.alloc_exn pinned (mib 75);
  Manager.register_donor m ~clerk:cache ~priority:0 ~shrink:(fun want ->
      let give = min want (Manager.clerk_used cache) in
      Manager.free cache give;
      give);
  (match Manager.alloc user (mib 40) with
  | Error `Out_of_memory -> ()
  | Ok () -> Alcotest.fail "expected OOM");
  (* The shrink is not rolled back, as in a real engine. *)
  Alcotest.(check int) "cache fully drained" 0 (Manager.clerk_used cache)

let test_demand () =
  let m = Manager.create ~total:(mib 100) () in
  let cache = Manager.create_clerk m "cache" in
  Manager.alloc_exn cache (mib 95);
  Manager.register_donor m ~clerk:cache ~priority:0 ~shrink:(fun want ->
      let give = min want (Manager.clerk_used cache) in
      Manager.free cache give;
      give);
  let freed = Manager.demand m (mib 50) in
  Alcotest.(check int) "freed" (mib 45) freed;
  Alcotest.(check bool) "available" true (Manager.available m >= mib 50)

let test_free_underflow_rejected () =
  let m = Manager.create ~total:(mib 10) () in
  let c = Manager.create_clerk m "c" in
  Manager.alloc_exn c 100;
  Alcotest.check_raises "underflow"
    (Invalid_argument "Manager.free: clerk c underflow") (fun () ->
      Manager.free c 200)

let test_snapshot () =
  let m = Manager.create ~total:(mib 10) () in
  let a = Manager.create_clerk m "alpha" in
  let _b = Manager.create_clerk m "beta" in
  Manager.alloc_exn a 42;
  Alcotest.(check (list (pair string int)))
    "snapshot order and values"
    [ ("alpha", 42); ("beta", 0) ]
    (Manager.snapshot m);
  match Manager.find_clerk m "beta" with
  | Some c -> Alcotest.(check string) "find" "beta" (Manager.clerk_name c)
  | None -> Alcotest.fail "beta not found"

let test_alloc_zero () =
  let m = Manager.create ~total:(mib 1) () in
  let c = Manager.create_clerk m "c" in
  Manager.alloc_exn c 0;
  Alcotest.(check int) "nothing allocated" 0 (Manager.used m)

let test_demand_without_donors () =
  let m = Manager.create ~total:(mib 10) () in
  let c = Manager.create_clerk m "c" in
  Manager.alloc_exn c (mib 9);
  Alcotest.(check int) "nothing reclaimable" 0 (Manager.demand m (mib 5))

let test_find_clerk_missing () =
  let m = Manager.create ~total:(mib 1) () in
  Alcotest.(check bool) "absent" true (Manager.find_clerk m "ghost" = None)

let test_negative_alloc_rejected () =
  let m = Manager.create ~total:(mib 1) () in
  let c = Manager.create_clerk m "c" in
  Alcotest.check_raises "negative" (Invalid_argument "Manager.alloc: negative")
    (fun () -> ignore (Manager.alloc c (-1)))

(* Invariant: sum of clerk usage equals manager usage, never exceeds total. *)
let prop_accounting_invariant =
  QCheck.Test.make ~name:"clerk sum = manager used <= total" ~count:200
    QCheck.(list (pair (int_range 0 2) (int_range (-300) 500)))
    (fun ops ->
      let total = 1000 in
      let m = Manager.create ~total () in
      let clerks = [| Manager.create_clerk m "c0"; Manager.create_clerk m "c1"; Manager.create_clerk m "c2" |] in
      List.iter
        (fun (ci, amount) ->
          let c = clerks.(ci) in
          if amount >= 0 then ignore (Manager.alloc c amount)
          else begin
            let f = min (-amount) (Manager.clerk_used c) in
            Manager.free c f
          end)
        ops;
      let sum = Array.fold_left (fun acc c -> acc + Manager.clerk_used c) 0 clerks in
      sum = Manager.used m && Manager.used m <= total && Manager.available m >= 0)

let suite =
  [
    ("units", `Quick, test_units);
    ("alloc/free accounting", `Quick, test_alloc_free_accounting);
    ("peak tracking", `Quick, test_peak_tracking);
    ("oom without donors", `Quick, test_oom_without_donors);
    ("donor reclaim", `Quick, test_donor_reclaim);
    ("donor priority order", `Quick, test_donor_priority_order);
    ("donor cascade", `Quick, test_donor_cascade);
    ("oom after donors exhausted", `Quick, test_oom_after_donors_exhausted);
    ("demand", `Quick, test_demand);
    ("free underflow rejected", `Quick, test_free_underflow_rejected);
    ("snapshot", `Quick, test_snapshot);
    ("alloc zero", `Quick, test_alloc_zero);
    ("demand without donors", `Quick, test_demand_without_donors);
    ("find clerk missing", `Quick, test_find_clerk_missing);
    ("negative alloc rejected", `Quick, test_negative_alloc_rejected);
    QCheck_alcotest.to_alcotest prop_accounting_invariant;
  ]
