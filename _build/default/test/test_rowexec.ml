(* Tests for the reference row-execution engine: every join algorithm and
   aggregation strategy must agree with the naive nested-loop evaluation. *)

open Relation
open Rowexec

let v = fun n -> Value.Int n

let customers =
  Table.create
    (Schema.make [ ("c_key", Value.Tint); ("c_region", Value.Tint) ])
    [
      [| v 0; v 10 |]; [| v 1; v 20 |]; [| v 2; v 10 |]; [| v 3; v 30 |];
    ]

let orders =
  Table.create
    (Schema.make
       [ ("o_key", Value.Tint); ("o_cust", Value.Tint); ("o_amount", Value.Tint) ])
    [
      [| v 100; v 0; v 5 |];
      [| v 101; v 1; v 7 |];
      [| v 102; v 0; v 11 |];
      [| v 103; v 2; v 2 |];
      [| v 104; v 9; v 99 |] (* dangling customer: matches nothing *);
    ]

let join_pred =
  (* customers.c_key = orders.o_cust over the concatenated tuple *)
  Expr.(Cmp (Eq, Col 0, Col 3))

let nlj = Operator.Nested_loop_join (join_pred, Operator.Scan customers, Operator.Scan orders)
let hj = Operator.Hash_join ([ (0, 1) ], Operator.Scan customers, Operator.Scan orders)
let mj = Operator.Merge_join ([ (0, 1) ], Operator.Scan customers, Operator.Scan orders)

let test_join_algorithms_agree () =
  let reference = Operator.execute nlj in
  Alcotest.(check int) "nlj row count" 4 (Table.cardinality reference);
  Alcotest.(check bool) "hash = nlj" true (Table.equal_bag reference (Operator.execute hj));
  Alcotest.(check bool) "merge = nlj" true (Table.equal_bag reference (Operator.execute mj))

let test_join_schema () =
  let s = Operator.schema hj in
  Alcotest.(check (list string)) "concat schema"
    [ "c_key"; "c_region"; "o_key"; "o_cust"; "o_amount" ]
    (Schema.names s)

let test_join_duplicates () =
  (* Many-to-many: two rows with the same key on each side -> 4 outputs. *)
  let s = Schema.make [ ("k", Value.Tint) ] in
  let l = Table.create s [ [| v 1 |]; [| v 1 |]; [| v 2 |] ] in
  let r = Table.create s [ [| v 1 |]; [| v 1 |]; [| v 3 |] ] in
  let hash = Operator.execute (Operator.Hash_join ([ (0, 0) ], Operator.Scan l, Operator.Scan r)) in
  let merge = Operator.execute (Operator.Merge_join ([ (0, 0) ], Operator.Scan l, Operator.Scan r)) in
  Alcotest.(check int) "hash many-to-many" 4 (Table.cardinality hash);
  Alcotest.(check bool) "merge agrees" true (Table.equal_bag hash merge)

let test_join_null_keys_never_match () =
  let s = Schema.make [ ("k", Value.Tint) ] in
  let l = Table.create s [ [| Value.Null |]; [| v 1 |] ] in
  let r = Table.create s [ [| Value.Null |]; [| v 1 |] ] in
  let hash = Operator.execute (Operator.Hash_join ([ (0, 0) ], Operator.Scan l, Operator.Scan r)) in
  Alcotest.(check int) "only non-null matches" 1 (Table.cardinality hash);
  let merge = Operator.execute (Operator.Merge_join ([ (0, 0) ], Operator.Scan l, Operator.Scan r)) in
  Alcotest.(check bool) "merge agrees on nulls" true (Table.equal_bag hash merge)

let test_multi_key_join () =
  let s = Schema.make [ ("a", Value.Tint); ("b", Value.Tint) ] in
  let l = Table.create s [ [| v 1; v 1 |]; [| v 1; v 2 |]; [| v 2; v 1 |] ] in
  let r = Table.create s [ [| v 1; v 1 |]; [| v 1; v 9 |]; [| v 2; v 1 |] ] in
  let hash =
    Operator.execute (Operator.Hash_join ([ (0, 0); (1, 1) ], Operator.Scan l, Operator.Scan r))
  in
  Alcotest.(check int) "both keys must match" 2 (Table.cardinality hash);
  let nl =
    Operator.execute
      (Operator.Nested_loop_join
         ( Expr.(Cmp (Eq, Col 0, Col 2) &&% Cmp (Eq, Col 1, Col 3)),
           Operator.Scan l, Operator.Scan r ))
  in
  Alcotest.(check bool) "nlj agrees" true (Table.equal_bag hash nl)

let test_filter_and_project () =
  let op =
    Operator.Project
      ( [ 1 ],
        Operator.Filter
          (Expr.(Cmp (Ge, Col 2, Const (Value.Int 7))), Operator.Scan orders) )
  in
  let out = Operator.execute op in
  Alcotest.(check int) "rows" 3 (Table.cardinality out);
  Alcotest.(check (list string)) "schema" [ "o_cust" ] (Schema.names (Table.schema out))

let test_sort () =
  let out = Operator.execute (Operator.Sort ([ 2 ], Operator.Scan orders)) in
  let amounts =
    Array.to_list
      (Array.map
         (fun r -> match Tuple.get r 2 with Value.Int n -> n | _ -> -1)
         (Table.rows out))
  in
  Alcotest.(check (list int)) "sorted by amount" [ 2; 5; 7; 11; 99 ] amounts

let test_limit () =
  let out = Operator.execute (Operator.Limit (2, Operator.Scan orders)) in
  Alcotest.(check int) "limited" 2 (Table.cardinality out);
  let all = Operator.execute (Operator.Limit (100, Operator.Scan orders)) in
  Alcotest.(check int) "limit beyond size" 5 (Table.cardinality all)

let test_hash_aggregate () =
  (* Group orders by customer: count and total amount. *)
  let op =
    Operator.Hash_aggregate ([ 1 ], [ Operator.Count; Operator.Sum 2 ], Operator.Scan orders)
  in
  let out = Operator.execute op in
  Alcotest.(check int) "4 groups" 4 (Table.cardinality out);
  let expected =
    Table.create (Table.schema out)
      [
        [| v 0; v 2; v 16 |];
        [| v 1; v 1; v 7 |];
        [| v 2; v 1; v 2 |];
        [| v 9; v 1; v 99 |];
      ]
  in
  Alcotest.(check bool) "group results" true (Table.equal_bag out expected)

let test_stream_aggregate_matches_hash () =
  let groups = [ 1 ] and aggs = [ Operator.Count; Operator.Sum 2; Operator.Max 2 ] in
  let hash = Operator.execute (Operator.Hash_aggregate (groups, aggs, Operator.Scan orders)) in
  let stream =
    Operator.execute
      (Operator.Stream_aggregate (groups, aggs, Operator.Sort (groups, Operator.Scan orders)))
  in
  Alcotest.(check bool) "stream = hash" true (Table.equal_bag hash stream)

let test_scalar_aggregate () =
  let op =
    Operator.Hash_aggregate
      ([], [ Operator.Count; Operator.Sum 2; Operator.Min 2; Operator.Avg 2 ], Operator.Scan orders)
  in
  let out = Operator.execute op in
  Alcotest.(check int) "one row" 1 (Table.cardinality out);
  let row = Table.nth out 0 in
  (match Tuple.get row 0 with
  | Value.Int 5 -> ()
  | x -> Alcotest.failf "count: %s" (Value.to_string x));
  (match Tuple.get row 1 with
  | Value.Int 124 -> ()
  | x -> Alcotest.failf "sum: %s" (Value.to_string x));
  (match Tuple.get row 2 with
  | Value.Int 2 -> ()
  | x -> Alcotest.failf "min: %s" (Value.to_string x));
  match Tuple.get row 3 with
  | Value.Float avg -> Alcotest.(check (float 1e-9)) "avg" 24.8 avg
  | x -> Alcotest.failf "avg: %s" (Value.to_string x)

let test_scalar_aggregate_empty_input () =
  let empty = Table.create (Table.schema orders) [] in
  let op = Operator.Hash_aggregate ([], [ Operator.Count ], Operator.Scan empty) in
  let out = Operator.execute op in
  Alcotest.(check int) "one row" 1 (Table.cardinality out);
  match Tuple.get (Table.nth out 0) 0 with
  | Value.Int 0 -> ()
  | x -> Alcotest.failf "count of empty: %s" (Value.to_string x)

let test_grouped_aggregate_empty_input () =
  let empty = Table.create (Table.schema orders) [] in
  let op = Operator.Hash_aggregate ([ 1 ], [ Operator.Count ], Operator.Scan empty) in
  Alcotest.(check int) "no groups" 0 (Table.cardinality (Operator.execute op))

let test_empty_join_inputs () =
  let empty = Table.create (Table.schema customers) [] in
  let hj = Operator.Hash_join ([ (0, 1) ], Operator.Scan empty, Operator.Scan orders) in
  Alcotest.(check int) "empty build" 0 (Table.cardinality (Operator.execute hj));
  let mj = Operator.Merge_join ([ (0, 1) ], Operator.Scan customers, Operator.Scan (Table.create (Table.schema orders) [])) in
  Alcotest.(check int) "empty probe" 0 (Table.cardinality (Operator.execute mj))

(* Property: on random data, the three join algorithms agree. *)
let prop_joins_agree =
  QCheck.Test.make ~name:"hash/merge/nlj joins agree on random data" ~count:60
    QCheck.(triple small_nat small_nat (int_range 1 6))
    (fun (nl, nr, key_range) ->
      let rng = QCheck.Gen.int_range 0 10000 in
      ignore rng;
      let seed = (nl * 7919) + (nr * 104729) + key_range in
      let r = Sim.Rng.create seed in
      let s = Schema.make [ ("k", Value.Tint); ("p", Value.Tint) ] in
      let mk n =
        Table.of_array s
          (Array.init n (fun i ->
               [| Value.Int (Sim.Rng.int r (max 1 key_range)); Value.Int i |]))
      in
      let l = mk (min nl 40) and rt = mk (min nr 40) in
      let nlj_out =
        Operator.execute
          (Operator.Nested_loop_join
             (Expr.(Cmp (Eq, Col 0, Col 2)), Operator.Scan l, Operator.Scan rt))
      in
      let hash_out =
        Operator.execute (Operator.Hash_join ([ (0, 0) ], Operator.Scan l, Operator.Scan rt))
      in
      let merge_out =
        Operator.execute (Operator.Merge_join ([ (0, 0) ], Operator.Scan l, Operator.Scan rt))
      in
      Table.equal_bag nlj_out hash_out && Table.equal_bag nlj_out merge_out)

let suite =
  [
    ("join algorithms agree", `Quick, test_join_algorithms_agree);
    ("join schema", `Quick, test_join_schema);
    ("join duplicates", `Quick, test_join_duplicates);
    ("join null keys", `Quick, test_join_null_keys_never_match);
    ("multi-key join", `Quick, test_multi_key_join);
    ("filter and project", `Quick, test_filter_and_project);
    ("sort", `Quick, test_sort);
    ("limit", `Quick, test_limit);
    ("hash aggregate", `Quick, test_hash_aggregate);
    ("stream aggregate matches hash", `Quick, test_stream_aggregate_matches_hash);
    ("scalar aggregate", `Quick, test_scalar_aggregate);
    ("scalar aggregate empty input", `Quick, test_scalar_aggregate_empty_input);
    ("grouped aggregate empty input", `Quick, test_grouped_aggregate_empty_input);
    ("empty join inputs", `Quick, test_empty_join_inputs);
    QCheck_alcotest.to_alcotest prop_joins_agree;
  ]
