(* Tests for the SALES / TPC-H workloads, the uniquifier, and the client
   model. *)

let gib = Dbmem.Units.gib

(* ------------------------------------------------------------------ *)
(* SALES schema *)

let test_sales_catalog_size () =
  let cat = Workload.Sales.catalog () in
  let bytes = Optimizer.Catalog.data_bytes cat in
  (* Paper: 524 GB data mart. The synthetic schema should be within ~15%. *)
  Alcotest.(check bool)
    (Printf.sprintf "size %s close to 524 GB" (Dbmem.Units.bytes_to_string bytes))
    true
    (bytes > 440 * gib 1 / 1 && bytes < 600 * gib 1 / 1)

let test_sales_fact_rows () =
  let cat = Workload.Sales.catalog () in
  let fact = Optimizer.Catalog.find_table cat Workload.Sales.fact_table in
  (* Paper: "over 400 million rows". *)
  Alcotest.(check (float 1.)) "400M rows" 400_000_000. fact.Optimizer.Catalog.rows

let test_sales_dimension_count () =
  Alcotest.(check int) "19 dimensions" 19 (List.length Workload.Sales.dimensions);
  let cat = Workload.Sales.catalog () in
  List.iter
    (fun d ->
      match Optimizer.Catalog.find_table_opt cat d with
      | Some _ -> ()
      | None -> Alcotest.failf "missing dimension %s" d)
    Workload.Sales.dimensions

let test_sales_ten_templates () =
  Alcotest.(check int) "ten templates" 10 (List.length (Workload.Sales.templates ()))

let test_sales_join_band () =
  (* Paper: the average query contains between 15 and 20 joins. *)
  let rng = Sim.Rng.create 1 in
  let id = ref 0 in
  List.iter
    (fun t ->
      for _ = 1 to 5 do
        incr id;
        let q = Workload.Template.instance rng t ~id:!id in
        let joins = Optimizer.Query.joins q in
        Alcotest.(check bool)
          (Printf.sprintf "%s has %d joins" t.Workload.Template.tname joins)
          true
          (joins >= 15 && joins <= 20)
      done)
    (Workload.Sales.templates ())

let test_sales_queries_valid_and_aggregated () =
  let rng = Sim.Rng.create 2 in
  let cat = Workload.Sales.catalog () in
  List.iteri
    (fun i t ->
      let q = Workload.Template.instance rng t ~id:i in
      (* Query.make already validated structure; check semantics. *)
      Alcotest.(check bool) "has aggregation" true (q.Optimizer.Query.agg <> None);
      Alcotest.(check bool) "has a date filter" true
        (List.exists
           (fun f -> f.Optimizer.Query.fcol = "date_dim_key")
           q.Optimizer.Query.filters);
      (* Every referenced table exists in the catalog. *)
      Array.iter
        (fun r ->
          Alcotest.(check bool) "table exists" true
            (Optimizer.Catalog.find_table_opt cat r.Optimizer.Query.rtable <> None))
        q.Optimizer.Query.rels)
    (Workload.Sales.templates ())

let test_uniquifier_defeats_caching () =
  (* Two instantiations of the same template have different fingerprints
     (the paper's plan-cache-defeating trick). *)
  let rng = Sim.Rng.create 3 in
  let t = List.hd (Workload.Sales.templates ()) in
  let q1 = Workload.Template.instance rng t ~id:1 in
  let q2 = Workload.Template.instance rng t ~id:2 in
  Alcotest.(check bool) "distinct fingerprints" true
    (q1.Optimizer.Query.qid <> q2.Optimizer.Query.qid);
  (* And different literals: the date windows should differ. *)
  let date_value q =
    (List.find (fun f -> f.Optimizer.Query.fcol = "date_dim_key") q.Optimizer.Query.filters)
      .Optimizer.Query.fvalue
  in
  Alcotest.(check bool) "different literals" true (date_value q1 <> date_value q2)

let test_diagnostic_template_is_tiny_and_stable () =
  let rng = Sim.Rng.create 4 in
  let t = Workload.Sales.diagnostic_template () in
  let q1 = Workload.Template.instance rng t ~id:1 in
  let q2 = Workload.Template.instance rng t ~id:2 in
  Alcotest.(check string) "stable fingerprint (cacheable)" q1.Optimizer.Query.qid
    q2.Optimizer.Query.qid;
  Alcotest.(check int) "single relation" 1 (Optimizer.Query.n_rels q1);
  (* It must stay under the first gateway threshold when compiled. *)
  let cat = Workload.Sales.catalog () in
  match
    Optimizer.Cascades.optimize ~env:Optimizer.Env.null Optimizer.Cost.default
      cat q1
  with
  | Ok r ->
      Alcotest.(check bool) "compile memory below first threshold" true
        (r.Optimizer.Cascades.stats.Optimizer.Cascades.allocated_bytes
        < Dbmem.Units.mib 2)
  | Error _ -> Alcotest.fail "diagnostic compile failed"

let test_sales_compile_memory_band () =
  (* SALES compilations are the paper's heavy hitters: tens to hundreds of
     MiB under the calibrated search parameters. *)
  let rng = Sim.Rng.create 5 in
  let cat = Workload.Sales.catalog () in
  List.iteri
    (fun i t ->
      let q = Workload.Template.instance rng t ~id:i in
      match
        Optimizer.Cascades.optimize ~env:Optimizer.Env.null Optimizer.Cost.default
          cat q
      with
      | Ok r ->
          let b = r.Optimizer.Cascades.stats.Optimizer.Cascades.allocated_bytes in
          Alcotest.(check bool)
            (Printf.sprintf "%s allocates %s" t.Workload.Template.tname
               (Dbmem.Units.bytes_to_string b))
            true
            (b > Dbmem.Units.mib 50 && b < Dbmem.Units.gib 2)
      | Error _ -> Alcotest.fail "compile failed")
    (Workload.Sales.templates ())

(* ------------------------------------------------------------------ *)
(* TPC-H *)

let test_tpch_join_band () =
  (* Paper: TPC-H queries contain between 0 and 8 joins. *)
  let rng = Sim.Rng.create 6 in
  List.iteri
    (fun i t ->
      let q = Workload.Template.instance rng t ~id:i in
      let joins = Optimizer.Query.joins q in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d joins" t.Workload.Template.tname joins)
        true
        (joins >= 0 && joins <= 8))
    (Workload.Tpch.templates ())

let test_tpch_instantiates_all () =
  let rng = Sim.Rng.create 7 in
  let cat = Workload.Tpch.catalog () in
  List.iteri
    (fun i t ->
      let q = Workload.Template.instance rng t ~id:i in
      Array.iter
        (fun r ->
          Alcotest.(check bool) "table exists" true
            (Optimizer.Catalog.find_table_opt cat r.Optimizer.Query.rtable <> None))
        q.Optimizer.Query.rels)
    (Workload.Tpch.templates ())

let test_tpch_self_join_aliases () =
  (* q8 uses nation twice under different aliases. *)
  let rng = Sim.Rng.create 8 in
  let q8 =
    List.find
      (fun t -> t.Workload.Template.tname = "q8_market_share")
      (Workload.Tpch.templates ())
  in
  let q = Workload.Template.instance rng q8 ~id:1 in
  let nations =
    Array.to_list q.Optimizer.Query.rels
    |> List.filter (fun r -> r.Optimizer.Query.rtable = "nation")
  in
  Alcotest.(check int) "two nation aliases" 2 (List.length nations)

let test_tpch_compiles_small () =
  let rng = Sim.Rng.create 9 in
  let cat = Workload.Tpch.catalog () in
  List.iteri
    (fun i t ->
      let q = Workload.Template.instance rng t ~id:i in
      match
        Optimizer.Cascades.optimize ~env:Optimizer.Env.null Optimizer.Cost.default
          cat q
      with
      | Ok r ->
          Alcotest.(check bool) "complete search" true
            (r.Optimizer.Cascades.outcome = Optimizer.Cascades.Complete);
          Alcotest.(check bool) "small memory" true
            (r.Optimizer.Cascades.stats.Optimizer.Cascades.allocated_bytes
            < Dbmem.Units.mib 32)
      | Error _ -> Alcotest.fail "tpch compile failed")
    (Workload.Tpch.templates ())

(* TPC-H plans are also row-level correct. *)
let test_tpch_plans_validate () =
  let rng = Sim.Rng.create 10 in
  let cat = Workload.Tpch.catalog () in
  let inst = Optimizer.Bridge.materialize (Sim.Rng.create 11) cat ~scale:1e-5 ~cap:40 () in
  List.iteri
    (fun i t ->
      let q = Workload.Template.instance rng t ~id:i in
      let card = Optimizer.Card.create cat q in
      let plan = Optimizer.Greedy.plan Optimizer.Cost.default card in
      match Optimizer.Bridge.validate inst q plan with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" t.Workload.Template.tname e)
    (Workload.Tpch.templates ())

(* ------------------------------------------------------------------ *)
(* Snowflake *)

let test_snowflake_join_band () =
  let rng = Sim.Rng.create 20 in
  let id = ref 0 in
  List.iter
    (fun t ->
      for _ = 1 to 4 do
        incr id;
        let q = Workload.Template.instance rng t ~id:!id in
        let joins = Optimizer.Query.joins q in
        Alcotest.(check bool)
          (Printf.sprintf "%s has %d joins" t.Workload.Template.tname joins)
          true
          (joins >= 14 && joins <= 20)
      done)
    (Workload.Snowflake.templates ())

let test_snowflake_has_chain_joins () =
  (* At least one predicate must join two non-fact relations. *)
  let rng = Sim.Rng.create 21 in
  let t = List.hd (Workload.Snowflake.templates ()) in
  let q = Workload.Template.instance rng t ~id:1 in
  Alcotest.(check bool) "dimension-to-outrigger join present" true
    (List.exists
       (fun p -> p.Optimizer.Query.jleft <> 0 && p.Optimizer.Query.jright <> 0)
       q.Optimizer.Query.preds)

let test_snowflake_plans_validate () =
  let rng = Sim.Rng.create 22 in
  let cat = Workload.Snowflake.catalog () in
  let inst =
    Optimizer.Bridge.materialize (Sim.Rng.create 23) cat ~scale:1e-5 ~cap:40 ()
  in
  List.iteri
    (fun i t ->
      if i < 4 then begin
        let q = Workload.Template.instance rng t ~id:i in
        let card = Optimizer.Card.create cat q in
        let plan = Optimizer.Greedy.plan Optimizer.Cost.default card in
        match Optimizer.Bridge.validate inst q plan with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" t.Workload.Template.tname e
      end)
    (Workload.Snowflake.templates ())

(* ------------------------------------------------------------------ *)
(* Template picking and clients *)

let test_template_weighted_pick () =
  let rng = Sim.Rng.create 12 in
  let heavy =
    { Workload.Template.tname = "heavy"; weight = 9.0; instantiate = (fun _ _ -> assert false) }
  in
  let light =
    { Workload.Template.tname = "light"; weight = 1.0; instantiate = (fun _ _ -> assert false) }
  in
  let heavy_count = ref 0 in
  for _ = 1 to 10_000 do
    let t = Workload.Template.pick rng [ heavy; light ] in
    if t.Workload.Template.tname = "heavy" then incr heavy_count
  done;
  let frac = float_of_int !heavy_count /. 10_000. in
  Alcotest.(check bool) "ninety percent heavy" true (Float.abs (frac -. 0.9) < 0.02)

let scripted_client ~responses =
  (* Drive a client against a scripted submit function; returns stats. *)
  let eng = Sim.Engine.create () in
  let responses = ref responses in
  let submit _ =
    match !responses with
    | [] -> Ok ()
    | r :: rest ->
        responses := rest;
        r
  in
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  let template =
    {
      Workload.Template.tname = "noop";
      weight = 1.0;
      instantiate =
        (fun _ id ->
          Optimizer.Query.make ~id:(Printf.sprintf "n%d" id)
            ~rels:[ ("t", "t") ] ~preds:[] ~filters:[] ~agg:None);
    }
  in
  Workload.Client.spawn eng (Sim.Rng.create 1) ~name:"c" ~templates:[ template ]
    ~submit
    ~config:{ Workload.Client.think_mean = 1.0; retry_delay = 1.0; max_attempts = 3 }
    ~stats ~ids ~until:30.;
  Sim.Engine.run eng ~until:30.;
  stats

let test_client_success_path () =
  let stats = scripted_client ~responses:[] in
  Alcotest.(check bool) "submitted several" true (stats.Workload.Client.submitted > 3);
  Alcotest.(check int) "all succeeded" stats.Workload.Client.submitted
    stats.Workload.Client.succeeded;
  Alcotest.(check int) "no retries" stats.Workload.Client.submitted
    stats.Workload.Client.attempts

let test_client_retries_then_succeeds () =
  let stats = scripted_client ~responses:[ Error "oom"; Error "oom" ] in
  (* First query: two failures then success on the third attempt. *)
  Alcotest.(check int) "extra attempts" (stats.Workload.Client.submitted + 2)
    stats.Workload.Client.attempts;
  Alcotest.(check int) "nothing abandoned" 0 stats.Workload.Client.abandoned

let test_client_abandons_after_max_attempts () =
  let stats =
    scripted_client ~responses:[ Error "oom"; Error "oom"; Error "oom" ]
  in
  Alcotest.(check int) "one abandoned" 1 stats.Workload.Client.abandoned;
  Alcotest.(check int) "rest succeeded"
    (stats.Workload.Client.submitted - 1)
    stats.Workload.Client.succeeded

let suite =
  [
    ("sales catalog size", `Quick, test_sales_catalog_size);
    ("sales fact rows", `Quick, test_sales_fact_rows);
    ("sales 19 dimensions", `Quick, test_sales_dimension_count);
    ("sales ten templates", `Quick, test_sales_ten_templates);
    ("sales join band 15-20", `Slow, test_sales_join_band);
    ("sales queries valid", `Quick, test_sales_queries_valid_and_aggregated);
    ("uniquifier defeats caching", `Quick, test_uniquifier_defeats_caching);
    ("diagnostic template tiny+stable", `Quick, test_diagnostic_template_is_tiny_and_stable);
    ("sales compile memory band", `Slow, test_sales_compile_memory_band);
    ("tpch join band 0-8", `Quick, test_tpch_join_band);
    ("tpch instantiates", `Quick, test_tpch_instantiates_all);
    ("tpch self-join aliases", `Quick, test_tpch_self_join_aliases);
    ("tpch compiles small+complete", `Slow, test_tpch_compiles_small);
    ("tpch plans validate", `Quick, test_tpch_plans_validate);
    ("snowflake join band", `Quick, test_snowflake_join_band);
    ("snowflake chain joins", `Quick, test_snowflake_has_chain_joins);
    ("snowflake plans validate", `Quick, test_snowflake_plans_validate);
    ("template weighted pick", `Quick, test_template_weighted_pick);
    ("client success path", `Quick, test_client_success_path);
    ("client retries then succeeds", `Quick, test_client_retries_then_succeeds);
    ("client abandons after max", `Quick, test_client_abandons_after_max_attempts);
  ]
