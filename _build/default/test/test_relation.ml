(* Tests for the row-level relational kernel. *)

open Relation

let v_int n = Value.Int n
let v_str s = Value.String s

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check bool) "int/float cross" true
    (Value.compare (v_int 1) (Value.Float 1.5) < 0);
  Alcotest.(check bool) "equal cross" true (Value.equal (v_int 2) (Value.Float 2.));
  Alcotest.(check bool) "null smallest" true
    (Value.compare Value.Null (v_int min_int) < 0);
  Alcotest.(check bool) "null equals null" true (Value.equal Value.Null Value.Null)

let test_value_types () =
  Alcotest.(check bool) "int ty" true (Value.type_of (v_int 1) = Some Value.Tint);
  Alcotest.(check bool) "null ty" true (Value.type_of Value.Null = None);
  Alcotest.(check bool) "null conforms" true (Value.conforms Value.Null Value.Tstring);
  Alcotest.(check bool) "mismatch" false (Value.conforms (v_int 1) Value.Tstring)

(* ------------------------------------------------------------------ *)
(* Schema *)

let abc = Schema.make [ ("a", Value.Tint); ("b", Value.Tstring); ("c", Value.Tfloat) ]

let test_schema_basics () =
  Alcotest.(check int) "arity" 3 (Schema.arity abc);
  Alcotest.(check int) "index" 1 (Schema.index_of abc "b");
  Alcotest.(check (option int)) "find missing" None (Schema.find_index abc "z");
  Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ] (Schema.names abc)

let test_schema_duplicate_rejected () =
  Alcotest.(check bool) "dup" true
    (try
       ignore (Schema.make [ ("x", Value.Tint); ("x", Value.Tint) ]);
       false
     with Invalid_argument _ -> true)

let test_schema_concat_renames () =
  let s = Schema.concat abc abc in
  Alcotest.(check int) "arity" 6 (Schema.arity s);
  Alcotest.(check (list string)) "renamed"
    [ "a"; "b"; "c"; "a_r"; "b_r"; "c_r" ]
    (Schema.names s)

let test_schema_project () =
  let s = Schema.project abc [ 2; 0 ] in
  Alcotest.(check (list string)) "projected" [ "c"; "a" ] (Schema.names s)

(* ------------------------------------------------------------------ *)
(* Table *)

let small_schema = Schema.make [ ("id", Value.Tint); ("name", Value.Tstring) ]

let small_table =
  Table.create small_schema
    [ [| v_int 1; v_str "x" |]; [| v_int 2; v_str "y" |] ]

let test_table_create_checks_types () =
  Alcotest.(check bool) "bad row rejected" true
    (try
       ignore (Table.create small_schema [ [| v_str "oops"; v_str "x" |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad arity rejected" true
    (try
       ignore (Table.create small_schema [ [| v_int 1 |] ]);
       false
     with Invalid_argument _ -> true)

let test_table_equal_bag () =
  let t1 =
    Table.create small_schema
      [ [| v_int 1; v_str "x" |]; [| v_int 2; v_str "y" |] ]
  in
  let t2 =
    Table.create small_schema
      [ [| v_int 2; v_str "y" |]; [| v_int 1; v_str "x" |] ]
  in
  Alcotest.(check bool) "order insensitive" true (Table.equal_bag t1 t2);
  let t3 =
    Table.create small_schema
      [ [| v_int 1; v_str "x" |]; [| v_int 1; v_str "x" |] ]
  in
  Alcotest.(check bool) "multiplicity matters" false (Table.equal_bag t1 t3)

(* ------------------------------------------------------------------ *)
(* Expr *)

let test_expr_eval () =
  let row = [| v_int 10; v_str "abc"; Value.Float 2.5 |] in
  let open Expr in
  Alcotest.(check bool) "col cmp" true (eval_bool (Col 0 >% int 5) row);
  Alcotest.(check bool) "and" true (eval_bool ((Col 0 =% int 10) &&% (Col 1 =% str "abc")) row);
  Alcotest.(check bool) "or short" true (eval_bool ((Col 0 =% int 10) ||% (Col 0 =% int 99)) row);
  Alcotest.(check bool) "not" false (eval_bool (Not (Col 0 =% int 10)) row);
  (match eval (Arith (Add, Col 0, int 5)) row with
  | Value.Int 15 -> ()
  | v -> Alcotest.failf "add: %s" (Value.to_string v));
  match eval (Arith (Mul, Col 2, Const (Value.Float 2.))) row with
  | Value.Float f -> Alcotest.(check (float 1e-9)) "mul float" 5.0 f
  | v -> Alcotest.failf "mul: %s" (Value.to_string v)

let test_expr_null_semantics () =
  let row = [| Value.Null; v_int 1 |] in
  let open Expr in
  Alcotest.(check bool) "null cmp false" false (eval_bool (Col 0 =% Col 0) row);
  (match eval (Arith (Add, Col 0, Col 1)) row with
  | Value.Null -> ()
  | v -> Alcotest.failf "null arith: %s" (Value.to_string v));
  match eval (Arith (Div, Col 1, int 0)) row with
  | Value.Null -> ()
  | v -> Alcotest.failf "div by zero: %s" (Value.to_string v)

let test_expr_shift () =
  let row = [| v_int 0; v_int 1; v_int 5; v_int 5 |] in
  let e = Expr.(Col 0 =% Col 1) in
  Alcotest.(check bool) "shifted" true (Expr.eval_bool (Expr.shift 2 e) row);
  Alcotest.(check bool) "unshifted" false (Expr.eval_bool e row)

let test_expr_type_errors () =
  let row = [| v_str "x" |] in
  Alcotest.(check bool) "string arith rejected" true
    (try
       ignore (Expr.eval (Expr.Arith (Expr.Add, Expr.Col 0, Expr.Col 0)) row);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Datagen *)

let test_datagen_deterministic () =
  let schema = Schema.make [ ("k", Value.Tint); ("v", Value.Tint) ] in
  let gen seed =
    Datagen.table (Sim.Rng.create seed) schema
      [ Datagen.Serial; Datagen.Uniform_int (0, 99) ]
      ~rows:50
  in
  Alcotest.(check bool) "same seed same data" true (Table.equal_bag (gen 1) (gen 1));
  Alcotest.(check bool) "different seed different data" false
    (Table.equal_bag (gen 1) (gen 2))

let test_datagen_serial_and_ranges () =
  let schema =
    Schema.make [ ("k", Value.Tint); ("fk", Value.Tint); ("x", Value.Tint) ]
  in
  let t =
    Datagen.table (Sim.Rng.create 3) schema
      [ Datagen.Serial; Datagen.Foreign_key 7; Datagen.Uniform_int (10, 20) ]
      ~rows:100
  in
  Array.iteri
    (fun i row ->
      (match Tuple.get row 0 with
      | Value.Int k -> Alcotest.(check int) "serial" i k
      | _ -> Alcotest.fail "serial not int");
      (match Tuple.get row 1 with
      | Value.Int fk -> Alcotest.(check bool) "fk in range" true (fk >= 0 && fk < 7)
      | _ -> Alcotest.fail "fk not int");
      match Tuple.get row 2 with
      | Value.Int x -> Alcotest.(check bool) "uniform in range" true (x >= 10 && x <= 20)
      | _ -> Alcotest.fail "x not int")
    (Table.rows t)

let _ = small_table

let suite =
  [
    ("value compare", `Quick, test_value_compare);
    ("value types", `Quick, test_value_types);
    ("schema basics", `Quick, test_schema_basics);
    ("schema duplicate rejected", `Quick, test_schema_duplicate_rejected);
    ("schema concat renames", `Quick, test_schema_concat_renames);
    ("schema project", `Quick, test_schema_project);
    ("table type checking", `Quick, test_table_create_checks_types);
    ("table equal bag", `Quick, test_table_equal_bag);
    ("expr eval", `Quick, test_expr_eval);
    ("expr null semantics", `Quick, test_expr_null_semantics);
    ("expr shift", `Quick, test_expr_shift);
    ("expr type errors", `Quick, test_expr_type_errors);
    ("datagen deterministic", `Quick, test_datagen_deterministic);
    ("datagen serial and ranges", `Quick, test_datagen_serial_and_ranges);
  ]
