test/test_plancache.ml: Alcotest Cache Dbmem List Optimizer Plancache Printf QCheck QCheck_alcotest
