test/test_execsim.ml: Alcotest Bufpool Cpu Dbmem Execsim Float Grant List Optimizer Printf Runner Sim
