test/test_misc.ml: Alcotest Array Dbmem Format List Optimizer Option Printf Relation Server Sim String Workload
