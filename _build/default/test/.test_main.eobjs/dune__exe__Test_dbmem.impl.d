test/test_dbmem.ml: Alcotest Array Dbmem List Manager QCheck QCheck_alcotest Units
