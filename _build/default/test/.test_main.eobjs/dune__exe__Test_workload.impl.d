test/test_workload.ml: Alcotest Array Dbmem Float List Optimizer Printf Sim Workload
