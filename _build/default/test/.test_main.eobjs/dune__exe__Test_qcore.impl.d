test/test_qcore.ml: Alcotest Array Broker Compile_gov Dbmem Float Gen List Monitor Printf QCheck QCheck_alcotest Qcore Sim Throttle_config Trend
