test/test_fuzz.ml: Alcotest Bufpool Dbmem Float List Printf Qcore Server Workload
