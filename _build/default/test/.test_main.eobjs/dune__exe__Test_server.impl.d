test/test_server.ml: Alcotest Array Dbmem List Plancache Printf Qcore Server Sim Workload
