test/test_relation.ml: Alcotest Array Datagen Expr Relation Schema Sim Table Tuple Value
