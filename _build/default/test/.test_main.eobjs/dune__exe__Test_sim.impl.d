test/test_sim.ml: Alcotest Array Engine Float Hashtbl Heap List Option QCheck QCheck_alcotest Resource Rng Series Sim Stats
