test/test_optimizer.ml: Alcotest Array Bridge Card Cascades Catalog Cost Dp Env Float Format Gen Greedy Histogram List Optimizer Plan Printf QCheck QCheck_alcotest Query Relset Sim String
