test/test_rowexec.ml: Alcotest Array Expr Operator QCheck QCheck_alcotest Relation Rowexec Schema Sim Table Tuple Value
