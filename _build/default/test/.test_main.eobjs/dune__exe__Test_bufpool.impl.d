test/test_bufpool.ml: Alcotest Array Bufpool Dbmem Disk List Policy Pool Printf QCheck QCheck_alcotest Sim
