(* Inside the optimizer: take one SALES-style star query, plan it three
   ways (greedy, budgeted Cascades, exhaustive DP), compare costs and
   memory, then materialise a tiny instance of the warehouse and execute
   the plans for real to prove they return identical results.

     dune exec examples/optimizer_explore.exe *)

open Optimizer

(* An 8-dimension star so the exhaustive DP baseline is feasible. *)
let dims = 8

let catalog () =
  let cat = Catalog.create () in
  for d = 0 to dims - 1 do
    let name = Printf.sprintf "dim%d" d in
    let rows = float_of_int (1000 * (d + 1)) in
    Catalog.add_table cat
      {
        Catalog.tbl_name = name;
        rows;
        columns =
          [
            Catalog.int_column (name ^ "_key") ~distinct:rows;
            {
              (Catalog.int_column "attr" ~distinct:100.) with
              Catalog.min_value = 0;
              max_value = 99;
            };
          ];
        indexes =
          [ { Catalog.idx_name = name ^ "_pk"; idx_columns = [ name ^ "_key" ];
              clustered = true } ];
      }
  done;
  Catalog.add_table cat
    {
      Catalog.tbl_name = "orders";
      rows = 5_000_000.;
      columns =
        (Catalog.int_column "orders_key" ~distinct:5_000_000.
        :: List.init dims (fun d ->
               Catalog.int_column
                 (Printf.sprintf "dim%d_key" d)
                 ~distinct:(float_of_int (1000 * (d + 1)))))
        @ [ Catalog.int_column "amount" ~distinct:10_000. ];
      indexes = [];
    };
  cat

let query () =
  Query.make ~id:"explore#1"
    ~rels:(("orders", "o") :: List.init dims (fun d ->
               (Printf.sprintf "dim%d" d, Printf.sprintf "d%d" d)))
    ~preds:
      (List.init dims (fun d ->
           {
             Query.jleft = 0;
             jlcol = Printf.sprintf "dim%d_key" d;
             jright = d + 1;
             jrcol = Printf.sprintf "dim%d_key" d;
             jsel = 1.0 /. float_of_int (1000 * (d + 1));
           }))
    ~filters:
      [
        { Query.frel = 1; fcol = "attr"; fop = Query.Le; fvalue = 29; fsel = 0.3 };
        { Query.frel = 2; fcol = "attr"; fop = Query.Le; fvalue = 49; fsel = 0.5 };
      ]
    ~agg:(Some { Query.group_by = [ (1, "attr") ]; sum_cols = [ (0, "amount") ] })

let () =
  let cat = catalog () in
  let q = query () in
  Format.printf "%a@." Query.pp q;
  let card = Card.create cat q in
  let model = Cost.default in

  (* 1. Greedy left-deep heuristic: instant, decent. *)
  let greedy = Greedy.plan model card in
  Printf.printf "\ngreedy left-deep:      cost %12.0f   grant %s\n"
    (Plan.total_cost greedy)
    (Dbmem.Units.bytes_to_string (Plan.grant_bytes greedy));

  (* 2. Cascades with a small effort budget (what an overloaded server
     would do). *)
  let budgeted =
    match
      Cascades.optimize
        ~params:{ Cascades.default_params with Cascades.max_tasks = 300; min_tasks = 300 }
        ~env:Env.null model cat q
    with
    | Ok r -> r
    | Error _ -> assert false
  in
  Printf.printf "cascades (300 tasks):  cost %12.0f   memory %s, %d groups\n"
    (Plan.total_cost budgeted.Cascades.plan)
    (Dbmem.Units.bytes_to_string budgeted.Cascades.stats.Cascades.allocated_bytes)
    budgeted.Cascades.stats.Cascades.groups;

  (* 3. Cascades run to completion: must equal the DP optimum. *)
  let complete =
    match
      Cascades.optimize
        ~params:{ Cascades.default_params with Cascades.max_tasks = 5_000_000; min_tasks = 5_000_000 }
        ~env:Env.null model cat q
    with
    | Ok r -> r
    | Error _ -> assert false
  in
  let dp = Dp.optimize model card in
  Printf.printf "cascades (complete):   cost %12.0f   memory %s, %d groups\n"
    (Plan.total_cost complete.Cascades.plan)
    (Dbmem.Units.bytes_to_string complete.Cascades.stats.Cascades.allocated_bytes)
    complete.Cascades.stats.Cascades.groups;
  Printf.printf "dp (System R):         cost %12.0f   (equal to complete Cascades: %b)\n"
    (Plan.total_cost dp)
    (Float.abs (Plan.total_cost dp -. Plan.total_cost complete.Cascades.plan) < 1e-6);

  Format.printf "\noptimal plan:@.%a@." Plan.pp complete.Cascades.plan;

  (* 4. Execute all three on a materialised micro-instance and compare. *)
  let inst = Bridge.materialize (Sim.Rng.create 7) cat ~scale:0.01 ~cap:80 () in
  let check name plan =
    match Bridge.validate inst q plan with
    | Ok () -> Printf.printf "row-level validation, %-20s OK\n" (name ^ ":")
    | Error e -> Printf.printf "row-level validation, %-20s FAILED: %s\n" (name ^ ":") e
  in
  print_newline ();
  check "greedy" greedy;
  check "budgeted cascades" budgeted.Cascades.plan;
  check "complete cascades" complete.Cascades.plan;
  check "dp" dp;

  let result = Rowexec.Operator.execute (Bridge.to_rowexec inst q dp) in
  Format.printf "@.result of the optimal plan on the micro-instance:@.%a@."
    (Relation.Table.pp ~max_rows:10) result
