(* Quickstart: build the simulated DBMS, run the SALES benchmark for ten
   minutes of virtual time with ten clients, and print what happened.

     dune exec examples/quickstart.exe *)

let () =
  (* A server with the paper's configuration: 8 CPUs, 4 GiB of memory,
     compilation throttling enabled. *)
  let result =
    Server.Experiment.run ~clients:10 ~warmup:120. ~measure:600. ~slice:60. ()
  in
  Format.printf "%a@." Server.Experiment.pp_summary result;
  print_newline ();
  Server.Report.table ~header:[ "minute"; "completions" ]
    (Array.to_list
       (Array.mapi
          (fun i (_, v) -> [ string_of_int (i + 1); Printf.sprintf "%.0f" v ])
          result.Server.Experiment.slices));
  print_newline ();
  (* The same run without throttling, for contrast. *)
  let baseline =
    Server.Experiment.run
      ~config:(Server.Config.unthrottled ())
      ~clients:10 ~warmup:120. ~measure:600. ~slice:60. ()
  in
  Printf.printf "throttled:   %.1f completions/min, %d errors\n"
    result.Server.Experiment.mean_per_slice result.Server.Experiment.total_errors;
  Printf.printf "unthrottled: %.1f completions/min, %d errors\n"
    baseline.Server.Experiment.mean_per_slice baseline.Server.Experiment.total_errors;
  Printf.printf "uplift: %+.0f%%\n"
    (100. *. Server.Experiment.uplift result baseline)
