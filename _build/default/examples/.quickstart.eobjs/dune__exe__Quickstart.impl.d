examples/quickstart.ml: Array Format Printf Server
