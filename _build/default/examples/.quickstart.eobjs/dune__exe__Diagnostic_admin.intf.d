examples/diagnostic_admin.mli:
