examples/optimizer_explore.mli:
