examples/optimizer_explore.ml: Bridge Card Cascades Catalog Cost Dbmem Dp Env Float Format Greedy List Optimizer Plan Printf Query Relation Rowexec Sim
