examples/throttle_trace.mli:
