examples/quickstart.mli:
