examples/broker_pressure.mli:
