examples/broker_pressure.ml: Dbmem List Printf Qcore Server Sim
