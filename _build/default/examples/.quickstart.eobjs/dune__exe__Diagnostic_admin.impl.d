examples/diagnostic_admin.ml: Array Format List Optimizer Printf Qcore Server Sim Workload
