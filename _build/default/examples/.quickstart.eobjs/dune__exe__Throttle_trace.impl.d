examples/throttle_trace.ml: Dbmem Format Printf Qcore Sim
