(* The Memory Broker on its own: three synthetic subcomponents share
   1 GiB — a cache that grows to fill whatever is free, a steady consumer,
   and a bursty one. Watch the broker detect the burst from its allocation
   trend, flip the system into pressure mode, and squeeze the cache.

     dune exec examples/broker_pressure.exe *)

let mib = Dbmem.Units.mib

let () =
  let eng = Sim.Engine.create ~seed:3 () in
  let manager = Dbmem.Manager.create ~total:(Dbmem.Units.gib 1) () in
  let cache = Dbmem.Manager.create_clerk manager "cache" in
  let steady = Dbmem.Manager.create_clerk manager "steady" in
  let bursty = Dbmem.Manager.create_clerk manager "bursty" in
  let broker = Qcore.Broker.create eng manager Qcore.Broker.default_config in

  (* The cache obeys its broker verdicts: grow opportunistically, release
     down to target when told to shrink. *)
  let cache_component =
    Qcore.Broker.register broker ~name:"cache" ~clerk:cache ~weight:1.0
      ~notify:(fun n ->
        match n.Qcore.Broker.verdict with
        | Qcore.Broker.Must_shrink ->
            let excess = Dbmem.Manager.clerk_used cache - n.Qcore.Broker.target in
            if excess > 0 then Dbmem.Manager.free cache excess
        | Qcore.Broker.Can_grow ->
            let room = n.Qcore.Broker.target - Dbmem.Manager.clerk_used cache in
            if room > 0 then ignore (Dbmem.Manager.alloc cache (min room (mib 64)))
        | Qcore.Broker.Hold_rate -> ())
      ()
  in
  ignore (Qcore.Broker.register broker ~name:"steady" ~clerk:steady ());
  let bursty_component = Qcore.Broker.register broker ~name:"bursty" ~clerk:bursty () in
  Qcore.Broker.start broker;

  Dbmem.Manager.alloc_exn steady (mib 200);

  (* The burst: +60 MiB per second from t=20 to t=32, released at t=50. *)
  Sim.Engine.spawn eng ~name:"burst" (fun () ->
      Sim.Engine.sleep 20.;
      for _ = 1 to 12 do
        (match Dbmem.Manager.alloc bursty (mib 60) with
        | Ok () -> ()
        | Error `Out_of_memory -> print_endline "  !! burst allocation failed");
        Sim.Engine.sleep 1.0
      done;
      Sim.Engine.sleep 18.;
      Dbmem.Manager.free_all bursty);

  (* Observer: one row per 4 seconds. *)
  let rows = ref [] in
  ignore
    (Sim.Engine.every eng ~interval:4.0 (fun () ->
         let verdict =
           match Qcore.Broker.last_notification cache_component with
           | Some n -> (
               match n.Qcore.Broker.verdict with
               | Qcore.Broker.Can_grow -> "grow"
               | Qcore.Broker.Hold_rate -> "hold"
               | Qcore.Broker.Must_shrink -> "SHRINK")
           | None -> "-"
         in
         rows :=
           [
             Printf.sprintf "%.0f" (Sim.Engine.now eng);
             Dbmem.Units.bytes_to_string (Dbmem.Manager.clerk_used cache);
             Dbmem.Units.bytes_to_string (Dbmem.Manager.clerk_used bursty);
             Dbmem.Units.bytes_to_string (Qcore.Broker.target cache_component);
             Dbmem.Units.bytes_to_string (Qcore.Broker.target bursty_component);
             verdict;
             (if Qcore.Broker.under_pressure broker then "YES" else "no");
           ]
           :: !rows));

  Sim.Engine.run eng ~until:80.;
  Server.Report.table
    ~header:[ "t (s)"; "cache"; "bursty"; "cache target"; "bursty target";
              "cache verdict"; "pressure" ]
    (List.rev !rows);
  print_newline ();
  print_endline
    "The broker spots the burst's allocation trend before memory is actually\n\
     exhausted, declares pressure, and tells the cache to shrink; when the\n\
     burst releases its memory the cache is allowed to grow back."
