lib/server/experiment.mli: Config Format Optimizer Sim Workload
