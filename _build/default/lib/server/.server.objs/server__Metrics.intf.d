lib/server/metrics.mli: Dbmem Format Sim
