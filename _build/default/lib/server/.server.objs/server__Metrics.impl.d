lib/server/metrics.ml: Array Dbmem Format List Sim
