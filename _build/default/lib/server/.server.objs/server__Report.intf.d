lib/server/report.mli: Experiment
