lib/server/dbms.ml: Bufpool Config Dbmem Execsim Fun Metrics Optimizer Plancache Qcore Sim
