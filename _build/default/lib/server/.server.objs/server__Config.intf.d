lib/server/config.mli: Bufpool Execsim Format Optimizer Qcore
