lib/server/report.ml: Array Buffer Dbmem Experiment Float List Printf String
