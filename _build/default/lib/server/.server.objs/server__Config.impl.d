lib/server/config.ml: Bufpool Dbmem Execsim Format Optimizer Qcore
