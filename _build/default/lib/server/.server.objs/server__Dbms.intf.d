lib/server/dbms.mli: Bufpool Config Dbmem Execsim Metrics Optimizer Plancache Qcore Sim
