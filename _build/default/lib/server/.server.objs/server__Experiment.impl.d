lib/server/experiment.ml: Array Bufpool Config Dbmem Dbms Execsim Format List Metrics Plancache Printexc Printf Sim Workload
