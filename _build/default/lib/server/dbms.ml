type t = {
  eng : Sim.Engine.t;
  cfg : Config.t;
  cat : Optimizer.Catalog.t;
  manager : Dbmem.Manager.t;
  broker : Qcore.Broker.t;
  gov : Qcore.Compile_gov.t;
  pool : Bufpool.Pool.t;
  disk : Bufpool.Disk.t;
  cache : Plancache.Cache.t;
  grants : Execsim.Grant.t;
  cpu : Execsim.Cpu.t;
  metrics : Metrics.t;
  exec_resources : Execsim.Runner.resources;
  clerk_list : (string * Dbmem.Manager.clerk) list;
}

let create eng cfg cat =
  let manager = Dbmem.Manager.create ~total:cfg.Config.memory_bytes () in
  let pool_clerk = Dbmem.Manager.create_clerk manager "bufpool" in
  let cache_clerk = Dbmem.Manager.create_clerk manager "plancache" in
  let compile_clerk = Dbmem.Manager.create_clerk manager "compile" in
  let exec_clerk = Dbmem.Manager.create_clerk manager "execution" in
  let disk =
    Bufpool.Disk.create eng ~spindles:cfg.Config.disk_spindles
      ~seek_s:cfg.Config.disk_seek_s
      ~throughput_bytes_per_s:cfg.Config.disk_throughput
  in
  let pool =
    Bufpool.Pool.create eng manager ~clerk:pool_clerk ~disk
      ~page_bytes:cfg.Config.page_bytes ~policy:cfg.Config.pool_policy
  in
  let cache = Plancache.Cache.create manager ~clerk:cache_clerk in
  let workspace =
    int_of_float (cfg.Config.workspace_frac *. float_of_int cfg.Config.memory_bytes)
  in
  let grants =
    Execsim.Grant.create eng manager ~clerk:exec_clerk ~total:workspace
      ~max_query_frac:cfg.Config.grant_max_query_frac
      ~timeout:cfg.Config.grant_timeout ()
  in
  let cpu = Execsim.Cpu.create eng ~cores:cfg.Config.cpus () in
  let gov =
    Qcore.Compile_gov.create eng manager ~clerk:compile_clerk
      ~cpus:cfg.Config.cpus ~config:cfg.Config.throttle
      ~enabled:cfg.Config.throttle_enabled ()
  in
  (* Caches donate under manager pressure: plan cache first, pool second. *)
  Dbmem.Manager.register_donor manager ~clerk:cache_clerk ~priority:0
    ~shrink:(fun n -> Plancache.Cache.shrink cache n);
  Dbmem.Manager.register_donor manager ~clerk:pool_clerk ~priority:1
    ~shrink:(fun n -> Bufpool.Pool.shrink pool n);
  (* Broker components and their reactions to verdicts. *)
  let broker = Qcore.Broker.create eng manager cfg.Config.broker in
  let _pool_comp =
    Qcore.Broker.register broker ~name:"bufpool" ~clerk:pool_clerk ~weight:1.5
      ~min_bytes:cfg.Config.min_pool_bytes
      ~demand:(fun () -> Bufpool.Pool.demand_hint pool)
      ~notify:(fun n ->
        match n.Qcore.Broker.verdict with
        | Qcore.Broker.Must_shrink ->
            ignore (Bufpool.Pool.shrink_to pool n.Qcore.Broker.target)
        | Qcore.Broker.Hold_rate | Qcore.Broker.Can_grow -> ())
      ()
  in
  let _cache_comp =
    Qcore.Broker.register broker ~name:"plancache" ~clerk:cache_clerk ~weight:0.3
      ~notify:(fun n ->
        match n.Qcore.Broker.verdict with
        | Qcore.Broker.Must_shrink ->
            let excess = Plancache.Cache.bytes cache - n.Qcore.Broker.target in
            if excess > 0 then ignore (Plancache.Cache.shrink cache excess)
        | Qcore.Broker.Hold_rate | Qcore.Broker.Can_grow -> ())
      ()
  in
  let _compile_comp =
    Qcore.Broker.register broker ~name:"compile" ~clerk:compile_clerk ~weight:0.6
      ~min_bytes:(Dbmem.Units.mib 512)
      ~notify:(fun n -> Qcore.Compile_gov.on_notification gov n)
      ()
  in
  (* Execution memory is registered for accounting and target computation,
     but the resource semaphore keeps its static size: shrinking it under a
     queued large request would strand the queue head (grants are trimmed
     per query and spill instead). *)
  let _exec_comp =
    Qcore.Broker.register broker ~name:"execution" ~clerk:exec_clerk ~weight:1.2
      ~min_bytes:cfg.Config.min_workspace_bytes ()
  in
  let metrics = Metrics.create eng in
  let exec_resources =
    {
      Execsim.Runner.eng;
      cpu;
      pool;
      disk;
      grants;
      rng = Sim.Rng.split (Sim.Engine.rng eng);
    }
  in
  {
    eng;
    cfg;
    cat;
    manager;
    broker;
    gov;
    pool;
    disk;
    cache;
    grants;
    cpu;
    metrics;
    exec_resources;
    clerk_list =
      [
        ("bufpool", pool_clerk);
        ("plancache", cache_clerk);
        ("compile", compile_clerk);
        ("execution", exec_clerk);
      ];
  }

let start t =
  Qcore.Broker.start t.broker;
  Metrics.watch_memory t.metrics ~interval:t.cfg.Config.metrics_interval t.clerk_list

(* Governed compilation: the Cascades environment reports allocations to
   the governor (which may block at gateways or fail), burns CPU on the
   shared pool, and asks the governor whether the broker predicts compile-
   memory exhaustion. *)
let compile t q =
  let session = Qcore.Compile_gov.begin_compile t.gov in
  let env =
    {
      Optimizer.Env.alloc =
        (fun n ->
          match Qcore.Compile_gov.alloc session n with
          | Ok () -> ()
          | Error (Qcore.Compile_gov.Gateway_timeout m) ->
              raise (Optimizer.Env.Aborted (Optimizer.Env.Gateway_timeout m))
          | Error Qcore.Compile_gov.Out_of_memory ->
              raise (Optimizer.Env.Aborted Optimizer.Env.Out_of_memory));
      cpu = (fun s -> Execsim.Cpu.busy t.cpu s);
      should_stop = (fun () -> Qcore.Compile_gov.should_stop_early t.gov);
    }
  in
  let started = Sim.Engine.now t.eng in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Metrics.record_compile_peak t.metrics (Qcore.Compile_gov.peak session);
        Qcore.Compile_gov.end_compile session)
      (fun () ->
        Optimizer.Cascades.optimize ~params:t.cfg.Config.optimizer_params ~env
          t.cfg.Config.cost_model t.cat q)
  in
  match result with
  | Ok r ->
      let elapsed = Sim.Engine.now t.eng -. started in
      Ok (r, elapsed)
  | Error reason -> Error reason

let submit t q =
  let compile_result =
    match Plancache.Cache.lookup t.cache q.Optimizer.Query.qid with
    | Some plan ->
        Metrics.record_cache_hit t.metrics;
        Ok (plan, 0.)
    | None -> (
        match compile t q with
        | Ok (r, elapsed) ->
            let compile_cost =
              float_of_int r.Optimizer.Cascades.stats.Optimizer.Cascades.tasks
              *. t.cfg.Config.optimizer_params.Optimizer.Cascades.task_cpu
            in
            Plancache.Cache.insert t.cache ~key:q.Optimizer.Query.qid
              ~plan:r.Optimizer.Cascades.plan ~compile_cost;
            Ok (r.Optimizer.Cascades.plan, elapsed)
        | Error Optimizer.Env.Out_of_memory ->
            Metrics.record_error t.metrics Metrics.Compile_oom;
            Error Metrics.Compile_oom
        | Error (Optimizer.Env.Gateway_timeout _) ->
            Metrics.record_error t.metrics Metrics.Gateway_timeout;
            Error Metrics.Gateway_timeout
        | Error Optimizer.Env.Cancelled ->
            Metrics.record_error t.metrics Metrics.Compile_oom;
            Error Metrics.Compile_oom)
  in
  match compile_result with
  | Error e -> Error e
  | Ok (plan, compile_s) -> (
      match Execsim.Runner.run t.exec_resources t.cfg.Config.exec_config plan with
      | Ok outcome ->
          Metrics.record_completion t.metrics ~compile_s
            ~exec_s:outcome.Execsim.Runner.duration;
          Ok ()
      | Error `Grant_timeout ->
          Metrics.record_error t.metrics Metrics.Grant_timeout;
          Error Metrics.Grant_timeout
      | Error `Out_of_memory ->
          Metrics.record_error t.metrics Metrics.Exec_oom;
          Error Metrics.Exec_oom)

let submit_catch t q =
  match submit t q with
  | Ok () -> Ok ()
  | Error e -> Error (Metrics.error_kind_name e)

let engine t = t.eng
let config t = t.cfg
let metrics t = t.metrics
let manager t = t.manager
let broker t = t.broker
let governor t = t.gov
let pool t = t.pool
let disk t = t.disk
let plan_cache t = t.cache
let grants t = t.grants
let cpu t = t.cpu
let catalog t = t.cat
let clerks t = t.clerk_list
