(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and an event queue. Model code runs as
    cooperative {e processes}: ordinary OCaml functions that may call the
    blocking operations below ({!sleep}, {!suspend}); blocking is implemented
    with OCaml effect handlers, so a process reads like straight-line code
    while the engine interleaves many of them on one OS thread.

    Determinism: events at equal times fire in schedule order, and all
    randomness is drawn from the engine's seeded {!Rng.t}, so a run is a pure
    function of its seed. *)

type t

(** Cancellable handle for a scheduled callback. *)
type handle

(** [create ?seed ()] is a fresh engine with clock at [0.]. *)
val create : ?seed:int -> unit -> t

(** Virtual clock, in seconds. *)
val now : t -> float

(** The engine's root random stream (split it per subsystem). *)
val rng : t -> Rng.t

(** {1 Scheduling raw callbacks} *)

(** [schedule t ~delay f] runs [f ()] at [now t +. delay] (default [0.],
    i.e. later in the current instant). [f] must not block; use {!spawn} for
    blocking code. *)
val schedule : t -> ?delay:float -> (unit -> unit) -> handle

(** [cancel h] prevents the callback from firing if it has not fired yet. *)
val cancel : handle -> unit

(** [cancelled h] is [true] once [h] was cancelled (not when it fired). *)
val cancelled : handle -> bool

(** {1 Processes} *)

(** [spawn t ?name ?delay body] starts a new process executing [body ()]
    after [delay] (default [0.]). Exceptions escaping [body] are recorded in
    {!failures} rather than aborting the run. *)
val spawn : t -> ?name:string -> ?delay:float -> (unit -> unit) -> unit

(** [sleep dt] suspends the calling process for [dt] seconds of virtual
    time. Must be called from inside a process. [dt < 0.] is an error. *)
val sleep : float -> unit

(** [suspend f] parks the calling process and calls [f wake]. The process
    resumes, returning [v], when [wake v] is called (from any other
    process/callback). Extra calls to [wake] are ignored. This is the single
    primitive from which waits, timeouts and resources are built. *)
val suspend : (('a -> unit) -> unit) -> 'a

(** [name ()] is the current process name ("" outside a named process). *)
val self_name : unit -> string

(** {1 Running} *)

(** [run t ~until] executes events in time order until the queue is empty or
    the clock would pass [until]. The clock finishes at [min until
    t_last_event]. May be called repeatedly to advance further. *)
val run : t -> until:float -> unit

(** [run_all t] executes until the queue is empty. Beware of self-
    rescheduling periodic events. *)
val run_all : t -> unit

(** Number of events executed so far. *)
val events_executed : t -> int

(** [(process_name, exn, time)] for every exception that escaped a process
    or callback, oldest first. A correct model leaves this empty. *)
val failures : t -> (string * exn * float) list

(** {1 Periodic tasks} *)

(** [every t ?start ~interval f] calls [f ()] at [start] (default
    [now + interval]) and then every [interval] until cancelled. *)
val every : t -> ?start:float -> interval:float -> (unit -> unit) -> handle
