(** Small online/offline statistics helpers used by metrics and reports. *)

(** Online accumulator for count/mean/variance/min/max (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Sample variance (n-1 denominator); [0.] with fewer than two samples. *)
  val variance : t -> float

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val clear : t -> unit
  val pp : Format.formatter -> t -> unit
end

(** Fixed-width bucket histogram over [\[lo, hi)] with overflow buckets. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [bucket_counts t] is [(lower_bound, count)] per bucket, in order,
      including the two overflow buckets with bounds [-inf] and [hi]. *)
  val bucket_counts : t -> (float * int) list

  (** Approximate quantile from bucket midpoints; [q] in [\[0, 1\]]. *)
  val quantile : t -> float -> float

  val pp : Format.formatter -> t -> unit
end

(** [percentile values q] is the exact q-quantile (linear interpolation) of
    [values]; [q] in [\[0, 1\]]. Does not modify [values]. *)
val percentile : float array -> float -> float

(** [mean values] of a nonempty array. *)
val mean : float array -> float
