(* Splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). Small state, good statistical quality, and the
   golden-gamma split operation gives independent child streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value stays nonnegative in a 63-bit native int;
     modulo bias is negligible for the ranges used in the simulator. *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  bits mod n

(* 53 random mantissa bits scaled into [0, 1). *)
let unit_float t =
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let float t x =
  assert (x > 0.);
  unit_float t *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t ~lo ~hi = lo +. (unit_float t *. (hi -. lo))

let exponential t ~mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let gaussian t ~mean ~std =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (std *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~std:sigma)

let lognormal_mean t ~mean ~cv =
  assert (mean > 0. && cv >= 0.);
  if cv = 0. then mean
  else begin
    let sigma2 = log (1.0 +. (cv *. cv)) in
    let mu = log mean -. (sigma2 /. 2.0) in
    lognormal t ~mu ~sigma:(sqrt sigma2)
  end

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let weighted_choice t items =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  assert (total > 0.);
  let x = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted_choice: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest ->
        let acc = acc +. w in
        if x < acc then v else pick acc rest
  in
  pick 0.0 items

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t a k =
  assert (k <= Array.length a);
  let b = Array.copy a in
  shuffle t b;
  Array.sub b 0 k
