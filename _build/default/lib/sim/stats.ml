module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let clear t =
    t.count <- 0;
    t.mean <- 0.;
    t.m2 <- 0.;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.total <- 0.

  let pp ppf t =
    if t.count = 0 then Format.fprintf ppf "n=0"
    else
      Format.fprintf ppf "n=%d mean=%.3g sd=%.3g min=%.3g max=%.3g" t.count
        t.mean (stddev t) t.min t.max
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array; (* counts.(0) = underflow, counts.(n+1) = overflow *)
    mutable total : int;
  }

  let create ~lo ~hi ~buckets =
    assert (hi > lo && buckets > 0);
    {
      lo;
      hi;
      width = (hi -. lo) /. float_of_int buckets;
      counts = Array.make (buckets + 2) 0;
      total = 0;
    }

  let nbuckets t = Array.length t.counts - 2

  let index t x =
    if x < t.lo then 0
    else if x >= t.hi then nbuckets t + 1
    else 1 + int_of_float ((x -. t.lo) /. t.width)

  let add t x =
    let i = Stdlib.min (index t x) (Array.length t.counts - 1) in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let bucket_counts t =
    let n = nbuckets t in
    let rows = ref [] in
    rows := (t.hi, t.counts.(n + 1)) :: !rows;
    for i = n downto 1 do
      rows := (t.lo +. (float_of_int (i - 1) *. t.width), t.counts.(i)) :: !rows
    done;
    (neg_infinity, t.counts.(0)) :: !rows

  let quantile t q =
    assert (q >= 0. && q <= 1.);
    if t.total = 0 then nan
    else begin
      let target = q *. float_of_int t.total in
      let rec scan i acc =
        if i >= Array.length t.counts then t.hi
        else begin
          let acc' = acc +. float_of_int t.counts.(i) in
          if acc' >= target then
            if i = 0 then t.lo
            else if i = Array.length t.counts - 1 then t.hi
            else t.lo +. ((float_of_int (i - 1) +. 0.5) *. t.width)
          else scan (i + 1) acc'
        end
      in
      scan 0 0.
    end

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (lo, n) ->
        if n > 0 then Format.fprintf ppf "%10.3g: %d@," lo n)
      (bucket_counts t);
    Format.fprintf ppf "@]"
end

let percentile values q =
  assert (Array.length values > 0 && q >= 0. && q <= 1.);
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float pos in
  if i >= n - 1 then sorted.(n - 1)
  else begin
    let frac = pos -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

let mean values =
  assert (Array.length values > 0);
  Array.fold_left ( +. ) 0. values /. float_of_int (Array.length values)
