(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic decision in the simulator draws from an explicit [Rng.t]
    so that runs are reproducible from a single seed and independent streams
    (one per client, per subsystem, ...) can be split off without
    correlation. *)

type t

(** [create seed] is a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [split t] is a new generator whose stream is statistically independent
    of the remainder of [t]'s stream. Advances [t]. *)
val split : t -> t

(** [copy t] duplicates the exact current state (same future stream). *)
val copy : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t n] is uniform on [\[0, n)]. Requires [n > 0]. *)
val int : t -> int -> int

(** [float t x] is uniform on [\[0, x)]. Requires [x > 0.]. *)
val float : t -> float -> float

val bool : t -> bool

(** [uniform t ~lo ~hi] is uniform on [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [exponential t ~mean] is an exponential variate with the given mean. *)
val exponential : t -> mean:float -> float

(** [gaussian t ~mean ~std] is a normal variate (Box-Muller). *)
val gaussian : t -> mean:float -> std:float -> float

(** [lognormal t ~mu ~sigma] is [exp] of a normal variate with parameters
    [mu], [sigma] (of the underlying normal). *)
val lognormal : t -> mu:float -> sigma:float -> float

(** [lognormal_mean t ~mean ~cv] is a lognormal variate parameterised by its
    own mean and coefficient of variation — more convenient for workload
    calibration than [mu]/[sigma]. *)
val lognormal_mean : t -> mean:float -> cv:float -> float

(** [choice t a] is a uniformly random element of [a]. Requires [a] nonempty. *)
val choice : t -> 'a array -> 'a

(** [weighted_choice t items] picks proportionally to the (positive)
    weights. Requires a nonempty list with positive total weight. *)
val weighted_choice : t -> (float * 'a) list -> 'a

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample t a k] is [k] distinct elements of [a] ([k <= length a]). *)
val sample : t -> 'a array -> int -> 'a array
