lib/sim/resource.mli: Engine Stats
