lib/sim/series.mli:
