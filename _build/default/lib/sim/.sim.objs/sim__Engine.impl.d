lib/sim/engine.ml: Effect Heap List Logs Option Printexc Rng
