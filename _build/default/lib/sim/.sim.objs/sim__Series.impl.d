lib/sim/series.ml: Array
