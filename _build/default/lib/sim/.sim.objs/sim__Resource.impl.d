lib/sim/resource.ml: Engine Heap List Stats
