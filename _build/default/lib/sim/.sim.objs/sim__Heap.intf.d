lib/sim/heap.mli:
