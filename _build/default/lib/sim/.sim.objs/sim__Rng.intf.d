lib/sim/rng.mli:
