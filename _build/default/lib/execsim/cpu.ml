type t = {
  eng : Sim.Engine.t;
  sem : Sim.Resource.Sem.t;
  ncores : int;
  slice : float;
  created_at : float;
  mutable busy_total : float;
}

let create eng ~cores ?(slice = 0.25) () =
  if cores < 1 then invalid_arg "Cpu.create: cores";
  if slice <= 0. then invalid_arg "Cpu.create: slice";
  {
    eng;
    sem = Sim.Resource.Sem.create eng ~name:"cpu" ~capacity:cores ();
    ncores = cores;
    slice;
    created_at = Sim.Engine.now eng;
    busy_total = 0.;
  }

let busy t seconds =
  if seconds < 0. then invalid_arg "Cpu.busy: negative";
  let remaining = ref seconds in
  while !remaining > 1e-9 do
    (match Sim.Resource.Sem.acquire t.sem ~n:1 () with
    | Sim.Resource.Acquired -> ()
    | Sim.Resource.Timed_out -> assert false);
    let q = Float.min t.slice !remaining in
    Sim.Engine.sleep q;
    Sim.Resource.Sem.release t.sem ~n:1;
    t.busy_total <- t.busy_total +. q;
    remaining := !remaining -. q
  done

let cores t = t.ncores
let busy_seconds t = t.busy_total

let utilization t =
  let elapsed = Sim.Engine.now t.eng -. t.created_at in
  if elapsed <= 0. then 0. else t.busy_total /. elapsed

let queued t = Sim.Resource.Sem.queued t.sem
