lib/execsim/cpu.ml: Float Sim
