lib/execsim/runner.mli: Bufpool Cpu Grant Optimizer Sim
