lib/execsim/cpu.mli: Sim
