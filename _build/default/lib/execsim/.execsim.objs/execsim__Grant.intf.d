lib/execsim/grant.mli: Dbmem Sim
