lib/execsim/runner.ml: Bufpool Cpu Float Fun Grant List Optimizer Sim
