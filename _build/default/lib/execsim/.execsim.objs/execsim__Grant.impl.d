lib/execsim/grant.ml: Dbmem Sim
