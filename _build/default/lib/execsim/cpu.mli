(** Processor pool: [cores] identical CPUs shared by all sessions.

    CPU demand is consumed in small time slices through a FIFO semaphore,
    approximating round-robin scheduling: when runnable work exceeds the
    core count, every consumer slows down proportionally — the saturation
    behaviour behind the paper's "at and beyond the capabilities of the
    hardware" experiments. *)

type t

val create : Sim.Engine.t -> cores:int -> ?slice:float -> unit -> t

(** [busy t s] consumes [s] seconds of CPU, blocking the calling process
    for at least that long (more under contention). *)
val busy : t -> float -> unit

val cores : t -> int

(** Total CPU-seconds executed so far. *)
val busy_seconds : t -> float

(** Utilisation since creation, in [\[0, cores\]] (measured against the
    engine clock). *)
val utilization : t -> float

(** Processes currently waiting for a core. *)
val queued : t -> int
