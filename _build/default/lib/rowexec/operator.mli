(** Physical row operators that execute for real.

    This is the reference execution engine: it materialises genuine result
    tables from genuine data. The throughput simulation never runs rows
    through it (it uses the cost-based [execsim] instead), but tests and
    examples use it to prove that the plans produced by the optimizer are
    semantically correct — every join order and physical algorithm must
    produce the same bag of rows. *)

open Relation

type agg_fn = Count | Sum of int | Min of int | Max of int | Avg of int

type t =
  | Scan of Table.t
  | Filter of Expr.t * t
  | Project of int list * t
  | Nested_loop_join of Expr.t * t * t
      (** predicate over the concatenated (left @ right) tuple *)
  | Hash_join of (int * int) list * t * t
      (** equi-join on [(left_col, right_col)] key pairs *)
  | Merge_join of (int * int) list * t * t
      (** sorts both inputs on the keys, then merges *)
  | Sort of int list * t
  | Hash_aggregate of int list * agg_fn list * t
      (** group-by columns (possibly empty = scalar aggregate) *)
  | Stream_aggregate of int list * agg_fn list * t
      (** requires input sorted on the group columns; sorts are the
          caller's responsibility (tests verify the equivalence) *)
  | Limit of int * t

(** Output schema of an operator tree. *)
val schema : t -> Schema.t

(** Execute the tree, materialising the result. *)
val execute : t -> Table.t

(** Number of operators in the tree. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
