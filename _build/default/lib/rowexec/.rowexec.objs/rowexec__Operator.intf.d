lib/rowexec/operator.mli: Expr Format Relation Schema Table
