lib/rowexec/operator.ml: Array Expr Format Hashtbl List Printf Relation Schema String Table Tuple Value
