open Relation

type agg_fn = Count | Sum of int | Min of int | Max of int | Avg of int

type t =
  | Scan of Table.t
  | Filter of Expr.t * t
  | Project of int list * t
  | Nested_loop_join of Expr.t * t * t
  | Hash_join of (int * int) list * t * t
  | Merge_join of (int * int) list * t * t
  | Sort of int list * t
  | Hash_aggregate of int list * agg_fn list * t
  | Stream_aggregate of int list * agg_fn list * t
  | Limit of int * t

(* ------------------------------------------------------------------ *)
(* Schemas *)

let agg_schema child_schema groups aggs =
  let group_cols =
    List.map
      (fun i ->
        let c = Schema.column child_schema i in
        (c.Schema.cname, c.Schema.cty))
      groups
  in
  let agg_col idx = function
    | Count -> (Printf.sprintf "count_%d" idx, Value.Tint)
    | Sum i ->
        let c = Schema.column child_schema i in
        (Printf.sprintf "sum_%s" c.Schema.cname, c.Schema.cty)
    | Min i ->
        let c = Schema.column child_schema i in
        (Printf.sprintf "min_%s" c.Schema.cname, c.Schema.cty)
    | Max i ->
        let c = Schema.column child_schema i in
        (Printf.sprintf "max_%s" c.Schema.cname, c.Schema.cty)
    | Avg i ->
        let c = Schema.column child_schema i in
        (Printf.sprintf "avg_%s" c.Schema.cname, Value.Tfloat)
  in
  Schema.make (group_cols @ List.mapi agg_col aggs)

let rec schema = function
  | Scan tbl -> Table.schema tbl
  | Filter (_, child) -> schema child
  | Project (idxs, child) -> Schema.project (schema child) idxs
  | Nested_loop_join (_, l, r) | Hash_join (_, l, r) | Merge_join (_, l, r) ->
      Schema.concat (schema l) (schema r)
  | Sort (_, child) -> schema child
  | Hash_aggregate (groups, aggs, child) | Stream_aggregate (groups, aggs, child)
    ->
      agg_schema (schema child) groups aggs
  | Limit (_, child) -> schema child

(* ------------------------------------------------------------------ *)
(* Aggregate accumulators *)

type acc = {
  mutable count : int;
  (* one slot per aggregate function *)
  sums : float array;
  mutable mins : Value.t array;
  mutable maxs : Value.t array;
  int_only : bool array; (* whether the sum has seen only ints *)
}

let make_acc naggs =
  {
    count = 0;
    sums = Array.make naggs 0.;
    mins = Array.make naggs Value.Null;
    maxs = Array.make naggs Value.Null;
    int_only = Array.make naggs true;
  }

let numeric v =
  match v with
  | Value.Int x -> float_of_int x
  | Value.Float x -> x
  | _ -> invalid_arg "aggregate over non-numeric column"

let feed_acc acc aggs tuple =
  acc.count <- acc.count + 1;
  List.iteri
    (fun k fn ->
      match fn with
      | Count -> ()
      | Sum i | Avg i ->
          let v = Tuple.get tuple i in
          acc.sums.(k) <- acc.sums.(k) +. numeric v;
          (match v with Value.Int _ -> () | _ -> acc.int_only.(k) <- false)
      | Min i ->
          let v = Tuple.get tuple i in
          if acc.mins.(k) = Value.Null || Value.compare v acc.mins.(k) < 0 then
            acc.mins.(k) <- v
      | Max i ->
          let v = Tuple.get tuple i in
          if acc.maxs.(k) = Value.Null || Value.compare v acc.maxs.(k) > 0 then
            acc.maxs.(k) <- v)
    aggs

let finish_acc acc aggs =
  List.mapi
    (fun k fn ->
      match fn with
      | Count -> Value.Int acc.count
      | Sum _ ->
          if acc.int_only.(k) then Value.Int (int_of_float acc.sums.(k))
          else Value.Float acc.sums.(k)
      | Avg _ ->
          if acc.count = 0 then Value.Null
          else Value.Float (acc.sums.(k) /. float_of_int acc.count)
      | Min _ -> acc.mins.(k)
      | Max _ -> acc.maxs.(k))
    aggs

(* ------------------------------------------------------------------ *)
(* Execution *)

module Key_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash t = Array.fold_left (fun h v -> (h * 31) + Value.hash v) 17 t
end)

let sort_rows cols rows =
  let cmp a b =
    let rec loop = function
      | [] -> 0
      | i :: rest ->
          let c = Value.compare (Tuple.get a i) (Tuple.get b i) in
          if c <> 0 then c else loop rest
    in
    loop cols
  in
  let copy = Array.copy rows in
  Array.stable_sort cmp copy;
  copy

let key_of cols tuple = Array.of_list (List.map (fun i -> Tuple.get tuple i) cols)

let hash_join keys lrows rrows =
  let lcols = List.map fst keys and rcols = List.map snd keys in
  let index = Key_table.create (max 16 (Array.length rrows)) in
  Array.iter
    (fun r ->
      let k = key_of rcols r in
      (* Rows whose key contains NULL never match. *)
      if not (Array.exists (fun v -> v = Value.Null) k) then
        Key_table.replace index k (r :: (try Key_table.find index k with Not_found -> [])))
    rrows;
  let out = ref [] in
  Array.iter
    (fun l ->
      let k = key_of lcols l in
      if not (Array.exists (fun v -> v = Value.Null) k) then
        match Key_table.find_opt index k with
        | None -> ()
        | Some matches ->
            List.iter (fun r -> out := Tuple.concat l r :: !out) matches)
    lrows;
  Array.of_list (List.rev !out)

let merge_join keys lrows rrows =
  let lcols = List.map fst keys and rcols = List.map snd keys in
  let lsorted = sort_rows lcols lrows and rsorted = sort_rows rcols rrows in
  let compare_keys l r =
    let rec loop ls rs =
      match (ls, rs) with
      | [], [] -> 0
      | li :: lrest, ri :: rrest ->
          let c = Value.compare (Tuple.get l li) (Tuple.get r ri) in
          if c <> 0 then c else loop lrest rrest
      | _ -> assert false
    in
    loop lcols rcols
  in
  let has_null cols row = List.exists (fun i -> Tuple.get row i = Value.Null) cols in
  let nl = Array.length lsorted and nr = Array.length rsorted in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    if has_null lcols lsorted.(!i) then incr i
    else if has_null rcols rsorted.(!j) then incr j
    else begin
      let c = compare_keys lsorted.(!i) rsorted.(!j) in
      if c < 0 then incr i
      else if c > 0 then incr j
      else begin
        (* Equal keys: find the runs on both sides and emit the product. *)
        let i_end = ref (!i + 1) in
        while
          !i_end < nl && compare_keys lsorted.(!i_end) rsorted.(!j) = 0
        do
          incr i_end
        done;
        let j_end = ref (!j + 1) in
        while
          !j_end < nr && compare_keys lsorted.(!i) rsorted.(!j_end) = 0
        do
          incr j_end
        done;
        for a = !i to !i_end - 1 do
          for b = !j to !j_end - 1 do
            out := Tuple.concat lsorted.(a) rsorted.(b) :: !out
          done
        done;
        i := !i_end;
        j := !j_end
      end
    end
  done;
  Array.of_list (List.rev !out)

let aggregate_hash groups aggs rows =
  let table = Key_table.create 64 in
  let order = ref [] in
  Array.iter
    (fun tuple ->
      let k = key_of groups tuple in
      let acc =
        match Key_table.find_opt table k with
        | Some acc -> acc
        | None ->
            let acc = make_acc (List.length aggs) in
            Key_table.add table k acc;
            order := k :: !order;
            acc
      in
      feed_acc acc aggs tuple)
    rows;
  if groups = [] && Key_table.length table = 0 then begin
    (* Scalar aggregate over the empty input still yields one row. *)
    let acc = make_acc (List.length aggs) in
    [| Array.of_list (finish_acc acc aggs) |]
  end
  else
    Array.of_list
      (List.rev_map
         (fun k ->
           let acc = Key_table.find table k in
           Array.append k (Array.of_list (finish_acc acc aggs)))
         !order)

let aggregate_stream groups aggs rows =
  (* Input must arrive sorted on the group columns: group boundaries are
     detected by key change. *)
  let out = ref [] in
  let current_key = ref None in
  let acc = ref (make_acc (List.length aggs)) in
  let flush () =
    match !current_key with
    | None -> ()
    | Some k -> out := Array.append k (Array.of_list (finish_acc !acc aggs)) :: !out
  in
  Array.iter
    (fun tuple ->
      let k = key_of groups tuple in
      (match !current_key with
      | Some prev when Tuple.equal prev k -> ()
      | _ ->
          flush ();
          current_key := Some k;
          acc := make_acc (List.length aggs));
      feed_acc !acc aggs tuple)
    rows;
  flush ();
  if groups = [] && !out = [] then begin
    let acc = make_acc (List.length aggs) in
    [| Array.of_list (finish_acc acc aggs) |]
  end
  else Array.of_list (List.rev !out)

let rec run op =
  match op with
  | Scan tbl -> Table.rows tbl
  | Filter (pred, child) ->
      let rows = run child in
      Array.of_list
        (Array.to_list rows |> List.filter (fun r -> Expr.eval_bool pred r))
  | Project (idxs, child) ->
      Array.map (fun r -> Tuple.project r idxs) (run child)
  | Nested_loop_join (pred, l, r) ->
      let lrows = run l and rrows = run r in
      let out = ref [] in
      Array.iter
        (fun lrow ->
          Array.iter
            (fun rrow ->
              let joined = Tuple.concat lrow rrow in
              if Expr.eval_bool pred joined then out := joined :: !out)
            rrows)
        lrows;
      Array.of_list (List.rev !out)
  | Hash_join (keys, l, r) -> hash_join keys (run l) (run r)
  | Merge_join (keys, l, r) -> merge_join keys (run l) (run r)
  | Sort (cols, child) -> sort_rows cols (run child)
  | Hash_aggregate (groups, aggs, child) -> aggregate_hash groups aggs (run child)
  | Stream_aggregate (groups, aggs, child) ->
      aggregate_stream groups aggs (run child)
  | Limit (n, child) ->
      let rows = run child in
      if Array.length rows <= n then rows else Array.sub rows 0 n

let execute op = Table.of_array (schema op) (run op)

let rec size = function
  | Scan _ -> 1
  | Filter (_, c) | Project (_, c) | Sort (_, c) | Limit (_, c) -> 1 + size c
  | Hash_aggregate (_, _, c) | Stream_aggregate (_, _, c) -> 1 + size c
  | Nested_loop_join (_, l, r) | Hash_join (_, l, r) | Merge_join (_, l, r) ->
      1 + size l + size r

let rec pp ppf op =
  let open Format in
  match op with
  | Scan tbl -> fprintf ppf "Scan(%d rows)" (Table.cardinality tbl)
  | Filter (e, c) -> fprintf ppf "@[<v 2>Filter %a@,%a@]" Expr.pp e pp c
  | Project (idxs, c) ->
      fprintf ppf "@[<v 2>Project [%s]@,%a@]"
        (String.concat ";" (List.map string_of_int idxs))
        pp c
  | Nested_loop_join (e, l, r) ->
      fprintf ppf "@[<v 2>NLJoin %a@,%a@,%a@]" Expr.pp e pp l pp r
  | Hash_join (keys, l, r) ->
      fprintf ppf "@[<v 2>HashJoin %s@,%a@,%a@]"
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d=%d" a b) keys))
        pp l pp r
  | Merge_join (keys, l, r) ->
      fprintf ppf "@[<v 2>MergeJoin %s@,%a@,%a@]"
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d=%d" a b) keys))
        pp l pp r
  | Sort (cols, c) ->
      fprintf ppf "@[<v 2>Sort [%s]@,%a@]"
        (String.concat ";" (List.map string_of_int cols))
        pp c
  | Hash_aggregate (groups, aggs, c) ->
      fprintf ppf "@[<v 2>HashAgg groups=%d aggs=%d@,%a@]" (List.length groups)
        (List.length aggs) pp c
  | Stream_aggregate (groups, aggs, c) ->
      fprintf ppf "@[<v 2>StreamAgg groups=%d aggs=%d@,%a@]"
        (List.length groups) (List.length aggs) pp c
  | Limit (n, c) -> fprintf ppf "@[<v 2>Limit %d@,%a@]" n pp c
