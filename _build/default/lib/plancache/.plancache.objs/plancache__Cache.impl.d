lib/plancache/cache.ml: Dbmem Format Hashtbl Optimizer
