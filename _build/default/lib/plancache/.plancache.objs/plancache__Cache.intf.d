lib/plancache/cache.mli: Dbmem Format Optimizer
