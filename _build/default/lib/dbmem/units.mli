(** Byte-quantity helpers. All memory amounts in the system are [int] bytes
    (63-bit native ints — ample for the 4 GB budgets modelled here). *)

val kib : int -> int
val mib : int -> int
val gib : int -> int
val to_kib : int -> float
val to_mib : int -> float
val to_gib : int -> float

(** Render a byte count with a human-friendly unit, e.g. ["1.50 GiB"]. *)
val pp_bytes : Format.formatter -> int -> unit

val bytes_to_string : int -> string
