let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024
let to_kib n = float_of_int n /. 1024.
let to_mib n = float_of_int n /. (1024. *. 1024.)
let to_gib n = float_of_int n /. (1024. *. 1024. *. 1024.)

let pp_bytes ppf n =
  let f = float_of_int n in
  let abs = Float.abs f in
  if abs >= 1024. *. 1024. *. 1024. then
    Format.fprintf ppf "%.2f GiB" (to_gib n)
  else if abs >= 1024. *. 1024. then Format.fprintf ppf "%.2f MiB" (to_mib n)
  else if abs >= 1024. then Format.fprintf ppf "%.2f KiB" (to_kib n)
  else Format.fprintf ppf "%d B" n

let bytes_to_string n = Format.asprintf "%a" pp_bytes n
