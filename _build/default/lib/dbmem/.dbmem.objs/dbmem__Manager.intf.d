lib/dbmem/manager.mli: Format
