lib/dbmem/manager.ml: Format List Units
