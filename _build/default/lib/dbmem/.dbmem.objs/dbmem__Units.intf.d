lib/dbmem/units.mli: Format
