lib/dbmem/units.ml: Float Format
