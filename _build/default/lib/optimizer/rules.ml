let leaf_alternatives model card i =
  let seq = Plan.seq_scan model card i in
  match Plan.index_scan model card i with
  | Some idx -> [ seq; idx ]
  | None -> [ seq ]

let join_alternatives model card a b =
  let rows = Card.card card (Relset.union a.Plan.rset b.Plan.rset) in
  [
    Plan.hash_join model ~rows ~build:a ~probe:b;
    Plan.hash_join model ~rows ~build:b ~probe:a;
    Plan.nl_join model ~rows ~outer:a ~inner:b;
    Plan.nl_join model ~rows ~outer:b ~inner:a;
    Plan.merge_join model ~rows ~left:a ~right:b;
  ]

let cheapest = function
  | [] -> invalid_arg "Rules.cheapest: no alternatives"
  | first :: rest ->
      List.fold_left
        (fun best p ->
          if Plan.total_cost p < Plan.total_cost best then p else best)
        first rest

let finalize model card plan =
  let q = Card.query card in
  match q.Query.agg with
  | None -> plan
  | Some a ->
      let groups = List.length a.Query.group_by in
      let aggs = 1 + List.length a.Query.sum_cols in
      let rows = Card.group_card card a.Query.group_by ~input:plan.Plan.rows in
      cheapest
        [
          Plan.hash_agg model ~rows ~groups ~aggs plan;
          Plan.stream_agg model ~rows ~groups ~aggs plan;
        ]
