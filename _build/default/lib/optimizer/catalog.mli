(** Catalog: table/column/index metadata and statistics.

    Data is described statistically (row counts, page counts, per-column
    distinct counts and value ranges); the optimizer and the simulated
    executor work entirely from these statistics, which is how they scale
    to the paper's 524 GB data mart. Tiny physical instances can be
    materialised from the same statistics for row-level validation (see
    {!Bridge}). *)

type column = {
  col_name : string;
  col_ty : Relation.Value.ty;
  distinct : float;  (** number of distinct values *)
  min_value : int;  (** for [Tint] columns: inclusive value range *)
  max_value : int;
  avg_width : int;  (** bytes per value, for row-width estimation *)
  histogram : Histogram.t option;
      (** when present, selectivity estimation uses it instead of the
          uniform-distribution assumption *)
}

type index = {
  idx_name : string;
  idx_columns : string list;
  clustered : bool;
}

type table = {
  tbl_name : string;
  rows : float;
  columns : column list;
  indexes : index list;
}

type t

val create : unit -> t
val add_table : t -> table -> unit
val find_table : t -> string -> table
val find_table_opt : t -> string -> table option
val tables : t -> table list

(** [column tbl name] raises [Not_found]. *)
val column : table -> string -> column

(** Estimated row width in bytes (sum of column widths + header). *)
val row_width : table -> int

(** [pages tbl ~page_size] data pages occupied by the table. *)
val pages : table -> page_size:int -> float

(** Total data size of the catalog in bytes. *)
val data_bytes : t -> int

(** [has_index_on tbl col] — any index whose leading column is [col]. *)
val has_index_on : table -> string -> bool

(** Convenience builder for an int column with a dense key range
    [0 .. distinct-1]. *)
val int_column : ?width:int -> string -> distinct:float -> column

(** [with_histogram col values] attaches an equi-depth histogram built from
    the sampled [values] and refreshes the column's distinct count and
    value range from it. *)
val with_histogram : column -> int array -> column

val pp : Format.formatter -> t -> unit
