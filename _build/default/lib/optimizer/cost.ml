type model = {
  page_size : int;
  seq_page_cost : float;
  rand_page_cost : float;
  cpu_tuple_cost : float;
  hash_build_cost : float;
  hash_probe_cost : float;
  sort_cost : float;
  agg_cost : float;
  hash_mem_overhead : float;
  work_mem : int;
}

let default =
  {
    page_size = 8192;
    seq_page_cost = 1.0;
    rand_page_cost = 4.0;
    cpu_tuple_cost = 0.01;
    hash_build_cost = 0.02;
    hash_probe_cost = 0.012;
    sort_cost = 0.012;
    agg_cost = 0.008;
    hash_mem_overhead = 48.;
    work_mem = 64 * 1024 * 1024;
  }

let spill_factor model ~bytes =
  let wm = float_of_int model.work_mem in
  if bytes <= wm then 1.0 else 1.0 +. log (bytes /. wm) /. log 2.0
