(** Cost model for physical operators.

    Costs are abstract units split into an I/O part (page reads, weighted by
    sequential/random access) and a CPU part (per-tuple work). The simulated
    executor later converts these back into wall-clock demand. Constants
    follow the classic System-R / PostgreSQL style defaults. *)

type model = {
  page_size : int;  (** bytes per page for page-count estimates *)
  seq_page_cost : float;
  rand_page_cost : float;
  cpu_tuple_cost : float;  (** per tuple produced / consumed *)
  hash_build_cost : float;  (** per build row *)
  hash_probe_cost : float;  (** per probe row *)
  sort_cost : float;  (** per row * log2(rows) *)
  agg_cost : float;  (** per input row per aggregate *)
  hash_mem_overhead : float;  (** hash table bytes per row beyond the row *)
  work_mem : int;
      (** workspace assumed per operator when costing; hash joins whose
          build side exceeds it are charged spill I/O *)
}

val default : model

(** [spill_factor model ~bytes] is 1.0 when [bytes <= work_mem] and grows
    with the overflow ratio (extra I/O passes). *)
val spill_factor : model -> bytes:float -> float
