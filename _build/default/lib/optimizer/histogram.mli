(** Equi-depth column histograms.

    The uniform-distribution estimates in {!Query.filter_selectivity} are
    the textbook default, but skewed columns mislead them badly. A column
    may carry an equi-depth histogram built from (a sample of) its values;
    when present, selectivity estimation interpolates within buckets of
    equal row count, exactly like production optimizers' statistics
    objects. *)

type t

(** [build ?buckets values] — equi-depth over a non-empty sample
    (default 32 buckets; fewer when the sample is small). The input is not
    modified. *)
val build : ?buckets:int -> int array -> t

(** Number of sampled rows the histogram summarises. *)
val sample_size : t -> int

val n_buckets : t -> int
val min_value : t -> int
val max_value : t -> int

(** Estimated fraction of rows with [value <= v]. *)
val selectivity_le : t -> int -> float

(** Estimated fraction of rows with [value >= v]. *)
val selectivity_ge : t -> int -> float

(** Estimated fraction of rows with [value = v] (bucket density divided by
    the bucket's distinct count). *)
val selectivity_eq : t -> int -> float

val pp : Format.formatter -> t -> unit
