(** Implementation rules shared by every plan-search strategy (Cascades, DP,
    greedy): the physical alternatives for a leaf access and for a join of
    two subplans, and the final aggregation placement. Keeping them in one
    place guarantees that all strategies search the same plan space, so an
    exhaustive Cascades run and the DP baseline must agree on optimal
    cost. *)

(** Access paths for relation [i]: sequential scan, plus an index scan when
    a filtered column has an index. *)
val leaf_alternatives : Cost.model -> Card.t -> int -> Plan.t list

(** Physical joins of two subplans (both hash orientations, both
    nested-loop orientations, merge join). [rows] of the output is computed
    from the union set. *)
val join_alternatives : Cost.model -> Card.t -> Plan.t -> Plan.t -> Plan.t list

(** Cheapest element of a nonempty list of alternatives. *)
val cheapest : Plan.t list -> Plan.t

(** Wrap the final aggregation (cheaper of hash vs stream aggregate) if the
    query has one. *)
val finalize : Cost.model -> Card.t -> Plan.t -> Plan.t
