type bucket = {
  lo : int; (* inclusive *)
  hi : int; (* inclusive *)
  count : int;
  distinct : int;
}

type t = { buckets : bucket array; total : int }

let build ?(buckets = 32) values =
  if Array.length values = 0 then invalid_arg "Histogram.build: empty sample";
  if buckets < 1 then invalid_arg "Histogram.build: buckets";
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let nb = min buckets n in
  let bucket_list = ref [] in
  let start = ref 0 in
  for b = 0 to nb - 1 do
    (* Equi-depth boundaries; the last bucket absorbs the remainder. *)
    let stop = if b = nb - 1 then n else (b + 1) * n / nb in
    if stop > !start then begin
      let lo = sorted.(!start) and hi = sorted.(stop - 1) in
      let distinct = ref 1 in
      for i = !start + 1 to stop - 1 do
        if sorted.(i) <> sorted.(i - 1) then incr distinct
      done;
      bucket_list := { lo; hi; count = stop - !start; distinct = !distinct } :: !bucket_list;
      start := stop
    end
  done;
  { buckets = Array.of_list (List.rev !bucket_list); total = n }

let sample_size t = t.total
let n_buckets t = Array.length t.buckets
let min_value t = t.buckets.(0).lo
let max_value t = t.buckets.(Array.length t.buckets - 1).hi

let clamp s = Float.min 1.0 (Float.max 0.0 s)

let selectivity_le t v =
  let rows = ref 0. in
  Array.iter
    (fun b ->
      if v >= b.hi then rows := !rows +. float_of_int b.count
      else if v >= b.lo then begin
        (* Linear interpolation within the bucket's value range. *)
        let width = float_of_int (b.hi - b.lo + 1) in
        let covered = float_of_int (v - b.lo + 1) in
        rows := !rows +. (float_of_int b.count *. covered /. width)
      end)
    t.buckets;
  clamp (!rows /. float_of_int t.total)

let selectivity_ge t v =
  (* >= v is the complement of <= v-1. *)
  clamp (1.0 -. selectivity_le t (v - 1))

let selectivity_eq t v =
  let rows = ref 0. in
  Array.iter
    (fun b ->
      if v >= b.lo && v <= b.hi then
        rows := !rows +. (float_of_int b.count /. float_of_int (max 1 b.distinct)))
    t.buckets;
  clamp (!rows /. float_of_int t.total)

let pp ppf t =
  Format.fprintf ppf "@[<v>equi-depth histogram (%d rows, %d buckets)@,"
    t.total (Array.length t.buckets);
  Array.iter
    (fun b ->
      Format.fprintf ppf "  [%d, %d] count=%d distinct=%d@," b.lo b.hi b.count
        b.distinct)
    t.buckets;
  Format.fprintf ppf "@]"
