let order card =
  let q = Card.query card in
  let n = Query.n_rels q in
  if n = 1 then [ 0 ]
  else begin
    (* Start at the relation with the fewest filtered rows. *)
    let start = ref 0 in
    for i = 1 to n - 1 do
      if Card.base_rows card i < Card.base_rows card !start then start := i
    done;
    let joined = ref (Relset.singleton !start) in
    let picked = ref [ !start ] in
    while Relset.cardinal !joined < n do
      let best = ref None in
      for i = 0 to n - 1 do
        if not (Relset.mem i !joined) then begin
          let connected =
            Query.preds_between q !joined (Relset.singleton i) <> []
          in
          if connected then begin
            let c = Card.card card (Relset.add i !joined) in
            match !best with
            | Some (_, bc) when bc <= c -> ()
            | _ -> best := Some (i, c)
          end
        end
      done;
      match !best with
      | Some (i, _) ->
          joined := Relset.add i !joined;
          picked := i :: !picked
      | None ->
          (* Disconnected graphs are rejected by [Query.make]. *)
          assert false
    done;
    List.rev !picked
  end

let plan model card =
  match order card with
  | [] -> invalid_arg "Greedy.plan: empty query"
  | first :: rest ->
      let leaf i = Rules.cheapest (Rules.leaf_alternatives model card i) in
      let joined =
        List.fold_left
          (fun acc i ->
            Rules.cheapest (Rules.join_alternatives model card acc (leaf i)))
          (leaf first) rest
      in
      Rules.finalize model card joined
