(** Cardinality estimation for join-graph queries, under the textbook
    uniformity and independence assumptions: the cardinality of a relation
    subset is the product of filtered base cardinalities times the product
    of the selectivities of every join predicate internal to the subset.
    Estimates are memoised per subset. *)

type t

val create : Catalog.t -> Query.t -> t
val query : t -> Query.t

(** Catalog table backing relation [i]. *)
val table_of : t -> int -> Catalog.table

(** Rows of relation [i] after its local filters. *)
val base_rows : t -> int -> float

(** Estimated output cardinality of joining exactly the relations in the
    subset. *)
val card : t -> Relset.t -> float

(** Estimated distinct-value count of a group-by over the given columns,
    capped by the input cardinality. *)
val group_card : t -> (int * string) list -> input:float -> float

(** Output row width in bytes for a subset (sum of member table widths). *)
val width : t -> Relset.t -> int

(** Number of memoised subsets so far (memory proxy for the estimator). *)
val memo_size : t -> int
