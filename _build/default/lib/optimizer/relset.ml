type t = int

let empty = 0
let is_empty t = t = 0

let singleton i =
  if i < 0 || i > 61 then invalid_arg "Relset: index out of range";
  1 lsl i

let mem i t = t land (1 lsl i) <> 0
let add i t = t lor singleton i
let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let subset a b = a land b = a
let equal = Int.equal

let cardinal t =
  let rec loop t acc = if t = 0 then acc else loop (t land (t - 1)) (acc + 1) in
  loop t 0

let full n =
  if n < 0 || n > 62 then invalid_arg "Relset.full";
  if n = 0 then 0 else (1 lsl n) - 1

let fold f t init =
  let rec loop t acc =
    if t = 0 then acc
    else begin
      let low = t land -t in
      let i = ref 0 and v = ref low in
      while !v > 1 do
        v := !v lsr 1;
        incr i
      done;
      loop (t lxor low) (f !i acc)
    end
  in
  loop t init

let members t = List.rev (fold (fun i acc -> i :: acc) t [])
let iter f t = fold (fun i () -> f i) t ()

let min_elt t =
  if t = 0 then invalid_arg "Relset.min_elt: empty";
  let low = t land -t in
  let i = ref 0 and v = ref low in
  while !v > 1 do
    v := !v lsr 1;
    incr i
  done;
  !i

(* Standard descending submask enumeration: sub' = (sub - 1) land t. *)
let first_subset t =
  if t = 0 then None
  else begin
    let s = (t - 1) land t in
    if s = 0 then None else Some s
  end

let next_subset t sub =
  if sub land t <> sub then invalid_arg "Relset.next_subset: not a subset";
  let s = (sub - 1) land t in
  if s = 0 then None else Some s

let iter_strict_subsets t f =
  let rec loop = function
    | None -> ()
    | Some s ->
        f s;
        loop (next_subset t s)
  in
  loop (first_subset t)

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (members t)))
