(** Bridge between the statistics-driven optimizer world and the row-level
    execution engine.

    Given a catalog, [materialize] generates a tiny but referentially
    consistent physical instance of every table (primary keys dense,
    foreign keys in range); [to_rowexec] translates a physical {!Plan.t}
    into a {!Rowexec.Operator.t} over those tables; [reference] builds the
    canonical nested-loop evaluation of the query. Tests use these to prove
    that whatever join order and algorithms the optimizer picks, the result
    bag is unchanged. *)

(** A materialised database instance. *)
type instance

(** [materialize rng cat ~scale ~cap] scales every table's row count by
    [scale], capping at [cap] rows per table (defaults: [cap = 2000]).
    Column naming convention: in table [t], a column named ["t_key"] is its
    dense primary key; a column named ["d_key"] where [d] is another
    catalog table is a foreign key into [d]. *)
val materialize :
  Sim.Rng.t -> Catalog.t -> scale:float -> ?cap:int -> unit -> instance

val table : instance -> string -> Relation.Table.t
val table_names : instance -> string list

(** [to_rowexec inst q plan] — raises [Invalid_argument] if the plan does
    not cover the query's relations. The operator tree applies every filter
    at the leaves, every join predicate at the matching join (residual
    predicates as post-join filters), and the query's aggregation on top
    (row count first, then each SUM column). *)
val to_rowexec : instance -> Query.t -> Plan.t -> Rowexec.Operator.t

(** Canonical evaluation: nested-loop join in relation-index order with all
    predicates applied, then hash aggregation. *)
val reference : instance -> Query.t -> Rowexec.Operator.t

(** [validate inst q plan] executes both and compares result bags. *)
val validate : instance -> Query.t -> Plan.t -> (unit, string) result
