open Relation

type instance = { tables : (string, Table.t) Hashtbl.t }

let table inst name =
  match Hashtbl.find_opt inst.tables name with
  | Some t -> t
  | None -> invalid_arg ("Bridge: no materialised table " ^ name)

let table_names inst =
  Hashtbl.fold (fun k _ acc -> k :: acc) inst.tables [] |> List.sort compare

(* A column named "<t>_key" is the dense primary key of table <t> and a
   foreign key when it appears in any other table. *)
let key_target_of_column all_tables col_name =
  if Filename.check_suffix col_name "_key" then begin
    let target = Filename.chop_suffix col_name "_key" in
    if List.mem target all_tables then Some target else None
  end
  else None

let materialize rng cat ~scale ?(cap = 2000) () =
  let tables = Catalog.tables cat in
  let names = List.map (fun t -> t.Catalog.tbl_name) tables in
  let scaled t =
    max 2 (min cap (int_of_float (t.Catalog.rows *. scale)))
  in
  let scaled_rows =
    List.map (fun t -> (t.Catalog.tbl_name, scaled t)) tables
  in
  let inst = { tables = Hashtbl.create 16 } in
  List.iter
    (fun tbl ->
      let schema =
        Schema.make
          (List.map
             (fun c -> (c.Catalog.col_name, c.Catalog.col_ty))
             tbl.Catalog.columns)
      in
      let spec_of (c : Catalog.column) =
        match key_target_of_column names c.Catalog.col_name with
        | Some target when target = tbl.Catalog.tbl_name -> Datagen.Serial
        | Some target -> Datagen.Foreign_key (List.assoc target scaled_rows)
        | None -> (
            match c.Catalog.col_ty with
            | Value.Tint -> Datagen.Uniform_int (c.Catalog.min_value, c.Catalog.max_value)
            | Value.Tfloat ->
                Datagen.Uniform_float
                  (float_of_int c.Catalog.min_value, float_of_int (c.Catalog.max_value + 1))
            | Value.Tstring ->
                let n = max 1 (min 26 (int_of_float c.Catalog.distinct)) in
                Datagen.Choice (Array.init n (fun i -> Printf.sprintf "v%d" i))
            | Value.Tbool -> Datagen.Flag 0.5)
      in
      let specs = List.map spec_of tbl.Catalog.columns in
      let data =
        Datagen.table rng schema specs ~rows:(List.assoc tbl.Catalog.tbl_name scaled_rows)
      in
      Hashtbl.replace inst.tables tbl.Catalog.tbl_name data)
    tables;
  inst

(* ------------------------------------------------------------------ *)
(* Plan translation *)

let filter_expr schema ~offset (f : Query.filter) =
  let idx = offset + Schema.index_of schema f.Query.fcol in
  let value = Expr.Const (Value.Int f.Query.fvalue) in
  match f.Query.fop with
  | Query.Le -> Expr.(Cmp (Le, Col idx, value))
  | Query.Ge -> Expr.(Cmp (Ge, Col idx, value))
  | Query.Eq -> Expr.(Cmp (Eq, Col idx, value))

let conj = function
  | [] -> Expr.Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc x -> Expr.And (acc, x)) e rest

(* Translation state: operator tree, plus for every covered relation its
   column offset in the output tuple; [arity] is the output tuple width. *)
type sub = {
  op : Rowexec.Operator.t;
  offsets : (int * int) list;
  arity : int;
  schemas : (int * Schema.t) list; (* relation -> its base schema *)
}

let column_index sub (rel, col) =
  let offset = List.assoc rel sub.offsets in
  let schema = List.assoc rel sub.schemas in
  offset + Schema.index_of schema col

let join_sub combine left right =
  {
    op = combine left right;
    offsets =
      left.offsets @ List.map (fun (r, o) -> (r, o + left.arity)) right.offsets;
    arity = left.arity + right.arity;
    schemas = left.schemas @ right.schemas;
  }

let leaf_sub inst q rel =
  let table_name = q.Query.rels.(rel).Query.rtable in
  let data = table inst table_name in
  let schema = Table.schema data in
  let scan = Rowexec.Operator.Scan data in
  let filters = Query.filters_of q rel in
  let op =
    if filters = [] then scan
    else
      Rowexec.Operator.Filter
        (conj (List.map (filter_expr schema ~offset:0) filters), scan)
  in
  { op; offsets = [ (rel, 0) ]; arity = Schema.arity schema; schemas = [ (rel, schema) ] }

(* Key pairs for the join predicates crossing (left, right); each predicate
   yields (left column index, right-local column index). *)
let cross_keys q left right =
  let lset =
    List.fold_left (fun acc (r, _) -> Relset.add r acc) Relset.empty left.offsets
  in
  List.filter_map
    (fun (p : Query.join_pred) ->
      let l_side, l_col, r_side, r_col =
        if Relset.mem p.Query.jleft lset then
          (p.Query.jleft, p.Query.jlcol, p.Query.jright, p.Query.jrcol)
        else (p.Query.jright, p.Query.jrcol, p.Query.jleft, p.Query.jlcol)
      in
      match List.assoc_opt r_side right.offsets with
      | None -> None
      | Some _ ->
          if List.mem_assoc l_side left.offsets then
            Some (column_index left (l_side, l_col), column_index right (r_side, r_col))
          else None)
    q.Query.preds

let rec translate inst q (plan : Plan.t) =
  match plan.Plan.node with
  | Plan.Seq_scan s | Plan.Index_scan s -> leaf_sub inst q s.Plan.srel
  | Plan.Sort c -> translate inst q c
  | Plan.Hash_join (build, probe) ->
      let l = translate inst q build and r = translate inst q probe in
      let keys = cross_keys q l r in
      if keys = [] then
        (* Cross join (should not happen for connected queries): fall back
           to a nested loop with a true predicate. *)
        join_sub
          (fun a b -> Rowexec.Operator.Nested_loop_join (conj [], a.op, b.op))
          l r
      else
        join_sub (fun a b -> Rowexec.Operator.Hash_join (keys, a.op, b.op)) l r
  | Plan.Merge_join (sl, sr) ->
      (* Plan merge joins carry explicit Sort children; the row-level merge
         join sorts internally, so unwrap them. *)
      let unwrap (p : Plan.t) =
        match p.Plan.node with Plan.Sort c -> c | _ -> p
      in
      let l = translate inst q (unwrap sl) and r = translate inst q (unwrap sr) in
      let keys = cross_keys q l r in
      if keys = [] then
        join_sub
          (fun a b -> Rowexec.Operator.Nested_loop_join (conj [], a.op, b.op))
          l r
      else
        join_sub (fun a b -> Rowexec.Operator.Merge_join (keys, a.op, b.op)) l r
  | Plan.Nl_join (outer, inner) ->
      let l = translate inst q outer and r = translate inst q inner in
      let keys = cross_keys q l r in
      let pred =
        conj
          (List.map
             (fun (li, ri) -> Expr.(Cmp (Eq, Col li, Col (ri + l.arity))))
             keys)
      in
      join_sub (fun a b -> Rowexec.Operator.Nested_loop_join (pred, a.op, b.op)) l r
  | Plan.Hash_agg (child, _, _) ->
      let sub = translate inst q child in
      apply_agg q sub ~stream:false
  | Plan.Stream_agg (child, _, _) ->
      let sub = translate inst q child in
      apply_agg q sub ~stream:true

and apply_agg q sub ~stream =
  match q.Query.agg with
  | None -> sub
  | Some a ->
      let groups = List.map (column_index sub) a.Query.group_by in
      let aggs =
        Rowexec.Operator.Count
        :: List.map (fun sc -> Rowexec.Operator.Sum (column_index sub sc)) a.Query.sum_cols
      in
      let op =
        if stream then
          Rowexec.Operator.Stream_aggregate
            (groups, aggs, Rowexec.Operator.Sort (groups, sub.op))
        else Rowexec.Operator.Hash_aggregate (groups, aggs, sub.op)
      in
      (* Aggregation changes the schema: downstream offsets are invalid,
         but aggregation is only ever the plan root. *)
      { sub with op }

(* Without aggregation the output column order depends on the join order;
   project to the canonical relation-index order so results are comparable
   across plans. *)
let canonicalize q sub =
  match q.Query.agg with
  | Some _ -> sub.op
  | None ->
      let idxs =
        List.concat_map
          (fun (rel, offset) ->
            let schema = List.assoc rel sub.schemas in
            List.init (Schema.arity schema) (fun j -> offset + j))
          (List.sort compare sub.offsets)
      in
      Rowexec.Operator.Project (idxs, sub.op)

let to_rowexec inst q plan =
  if not (Plan.well_formed plan ~n_rels:(Query.n_rels q)) then
    invalid_arg "Bridge.to_rowexec: plan does not cover the query";
  canonicalize q (translate inst q plan)

(* ------------------------------------------------------------------ *)
(* Reference evaluation *)

let reference inst q =
  let n = Query.n_rels q in
  let remaining = ref (List.init n (fun i -> i)) in
  let covered = ref Relset.empty in
  let pick () =
    (* Prefer a relation connected to what is already joined. *)
    let connected_first =
      List.find_opt
        (fun i ->
          Relset.is_empty !covered
          || Query.preds_between q !covered (Relset.singleton i) <> [])
        !remaining
    in
    match connected_first with
    | Some i -> i
    | None -> List.hd !remaining
  in
  let take () =
    let i = pick () in
    remaining := List.filter (fun x -> x <> i) !remaining;
    covered := Relset.add i !covered;
    i
  in
  let first = take () in
  let acc = ref (leaf_sub inst q first) in
  while !remaining <> [] do
    let i = take () in
    let right = leaf_sub inst q i in
    let keys = cross_keys q !acc right in
    let pred =
      conj
        (List.map
           (fun (li, ri) -> Expr.(Cmp (Eq, Col li, Col (ri + !acc.arity))))
           keys)
    in
    acc :=
      join_sub
        (fun a b -> Rowexec.Operator.Nested_loop_join (pred, a.op, b.op))
        !acc right
  done;
  match q.Query.agg with
  | Some _ -> (apply_agg q !acc ~stream:false).op
  | None -> canonicalize q !acc

let validate inst q plan =
  let planned = Rowexec.Operator.execute (to_rowexec inst q plan) in
  let expected = Rowexec.Operator.execute (reference inst q) in
  if Table.equal_bag planned expected then Ok ()
  else
    Error
      (Printf.sprintf
         "plan result (%d rows) differs from reference (%d rows) for query %s"
         (Table.cardinality planned) (Table.cardinality expected) q.Query.qid)
