(** Compilation environment: the optimizer's only window onto the outside
    world (memory governor, CPU accounting, pressure signals).

    The search engine calls [alloc] for every memo structure it creates —
    this is what makes compile memory grow with the number of alternatives
    considered, the property the paper's throttling exploits — and [cpu]
    for batches of search work. In the simulated server these are wired to
    {!Qcore.Compile_gov} and the CPU scheduler; in unit tests {!null} makes
    the optimizer pure. *)

type abort_reason =
  | Gateway_timeout of string
  | Out_of_memory
  | Cancelled

(** Raised by [alloc] (or [cpu]) to abandon the compilation. *)
exception Aborted of abort_reason

type t = {
  alloc : int -> unit;  (** meter [n] more bytes of compile memory *)
  cpu : float -> unit;  (** consume simulated CPU seconds *)
  should_stop : unit -> bool;
      (** broker predicts memory exhaustion: wrap up with the best plan *)
}

(** No-op environment (pure optimization). *)
val null : t

(** Environment that counts allocations/CPU into the given refs (tests). *)
val counting : bytes:int ref -> cpu_seconds:float ref -> t

val pp_abort_reason : Format.formatter -> abort_reason -> unit
