type column = {
  col_name : string;
  col_ty : Relation.Value.ty;
  distinct : float;
  min_value : int;
  max_value : int;
  avg_width : int;
  histogram : Histogram.t option;
}

type index = { idx_name : string; idx_columns : string list; clustered : bool }

type table = {
  tbl_name : string;
  rows : float;
  columns : column list;
  indexes : index list;
}

type t = { mutable tables_rev : table list }

let create () = { tables_rev = [] }

let add_table t tbl =
  if List.exists (fun x -> x.tbl_name = tbl.tbl_name) t.tables_rev then
    invalid_arg ("Catalog: duplicate table " ^ tbl.tbl_name);
  if tbl.rows < 0. then invalid_arg "Catalog: negative row count";
  t.tables_rev <- tbl :: t.tables_rev

let tables t = List.rev t.tables_rev

let find_table_opt t name =
  List.find_opt (fun x -> x.tbl_name = name) t.tables_rev

let find_table t name =
  match find_table_opt t name with
  | Some tbl -> tbl
  | None -> raise Not_found

let column tbl name =
  match List.find_opt (fun c -> c.col_name = name) tbl.columns with
  | Some c -> c
  | None -> raise Not_found

let row_header_bytes = 16

let row_width tbl =
  row_header_bytes + List.fold_left (fun acc c -> acc + c.avg_width) 0 tbl.columns

let pages tbl ~page_size =
  let width = float_of_int (row_width tbl) in
  Float.max 1. (tbl.rows *. width /. float_of_int page_size)

let data_bytes t =
  List.fold_left
    (fun acc tbl -> acc + int_of_float (tbl.rows *. float_of_int (row_width tbl)))
    0 (tables t)

let has_index_on tbl col =
  List.exists
    (fun i -> match i.idx_columns with c :: _ -> c = col | [] -> false)
    tbl.indexes

let int_column ?(width = 8) name ~distinct =
  {
    col_name = name;
    col_ty = Relation.Value.Tint;
    distinct;
    min_value = 0;
    max_value = max 0 (int_of_float distinct - 1);
    avg_width = width;
    histogram = None;
  }

let with_histogram col values =
  let h = Histogram.build values in
  let distinct_sample =
    Array.of_list (List.sort_uniq compare (Array.to_list values))
  in
  {
    col with
    histogram = Some h;
    min_value = Histogram.min_value h;
    max_value = Histogram.max_value h;
    distinct = float_of_int (Array.length distinct_sample);
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>catalog (%d tables, %s)@," (List.length (tables t))
    (Dbmem.Units.bytes_to_string (data_bytes t));
  List.iter
    (fun tbl ->
      Format.fprintf ppf "  %-16s %12.0f rows, %d cols, %d indexes@,"
        tbl.tbl_name tbl.rows (List.length tbl.columns)
        (List.length tbl.indexes))
    (tables t);
  Format.fprintf ppf "@]"
