type abort_reason = Gateway_timeout of string | Out_of_memory | Cancelled

exception Aborted of abort_reason

type t = {
  alloc : int -> unit;
  cpu : float -> unit;
  should_stop : unit -> bool;
}

let null =
  { alloc = (fun _ -> ()); cpu = (fun _ -> ()); should_stop = (fun () -> false) }

let counting ~bytes ~cpu_seconds =
  {
    alloc = (fun n -> bytes := !bytes + n);
    cpu = (fun s -> cpu_seconds := !cpu_seconds +. s);
    should_stop = (fun () -> false);
  }

let pp_abort_reason ppf = function
  | Gateway_timeout m -> Format.fprintf ppf "gateway timeout (%s)" m
  | Out_of_memory -> Format.fprintf ppf "out of memory"
  | Cancelled -> Format.fprintf ppf "cancelled"
