(** Greedy left-deep join ordering.

    Fast heuristic used (a) to seed the Cascades memo so a complete plan
    exists from the first moment — the prerequisite for the paper's
    return-best-plan-under-pressure extension — and (b) as the emergency
    fallback plan. *)

(** Left-deep join order: starts from the smallest filtered relation and
    repeatedly joins the connected relation that minimises the intermediate
    cardinality. *)
val order : Card.t -> int list

(** Costed left-deep plan following {!order}, using the cheapest physical
    alternative at each step, with final aggregation applied. *)
val plan : Cost.model -> Card.t -> Plan.t
