lib/optimizer/card.mli: Catalog Query Relset
