lib/optimizer/plan.mli: Card Cost Format Relset
