lib/optimizer/relset.mli: Format
