lib/optimizer/env.ml: Format
