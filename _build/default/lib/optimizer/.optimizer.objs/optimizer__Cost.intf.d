lib/optimizer/cost.mli:
