lib/optimizer/greedy.ml: Card List Query Relset Rules
