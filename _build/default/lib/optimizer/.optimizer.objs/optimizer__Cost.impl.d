lib/optimizer/cost.ml:
