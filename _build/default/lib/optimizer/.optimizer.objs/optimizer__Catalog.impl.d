lib/optimizer/catalog.ml: Array Dbmem Float Format Histogram List Relation
