lib/optimizer/histogram.ml: Array Float Format List
