lib/optimizer/histogram.mli: Format
