lib/optimizer/cascades.mli: Catalog Cost Env Plan Query Stdlib
