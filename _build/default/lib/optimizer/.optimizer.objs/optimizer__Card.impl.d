lib/optimizer/card.ml: Array Catalog Float Hashtbl List Query Relset
