lib/optimizer/bridge.ml: Array Catalog Datagen Expr Filename Hashtbl List Plan Printf Query Relation Relset Rowexec Schema Table Value
