lib/optimizer/dp.ml: Array Card List Plan Printf Query Relset Rules
