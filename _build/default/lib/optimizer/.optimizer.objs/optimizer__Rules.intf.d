lib/optimizer/rules.mli: Card Cost Plan
