lib/optimizer/env.mli: Format
