lib/optimizer/query.ml: Array Buffer Catalog Float Format Histogram List Printf Relset String
