lib/optimizer/greedy.mli: Card Cost Plan
