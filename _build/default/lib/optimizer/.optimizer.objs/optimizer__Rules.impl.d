lib/optimizer/rules.ml: Card List Plan Query Relset
