lib/optimizer/plan.ml: Card Catalog Cost Float Format List Printf Query Relset
