lib/optimizer/relset.ml: Format Int List String
