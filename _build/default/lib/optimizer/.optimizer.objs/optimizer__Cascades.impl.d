lib/optimizer/cascades.ml: Array Card Cost Env Greedy Hashtbl List Plan Query Relset Rules
