lib/optimizer/bridge.mli: Catalog Plan Query Relation Rowexec Sim
