lib/optimizer/dp.mli: Card Cost Plan
