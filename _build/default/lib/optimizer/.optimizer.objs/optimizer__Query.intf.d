lib/optimizer/query.mli: Catalog Format Relset
