lib/optimizer/catalog.mli: Format Histogram Relation
