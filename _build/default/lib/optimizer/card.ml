type t = {
  cat : Catalog.t;
  q : Query.t;
  tables : Catalog.table array;
  base : float array;
  widths : int array;
  memo : (Relset.t, float) Hashtbl.t;
}

let create cat q =
  let n = Query.n_rels q in
  let tables =
    Array.init n (fun i -> Catalog.find_table cat q.Query.rels.(i).Query.rtable)
  in
  let base =
    Array.init n (fun i ->
        Float.max 1.0 (tables.(i).Catalog.rows *. Query.filter_sel q i))
  in
  let widths = Array.map Catalog.row_width tables in
  { cat; q; tables; base; widths; memo = Hashtbl.create 256 }

let query t = t.q
let table_of t i = t.tables.(i)
let base_rows t i = t.base.(i)

let card t s =
  match Hashtbl.find_opt t.memo s with
  | Some c -> c
  | None ->
      let rows = Relset.fold (fun i acc -> acc *. t.base.(i)) s 1.0 in
      let sel =
        List.fold_left
          (fun acc (p : Query.join_pred) ->
            if Relset.mem p.Query.jleft s && Relset.mem p.Query.jright s then
              acc *. p.Query.jsel
            else acc)
          1.0 t.q.Query.preds
      in
      let c = Float.max 1.0 (rows *. sel) in
      Hashtbl.replace t.memo s c;
      c

let group_card t group_by ~input =
  let distinct_product =
    List.fold_left
      (fun acc (rel, col_name) ->
        let col = Catalog.column t.tables.(rel) col_name in
        acc *. Float.max 1.0 col.Catalog.distinct)
      1.0 group_by
  in
  Float.max 1.0 (Float.min input distinct_product)

let width t s = Relset.fold (fun i acc -> acc + t.widths.(i)) s 0

let memo_size t = Hashtbl.length t.memo
