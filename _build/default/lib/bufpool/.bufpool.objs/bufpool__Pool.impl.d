lib/bufpool/pool.ml: Dbmem Disk Format Hashtbl Policy Sim
