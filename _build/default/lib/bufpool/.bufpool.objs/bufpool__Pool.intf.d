lib/bufpool/pool.mli: Dbmem Disk Format Policy Sim
