lib/bufpool/disk.mli: Sim
