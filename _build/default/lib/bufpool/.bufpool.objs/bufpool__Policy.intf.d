lib/bufpool/policy.mli:
