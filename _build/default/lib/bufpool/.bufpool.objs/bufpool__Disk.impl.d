lib/bufpool/disk.ml: Sim
