lib/bufpool/policy.ml: Hashtbl Queue Sim
