lib/workload/client.ml: Optimizer Sim Template
