lib/workload/template.mli: Optimizer Sim
