lib/workload/snowflake.ml: Array Catalog List Optimizer Printf Query Relation Sim Template
