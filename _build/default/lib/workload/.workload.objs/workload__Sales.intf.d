lib/workload/sales.mli: Optimizer Template
