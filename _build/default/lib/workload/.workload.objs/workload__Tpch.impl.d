lib/workload/tpch.ml: Catalog List Optimizer Printf Query Relation Sim Template
