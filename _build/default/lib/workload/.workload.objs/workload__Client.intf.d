lib/workload/client.mli: Optimizer Sim Template
