lib/workload/snowflake.mli: Optimizer Template
