lib/workload/sales.ml: Array Catalog List Optimizer Printf Query Relation Sim Template
