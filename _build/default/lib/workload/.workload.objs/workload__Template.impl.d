lib/workload/template.ml: List Optimizer Sim
