lib/workload/tpch.mli: Optimizer Template
