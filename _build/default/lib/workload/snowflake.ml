open Optimizer

let fact_table = "sales"

(* Direct dimensions of the fact: (name, rows, pad, indexed_attr, fk to an
   outrigger or None). *)
let direct_dims =
  [
    ("customer", 5_000_000., 160, true, Some "region");
    ("product", 1_600_000., 160, true, Some "brand");
    ("date_dim", 3650., 80, false, None);
    ("supplier", 800_000., 140, true, None);
    ("store", 400_000., 160, true, None);
    ("employee", 600_000., 140, true, None);
    ("promotion", 250_000., 160, true, None);
    ("warehouse", 2_000., 180, false, None);
    ("currency", 200., 80, false, None);
    ("channel", 100., 80, false, None);
    ("carrier", 100., 80, false, None);
    ("payment_type", 50., 80, false, None);
    ("order_status", 20., 80, false, None);
    ("segment", 40., 80, false, None);
  ]

(* Outriggers: (name, rows, fk to the next chain link or None). *)
let outriggers =
  [
    ("region", 500., Some "country");
    ("country", 250., None);
    ("brand", 5_000., Some "category");
    ("category", 200., None);
  ]

let rows_of name =
  match List.find_opt (fun (n, _, _, _, _) -> n = name) direct_dims with
  | Some (_, rows, _, _, _) -> rows
  | None -> (
      match List.find_opt (fun (n, _, _) -> n = name) outriggers with
      | Some (_, rows, _) -> rows
      | None -> invalid_arg ("Snowflake.rows_of: " ^ name))

let fact_rows = 400_000_000.
let date_days = 3650
let measures = [ "quantity"; "revenue"; "cost_amount"; "discount" ]

let mk_table cat ~name ~rows ~pad ~indexed_attr ~fk =
  let columns =
    Catalog.int_column (name ^ "_key") ~distinct:rows
    :: {
         (Catalog.int_column "attr" ~distinct:100.) with
         Catalog.min_value = 0;
         max_value = 99;
       }
    :: (match fk with
       | Some target -> [ Catalog.int_column (target ^ "_key") ~distinct:(rows_of target) ]
       | None -> [])
    @ [
        {
          Catalog.col_name = "pad";
          col_ty = Relation.Value.Tstring;
          distinct = 20.;
          min_value = 0;
          max_value = 19;
          avg_width = pad;
          histogram = None;
        };
      ]
  in
  let indexes =
    { Catalog.idx_name = name ^ "_pk"; idx_columns = [ name ^ "_key" ]; clustered = true }
    ::
    (if indexed_attr then
       [ { Catalog.idx_name = name ^ "_attr"; idx_columns = [ "attr" ]; clustered = false } ]
     else [])
  in
  Catalog.add_table cat { Catalog.tbl_name = name; rows; columns; indexes }

let catalog () =
  let cat = Catalog.create () in
  List.iter
    (fun (name, rows, pad, indexed, fk) ->
      mk_table cat ~name ~rows ~pad ~indexed_attr:indexed ~fk)
    direct_dims;
  List.iter
    (fun (name, rows, fk) -> mk_table cat ~name ~rows ~pad:80 ~indexed_attr:false ~fk)
    outriggers;
  let fact_columns =
    Catalog.int_column "sales_key" ~distinct:fact_rows
    :: List.map
         (fun (name, rows, _, _, _) -> Catalog.int_column (name ^ "_key") ~distinct:rows)
         direct_dims
    @ List.map (fun m -> Catalog.int_column m ~distinct:100_000.) measures
    @ [
        {
          Catalog.col_name = "pad";
          col_ty = Relation.Value.Tstring;
          distinct = 20.;
          min_value = 0;
          max_value = 19;
          avg_width = 1080;
          histogram = None;
        };
      ]
  in
  Catalog.add_table cat
    {
      Catalog.tbl_name = fact_table;
      rows = fact_rows;
      columns = fact_columns;
      indexes =
        [
          { Catalog.idx_name = "sales_date"; idx_columns = [ "date_dim_key" ]; clustered = true };
          { Catalog.idx_name = "sales_pk"; idx_columns = [ "sales_key" ]; clustered = false };
        ];
    };
  cat

(* ------------------------------------------------------------------ *)
(* Templates: always include the snowflaked arms (customer, product),
   date_dim, and a random subset of other direct dimensions; then extend
   the two arms through their outrigger chains. *)

type shape = {
  sname : string;
  extra_dims_lo : int;  (** random direct dims beyond the three core ones *)
  extra_dims_hi : int;
  window_days_lo : int;
  window_days_hi : int;
  chain_depth : int;  (** 1 = one outrigger per arm, 2 = full chains *)
}

let shapes =
  [
    { sname = "f0_region_mix"; extra_dims_lo = 8; extra_dims_hi = 10; window_days_lo = 4; window_days_hi = 9; chain_depth = 2 };
    { sname = "f1_country_rollup"; extra_dims_lo = 9; extra_dims_hi = 11; window_days_lo = 10; window_days_hi = 16; chain_depth = 2 };
    { sname = "f2_brand_share"; extra_dims_lo = 8; extra_dims_hi = 10; window_days_lo = 4; window_days_hi = 12; chain_depth = 2 };
    { sname = "f3_category_trend"; extra_dims_lo = 10; extra_dims_hi = 11; window_days_lo = 14; window_days_hi = 22; chain_depth = 2 };
    { sname = "f4_shallow_arms"; extra_dims_lo = 10; extra_dims_hi = 11; window_days_lo = 5; window_days_hi = 10; chain_depth = 1 };
    { sname = "f5_geo_detail"; extra_dims_lo = 8; extra_dims_hi = 9; window_days_lo = 3; window_days_hi = 7; chain_depth = 2 };
    { sname = "f6_wide_sweep"; extra_dims_lo = 11; extra_dims_hi = 11; window_days_lo = 12; window_days_hi = 20; chain_depth = 2 };
    { sname = "f7_quarter_geo"; extra_dims_lo = 10; extra_dims_hi = 11; window_days_lo = 18; window_days_hi = 26; chain_depth = 1 };
  ]

let core = [ "customer"; "product"; "date_dim" ]

let instantiate_shape shape rng id =
  let extra_count =
    shape.extra_dims_lo
    + Sim.Rng.int rng (shape.extra_dims_hi - shape.extra_dims_lo + 1)
  in
  let optional =
    List.filter (fun (n, _, _, _, _) -> not (List.mem n core)) direct_dims
    |> List.map (fun (n, _, _, _, _) -> n)
  in
  let extra =
    Array.to_list (Sim.Rng.sample rng (Array.of_list optional) extra_count)
  in
  let dims = core @ extra in
  (* The two snowflake arms. *)
  let chains =
    let arm root links = List.filteri (fun i _ -> i < shape.chain_depth) links |> List.map (fun l -> (root, l)) in
    (* (joined-from, table) pairs in chain order. *)
    let customer_arm =
      match arm "customer" [ "region"; "country" ] with
      | [ (a, b) ] -> [ (a, b) ]
      | [ (a, b); (_, c) ] -> [ (a, b); (b, c) ]
      | _ -> []
    in
    let product_arm =
      match arm "product" [ "brand"; "category" ] with
      | [ (a, b) ] -> [ (a, b) ]
      | [ (a, b); (_, c) ] -> [ (a, b); (b, c) ]
      | _ -> []
    in
    customer_arm @ product_arm
  in
  let rel_names = (fact_table :: dims) @ List.map snd chains in
  let rels =
    List.mapi
      (fun i n -> (n, if i = 0 then "f" else n))
      rel_names
  in
  let index_of name =
    let rec find i = function
      | [] -> raise Not_found
      | x :: _ when x = name -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 rel_names
  in
  let star_preds =
    List.map
      (fun d ->
        {
          Query.jleft = 0;
          jlcol = d ^ "_key";
          jright = index_of d;
          jrcol = d ^ "_key";
          jsel = 1.0 /. rows_of d;
        })
      dims
  in
  let chain_preds =
    List.map
      (fun (from_tbl, to_tbl) ->
        {
          Query.jleft = index_of from_tbl;
          jlcol = to_tbl ^ "_key";
          jright = index_of to_tbl;
          jrcol = to_tbl ^ "_key";
          jsel = 1.0 /. rows_of to_tbl;
        })
      chains
  in
  let window =
    shape.window_days_lo
    + Sim.Rng.int rng (shape.window_days_hi - shape.window_days_lo + 1)
  in
  let window_end = window + Sim.Rng.int rng (max 1 (date_days - window)) in
  let filters =
    {
      Query.frel = 0;
      fcol = "date_dim_key";
      fop = Query.Le;
      fvalue = window_end;
      fsel = float_of_int window /. float_of_int date_days;
    }
    :: List.map
         (fun tbl ->
           let v = 9 + Sim.Rng.int rng 50 in
           {
             Query.frel = index_of tbl;
             fcol = "attr";
             fop = Query.Le;
             fvalue = v;
             fsel = float_of_int (v + 1) /. 100.;
           })
         [ "customer"; "product" ]
  in
  let group_src = List.nth (List.map snd chains) (Sim.Rng.int rng (List.length chains)) in
  Query.make
    ~id:(Printf.sprintf "%s#%06d" shape.sname id)
    ~rels
    ~preds:(star_preds @ chain_preds)
    ~filters
    ~agg:
      (Some
         {
           Query.group_by = [ (index_of group_src, "attr") ];
           sum_cols = [ (0, "revenue"); (0, "quantity") ];
         })

let templates () =
  List.map
    (fun shape ->
      { Template.tname = shape.sname; weight = 1.0; instantiate = instantiate_shape shape })
    shapes
