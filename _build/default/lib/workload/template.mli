(** Query templates and the uniquifying instantiation step.

    Following the paper's methodology (§5.1), the load generator takes a
    small set of base queries and "modifies each base query before it is
    submitted to the database server to make it appear unique and to defeat
    plan-caching features": every instantiation draws fresh literals,
    dimension subsets and group-by columns, and stamps a fresh fingerprint.
    A repeat-capable variant reuses fingerprints with some probability, for
    workloads where the plan cache should get hits. *)

type t = {
  tname : string;
  weight : float;  (** relative frequency in the mix *)
  instantiate : Sim.Rng.t -> int -> Optimizer.Query.t;
      (** [instantiate rng instance_id] *)
}

(** [pick rng templates] draws a template by weight. *)
val pick : Sim.Rng.t -> t list -> t

(** [instance rng t ~id] instantiates with a unique fingerprint. *)
val instance : Sim.Rng.t -> t -> id:int -> Optimizer.Query.t
