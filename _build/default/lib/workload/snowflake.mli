(** A snowflaked variant of the SALES warehouse.

    The paper claims the throttling mechanism "handles diverse classes of
    workloads" because blocking is tied to memory allocated rather than to
    fixed points in compilation, "over a wide variety of schema designs"
    (§4.1). SALES is a pure star; this schema normalises two dimension
    chains out of it (customer → region → country and product → brand →
    category), so queries become mixed star/chain join graphs with a
    different memo shape. The benchmark harness runs the same
    throttled-vs-unthrottled comparison on it. *)

val catalog : unit -> Optimizer.Catalog.t
val fact_table : string

(** Eight templates; instantiations join the fact to 10-13 direct
    dimensions and extend the customer and product arms through their
    snowflake chains, staying in the paper's 15-20-join band. *)
val templates : unit -> Template.t list
