type t = {
  tname : string;
  weight : float;
  instantiate : Sim.Rng.t -> int -> Optimizer.Query.t;
}

let pick rng templates =
  Sim.Rng.weighted_choice rng (List.map (fun t -> (t.weight, t)) templates)

let instance rng t ~id = t.instantiate rng id
