type slots = Per_cpu of int | Total of int

type level = {
  lname : string;
  base_threshold : int;
  slots : slots;
  timeout : float;
  fraction : float;
  min_threshold : int;
  max_threshold : int;
}

type t = { levels : level list; dynamic : bool }

let mib = Dbmem.Units.mib

let default () =
  {
    dynamic = true;
    levels =
      [
        {
          lname = "small";
          base_threshold = mib 2;
          slots = Per_cpu 4;
          timeout = 120.;
          fraction = 1.0;
          min_threshold = mib 2;
          max_threshold = mib 2;
        };
        {
          lname = "medium";
          base_threshold = mib 96;
          slots = Per_cpu 1;
          timeout = 300.;
          fraction = 0.35;
          min_threshold = mib 32;
          max_threshold = mib 384;
        };
        {
          lname = "big";
          base_threshold = mib 448;
          slots = Total 1;
          timeout = 600.;
          fraction = 0.45;
          min_threshold = mib 256;
          max_threshold = mib 1024;
        };
      ];
  }

let static_only () = { (default ()) with dynamic = false }
let no_throttle () = { levels = []; dynamic = false }

let single_gate () =
  {
    dynamic = false;
    levels =
      [
        {
          lname = "single";
          base_threshold = mib 2;
          slots = Per_cpu 4;
          timeout = 300.;
          fraction = 1.0;
          min_threshold = mib 2;
          max_threshold = mib 2;
        };
      ];
  }

let slot_count slots ~cpus =
  match slots with Per_cpu n -> n * cpus | Total n -> n

let validate t ~cpus =
  let rec check = function
    | a :: (b :: _ as rest) ->
        if b.base_threshold <= a.base_threshold then
          invalid_arg
            (Printf.sprintf "Throttle_config: threshold of %s (%d) <= %s (%d)"
               b.lname b.base_threshold a.lname a.base_threshold);
        if slot_count b.slots ~cpus > slot_count a.slots ~cpus then
          invalid_arg
            (Printf.sprintf "Throttle_config: slots increase from %s to %s"
               a.lname b.lname);
        if b.timeout < a.timeout then
          invalid_arg
            (Printf.sprintf "Throttle_config: timeout decreases from %s to %s"
               a.lname b.lname);
        check rest
    | [ _ ] | [] -> ()
  in
  List.iter
    (fun l ->
      if slot_count l.slots ~cpus < 1 then
        invalid_arg ("Throttle_config: level " ^ l.lname ^ " has no slots"))
    t.levels;
  check t.levels

let dynamic_threshold level ~target ~population =
  if target <= 0 then level.base_threshold
  else begin
    let s = max 1 population in
    let raw = int_of_float (float_of_int target *. level.fraction /. float_of_int s) in
    min level.max_threshold (max level.min_threshold raw)
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>gateway ladder (dynamic=%b)@," t.dynamic;
  List.iter
    (fun l ->
      let slots_str =
        match l.slots with
        | Per_cpu n -> Printf.sprintf "%d/cpu" n
        | Total n -> Printf.sprintf "%d total" n
      in
      Format.fprintf ppf "  %-8s threshold>=%-12s slots=%-8s timeout=%.0fs@,"
        l.lname
        (Dbmem.Units.bytes_to_string l.base_threshold)
        slots_str l.timeout)
    t.levels;
  Format.fprintf ppf "@]"
