(** Configuration of the gateway ladder (Figure 1).

    A ladder is an ordered list of levels with progressively {e higher}
    memory thresholds and progressively {e lower} concurrency limits.
    Compilations below the first threshold proceed unthrottled (small
    diagnostic queries keep working even on an overloaded system).

    The paper's production configuration, reproduced by {!default}:
    - small gateway: 4 concurrent compilations per CPU;
    - medium gateway: 1 per CPU;
    - big gateway: 1 in total;
    with acquisition timeouts increasing down the ladder.

    Thresholds for the larger gateways may be {e dynamic} (the paper's first
    extension): level [i]'s entry threshold is recomputed from the broker's
    compile-memory target as [target * F / S], where [F] is the fraction of
    the target allotted to the population at level [i - 1] and [S] is the
    current size of that population. *)

type slots = Per_cpu of int | Total of int

type level = {
  lname : string;
  base_threshold : int;
      (** static entry threshold, bytes; also the fallback when dynamic
          thresholds are off or no broker target is known *)
  slots : slots;
  timeout : float;  (** acquisition timeout, seconds *)
  fraction : float;
      (** [F]: fraction of the compile target allotted collectively to
          compilations sitting {e below} this level; used only when
          [dynamic] *)
  min_threshold : int;  (** clamp for the dynamic threshold *)
  max_threshold : int;
}

type t = {
  levels : level list;  (** ordered, smallest threshold first *)
  dynamic : bool;
}

(** Paper ladder: small (4/CPU), medium (1/CPU), big (1 total); thresholds
    and timeouts calibrated for the simulated 4 GB server. *)
val default : unit -> t

(** Same ladder with dynamic thresholds disabled (ablation A1). *)
val static_only : unit -> t

(** Degenerate ladders for ablation A3. *)
val no_throttle : unit -> t

val single_gate : unit -> t

(** [slot_count slots ~cpus] resolves a slot spec to a concrete limit. *)
val slot_count : slots -> cpus:int -> int

(** [validate t] checks that thresholds strictly increase and slot counts
    do not increase down the ladder; raises [Invalid_argument] otherwise. *)
val validate : t -> cpus:int -> unit

(** [dynamic_threshold level ~target ~population] is the paper's
    [target * F / S] with clamping; [population] is [S], the number of
    compilations currently in the category below [level]. *)
val dynamic_threshold : level -> target:int -> population:int -> int

val pp : Format.formatter -> t -> unit
