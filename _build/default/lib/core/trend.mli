(** Sliding-window trend estimation over a memory-usage signal.

    The broker samples each subcomponent's usage periodically and needs a
    cheap prediction of near-future usage ("recognizes trends in allocation
    patterns", §3). We fit a least-squares line over the most recent
    [window] observations. *)

type t

(** [create ~window ()] keeps the last [window] observations
    ([window >= 2]). *)
val create : window:int -> unit -> t

(** [observe t ~time v] appends a sample. Times must be nondecreasing. *)
val observe : t -> time:float -> float -> unit

(** Number of samples currently in the window. *)
val samples : t -> int

(** Most recent value, if any. *)
val last : t -> float option

(** Least-squares slope (units per second) over the window. [None] with
    fewer than two samples or a degenerate time spread. *)
val slope : t -> float option

(** [predict t ~horizon] extrapolates the fitted line [horizon] seconds past
    the last sample, clamped to [>= 0.]. Falls back to the last value when
    no slope is available; [None] when empty. *)
val predict : t -> horizon:float -> float option

(** Mean of the window (for smoothing decisions). *)
val mean : t -> float option

val clear : t -> unit
