type t = {
  window : int;
  times : float array;
  values : float array;
  mutable size : int; (* number of valid samples *)
  mutable next : int; (* ring index of next write *)
}

let create ~window () =
  if window < 2 then invalid_arg "Trend.create: window must be >= 2";
  { window; times = Array.make window 0.; values = Array.make window 0.; size = 0; next = 0 }

let observe t ~time v =
  if t.size > 0 then begin
    let last_idx = (t.next - 1 + t.window) mod t.window in
    if time < t.times.(last_idx) then invalid_arg "Trend.observe: time went backwards"
  end;
  t.times.(t.next) <- time;
  t.values.(t.next) <- v;
  t.next <- (t.next + 1) mod t.window;
  if t.size < t.window then t.size <- t.size + 1

let samples t = t.size

let fold t ~init ~f =
  (* Oldest-to-newest iteration over the ring. *)
  let start = if t.size < t.window then 0 else t.next in
  let acc = ref init in
  for i = 0 to t.size - 1 do
    let idx = (start + i) mod t.window in
    acc := f !acc t.times.(idx) t.values.(idx)
  done;
  !acc

let last t =
  if t.size = 0 then None
  else begin
    let last_idx = (t.next - 1 + t.window) mod t.window in
    Some t.values.(last_idx)
  end

let mean t =
  if t.size = 0 then None
  else begin
    let sum = fold t ~init:0. ~f:(fun acc _ v -> acc +. v) in
    Some (sum /. float_of_int t.size)
  end

let slope t =
  if t.size < 2 then None
  else begin
    let n = float_of_int t.size in
    let sx, sy, sxx, sxy =
      fold t ~init:(0., 0., 0., 0.) ~f:(fun (sx, sy, sxx, sxy) x y ->
          (sx +. x, sy +. y, sxx +. (x *. x), sxy +. (x *. y)))
    in
    let denom = (n *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then None
    else Some (((n *. sxy) -. (sx *. sy)) /. denom)
  end

let predict t ~horizon =
  match last t with
  | None -> None
  | Some v -> (
      match slope t with
      | None -> Some (Float.max 0. v)
      | Some s -> Some (Float.max 0. (v +. (s *. horizon))))

let clear t =
  t.size <- 0;
  t.next <- 0
