lib/core/broker.ml: Dbmem Format List Sim Trend
