lib/core/compile_gov.mli: Broker Dbmem Format Monitor Sim Throttle_config
