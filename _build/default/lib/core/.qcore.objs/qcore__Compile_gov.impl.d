lib/core/compile_gov.ml: Array Broker Dbmem Format Monitor Throttle_config
