lib/core/throttle_config.mli: Format
