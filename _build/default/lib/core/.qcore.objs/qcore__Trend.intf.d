lib/core/trend.mli:
