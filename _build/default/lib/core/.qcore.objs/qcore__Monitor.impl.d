lib/core/monitor.ml: Sim
