lib/core/monitor.mli: Sim
