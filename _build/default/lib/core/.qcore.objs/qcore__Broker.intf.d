lib/core/broker.mli: Dbmem Format Sim
