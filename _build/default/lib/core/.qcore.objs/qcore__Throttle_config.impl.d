lib/core/throttle_config.ml: Dbmem Format List Printf
