lib/core/trend.ml: Array Float
