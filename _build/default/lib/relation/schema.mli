(** Relation schemas: ordered, named, typed columns. *)

type column = { cname : string; cty : Value.ty }
type t

(** [make cols] — names must be distinct. *)
val make : (string * Value.ty) list -> t

val arity : t -> int
val columns : t -> column array
val column : t -> int -> column

(** [index_of t name] raises [Not_found] for unknown names. *)
val index_of : t -> string -> int

val find_index : t -> string -> int option
val names : t -> string list

(** [concat a b] is the schema of a join output; duplicate names from [b]
    are disambiguated with a ["_r"] suffix chain. *)
val concat : t -> t -> t

(** [project t idxs] keeps columns in the given order. *)
val project : t -> int list -> t

(** [qualify prefix t] renames every column to ["prefix.name"]. *)
val qualify : string -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
