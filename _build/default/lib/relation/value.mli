(** Runtime values for the row-level relational kernel. *)

type t = Null | Int of int | Float of float | String of string | Bool of bool

type ty = Tint | Tfloat | Tstring | Tbool

(** SQL-style three-valued logic is {e not} modelled: [Null] compares less
    than everything else and equals itself, which is sufficient for the
    synthetic workloads generated here. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** [type_of v] is [None] for [Null]. *)
val type_of : t -> ty option

(** [conforms v ty] — [Null] conforms to every type. *)
val conforms : t -> ty -> bool

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
val to_string : t -> string
