type column_spec =
  | Serial
  | Uniform_int of int * int
  | Foreign_key of int
  | Uniform_float of float * float
  | Choice of string array
  | Flag of float

let gen_value rng row = function
  | Serial -> Value.Int row
  | Uniform_int (lo, hi) ->
      if hi < lo then invalid_arg "Datagen: bad Uniform_int bounds";
      Value.Int (lo + Sim.Rng.int rng (hi - lo + 1))
  | Foreign_key n ->
      if n <= 0 then invalid_arg "Datagen: Foreign_key over empty table";
      Value.Int (Sim.Rng.int rng n)
  | Uniform_float (lo, hi) -> Value.Float (Sim.Rng.uniform rng ~lo ~hi)
  | Choice options -> Value.String (Sim.Rng.choice rng options)
  | Flag p -> Value.Bool (Sim.Rng.float rng 1.0 < p)

let table rng schema specs ~rows =
  if List.length specs <> Schema.arity schema then
    invalid_arg "Datagen.table: spec count does not match schema arity";
  let specs = Array.of_list specs in
  let data =
    Array.init rows (fun row ->
        Array.map (fun spec -> gen_value rng row spec) specs)
  in
  Table.of_array schema data
