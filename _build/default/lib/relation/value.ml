type t = Null | Int of int | Float of float | String of string | Bool of bool

type ty = Tint | Tfloat | Tstring | Tbool

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | String x, String y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float x -> Hashtbl.hash x
  | String s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | String _ -> Some Tstring
  | Bool _ -> Some Tbool

let conforms v ty = match type_of v with None -> true | Some t -> t = ty

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | String s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let pp_ty ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Tfloat -> Format.pp_print_string ppf "float"
  | Tstring -> Format.pp_print_string ppf "string"
  | Tbool -> Format.pp_print_string ppf "bool"

let to_string v = Format.asprintf "%a" pp v
