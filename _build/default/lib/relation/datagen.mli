(** Deterministic synthetic data generation.

    Used to materialise tiny instances of the benchmark schemas so that
    optimizer plans can be executed for real by [rowexec] and checked
    against a reference evaluation. *)

type column_spec =
  | Serial  (** 0, 1, 2, ... — primary keys *)
  | Uniform_int of int * int  (** inclusive bounds *)
  | Foreign_key of int  (** uniform in [\[0, n)] — references a Serial pk *)
  | Uniform_float of float * float
  | Choice of string array
  | Flag of float  (** [Bool true] with the given probability *)

(** [table rng schema specs ~rows] generates [rows] tuples; [specs] must
    match the schema's arity and column types. *)
val table :
  Sim.Rng.t -> Schema.t -> column_spec list -> rows:int -> Table.t
