type column = { cname : string; cty : Value.ty }
type t = column array

let make cols =
  let names = List.map fst cols in
  let distinct = List.sort_uniq String.compare names in
  if List.length distinct <> List.length names then
    invalid_arg "Schema.make: duplicate column names";
  Array.of_list (List.map (fun (cname, cty) -> { cname; cty }) cols)

let arity = Array.length
let columns t = t
let column t i = t.(i)

let find_index t name =
  let rec loop i =
    if i >= Array.length t then None
    else if t.(i).cname = name then Some i
    else loop (i + 1)
  in
  loop 0

let index_of t name =
  match find_index t name with Some i -> i | None -> raise Not_found

let names t = Array.to_list (Array.map (fun c -> c.cname) t)

let concat a b =
  let taken = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace taken c.cname ()) a;
  let rename c =
    let rec fresh name =
      if Hashtbl.mem taken name then fresh (name ^ "_r") else name
    in
    let cname = fresh c.cname in
    Hashtbl.replace taken cname ();
    { c with cname }
  in
  Array.append a (Array.map rename b)

let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let qualify prefix t =
  Array.map (fun c -> { c with cname = prefix ^ "." ^ c.cname }) t

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x.cname = y.cname && x.cty = y.cty) a b

let pp ppf t =
  Format.fprintf ppf "(";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s:%a" c.cname Value.pp_ty c.cty)
    t;
  Format.fprintf ppf ")"
