(** A row: a value per schema column. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t
val concat : t -> t -> t
val project : t -> int list -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [conforms tuple schema] checks arity and per-column types. *)
val conforms : t -> Schema.t -> bool
