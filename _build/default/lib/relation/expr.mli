(** Scalar expressions evaluated against a tuple. Column references are by
    position (resolve names through {!Schema.index_of} at build time). *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Col of int
  | Const of Value.t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | And of t * t
  | Or of t * t
  | Not of t

val col : Schema.t -> string -> t
val int : int -> t
val str : string -> t
val ( =% ) : t -> t -> t
val ( <% ) : t -> t -> t
val ( <=% ) : t -> t -> t
val ( >% ) : t -> t -> t
val ( >=% ) : t -> t -> t
val ( &&% ) : t -> t -> t
val ( ||% ) : t -> t -> t

(** [eval e tuple]. Arithmetic on [Null] yields [Null]; comparisons against
    [Null] yield [Bool false] (conservative filter semantics). Raises
    [Invalid_argument] on type errors such as adding strings. *)
val eval : t -> Tuple.t -> Value.t

(** [eval_bool e tuple] is [true] iff [eval] returns [Bool true]. *)
val eval_bool : t -> Tuple.t -> bool

(** [shift n e] adds [n] to every column index (for re-rooting a predicate
    onto the right side of a join output). *)
val shift : int -> t -> t

val pp : Format.formatter -> t -> unit
