type t = { tschema : Schema.t; trows : Tuple.t array }

let of_array schema rows =
  Array.iteri
    (fun i r ->
      if not (Tuple.conforms r schema) then
        invalid_arg (Printf.sprintf "Table: row %d does not conform to schema" i))
    rows;
  { tschema = schema; trows = rows }

let create schema rows = of_array schema (Array.of_list rows)
let schema t = t.tschema
let cardinality t = Array.length t.trows
let rows t = t.trows
let to_seq t = Array.to_seq t.trows
let nth t i = t.trows.(i)

let sorted_rows t =
  let copy = Array.copy t.trows in
  Array.sort Tuple.compare copy;
  copy

let equal_bag a b =
  cardinality a = cardinality b
  && Schema.arity a.tschema = Schema.arity b.tschema
  &&
  let ra = sorted_rows a and rb = sorted_rows b in
  Array.for_all2 Tuple.equal ra rb

let pp ?(max_rows = 20) ppf t =
  Format.fprintf ppf "@[<v>%a (%d rows)@," Schema.pp t.tschema (cardinality t);
  Array.iteri
    (fun i r -> if i < max_rows then Format.fprintf ppf "  %a@," Tuple.pp r)
    t.trows;
  if cardinality t > max_rows then Format.fprintf ppf "  ...@,";
  Format.fprintf ppf "@]"
