lib/relation/datagen.ml: Array List Schema Sim Table Value
