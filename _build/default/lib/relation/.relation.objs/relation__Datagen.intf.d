lib/relation/datagen.mli: Schema Sim Table
