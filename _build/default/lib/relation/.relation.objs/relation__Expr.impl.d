lib/relation/expr.ml: Array Format Printf Schema Value
