lib/relation/value.ml: Format Hashtbl Stdlib
