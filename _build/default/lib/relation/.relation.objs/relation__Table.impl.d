lib/relation/table.ml: Array Format Printf Schema Tuple
