lib/relation/tuple.ml: Array Format List Schema Stdlib Value
