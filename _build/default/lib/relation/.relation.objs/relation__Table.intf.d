lib/relation/table.mli: Format Schema Seq Tuple
