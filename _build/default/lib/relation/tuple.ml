type t = Value.t array

let arity = Array.length
let get t i = t.(i)
let concat = Array.append
let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let compare a b =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i =
    if i >= n then Stdlib.compare (Array.length a) (Array.length b)
    else begin
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
    end
  in
  loop 0

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Value.pp ppf v)
    t;
  Format.fprintf ppf "]"

let conforms t schema =
  Array.length t = Schema.arity schema
  && begin
       let ok = ref true in
       Array.iteri
         (fun i v ->
           if not (Value.conforms v (Schema.column schema i).Schema.cty) then
             ok := false)
         t;
       !ok
     end
