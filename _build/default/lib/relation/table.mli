(** In-memory materialised relation. *)

type t

(** [create schema rows] validates every row against the schema. *)
val create : Schema.t -> Tuple.t list -> t

val of_array : Schema.t -> Tuple.t array -> t
val schema : t -> Schema.t
val cardinality : t -> int
val rows : t -> Tuple.t array
val to_seq : t -> Tuple.t Seq.t
val nth : t -> int -> Tuple.t

(** Order-insensitive multiset equality (for comparing executor outputs). *)
val equal_bag : t -> t -> bool

(** Rows sorted with {!Tuple.compare} (canonical form for comparisons). *)
val sorted_rows : t -> Tuple.t array

val pp : ?max_rows:int -> Format.formatter -> t -> unit
