type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Col of int
  | Const of Value.t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | And of t * t
  | Or of t * t
  | Not of t

let col schema name = Col (Schema.index_of schema name)
let int n = Const (Value.Int n)
let str s = Const (Value.String s)
let ( =% ) a b = Cmp (Eq, a, b)
let ( <% ) a b = Cmp (Lt, a, b)
let ( <=% ) a b = Cmp (Le, a, b)
let ( >% ) a b = Cmp (Gt, a, b)
let ( >=% ) a b = Cmp (Ge, a, b)
let ( &&% ) a b = And (a, b)
let ( ||% ) a b = Or (a, b)

let apply_cmp op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Bool false
  | _ ->
      let c = Value.compare a b in
      let r =
        match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
      in
      Value.Bool r

let apply_arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      match op with
      | Add -> Value.Int (x + y)
      | Sub -> Value.Int (x - y)
      | Mul -> Value.Int (x * y)
      | Div -> if y = 0 then Value.Null else Value.Int (x / y))
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      let f = function
        | Value.Int x -> float_of_int x
        | Value.Float x -> x
        | _ -> assert false
      in
      let x = f a and y = f b in
      (match op with
      | Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div -> if y = 0. then Value.Null else Value.Float (x /. y))
  | _ -> invalid_arg "Expr: arithmetic on non-numeric values"

let rec eval e tuple =
  match e with
  | Col i ->
      if i < 0 || i >= Array.length tuple then
        invalid_arg (Printf.sprintf "Expr: column %d out of range" i)
      else tuple.(i)
  | Const v -> v
  | Cmp (op, a, b) -> apply_cmp op (eval a tuple) (eval b tuple)
  | Arith (op, a, b) -> apply_arith op (eval a tuple) (eval b tuple)
  | And (a, b) -> (
      match eval a tuple with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> eval b tuple
      | _ -> invalid_arg "Expr: AND on non-boolean")
  | Or (a, b) -> (
      match eval a tuple with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> eval b tuple
      | _ -> invalid_arg "Expr: OR on non-boolean")
  | Not a -> (
      match eval a tuple with
      | Value.Bool b -> Value.Bool (not b)
      | _ -> invalid_arg "Expr: NOT on non-boolean")

let eval_bool e tuple =
  match eval e tuple with Value.Bool b -> b | _ -> false

let rec shift n = function
  | Col i -> Col (i + n)
  | Const v -> Const v
  | Cmp (op, a, b) -> Cmp (op, shift n a, shift n b)
  | Arith (op, a, b) -> Arith (op, shift n a, shift n b)
  | And (a, b) -> And (shift n a, shift n b)
  | Or (a, b) -> Or (shift n a, shift n b)
  | Not a -> Not (shift n a)

let rec pp ppf = function
  | Col i -> Format.fprintf ppf "$%d" i
  | Const v -> Value.pp ppf v
  | Cmp (op, a, b) ->
      let s =
        match op with
        | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      in
      Format.fprintf ppf "(%a %s %a)" pp a s pp b
  | Arith (op, a, b) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
      Format.fprintf ppf "(%a %s %a)" pp a s pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
