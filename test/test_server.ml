(* Integration tests: the assembled DBMS under the SALES workload. *)

let quick_run ?(clients = 6) ?(throttled = true) ?(seed = 42) ?(measure = 600.) () =
  let config =
    if throttled then { (Server.Config.default ()) with Server.Config.seed }
    else { (Server.Config.unthrottled ()) with Server.Config.seed }
  in
  Server.Experiment.run ~config ~clients ~warmup:0. ~measure ~slice:60. ()

let test_end_to_end_completes_queries () =
  let r = quick_run () in
  Alcotest.(check bool) "completed several queries" true
    (r.Server.Experiment.total_completed > 5);
  Alcotest.(check bool) "compile time in band" true
    (r.Server.Experiment.compile_mean_s > 1.
    && r.Server.Experiment.compile_max_s < 200.);
  Alcotest.(check bool) "exec time in band" true
    (r.Server.Experiment.exec_mean_s > 5.
    && r.Server.Experiment.exec_max_s < 700.)

let test_metrics_match_client_stats () =
  let r = quick_run () in
  (* With warmup = 0 the metric window covers everything the clients saw. *)
  Alcotest.(check int) "completions = client successes"
    r.Server.Experiment.client_stats.Workload.Client.succeeded
    r.Server.Experiment.total_completed;
  let slice_sum =
    Array.fold_left (fun acc (_, v) -> acc +. v) 0. r.Server.Experiment.slices
  in
  Alcotest.(check int) "slices sum to total" r.Server.Experiment.total_completed
    (int_of_float slice_sum)

let test_throttling_reduces_errors_under_load () =
  let on = quick_run ~clients:32 ~throttled:true ~measure:1200. () in
  let off = quick_run ~clients:32 ~throttled:false ~measure:1200. () in
  Alcotest.(check bool)
    (Printf.sprintf "errors: throttled %d <= unthrottled %d"
       on.Server.Experiment.total_errors off.Server.Experiment.total_errors)
    true
    (on.Server.Experiment.total_errors <= off.Server.Experiment.total_errors);
  Alcotest.(check bool)
    (Printf.sprintf "throughput: throttled %.1f >= unthrottled %.1f"
       on.Server.Experiment.mean_per_slice off.Server.Experiment.mean_per_slice)
    true
    (on.Server.Experiment.mean_per_slice >= off.Server.Experiment.mean_per_slice);
  Alcotest.(check bool) "unthrottled compile peak higher" true
    (off.Server.Experiment.compile_peak_max >= on.Server.Experiment.compile_peak_max)

let test_deterministic_given_seed () =
  let a = quick_run ~seed:7 () and b = quick_run ~seed:7 () in
  Alcotest.(check int) "same completions" a.Server.Experiment.total_completed
    b.Server.Experiment.total_completed;
  Alcotest.(check (float 1e-9)) "same mean" a.Server.Experiment.mean_per_slice
    b.Server.Experiment.mean_per_slice;
  let c = quick_run ~seed:8 () in
  Alcotest.(check bool) "different seed differs" true
    (a.Server.Experiment.total_completed <> c.Server.Experiment.total_completed
    || a.Server.Experiment.compile_mean_s <> c.Server.Experiment.compile_mean_s)

let test_memory_series_recorded () =
  let r = quick_run () in
  let names = List.map fst r.Server.Experiment.memory_series in
  List.iter
    (fun n -> Alcotest.(check bool) ("series " ^ n) true (List.mem n names))
    [ "bufpool"; "plancache"; "compile"; "execution" ];
  List.iter
    (fun (_, s) -> Alcotest.(check bool) "non-empty" true (Sim.Series.length s > 10))
    r.Server.Experiment.memory_series

(* Direct Dbms API tests (no Experiment wrapper). *)

let make_dbms ?(config = Server.Config.default ()) () =
  let eng = Sim.Engine.create ~seed:config.Server.Config.seed () in
  let dbms = Server.Dbms.create eng config (Workload.Sales.catalog ()) in
  Server.Dbms.start dbms;
  (eng, dbms)

let test_submit_single_query () =
  let eng, dbms = make_dbms () in
  let rng = Sim.Rng.create 1 in
  let t = List.hd (Workload.Sales.templates ()) in
  let q = Workload.Template.instance rng t ~id:1 in
  let result = ref None in
  Sim.Engine.spawn eng (fun () -> result := Some (Server.Dbms.submit dbms q));
  Sim.Engine.run eng ~until:2_000.;
  (match !result with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.failf "submit failed: %s" (Health.Error.to_string e)
  | None -> Alcotest.fail "submit did not finish");
  let m = Server.Dbms.metrics dbms in
  Alcotest.(check int) "one completion" 1 (Server.Metrics.total_completions m ());
  Alcotest.(check bool) "compile peak recorded" true
    (Sim.Stats.Online.count (Server.Metrics.compile_peak m) = 1)

let test_diagnostic_queries_hit_plan_cache () =
  let eng, dbms = make_dbms () in
  let rng = Sim.Rng.create 2 in
  let t = Workload.Sales.diagnostic_template () in
  Sim.Engine.spawn eng (fun () ->
      for i = 1 to 5 do
        match Server.Dbms.submit dbms (Workload.Template.instance rng t ~id:i) with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "diagnostic failed"
      done);
  Sim.Engine.run eng ~until:5_000.;
  let m = Server.Dbms.metrics dbms in
  Alcotest.(check int) "five completions" 5 (Server.Metrics.total_completions m ());
  (* Same fingerprint: compiled once, four cache hits. *)
  Alcotest.(check int) "four cache hits" 4 (Server.Metrics.cache_hits m);
  Alcotest.(check int) "one cached entry" 1
    (Plancache.Cache.entries (Server.Dbms.plan_cache dbms))

let test_memory_clean_after_quiesce () =
  let eng, dbms = make_dbms () in
  let rng = Sim.Rng.create 3 in
  Sim.Engine.spawn eng (fun () ->
      List.iteri
        (fun i t ->
          if i < 3 then
            ignore (Server.Dbms.submit dbms (Workload.Template.instance rng t ~id:i)))
        (Workload.Sales.templates ()));
  Sim.Engine.run eng ~until:10_000.;
  Alcotest.(check int) "no engine failures" 0 (List.length (Sim.Engine.failures eng));
  let clerks = Server.Dbms.clerks dbms in
  (* Transient consumers are empty once the system is idle; caches keep
     their contents. *)
  Alcotest.(check int) "compile clerk drained" 0
    (Dbmem.Manager.clerk_used (List.assoc "compile" clerks));
  Alcotest.(check int) "execution clerk drained" 0
    (Dbmem.Manager.clerk_used (List.assoc "execution" clerks));
  Alcotest.(check bool) "buffer pool retained pages" true
    (Dbmem.Manager.clerk_used (List.assoc "bufpool" clerks) > 0)

let test_broker_runs_during_experiment () =
  let eng, dbms = make_dbms () in
  Sim.Engine.run eng ~until:100.;
  Alcotest.(check bool) "broker ticked" true
    (Qcore.Broker.ticks (Server.Dbms.broker dbms) >= 99)

let test_gateways_exercised_under_load () =
  let config = Server.Config.default () in
  let eng, dbms = make_dbms ~config () in
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  for i = 1 to 24 do
    Workload.Client.spawn eng rng
      ~name:(Printf.sprintf "c%d" i)
      ~templates:(Workload.Sales.templates ())
      ~submit:(fun q -> Server.Dbms.submit_catch dbms q)
      ~config:{ Workload.Client.default_config with Workload.Client.think_mean = 5. }
      ~stats ~ids ~until:900.
  done;
  Sim.Engine.run eng ~until:900.;
  let monitors = Qcore.Compile_gov.monitors (Server.Dbms.governor dbms) in
  Alcotest.(check bool) "small gateway used" true
    (Qcore.Monitor.acquires monitors.(0) > 10);
  Alcotest.(check bool) "medium gateway used" true
    (Qcore.Monitor.acquires monitors.(1) > 0);
  Array.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within slots" (Qcore.Monitor.name m))
        true
        (Qcore.Monitor.in_use m <= Qcore.Monitor.slots m))
    monitors

let test_unthrottled_governor_untouched () =
  let config = Server.Config.unthrottled () in
  let eng, dbms = make_dbms ~config () in
  let rng = Sim.Rng.create 5 in
  let t = List.hd (Workload.Sales.templates ()) in
  Sim.Engine.spawn eng (fun () ->
      ignore (Server.Dbms.submit dbms (Workload.Template.instance rng t ~id:1)));
  Sim.Engine.run eng ~until:2_000.;
  let monitors = Qcore.Compile_gov.monitors (Server.Dbms.governor dbms) in
  Array.iter
    (fun m -> Alcotest.(check int) "no acquisitions" 0 (Qcore.Monitor.acquires m))
    monitors

let test_experiment_uplift_helper () =
  let mk mean =
    let r = quick_run ~measure:60. () in
    { r with Server.Experiment.mean_per_slice = mean }
  in
  let a = mk 40. and b = mk 30. in
  Alcotest.(check (float 1e-9)) "uplift" (1. /. 3.) (Server.Experiment.uplift a b)

(* Multi-tenant runs: a cheap two-tenant cast so the full machinery
   (arbiter + per-pool servers) stays fast enough for unit tests. *)
let tenant_specs () =
  [
    {
      Server.Tenants.tname = "eager";
      tweight = 1.0;
      tmin_share = 0.2;
      tmax_share = 0.9;
      tclients = 4;
      tthink_mean = 20.;
      tworkload = Server.Tenants.Sales;
    };
    {
      Server.Tenants.tname = "calm";
      tweight = 1.0;
      tmin_share = 0.2;
      tmax_share = 0.9;
      tclients = 3;
      tthink_mean = 15.;
      tworkload = Server.Tenants.Light;
    };
  ]

let tenants_run ?(mode = Server.Tenants.Isolated) ?(seed = 11) () =
  Server.Tenants.run ~specs:(tenant_specs ()) ~mode
    ~total_bytes:(Dbmem.Units.gib 1) ~seed ~warmup:60. ~measure:240. ~slice:60.
    ()

let test_tenants_budgets_fit_machine () =
  let o = tenants_run () in
  let open Server.Tenants in
  let sum_start =
    List.fold_left (fun a t -> a + t.budget_start) 0 o.tenants
  in
  let sum_end = List.fold_left (fun a t -> a + t.budget_end) 0 o.tenants in
  Alcotest.(check bool) "initial budgets fit" true (sum_start <= o.ototal);
  Alcotest.(check bool) "arbitrated budgets fit" true (sum_end <= o.ototal);
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (t.rname ^ " keeps its floor") true
        (t.budget_end >= t.floor))
    o.tenants;
  Alcotest.(check bool) "arbiter ticked" true (o.arb_ticks > 0);
  List.iter
    (fun t ->
      Alcotest.(check bool) (t.rname ^ " completed work") true (t.completed > 0))
    o.tenants

let test_tenants_reproducible () =
  let a = tenants_run ~seed:23 () and b = tenants_run ~seed:23 () in
  let open Server.Tenants in
  List.iter2
    (fun x y ->
      Alcotest.(check int) (x.rname ^ " completions equal") x.completed
        y.completed;
      Alcotest.(check int) (x.rname ^ " budget_end equal") x.budget_end
        y.budget_end)
    a.tenants b.tenants;
  Alcotest.(check int) "same rebalances" a.arb_rebalances b.arb_rebalances

let test_tenants_solo_stream_unchanged () =
  (* The victim must submit the same query stream alone as it does with
     neighbours: client RNG is keyed by (seed, tenant name), not by the
     number of pools sharing the engine. *)
  let open Server.Tenants in
  let shared = tenants_run ~seed:5 () in
  let alone =
    solo ~specs:(tenant_specs ()) ~victim:"calm"
      ~total_bytes:(Dbmem.Units.gib 1) ~seed:5 ~warmup:60. ~measure:240.
      ~slice:60. ()
  in
  let s = find_tenant shared "calm" and a = find_tenant alone "calm" in
  Alcotest.(check int) "same submissions" s.submitted a.submitted

let suite =
  [
    ("end-to-end completes queries", `Slow, test_end_to_end_completes_queries);
    ("metrics match client stats", `Slow, test_metrics_match_client_stats);
    ("throttling reduces errors", `Slow, test_throttling_reduces_errors_under_load);
    ("deterministic given seed", `Slow, test_deterministic_given_seed);
    ("memory series recorded", `Slow, test_memory_series_recorded);
    ("submit single query", `Quick, test_submit_single_query);
    ("diagnostic queries hit cache", `Quick, test_diagnostic_queries_hit_plan_cache);
    ("memory clean after quiesce", `Quick, test_memory_clean_after_quiesce);
    ("broker runs", `Quick, test_broker_runs_during_experiment);
    ("gateways exercised under load", `Slow, test_gateways_exercised_under_load);
    ("unthrottled governor untouched", `Quick, test_unthrottled_governor_untouched);
    ("experiment uplift helper", `Quick, test_experiment_uplift_helper);
    ("tenants budgets fit machine", `Slow, test_tenants_budgets_fit_machine);
    ("tenants reproducible", `Slow, test_tenants_reproducible);
    ("tenants solo stream unchanged", `Slow, test_tenants_solo_stream_unchanged);
  ]
