(* Robustness sweep: short end-to-end runs across a grid of configurations
   and seeds. Every run must finish without simulation-process failures
   (Experiment.run raises otherwise) and satisfy basic conservation
   invariants. These runs are much smaller than the benchmark windows, so
   the whole sweep stays fast. *)

let run_one ~seed ~clients ~throttled ~policy ~cpus ~memory_gib =
  let base =
    if throttled then Server.Config.default () else Server.Config.unthrottled ()
  in
  let config =
    {
      base with
      Server.Config.seed;
      cpus;
      memory_bytes = Dbmem.Units.gib memory_gib;
      pool_policy = policy;
    }
  in
  Server.Experiment.run ~config ~clients ~warmup:0. ~measure:400. ~slice:100. ()

let check_invariants name (r : Server.Experiment.result) =
  let c = r.Server.Experiment.client_stats in
  Alcotest.(check bool)
    (name ^ ": attempts >= submitted")
    true
    (c.Workload.Client.attempts >= c.Workload.Client.submitted);
  Alcotest.(check bool)
    (name ^ ": succeeded + abandoned <= submitted")
    true
    (c.Workload.Client.succeeded + c.Workload.Client.abandoned
    <= c.Workload.Client.submitted);
  Alcotest.(check int)
    (name ^ ": completions = successes")
    c.Workload.Client.succeeded r.Server.Experiment.total_completed;
  Alcotest.(check bool)
    (name ^ ": pool hit rate sane")
    true
    (Float.is_nan r.Server.Experiment.pool_hit_rate
    || (r.Server.Experiment.pool_hit_rate >= 0. && r.Server.Experiment.pool_hit_rate <= 1.))

let test_config_grid () =
  List.iter
    (fun (clients, throttled, policy, cpus, memory_gib) ->
      let name =
        Printf.sprintf "c%d-%b-%dcpu-%dgib" clients throttled cpus memory_gib
      in
      let r = run_one ~seed:1 ~clients ~throttled ~policy ~cpus ~memory_gib in
      check_invariants name r)
    [
      (4, true, Bufpool.Policy.Lru, 2, 1);
      (4, false, Bufpool.Policy.Lru, 2, 1);
      (12, true, Bufpool.Policy.Clock, 4, 2);
      (12, false, Bufpool.Policy.Lru2, 4, 2);
      (24, true, Bufpool.Policy.Lru2, 8, 4);
      (24, false, Bufpool.Policy.Lru2, 8, 4);
    ]

let test_seed_sweep () =
  for seed = 100 to 107 do
    let r =
      run_one ~seed ~clients:10 ~throttled:(seed mod 2 = 0)
        ~policy:Bufpool.Policy.Lru2 ~cpus:4 ~memory_gib:2
    in
    check_invariants (Printf.sprintf "seed%d" seed) r
  done

let test_tiny_memory_survives () =
  (* A pathologically small machine: lots of errors are fine, crashes are
     not. *)
  let r =
    run_one ~seed:5 ~clients:8 ~throttled:true ~policy:Bufpool.Policy.Lru ~cpus:1
      ~memory_gib:1
  in
  check_invariants "tiny" r

let test_static_ladder_variant () =
  let config =
    {
      (Server.Config.default ()) with
      Server.Config.throttle = Qcore.Throttle_config.static_only ();
      seed = 9;
    }
  in
  let r =
    Server.Experiment.run ~config ~clients:16 ~warmup:0. ~measure:400. ~slice:100. ()
  in
  check_invariants "static ladder" r

let test_single_gate_variant () =
  let config =
    {
      (Server.Config.default ()) with
      Server.Config.throttle = Qcore.Throttle_config.single_gate ();
      seed = 10;
    }
  in
  let r =
    Server.Experiment.run ~config ~clients:16 ~warmup:0. ~measure:400. ~slice:100. ()
  in
  check_invariants "single gate" r

let test_tpch_workload_end_to_end () =
  (* The comparison workload also runs through the full server. *)
  let config = { (Server.Config.default ()) with Server.Config.seed = 11 } in
  (* TPC-H executions scan tens of GB (no star-style date slicing), so
     they take ~20 minutes each on this hardware: use a long window. *)
  let r =
    Server.Experiment.run ~config
      ~catalog:(Workload.Tpch.catalog ())
      ~templates:(Workload.Tpch.templates ())
      ~clients:4 ~warmup:0. ~measure:3000. ~slice:500. ()
  in
  check_invariants "tpch" r;
  Alcotest.(check bool) "tpch completes queries" true
    (r.Server.Experiment.total_completed > 0)

(* Derive a pseudo-random (but seed-deterministic) fault schedule without
   touching global randomness: simple arithmetic on the seed. *)
let schedule_of_seed seed =
  let gib = Dbmem.Units.gib in
  let pick n k = (seed * 7919 + (n * 104729)) mod k in
  let ballast =
    Faultsim.Fault.Memory_ballast
      {
        at = 20. +. float_of_int (pick 1 60);
        bytes = gib (1 + pick 2 3);
        hold = 40. +. float_of_int (pick 3 120);
        ramp_steps = 4 + pick 4 12;
        step_s = 1. +. float_of_int (pick 5 4);
      }
  in
  let storm =
    Faultsim.Fault.Disk_storm
      {
        at = 30. +. float_of_int (pick 6 80);
        duration = 60. +. float_of_int (pick 7 120);
        throughput_factor = 0.3 +. (0.1 *. float_of_int (pick 8 5));
        extra_seek_s = 0.002 *. float_of_int (pick 9 4);
      }
  in
  let glitch =
    Faultsim.Fault.Alloc_glitch
      {
        at = 40. +. float_of_int (pick 10 60);
        duration = 30. +. float_of_int (pick 11 90);
        fail_prob = 0.1 +. (0.1 *. float_of_int (pick 12 4));
        clerks = (if pick 13 2 = 0 then [ "compile" ] else []);
      }
  in
  let burst =
    Faultsim.Fault.Client_burst
      {
        at = 25. +. float_of_int (pick 14 60);
        duration = 50. +. float_of_int (pick 15 100);
        clients = 2 + pick 16 8;
        think_mean = 10. +. float_of_int (pick 17 40);
      }
  in
  match seed mod 4 with
  | 0 -> [ ballast ]
  | 1 -> [ ballast; storm ]
  | 2 -> [ ballast; glitch; burst ]
  | _ -> [ ballast; storm; glitch; burst ]

let test_fault_schedule_sweep () =
  (* Random chaos schedules across seeds, resilience alternating: nothing
     crashes and the conservation invariants keep holding. *)
  for seed = 200 to 205 do
    let faults = schedule_of_seed seed in
    List.iter Faultsim.Fault.validate faults;
    let base =
      if seed mod 2 = 0 then Server.Config.resilient ()
      else Server.Config.default ()
    in
    let config = { base with Server.Config.seed; faults } in
    let r =
      Server.Experiment.run ~config ~clients:10 ~warmup:0. ~measure:400.
        ~slice:100. ()
    in
    check_invariants (Printf.sprintf "chaos seed%d" seed) r;
    Alcotest.(check int)
      (Printf.sprintf "chaos seed%d: every fault ran" seed)
      (List.length faults) r.Server.Experiment.faults_started
  done

(* After the storm passes and the workload quiesces, nothing may leak:
   every monitor acquire has its release, and the transient clerks
   (compile sessions, execution grants, ballast) are drained back to
   zero. *)
let test_quiesce_drains () =
  let gib = Dbmem.Units.gib in
  let faults =
    [
      Faultsim.Fault.Memory_ballast
        { at = 50.; bytes = gib 2; hold = 100.; ramp_steps = 8; step_s = 4. };
      Faultsim.Fault.Disk_storm
        { at = 60.; duration = 150.; throughput_factor = 0.5; extra_seek_s = 0.003 };
      Faultsim.Fault.Alloc_glitch
        { at = 70.; duration = 80.; fail_prob = 0.4; clerks = [] };
    ]
  in
  let cfg =
    { (Server.Config.resilient ()) with Server.Config.seed = 77; faults }
  in
  let eng = Sim.Engine.create ~seed:77 () in
  let dbms = Server.Dbms.create eng cfg (Workload.Sales.catalog ()) in
  Server.Dbms.start dbms;
  let stats = Workload.Client.make_stats () in
  let ids = ref 0 in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  ignore (Server.Dbms.install_faults dbms);
  for i = 1 to 12 do
    Workload.Client.spawn eng rng
      ~name:(Printf.sprintf "c%d" i)
      ~templates:(Workload.Sales.templates ())
      ~submit:(fun q -> Server.Dbms.submit_catch dbms q)
      ~config:Workload.Client.default_config ~stats ~ids ~until:300.
  done;
  (* Run far past the last submission and the last fault so every query,
     retry and backoff has finished. *)
  Sim.Engine.run eng ~until:4000.;
  Alcotest.(check (list string))
    "no process failures" []
    (List.map
       (fun (n, _, _) -> n)
       (Sim.Engine.failures eng));
  Array.iter
    (fun m ->
      Alcotest.(check int)
        (Printf.sprintf "monitor %s: acquires = releases" (Qcore.Monitor.name m))
        (Qcore.Monitor.acquires m) (Qcore.Monitor.releases m);
      Alcotest.(check int)
        (Printf.sprintf "monitor %s: nothing held" (Qcore.Monitor.name m))
        0 (Qcore.Monitor.in_use m))
    (Qcore.Compile_gov.monitors (Server.Dbms.governor dbms));
  List.iter
    (fun name ->
      let clerk = List.assoc name (Server.Dbms.clerks dbms) in
      Alcotest.(check int)
        (Printf.sprintf "clerk %s drained" name)
        0
        (Dbmem.Manager.clerk_used clerk))
    [ "compile"; "execution"; "ballast" ]

let suite =
  [
    ("config grid", `Slow, test_config_grid);
    ("seed sweep", `Slow, test_seed_sweep);
    ("tiny memory survives", `Slow, test_tiny_memory_survives);
    ("static ladder variant", `Slow, test_static_ladder_variant);
    ("single gate variant", `Slow, test_single_gate_variant);
    ("tpch workload end to end", `Slow, test_tpch_workload_end_to_end);
    ("fault schedule sweep", `Slow, test_fault_schedule_sweep);
    ("quiesce drains clerks and monitors", `Slow, test_quiesce_drains);
  ]
