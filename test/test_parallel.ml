(* Tests for the domain work-pool and the parallel experiment grid: the
   pool must preserve submission order and exception semantics, and a
   grid fanned over domains must reproduce the sequential results
   bit-for-bit (the property the whole bench harness leans on). *)

open Parallel

(* Burn a little CPU so items finish out of submission order under real
   parallelism; the result must come back ordered regardless. *)
let work x =
  let acc = ref x in
  for i = 1 to 1000 * (1 + (x mod 7)) do
    acc := (!acc * 31) + i
  done;
  (x, !acc)

let test_map_preserves_order () =
  let items = List.init 50 (fun i -> i) in
  let expected = List.map work items in
  List.iter
    (fun jobs ->
      let got = Pool.run ~jobs work items in
      Alcotest.(check bool)
        (Printf.sprintf "order at jobs=%d" jobs)
        true (got = expected))
    [ 1; 2; 4 ]

let test_map_array () =
  Pool.with_pool ~jobs:3 (fun p ->
      let a = Array.init 20 (fun i -> i) in
      Alcotest.(check (array int)) "squares in order"
        (Array.map (fun x -> x * x) a)
        (Pool.map_array p (fun x -> x * x) a))

let test_pool_reuse () =
  Pool.with_pool ~jobs:2 (fun p ->
      Alcotest.(check int) "jobs" 2 (Pool.jobs p);
      let a = Pool.map p (fun x -> x + 1) [ 1; 2; 3 ] in
      let b = Pool.map p (fun x -> x * 2) [ 4; 5 ] in
      Alcotest.(check (list int)) "first map" [ 2; 3; 4 ] a;
      Alcotest.(check (list int)) "second map" [ 8; 10 ] b)

let test_jobs_one_inline () =
  (* jobs = 1 spawns no domains: side effects happen on this domain, in
     submission order. *)
  let order = ref [] in
  let r =
    Pool.run ~jobs:1
      (fun x ->
        order := x :: !order;
        x)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 1; 2; 3 ] r;
  Alcotest.(check (list int)) "ran in order" [ 3; 2; 1 ] !order

let test_more_jobs_than_items () =
  Alcotest.(check (list int)) "jobs > items" [ 10 ]
    (Pool.run ~jobs:8 (fun x -> 10 * x) [ 1 ]);
  Alcotest.(check (list int)) "empty input" []
    (Pool.run ~jobs:4 (fun x -> x) [])

let test_invalid_jobs () =
  Alcotest.(check bool) "jobs=0 rejected" true
    (try
       ignore (Pool.create ~jobs:0 ());
       false
     with Invalid_argument _ -> true)

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      match
        Pool.run ~jobs
          (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
          [ 0; 1; 2; 3; 4; 5 ]
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom x ->
          (* Items 2 and 5 both fail; the earliest submitted wins. *)
          Alcotest.(check int)
            (Printf.sprintf "earliest failure at jobs=%d" jobs)
            2 x)
    [ 1; 4 ]

let test_shutdown_idempotent () =
  let p = Pool.create ~jobs:2 () in
  ignore (Pool.map p (fun x -> x) [ 1 ]);
  Pool.shutdown p;
  Pool.shutdown p

(* ------------------------------------------------------------------ *)
(* Grid determinism: the point of the whole construction. *)

let grid_cells ~seeds ~clients =
  List.concat_map
    (fun seed ->
      [
        Server.Experiment.cell
          ~config:{ (Server.Config.default ()) with Server.Config.seed }
          ~clients ~warmup:5. ~measure:30. ~slice:10. ();
        Server.Experiment.cell
          ~config:{ (Server.Config.unthrottled ()) with Server.Config.seed }
          ~clients ~warmup:5. ~measure:30. ~slice:10. ();
      ])
    seeds

let fingerprint results = Marshal.to_string results [ Marshal.No_sharing ]

let test_run_grid_parallel_equals_sequential () =
  let cells = grid_cells ~seeds:[ 42; 7 ] ~clients:3 in
  let seq = Server.Experiment.run_grid ~jobs:1 cells in
  let par = Server.Experiment.run_grid ~jobs:4 cells in
  Alcotest.(check bool) "parallel grid = sequential grid" true
    (String.equal (fingerprint seq) (fingerprint par))

(* Fuzzed grids: any mix of seeds and client counts must give identical
   results at jobs=1 and jobs=4. Every result field — series samples,
   online stats, error counters — participates via Marshal. *)
let prop_grid_deterministic_under_parallelism =
  QCheck.Test.make ~name:"run_grid jobs:1 = jobs:4 on fuzzed grids" ~count:5
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 2) (int_range 0 10_000))
        (int_range 1 4))
    (fun (seeds, clients) ->
      let cells = grid_cells ~seeds ~clients in
      let seq = Server.Experiment.run_grid ~jobs:1 cells in
      let par = Server.Experiment.run_grid ~jobs:4 cells in
      String.equal (fingerprint seq) (fingerprint par))

let suite =
  [
    ("map preserves submission order", `Quick, test_map_preserves_order);
    ("map_array", `Quick, test_map_array);
    ("pool reuse across maps", `Quick, test_pool_reuse);
    ("jobs=1 runs inline", `Quick, test_jobs_one_inline);
    ("more jobs than items", `Quick, test_more_jobs_than_items);
    ("invalid jobs rejected", `Quick, test_invalid_jobs);
    ("earliest exception propagates", `Quick, test_exception_propagation);
    ("shutdown idempotent", `Quick, test_shutdown_idempotent);
    ("parallel grid = sequential grid", `Slow, test_run_grid_parallel_equals_sequential);
    QCheck_alcotest.to_alcotest prop_grid_deterministic_under_parallelism;
  ]
