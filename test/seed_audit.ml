(* Flaky-seed audit: the three seed-sensitive acceptance bounds in the
   test suite, swept across seeds 1..N in CI-identical configurations.
   Not part of [dune runtest] — run it when retuning a tolerance:

     dune exec test/seed_audit.exe -- --seeds 20 --jobs 4

   Prints one row per seed per bound plus the min/max envelope, so a
   tolerance in test_shards.ml / test_health.ml / test_midcache.ml can be
   pinned against the observed spread rather than one lucky seed (the
   audited envelopes are recorded in DESIGN.md §10, the storm ones in
   §11). *)

let mib n = n * 1024 * 1024

(* test_shards.ml test_crash_failover_retention, verbatim config. *)
let shards_retention seed =
  let base =
    {
      Server.Shards.default_config with
      Server.Shards.c_shards = 4;
      c_clients = 16;
      c_variants = 24;
      c_think = 20.;
      c_warmup = 120.;
      c_measure = 400.;
      c_slice = 40.;
      c_total = mib 4096;
      c_seed = seed;
      c_schedule = Server.Shards.No_fault;
    }
  in
  let no_fault = Server.Shards.run base in
  let crash =
    Server.Shards.run
      { base with Server.Shards.c_schedule = Server.Shards.Crash_failover }
  in
  Server.Shards.retention ~fault:crash ~no_fault

(* test_health.ml test_supervised_throughput: supervised completions over
   resilient completions under the canonical chaos schedule. *)
let supervised_ratio seed =
  let faults = Server.Scenario.chaos_faults () in
  let run config = Server.Scenario.run_chaos ~config ~faults ~seed () in
  let sup = run (Server.Config.supervised ()) in
  let plain = run (Server.Config.resilient ()) in
  if plain.Server.Scenario.completed = 0 then infinity
  else
    float_of_int sup.Server.Scenario.completed
    /. float_of_int plain.Server.Scenario.completed

(* test_midcache.ml acceptance cells, verbatim config. *)
let midcache_bounds seed =
  let cfg mode =
    {
      Server.Cached.default_config with
      Server.Cached.k_mode = mode;
      k_clients = 16;
      k_variants = 32;
      k_warmup = 120.;
      k_measure = 400.;
      k_seed = seed;
    }
  in
  let off = Server.Cached.run (cfg Server.Cached.Cache_off) in
  let brokered = Server.Cached.run (cfg Server.Cached.Cache_brokered) in
  let squeezed =
    Server.Cached.run
      { (cfg Server.Cached.Cache_brokered) with Server.Cached.k_ballast_gib = 3. }
  in
  ( Server.Cached.uplift brokered ~over:off,
    off.Server.Cached.gw_acquires - brokered.Server.Cached.gw_acquires,
    brokered.Server.Cached.shrink_events,
    squeezed.Server.Cached.shrink_events,
    Server.Cached.uplift squeezed ~over:brokered )

(* test_storms.ml test_storm_ab_contrast, verbatim config: the compact
   mass-invalidation A/B. The robust per-seed claims are the ones the
   test asserts — the defended arm never duplicates a compile and
   recovers within the window, the undefended arm wastes duplicates —
   while the recovery-time *comparison* is only claimed in aggregate
   (slice noise makes single-seed orderings flip). *)
let storm_bounds seed =
  let cfg defenses =
    {
      Server.Storms.default_config with
      Server.Storms.s_shards = 2;
      s_clients = 24;
      s_variants = 16;
      s_think = 5.;
      s_warmup = 120.;
      s_measure = 360.;
      s_slice = 30.;
      s_total = mib 512 * 2;
      s_defenses = defenses;
      s_seed = seed;
      s_schedule = Server.Storms.Mass_invalidation;
    }
  in
  let on = Server.Storms.run (cfg true) in
  let off = Server.Storms.run (cfg false) in
  ( on.Server.Storms.dup_compiles,
    off.Server.Storms.dup_compiles,
    on.Server.Storms.coalesced,
    (if on.Server.Storms.recovered then on.Server.Storms.recovery_s
     else infinity),
    (if off.Server.Storms.recovered then off.Server.Storms.recovery_s
     else infinity),
    on.Server.Storms.retry_amp,
    off.Server.Storms.retry_amp )

type row = {
  seed : int;
  retention : float;
  sup_ratio : float;
  mc_uplift : float;
  mc_gw_drop : int;
  mc_calm_shrinks : int;
  mc_ballast_shrinks : int;
  mc_ballast_retention : float;
  st_dup_on : int;
  st_dup_off : int;
  st_coalesced : int;
  st_recovery_on : float;
  st_recovery_off : float;
  st_amp_on : float;
  st_amp_off : float;
}

let audit_seed seed =
  let retention = shards_retention seed in
  let sup_ratio = supervised_ratio seed in
  let mc_uplift, mc_gw_drop, mc_calm_shrinks, mc_ballast_shrinks,
      mc_ballast_retention =
    midcache_bounds seed
  in
  let ( st_dup_on,
        st_dup_off,
        st_coalesced,
        st_recovery_on,
        st_recovery_off,
        st_amp_on,
        st_amp_off ) =
    storm_bounds seed
  in
  {
    seed;
    retention;
    sup_ratio;
    mc_uplift;
    mc_gw_drop;
    mc_calm_shrinks;
    mc_ballast_shrinks;
    mc_ballast_retention;
    st_dup_on;
    st_dup_off;
    st_coalesced;
    st_recovery_on;
    st_recovery_off;
    st_amp_on;
    st_amp_off;
  }

let () =
  Logs.set_level (Some Logs.Error);
  let seeds = ref 20 and jobs = ref (Parallel.Pool.default_jobs ()) in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: n :: rest ->
        seeds := int_of_string n;
        parse rest
    | ("--jobs" | "-j") :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | a :: _ ->
        Printf.eprintf "seed_audit: unknown argument %S\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed_list = List.init !seeds (fun i -> i + 1) in
  let rows =
    if !jobs <= 1 then List.map audit_seed seed_list
    else Parallel.Pool.run ~jobs:!jobs audit_seed seed_list
  in
  Printf.printf
    "seed  shards_retention  supervised_ratio  mc_uplift  mc_gw_drop  \
     mc_calm_shrinks  mc_ballast_shrinks  mc_ballast_retention  st_dup_on  \
     st_dup_off  st_coalesced  st_recovery_on  st_recovery_off  st_amp_on  \
     st_amp_off\n";
  List.iter
    (fun r ->
      Printf.printf
        "%4d  %16.3f  %16.3f  %9.3f  %10d  %15d  %18d  %20.3f  %9d  %10d  \
         %12d  %14.0f  %15.0f  %9.2f  %10.2f\n"
        r.seed r.retention r.sup_ratio r.mc_uplift r.mc_gw_drop
        r.mc_calm_shrinks r.mc_ballast_shrinks r.mc_ballast_retention
        r.st_dup_on r.st_dup_off r.st_coalesced r.st_recovery_on
        r.st_recovery_off r.st_amp_on r.st_amp_off)
    rows;
  let env f =
    let vs = List.map f rows in
    (List.fold_left min infinity vs, List.fold_left max neg_infinity vs)
  in
  let lo_r, hi_r = env (fun r -> r.retention) in
  let lo_s, hi_s = env (fun r -> r.sup_ratio) in
  let lo_u, hi_u = env (fun r -> r.mc_uplift) in
  let lo_g, hi_g = env (fun r -> float_of_int r.mc_gw_drop) in
  let lo_b, hi_b = env (fun r -> float_of_int r.mc_ballast_shrinks) in
  let lo_br, hi_br = env (fun r -> r.mc_ballast_retention) in
  Printf.printf "\nenvelopes over %d seeds:\n" !seeds;
  Printf.printf "  shards crash-failover retention   [%.3f, %.3f]\n" lo_r hi_r;
  Printf.printf "  supervised/resilient completions  [%.3f, %.3f]\n" lo_s hi_s;
  Printf.printf "  midcache brokered/off uplift      [%.3f, %.3f]\n" lo_u hi_u;
  Printf.printf "  midcache gateway-admission drop   [%.0f, %.0f]\n" lo_g hi_g;
  Printf.printf "  midcache ballast shrink events    [%.0f, %.0f]\n" lo_b hi_b;
  Printf.printf "  midcache ballast retention        [%.3f, %.3f]\n" lo_br hi_br;
  let lo_do, hi_do = env (fun r -> float_of_int r.st_dup_off) in
  let lo_c, hi_c = env (fun r -> float_of_int r.st_coalesced) in
  let mean f =
    List.fold_left (fun a r -> a +. f r) 0. rows
    /. float_of_int (List.length rows)
  in
  let dup_on_max = snd (env (fun r -> float_of_int r.st_dup_on)) in
  let on_recovered =
    List.length (List.filter (fun r -> Float.is_finite r.st_recovery_on) rows)
  in
  let off_recovered =
    List.length (List.filter (fun r -> Float.is_finite r.st_recovery_off) rows)
  in
  Printf.printf "  storm defended dup compiles (max) %.0f\n" dup_on_max;
  Printf.printf "  storm undefended dup compiles     [%.0f, %.0f]\n" lo_do hi_do;
  Printf.printf "  storm defended coalesced          [%.0f, %.0f]\n" lo_c hi_c;
  Printf.printf "  storm recovered within window     on %d/%d, off %d/%d\n"
    on_recovered (List.length rows) off_recovered (List.length rows);
  Printf.printf "  storm mean retry amplification    on %.3f, off %.3f\n"
    (mean (fun r -> r.st_amp_on))
    (mean (fun r -> r.st_amp_off))
