(* Flaky-seed audit: the three seed-sensitive acceptance bounds in the
   test suite, swept across seeds 1..N in CI-identical configurations.
   Not part of [dune runtest] — run it when retuning a tolerance:

     dune exec test/seed_audit.exe -- --seeds 20 --jobs 4

   Prints one row per seed per bound plus the min/max envelope, so a
   tolerance in test_shards.ml / test_health.ml / test_midcache.ml can be
   pinned against the observed spread rather than one lucky seed (the
   audited envelopes are recorded in DESIGN.md §10). *)

let mib n = n * 1024 * 1024

(* test_shards.ml test_crash_failover_retention, verbatim config. *)
let shards_retention seed =
  let base =
    {
      Server.Shards.default_config with
      Server.Shards.c_shards = 4;
      c_clients = 16;
      c_variants = 24;
      c_think = 20.;
      c_warmup = 120.;
      c_measure = 400.;
      c_slice = 40.;
      c_total = mib 4096;
      c_seed = seed;
      c_schedule = Server.Shards.No_fault;
    }
  in
  let no_fault = Server.Shards.run base in
  let crash =
    Server.Shards.run
      { base with Server.Shards.c_schedule = Server.Shards.Crash_failover }
  in
  Server.Shards.retention ~fault:crash ~no_fault

(* test_health.ml test_supervised_throughput: supervised completions over
   resilient completions under the canonical chaos schedule. *)
let supervised_ratio seed =
  let faults = Server.Scenario.chaos_faults () in
  let run config = Server.Scenario.run_chaos ~config ~faults ~seed () in
  let sup = run (Server.Config.supervised ()) in
  let plain = run (Server.Config.resilient ()) in
  if plain.Server.Scenario.completed = 0 then infinity
  else
    float_of_int sup.Server.Scenario.completed
    /. float_of_int plain.Server.Scenario.completed

(* test_midcache.ml acceptance cells, verbatim config. *)
let midcache_bounds seed =
  let cfg mode =
    {
      Server.Cached.default_config with
      Server.Cached.k_mode = mode;
      k_clients = 16;
      k_variants = 32;
      k_warmup = 120.;
      k_measure = 400.;
      k_seed = seed;
    }
  in
  let off = Server.Cached.run (cfg Server.Cached.Cache_off) in
  let brokered = Server.Cached.run (cfg Server.Cached.Cache_brokered) in
  let squeezed =
    Server.Cached.run
      { (cfg Server.Cached.Cache_brokered) with Server.Cached.k_ballast_gib = 3. }
  in
  ( Server.Cached.uplift brokered ~over:off,
    off.Server.Cached.gw_acquires - brokered.Server.Cached.gw_acquires,
    brokered.Server.Cached.shrink_events,
    squeezed.Server.Cached.shrink_events,
    Server.Cached.uplift squeezed ~over:brokered )

type row = {
  seed : int;
  retention : float;
  sup_ratio : float;
  mc_uplift : float;
  mc_gw_drop : int;
  mc_calm_shrinks : int;
  mc_ballast_shrinks : int;
  mc_ballast_retention : float;
}

let audit_seed seed =
  let retention = shards_retention seed in
  let sup_ratio = supervised_ratio seed in
  let mc_uplift, mc_gw_drop, mc_calm_shrinks, mc_ballast_shrinks,
      mc_ballast_retention =
    midcache_bounds seed
  in
  {
    seed;
    retention;
    sup_ratio;
    mc_uplift;
    mc_gw_drop;
    mc_calm_shrinks;
    mc_ballast_shrinks;
    mc_ballast_retention;
  }

let () =
  Logs.set_level (Some Logs.Error);
  let seeds = ref 20 and jobs = ref (Parallel.Pool.default_jobs ()) in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: n :: rest ->
        seeds := int_of_string n;
        parse rest
    | ("--jobs" | "-j") :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | a :: _ ->
        Printf.eprintf "seed_audit: unknown argument %S\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed_list = List.init !seeds (fun i -> i + 1) in
  let rows =
    if !jobs <= 1 then List.map audit_seed seed_list
    else Parallel.Pool.run ~jobs:!jobs audit_seed seed_list
  in
  Printf.printf
    "seed  shards_retention  supervised_ratio  mc_uplift  mc_gw_drop  \
     mc_calm_shrinks  mc_ballast_shrinks  mc_ballast_retention\n";
  List.iter
    (fun r ->
      Printf.printf "%4d  %16.3f  %16.3f  %9.3f  %10d  %15d  %18d  %20.3f\n"
        r.seed r.retention r.sup_ratio r.mc_uplift r.mc_gw_drop
        r.mc_calm_shrinks r.mc_ballast_shrinks r.mc_ballast_retention)
    rows;
  let env f =
    let vs = List.map f rows in
    (List.fold_left min infinity vs, List.fold_left max neg_infinity vs)
  in
  let lo_r, hi_r = env (fun r -> r.retention) in
  let lo_s, hi_s = env (fun r -> r.sup_ratio) in
  let lo_u, hi_u = env (fun r -> r.mc_uplift) in
  let lo_g, hi_g = env (fun r -> float_of_int r.mc_gw_drop) in
  let lo_b, hi_b = env (fun r -> float_of_int r.mc_ballast_shrinks) in
  let lo_br, hi_br = env (fun r -> r.mc_ballast_retention) in
  Printf.printf "\nenvelopes over %d seeds:\n" !seeds;
  Printf.printf "  shards crash-failover retention   [%.3f, %.3f]\n" lo_r hi_r;
  Printf.printf "  supervised/resilient completions  [%.3f, %.3f]\n" lo_s hi_s;
  Printf.printf "  midcache brokered/off uplift      [%.3f, %.3f]\n" lo_u hi_u;
  Printf.printf "  midcache gateway-admission drop   [%.0f, %.0f]\n" lo_g hi_g;
  Printf.printf "  midcache ballast shrink events    [%.0f, %.0f]\n" lo_b hi_b;
  Printf.printf "  midcache ballast retention        [%.3f, %.3f]\n" lo_br hi_br
