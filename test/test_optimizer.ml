(* Tests for the optimizer: cardinality estimation, plan costing, greedy /
   DP / Cascades search, and row-level validation of produced plans. *)

open Optimizer

(* ------------------------------------------------------------------ *)
(* Schema helpers: a star catalog (fact + dimensions) and a chain. *)

let star_catalog ~dims ~fact_rows ~dim_rows =
  let cat = Catalog.create () in
  for d = 0 to dims - 1 do
    let name = Printf.sprintf "d%d" d in
    Catalog.add_table cat
      {
        Catalog.tbl_name = name;
        rows = float_of_int dim_rows;
        columns =
          [
            Catalog.int_column (name ^ "_key") ~distinct:(float_of_int dim_rows);
            {
              (Catalog.int_column "attr" ~distinct:100.) with
              Catalog.min_value = 0;
              max_value = 99;
            };
          ];
        indexes =
          [ { Catalog.idx_name = name ^ "_pk"; idx_columns = [ name ^ "_key" ]; clustered = true } ];
      }
  done;
  Catalog.add_table cat
    {
      Catalog.tbl_name = "fact";
      rows = float_of_int fact_rows;
      columns =
        (List.init dims (fun d ->
             Catalog.int_column
               (Printf.sprintf "d%d_key" d)
               ~distinct:(float_of_int dim_rows))
        @ [ Catalog.int_column "measure" ~distinct:1000. ]);
      indexes = [];
    };
  cat

(* Star query: fact (index 0) joined to [dims] dimensions, a filter on each
   of the first [filters] dimensions' attr column, aggregation on top. *)
let star_query ?(filters = 1) ~dims cat =
  ignore cat;
  let rels =
    ("fact", "f")
    :: List.init dims (fun d -> (Printf.sprintf "d%d" d, Printf.sprintf "d%d" d))
  in
  let preds =
    List.init dims (fun d ->
        {
          Query.jleft = 0;
          jlcol = Printf.sprintf "d%d_key" d;
          jright = d + 1;
          jrcol = Printf.sprintf "d%d_key" d;
          jsel = 1.0 /. 1000.;
        })
  in
  let filters =
    List.init (min filters dims) (fun d ->
        { Query.frel = d + 1; fcol = "attr"; fop = Query.Le; fvalue = 49; fsel = 0.5 })
  in
  Query.make
    ~id:(Printf.sprintf "star%d" dims)
    ~rels ~preds ~filters
    ~agg:(Some { Query.group_by = [ (1, "attr") ]; sum_cols = [ (0, "measure") ] })

let chain_catalog ~len ~rows =
  let cat = Catalog.create () in
  for i = 0 to len - 1 do
    let name = Printf.sprintf "t%d" i in
    let next_fk =
      if i < len - 1 then
        [ Catalog.int_column (Printf.sprintf "t%d_key" (i + 1)) ~distinct:(float_of_int rows) ]
      else []
    in
    Catalog.add_table cat
      {
        Catalog.tbl_name = name;
        rows = float_of_int rows;
        columns =
          Catalog.int_column (name ^ "_key") ~distinct:(float_of_int rows)
          :: Catalog.int_column "payload" ~distinct:50.
          :: next_fk;
        indexes =
          [ { Catalog.idx_name = name ^ "_pk"; idx_columns = [ name ^ "_key" ]; clustered = true } ];
      }
  done;
  cat

let chain_query ~len cat =
  ignore cat;
  let rels = List.init len (fun i -> (Printf.sprintf "t%d" i, Printf.sprintf "t%d" i)) in
  let preds =
    List.init (len - 1) (fun i ->
        {
          Query.jleft = i;
          jlcol = Printf.sprintf "t%d_key" (i + 1);
          jright = i + 1;
          jrcol = Printf.sprintf "t%d_key" (i + 1);
          jsel = 1.0 /. 1000.;
        })
  in
  Query.make ~id:(Printf.sprintf "chain%d" len) ~rels ~preds
    ~filters:[ { Query.frel = 0; fcol = "payload"; fop = Query.Le; fvalue = 24; fsel = 0.5 } ]
    ~agg:None

let model = Cost.default

(* ------------------------------------------------------------------ *)
(* Relset *)

let test_relset_basics () =
  let s = Relset.add 4 (Relset.add 1 Relset.empty) in
  Alcotest.(check bool) "mem" true (Relset.mem 1 s);
  Alcotest.(check bool) "not mem" false (Relset.mem 2 s);
  Alcotest.(check int) "cardinal" 2 (Relset.cardinal s);
  Alcotest.(check (list int)) "members" [ 1; 4 ] (Relset.members s);
  Alcotest.(check int) "min elt" 1 (Relset.min_elt s);
  Alcotest.(check int) "full" 7 (Relset.full 3)

let test_relset_subset_enumeration () =
  let s = Relset.full 3 in
  let subs = ref [] in
  Relset.iter_strict_subsets s (fun x -> subs := x :: !subs);
  (* 2^3 - 2 nonempty proper subsets. *)
  Alcotest.(check int) "count" 6 (List.length !subs);
  Alcotest.(check int) "distinct" 6 (List.length (List.sort_uniq compare !subs))

(* EnumerateCsg must produce exactly the connected subsets, each once. *)
let prop_connected_subsets_match_bruteforce =
  QCheck.Test.make ~name:"connected_subsets = brute force" ~count:100
    QCheck.(pair (int_range 2 6) (list_of_size Gen.(int_range 0 8) (pair (int_range 0 5) (int_range 0 5))))
    (fun (n, edge_list) ->
      (* Build a query over n relations with the given (deduped) edges,
         adding a spanning chain so Query.make accepts it as connected. *)
      let chain = List.init (n - 1) (fun i -> (i, i + 1)) in
      let edges =
        List.sort_uniq compare
          (chain
          @ List.filter_map
              (fun (a, b) ->
                let a = a mod n and b = b mod n in
                if a = b then None else Some (min a b, max a b))
              edge_list)
      in
      let cat = chain_catalog ~len:n ~rows:100 in
      ignore cat;
      let q =
        Query.make ~id:"csg"
          ~rels:(List.init n (fun i -> (Printf.sprintf "t%d" i, Printf.sprintf "r%d" i)))
          ~preds:
            (List.map
               (fun (a, b) ->
                 (* Column names need not exist in a catalog for pure graph
                    operations. *)
                 { Query.jleft = a; jlcol = "x"; jright = b; jrcol = "x"; jsel = 0.5 })
               edges)
          ~filters:[] ~agg:None
      in
      let full = Relset.full n in
      let enumerated = List.sort compare (Query.connected_subsets q full) in
      let brute = ref [] in
      for s = 1 to full do
        if Query.connected q s then brute := s :: !brute
      done;
      enumerated = List.sort compare !brute)

let test_query_to_sql () =
  let cat = star_catalog ~dims:2 ~fact_rows:1000 ~dim_rows:100 in
  ignore cat;
  let q = star_query ~dims:2 ~filters:1 cat in
  let sql = Query.to_sql q in
  List.iter
    (fun fragment ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) ("contains " ^ fragment) true (contains sql fragment))
    [ "SELECT"; "FROM fact AS f"; "WHERE"; "GROUP BY"; "SUM(f.measure)";
      "f.d0_key = d0.d0_key"; "fingerprint star2" ]

(* Reference count-trailing-zeros: the shift-while loop the constant-time
   implementation replaced. *)
let ctz_reference t =
  if t = 0 then invalid_arg "ctz_reference"
  else begin
    let i = ref 0 and s = ref t in
    while !s land 1 = 0 do
      incr i;
      s := !s lsr 1
    done;
    !i
  end

let test_relset_ctz () =
  for i = 0 to 61 do
    Alcotest.(check int)
      (Printf.sprintf "ctz (1 lsl %d)" i)
      i
      (Relset.ctz (1 lsl i))
  done;
  let rng = Sim.Rng.create 99 in
  for _ = 1 to 1000 do
    let v = 1 + Sim.Rng.int rng ((1 lsl 40) - 1) in
    let v = v lsl Sim.Rng.int rng 20 in
    Alcotest.(check int)
      (Printf.sprintf "ctz %d" v)
      (ctz_reference v) (Relset.ctz v)
  done

let binomial n k =
  let k = min k (n - k) in
  let r = ref 1 in
  for i = 0 to k - 1 do
    r := !r * (n - i) / (i + 1)
  done;
  !r

let test_relset_iter_of_cardinality () =
  let n = 6 in
  let all = ref [] in
  for k = 1 to n + 2 do
    let masks = ref [] in
    Relset.iter_of_cardinality ~n ~k (fun m -> masks := m :: !masks);
    let masks = List.rev !masks in
    if k > n then
      Alcotest.(check int) (Printf.sprintf "k=%d > n yields nothing" k) 0
        (List.length masks)
    else begin
      Alcotest.(check int)
        (Printf.sprintf "C(%d,%d) masks" n k)
        (binomial n k) (List.length masks);
      List.iter
        (fun m ->
          Alcotest.(check int) "popcount" k (Relset.cardinal m);
          Alcotest.(check bool) "within full set" true (m <= Relset.full n))
        masks;
      Alcotest.(check bool) "ascending order" true
        (List.sort compare masks = masks);
      all := masks @ !all
    end
  done;
  (* Every nonempty subset of [full n] appears in exactly one band. *)
  Alcotest.(check int) "bands partition the powerset" (Relset.full n)
    (List.length (List.sort_uniq compare !all))

let prop_iter_of_cardinality_matches_bruteforce =
  QCheck.Test.make
    ~name:"iter_of_cardinality enumerates each popcount band in order"
    ~count:100
    QCheck.(pair (int_range 1 12) (int_range 1 12))
    (fun (n, k) ->
      let k = 1 + (k mod n) in
      let got = ref [] in
      Relset.iter_of_cardinality ~n ~k (fun m -> got := m :: !got);
      let expected = ref [] in
      for m = Relset.full n downto 1 do
        if Relset.cardinal m = k then expected := m :: !expected
      done;
      List.rev !got = !expected)

let prop_relset_subsets_complete =
  QCheck.Test.make ~name:"submask enumeration yields exactly the proper subsets"
    ~count:100 (QCheck.int_range 1 255) (fun s ->
      let subs = ref [] in
      Relset.iter_strict_subsets s (fun x -> subs := x :: !subs);
      let expected = ref [] in
      for x = 1 to s - 1 do
        if x land s = x then expected := x :: !expected
      done;
      List.sort compare !subs = List.sort compare !expected)

(* ------------------------------------------------------------------ *)
(* Card *)

let test_card_star () =
  let cat = star_catalog ~dims:2 ~fact_rows:10000 ~dim_rows:1000 in
  let q = star_query ~dims:2 ~filters:1 cat in
  let card = Card.create cat q in
  (* fact base: 10000 (no filter). d0 filtered to 500. *)
  Alcotest.(check (float 1.)) "fact base" 10000. (Card.base_rows card 0);
  Alcotest.(check (float 1.)) "d0 filtered" 500. (Card.base_rows card 1);
  (* fact x d0: 10000 * 500 / 1000 = 5000 *)
  let s = Relset.add 1 (Relset.singleton 0) in
  Alcotest.(check (float 1.)) "join card" 5000. (Card.card card s);
  (* Full: 5000 * 1000/1000 = 5000 *)
  Alcotest.(check (float 1.)) "full card" 5000. (Card.card card (Relset.full 3))

let test_card_memoizes () =
  let cat = star_catalog ~dims:3 ~fact_rows:1000 ~dim_rows:100 in
  let q = star_query ~dims:3 cat in
  let card = Card.create cat q in
  ignore (Card.card card (Relset.full 4));
  let size1 = Card.memo_size card in
  ignore (Card.card card (Relset.full 4));
  Alcotest.(check int) "no growth on repeat" size1 (Card.memo_size card)

(* ------------------------------------------------------------------ *)
(* Histograms *)

let test_histogram_basics () =
  let values = Array.init 1000 (fun i -> i) in
  let h = Histogram.build ~buckets:10 values in
  Alcotest.(check int) "sample" 1000 (Histogram.sample_size h);
  Alcotest.(check int) "buckets" 10 (Histogram.n_buckets h);
  Alcotest.(check int) "min" 0 (Histogram.min_value h);
  Alcotest.(check int) "max" 999 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "le below range" 0. (Histogram.selectivity_le h (-1));
  Alcotest.(check (float 1e-9)) "le at max" 1. (Histogram.selectivity_le h 999);
  Alcotest.(check (float 1e-9)) "ge at min" 1. (Histogram.selectivity_ge h 0)

let test_histogram_uniform_accuracy () =
  let values = Array.init 10_000 (fun i -> i mod 100) in
  let h = Histogram.build values in
  (* P(v <= 24) = 0.25 exactly. *)
  Alcotest.(check bool) "le estimate" true
    (Float.abs (Histogram.selectivity_le h 24 -. 0.25) < 0.02);
  (* P(v = 50) = 0.01. *)
  Alcotest.(check bool) "eq estimate" true
    (Float.abs (Histogram.selectivity_eq h 50 -. 0.01) < 0.005)

let test_histogram_beats_uniform_on_skew () =
  (* 90% of rows hold value 0, the rest spread over [1, 1000). *)
  let rng = Sim.Rng.create 17 in
  let values =
    Array.init 10_000 (fun _ ->
        if Sim.Rng.float rng 1.0 < 0.9 then 0 else 1 + Sim.Rng.int rng 999)
  in
  let truth_le0 =
    float_of_int (Array.length (Array.of_list (List.filter (fun v -> v <= 0) (Array.to_list values))))
    /. 10_000.
  in
  let col = Catalog.int_column "skewed" ~distinct:1000. in
  let col_h = Catalog.with_histogram col values in
  let hist_est = Query.filter_selectivity Query.Le 0 col_h in
  let uniform_est = Query.filter_selectivity Query.Le 0 { col with Catalog.max_value = 999 } in
  let err e = Float.abs (e -. truth_le0) in
  Alcotest.(check bool)
    (Printf.sprintf "histogram err %.3f << uniform err %.3f" (err hist_est) (err uniform_est))
    true
    (err hist_est < 0.05 && err hist_est *. 10. < err uniform_est)

let test_with_histogram_refreshes_stats () =
  let col = Catalog.int_column "c" ~distinct:5. in
  let col' = Catalog.with_histogram col [| 10; 20; 20; 30; 40; 40; 40 |] in
  Alcotest.(check int) "min" 10 col'.Catalog.min_value;
  Alcotest.(check int) "max" 40 col'.Catalog.max_value;
  Alcotest.(check (float 1e-9)) "distinct" 4. col'.Catalog.distinct

let prop_histogram_le_monotone =
  QCheck.Test.make ~name:"histogram selectivity_le is monotone and bounded" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range (-50) 50))
    (fun values ->
      let h = Histogram.build (Array.of_list values) in
      let prev = ref 0. in
      let ok = ref true in
      for v = -60 to 60 do
        let s = Histogram.selectivity_le h v in
        if s < !prev -. 1e-9 || s < 0. || s > 1. then ok := false;
        prev := s
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Plans *)

let test_plan_well_formed_greedy () =
  let cat = star_catalog ~dims:5 ~fact_rows:100000 ~dim_rows:1000 in
  let q = star_query ~dims:5 cat in
  let card = Card.create cat q in
  let plan = Greedy.plan model card in
  Alcotest.(check bool) "well formed" true (Plan.well_formed plan ~n_rels:6);
  Alcotest.(check bool) "cost positive" true (Plan.total_cost plan > 0.);
  Alcotest.(check bool) "io pages positive" true (Plan.io_pages plan > 0.);
  Alcotest.(check bool) "has grant (hash somewhere)" true (Plan.grant_bytes plan > 0);
  Alcotest.(check bool) "plan size positive" true (Plan.size_bytes plan > 0)

let test_plan_index_scan_cheaper_when_selective () =
  let cat = chain_catalog ~len:2 ~rows:1_000_000 in
  let q =
    Query.make ~id:"sel" ~rels:[ ("t0", "a"); ("t1", "b") ]
      ~preds:
        [ { Query.jleft = 0; jlcol = "t1_key"; jright = 1; jrcol = "t1_key"; jsel = 1e-6 } ]
      ~filters:
        [ { Query.frel = 1; fcol = "t1_key"; fop = Query.Eq; fvalue = 42; fsel = 1e-6 } ]
      ~agg:None
  in
  let card = Card.create cat q in
  let seq = Plan.seq_scan model card 1 in
  match Plan.index_scan model card 1 with
  | Some idx ->
      Alcotest.(check bool) "index beats seq for point lookup" true
        (Plan.total_cost idx < Plan.total_cost seq)
  | None -> Alcotest.fail "expected an index scan alternative"

let test_plan_hash_join_mem_scales () =
  let cat = star_catalog ~dims:1 ~fact_rows:1_000_000 ~dim_rows:50_000 in
  let q = star_query ~dims:1 ~filters:0 cat in
  let card = Card.create cat q in
  let fact = Plan.seq_scan model card 0 and dim = Plan.seq_scan model card 1 in
  let rows = Card.card card (Relset.full 2) in
  let small_build = Plan.hash_join model ~rows ~build:dim ~probe:fact in
  let big_build = Plan.hash_join model ~rows ~build:fact ~probe:dim in
  Alcotest.(check bool) "building on smaller side needs less memory" true
    (small_build.Plan.mem_bytes < big_build.Plan.mem_bytes);
  Alcotest.(check bool) "and costs less" true
    (Plan.total_cost small_build < Plan.total_cost big_build)

(* ------------------------------------------------------------------ *)
(* DP vs Cascades *)

let cascades_complete ?(params = Cascades.default_params) cat q =
  let params = { params with Cascades.max_tasks = 2_000_000; min_tasks = 2_000_000 } in
  match Cascades.optimize ~params ~env:Env.null model cat q with
  | Ok r -> r
  | Error e -> Alcotest.failf "cascades failed: %s" (Format.asprintf "%a" Env.pp_abort_reason e)

let test_cascades_complete_matches_dp_star () =
  List.iter
    (fun dims ->
      let cat = star_catalog ~dims ~fact_rows:200_000 ~dim_rows:2_000 in
      let q = star_query ~dims cat in
      let card = Card.create cat q in
      let dp = Dp.optimize model card in
      let casc = cascades_complete cat q in
      Alcotest.(check bool)
        (Printf.sprintf "complete search (star %d)" dims)
        true
        (casc.Cascades.outcome = Cascades.Complete);
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "dp cost = cascades cost (star %d)" dims)
        (Plan.total_cost dp)
        (Plan.total_cost casc.Cascades.plan))
    [ 2; 3; 4; 5 ]

let test_cascades_complete_matches_dp_chain () =
  List.iter
    (fun len ->
      let cat = chain_catalog ~len ~rows:50_000 in
      let q = chain_query ~len cat in
      let card = Card.create cat q in
      let dp = Dp.optimize model card in
      let casc = cascades_complete cat q in
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "dp = cascades (chain %d)" len)
        (Plan.total_cost dp)
        (Plan.total_cost casc.Cascades.plan))
    [ 2; 3; 5; 7 ]

let test_dp_beats_or_matches_greedy () =
  let cat = star_catalog ~dims:6 ~fact_rows:500_000 ~dim_rows:3_000 in
  let q = star_query ~dims:6 ~filters:3 cat in
  let card = Card.create cat q in
  let dp = Dp.optimize model card in
  let greedy = Greedy.plan model card in
  Alcotest.(check bool) "dp <= greedy" true
    (Plan.total_cost dp <= Plan.total_cost greedy +. 1e-6)

let test_dp_rejects_large () =
  let cat = star_catalog ~dims:15 ~fact_rows:1000 ~dim_rows:10 in
  let q = star_query ~dims:15 cat in
  let card = Card.create cat q in
  Alcotest.(check bool) "refuses > max_rels" true
    (try
       ignore (Dp.optimize model card);
       false
     with Invalid_argument _ -> true)

(* The SALES templates instantiate 15-20 relations, above the DP cap;
   keep the first [max_rels] (the join graphs are stars rooted at the
   fact table, so any prefix stays connected) and drop the predicates,
   filters and aggregate columns that referenced truncated relations. *)
let truncate_query q ~max_rels =
  if Query.n_rels q <= max_rels then q
  else begin
    let keep = max_rels in
    Query.make
      ~id:(q.Query.qid ^ "-trunc")
      ~rels:
        (Array.to_list (Array.sub q.Query.rels 0 keep)
        |> List.map (fun r -> (r.Query.rtable, r.Query.ralias)))
      ~preds:
        (List.filter
           (fun (p : Query.join_pred) ->
             p.Query.jleft < keep && p.Query.jright < keep)
           q.Query.preds)
      ~filters:
        (List.filter (fun (f : Query.filter) -> f.Query.frel < keep) q.Query.filters)
      ~agg:
        (Option.map
           (fun (a : Query.aggregate) ->
             {
               Query.group_by = List.filter (fun (i, _) -> i < keep) a.Query.group_by;
               sum_cols = List.filter (fun (i, _) -> i < keep) a.Query.sum_cols;
             })
           q.Query.agg)
  end

(* Pinned DP results on the ten SALES templates, captured from the
   list-based subset enumeration before the per-cardinality Gosper
   rewrite. The rewrite must fill the same number of connected-subset
   entries and find plans of identical cost; any drift here means the
   enumeration changed behaviour, not just speed. *)
let test_dp_pinned_sales () =
  let expected =
    [
      ("s0_monthly_mix", 14, 8205, 767399.457962);
      ("s1_quarter_broad", 14, 8205, 1360549.433152);
      ("s2_promo_deep", 14, 8205, 533260.456099);
      ("s3_supplier_cost", 14, 8205, 992229.375771);
      ("s4_halfyear_trend", 14, 8205, 1950813.783837);
      ("s5_store_detail", 14, 8205, 461396.987387);
      ("s6_channel_rollup", 14, 8205, 1205648.611234);
      ("s7_customer_seg", 14, 8205, 918150.252013);
      ("s8_product_margin", 14, 8205, 1068127.742894);
      ("s9_yearly_exec", 14, 8205, 1515283.679727);
    ]
  in
  let cat = Workload.Sales.catalog () in
  let templates = Workload.Sales.templates () in
  Alcotest.(check int) "ten templates" (List.length expected)
    (List.length templates);
  List.iter2
    (fun t (name, n_rels, entries, cost) ->
      Alcotest.(check string) "template name" name t.Workload.Template.tname;
      let rng = Sim.Rng.create 7 in
      let q = Workload.Template.instance rng t ~id:1 in
      let q = truncate_query q ~max_rels:Dp.max_rels in
      Alcotest.(check int) (name ^ " rels") n_rels (Query.n_rels q);
      let card = Card.create cat q in
      let plan, got_entries = Dp.optimize_with_stats model card in
      Alcotest.(check int) (name ^ " dp entries") entries got_entries;
      Alcotest.(check (float 1e-3)) (name ^ " plan cost") cost
        (Plan.total_cost plan))
    templates expected

(* ------------------------------------------------------------------ *)
(* Cascades mechanics *)

let test_cascades_budget_exhaustion_returns_plan () =
  let cat = star_catalog ~dims:12 ~fact_rows:10_000_000 ~dim_rows:10_000 in
  let q = star_query ~dims:12 ~filters:4 cat in
  let params = { Cascades.default_params with Cascades.max_tasks = 200; min_tasks = 1 } in
  match Cascades.optimize ~params ~env:Env.null model cat q with
  | Ok r ->
      Alcotest.(check bool) "budget outcome" true (r.Cascades.outcome = Cascades.Budget_exhausted);
      Alcotest.(check bool) "still a full plan" true
        (Plan.well_formed
           (match r.Cascades.plan.Plan.node with
           | Plan.Hash_agg (c, _, _) -> c
           | Plan.Stream_agg (c, _, _) -> (
               match c.Plan.node with Plan.Sort inner -> inner | _ -> c)
           | _ -> r.Cascades.plan)
           ~n_rels:13)
  | Error _ -> Alcotest.fail "should not abort"

let test_cascades_more_effort_never_worse () =
  let cat = star_catalog ~dims:8 ~fact_rows:1_000_000 ~dim_rows:5_000 in
  let q = star_query ~dims:8 ~filters:3 cat in
  let run budget =
    let params =
      { Cascades.default_params with Cascades.max_tasks = budget; min_tasks = budget }
    in
    match Cascades.optimize ~params ~env:Env.null model cat q with
    | Ok r -> Plan.total_cost r.Cascades.plan
    | Error _ -> Alcotest.fail "abort"
  in
  let c_small = run 50 and c_big = run 50_000 in
  Alcotest.(check bool) "more search never worse" true (c_big <= c_small +. 1e-6)

let test_cascades_meters_memory_and_cpu () =
  let cat = star_catalog ~dims:6 ~fact_rows:500_000 ~dim_rows:2_000 in
  let q = star_query ~dims:6 cat in
  let bytes = ref 0 and cpu = ref 0. in
  let env = Env.counting ~bytes ~cpu_seconds:cpu in
  match Cascades.optimize ~env model cat q with
  | Ok r ->
      Alcotest.(check int) "env saw the same bytes" r.Cascades.stats.Cascades.allocated_bytes !bytes;
      Alcotest.(check bool) "bytes substantial" true (!bytes > 100_000);
      Alcotest.(check bool) "cpu consumed" true (!cpu > 0.)
  | Error _ -> Alcotest.fail "abort"

let test_cascades_memory_grows_with_query_size () =
  let alloc dims =
    let cat = star_catalog ~dims ~fact_rows:1_000_000 ~dim_rows:5_000 in
    let q = star_query ~dims cat in
    match Cascades.optimize ~env:Env.null model cat q with
    | Ok r -> r.Cascades.stats.Cascades.allocated_bytes
    | Error _ -> Alcotest.fail "abort"
  in
  let small = alloc 3 and big = alloc 9 in
  Alcotest.(check bool)
    (Printf.sprintf "9-dim query allocates much more (%d vs %d)" big small)
    true
    (big > 5 * small)

let test_cascades_stop_early () =
  let cat = star_catalog ~dims:10 ~fact_rows:1_000_000 ~dim_rows:5_000 in
  let q = star_query ~dims:10 cat in
  let calls = ref 0 in
  let env =
    {
      Env.alloc = (fun _ -> ());
      cpu = (fun _ -> ());
      should_stop = (fun () -> incr calls; !calls > 50);
    }
  in
  (match Cascades.optimize ~env model cat q with
  | Ok r ->
      Alcotest.(check bool) "stopped early" true (r.Cascades.outcome = Cascades.Stopped_early)
  | Error _ -> Alcotest.fail "abort");
  (* Ablation: ignoring the signal searches on. *)
  calls := 0;
  let params = { Cascades.default_params with Cascades.honor_stop_early = false } in
  match Cascades.optimize ~params ~env model cat q with
  | Ok r ->
      Alcotest.(check bool) "pressure ignored" true
        (r.Cascades.outcome <> Cascades.Stopped_early)
  | Error _ -> Alcotest.fail "abort"

let test_cascades_abort_propagates () =
  let cat = star_catalog ~dims:8 ~fact_rows:1_000_000 ~dim_rows:5_000 in
  let q = star_query ~dims:8 cat in
  let total = ref 0 in
  let env =
    {
      Env.alloc =
        (fun n ->
          total := !total + n;
          if !total > 200_000 then raise (Env.Aborted Env.Out_of_memory));
      cpu = (fun _ -> ());
      should_stop = (fun () -> false);
    }
  in
  match Cascades.optimize ~env model cat q with
  | Error Env.Out_of_memory -> ()
  | Error e -> Alcotest.failf "wrong reason: %s" (Format.asprintf "%a" Env.pp_abort_reason e)
  | Ok _ -> Alcotest.fail "expected abort"

let test_cascades_dynamic_budget () =
  let budget_for fact_rows =
    let cat = star_catalog ~dims:6 ~fact_rows ~dim_rows:1_000 in
    let q = star_query ~dims:6 cat in
    match Cascades.optimize ~env:Env.null model cat q with
    | Ok r -> r.Cascades.stats.Cascades.budget
    | Error _ -> Alcotest.fail "abort"
  in
  let cheap = budget_for 10_000 and expensive = budget_for 100_000_000 in
  Alcotest.(check bool) "dynamic optimization: costlier query gets bigger budget"
    true (expensive > cheap)

(* ------------------------------------------------------------------ *)
(* Row-level validation of optimizer plans *)

let validate_plans ~seed cat q =
  let rng = Sim.Rng.create seed in
  let inst = Bridge.materialize rng cat ~scale:0.01 ~cap:60 () in
  let card = Card.create cat q in
  let check name plan =
    match Bridge.validate inst q plan with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s: %s" name msg
  in
  check "greedy" (Greedy.plan model card);
  check "dp" (Dp.optimize model card);
  let casc = cascades_complete cat q in
  check "cascades" casc.Cascades.plan

let test_plans_validated_star () =
  let cat = star_catalog ~dims:3 ~fact_rows:5_000 ~dim_rows:500 in
  let q = star_query ~dims:3 ~filters:2 cat in
  validate_plans ~seed:11 cat q

let test_plans_validated_chain () =
  let cat = chain_catalog ~len:4 ~rows:2_000 in
  let q = chain_query ~len:4 cat in
  validate_plans ~seed:13 cat q

let prop_random_star_plans_validate =
  QCheck.Test.make ~name:"optimized plans match reference on random stars" ~count:15
    QCheck.(pair (int_range 2 4) (int_range 0 10_000))
    (fun (dims, seed) ->
      let cat = star_catalog ~dims ~fact_rows:3_000 ~dim_rows:300 in
      let q = star_query ~dims ~filters:(min dims 2) cat in
      let rng = Sim.Rng.create seed in
      let inst = Bridge.materialize rng cat ~scale:0.02 ~cap:50 () in
      let card = Card.create cat q in
      let plans =
        [ Greedy.plan model card; Dp.optimize model card;
          (cascades_complete cat q).Cascades.plan ]
      in
      List.for_all (fun p -> Bridge.validate inst q p = Ok ()) plans)

(* ------------------------------------------------------------------ *)
(* Identity properties for the allocation-lean paths: the flat two-pass
   DP against the kept reference implementation, and Cascades memo-arena
   reuse against fresh memos. Both must be observationally equal — same
   plan, same costs, same counters — on randomized query shapes. *)

let random_cat_query ~star ~n ~salt =
  if star then begin
    (* star of n rels = fact + (n-1) dims; Dp.max_rels caps n at 14 *)
    let dims = max 1 (min (n - 1) (Dp.max_rels - 1)) in
    let fact_rows = 1_000 + (salt mod 50_000) in
    let dim_rows = 50 + (salt mod 950) in
    let cat = star_catalog ~dims ~fact_rows ~dim_rows in
    (cat, star_query ~dims ~filters:(salt mod (dims + 1)) cat)
  end
  else begin
    let len = max 2 (min n Dp.max_rels) in
    let rows = 500 + (salt mod 5_000) in
    let cat = chain_catalog ~len ~rows in
    (cat, chain_query ~len cat)
  end

let prop_flat_dp_matches_reference =
  QCheck.Test.make ~name:"flat dp = reference dp (plan, cost, entries)"
    ~count:30
    QCheck.(triple bool (int_range 2 14) (int_range 0 1_000_000))
    (fun (star, n, salt) ->
      let cat, q = random_cat_query ~star ~n ~salt in
      let flat_plan, flat_entries =
        Dp.optimize_with_stats model (Card.create cat q)
      in
      let ref_plan, ref_entries =
        Dp.optimize_reference_with_stats model (Card.create cat q)
      in
      flat_plan = ref_plan && flat_entries = ref_entries)

let prop_arena_reuse_transparent =
  QCheck.Test.make ~name:"cascades arena reuse = fresh memo" ~count:10
    QCheck.(pair (int_range 2 8) (int_range 0 1_000_000))
    (fun (n, salt) ->
      (* One arena across a mixed sequence of queries, each checked
         against a fresh-memo run of the same query. *)
      let arena = Cascades.create_arena () in
      let ok = ref true in
      for i = 0 to 3 do
        let star = (salt + i) mod 2 = 0 in
        let cat, q =
          random_cat_query ~star ~n:(2 + ((n + i) mod 7)) ~salt:(salt + (7919 * i))
        in
        let reused = Cascades.optimize ~arena ~env:Env.null model cat q in
        let fresh = Cascades.optimize ~env:Env.null model cat q in
        if reused <> fresh then ok := false
      done;
      !ok)

let suite =
  [
    ("relset basics", `Quick, test_relset_basics);
    ("relset subset enumeration", `Quick, test_relset_subset_enumeration);
    ("relset ctz", `Quick, test_relset_ctz);
    ("relset iter_of_cardinality", `Quick, test_relset_iter_of_cardinality);
    ("dp pinned on sales templates", `Slow, test_dp_pinned_sales);
    ("card star", `Quick, test_card_star);
    ("card memoizes", `Quick, test_card_memoizes);
    ("greedy plan well formed", `Quick, test_plan_well_formed_greedy);
    ("index scan cheaper when selective", `Quick, test_plan_index_scan_cheaper_when_selective);
    ("hash join memory scales with build", `Quick, test_plan_hash_join_mem_scales);
    ("cascades = dp on stars", `Slow, test_cascades_complete_matches_dp_star);
    ("cascades = dp on chains", `Slow, test_cascades_complete_matches_dp_chain);
    ("dp beats or matches greedy", `Quick, test_dp_beats_or_matches_greedy);
    ("dp rejects large queries", `Quick, test_dp_rejects_large);
    ("cascades budget exhaustion returns plan", `Quick, test_cascades_budget_exhaustion_returns_plan);
    ("cascades more effort never worse", `Slow, test_cascades_more_effort_never_worse);
    ("cascades meters memory and cpu", `Quick, test_cascades_meters_memory_and_cpu);
    ("cascades memory grows with query size", `Slow, test_cascades_memory_grows_with_query_size);
    ("cascades stop early", `Quick, test_cascades_stop_early);
    ("cascades abort propagates", `Quick, test_cascades_abort_propagates);
    ("cascades dynamic budget", `Quick, test_cascades_dynamic_budget);
    ("plans validated on star", `Quick, test_plans_validated_star);
    ("plans validated on chain", `Quick, test_plans_validated_chain);
    ("query to_sql", `Quick, test_query_to_sql);
    ("histogram basics", `Quick, test_histogram_basics);
    ("histogram uniform accuracy", `Quick, test_histogram_uniform_accuracy);
    ("histogram beats uniform on skew", `Quick, test_histogram_beats_uniform_on_skew);
    ("with_histogram refreshes stats", `Quick, test_with_histogram_refreshes_stats);
    QCheck_alcotest.to_alcotest prop_histogram_le_monotone;
    QCheck_alcotest.to_alcotest prop_relset_subsets_complete;
    QCheck_alcotest.to_alcotest prop_iter_of_cardinality_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_connected_subsets_match_bruteforce;
    QCheck_alcotest.to_alcotest prop_random_star_plans_validate;
    QCheck_alcotest.to_alcotest prop_flat_dp_matches_reference;
    QCheck_alcotest.to_alcotest prop_arena_reuse_transparent;
  ]
