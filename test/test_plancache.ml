(* Tests for the plan cache: lookup semantics, cost-aware eviction, and
   memory accounting through the manager. *)

open Plancache

let mib = Dbmem.Units.mib

(* A tiny catalog/query factory so we can mint plans of known size. *)
let plan_of_joins n =
  let cat = Optimizer.Catalog.create () in
  for i = 0 to n do
    let name = Printf.sprintf "t%d" i in
    Optimizer.Catalog.add_table cat
      {
        Optimizer.Catalog.tbl_name = name;
        rows = 1000.;
        columns =
          [
            Optimizer.Catalog.int_column (name ^ "_key") ~distinct:1000.;
            Optimizer.Catalog.int_column
              (Printf.sprintf "t%d_key" (i + 1))
              ~distinct:1000.;
          ];
        indexes = [];
      }
  done;
  let q =
    Optimizer.Query.make ~id:(Printf.sprintf "q%d" n)
      ~rels:(List.init (n + 1) (fun i -> (Printf.sprintf "t%d" i, Printf.sprintf "t%d" i)))
      ~preds:
        (List.init n (fun i ->
             {
               Optimizer.Query.jleft = i;
               jlcol = Printf.sprintf "t%d_key" (i + 1);
               jright = i + 1;
               jrcol = Printf.sprintf "t%d_key" (i + 1);
               jsel = 0.001;
             }))
      ~filters:[] ~agg:None
  in
  let card = Optimizer.Card.create cat q in
  Optimizer.Greedy.plan Optimizer.Cost.default card

let make_cache ?(total = mib 64) () =
  let manager = Dbmem.Manager.create ~total () in
  let clerk = Dbmem.Manager.create_clerk manager "plancache" in
  (manager, Cache.create manager ~clerk)

let test_insert_lookup () =
  let _, cache = make_cache () in
  let plan = plan_of_joins 2 in
  Cache.insert cache ~key:"q1" ~plan ~compile_cost:5.0;
  (match Cache.lookup cache "q1" with
  | Some p ->
      Alcotest.(check int) "same plan size"
        (Optimizer.Plan.size_bytes plan)
        (Optimizer.Plan.size_bytes p)
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "miss on unknown" true (Cache.lookup cache "nope" = None);
  Alcotest.(check int) "hits" 1 (Cache.hits cache);
  Alcotest.(check int) "misses" 1 (Cache.misses cache)

let test_memory_accounting () =
  let manager, cache = make_cache () in
  let plan = plan_of_joins 3 in
  Cache.insert cache ~key:"a" ~plan ~compile_cost:1.0;
  Alcotest.(check int) "clerk charged" (Optimizer.Plan.size_bytes plan)
    (Cache.bytes cache);
  Alcotest.(check int) "manager agrees" (Cache.bytes cache) (Dbmem.Manager.used manager);
  ignore (Cache.shrink cache max_int);
  Alcotest.(check int) "all freed" 0 (Dbmem.Manager.used manager);
  Alcotest.(check int) "no entries" 0 (Cache.entries cache)

let test_replace_same_key () =
  let _, cache = make_cache () in
  Cache.insert cache ~key:"k" ~plan:(plan_of_joins 2) ~compile_cost:1.0;
  let big = plan_of_joins 6 in
  Cache.insert cache ~key:"k" ~plan:big ~compile_cost:1.0;
  Alcotest.(check int) "one entry" 1 (Cache.entries cache);
  Alcotest.(check int) "size of the new plan" (Optimizer.Plan.size_bytes big)
    (Cache.bytes cache)

let test_eviction_prefers_low_value () =
  let _, cache = make_cache () in
  (* Same size; different compile costs. Cheap-to-recompile goes first. *)
  Cache.insert cache ~key:"cheap" ~plan:(plan_of_joins 3) ~compile_cost:1.0;
  Cache.insert cache ~key:"dear" ~plan:(plan_of_joins 3) ~compile_cost:100.0;
  ignore (Cache.shrink cache 1);
  Alcotest.(check bool) "cheap evicted" true (Cache.lookup cache "cheap" = None);
  Alcotest.(check bool) "dear kept" true (Cache.lookup cache "dear" <> None)

let test_eviction_respects_reuse () =
  let _, cache = make_cache () in
  Cache.insert cache ~key:"popular" ~plan:(plan_of_joins 3) ~compile_cost:1.0;
  Cache.insert cache ~key:"oneshot" ~plan:(plan_of_joins 3) ~compile_cost:1.0;
  (* Ten extra uses multiply the value of "popular". *)
  for _ = 1 to 10 do
    ignore (Cache.lookup cache "popular")
  done;
  ignore (Cache.shrink cache 1);
  Alcotest.(check bool) "oneshot evicted" true (Cache.lookup cache "oneshot" = None);
  Alcotest.(check bool) "popular kept" true (Cache.lookup cache "popular" <> None)

let test_self_eviction_on_full_memory () =
  (* Memory only fits a handful of plans: inserting more evicts old
     entries rather than failing. *)
  let plan = plan_of_joins 4 in
  let size = Optimizer.Plan.size_bytes plan in
  let manager, cache = make_cache ~total:(4 * size) () in
  for i = 1 to 10 do
    Cache.insert cache ~key:(Printf.sprintf "q%d" i) ~plan ~compile_cost:1.0
  done;
  Alcotest.(check bool) "bounded entries" true (Cache.entries cache <= 4);
  Alcotest.(check bool) "evictions counted" true (Cache.evictions cache >= 6);
  Alcotest.(check bool) "within memory" true (Dbmem.Manager.used manager <= 4 * size);
  (* Newest entry is present. *)
  Alcotest.(check bool) "latest kept" true (Cache.lookup cache "q10" <> None)

let test_shrink_returns_freed_bytes () =
  let _, cache = make_cache () in
  let plan = plan_of_joins 3 in
  let size = Optimizer.Plan.size_bytes plan in
  Cache.insert cache ~key:"a" ~plan ~compile_cost:1.0;
  Cache.insert cache ~key:"b" ~plan ~compile_cost:1.0;
  let freed = Cache.shrink cache (size + 1) in
  Alcotest.(check int) "freed two entries worth" (2 * size) freed;
  Alcotest.(check int) "empty now" 0 (Cache.entries cache);
  Alcotest.(check int) "shrink of empty" 0 (Cache.shrink cache 1)

let test_hit_rate () =
  let _, cache = make_cache () in
  Cache.insert cache ~key:"x" ~plan:(plan_of_joins 2) ~compile_cost:1.0;
  ignore (Cache.lookup cache "x");
  ignore (Cache.lookup cache "y");
  ignore (Cache.lookup cache "z");
  Alcotest.(check (float 1e-9)) "1 of 3" (1. /. 3.) (Cache.hit_rate cache)

let test_hit_rate_fresh_cache () =
  (* No lookups yet: the rate is a clean 0., never 0/0 = nan (reports
     format this number — nan would leak into goldens and dashboards). *)
  let _, cache = make_cache () in
  Alcotest.(check (float 1e-9)) "fresh" 0. (Cache.hit_rate cache)

(* Invariant: cache bytes always equal the sum of resident plan sizes. *)
let prop_bytes_consistent =
  QCheck.Test.make ~name:"cache bytes track entries under random ops" ~count:50
    QCheck.(list (pair (int_range 0 9) bool))
    (fun ops ->
      let _, cache = make_cache ~total:(mib 2) () in
      let plan = plan_of_joins 2 in
      List.iter
        (fun (k, insert) ->
          let key = Printf.sprintf "k%d" k in
          if insert then Cache.insert cache ~key ~plan ~compile_cost:1.0
          else ignore (Cache.lookup cache key))
        ops;
      Cache.bytes cache = Cache.entries cache * Optimizer.Plan.size_bytes plan)

let suite =
  [
    ("insert/lookup", `Quick, test_insert_lookup);
    ("memory accounting", `Quick, test_memory_accounting);
    ("replace same key", `Quick, test_replace_same_key);
    ("eviction prefers low value", `Quick, test_eviction_prefers_low_value);
    ("eviction respects reuse", `Quick, test_eviction_respects_reuse);
    ("self-eviction on full memory", `Quick, test_self_eviction_on_full_memory);
    ("shrink returns freed bytes", `Quick, test_shrink_returns_freed_bytes);
    ("hit rate", `Quick, test_hit_rate);
    ("hit rate fresh cache", `Quick, test_hit_rate_fresh_cache);
    QCheck_alcotest.to_alcotest prop_bytes_consistent;
  ]
