(* Deterministic sweep of prop_conservation_under_shard_faults's whole
   QCheck domain (schedule x shards x gateways x seed range), printing
   any counterexample with the specific clause that broke. The QCheck
   property samples 8 random quads per run; this exhausts the domain, so
   a "conserved" claim is against every input, not a lucky draw. It
   found the pre-PR-8 latent failure: under Rolling_restart a client
   retries rejected queries, so the router's per-attempt [submitted]
   exceeds the client's per-query count — attempts, not distinct
   queries, are what conserve. Manual tool, not under runtest:

     dune exec test/probe_conservation.exe -- 1 100   # seed range *)

let mib = Dbmem.Units.mib

let small_cfg ?(shards = 2) ?(gateways = true) ?(hedge = false) ?(seed = 11)
    ?(schedule = Server.Shards.No_fault) () =
  {
    Server.Shards.c_shards = shards;
    c_clients = 6;
    c_variants = 8;
    c_think = 10.;
    c_warmup = 60.;
    c_measure = 240.;
    c_slice = 30.;
    c_total = mib 256 * shards;
    c_gateways = gateways;
    c_hedge = hedge;
    c_seed = seed;
    c_schedule = schedule;
  }

let diagnose (o : Server.Shards.outcome) =
  let open Server.Shards in
  let bad = ref [] in
  let chk name cond = if not cond then bad := name :: !bad in
  chk "submitted=ok+failed" (o.submitted = o.ok + o.failed);
  chk "in_flight=0" (o.in_flight_at_stop = 0);
  chk "cl_attempts" (o.cl_attempts = o.submitted);
  chk "cl_submitted<=attempts" (o.cl_submitted <= o.cl_attempts);
  chk "cl_succeeded" (o.cl_succeeded = o.ok);
  chk "rejected<=failed" (o.rejected <= o.failed);
  chk "completed<=ok" (o.completed <= o.ok);
  chk "shard accepted=finished+lost"
    (List.for_all
       (fun r -> r.sh_accepted = r.sh_finished + r.sh_lost)
       o.shard_results);
  chk "budget sum" (o.max_budget_sum <= o.o_config.c_total + o.o_config.c_shards);
  !bad

let () =
  let lo = int_of_string Sys.argv.(1) and hi = int_of_string Sys.argv.(2) in
  let scheds =
    [
      (0, Server.Shards.No_fault);
      (1, Server.Shards.Crash_failover);
      (2, Server.Shards.Rolling_restart);
      (3, Server.Shards.Brownout);
    ]
  in
  let found = ref 0 in
  for seed = lo to hi do
    List.iter
      (fun (si, schedule) ->
        List.iter
          (fun shards ->
            List.iter
              (fun gateways ->
                let hedge = schedule = Server.Shards.Brownout in
                let o =
                  Server.Shards.run
                    (small_cfg ~shards ~gateways ~hedge ~seed ~schedule ())
                in
                match diagnose o with
                | [] -> ()
                | bad ->
                    incr found;
                    Printf.printf
                      "FAIL sched=%d shards=%d gateways=%b seed=%d: %s\n\
                      \  submitted=%d ok=%d failed=%d rejected=%d \
                      cl_submitted=%d cl_succeeded=%d in_flight=%d\n%!"
                      si shards gateways seed
                      (String.concat ", " bad)
                      o.Server.Shards.submitted o.Server.Shards.ok
                      o.Server.Shards.failed o.Server.Shards.rejected
                      o.Server.Shards.cl_submitted o.Server.Shards.cl_succeeded
                      o.Server.Shards.in_flight_at_stop)
              [ true; false ])
          [ 2; 3; 4 ])
      scheds
  done;
  Printf.printf "done %d..%d: %d failures\n%!" lo hi !found
