(* Tests for the disk model, replacement policies, and the buffer pool. *)

open Bufpool

let mib = Dbmem.Units.mib

(* ------------------------------------------------------------------ *)
(* Disk *)

let test_disk_service_time () =
  let eng = Sim.Engine.create () in
  (* 4 spindles x 100 B/s aggregate to 400 B/s. *)
  let d = Disk.create eng ~spindles:4 ~seek_s:0.5 ~throughput_bytes_per_s:100. in
  Alcotest.(check (float 1e-9)) "seek + transfer" 1.5 (Disk.service_time d ~bytes:400)

let test_disk_read_blocks_for_duration () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~spindles:1 ~seek_s:1.0 ~throughput_bytes_per_s:100. in
  let finished = ref 0. in
  Sim.Engine.spawn eng (fun () ->
      Disk.read d ~bytes:200;
      finished := Sim.Engine.now eng);
  Sim.Engine.run_all eng;
  Alcotest.(check (float 1e-9)) "1s seek + 2s transfer" 3.0 !finished;
  Alcotest.(check int) "bytes" 200 (Disk.bytes_read d);
  Alcotest.(check int) "reads" 1 (Disk.reads d)

let test_disk_concurrent_reads_queue () =
  let eng = Sim.Engine.create () in
  (* Aggregate model: one server; two simultaneous reads serialize. *)
  let d = Disk.create eng ~spindles:2 ~seek_s:0. ~throughput_bytes_per_s:50. in
  let done_times = ref [] in
  for _ = 1 to 2 do
    Sim.Engine.spawn eng (fun () ->
        Disk.read d ~bytes:100;
        done_times := Sim.Engine.now eng :: !done_times)
  done;
  Sim.Engine.run_all eng;
  (* 100 bytes at 100 B/s aggregate = 1 s each, serialized: 1 s and 2 s. *)
  Alcotest.(check (list (float 1e-9))) "serialized" [ 2.0; 1.0 ] !done_times

let test_disk_zero_bytes_instant () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~spindles:1 ~seek_s:1.0 ~throughput_bytes_per_s:100. in
  let finished = ref (-1.) in
  Sim.Engine.spawn eng (fun () ->
      Disk.read d ~bytes:0;
      finished := Sim.Engine.now eng);
  Sim.Engine.run_all eng;
  Alcotest.(check (float 1e-9)) "no transfer no wait" 0.0 !finished

let test_disk_write_accounting () =
  let eng = Sim.Engine.create () in
  let d = Disk.create eng ~spindles:1 ~seek_s:0. ~throughput_bytes_per_s:100. in
  Sim.Engine.spawn eng (fun () -> Disk.write d ~bytes:300);
  Sim.Engine.run_all eng;
  Alcotest.(check int) "written" 300 (Disk.bytes_written d);
  Alcotest.(check int) "not counted as read" 0 (Disk.bytes_read d)

(* ------------------------------------------------------------------ *)
(* Policies *)

let page i : Policy.page = (0, i)

let test_lru_evicts_oldest () =
  let p = Policy.create Policy.Lru in
  List.iter (fun i -> Policy.insert p (page i)) [ 1; 2; 3 ];
  Policy.touch p (page 1);
  (* Order of last use: 2, 3, 1. *)
  Alcotest.(check (option (pair int int))) "evict 2" (Some (page 2)) (Policy.evict p);
  Alcotest.(check (option (pair int int))) "evict 3" (Some (page 3)) (Policy.evict p);
  Alcotest.(check (option (pair int int))) "evict 1" (Some (page 1)) (Policy.evict p);
  Alcotest.(check (option (pair int int))) "empty" None (Policy.evict p)

let test_clock_second_chance () =
  let p = Policy.create Policy.Clock in
  List.iter (fun i -> Policy.insert p (page i)) [ 1; 2; 3 ];
  Policy.touch p (page 1);
  (* 1 has its reference bit set: the hand skips it once and takes 2. *)
  Alcotest.(check (option (pair int int))) "evict 2" (Some (page 2)) (Policy.evict p);
  Alcotest.(check (option (pair int int))) "evict 3" (Some (page 3)) (Policy.evict p);
  Alcotest.(check (option (pair int int))) "then 1" (Some (page 1)) (Policy.evict p)

let test_lru2_scan_resistance () =
  let p = Policy.create Policy.Lru2 in
  (* Two hot pages, touched twice. *)
  Policy.insert p (page 100);
  Policy.insert p (page 101);
  Policy.touch p (page 100);
  Policy.touch p (page 101);
  (* A scan floods ten one-touch pages. *)
  for i = 0 to 9 do
    Policy.insert p (page i)
  done;
  (* All ten scan pages must be evicted before either hot page. *)
  for _ = 1 to 10 do
    match Policy.evict p with
    | Some (_, i) -> Alcotest.(check bool) "scan page first" true (i < 100)
    | None -> Alcotest.fail "premature empty"
  done;
  Alcotest.(check int) "hot pages survive" 2 (Policy.size p)

let test_policy_mem_and_size () =
  List.iter
    (fun kind ->
      let p = Policy.create kind in
      Policy.insert p (page 1);
      Policy.insert p (page 2);
      Alcotest.(check bool) "mem" true (Policy.mem p (page 1));
      Alcotest.(check bool) "not mem" false (Policy.mem p (page 9));
      Alcotest.(check int) "size" 2 (Policy.size p);
      ignore (Policy.evict p);
      Alcotest.(check int) "size after evict" 1 (Policy.size p))
    [ Policy.Lru; Policy.Clock; Policy.Lru2 ]

let test_policy_backlog_bounded () =
  (* The stamp queues (LRU/LRU2) and the clock ring grow on every touch;
     compaction must keep them within a constant factor of the resident
     set instead of one entry per historical access. *)
  List.iter
    (fun kind ->
      let p = Policy.create kind in
      for i = 0 to 3 do
        Policy.insert p (page i)
      done;
      for t = 0 to 9_999 do
        Policy.touch p (page (t mod 4))
      done;
      let bound = (2 * Policy.size p) + 64 in
      Alcotest.(check bool)
        (Printf.sprintf "backlog %d within bound %d" (Policy.backlog p) bound)
        true
        (Policy.backlog p <= bound);
      (* Compaction must not disturb eviction: all four pages drain. *)
      let rec drain n =
        match Policy.evict p with Some _ -> drain (n + 1) | None -> n
      in
      Alcotest.(check int) "all pages still evictable" 4 (drain 0))
    [ Policy.Lru; Policy.Lru2 ]

(* Property: every policy returns each inserted page exactly once across
   evictions, regardless of the touch pattern. *)
let prop_policy_complete_eviction =
  QCheck.Test.make ~name:"policies evict every resident page exactly once" ~count:100
    QCheck.(pair (int_range 0 2) (list (int_range 0 9)))
    (fun (kind_idx, touches) ->
      let kind = [| Policy.Lru; Policy.Clock; Policy.Lru2 |].(kind_idx) in
      let p = Policy.create kind in
      for i = 0 to 9 do
        Policy.insert p (page i)
      done;
      List.iter (fun i -> Policy.touch p (page i)) touches;
      let evicted = ref [] in
      let rec drain () =
        match Policy.evict p with
        | Some pg ->
            evicted := pg :: !evicted;
            drain ()
        | None -> ()
      in
      drain ();
      List.sort compare !evicted = List.init 10 (fun i -> page i))

(* ------------------------------------------------------------------ *)
(* Pool *)

let make_pool ?(total = mib 64) ?(page_bytes = mib 1) ?(policy = Policy.Lru) () =
  let eng = Sim.Engine.create () in
  let manager = Dbmem.Manager.create ~total () in
  let clerk = Dbmem.Manager.create_clerk manager "bufpool" in
  let disk =
    Disk.create eng ~spindles:1 ~seek_s:0.001
      ~throughput_bytes_per_s:(float_of_int (mib 100))
  in
  let pool = Pool.create eng manager ~clerk ~disk ~page_bytes ~policy in
  (eng, manager, disk, pool)

let in_process eng f =
  Sim.Engine.spawn eng f;
  Sim.Engine.run_all eng;
  Alcotest.(check int) "no failures" 0 (List.length (Sim.Engine.failures eng))

let test_pool_hit_miss_accounting () =
  let eng, _, _, pool = make_pool () in
  let t = Pool.table_id pool "fact" in
  in_process eng (fun () ->
      Pool.read pool ~table:t ~page:0;
      Pool.read pool ~table:t ~page:0;
      Pool.read pool ~table:t ~page:1);
  Alcotest.(check int) "hits" 1 (Pool.hits pool);
  Alcotest.(check int) "misses" 2 (Pool.misses pool);
  Alcotest.(check (float 1e-9)) "hit rate" (1. /. 3.) (Pool.hit_rate pool)

let test_pool_miss_costs_io_hit_does_not () =
  let eng, _, disk, pool = make_pool () in
  let t = Pool.table_id pool "fact" in
  in_process eng (fun () ->
      Pool.read pool ~table:t ~page:0;
      let bytes_after_miss = Disk.bytes_read disk in
      Pool.read pool ~table:t ~page:0;
      Alcotest.(check int) "hit causes no io" bytes_after_miss (Disk.bytes_read disk))

let test_pool_resident_equals_clerk () =
  let eng, manager, _, pool = make_pool () in
  let t = Pool.table_id pool "fact" in
  in_process eng (fun () -> Pool.read_range pool ~table:t ~first:0 ~count:10);
  Alcotest.(check int) "resident bytes = clerk usage"
    (Pool.resident_bytes pool)
    (Dbmem.Manager.used manager);
  Alcotest.(check int) "10 pages resident" 10 (Pool.resident_pages pool);
  Alcotest.(check int) "pages * page_bytes" (10 * mib 1) (Pool.resident_bytes pool)

let test_pool_recycles_when_memory_full () =
  (* 8 MiB of memory, 1 MiB granules: reading 20 pages must work, keeping
     residency at 8 and evicting internally. *)
  let eng, manager, _, pool = make_pool ~total:(mib 8) () in
  let t = Pool.table_id pool "fact" in
  in_process eng (fun () -> Pool.read_range pool ~table:t ~first:0 ~count:20);
  Alcotest.(check int) "capped residency" (mib 8) (Pool.resident_bytes pool);
  Alcotest.(check bool) "evictions happened" true (Pool.evictions pool >= 12);
  Alcotest.(check int) "manager consistent" (mib 8) (Dbmem.Manager.used manager)

let test_pool_shrink () =
  let eng, manager, _, pool = make_pool () in
  let t = Pool.table_id pool "fact" in
  in_process eng (fun () -> Pool.read_range pool ~table:t ~first:0 ~count:16);
  let freed = Pool.shrink pool (mib 5) in
  Alcotest.(check int) "freed rounded to granules" (mib 5) freed;
  Alcotest.(check int) "resident" (mib 11) (Pool.resident_bytes pool);
  Alcotest.(check int) "clerk follows" (mib 11) (Dbmem.Manager.used manager);
  let freed2 = Pool.shrink_to pool (mib 4) in
  Alcotest.(check int) "shrink_to" (mib 7) freed2;
  Alcotest.(check int) "resident at target" (mib 4) (Pool.resident_bytes pool)

let test_pool_shrink_empty () =
  let _, _, _, pool = make_pool () in
  Alcotest.(check int) "nothing to free" 0 (Pool.shrink pool (mib 1))

let test_pool_table_interning () =
  let _, _, _, pool = make_pool () in
  let a = Pool.table_id pool "alpha" in
  let b = Pool.table_id pool "beta" in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "stable" a (Pool.table_id pool "alpha")

let test_pool_pages_distinct_per_table () =
  let eng, _, _, pool = make_pool () in
  let a = Pool.table_id pool "a" and b = Pool.table_id pool "b" in
  in_process eng (fun () ->
      Pool.read pool ~table:a ~page:0;
      Pool.read pool ~table:b ~page:0);
  Alcotest.(check int) "two distinct pages" 2 (Pool.resident_pages pool);
  Alcotest.(check int) "both misses" 2 (Pool.misses pool)

let test_pool_read_range_batches_io () =
  let eng, _, disk, pool = make_pool ~total:(mib 256) () in
  let t = Pool.table_id pool "fact" in
  in_process eng (fun () -> Pool.read_range pool ~table:t ~first:0 ~count:100);
  (* 100 misses coalesce into ceil(100/64) = 2 transfers. *)
  Alcotest.(check int) "transfers" 2 (Disk.reads disk);
  Alcotest.(check int) "bytes" (100 * mib 1) (Disk.bytes_read disk)

let test_pool_demand_hint () =
  let eng, _, _, pool = make_pool ~total:(mib 8) () in
  let t = Pool.table_id pool "fact" in
  in_process eng (fun () -> Pool.read_range pool ~table:t ~first:0 ~count:20);
  (* 20 misses at 1 MiB each + 8 MiB resident. *)
  Alcotest.(check int) "resident + unmet" (mib 28) (Pool.demand_hint pool);
  (* The window resets. *)
  Alcotest.(check int) "window reset" (mib 8) (Pool.demand_hint pool)

let test_pool_read_random_in_bounds () =
  let eng, _, _, pool = make_pool ~total:(mib 256) () in
  let t = Pool.table_id pool "fact" in
  let rng = Sim.Rng.create 3 in
  in_process eng (fun () ->
      Pool.read_random pool ~table:t ~pages:50 ~of_pages:10 ~rng);
  (* Only 10 distinct pages exist; residency cannot exceed them. *)
  Alcotest.(check bool) "bounded residency" true (Pool.resident_pages pool <= 10);
  Alcotest.(check int) "50 accesses" 50 (Pool.hits pool + Pool.misses pool)

let test_pool_lru2_protects_hot_set () =
  (* A hot set re-read between scan bursts survives with LRU-2 but not
     with LRU when each burst alone overflows the pool. *)
  let survived policy =
    let eng, _, _, pool = make_pool ~total:(mib 6) ~policy () in
    let hot = Pool.table_id pool "hot" and scan = Pool.table_id pool "scan" in
    Sim.Engine.spawn eng (fun () ->
        (* Establish the hot set with two rounds of touches. *)
        for round = 1 to 2 do
          ignore round;
          Pool.read_range pool ~table:hot ~first:0 ~count:4
        done;
        (* One-touch scan bursts bigger than the pool, interleaved with
           hot re-reads. *)
        for chunk = 0 to 9 do
          Pool.read_range pool ~table:scan ~first:(chunk * 8) ~count:8;
          Pool.read_range pool ~table:hot ~first:0 ~count:4
        done);
    Sim.Engine.run_all eng;
    Pool.hit_rate pool
  in
  let lru2 = survived Policy.Lru2 and lru = survived Policy.Lru in
  Alcotest.(check bool)
    (Printf.sprintf "lru2 hit rate (%.2f) beats lru (%.2f) under scan flood" lru2 lru)
    true (lru2 > lru)

let test_pool_hit_rate_fresh () =
  (* Zero accesses reads as 0., not 0/0 = nan. *)
  let _, _, _, pool = make_pool () in
  Alcotest.(check (float 1e-9)) "fresh" 0. (Pool.hit_rate pool)

let suite =
  [
    ("disk service time", `Quick, test_disk_service_time);
    ("disk read blocks", `Quick, test_disk_read_blocks_for_duration);
    ("disk concurrent reads queue", `Quick, test_disk_concurrent_reads_queue);
    ("disk zero bytes", `Quick, test_disk_zero_bytes_instant);
    ("disk write accounting", `Quick, test_disk_write_accounting);
    ("lru evicts oldest", `Quick, test_lru_evicts_oldest);
    ("clock second chance", `Quick, test_clock_second_chance);
    ("lru2 scan resistance", `Quick, test_lru2_scan_resistance);
    ("policy mem/size", `Quick, test_policy_mem_and_size);
    ("policy backlog bounded", `Quick, test_policy_backlog_bounded);
    ("pool hit rate fresh", `Quick, test_pool_hit_rate_fresh);
    ("pool hit/miss accounting", `Quick, test_pool_hit_miss_accounting);
    ("pool miss costs io", `Quick, test_pool_miss_costs_io_hit_does_not);
    ("pool resident = clerk", `Quick, test_pool_resident_equals_clerk);
    ("pool recycles when full", `Quick, test_pool_recycles_when_memory_full);
    ("pool shrink", `Quick, test_pool_shrink);
    ("pool shrink empty", `Quick, test_pool_shrink_empty);
    ("pool table interning", `Quick, test_pool_table_interning);
    ("pool pages per table", `Quick, test_pool_pages_distinct_per_table);
    ("pool read_range batches io", `Quick, test_pool_read_range_batches_io);
    ("pool demand hint", `Quick, test_pool_demand_hint);
    ("pool read_random bounds", `Quick, test_pool_read_random_in_bounds);
    ("pool lru2 protects hot set", `Quick, test_pool_lru2_protects_hot_set);
    QCheck_alcotest.to_alcotest prop_policy_complete_eviction;
  ]
